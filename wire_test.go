package subzero_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"subzero"
)

func TestStrategyNameRoundTrip(t *testing.T) {
	for _, name := range subzero.StrategyNames() {
		s, err := subzero.ParseStrategy(name)
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", name, err)
		}
		if got := subzero.StrategyName(s); got != name {
			t.Fatalf("StrategyName(ParseStrategy(%q)) = %q", name, got)
		}
		// Case-insensitive parse.
		if _, err := subzero.ParseStrategy(strings.ToLower(name)); err != nil {
			t.Fatalf("ParseStrategy(%q): %v", strings.ToLower(name), err)
		}
	}
	if _, err := subzero.ParseStrategy("NoSuchStrategy"); err == nil {
		t.Fatal("unknown strategy name accepted")
	}
}

func TestWirePlanRoundTrip(t *testing.T) {
	plan := subzero.Plan{
		"a": {subzero.StratMap},
		"b": {subzero.StratFullOne, subzero.StratFullOneFwd},
	}
	wire := subzero.NewWirePlan(plan)
	back, err := wire.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(plan) {
		t.Fatalf("round-trip plan has %d nodes, want %d", len(back), len(plan))
	}
	for node, want := range plan {
		got := back[node]
		if len(got) != len(want) {
			t.Fatalf("node %q: %v != %v", node, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %q strategy %d: %v != %v", node, i, got[i], want[i])
			}
		}
	}
	if _, err := (subzero.WirePlan{"a": {"bogus"}}).Plan(); err == nil {
		t.Fatal("bogus strategy name accepted")
	}
	if p, err := subzero.WirePlan(nil).Plan(); err != nil || p != nil {
		t.Fatalf("nil wire plan: %v, %v", p, err)
	}
}

func TestWireQueryRoundTrip(t *testing.T) {
	q := subzero.ForwardQuery([]uint64{1, 5, 9},
		subzero.Step{Node: "a", InputIdx: 1}, subzero.Step{Node: "b"})
	wire := subzero.NewWireQuery(q)
	// Through JSON, as the server sees it.
	blob, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var decoded subzero.WireQuery
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	back, err := decoded.Query()
	if err != nil {
		t.Fatal(err)
	}
	if back.Direction != q.Direction || len(back.Cells) != len(q.Cells) || len(back.Path) != len(q.Path) {
		t.Fatalf("round trip mangled query: %+v", back)
	}
	for i := range q.Path {
		if back.Path[i] != q.Path[i] {
			t.Fatalf("step %d: %+v != %+v", i, back.Path[i], q.Path[i])
		}
	}
	if _, err := (subzero.WireQuery{Direction: "sideways"}).Query(); err == nil {
		t.Fatal("bad direction accepted")
	}
	// Empty direction defaults to backward.
	bq, err := (subzero.WireQuery{}).Query()
	if err != nil || bq.Direction != subzero.Backward {
		t.Fatalf("empty direction: %v, %v", bq.Direction, err)
	}
}

func TestWireQueryOptionsDefaults(t *testing.T) {
	var nilOpts *subzero.WireQueryOptions
	if got := nilOpts.Options(); got != subzero.DefaultQueryOptions() {
		t.Fatalf("nil options = %+v", got)
	}
	off := false
	got := (&subzero.WireQueryOptions{Dynamic: &off}).Options()
	if got.Dynamic || !got.EntireArray {
		t.Fatalf("partial options = %+v", got)
	}
}

func TestWireConstraintsRoundTrip(t *testing.T) {
	c := subzero.Constraints{MaxDiskBytes: subzero.MB(20), MaxRuntime: 3 * time.Second, Beta: 0.5}
	back := subzero.NewWireConstraints(c).Constraints()
	if back != c {
		t.Fatalf("round trip mangled constraints: %+v != %+v", back, c)
	}
}
