package subzero_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"subzero"
)

func TestStrategyNameRoundTrip(t *testing.T) {
	for _, name := range subzero.StrategyNames() {
		s, err := subzero.ParseStrategy(name)
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", name, err)
		}
		if got := subzero.StrategyName(s); got != name {
			t.Fatalf("StrategyName(ParseStrategy(%q)) = %q", name, got)
		}
		// Case-insensitive parse.
		if _, err := subzero.ParseStrategy(strings.ToLower(name)); err != nil {
			t.Fatalf("ParseStrategy(%q): %v", strings.ToLower(name), err)
		}
	}
	if _, err := subzero.ParseStrategy("NoSuchStrategy"); err == nil {
		t.Fatal("unknown strategy name accepted")
	}
}

func TestWirePlanRoundTrip(t *testing.T) {
	plan := subzero.Plan{
		"a": {subzero.StratMap},
		"b": {subzero.StratFullOne, subzero.StratFullOneFwd},
	}
	wire := subzero.NewWirePlan(plan)
	back, err := wire.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(plan) {
		t.Fatalf("round-trip plan has %d nodes, want %d", len(back), len(plan))
	}
	for node, want := range plan {
		got := back[node]
		if len(got) != len(want) {
			t.Fatalf("node %q: %v != %v", node, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %q strategy %d: %v != %v", node, i, got[i], want[i])
			}
		}
	}
	if _, err := (subzero.WirePlan{"a": {"bogus"}}).Plan(); err == nil {
		t.Fatal("bogus strategy name accepted")
	}
	if p, err := subzero.WirePlan(nil).Plan(); err != nil || p != nil {
		t.Fatalf("nil wire plan: %v, %v", p, err)
	}
}

func TestWireQueryRoundTrip(t *testing.T) {
	q := subzero.ForwardQuery([]uint64{1, 5, 9},
		subzero.Step{Node: "a", InputIdx: 1}, subzero.Step{Node: "b"})
	wire := subzero.NewWireQuery(q)
	// Through JSON, as the server sees it.
	blob, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var decoded subzero.WireQuery
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	back, err := decoded.Query()
	if err != nil {
		t.Fatal(err)
	}
	if back.Direction != q.Direction || len(back.Cells) != len(q.Cells) || len(back.Path) != len(q.Path) {
		t.Fatalf("round trip mangled query: %+v", back)
	}
	for i := range q.Path {
		if back.Path[i] != q.Path[i] {
			t.Fatalf("step %d: %+v != %+v", i, back.Path[i], q.Path[i])
		}
	}
	if _, err := (subzero.WireQuery{Direction: "sideways"}).Query(); err == nil {
		t.Fatal("bad direction accepted")
	}
	// Empty direction defaults to backward.
	bq, err := (subzero.WireQuery{}).Query()
	if err != nil || bq.Direction != subzero.Backward {
		t.Fatalf("empty direction: %v, %v", bq.Direction, err)
	}
}

func TestWireQueryOptionsDefaults(t *testing.T) {
	var nilOpts *subzero.WireQueryOptions
	if got := nilOpts.Options(); got != subzero.DefaultQueryOptions() {
		t.Fatalf("nil options = %+v", got)
	}
	off := false
	got := (&subzero.WireQueryOptions{Dynamic: &off}).Options()
	if got.Dynamic || !got.EntireArray {
		t.Fatalf("partial options = %+v", got)
	}
}

func TestWireConstraintsRoundTrip(t *testing.T) {
	c := subzero.Constraints{MaxDiskBytes: subzero.MB(20), MaxRuntime: 3 * time.Second, Beta: 0.5}
	back := subzero.NewWireConstraints(c).Constraints()
	if back != c {
		t.Fatalf("round trip mangled constraints: %+v != %+v", back, c)
	}
}

// TestWireIngestStatsJSONCompat pins the JSON field names of
// WireIngestStats: the legacy keys must survive the min/avg/max widening
// so existing scrapers keep working.
func TestWireIngestStatsJSONCompat(t *testing.T) {
	snap := subzero.IngestSnapshot{
		Shards:         4,
		Depth:          64,
		Batches:        10,
		Pairs:          1000,
		QueueHighWater: 7,
		EncodeTime:     5 * time.Millisecond,
		FlushTime:      9 * time.Millisecond,
		FlushMin:       1 * time.Millisecond,
		FlushAvg:       3 * time.Millisecond,
		FlushMax:       6 * time.Millisecond,
		Flushes:        3,
	}
	blob, err := json.Marshal(subzero.NewWireIngestStats(snap))
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		// Legacy keys, pinned since the first wire version.
		"shards": 4, "depth": 64, "batches": 10, "pairs": 1000,
		"queue_high_water": 7, "encode_ns": 5e6, "flush_ns": 9e6, "flushes": 3,
		// Widened flush latency.
		"flush_min_ns": 1e6, "flush_avg_ns": 3e6, "flush_max_ns": 6e6,
	}
	for key, val := range want {
		got, ok := raw[key].(float64)
		if !ok {
			t.Fatalf("key %q missing or non-numeric in %s", key, blob)
		}
		if got != val {
			t.Fatalf("key %q = %v, want %v", key, got, val)
		}
	}
}

// TestWireStoreStatsJSONCompat pins the JSON field names of
// WireStoreStats: once shipped, keys are widened, never renamed.
func TestWireStoreStatsJSONCompat(t *testing.T) {
	ws := subzero.NewWireStoreStats([]subzero.StoreStat{{
		Run: "r1", Node: "n1", Strategy: "<-Full/One",
		Codec: 3, Pairs: 10, StoredBytes: 500, LogicalBytes: 4000,
	}})
	if len(ws) != 1 {
		t.Fatalf("got %d wire stats, want 1", len(ws))
	}
	blob, err := json.Marshal(ws[0])
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	for key, val := range map[string]any{
		"run": "r1", "node": "n1", "strategy": "<-Full/One",
		"codec": 3.0, "pairs": 10.0, "stored_bytes": 500.0,
		"logical_bytes": 4000.0, "ratio": 8.0,
	} {
		got, ok := raw[key]
		if !ok {
			t.Fatalf("key %q missing in %s", key, blob)
		}
		if got != val {
			t.Fatalf("key %q = %v, want %v", key, got, val)
		}
	}
	if got := subzero.NewWireStoreStats(nil); got != nil {
		t.Fatalf("empty inventory = %v, want nil", got)
	}
}

func TestWireWorkloadProfileEmpty(t *testing.T) {
	p := subzero.NewWireWorkloadProfile(nil)
	if p.BackwardQueries != 0 || p.ForwardQueries != 0 || len(p.Classes) != 0 || len(p.Operators) != 0 {
		t.Fatalf("nil set produced non-zero profile: %+v", p)
	}
	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"backward_queries", "forward_queries", "query_cells",
		"fallbacks", "region_span_p50_cells", "region_span_p95_cells", "region_span_p99_cells", "classes"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("key %q missing in %s", key, blob)
		}
	}
}
