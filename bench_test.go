// Benchmarks regenerating every figure of the paper's evaluation (§VIII).
// Each benchmark is the measurement loop behind one figure; custom metrics
// report the non-time quantities (lineage bytes). The subzero-bench binary
// prints the full paper-style tables; these benches integrate the same
// measurements with `go test -bench`.
//
// Scales are reduced so the full suite completes in minutes; pass
// -bench-paper-scale to run the astronomy and genomics figures at the
// paper's data sizes.
package subzero_test

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"testing"

	"subzero"
	"subzero/internal/astro"
	"subzero/internal/genomics"
	"subzero/internal/microbench"
)

var paperScale = flag.Bool("bench-paper-scale", false, "run figure benches at the paper's data sizes")

func astroCfg() astro.GenConfig {
	if *paperScale {
		return astro.DefaultGenConfig()
	}
	return astro.DefaultGenConfig().Scaled(0.2)
}

func genCfg() genomics.GenConfig {
	scale := 10
	if *paperScale {
		scale = 100
	}
	return genomics.DefaultGenConfig().Scaled(scale)
}

func microSide() int {
	if *paperScale {
		return 1000
	}
	return 300
}

// prepareAstro executes the astronomy workflow under one strategy and
// returns the system, run, and benchmark queries.
func prepareAstro(b *testing.B, strategy string) (*subzero.System, *subzero.Run, map[string]subzero.Query) {
	b.Helper()
	sys, err := subzero.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sys.Close() })
	plan, err := astro.Plan(strategy)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := astro.NewSpec()
	if err != nil {
		b.Fatal(err)
	}
	sky, err := astro.Generate(astroCfg())
	if err != nil {
		b.Fatal(err)
	}
	run, err := sys.Execute(context.Background(), spec, plan, map[string]*subzero.Array{
		"img1": sky.Exposure1, "img2": sky.Exposure2,
	})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := astro.Queries(run)
	if err != nil {
		b.Fatal(err)
	}
	return sys, run, queries
}

// BenchmarkFig5aAstroOverhead measures workflow execution per strategy:
// the runtime bars of Figure 5(a), with lineage bytes as a custom metric
// (the disk bars).
func BenchmarkFig5aAstroOverhead(b *testing.B) {
	for _, name := range astro.StrategyNames {
		b.Run(name, func(b *testing.B) {
			var lineageBytes int64
			for i := 0; i < b.N; i++ {
				res, err := astro.RunStrategy(context.Background(), name, astroCfg(), "")
				if err != nil {
					b.Fatal(err)
				}
				lineageBytes = res.LineageBytes
			}
			b.ReportMetric(float64(lineageBytes), "lineage-bytes")
		})
	}
}

// BenchmarkFig5bAstroQueries measures each benchmark query per strategy:
// Figure 5(b). FQ0Slow is FQ0 with the entire-array optimization off.
func BenchmarkFig5bAstroQueries(b *testing.B) {
	for _, name := range astro.StrategyNames {
		sys, run, queries := prepareAstro(b, name)
		static := subzero.QueryOptions{EntireArray: true}
		for _, qn := range astro.QueryNames {
			q, opts := queries[qn], static
			if qn == "FQ0Slow" {
				q = queries["FQ0"]
				opts = subzero.QueryOptions{}
			}
			b.Run(fmt.Sprintf("%s/%s", name, qn), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sys.QueryWith(context.Background(), run, q, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// prepareGenomics executes the genomics workflow under one strategy.
func prepareGenomics(b *testing.B, strategy string) (*subzero.System, *subzero.Run, map[string]subzero.Query) {
	b.Helper()
	sys, err := subzero.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sys.Close() })
	plan, err := genomics.Plan(strategy)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := genomics.NewSpec()
	if err != nil {
		b.Fatal(err)
	}
	data, err := genomics.Generate(genCfg())
	if err != nil {
		b.Fatal(err)
	}
	run, err := sys.Execute(context.Background(), spec, plan, map[string]*subzero.Array{
		"train": data.Train, "test": data.Test,
	})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := genomics.Queries(run)
	if err != nil {
		b.Fatal(err)
	}
	return sys, run, queries
}

// BenchmarkFig6aGenomicsOverhead: Figure 6(a).
func BenchmarkFig6aGenomicsOverhead(b *testing.B) {
	for _, name := range genomics.StrategyNames {
		b.Run(name, func(b *testing.B) {
			var lineageBytes int64
			for i := 0; i < b.N; i++ {
				res, err := genomics.RunStrategy(context.Background(), name, genCfg(), "")
				if err != nil {
					b.Fatal(err)
				}
				lineageBytes = res.LineageBytes
			}
			b.ReportMetric(float64(lineageBytes), "lineage-bytes")
		})
	}
}

// genomicsQueryBench is the Figure 6(b)/(c) measurement: per-strategy
// per-query execution with the query-time optimizer off or on.
func genomicsQueryBench(b *testing.B, dynamic bool) {
	opts := subzero.QueryOptions{EntireArray: true, Dynamic: dynamic}
	for _, name := range genomics.StrategyNames {
		sys, run, queries := prepareGenomics(b, name)
		for _, qn := range genomics.QueryNames {
			q := queries[qn]
			b.Run(fmt.Sprintf("%s/%s", name, qn), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := sys.QueryWith(context.Background(), run, q, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6bGenomicsStatic: Figure 6(b), query-time optimizer off.
func BenchmarkFig6bGenomicsStatic(b *testing.B) { genomicsQueryBench(b, false) }

// BenchmarkFig6cGenomicsDynamic: Figure 6(c), query-time optimizer on.
func BenchmarkFig6cGenomicsDynamic(b *testing.B) { genomicsQueryBench(b, true) }

// BenchmarkFig7OptimizerSweep: Figure 7 — per storage budget, the ILP
// solve plus the workload under the chosen plan.
func BenchmarkFig7OptimizerSweep(b *testing.B) {
	budgets := []int64{1 << 20, 20 << 20, 100 << 20}
	for _, budget := range budgets {
		b.Run(fmt.Sprintf("budget-%dMB", budget>>20), func(b *testing.B) {
			var lineageBytes int64
			for i := 0; i < b.N; i++ {
				results, err := genomics.OptimizerSweep(context.Background(), genCfg(), []int64{budget}, "")
				if err != nil {
					b.Fatal(err)
				}
				lineageBytes = results[0].LineageBytes
			}
			b.ReportMetric(float64(lineageBytes), "lineage-bytes")
		})
	}
}

// BenchmarkFig8MicroOverhead: Figure 8 — write overhead per strategy
// across the fanin/fanout grid.
func BenchmarkFig8MicroOverhead(b *testing.B) {
	for _, strat := range microbench.StrategyNames {
		for _, fanout := range []int{1, 100} {
			for _, fanin := range []int{1, 50, 100} {
				b.Run(fmt.Sprintf("%s/fanout-%d/fanin-%d", strat, fanout, fanin), func(b *testing.B) {
					cfg := microbench.DefaultConfig()
					cfg.Rows, cfg.Cols = microSide(), microSide()
					cfg.Fanin, cfg.Fanout = fanin, fanout
					var lineageBytes int64
					for i := 0; i < b.N; i++ {
						res, err := microbench.Run(context.Background(), cfg, strat, "")
						if err != nil {
							b.Fatal(err)
						}
						lineageBytes = res.LineageBytes
					}
					b.ReportMetric(float64(lineageBytes), "lineage-bytes")
				})
			}
		}
	}
}

// BenchmarkFig9MicroQueries: Figure 9 — 1000-cell backward queries over
// the backward-optimized strategies, measured on a prepared run.
func BenchmarkFig9MicroQueries(b *testing.B) {
	for _, strat := range []string{"<-PayMany", "<-PayOne", "<-FullMany", "<-FullOne"} {
		for _, fanin := range []int{1, 100} {
			b.Run(fmt.Sprintf("%s/fanin-%d", strat, fanin), func(b *testing.B) {
				cfg := microbench.DefaultConfig()
				cfg.Rows, cfg.Cols = microSide(), microSide()
				cfg.Fanin, cfg.Fanout = fanin, 1
				sys, run, cells := prepareMicro(b, cfg, strat)
				q := subzero.BackwardQuery(cells, subzero.Step{Node: microbench.NodeID})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sys.Query(context.Background(), run, q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func prepareMicro(b *testing.B, cfg microbench.Config, strategy string) (*subzero.System, *subzero.Run, []uint64) {
	b.Helper()
	sys, err := subzero.NewSystem()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sys.Close() })
	var plan subzero.Plan
	switch strategy {
	case "<-PayMany":
		plan = subzero.Plan{microbench.NodeID: {subzero.StratPayMany}}
	case "<-PayOne":
		plan = subzero.Plan{microbench.NodeID: {subzero.StratPayOne}}
	case "<-FullMany":
		plan = subzero.Plan{microbench.NodeID: {subzero.StratFullMany}}
	case "<-FullOne":
		plan = subzero.Plan{microbench.NodeID: {subzero.StratFullOne}}
	default:
		b.Fatalf("unknown strategy %s", strategy)
	}
	spec := subzero.NewSpec("micro")
	spec.Add(microbench.NodeID, microbench.NewSyntheticOp(cfg), subzero.FromExternal("input"))
	input, err := subzero.NewArray("input", subzero.Shape{cfg.Rows, cfg.Cols})
	if err != nil {
		b.Fatal(err)
	}
	run, err := sys.Execute(context.Background(), spec, plan, map[string]*subzero.Array{"input": input})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	cells := make([]uint64, microbench.QueryCellCount)
	size := int64(cfg.Rows) * int64(cfg.Cols)
	for i := range cells {
		cells[i] = uint64(rng.Int63n(size))
	}
	return sys, run, cells
}
