package subzero_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"subzero"
)

// FuzzWireQueryRoundTrip feeds arbitrary JSON through the wire decode
// path: anything that unmarshals and validates must survive
// Query → NewWireQuery → Query unchanged, and the wire form itself must
// be a JSON fixed point after one normalization pass.
func FuzzWireQueryRoundTrip(f *testing.F) {
	f.Add([]byte(`{"direction":"backward","cells":[1,2,3],"path":[{"node":"blur","input":0}]}`))
	f.Add([]byte(`{"direction":"forward","cells":[0],"path":[{"node":"mask"},{"node":"sum","input":1}]}`))
	f.Add([]byte(`{"cells":[],"path":[]}`))
	f.Add([]byte(`{"direction":"BACKWARD","cells":[18446744073709551615],"path":null}`))
	f.Add([]byte(`{"direction":"sideways"}`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var w subzero.WireQuery
		if err := json.Unmarshal(data, &w); err != nil {
			return
		}
		q, err := w.Query()
		if err != nil {
			return
		}
		w2 := subzero.NewWireQuery(q)
		q2, err := w2.Query()
		if err != nil {
			t.Fatalf("normalized wire form failed to convert: %v\n%+v", err, w2)
		}
		if !reflect.DeepEqual(q2, q) {
			t.Fatalf("query round-trip mismatch:\nfirst:  %+v\nsecond: %+v", q, q2)
		}

		// The normalized wire form is a JSON fixed point.
		enc, err := json.Marshal(w2)
		if err != nil {
			t.Fatalf("marshal normalized wire query: %v", err)
		}
		var w3 subzero.WireQuery
		if err := json.Unmarshal(enc, &w3); err != nil {
			t.Fatalf("unmarshal normalized wire query: %v", err)
		}
		q3, err := w3.Query()
		if err != nil {
			t.Fatalf("re-decoded wire form failed to convert: %v", err)
		}
		if !reflect.DeepEqual(q3, q2) {
			t.Fatalf("json round-trip mismatch:\nfirst:  %+v\nsecond: %+v", q2, q3)
		}
	})
}
