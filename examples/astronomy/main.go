// Astronomy: the paper's motivating debugging session, built entirely on
// the public API. A telescope image contains a cosmic-ray hit that
// corrupts a detected "star"; the astronomer works backward from the
// suspicious detection to the raw pixels that produced it, identifies the
// cosmic ray, and then traces it forward to see everything it
// contaminated.
//
// The example also demonstrates how a user-defined operator exposes
// composite lineage through the lwrite API and mapping functions
// (paper §V): the detector's default lineage is the identity mapping and
// payload pairs override it for flagged pixels.
package main

import (
	"context"
	"fmt"
	"log"

	"subzero"
)

// flagBright is a composite-lineage UDF: output 1 marks pixels brighter
// than the threshold; flagged cells depend on their radius-2 neighborhood,
// everything else on the corresponding pixel only.
type flagBright struct {
	subzero.Meta
	Threshold float64
}

func newFlagBright(threshold float64) *flagBright {
	return &flagBright{
		Meta: subzero.Meta{
			OpName: "flag-bright",
			NIn:    1,
			Modes:  []subzero.Mode{subzero.Full, subzero.Comp},
		},
		Threshold: threshold,
	}
}

func (f *flagBright) OutShape(in []subzero.Shape) (subzero.Shape, error) {
	return in[0].Clone(), nil
}

func (f *flagBright) Run(rc *subzero.RunCtx, ins []*subzero.Array) (*subzero.Array, error) {
	in := ins[0]
	out, err := subzero.NewArray(f.OpName, in.Shape())
	if err != nil {
		return nil, err
	}
	sp := in.Space()
	var neigh []uint64
	one := make([]uint64, 1)
	for idx := uint64(0); idx < sp.Size(); idx++ {
		flagged := in.Get(idx) > f.Threshold
		if flagged {
			out.Set(idx, 1)
		}
		one[0] = idx
		if rc.NeedsPairs() { // tracing mode / Full lineage
			if flagged {
				neigh = subzero.Neighborhood(sp, sp.Unravel(idx), 2, neigh[:0])
				if err := rc.LWrite(one, neigh); err != nil {
					return nil, err
				}
			} else if err := rc.LWrite(one, one); err != nil {
				return nil, err
			}
		}
		if rc.NeedsPayload() && flagged { // composite override
			if err := rc.LWritePayload(one, []byte{2}); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// MapP expands a payload (the radius) back into input cells.
func (f *flagBright) MapP(mc *subzero.MapCtx, out uint64, payload []byte, _ int, dst []uint64) []uint64 {
	return subzero.Neighborhood(mc.InSpaces[0], mc.OutCoord(out), int(payload[0]), dst)
}

// MapB / MapF are the composite defaults: identity.
func (f *flagBright) MapB(_ *subzero.MapCtx, out uint64, _ int, dst []uint64) []uint64 {
	return append(dst, out)
}

func (f *flagBright) MapF(_ *subzero.MapCtx, in uint64, _ int, dst []uint64) []uint64 {
	return append(dst, in)
}

func main() {
	ctx := context.Background()
	sys, err := subzero.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// A 32x64 "exposure": faint sky + one star + one cosmic ray.
	shape := subzero.Shape{32, 64}
	space := subzero.NewSpace(shape)
	img, err := subzero.NewArray("exposure", shape)
	if err != nil {
		log.Fatal(err)
	}
	img.Fill(10)
	star := subzero.Coord{16, 20}
	for _, d := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {-1, 0}, {0, -1}} {
		img.SetAt(subzero.Coord{star[0] + d[0], star[1] + d[1]}, 80)
	}
	cosmic := subzero.Coord{8, 50}
	img.SetAt(cosmic, 500)

	// Pipeline: bias-subtract -> smooth -> flag bright pixels.
	spec := subzero.NewSpec("astro-debug")
	spec.Add("bias", subzero.UnaryOp("bias", func(x float64) float64 { return x - 10 }),
		subzero.FromExternal("exposure"))
	kernel, _ := subzero.StandardKernels("gaussian3")
	smooth, err := subzero.ConvolveOp("smooth", kernel)
	if err != nil {
		log.Fatal(err)
	}
	spec.Add("smooth", smooth, subzero.FromNode("bias"))
	spec.Add("flag", newFlagBright(30), subzero.FromNode("smooth"))

	plan := subzero.Plan{
		"bias":   {subzero.StratMap},
		"smooth": {subzero.StratMap},
		"flag":   {subzero.StratCompOne}, // composite: payload only for flags
	}
	run, err := sys.Execute(ctx, spec, plan, map[string]*subzero.Array{"exposure": img})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineage storage: %d bytes (composite stores only the flagged pixels)\n\n",
		sys.LineageBytes())

	// The detector flagged several pixels; one of them is the cosmic ray.
	flags, err := run.Output("flag")
	if err != nil {
		log.Fatal(err)
	}
	var flagged []uint64
	for i, v := range flags.Data() {
		if v > 0 {
			flagged = append(flagged, uint64(i))
		}
	}
	fmt.Printf("detections: %d flagged pixels\n", len(flagged))

	// Backward: which raw pixels produced the detections?
	back, err := sys.Query(ctx, run, subzero.BackwardQuery(flagged,
		subzero.Step{Node: "flag"},
		subzero.Step{Node: "smooth"},
		subzero.Step{Node: "bias"},
	))
	if err != nil {
		log.Fatal(err)
	}
	brightest, val := subzero.Coord{}, 0.0
	for _, c := range back.Cells() {
		if img.Get(c) > val {
			val, brightest = img.Get(c), space.Unravel(c).Clone()
		}
	}
	fmt.Printf("backward trace: %d candidate raw pixels; brightest %v = %.0f ADU (the cosmic ray)\n",
		len(back.Cells()), brightest, val)

	// Forward: everything the cosmic ray contaminated downstream.
	fwd, err := sys.Query(ctx, run, subzero.ForwardQuery(
		[]uint64{space.Ravel(brightest)},
		subzero.Step{Node: "bias"},
		subzero.Step{Node: "smooth"},
		subzero.Step{Node: "flag"},
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forward trace: the cosmic ray influenced %d detector cells\n", len(fwd.Cells()))
	for _, step := range fwd.Steps {
		fmt.Printf("  step %-8s via %-22s %4d -> %d cells\n",
			step.Node, step.AccessPath, step.InCells, step.OutCells)
	}
}
