// Serving walkthrough: lineage as a service. This example boots the HTTP
// serving layer in-process on a loopback port, then acts as a remote
// consumer: everything below the "client side" marker goes through the
// typed Go client and the wire format only — exactly what an external
// application (a visualization, a notebook, another service) would do.
//
// The client executes the genomics workflow by name, runs the clinician's
// interactive lineage queries singly and as a concurrent batch, asks the
// optimizer for a cheaper plan under a storage budget, inspects server
// stats, and finally drops the run and drains the server.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"subzero"
	"subzero/client"
	"subzero/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// --- server side: one System behind the HTTP layer ------------------
	sys, err := subzero.NewSystem(subzero.WithParallelism(4))
	if err != nil {
		return err
	}
	defer sys.Close()
	srv, err := server.New(server.Config{System: sys, MaxInFlight: 16})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("lineage service listening on %s\n\n", base)

	// --- client side: wire format only from here on ---------------------
	c := client.New(base)

	workflows, err := c.Workflows(ctx)
	if err != nil {
		return err
	}
	fmt.Println("executable workflows:")
	for _, wf := range workflows {
		fmt.Printf("  %-10s plans=%v default=%s\n", wf.Name, wf.Plans, wf.DefaultPlan)
	}

	// Execute the genomics workflow under the interactive-visualization
	// configuration (payload lineage + forward-optimized full lineage).
	run, err := c.Execute(ctx, subzero.WireExecuteRequest{
		Workflow: "genomics",
		Plan:     "PayBoth",
		Scale:    4,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nexecuted %s: run %s, %d nodes, %s, %d lineage bytes\n",
		run.Workflow, run.ID, run.Nodes, time.Duration(run.ElapsedNS), run.LineageBytes)

	// The clinician clicks a relapse prediction: which training data
	// supports it? The query is built from static workflow knowledge —
	// node ids and cell indices — nothing server-side is needed.
	backPath := []subzero.Step{
		{Node: "H-predict", InputIdx: 1},
		{Node: "F-model"},
		{Node: "E-extract-train"},
		{Node: "tr-norm"},
		{Node: "tr-center"},
		{Node: "tr-t"},
	}
	res, err := c.Query(ctx, run.ID, subzero.BackwardQuery([]uint64{0, 1, 2}, backPath...), nil)
	if err != nil {
		return err
	}
	fmt.Printf("\nprediction -> training data: %d cells in %s\n",
		len(res.Cells), time.Duration(res.ElapsedNS))
	for _, st := range res.Steps {
		fmt.Printf("  step %-16s via %-24s -> %d cells\n", st.Node, st.AccessPath, st.OutCells)
	}

	// A dashboard fires many independent interactions at once: a batch
	// runs them over the server's bounded worker pool.
	fwdPath := []subzero.Step{
		{Node: "tr-t"},
		{Node: "tr-center"},
		{Node: "tr-norm"},
		{Node: "E-extract-train"},
		{Node: "F-model"},
		{Node: "H-predict", InputIdx: 1},
	}
	var batch []subzero.Query
	for i := 0; i < 8; i++ {
		batch = append(batch, subzero.BackwardQuery([]uint64{uint64(i)}, backPath...))
		batch = append(batch, subzero.ForwardQuery([]uint64{uint64(i * 3)}, fwdPath...))
	}
	br, err := c.QueryBatch(ctx, run.ID, batch, nil)
	if err != nil {
		return err
	}
	fmt.Printf("\nbatch: %d queries, %d ok, %d failed, %d cells, wall %s (summed query time %s)\n",
		br.Report.Queries, br.Report.Succeeded, br.Report.Failed, br.Report.Cells,
		time.Duration(br.Report.ElapsedNS), time.Duration(br.Report.QueryTimeNS))

	// Ask the optimizer: under a 10 MB budget, which strategies should
	// each operator store for this workload?
	rep, err := c.Optimize(ctx, run.ID, batch[:4], subzero.Constraints{MaxDiskBytes: subzero.MB(10)}, nil)
	if err != nil {
		return err
	}
	fmt.Printf("\noptimizer (%s): est. disk %d bytes, objective %.3g\n", rep.Status, rep.DiskBytes, rep.Objective)
	for _, node := range []string{"E-extract-train", "F-model", "G-extract-test", "H-predict"} {
		fmt.Printf("  %-16s %v\n", node, rep.Plan[node])
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\nserver stats: %d runs, %d lineage bytes, %d requests served, %d rejected\n",
		stats.Runs, stats.LineageBytes, stats.Server.Requests, stats.Server.Rejected)

	// Lineage is a recoverable cache: dropping the run frees its stores
	// and array versions; re-executing the named workflow recreates them.
	if err := c.DropRun(ctx, run.ID); err != nil {
		return err
	}
	fmt.Printf("dropped run %s\n", run.ID)

	// Graceful drain, as subzero-serve does on SIGINT.
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	return hs.Shutdown(shutdownCtx)
}
