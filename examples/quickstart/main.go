// Quickstart: define a two-operator workflow, run it with lineage
// capture, and trace a backward lineage query — the smallest end-to-end
// use of the subzero public API.
package main

import (
	"context"
	"fmt"
	"log"

	"subzero"
)

func main() {
	ctx := context.Background()
	// A system with in-memory lineage stores (pass
	// subzero.WithStorageDir(dir) for file-backed stores).
	sys, err := subzero.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Workflow: brighten an image, then smooth it.
	spec := subzero.NewSpec("quickstart")
	spec.Add("brighten",
		subzero.UnaryOp("brighten", func(x float64) float64 { return x * 1.5 }),
		subzero.FromExternal("image"))
	kernel, err := subzero.StandardKernels("gaussian3")
	if err != nil {
		log.Fatal(err)
	}
	smooth, err := subzero.ConvolveOp("smooth", kernel)
	if err != nil {
		log.Fatal(err)
	}
	spec.Add("smooth", smooth, subzero.FromNode("brighten"))

	// An 8x8 input image.
	img, err := subzero.NewArray("image", subzero.Shape{8, 8})
	if err != nil {
		log.Fatal(err)
	}
	for i := range img.Data() {
		img.Data()[i] = float64(i)
	}

	// Built-in operators are mapping operators: lineage costs nothing to
	// record and is computed from coordinates at query time.
	plan := subzero.Plan{
		"brighten": {subzero.StratMap},
		"smooth":   {subzero.StratMap},
	}
	run, err := sys.Execute(ctx, spec, plan, map[string]*subzero.Array{"image": img})
	if err != nil {
		log.Fatal(err)
	}

	// Which input pixels produced smoothed cell (3,3)?
	space := subzero.NewSpace(subzero.Shape{8, 8})
	cell := space.Ravel(subzero.Coord{3, 3})
	res, err := sys.Query(ctx, run, subzero.BackwardQuery(
		[]uint64{cell},
		subzero.Step{Node: "smooth"},
		subzero.Step{Node: "brighten"},
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backward lineage of smooth(3,3): %d input cells\n", len(res.Cells()))
	for _, c := range res.Cells() {
		fmt.Printf("  image%v\n", space.Unravel(c))
	}

	// And the other direction: which smoothed cells depend on image (0,0)?
	fres, err := sys.Query(ctx, run, subzero.ForwardQuery(
		[]uint64{space.Ravel(subzero.Coord{0, 0})},
		subzero.Step{Node: "brighten"},
		subzero.Step{Node: "smooth"},
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forward lineage of image(0,0): %d output cells\n", len(fres.Cells()))
}
