// Optimizer: the Figure-7 story through the public API. A payload UDF's
// lineage can be stored many ways; the ILP optimizer picks the best mix
// for a sample workload under a storage budget, switching from black-box
// (tight budget) to backward-optimized payload lineage to
// both-orientations lineage as the budget grows.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"subzero"
)

// window is a payload UDF: each output cell depends on its radius-1
// neighborhood, recorded as payload lineage (the radius) or full pairs.
type window struct {
	subzero.Meta
}

func newWindow() *window {
	return &window{Meta: subzero.Meta{
		OpName: "window",
		NIn:    1,
		Modes:  []subzero.Mode{subzero.Full, subzero.Pay},
	}}
}

func (w *window) OutShape(in []subzero.Shape) (subzero.Shape, error) { return in[0].Clone(), nil }

func (w *window) Run(rc *subzero.RunCtx, ins []*subzero.Array) (*subzero.Array, error) {
	in := ins[0]
	out, err := subzero.NewArray(w.OpName, in.Shape())
	if err != nil {
		return nil, err
	}
	sp := in.Space()
	var neigh []uint64
	one := make([]uint64, 1)
	for idx := uint64(0); idx < sp.Size(); idx++ {
		neigh = subzero.Neighborhood(sp, sp.Unravel(idx), 1, neigh[:0])
		sum := 0.0
		for _, n := range neigh {
			sum += in.Get(n)
		}
		out.Set(idx, sum/float64(len(neigh)))
		one[0] = idx
		if rc.NeedsPairs() {
			if err := rc.LWrite(one, neigh); err != nil {
				return nil, err
			}
		}
		if rc.NeedsPayload() {
			if err := rc.LWritePayload(one, []byte{1}); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func (w *window) MapP(mc *subzero.MapCtx, out uint64, payload []byte, _ int, dst []uint64) []uint64 {
	return subzero.Neighborhood(mc.InSpaces[0], mc.OutCoord(out), int(payload[0]), dst)
}

func main() {
	ctx := context.Background()
	sys, err := subzero.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	spec := subzero.NewSpec("optimizer-demo")
	spec.Add("scale", subzero.UnaryOp("scale", func(x float64) float64 { return x * 2 }),
		subzero.FromExternal("data"))
	spec.Add("window", newWindow(), subzero.FromNode("scale"))

	data, err := subzero.NewArray("data", subzero.Shape{200, 200})
	if err != nil {
		log.Fatal(err)
	}
	for i := range data.Data() {
		data.Data()[i] = float64(i % 97)
	}

	// Profiling run: materialize the UDF's Full and Pay lineage so the
	// optimizer works from measured volumes, not guesses.
	profile := subzero.Plan{
		"scale":  {subzero.StratMap},
		"window": {subzero.StratFullOne, subzero.StratPayOne},
	}
	run, err := sys.Execute(ctx, spec, profile, map[string]*subzero.Array{"data": data})
	if err != nil {
		log.Fatal(err)
	}

	// The sample workload the user expects to run: mostly backward.
	workload := []subzero.Query{
		subzero.BackwardQuery([]uint64{500, 501, 502},
			subzero.Step{Node: "window"}, subzero.Step{Node: "scale"}),
		subzero.BackwardQuery([]uint64{40000},
			subzero.Step{Node: "window"}),
		subzero.ForwardQuery([]uint64{123},
			subzero.Step{Node: "scale"}, subzero.Step{Node: "window"}),
	}

	fmt.Println("budget       chosen strategies for 'window'   est. disk     est. query cost")
	fmt.Println("-----------  -------------------------------  ------------  ---------------")
	for _, budgetMB := range []float64{0.001, 0.5, 2, 64} {
		report, err := sys.Optimize(ctx, run, workload, subzero.Constraints{
			MaxDiskBytes: subzero.MB(budgetMB),
		})
		if err != nil {
			log.Fatal(err)
		}
		var chosen []string
		for _, s := range report.Plan.Strategies("window") {
			chosen = append(chosen, s.String())
		}
		fmt.Printf("%8.3fMB   %-31s  %10dB   %.4g\n",
			budgetMB, strings.Join(chosen, " + "), report.DiskBytes, report.Objective)
	}
}
