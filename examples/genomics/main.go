// Genomics: the paper's clinician scenario (§II-B) on the full benchmark
// workflow that ships with this repository. A clinician inspects a
// relapse prediction through an interactive visualization; every
// interaction is a lineage query: "which training data supports this
// prediction?", "which values contributed to this model feature?", and
// "which predictions would this training value affect?".
//
// The workflow definition and data generator come from the repository's
// benchmark packages; execution, querying, and measurement all go through
// the public System API.
package main

import (
	"context"
	"fmt"
	"log"

	"subzero"
	"subzero/internal/genomics"
)

func main() {
	ctx := context.Background()
	sys, err := subzero.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// The interactive-visualization configuration from the paper: payload
	// lineage backward-optimized, plus forward-optimized full lineage —
	// "the genomics benchmark can devote up-front storage and runtime
	// overhead to ensure fast query execution".
	plan, err := genomics.Plan("PayBoth")
	if err != nil {
		log.Fatal(err)
	}
	spec, err := genomics.NewSpec()
	if err != nil {
		log.Fatal(err)
	}
	data, err := genomics.Generate(genomics.DefaultGenConfig().Scaled(10))
	if err != nil {
		log.Fatal(err)
	}
	run, err := sys.Execute(ctx, spec, plan, map[string]*subzero.Array{
		"train": data.Train, "test": data.Test,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow executed in %v; lineage storage %d bytes\n\n", run.Elapsed, sys.LineageBytes())

	queries, err := genomics.Queries(run)
	if err != nil {
		log.Fatal(err)
	}
	trainSpace := data.Train.Space()

	// Interaction 1: click a relapse prediction -> supporting training data.
	res, err := sys.Query(ctx, run, queries["BQ0"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prediction -> training data: %d supporting cells in %v\n",
		len(res.Cells()), res.Elapsed)
	features := map[int]bool{}
	for _, c := range res.Cells() {
		features[trainSpace.Unravel(c)[0]] = true
	}
	fmt.Printf("  touching %d distinct feature rows of the training matrix\n\n", len(features))

	// Interaction 2: click a model feature -> contributing values.
	res, err = sys.Query(ctx, run, queries["BQ1"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model feature -> training data: %d contributing cells in %v\n\n",
		len(res.Cells()), res.Elapsed)

	// Interaction 3: select training cells -> affected predictions.
	res, err = sys.Query(ctx, run, queries["FQ1"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training cells -> predictions: %d affected predictions in %v\n",
		len(res.Cells()), res.Elapsed)
	for _, step := range res.Steps {
		fmt.Printf("  step %-16s via %-24s -> %d cells\n", step.Node, step.AccessPath, step.OutCells)
	}
}
