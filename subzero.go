// Package subzero is a fine-grained lineage system for array-oriented
// scientific workflows — a from-scratch Go implementation of the system
// described in "SubZero: A Fine-Grained Lineage System for Scientific
// Databases" (Wu, Madden, Stonebraker; ICDE 2013).
//
// SubZero executes DAGs of operators over multi-dimensional arrays and
// records region lineage: relationships between sets of output cells and
// the sets of input cells that produced them. Operators expose lineage
// through the lwrite API and optional mapping functions; the system stores
// it under one of several encodings (FullOne, FullMany, PayOne, PayMany —
// each backward- or forward-optimized), computes it from coordinates
// (mapping lineage), or re-derives it by re-running operators (black-box
// lineage). An ILP-based optimizer picks the strategy mix that minimizes
// expected query cost under user storage/runtime budgets, and the query
// executor traces forward and backward lineage queries through the
// workflow, dynamically falling back to re-execution when materialized
// lineage underperforms.
//
// # Quick start
//
//	ctx := context.Background()
//	sys, _ := subzero.NewSystem()              // in-memory lineage stores
//	spec := subzero.NewSpec("pipeline")
//	spec.Add("double", subzero.UnaryOp("double", func(x float64) float64 { return 2 * x }),
//		subzero.FromExternal("src"))
//	src, _ := subzero.NewArray("src", subzero.Shape{4, 4})
//	run, _ := sys.Execute(ctx, spec, subzero.Plan{"double": {subzero.StratMap}},
//		map[string]*subzero.Array{"src": src})
//	res, _ := sys.Query(ctx, run, subzero.BackwardQuery([]uint64{5},
//		subzero.Step{Node: "double"}))
//	fmt.Println(res.Cells())                   // -> [5]
//
// Every blocking entry point takes a leading context.Context; cancelling
// it aborts workflow execution at the next operator boundary and query
// tracing at the next path step, returning the wrapped ctx.Err().
//
// A System is safe for concurrent use. Completed runs are registered
// under durable IDs — sys.Run(id) retrieves one, sys.DropRun(id)
// releases its lineage stores and array versions — and every query or
// optimize call accepts either the *Run or its ID string. QueryBatch
// executes many independent lineage queries over a bounded worker pool
// (see WithParallelism), the serving primitive for concurrent traffic.
//
// Custom operators implement the Operator interface (embed Meta for the
// boilerplate) and any of the BackwardMapper / ForwardMapper /
// PayloadMapper capabilities; see examples/quickstart.
package subzero

import (
	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/lineage"
	"subzero/internal/opt"
	"subzero/internal/query"
	"subzero/internal/workflow"
)

// Core data-model types.
type (
	// Array is a dense multi-dimensional array with named attributes.
	Array = array.Array
	// Shape is the per-dimension extent of an array.
	Shape = grid.Shape
	// Coord addresses one cell of an array.
	Coord = grid.Coord
	// Rect is an axis-aligned box of cells with inclusive bounds.
	Rect = grid.Rect
	// Space converts between coordinates and linear cell indices.
	Space = grid.Space
)

// Workflow types.
type (
	// Operator is the interface workflow operators implement.
	Operator = workflow.Operator
	// BackwardMapper is the optional map_b capability.
	BackwardMapper = workflow.BackwardMapper
	// ForwardMapper is the optional map_f capability.
	ForwardMapper = workflow.ForwardMapper
	// PayloadMapper is the optional map_p capability.
	PayloadMapper = workflow.PayloadMapper
	// Meta supplies the boilerplate half of Operator for embedding.
	Meta = workflow.Meta
	// RunCtx is passed to Operator.Run: cur_modes plus the lwrite API.
	RunCtx = workflow.RunCtx
	// MapCtx gives mapping functions access to array geometry.
	MapCtx = workflow.MapCtx
	// Spec is a workflow specification (an operator DAG).
	Spec = workflow.Spec
	// Node is one operator instance in a Spec.
	Node = workflow.Node
	// Input wires an operator input to a producer or external array.
	Input = workflow.Input
	// Plan assigns lineage strategies to workflow nodes.
	Plan = workflow.Plan
	// Run is one executed workflow instance.
	Run = workflow.Run
)

// Lineage types.
type (
	// Mode is a lineage mode (Blackbox, Full, Map, Pay, Comp).
	Mode = lineage.Mode
	// Strategy is a fully specified storage strategy.
	Strategy = lineage.Strategy
	// RegionPair relates output cells to input cells or a payload.
	RegionPair = lineage.RegionPair
	// OpStats is the statistics collector's per-operator view.
	OpStats = lineage.OpStats
	// IngestConfig sizes the sharded asynchronous capture pipeline.
	IngestConfig = lineage.IngestConfig
	// IngestSnapshot is a point-in-time view of the capture pipeline's
	// counters (shard utilization, queue pressure, flush latency).
	IngestSnapshot = lineage.IngestSnapshot
)

// Query types.
type (
	// Query is a forward or backward lineage query.
	Query = query.Query
	// Step is one (operator, input index) element of a query path.
	Step = query.Step
	// QueryOptions toggle the executor's optimizations.
	QueryOptions = query.Options
	// QueryResult is a completed query with per-step diagnostics.
	QueryResult = query.Result
	// Direction distinguishes backward from forward queries.
	Direction = query.Direction
)

// Optimizer types.
type (
	// Constraints are the optimizer's resource limits.
	Constraints = opt.Constraints
	// OptimizeReport explains an optimization outcome.
	OptimizeReport = opt.Report
	// StrategyChoice is one candidate row in an OptimizeReport.
	StrategyChoice = opt.Choice
)

// Lineage modes.
const (
	Blackbox = lineage.Blackbox
	Full     = lineage.Full
	MapMode  = lineage.Map
	Pay      = lineage.Pay
	Comp     = lineage.Comp
)

// Query directions.
const (
	Backward = query.Backward
	Forward  = query.Forward
)

// Named strategies (paper terminology; arrows show orientation).
var (
	StratBlackbox    = lineage.StratBlackbox
	StratMap         = lineage.StratMap
	StratFullOne     = lineage.StratFullOne
	StratFullMany    = lineage.StratFullMany
	StratPayOne      = lineage.StratPayOne
	StratPayMany     = lineage.StratPayMany
	StratCompOne     = lineage.StratCompOne
	StratCompMany    = lineage.StratCompMany
	StratFullOneFwd  = lineage.StratFullOneFwd
	StratFullManyFwd = lineage.StratFullManyFwd
)

// NewSpec creates an empty workflow specification.
func NewSpec(name string) *Spec { return workflow.NewSpec(name) }

// NewArray creates a zero-filled array.
func NewArray(name string, shape Shape, attrs ...string) (*Array, error) {
	return array.New(name, shape, attrs...)
}

// NewSpace builds a coordinate space for a shape.
func NewSpace(shape Shape) *Space { return grid.NewSpace(shape) }

// FromNode wires an operator input to another node's output.
func FromNode(id string) Input { return workflow.FromNode(id) }

// FromExternal wires an operator input to a named source array.
func FromExternal(name string) Input { return workflow.FromExternal(name) }

// BackwardQuery builds a backward lineage query from output cells of the
// first step's node through the given path.
func BackwardQuery(cells []uint64, steps ...Step) Query {
	return Query{Direction: Backward, Cells: cells, Path: steps}
}

// ForwardQuery builds a forward lineage query from input cells of the
// first step's node through the given path.
func ForwardQuery(cells []uint64, steps ...Step) Query {
	return Query{Direction: Forward, Cells: cells, Path: steps}
}

// Neighborhood appends the cells within Chebyshev distance radius of
// center (clipped to the space) — the common lineage pattern of local
// image operators.
func Neighborhood(sp *Space, center Coord, radius int, dst []uint64) []uint64 {
	return grid.Neighborhood(sp, center, radius, dst)
}

// DefaultQueryOptions enables every query optimization.
func DefaultQueryOptions() QueryOptions { return query.DefaultOptions() }
