module subzero

go 1.24
