package subzero_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"subzero"
	"subzero/internal/fault"
)

// oneNodeRun executes a single FullOne-materialized identity operator
// and returns the system plus its run.
func oneNodeRun(t *testing.T, opts ...subzero.Option) (*subzero.System, *subzero.Run) {
	t.Helper()
	sys, err := subzero.NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	spec := subzero.NewSpec("fault-test")
	spec.Add("id", subzero.UnaryOp("id", func(x float64) float64 { return x }),
		subzero.FromExternal("src"))
	src, err := subzero.NewArray("src", subzero.Shape{8})
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Execute(context.Background(), spec, subzero.Plan{"id": {subzero.StratFullOne}},
		map[string]*subzero.Array{"src": src})
	if err != nil {
		t.Fatal(err)
	}
	return sys, run
}

// TestCorruptionFallbackAndHeal is the tentpole's quarantine loop end to
// end: a decode fault at lookup time degrades the store, the query still
// answers through re-execution, the healer rebuilds the store in the
// background, and once the rebuild swaps in, queries serve from
// materialized lineage again.
func TestCorruptionFallbackAndHeal(t *testing.T) {
	defer fault.Reset()
	sys, run := oneNodeRun(t, subzero.WithStorageDir(t.TempDir()))
	q := subzero.BackwardQuery([]uint64{2}, subzero.Step{Node: "id"})

	if err := fault.Arm("lineage/lookup/decode", fault.Action{Kind: fault.KindError, Count: 1}); err != nil {
		t.Fatal(err)
	}
	// Dynamic off: the query-time optimizer's budget abort takes the same
	// fallback as corruption and would mask whether the fault fired.
	opts := subzero.DefaultQueryOptions()
	opts.Dynamic = false
	res, err := sys.QueryWith(context.Background(), run, q, opts)
	if err != nil {
		t.Fatalf("corrupt store must fall back, not fail: %v", err)
	}
	if cells := res.Cells(); len(cells) != 1 || cells[0] != 2 {
		t.Fatalf("fallback answer wrong: %v", cells)
	}
	if !res.Steps[0].FellBack || !strings.Contains(res.Steps[0].AccessPath, "reexec") {
		t.Fatalf("expected re-execution fallback, got %+v", res.Steps[0])
	}

	// The healer claimed the degraded store and is rebuilding it in the
	// background; wait for the inventory to clear.
	deadline := time.Now().Add(10 * time.Second)
	for len(sys.DegradedStores()) > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("store still degraded after heal window: %+v", sys.DegradedStores())
		}
		time.Sleep(5 * time.Millisecond)
	}
	attempts, successes, failures := sys.HealCounts()
	if attempts < 1 || successes < 1 {
		t.Fatalf("heal not recorded: attempts=%d successes=%d failures=%d", attempts, successes, failures)
	}

	// Post-heal, the swapped-in store serves from materialized lineage.
	res2, err := sys.QueryWith(context.Background(), run, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Steps[0].FellBack {
		t.Fatalf("healed store still falling back: %+v", res2.Steps[0])
	}
	if cells := res2.Cells(); len(cells) != 1 || cells[0] != 2 {
		t.Fatalf("healed answer wrong: %v", cells)
	}
}

// TestQueryBatchPanicContainment: a panic inside one batch query fails
// only that query's slot — the worker survives to drain the rest and
// the batch completes.
func TestQueryBatchPanicContainment(t *testing.T) {
	defer fault.Reset()
	sys, run := oneNodeRun(t)
	q := subzero.BackwardQuery([]uint64{1}, subzero.Step{Node: "id"})

	if err := fault.Arm("lineage/lookup/decode", fault.Action{Kind: fault.KindPanic, Count: 1}); err != nil {
		t.Fatal(err)
	}
	opts := subzero.DefaultQueryOptions()
	opts.Dynamic = false
	queries := []subzero.Query{q, q, q, q}
	br, err := sys.QueryBatch(context.Background(), run, queries, opts)
	if err != nil {
		t.Fatalf("a poisoned query must not fail the batch call: %v", err)
	}
	panics := 0
	for i := range queries {
		if br.Errs[i] == nil {
			if cells := br.Results[i].Cells(); len(cells) != 1 || cells[0] != 1 {
				t.Fatalf("query %d answer wrong: %v", i, cells)
			}
			continue
		}
		if !strings.Contains(br.Errs[i].Error(), "panic in query batch worker") {
			t.Fatalf("query %d: unexpected error %v", i, br.Errs[i])
		}
		panics++
	}
	if panics != 1 {
		t.Fatalf("exactly one query should have died on the panic, got %d", panics)
	}
	if br.Report.Failed != 1 || br.Report.Succeeded != len(queries)-1 {
		t.Fatalf("report miscounts the poisoned query: %+v", br.Report)
	}
}
