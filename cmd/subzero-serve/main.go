// Command subzero-serve runs SubZero as a network service: an HTTP/JSON
// API over one lineage System, serving workflow execution, run lifecycle,
// lineage queries (single and batched), optimizer runs, and
// introspection. See the README's "Serving" section for the endpoint
// table and curl examples.
//
//	subzero-serve [-addr :8080] [-dir /var/lib/subzero] [-parallelism 8]
//	              [-max-inflight 64] [-drain-timeout 30s] [-quiet]
//	              [-log-interval 30s] [-slow-query 250ms] [-query-timeout 5s]
//	              [-trace-sample 1.0] [-trace-retain 256] [-pprof]
//	              [-faults spec]
//
// Observability: metrics are exposed in Prometheus text format at
// GET /v1/metrics (OpenMetrics with exemplars under content negotiation);
// every request grows a span tree sampled at -trace-sample, retained in a
// ring of -trace-retain completed traces, and served at GET /v1/traces;
// queries slower than -slow-query are always retained and logged as one
// structured slog record carrying the trace ID. The daemon logs a
// one-line serving summary every -log-interval (quiet mode disables it);
// -pprof mounts net/http/pprof under /debug/pprof/.
//
// Ctrl-C (or SIGTERM) drains: the health check flips to "draining", new
// heavy requests are shed with 503, and in-flight queries run to
// completion (up to -drain-timeout) before the process exits. Lineage is
// a recoverable cache — with -dir unset everything lives in memory, and
// either way a restarted daemon rebuilds state by re-executing workflows.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"subzero"
	"subzero/internal/fault"
	"subzero/internal/server"
	"subzero/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "subzero-serve: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "lineage storage directory (default: in-memory stores)")
	parallelism := flag.Int("parallelism", 0, "query-batch worker pool size (default GOMAXPROCS)")
	maxInFlight := flag.Int("max-inflight", server.DefaultMaxInFlight, "bounded in-flight request cap")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight requests on shutdown")
	quiet := flag.Bool("quiet", false, "disable periodic summary and slow-query logging")
	ingestShards := flag.Int("ingest-shards", 0, "lineage ingest shard workers per run (<=1 keeps capture synchronous)")
	ingestDepth := flag.Int("ingest-depth", 0, "per-shard ingest queue depth in batches (default 8)")
	logInterval := flag.Duration("log-interval", 30*time.Second, "period between serving summary log lines (<=0 disables)")
	slowQuery := flag.Duration("slow-query", 0, "log one structured record per lineage query at least this slow and pin its trace (0 disables)")
	traceSample := flag.Float64("trace-sample", 1.0, "head-based trace sampling probability in [0,1]; sampled inbound traceparents are always traced")
	traceRetain := flag.Int("trace-retain", 0, "completed traces kept for /v1/traces (default 256; slow traces keep a separate quarter-size ring)")
	queryTimeout := flag.Duration("query-timeout", 0, "server-side deadline per query/query-batch request; exceeding it answers 504 (0 disables)")
	faults := flag.String("faults", "", "arm failpoints, e.g. 'kvstore/flush=error;server/handler=panic' (testing only; see internal/fault)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	// Failpoint activation: the -faults flag wins; otherwise the
	// SUBZERO_FAULTS environment variable. Both are no-ops in normal
	// operation — unarmed failpoints compile to an atomic load.
	if *faults != "" {
		if err := fault.ArmSpec(*faults); err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		logger.Warn("failpoints armed from -faults", "spec", *faults)
	} else if err := fault.ArmFromEnv(); err != nil {
		return fmt.Errorf("%s: %w", fault.EnvVar, err)
	} else if spec := os.Getenv(fault.EnvVar); spec != "" {
		logger.Warn("failpoints armed from environment", "spec", spec)
	}

	var opts []subzero.Option
	if *dir != "" {
		opts = append(opts, subzero.WithStorageDir(*dir))
	}
	if *parallelism > 0 {
		opts = append(opts, subzero.WithParallelism(*parallelism))
	}
	if *ingestShards > 1 {
		opts = append(opts, subzero.WithIngest(*ingestShards, *ingestDepth))
	}
	sys, err := subzero.NewSystem(opts...)
	if err != nil {
		return err
	}
	defer sys.Close()

	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}
	traceCfg := trace.Config{Sample: *traceSample, Slow: *slowQuery}
	if *traceRetain > 0 {
		traceCfg.Capacity = *traceRetain
		traceCfg.SlowCapacity = max(*traceRetain/4, 1)
	}
	srv, err := server.New(server.Config{
		System:       sys,
		MaxInFlight:  *maxInFlight,
		Logger:       reqLogger,
		SlowQuery:    *slowQuery,
		QueryTimeout: *queryTimeout,
		Tracer:       trace.New(traceCfg),
		EnablePprof:  *pprofOn,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic one-line serving summaries from the latency histograms —
	// the replacement for per-request log lines. Quiet mode stays quiet.
	if !*quiet && *logInterval > 0 {
		go func() {
			ticker := time.NewTicker(*logInterval)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					logger.Info("summary", "stats", srv.Summary())
				}
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() {
		logger.Info("serving",
			"addr", *addr,
			"store", storeDesc(*dir),
			"max_inflight", *maxInFlight,
			"trace_sample", *traceSample)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop advertising health, shed new work, let active
	// queries finish.
	logger.Info("signal received; draining", "timeout", *drainTimeout)
	// DrainFor records the drain window so shed clients get a Retry-After
	// spanning the remainder instead of a blind constant.
	srv.DrainFor(*drainTimeout)
	// Derive from the signal context without inheriting its cancellation:
	// it has already fired, and the drain deadline must outlive it.
	shutdownCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		logger.Warn("drain incomplete; closing", "err", err)
		hs.Close()
	}
	logger.Info("final summary; bye", "stats", srv.Summary())
	return <-errc
}

func storeDesc(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}
