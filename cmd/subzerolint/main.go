// Command subzerolint runs SubZero's invariant analyzers (internal/lint)
// over Go packages. It supports two modes:
//
// Standalone, over package patterns (the way CI runs it):
//
//	subzerolint ./...
//	subzerolint -dir /path/to/module ./internal/...
//
// As a go vet tool, speaking the vet config protocol:
//
//	go build -o bin/subzerolint ./cmd/subzerolint
//	go vet -vettool=$(pwd)/bin/subzerolint ./...
//
// Exit status is 0 when the tree is clean, 1 when findings were
// reported, and 2 on loader or usage errors. Findings are suppressed
// only by an explicit `//lint:ignore subzero/<analyzer> reason` comment
// on or directly above the flagged line.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"subzero/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go vet driver probes its tool before use: -V=full must print a
	// version line ending in a content hash of the executable (the build
	// cache keys vet results on it), -flags the supported flag set.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V=") {
		return printVersion()
	}
	fs := flag.NewFlagSet("subzerolint", flag.ContinueOnError)
	dir := fs.String("dir", ".", "directory of the module to analyze (standalone mode)")
	listFlags := fs.Bool("flags", false, "print the tool's flags as JSON (vet protocol)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listFlags {
		fmt.Println("[]")
		return 0
	}
	rest := fs.Args()

	if len(rest) > 0 && rest[0] == "help" {
		printHelp(rest[1:])
		return 0
	}

	// A single *.cfg argument is the vet driver handing us one package's
	// compilation unit.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		findings, err := runVetUnit(rest[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "subzerolint: %v\n", err)
			return 2
		}
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", f.Pos, f.Message, "subzero/"+f.Analyzer)
		}
		if len(findings) > 0 {
			return 1
		}
		return 0
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "subzerolint: %v\n", err)
		return 2
	}
	exit := 0
	for _, pkg := range pkgs {
		findings, err := lint.RunAnalyzers(pkg, lint.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "subzerolint: %v\n", err)
			return 2
		}
		for _, f := range findings {
			fmt.Printf("%s: %s [%s]\n", f.Pos, f.Message, "subzero/"+f.Analyzer)
			exit = 1
		}
	}
	return exit
}

// printVersion emits the `-V=full` line in the form cmd/go parses:
// "<name> version <version> buildID=<hash of the binary>".
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "subzerolint: %v\n", err)
		return 2
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "subzerolint: %v\n", err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "subzerolint: %v\n", err)
		return 2
	}
	fmt.Printf("subzerolint version devel buildID=%02x\n", h.Sum(nil))
	return 0
}

func printHelp(names []string) {
	analyzers := lint.All()
	if len(names) > 0 {
		analyzers = analyzers[:0]
		for _, n := range names {
			if a := lint.ByName(n); a != nil {
				analyzers = append(analyzers, a)
			} else {
				fmt.Fprintf(os.Stderr, "subzerolint: unknown analyzer %q\n", n)
			}
		}
	}
	fmt.Println("subzerolint enforces SubZero's concurrency, cancellation, and wire-format invariants:")
	fmt.Println()
	for _, a := range analyzers {
		fmt.Printf("  subzero/%s\n      %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("Suppress a finding with `//lint:ignore subzero/<analyzer> reason` on or above the line.")
}
