package main

import "testing"

// TestVetProtocolProbes covers the handshakes the go vet driver performs
// before handing the tool any work.
func TestVetProtocolProbes(t *testing.T) {
	if got := run([]string{"-V=full"}); got != 0 {
		t.Errorf("run(-V=full) = %d, want 0", got)
	}
	if got := run([]string{"-flags"}); got != 0 {
		t.Errorf("run(-flags) = %d, want 0", got)
	}
	if got := run([]string{"help"}); got != 0 {
		t.Errorf("run(help) = %d, want 0", got)
	}
	if got := run([]string{"help", "ctxflow"}); got != 0 {
		t.Errorf("run(help ctxflow) = %d, want 0", got)
	}
}

// TestBadModuleFails pins the contract the CI lint job relies on: a tree
// with violations makes the binary exit 1.
func TestBadModuleFails(t *testing.T) {
	if got := run([]string{"-dir", "testdata/badmodule", "./..."}); got != 1 {
		t.Fatalf("run over the bad module = %d, want 1", got)
	}
}

// TestUnknownPatternErrors distinguishes loader errors (exit 2) from
// findings (exit 1).
func TestUnknownPatternErrors(t *testing.T) {
	if got := run([]string{"-dir", "testdata/badmodule", "./nosuchpkg"}); got != 2 {
		t.Fatalf("run over a bogus pattern = %d, want 2", got)
	}
}
