package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"subzero/internal/lint"
)

// vetConfig is the compilation-unit description `go vet` hands its tool:
// one package's sources plus export data for everything it imports. Field
// names follow cmd/go's vet JSON.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one vet compilation unit. It mirrors the
// x/tools unitchecker contract: typecheck the unit against the
// driver-provided export data, run the suite, write the (empty — the
// analyzers export no facts) vetx output, and report findings.
func runVetUnit(cfgPath string) ([]lint.Finding, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parse vet config %s: %w", cfgPath, err)
	}
	// The driver caches facts through the vetx file; ours is always empty
	// but must exist for the protocol to succeed.
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, nil, 0o666)
	}
	if cfg.VetxOnly {
		return nil, writeVetx()
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, gf := range cfg.GoFiles {
		if !filepath.IsAbs(gf) {
			gf = filepath.Join(cfg.Dir, gf)
		}
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, writeVetx()
			}
			return nil, err
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeVetx()
		}
		return nil, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}

	pkg := &lint.Package{
		PkgPath:   cfg.ImportPath,
		Name:      tpkg.Name(),
		Dir:       cfg.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}
	findings, err := lint.RunAnalyzers(pkg, lint.All())
	if err != nil {
		return nil, err
	}
	return findings, writeVetx()
}
