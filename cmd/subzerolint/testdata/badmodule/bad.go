// Package badmod is a known-bad fixture module: subzerolint must exit
// non-zero when run over it. It violates two invariants — a context is
// minted in library code, and a variable written via sync/atomic is
// read plainly.
package badmod

import (
	"context"
	"sync/atomic"
)

var hits int64

// Touch mixes atomic and plain access to the same variable.
func Touch() int64 {
	atomic.AddInt64(&hits, 1)
	return hits
}

// Mint fabricates a context instead of accepting one from the caller.
func Mint() context.Context {
	return context.Background()
}
