package main

import (
	"context"
	"fmt"
	"time"

	"subzero/internal/benchfmt"
	"subzero/internal/microbench"
	"subzero/internal/trace"
)

// traceFigure measures end-to-end tracing overhead on the microbenchmark
// backward-lookup workload: the same fixture is queried with tracing off
// (no span in the context — the allocation-free idle path) and with an
// always-sample tracer growing a full span tree per query. The table also
// reports the tracer's retention counters, so a run doubles as a sanity
// check that every sampled trace lands in the ring.
func traceFigure(ctx context.Context, opts options) error {
	cfg := microbench.DefaultConfig()
	cfg.Rows, cfg.Cols = opts.microSize, opts.microSize
	cfg.Fanin, cfg.Fanout = 25, 4
	fmt.Printf("tracing overhead: %dx%d array, fanin=%d fanout=%d, strategy <-FullOne\n\n",
		cfg.Rows, cfg.Cols, cfg.Fanin, cfg.Fanout)
	f, err := microbench.NewFixture(ctx, cfg, "<-FullOne", opts.dir)
	if err != nil {
		return err
	}
	defer f.Close()

	const rounds = 200
	measure := func(tr *trace.Tracer) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < rounds; i++ {
			sp := tr.StartRequest("bench backward", "")
			if _, err := f.Backward(trace.ContextWithSpan(ctx, sp)); err != nil {
				return 0, err
			}
			sp.End()
		}
		return time.Since(start) / rounds, nil
	}

	off, err := measure(nil)
	if err != nil {
		return err
	}
	tr := trace.New(trace.Config{Sample: 1})
	on, err := measure(tr)
	if err != nil {
		return err
	}

	t := benchfmt.NewTable("Tracing: backward lookup, span trees off vs on",
		"mode", "mean/op", "overhead")
	t.AddRow("off", off, "-")
	t.AddRow("on", on, fmt.Sprintf("%+.1f%%", 100*(float64(on)/float64(off)-1)))
	render(t)

	snap := tr.Snapshot()
	st := benchfmt.NewTable("Tracing: retention counters (traced mode)",
		"counter", "value")
	st.AddRow("started", snap.Started)
	st.AddRow("sampled", snap.Sampled)
	st.AddRow("retained", snap.Retained)
	st.AddRow("slow", snap.Slow)
	st.AddRow("truncated", snap.Truncated)
	st.AddRow("late", snap.Late)
	render(st)
	if snap.Sampled != rounds {
		return fmt.Errorf("trace: sampled %d of %d requests at sample=1", snap.Sampled, rounds)
	}
	return nil
}
