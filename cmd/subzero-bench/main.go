// Command subzero-bench regenerates every table and figure of the SubZero
// paper's evaluation (§VIII) on this implementation:
//
//	subzero-bench fig5a   astronomy disk & runtime overhead per strategy
//	subzero-bench fig5b   astronomy query costs (BQ0-BQ4, FQ0, FQ0-Slow)
//	subzero-bench fig6a   genomics disk & runtime overhead per strategy
//	subzero-bench fig6b   genomics query costs, query-time optimizer OFF
//	subzero-bench fig6c   genomics query costs, query-time optimizer ON
//	subzero-bench fig7    genomics optimizer sweep over storage budgets
//	subzero-bench fig8    microbenchmark overhead vs fanin/fanout
//	subzero-bench fig9    microbenchmark backward query cost
//	subzero-bench capture capture overhead with lineage on/off, serial vs
//	                      sharded asynchronous ingest (-ingest-shards)
//	subzero-bench obs     observability snapshot: ingest stall/flush and
//	                      query/kvstore latency histograms under load
//	subzero-bench trace   end-to-end tracing overhead on the backward
//	                      lookup, span trees off vs on, plus retention
//	                      counters
//	subzero-bench compress  record-codec ablation: store size and encode
//	                      time per pair under the v2 span codec vs the v3
//	                      tiled container codec, per workload shape and
//	                      encoding
//	subzero-bench all     everything above
//
// Absolute numbers differ from the 2013 Python/BerkeleyDB prototype; the
// harness reports the same rows/series so shapes and ratios can be
// compared (see EXPERIMENTS.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"subzero"
	"subzero/internal/astro"
	"subzero/internal/benchfmt"
	"subzero/internal/genomics"
	"subzero/internal/lineage"
	"subzero/internal/microbench"
	"subzero/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "subzero-bench: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	astroScale   float64
	genScale     int
	microSize    int
	dir          string
	ingestShards int
	ingestDepth  int
}

// jsonReport collects every rendered table when -json is set, for the
// machine-readable BENCH.json artifact tracked across changes.
var jsonReport *benchfmt.JSONReport

// render prints a table and records it in the JSON report when enabled.
func render(t *benchfmt.Table) {
	t.Render(os.Stdout)
	jsonReport.Add(t)
}

func run(args []string) error {
	fs := flag.NewFlagSet("subzero-bench", flag.ContinueOnError)
	opts := options{}
	quick := fs.Bool("quick", false, "run at reduced scale for a fast smoke pass")
	fs.Float64Var(&opts.astroScale, "astro-scale", 1.0, "astronomy image scale (1.0 = paper's 512x2000)")
	fs.IntVar(&opts.genScale, "gen-scale", 100, "genomics patient replication (100 = paper)")
	fs.IntVar(&opts.microSize, "micro-size", 1000, "microbenchmark array side (1000 = paper)")
	fs.StringVar(&opts.dir, "dir", "", "lineage storage directory (default: in-memory stores)")
	fs.IntVar(&opts.ingestShards, "ingest-shards", 4, "shard workers for the capture table's sharded rows (capture figure)")
	fs.IntVar(&opts.ingestDepth, "ingest-depth", 0, "per-shard ingest queue depth in batches (default 8)")
	jsonPath := fs.String("json", "", "also write the figure tables as machine-readable JSON to this path (e.g. BENCH.json)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile at exit to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonPath != "" {
		jsonReport = &benchfmt.JSONReport{}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "subzero-bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "subzero-bench: memprofile: %v\n", err)
			}
		}()
	}
	if *quick {
		opts.astroScale = 0.2
		opts.genScale = 5
		opts.microSize = 300
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: subzero-bench [flags] fig5a|fig5b|fig6a|fig6b|fig6c|fig7|fig8|fig9|capture|obs|trace|compress|all")
	}
	// Ctrl-C cancels the in-flight workflow or query via the v2 context-
	// aware API.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cmd := fs.Arg(0)
	runners := map[string]func(context.Context, options) error{
		"fig5a": fig5a, "fig5b": fig5b,
		"fig6a": fig6a, "fig6b": fig6b, "fig6c": fig6c,
		"fig7": fig7, "fig8": fig8, "fig9": fig9,
		"capture": capture, "obs": obsFigure, "trace": traceFigure,
		"compress": compressFigure,
	}
	if cmd == "all" {
		for _, name := range []string{"fig5a", "fig5b", "fig6a", "fig6b", "fig6c", "fig7", "fig8", "fig9", "capture", "obs", "trace", "compress"} {
			if err := runners[name](ctx, opts); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return writeJSON(*jsonPath)
	}
	fn, ok := runners[cmd]
	if !ok {
		return fmt.Errorf("unknown figure %q", cmd)
	}
	if err := fn(ctx, opts); err != nil {
		return err
	}
	return writeJSON(*jsonPath)
}

// writeJSON flushes the collected tables when -json is set.
func writeJSON(path string) error {
	if path == "" || jsonReport == nil {
		return nil
	}
	if err := jsonReport.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("wrote %d figure tables to %s\n", jsonReport.Len(), path)
	return nil
}

// astroResults caches one full astronomy pass per process so fig5a and
// fig5b share it under "all".
var astroCache []*astro.StrategyResult

func astroResults(ctx context.Context, opts options) ([]*astro.StrategyResult, error) {
	if astroCache != nil {
		return astroCache, nil
	}
	cfg := astro.DefaultGenConfig().Scaled(opts.astroScale)
	fmt.Printf("astronomy benchmark: %dx%d px, %d stars, %d cosmic rays/exposure\n\n",
		cfg.Rows, cfg.Cols, cfg.Stars, cfg.CosmicRays)
	for _, name := range astro.StrategyNames {
		start := time.Now()
		res, err := astro.RunStrategy(ctx, name, cfg, opts.dir)
		if err != nil {
			return nil, err
		}
		fmt.Printf("  ran %-12s in %s\n", name, benchfmt.Duration(time.Since(start)))
		astroCache = append(astroCache, res)
	}
	fmt.Println()
	return astroCache, nil
}

func fig5a(ctx context.Context, opts options) error {
	results, err := astroResults(ctx, opts)
	if err != nil {
		return err
	}
	t := benchfmt.NewTable("Figure 5(a): astronomy disk and runtime overhead",
		"strategy", "disk", "disk/inputs", "runtime", "runtime/blackbox")
	base := results[0]
	for _, r := range results {
		t.AddRow(r.Name,
			benchfmt.Bytes(r.LineageBytes+r.BaselineBytes),
			benchfmt.Ratio(float64(r.LineageBytes+r.BaselineBytes), float64(r.BaselineBytes)),
			r.RunTime,
			benchfmt.Ratio(float64(r.RunTime), float64(base.RunTime)))
	}
	render(t)
	return nil
}

func fig5b(ctx context.Context, opts options) error {
	results, err := astroResults(ctx, opts)
	if err != nil {
		return err
	}
	headers := append([]string{"strategy"}, astro.QueryNames...)
	t := benchfmt.NewTable("Figure 5(b): astronomy query costs", headers...)
	for _, r := range results {
		row := []any{r.Name}
		for _, qn := range astro.QueryNames {
			row = append(row, r.QueryTimes[qn])
		}
		t.AddRow(row...)
	}
	render(t)
	return nil
}

var genCache []*genomics.StrategyResult

func genResults(ctx context.Context, opts options) ([]*genomics.StrategyResult, error) {
	if genCache != nil {
		return genCache, nil
	}
	cfg := genomics.DefaultGenConfig().Scaled(opts.genScale)
	fmt.Printf("genomics benchmark: %dx%d training matrix (scale %dx)\n\n",
		genomics.NumRows, genomics.BasePatients*cfg.Scale, cfg.Scale)
	for _, name := range genomics.StrategyNames {
		start := time.Now()
		res, err := genomics.RunStrategy(ctx, name, cfg, opts.dir)
		if err != nil {
			return nil, err
		}
		fmt.Printf("  ran %-9s in %s\n", name, benchfmt.Duration(time.Since(start)))
		genCache = append(genCache, res)
	}
	fmt.Println()
	return genCache, nil
}

func fig6a(ctx context.Context, opts options) error {
	results, err := genResults(ctx, opts)
	if err != nil {
		return err
	}
	t := benchfmt.NewTable("Figure 6(a): genomics disk and runtime overhead",
		"strategy", "disk", "disk/inputs", "runtime", "runtime/blackbox")
	base := results[0]
	for _, r := range results {
		t.AddRow(r.Name,
			benchfmt.Bytes(r.LineageBytes),
			benchfmt.Ratio(float64(r.LineageBytes), float64(r.BaselineBytes)),
			r.RunTime,
			benchfmt.Ratio(float64(r.RunTime), float64(base.RunTime)))
	}
	render(t)
	return nil
}

func genQueryTable(title string, results []*genomics.StrategyResult, pick func(*genomics.StrategyResult) map[string]time.Duration) {
	headers := append([]string{"strategy"}, genomics.QueryNames...)
	t := benchfmt.NewTable(title, headers...)
	for _, r := range results {
		row := []any{r.Name}
		for _, qn := range genomics.QueryNames {
			row = append(row, pick(r)[qn])
		}
		t.AddRow(row...)
	}
	render(t)
}

func fig6b(ctx context.Context, opts options) error {
	results, err := genResults(ctx, opts)
	if err != nil {
		return err
	}
	genQueryTable("Figure 6(b): genomics query costs (static: query-time optimizer OFF)",
		results, func(r *genomics.StrategyResult) map[string]time.Duration { return r.Static })
	return nil
}

func fig6c(ctx context.Context, opts options) error {
	results, err := genResults(ctx, opts)
	if err != nil {
		return err
	}
	genQueryTable("Figure 6(c): genomics query costs (dynamic: query-time optimizer ON)",
		results, func(r *genomics.StrategyResult) map[string]time.Duration { return r.Dynamic })
	return nil
}

func fig7(ctx context.Context, opts options) error {
	cfg := genomics.DefaultGenConfig().Scaled(opts.genScale)
	budgets := []int64{1 << 20, 10 << 20, 20 << 20, 50 << 20, 100 << 20}
	fmt.Printf("genomics optimizer sweep (budgets 1..100 MB, scale %dx)\n\n", cfg.Scale)
	results, err := genomics.OptimizerSweep(ctx, cfg, budgets, opts.dir)
	if err != nil {
		return err
	}
	headers := append([]string{"config", "budget", "disk", "runtime"}, genomics.QueryNames...)
	t := benchfmt.NewTable("Figure 7: optimizer-chosen plans vs storage budget", headers...)
	for _, r := range results {
		row := []any{r.Name, benchfmt.Bytes(r.BudgetBytes), benchfmt.Bytes(r.LineageBytes), r.RunTime}
		for _, qn := range genomics.QueryNames {
			row = append(row, r.QueryTimes[qn])
		}
		t.AddRow(row...)
	}
	render(t)
	for _, r := range results {
		fmt.Printf("  %s plan:\n", r.Name)
		for _, id := range genomics.UDFIDs {
			fmt.Printf("    %-16s %v\n", id, r.Plan.Strategies(id))
		}
	}
	fmt.Println()
	return nil
}

// capture reproduces the BENCH_5 capture-overhead table: workflow runtime
// with lineage off (BlackBox) and on, comparing the serial write path
// against the sharded asynchronous ingest pipeline on the genomics and
// astronomy workloads. "op overhead" is the lineage time the operator
// threads pay — under sharding it collapses to the enqueue + drain cost,
// while the encode work moves to the shard workers ("encode" column).
func capture(ctx context.Context, opts options) error {
	shards := opts.ingestShards
	if shards < 2 {
		shards = 2
	}
	configs := []struct {
		label  string
		ingest lineage.IngestConfig
	}{
		{"serial", lineage.IngestConfig{}},
		{fmt.Sprintf("sharded x%d", shards), lineage.IngestConfig{Shards: shards, Depth: opts.ingestDepth}},
	}
	t := benchfmt.NewTable("Capture overhead: serial vs sharded asynchronous ingest",
		"workload", "strategy", "ingest", "pairs", "runtime", "op write", "drain", "capture total", "encode")
	fmt.Printf("capture-overhead sweep (shards=%d)\n\n", shards)

	type captureRow struct {
		workload, strategy, ingestLabel   string
		pairs                             int64
		elapsed, opWrite, drain, overhead time.Duration
		encode                            time.Duration
	}
	var rows []captureRow
	genCfg := genomics.DefaultGenConfig().Scaled(opts.genScale)
	for _, strat := range []string{"BlackBox", "FullOne", "FullMany"} {
		for _, cfg := range configs {
			if strat == "BlackBox" && cfg.ingest.Enabled() {
				continue // no lineage to capture; one baseline row suffices
			}
			res, err := genomics.CaptureRun(ctx, strat, genCfg, cfg.ingest, opts.dir)
			if err != nil {
				return fmt.Errorf("genomics %s/%s: %w", strat, cfg.label, err)
			}
			rows = append(rows, captureRow{"genomics", strat, cfg.label, res.Pairs, res.Elapsed, res.OpWrite, res.Drain, res.Overhead, res.Encode})
		}
	}
	astroCfg := astro.DefaultGenConfig().Scaled(opts.astroScale)
	for _, strat := range []string{"BlackBox", "FullOne", "FullMany"} {
		for _, cfg := range configs {
			if strat == "BlackBox" && cfg.ingest.Enabled() {
				continue
			}
			res, err := astro.CaptureRun(ctx, strat, astroCfg, cfg.ingest, opts.dir)
			if err != nil {
				return fmt.Errorf("astronomy %s/%s: %w", strat, cfg.label, err)
			}
			rows = append(rows, captureRow{"astronomy", strat, cfg.label, res.Pairs, res.Elapsed, res.OpWrite, res.Drain, res.Overhead, res.Encode})
		}
	}
	for _, r := range rows {
		t.AddRow(r.workload, r.strategy, r.ingestLabel, r.pairs, r.elapsed, r.opWrite, r.drain, r.overhead, r.encode)
	}
	render(t)
	return nil
}

// obsFigure snapshots the observability layer under load: the genomics
// workflow executes on a full System with sharded ingest (so enqueue-stall
// and drain-barrier histograms fill), the paper's query workload runs a
// few rounds, and the resulting obs histograms — the same ones
// subzero-serve exposes at /v1/metrics — land in the JSON report so
// latency-distribution regressions are tracked alongside the figure
// tables.
func obsFigure(ctx context.Context, opts options) error {
	shards := opts.ingestShards
	if shards < 2 {
		shards = 2
	}
	sys, err := subzero.NewSystem(subzero.WithIngest(shards, opts.ingestDepth))
	if err != nil {
		return err
	}
	defer sys.Close()
	cfg := genomics.DefaultGenConfig().Scaled(opts.genScale)
	fmt.Printf("observability snapshot: genomics scale %dx, ingest shards=%d\n\n", cfg.Scale, shards)
	spec, err := genomics.NewSpec()
	if err != nil {
		return err
	}
	data, err := genomics.Generate(cfg)
	if err != nil {
		return err
	}
	plan, err := genomics.Plan("PayBoth")
	if err != nil {
		return err
	}
	run, err := sys.Execute(ctx, spec, plan, map[string]*subzero.Array{"train": data.Train, "test": data.Test})
	if err != nil {
		return err
	}
	qmap, err := genomics.Queries(run)
	if err != nil {
		return err
	}
	var queries []subzero.Query
	for _, qn := range genomics.QueryNames {
		queries = append(queries, qmap[qn])
	}
	const rounds = 5
	for r := 0; r < rounds; r++ {
		br, err := sys.QueryBatch(ctx, run, queries, subzero.DefaultQueryOptions())
		if err != nil {
			return err
		}
		if br.Report.Failed != 0 {
			return fmt.Errorf("obs: %d workload queries failed", br.Report.Failed)
		}
	}
	set := sys.Observability()
	t := benchfmt.NewTable("Observability: ingest + query + kvstore latency histograms",
		"metric", "count", "p50", "p95", "p99", "mean", "total")
	addHist := func(name string, h *obs.Histogram) {
		s := h.Snapshot()
		t.AddRow(name, s.Count,
			time.Duration(s.Quantile(0.50)), time.Duration(s.Quantile(0.95)),
			time.Duration(s.Quantile(0.99)), time.Duration(s.Mean()), time.Duration(s.Sum))
	}
	addHist("ingest enqueue stall", set.Ingest.EnqueueStall)
	addHist("ingest flush barrier", set.Ingest.Flush)
	addHist("query backward", set.Query.Latency[0])
	addHist("query forward", set.Query.Latency[1])
	addHist("kvstore get-batch", set.KV.GetBatchLatency)
	addHist("kvstore put-batch", set.KV.PutBatchLatency)
	render(t)
	return nil
}

// compressFigure is the v3-codec ablation: every compression workload ×
// encoding is written twice — once under the v2 span codec, once under
// the v3 tiled container codec — into otherwise identical stores, and
// the table reports stored bytes, bytes/pair, encode time/pair, and the
// v2/v3 size ratio, plus each store's ratio to its uncompressed logical
// volume. Before measuring, each combination's backward answers are
// cross-checked between the codecs.
func compressFigure(ctx context.Context, opts options) error {
	scale := opts.microSize / 300 // quick = 300 → 1, full = 1000 → 3
	if scale < 1 {
		scale = 1
	}
	fmt.Printf("record-codec ablation: v2 spans vs v3 containers (scale %dx)\n\n", scale)
	t := benchfmt.NewTable("Compression: v2 span codec vs v3 container codec",
		"workload", "encoding", "pairs",
		"v2 bytes", "v3 bytes", "v2/v3",
		"v2 B/pair", "v3 B/pair",
		"v2 enc/pair", "v3 enc/pair",
		"logical/v3")
	for _, workload := range microbench.CompressWorkloads {
		for _, strat := range microbench.CompressStrategies {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := microbench.CompressVerify(workload, strat, 1); err != nil {
				return err
			}
			v2, err := microbench.CompressRun(workload, strat, lineage.CodecV2, scale)
			if err != nil {
				return fmt.Errorf("%s/%s v2: %w", workload, strat, err)
			}
			v3, err := microbench.CompressRun(workload, strat, lineage.CodecV3, scale)
			if err != nil {
				return fmt.Errorf("%s/%s v3: %w", workload, strat, err)
			}
			t.AddRow(workload, strat.String(), v3.Pairs,
				benchfmt.Bytes(v2.LineageBytes), benchfmt.Bytes(v3.LineageBytes),
				benchfmt.Ratio(float64(v2.LineageBytes), float64(v3.LineageBytes)),
				fmt.Sprintf("%.1f", v2.BytesPerPair()), fmt.Sprintf("%.1f", v3.BytesPerPair()),
				v2.EncodePerPair(), v3.EncodePerPair(),
				benchfmt.Ratio(float64(v3.LogicalBytes), float64(v3.LineageBytes)))
		}
	}
	render(t)
	return nil
}

var microFanins = []int{1, 25, 50, 75, 100}
var microFanouts = []int{1, 100}

func microSweep(ctx context.Context, opts options) (map[string]map[[2]int]*microbench.Result, error) {
	out := map[string]map[[2]int]*microbench.Result{}
	for _, strat := range microbench.StrategyNames {
		out[strat] = map[[2]int]*microbench.Result{}
		for _, fanout := range microFanouts {
			for _, fanin := range microFanins {
				cfg := microbench.DefaultConfig()
				cfg.Rows, cfg.Cols = opts.microSize, opts.microSize
				cfg.Fanin, cfg.Fanout = fanin, fanout
				res, err := microbench.Run(ctx, cfg, strat, opts.dir)
				if err != nil {
					return nil, fmt.Errorf("%s fanin=%d fanout=%d: %w", strat, fanin, fanout, err)
				}
				out[strat][[2]int{fanin, fanout}] = res
			}
		}
	}
	return out, nil
}

var microCache map[string]map[[2]int]*microbench.Result

func microResults(ctx context.Context, opts options) (map[string]map[[2]int]*microbench.Result, error) {
	if microCache != nil {
		return microCache, nil
	}
	fmt.Printf("microbenchmark: %dx%d array, 10%% coverage, fanins %v, fanouts %v\n\n",
		opts.microSize, opts.microSize, microFanins, microFanouts)
	var err error
	microCache, err = microSweep(ctx, opts)
	return microCache, err
}

func fig8(ctx context.Context, opts options) error {
	results, err := microResults(ctx, opts)
	if err != nil {
		return err
	}
	for _, fanout := range microFanouts {
		t := benchfmt.NewTable(
			fmt.Sprintf("Figure 8: microbench overhead (fanout=%d)", fanout),
			"strategy", "fanin", "disk", "runtime")
		for _, strat := range microbench.StrategyNames {
			for _, fanin := range microFanins {
				r := results[strat][[2]int{fanin, fanout}]
				t.AddRow(strat, fanin, benchfmt.Bytes(r.LineageBytes), r.RunTime)
			}
		}
		render(t)
	}
	return nil
}

func fig9(ctx context.Context, opts options) error {
	results, err := microResults(ctx, opts)
	if err != nil {
		return err
	}
	for _, fanout := range microFanouts {
		t := benchfmt.NewTable(
			fmt.Sprintf("Figure 9: microbench backward queries, 1000 cells (fanout=%d)", fanout),
			"strategy", "fanin", "backward", "forward")
		for _, strat := range microbench.StrategyNames {
			for _, fanin := range microFanins {
				r := results[strat][[2]int{fanin, fanout}]
				t.AddRow(strat, fanin, r.BackwardQuery, r.ForwardQuery)
			}
		}
		render(t)
	}
	return nil
}
