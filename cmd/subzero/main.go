// Command subzero is an interactive demonstration of the lineage system:
// it executes the astronomy benchmark workflow at a chosen scale, prints
// the workflow and strategy assignment, runs the benchmark's lineage
// queries, and reports per-step access paths, timings, and storage.
//
//	subzero [-scale 0.25] [-strategy SubZero] [-dir /tmp/subzero] [-optimize]
//
// With -optimize it additionally profiles the workflow, runs the ILP
// strategy optimizer under the given -budget, and reports the chosen plan.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"subzero/internal/astro"
	"subzero/internal/benchfmt"
	"subzero/internal/genomics"
	"subzero/internal/kvstore"
	"subzero/internal/lineage"
	"subzero/internal/opt"
	"subzero/internal/query"
	"subzero/internal/workflow"

	"subzero/internal/array"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "subzero: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	scale := flag.Float64("scale", 0.25, "astronomy image scale (1.0 = 512x2000)")
	strategy := flag.String("strategy", "SubZero", "lineage strategy: BlackBox|BlackBoxOpt|FullOne|FullMany|SubZero")
	dir := flag.String("dir", "", "lineage storage directory (default in-memory)")
	optimize := flag.Bool("optimize", false, "also run the ILP strategy optimizer (genomics workflow)")
	budget := flag.Int64("budget", 20<<20, "optimizer storage budget in bytes")
	flag.Parse()

	// Ctrl-C cancels the workflow or query mid-flight through the v2
	// context-aware API.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := demoAstro(ctx, *scale, *strategy, *dir); err != nil {
		return err
	}
	if *optimize {
		return demoOptimizer(ctx, *budget)
	}
	return nil
}

func demoAstro(ctx context.Context, scale float64, strategy, dir string) error {
	cfg := astro.DefaultGenConfig().Scaled(scale)
	fmt.Printf("SubZero demo — astronomy workflow (%dx%d px, strategy %s)\n\n", cfg.Rows, cfg.Cols, strategy)

	plan, err := astro.Plan(strategy)
	if err != nil {
		return err
	}
	spec, err := astro.NewSpec()
	if err != nil {
		return err
	}
	sky, err := astro.Generate(cfg)
	if err != nil {
		return err
	}
	mgr, err := kvstore.NewManager(dir)
	if err != nil {
		return err
	}
	defer mgr.Close()
	stats := lineage.NewCollector()
	exec := workflow.NewExecutor(array.NewVersions(), mgr, stats)

	run, err := exec.Execute(ctx, spec, plan, map[string]*array.Array{
		"img1": sky.Exposure1, "img2": sky.Exposure2,
	})
	if err != nil {
		return err
	}
	fmt.Printf("workflow: %d operators (%d built-ins, %d UDFs)\n",
		len(spec.Nodes()), len(astro.BuiltinIDs()), len(astro.UDFIDs))
	fmt.Printf("executed in %s; lineage overhead %s; lineage storage %s\n\n",
		benchfmt.Duration(run.Elapsed), benchfmt.Duration(run.LineageOverhead),
		benchfmt.ByteCount(run.LineageBytes()))

	fmt.Println("strategy assignment (UDFs):")
	for _, id := range astro.UDFIDs {
		fmt.Printf("  %-14s %v\n", id, run.Strategies(id))
	}
	fmt.Println()

	queries, err := astro.Queries(run)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(queries))
	for n := range queries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		q := queries[name]
		qe := query.New(run, stats, query.DefaultOptions())
		res, err := qe.Execute(ctx, q)
		if err != nil {
			return fmt.Errorf("query %s: %w", name, err)
		}
		fmt.Printf("%s (%s, %d query cells -> %d result cells, %s)\n",
			name, q.Direction, len(q.Cells), res.Bitmap.Count(), benchfmt.Duration(res.Elapsed))
		for _, step := range res.Steps {
			fmt.Printf("    %-16s input %d  via %-28s %8d -> %-8d %s\n",
				step.Node, step.InputIdx, step.AccessPath, step.InCells, step.OutCells,
				benchfmt.Duration(step.Elapsed))
		}
	}
	return nil
}

func demoOptimizer(ctx context.Context, budget int64) error {
	fmt.Printf("\nstrategy optimizer demo — genomics workflow (budget %s)\n\n", benchfmt.ByteCount(budget))
	results, err := genomics.OptimizerSweep(ctx, genomics.DefaultGenConfig().Scaled(10), []int64{budget}, "")
	if err != nil {
		return err
	}
	r := results[0]
	fmt.Printf("chosen plan (lineage %s, runtime %s):\n",
		benchfmt.ByteCount(r.LineageBytes), benchfmt.Duration(r.RunTime))
	for _, id := range genomics.UDFIDs {
		fmt.Printf("  %-16s %v\n", id, r.Plan.Strategies(id))
	}
	fmt.Println("\nquery costs under the chosen plan:")
	for _, qn := range genomics.QueryNames {
		fmt.Printf("  %-4s %s\n", qn, benchfmt.Duration(r.QueryTimes[qn]))
	}
	_ = opt.Constraints{} // (package reference for documentation linkage)
	return nil
}
