package subzero_test

import (
	"context"
	"fmt"
	"testing"

	"subzero"
	"subzero/internal/astro"
	"subzero/internal/genomics"
	"subzero/internal/microbench"
)

// TestEndToEndAstroThroughFacade drives the full astronomy benchmark
// workflow through the public System API and cross-checks two strategy
// configurations against each other.
func TestEndToEndAstroThroughFacade(t *testing.T) {
	cfg := astro.DefaultGenConfig().Scaled(0.1)
	answers := map[string]map[string]int{}
	for _, strategy := range []string{"BlackBoxOpt", "SubZero"} {
		sys, err := subzero.NewSystem()
		if err != nil {
			t.Fatal(err)
		}
		plan, err := astro.Plan(strategy)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := astro.NewSpec()
		if err != nil {
			t.Fatal(err)
		}
		sky, err := astro.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		run, err := sys.Execute(context.Background(), spec, plan, map[string]*subzero.Array{
			"img1": sky.Exposure1, "img2": sky.Exposure2,
		})
		if err != nil {
			t.Fatal(err)
		}
		queries, err := astro.Queries(run)
		if err != nil {
			t.Fatal(err)
		}
		answers[strategy] = map[string]int{}
		for name, q := range queries {
			res, err := sys.Query(context.Background(), run, q)
			if err != nil {
				t.Fatalf("%s/%s: %v", strategy, name, err)
			}
			answers[strategy][name] = len(res.Cells())
		}
		sys.Close()
	}
	for name, n := range answers["BlackBoxOpt"] {
		if answers["SubZero"][name] != n {
			t.Fatalf("query %s: SubZero=%d cells, BlackBoxOpt=%d", name, answers["SubZero"][name], n)
		}
	}
}

// TestEndToEndGenomicsOptimizerLoop exercises the paper's full loop
// through the facade: profile, optimize, re-execute under the chosen
// plan, and verify the answers match the profiling run.
func TestEndToEndGenomicsOptimizerLoop(t *testing.T) {
	sys, err := subzero.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	spec, err := genomics.NewSpec()
	if err != nil {
		t.Fatal(err)
	}
	data, err := genomics.Generate(genomics.DefaultGenConfig().Scaled(2))
	if err != nil {
		t.Fatal(err)
	}
	profile := subzero.Plan{}
	for _, id := range genomics.BuiltinIDs() {
		profile[id] = []subzero.Strategy{subzero.StratMap}
	}
	for _, id := range genomics.UDFIDs {
		profile[id] = []subzero.Strategy{subzero.StratFullOne, subzero.StratPayOne}
	}
	sources := map[string]*subzero.Array{"train": data.Train, "test": data.Test}
	profRun, err := sys.Execute(context.Background(), spec, profile, sources)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := genomics.Queries(profRun)
	if err != nil {
		t.Fatal(err)
	}
	var workload []subzero.Query
	truth := map[string]int{}
	for name, q := range queries {
		workload = append(workload, q)
		res, err := sys.Query(context.Background(), profRun, q)
		if err != nil {
			t.Fatal(err)
		}
		truth[name] = len(res.Cells())
	}

	rep, err := sys.Optimize(context.Background(), profRun, workload, subzero.Constraints{MaxDiskBytes: subzero.MB(64)})
	if err != nil {
		t.Fatal(err)
	}
	optRun, err := sys.Execute(context.Background(), spec, rep.Plan, sources)
	if err != nil {
		t.Fatal(err)
	}
	optQueries, err := genomics.Queries(optRun)
	if err != nil {
		t.Fatal(err)
	}
	for name, q := range optQueries {
		res, err := sys.Query(context.Background(), optRun, q)
		if err != nil {
			t.Fatalf("optimized %s: %v", name, err)
		}
		if len(res.Cells()) != truth[name] {
			t.Fatalf("optimized plan changed %s: %d cells, want %d", name, len(res.Cells()), truth[name])
		}
	}
}

// TestMicrobenchCrossoverShape pins Figure 8's qualitative shape: at high
// fanout, FullMany stores fewer bytes than FullOne (which duplicates one
// hash entry per output cell); at fanout 1 FullOne is competitive.
func TestMicrobenchCrossoverShape(t *testing.T) {
	run := func(fanin, fanout int, strat string) *microbench.Result {
		t.Helper()
		cfg := microbench.DefaultConfig()
		cfg.Rows, cfg.Cols = 200, 200
		cfg.Fanin, cfg.Fanout = fanin, fanout
		res, err := microbench.Run(context.Background(), cfg, strat, "")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	highFanout := [2]*microbench.Result{run(10, 64, "<-FullOne"), run(10, 64, "<-FullMany")}
	if highFanout[1].LineageBytes >= highFanout[0].LineageBytes {
		t.Fatalf("fanout 64: FullMany (%d B) should beat FullOne (%d B)",
			highFanout[1].LineageBytes, highFanout[0].LineageBytes)
	}
	lowFanout := [2]*microbench.Result{run(10, 1, "<-FullOne"), run(10, 1, "<-FullMany")}
	if lowFanout[0].LineageBytes >= 2*lowFanout[1].LineageBytes {
		t.Fatalf("fanout 1: FullOne (%d B) should be competitive with FullMany (%d B)",
			lowFanout[0].LineageBytes, lowFanout[1].LineageBytes)
	}
}

// TestBenchmarkHarnessSmoke runs one strategy of each benchmark end to end
// exactly as the subzero-bench binary would, at smoke scale.
func TestBenchmarkHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := astro.RunStrategy(context.Background(), "SubZero", astro.DefaultGenConfig().Scaled(0.1), t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if _, err := genomics.RunStrategy(context.Background(), "PayOne", genomics.DefaultGenConfig().Scaled(2), t.TempDir()); err != nil {
		t.Fatal(err)
	}
	cfg := microbench.DefaultConfig()
	cfg.Rows, cfg.Cols = 150, 150
	for _, strat := range microbench.StrategyNames {
		if _, err := microbench.Run(context.Background(), cfg, strat, t.TempDir()); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
	}
	budgets := []int64{1 << 20, 0}
	if _, err := genomics.OptimizerSweep(context.Background(), genomics.DefaultGenConfig().Scaled(2), budgets, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

// TestQueryResultsStableAcrossRuns guards determinism: two executions of
// the same workflow and queries give identical results (required for the
// benchmarks to be reproducible).
func TestQueryResultsStableAcrossRuns(t *testing.T) {
	counts := make([]string, 2)
	for i := range counts {
		sys, err := subzero.NewSystem()
		if err != nil {
			t.Fatal(err)
		}
		plan, _ := astro.Plan("SubZero")
		spec, _ := astro.NewSpec()
		sky, _ := astro.Generate(astro.DefaultGenConfig().Scaled(0.1))
		run, err := sys.Execute(context.Background(), spec, plan, map[string]*subzero.Array{
			"img1": sky.Exposure1, "img2": sky.Exposure2,
		})
		if err != nil {
			t.Fatal(err)
		}
		queries, _ := astro.Queries(run)
		sig := ""
		for _, name := range astro.QueryNames {
			if q, ok := queries[name]; ok {
				res, err := sys.Query(context.Background(), run, q)
				if err != nil {
					t.Fatal(err)
				}
				sig += fmt.Sprintf("%s=%d;", name, res.Bitmap.Count())
			}
		}
		counts[i] = sig
		sys.Close()
	}
	if counts[0] != counts[1] {
		t.Fatalf("non-deterministic results:\n%s\n%s", counts[0], counts[1])
	}
}
