package subzero_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"subzero"
)

// ingestPipeline builds a system with the sharded asynchronous capture
// pipeline enabled and a spec whose nodes store full lineage.
func ingestPipeline(t *testing.T, shards int) (*subzero.System, *subzero.Spec, subzero.Plan, map[string]*subzero.Array) {
	t.Helper()
	sys, err := subzero.NewSystem(subzero.WithIngest(shards, 2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	spec := subzero.NewSpec("ingest")
	spec.Add("double", subzero.UnaryOp("double", func(x float64) float64 { return 2 * x }),
		subzero.FromExternal("src"))
	kernel, err := subzero.StandardKernels("box3")
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := subzero.ConvolveOp("smooth", kernel)
	if err != nil {
		t.Fatal(err)
	}
	spec.Add("smooth", smooth, subzero.FromNode("double"))
	src, err := subzero.NewArray("src", subzero.Shape{16, 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := range src.Data() {
		src.Data()[i] = float64(i)
	}
	plan := subzero.Plan{
		"double": {subzero.StratFullOne},
		"smooth": {subzero.StratFullMany},
	}
	return sys, spec, plan, map[string]*subzero.Array{"src": src}
}

func ingestQueries(n int) []subzero.Query {
	queries := make([]subzero.Query, n)
	for i := range queries {
		queries[i] = subzero.Query{
			Direction: subzero.Backward,
			Cells:     []uint64{uint64((i * 13) % 256)},
			Path: []subzero.Step{
				{Node: "smooth", InputIdx: 0},
				{Node: "double", InputIdx: 0},
			},
		}
	}
	return queries
}

// Satellite: QueryBatch against a completed run must return byte-identical
// results while other workflows execute through the sharded ingest
// pipeline — capture activity on one run must never bleed into the
// consistency of another. Run under -race.
func TestQueryBatchRacesShardedExecution(t *testing.T) {
	sys, spec, plan, sources := ingestPipeline(t, 4)
	ctx := context.Background()
	run, err := sys.Execute(ctx, spec, plan, sources)
	if err != nil {
		t.Fatal(err)
	}
	queries := ingestQueries(24)

	// Reference answers from the fully flushed, quiescent store.
	want, err := sys.QueryBatch(ctx, run, queries, subzero.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range want.Errs {
		if e != nil {
			t.Fatalf("reference query %d failed: %v", i, e)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	execErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r, err := sys.Execute(ctx, spec, plan, sources)
			if err != nil {
				execErr <- err
				return
			}
			if err := sys.DropRun(r.ID); err != nil {
				execErr <- err
				return
			}
		}
	}()

	for round := 0; round < 8; round++ {
		got, err := sys.QueryBatch(ctx, run, queries, subzero.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range queries {
			if got.Errs[i] != nil {
				t.Fatalf("round %d query %d: %v", round, i, got.Errs[i])
			}
			if err := sameCells(got.Results[i], want.Results[i]); err != nil {
				t.Fatalf("round %d query %d: %v", round, i, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-execErr:
		t.Fatal(err)
	default:
	}
}

// Queries addressed at the very run being captured must also be
// consistent: execute with sharded ingest, immediately batch-query the
// returned run, and compare against a serially captured system.
func TestShardedSystemMatchesSerialSystem(t *testing.T) {
	ctx := context.Background()
	serialSys, spec, plan, sources := ingestPipeline(t, 0)
	serialRun, err := serialSys.Execute(ctx, spec, plan, sources)
	if err != nil {
		t.Fatal(err)
	}
	shardedSys, spec2, plan2, sources2 := ingestPipeline(t, 4)
	shardedRun, err := shardedSys.Execute(ctx, spec2, plan2, sources2)
	if err != nil {
		t.Fatal(err)
	}
	queries := ingestQueries(16)
	a, err := serialSys.QueryBatch(ctx, serialRun, queries, subzero.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := shardedSys.QueryBatch(ctx, shardedRun, queries, subzero.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if a.Errs[i] != nil || b.Errs[i] != nil {
			t.Fatalf("query %d errs: %v / %v", i, a.Errs[i], b.Errs[i])
		}
		if err := sameCells(b.Results[i], a.Results[i]); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	snap := shardedSys.IngestSnapshot()
	if snap.Shards != 4 || snap.Pairs == 0 {
		t.Fatalf("sharded system snapshot not populated: %+v", snap)
	}
	if got := serialSys.IngestSnapshot(); got.Shards != 0 || got.Pairs != 0 {
		t.Fatalf("serial system should report an idle pipeline: %+v", got)
	}
}

// sameCells asserts two query results carry identical result bitmaps.
func sameCells(got, want *subzero.QueryResult) error {
	g, w := got.Cells(), want.Cells()
	if len(g) != len(w) {
		return fmt.Errorf("result has %d cells, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			return fmt.Errorf("cell %d = %d, want %d", i, g[i], w[i])
		}
	}
	return nil
}
