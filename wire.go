// Wire-format DTOs: the JSON types exchanged by the lineage-as-a-service
// HTTP layer (internal/server) and its typed Go client (client). They live
// in the root package because they are part of SubZero's public surface:
// the stable, versioned representation of queries, results, plans, and
// constraints that survives across the network boundary.
//
// Durations travel as integer nanoseconds (the _ns suffix) and strategies
// as their paper names (see StrategyName / ParseStrategy), so payloads are
// self-describing and stable across client and server versions.

package subzero

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"subzero/internal/obs"
	"subzero/internal/trace"
)

// ---------------------------------------------------------------------
// Strategies and plans
// ---------------------------------------------------------------------

// strategyNames maps wire names to strategies in a fixed order so
// StrategyNames() is deterministic.
var strategyNames = []struct {
	name string
	s    Strategy
}{
	{"Blackbox", StratBlackbox},
	{"Map", StratMap},
	{"FullOne", StratFullOne},
	{"FullMany", StratFullMany},
	{"PayOne", StratPayOne},
	{"PayMany", StratPayMany},
	{"CompOne", StratCompOne},
	{"CompMany", StratCompMany},
	{"FullOneFwd", StratFullOneFwd},
	{"FullManyFwd", StratFullManyFwd},
}

// StrategyName returns the stable wire name of a strategy ("FullOne",
// "PayMany", "FullOneFwd", ...). Unknown strategies fall back to the
// diagnostic String() form.
func StrategyName(s Strategy) string {
	for _, e := range strategyNames {
		if e.s == s {
			return e.name
		}
	}
	return s.String()
}

// ParseStrategy resolves a wire name (case-insensitive) to a strategy.
func ParseStrategy(name string) (Strategy, error) {
	for _, e := range strategyNames {
		if strings.EqualFold(e.name, name) {
			return e.s, nil
		}
	}
	return Strategy{}, fmt.Errorf("subzero: unknown strategy %q", name)
}

// StrategyNames lists every wire strategy name in declaration order.
func StrategyNames() []string {
	out := make([]string, len(strategyNames))
	for i, e := range strategyNames {
		out[i] = e.name
	}
	return out
}

// WirePlan is the wire form of a Plan: node id -> strategy names.
type WirePlan map[string][]string

// NewWirePlan converts a Plan to its wire form.
func NewWirePlan(p Plan) WirePlan {
	if p == nil {
		return nil
	}
	out := make(WirePlan, len(p))
	for node, strategies := range p {
		names := make([]string, len(strategies))
		for i, s := range strategies {
			names[i] = StrategyName(s)
		}
		out[node] = names
	}
	return out
}

// Plan converts the wire form back to a Plan, validating every name.
func (w WirePlan) Plan() (Plan, error) {
	if w == nil {
		return nil, nil
	}
	out := make(Plan, len(w))
	for node, names := range w {
		strategies := make([]Strategy, len(names))
		for i, name := range names {
			s, err := ParseStrategy(name)
			if err != nil {
				return nil, fmt.Errorf("node %q: %w", node, err)
			}
			strategies[i] = s
		}
		out[node] = strategies
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------

// Wire direction names.
const (
	WireBackward = "backward"
	WireForward  = "forward"
)

// WireStep is one path element of a wire query.
type WireStep struct {
	Node  string `json:"node"`
	Input int    `json:"input,omitempty"`
}

// WireQuery is the wire form of a lineage Query.
type WireQuery struct {
	Direction string     `json:"direction"`
	Cells     []uint64   `json:"cells"`
	Path      []WireStep `json:"path"`
}

// NewWireQuery converts a Query to its wire form.
func NewWireQuery(q Query) WireQuery {
	dir := WireBackward
	if q.Direction == Forward {
		dir = WireForward
	}
	steps := make([]WireStep, len(q.Path))
	for i, st := range q.Path {
		steps[i] = WireStep{Node: st.Node, Input: st.InputIdx}
	}
	return WireQuery{Direction: dir, Cells: q.Cells, Path: steps}
}

// Query converts the wire form back to a Query, validating the direction.
func (w WireQuery) Query() (Query, error) {
	var dir Direction
	switch strings.ToLower(w.Direction) {
	case WireBackward, "":
		dir = Backward
	case WireForward:
		dir = Forward
	default:
		return Query{}, fmt.Errorf("subzero: unknown query direction %q", w.Direction)
	}
	steps := make([]Step, len(w.Path))
	for i, st := range w.Path {
		steps[i] = Step{Node: st.Node, InputIdx: st.Input}
	}
	return Query{Direction: dir, Cells: w.Cells, Path: steps}, nil
}

// WireQueryOptions is the wire form of QueryOptions. Nil pointers (or a
// nil *WireQueryOptions) mean "use the default", which enables every
// optimization.
type WireQueryOptions struct {
	EntireArray *bool `json:"entire_array,omitempty"`
	Dynamic     *bool `json:"dynamic,omitempty"`
}

// Options resolves the wire form against the defaults.
func (w *WireQueryOptions) Options() QueryOptions {
	opts := DefaultQueryOptions()
	if w == nil {
		return opts
	}
	if w.EntireArray != nil {
		opts.EntireArray = *w.EntireArray
	}
	if w.Dynamic != nil {
		opts.Dynamic = *w.Dynamic
	}
	return opts
}

// WireStepReport is the wire form of one per-step query diagnostic.
type WireStepReport struct {
	Node       string `json:"node"`
	Input      int    `json:"input"`
	AccessPath string `json:"access_path"`
	InCells    uint64 `json:"in_cells"`
	OutCells   uint64 `json:"out_cells"`
	ElapsedNS  int64  `json:"elapsed_ns"`
	FellBack   bool   `json:"fell_back,omitempty"`
}

// WireQueryResult is the wire form of a QueryResult. Cells is always
// non-nil so empty results serialize as [] rather than null.
type WireQueryResult struct {
	Cells     []uint64         `json:"cells"`
	Steps     []WireStepReport `json:"steps,omitempty"`
	ElapsedNS int64            `json:"elapsed_ns"`
}

// NewWireQueryResult converts a QueryResult to its wire form.
func NewWireQueryResult(r *QueryResult) *WireQueryResult {
	if r == nil {
		return nil
	}
	cells := r.Cells()
	if cells == nil {
		cells = []uint64{}
	}
	steps := make([]WireStepReport, len(r.Steps))
	for i, st := range r.Steps {
		steps[i] = WireStepReport{
			Node:       st.Node,
			Input:      st.InputIdx,
			AccessPath: st.AccessPath,
			InCells:    st.InCells,
			OutCells:   st.OutCells,
			ElapsedNS:  st.Elapsed.Nanoseconds(),
			FellBack:   st.FellBack,
		}
	}
	return &WireQueryResult{Cells: cells, Steps: steps, ElapsedNS: r.Elapsed.Nanoseconds()}
}

// WireBatchReport is the wire form of a BatchReport.
type WireBatchReport struct {
	Queries     int    `json:"queries"`
	Succeeded   int    `json:"succeeded"`
	Failed      int    `json:"failed"`
	Cells       uint64 `json:"cells"`
	QueryTimeNS int64  `json:"query_time_ns"`
	ElapsedNS   int64  `json:"elapsed_ns"`
}

// NewWireBatchReport converts a BatchReport to its wire form.
func NewWireBatchReport(r BatchReport) WireBatchReport {
	return WireBatchReport{
		Queries:     r.Queries,
		Succeeded:   r.Succeeded,
		Failed:      r.Failed,
		Cells:       r.Cells,
		QueryTimeNS: r.QueryTime.Nanoseconds(),
		ElapsedNS:   r.Elapsed.Nanoseconds(),
	}
}

// ---------------------------------------------------------------------
// Constraints and optimizer reports
// ---------------------------------------------------------------------

// WireConstraints is the wire form of optimizer Constraints.
type WireConstraints struct {
	MaxDiskBytes int64   `json:"max_disk_bytes,omitempty"`
	MaxRuntimeNS int64   `json:"max_runtime_ns,omitempty"`
	Beta         float64 `json:"beta,omitempty"`
}

// NewWireConstraints converts Constraints to their wire form.
func NewWireConstraints(c Constraints) WireConstraints {
	return WireConstraints{
		MaxDiskBytes: c.MaxDiskBytes,
		MaxRuntimeNS: c.MaxRuntime.Nanoseconds(),
		Beta:         c.Beta,
	}
}

// Constraints converts the wire form back to Constraints.
func (w WireConstraints) Constraints() Constraints {
	return Constraints{
		MaxDiskBytes: w.MaxDiskBytes,
		MaxRuntime:   time.Duration(w.MaxRuntimeNS),
		Beta:         w.Beta,
	}
}

// WireStrategyChoice is one candidate row of a wire optimizer report.
type WireStrategyChoice struct {
	Strategy  string `json:"strategy"`
	DiskBytes int64  `json:"disk_bytes"`
	RuntimeNS int64  `json:"runtime_ns"`
	Chosen    bool   `json:"chosen,omitempty"`
}

// WireOptimizeReport is the wire form of an OptimizeReport.
type WireOptimizeReport struct {
	Plan        WirePlan                        `json:"plan"`
	PerNode     map[string][]WireStrategyChoice `json:"per_node,omitempty"`
	Objective   float64                         `json:"objective"`
	DiskBytes   int64                           `json:"disk_bytes"`
	RuntimeNS   int64                           `json:"runtime_ns"`
	SolveTimeNS int64                           `json:"solve_time_ns"`
	Status      string                          `json:"status"`
}

// NewWireOptimizeReport converts an OptimizeReport to its wire form.
func NewWireOptimizeReport(rep *OptimizeReport) *WireOptimizeReport {
	if rep == nil {
		return nil
	}
	perNode := make(map[string][]WireStrategyChoice, len(rep.PerNode))
	for node, choices := range rep.PerNode {
		rows := make([]WireStrategyChoice, len(choices))
		for i, c := range choices {
			rows[i] = WireStrategyChoice{
				Strategy:  StrategyName(c.Strategy),
				DiskBytes: c.DiskBytes,
				RuntimeNS: c.Runtime.Nanoseconds(),
				Chosen:    c.Chosen,
			}
		}
		perNode[node] = rows
	}
	return &WireOptimizeReport{
		Plan:        NewWirePlan(rep.Plan),
		PerNode:     perNode,
		Objective:   rep.Objective,
		DiskBytes:   rep.DiskBytes,
		RuntimeNS:   rep.Runtime.Nanoseconds(),
		SolveTimeNS: rep.SolveTime.Nanoseconds(),
		Status:      rep.Status.String(),
	}
}

// ---------------------------------------------------------------------
// Runs, stats, and service envelopes
// ---------------------------------------------------------------------

// WireRunInfo describes one registered run.
type WireRunInfo struct {
	ID           string   `json:"id"`
	Workflow     string   `json:"workflow"`
	Nodes        int      `json:"nodes"`
	ElapsedNS    int64    `json:"elapsed_ns"`
	LineageBytes int64    `json:"lineage_bytes"`
	Plan         WirePlan `json:"plan,omitempty"`
}

// NewWireRunInfo summarizes a run for the wire.
func NewWireRunInfo(run *Run) *WireRunInfo {
	if run == nil {
		return nil
	}
	return &WireRunInfo{
		ID:           run.ID,
		Workflow:     run.Spec.Name,
		Nodes:        len(run.Spec.Nodes()),
		ElapsedNS:    run.Elapsed.Nanoseconds(),
		LineageBytes: run.LineageBytes(),
		Plan:         NewWirePlan(run.Plan),
	}
}

// WireExecuteRequest asks the server to execute a catalog workflow.
// Workflow names a server-side catalog entry; Plan names one of its
// configurations; ExplicitPlan (node -> strategy names) overrides Plan
// when present. Scale and Seed parameterize the workflow's source
// generator (zero means the workflow default).
type WireExecuteRequest struct {
	Workflow     string   `json:"workflow"`
	Plan         string   `json:"plan,omitempty"`
	ExplicitPlan WirePlan `json:"explicit_plan,omitempty"`
	Scale        float64  `json:"scale,omitempty"`
	Seed         int64    `json:"seed,omitempty"`
}

// WireQueryRequest is the body of POST /v1/runs/{id}/query.
type WireQueryRequest struct {
	Query   WireQuery         `json:"query"`
	Options *WireQueryOptions `json:"options,omitempty"`
}

// WireBatchRequest is the body of POST /v1/runs/{id}/query-batch.
type WireBatchRequest struct {
	Queries []WireQuery       `json:"queries"`
	Options *WireQueryOptions `json:"options,omitempty"`
}

// WireBatchResponse is index-aligned with the submitted queries: exactly
// one of Results[i], Errors[i] is non-zero.
type WireBatchResponse struct {
	Results []*WireQueryResult `json:"results"`
	Errors  []string           `json:"errors"`
	Report  WireBatchReport    `json:"report"`
}

// WireOptimizeRequest is the body of POST /v1/runs/{id}/optimize. Forced
// pins strategies per node (node -> strategy names).
type WireOptimizeRequest struct {
	Workload    []WireQuery         `json:"workload"`
	Constraints WireConstraints     `json:"constraints"`
	Forced      map[string][]string `json:"forced,omitempty"`
}

// WireWorkflowInfo describes one catalog workflow.
type WireWorkflowInfo struct {
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	Plans       []string `json:"plans,omitempty"`
	DefaultPlan string   `json:"default_plan,omitempty"`
}

// WireOpStats is the wire form of one operator's statistics.
type WireOpStats struct {
	Node         string `json:"node"`
	Runs         int    `json:"runs"`
	ExecNS       int64  `json:"exec_ns"`
	LineageNS    int64  `json:"lineage_ns"`
	Pairs        int64  `json:"pairs"`
	OutCells     int64  `json:"out_cells"`
	InCells      int64  `json:"in_cells"`
	PayloadBytes int64  `json:"payload_bytes"`
	QuerySteps   int    `json:"query_steps"`
	QueryNS      int64  `json:"query_ns"`
	Reexecs      int    `json:"reexecs"`
}

// NewWireOpStats converts OpStats to their wire form.
func NewWireOpStats(s OpStats) WireOpStats {
	return WireOpStats{
		Node:         s.NodeID,
		Runs:         s.Runs,
		ExecNS:       s.ExecTime.Nanoseconds(),
		LineageNS:    s.LineageTime.Nanoseconds(),
		Pairs:        s.Pairs,
		OutCells:     s.OutCells,
		InCells:      s.InCells,
		PayloadBytes: s.PayloadBytes,
		QuerySteps:   s.QuerySteps,
		QueryNS:      s.QueryTime.Nanoseconds(),
		Reexecs:      s.Reexecs,
	}
}

// WireServerMetrics is the serving layer's own health counters.
type WireServerMetrics struct {
	Requests     int64 `json:"requests"`
	InFlight     int64 `json:"in_flight"`
	Rejected     int64 `json:"rejected"`
	Cancelled    int64 `json:"cancelled"`
	ClientErrors int64 `json:"client_errors"`
	ServerErrors int64 `json:"server_errors"`
}

// WireIngestStats is the capture pipeline's health view: queue pressure,
// per-shard utilization, and flush (drain barrier) latency. Shards of 0
// means the synchronous write path is in use.
type WireIngestStats struct {
	Shards         int     `json:"shards"`
	Depth          int     `json:"depth"`
	Batches        int64   `json:"batches"`
	Pairs          int64   `json:"pairs"`
	QueueHighWater int     `json:"queue_high_water"`
	EncodeNS       int64   `json:"encode_ns"`
	FlushNS        int64   `json:"flush_ns"` // summed drain-barrier latency (legacy name, kept stable)
	FlushMinNS     int64   `json:"flush_min_ns"`
	FlushAvgNS     int64   `json:"flush_avg_ns"`
	FlushMaxNS     int64   `json:"flush_max_ns"`
	Flushes        int64   `json:"flushes"`
	ShardPairs     []int64 `json:"shard_pairs,omitempty"`
	ShardBusyNS    []int64 `json:"shard_busy_ns,omitempty"`
}

// NewWireIngestStats converts an ingest snapshot to its wire form.
func NewWireIngestStats(s IngestSnapshot) WireIngestStats {
	out := WireIngestStats{
		Shards:         s.Shards,
		Depth:          s.Depth,
		Batches:        s.Batches,
		Pairs:          s.Pairs,
		QueueHighWater: s.QueueHighWater,
		EncodeNS:       s.EncodeTime.Nanoseconds(),
		FlushNS:        s.FlushTime.Nanoseconds(),
		FlushMinNS:     s.FlushMin.Nanoseconds(),
		FlushAvgNS:     s.FlushAvg.Nanoseconds(),
		FlushMaxNS:     s.FlushMax.Nanoseconds(),
		Flushes:        s.Flushes,
	}
	if len(s.ShardPairs) > 0 {
		out.ShardPairs = append([]int64(nil), s.ShardPairs...)
		out.ShardBusyNS = make([]int64, len(s.ShardBusy))
		for i, d := range s.ShardBusy {
			out.ShardBusyNS[i] = d.Nanoseconds()
		}
	}
	return out
}

// WireQueryClassProfile summarizes one query class's latency
// distribution (quantiles interpolated from the obs histogram buckets).
type WireQueryClassProfile struct {
	Class  string `json:"class"` // "backward" or "forward"
	Count  int64  `json:"count"`
	MeanNS int64  `json:"mean_ns"`
	P50NS  int64  `json:"p50_ns"`
	P95NS  int64  `json:"p95_ns"`
	P99NS  int64  `json:"p99_ns"`
}

// WireOperatorProfile is one workflow node's access-path hit counts:
// how often each path ("store(FullOne<-)", "map", "reexec", ...) actually
// served a query step against this operator.
type WireOperatorProfile struct {
	Node string           `json:"node"`
	Hits map[string]int64 `json:"hits"`
}

// WireWorkloadProfile is the live workload picture a future adaptive
// optimizer consumes: the backward/forward mix, per-class latency
// quantiles, region locality, and per-operator strategy hit counts.
type WireWorkloadProfile struct {
	BackwardQueries int64                   `json:"backward_queries"`
	ForwardQueries  int64                   `json:"forward_queries"`
	QueryCells      int64                   `json:"query_cells"`
	Fallbacks       int64                   `json:"fallbacks"`
	RegionSpanP50   int64                   `json:"region_span_p50_cells"`
	RegionSpanP95   int64                   `json:"region_span_p95_cells"`
	RegionSpanP99   int64                   `json:"region_span_p99_cells"`
	Classes         []WireQueryClassProfile `json:"classes"`
	Operators       []WireOperatorProfile   `json:"operators,omitempty"`
}

// NewWireWorkloadProfile builds the profile from a system's metric set.
func NewWireWorkloadProfile(set *obs.Set) WireWorkloadProfile {
	var p WireWorkloadProfile
	if set == nil {
		return p
	}
	q := &set.Query
	p.BackwardQueries = q.Backward.Load()
	p.ForwardQueries = q.Forward.Load()
	p.QueryCells = q.Cells.Load()
	p.Fallbacks = q.Fallbacks.Load()
	region := q.RegionSpan.Snapshot()
	p.RegionSpanP50 = region.Quantile(0.50)
	p.RegionSpanP95 = region.Quantile(0.95)
	p.RegionSpanP99 = region.Quantile(0.99)
	for i, class := range []string{WireBackward, WireForward} {
		snap := q.Latency[i].Snapshot()
		p.Classes = append(p.Classes, WireQueryClassProfile{
			Class:  class,
			Count:  snap.Count,
			MeanNS: snap.Mean(),
			P50NS:  snap.Quantile(0.50),
			P95NS:  snap.Quantile(0.95),
			P99NS:  snap.Quantile(0.99),
		})
	}
	byNode := make(map[string]map[string]int64)
	q.OperatorHits.Each(func(values []string, count int64) {
		node, path := values[0], values[1]
		if byNode[node] == nil {
			byNode[node] = make(map[string]int64)
		}
		byNode[node][path] += count
	})
	nodes := make([]string, 0, len(byNode))
	for node := range byNode {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		p.Operators = append(p.Operators, WireOperatorProfile{Node: node, Hits: byNode[node]})
	}
	return p
}

// WireDegradedStore describes one quarantined lineage store: corrupt
// data was detected, queries against it fall back to re-execution, and
// (if Healing) a background rebuild is in flight.
type WireDegradedStore struct {
	Run      string `json:"run"`
	Node     string `json:"node"`
	Strategy string `json:"strategy"`
	Healing  bool   `json:"healing,omitempty"`
}

// NewWireDegradedStores converts the system's degraded-store inventory
// to its wire form (nil when nothing is degraded, so healthy stats omit
// the field entirely).
func NewWireDegradedStores(ds []DegradedStore) []WireDegradedStore {
	if len(ds) == 0 {
		return nil
	}
	out := make([]WireDegradedStore, len(ds))
	for i, d := range ds {
		out[i] = WireDegradedStore{Run: d.Run, Node: d.Node, Strategy: d.Strategy, Healing: d.Healing}
	}
	return out
}

// WireStoreStats is one lineage store's footprint in GET /v1/stats: its
// stored (compressed) size next to the logical volume its records
// represent (8 bytes per stored cell index plus payload bytes), and the
// record codec that produced it. Ratio is logical/stored — higher is
// better; ~1.0 means the codec is breaking even against raw indices.
type WireStoreStats struct {
	Run          string  `json:"run"`
	Node         string  `json:"node"`
	Strategy     string  `json:"strategy"`
	Codec        int     `json:"codec"`
	Pairs        int     `json:"pairs"`
	StoredBytes  int64   `json:"stored_bytes"`
	LogicalBytes int64   `json:"logical_bytes"`
	Ratio        float64 `json:"ratio"`
}

// NewWireStoreStats converts the system's store inventory to its wire
// form (nil when no runs are registered, so empty stats omit the field).
func NewWireStoreStats(ss []StoreStat) []WireStoreStats {
	if len(ss) == 0 {
		return nil
	}
	out := make([]WireStoreStats, len(ss))
	for i, s := range ss {
		w := WireStoreStats{
			Run:          s.Run,
			Node:         s.Node,
			Strategy:     s.Strategy,
			Codec:        s.Codec,
			Pairs:        s.Pairs,
			StoredBytes:  s.StoredBytes,
			LogicalBytes: s.LogicalBytes,
		}
		if s.StoredBytes > 0 {
			w.Ratio = float64(s.LogicalBytes) / float64(s.StoredBytes)
		}
		out[i] = w
	}
	return out
}

// WireHealStats reports background store-rebuild outcomes since startup.
type WireHealStats struct {
	Attempts  int64 `json:"attempts"`
	Successes int64 `json:"successes"`
	Failures  int64 `json:"failures"`
}

// WireStats is the body of GET /v1/stats.
type WireStats struct {
	Runs         int                 `json:"runs"`
	LineageBytes int64               `json:"lineage_bytes"`
	ArrayBytes   int64               `json:"array_bytes"`
	Ops          []WireOpStats       `json:"ops,omitempty"`
	Ingest       WireIngestStats     `json:"ingest"`
	Server       WireServerMetrics   `json:"server"`
	Workload     WireWorkloadProfile `json:"workload"`
	Degraded     []WireDegradedStore `json:"degraded,omitempty"`
	Heals        WireHealStats       `json:"heals"`
	// Stores inventories every lineage store with its compressed vs
	// logical footprint (see WireStoreStats).
	Stores []WireStoreStats `json:"stores,omitempty"`
}

// WireHealth is the body of GET /v1/healthz.
type WireHealth struct {
	Status   string `json:"status"` // "ok" or "draining"
	UptimeNS int64  `json:"uptime_ns"`
	Runs     int    `json:"runs"`
	InFlight int64  `json:"in_flight"`
	// IngestQueueDepth is the most recently observed total depth of the
	// asynchronous lineage ingest queues, in batches (0 when the
	// synchronous write path is configured).
	IngestQueueDepth int64 `json:"ingest_queue_depth"`
	// DegradedStores counts lineage stores quarantined after a corrupt
	// lookup. The service stays "ok" while degraded — queries fall back
	// to re-execution — but operators should expect elevated latency
	// until the background rebuilds (HealingStores of them) finish.
	DegradedStores int `json:"degraded_stores"`
	HealingStores  int `json:"healing_stores"`
}

// WireTraceSummary is one entry of GET /v1/traces.
type WireTraceSummary struct {
	TraceID     string `json:"trace_id"`
	Run         string `json:"run,omitempty"`
	Direction   string `json:"direction,omitempty"`
	Slow        bool   `json:"slow"`
	StartUnixNS int64  `json:"start_unix_ns"`
	DurationNS  int64  `json:"duration_ns"`
	SpanCount   int    `json:"span_count"`
}

// WireTrace is the body of GET /v1/traces/{id}: the full span tree.
type WireTrace struct {
	TraceID     string      `json:"trace_id"`
	Run         string      `json:"run,omitempty"`
	Direction   string      `json:"direction,omitempty"`
	Slow        bool        `json:"slow"`
	External    bool        `json:"external,omitempty"` // root parented by a remote caller
	StartUnixNS int64       `json:"start_unix_ns"`
	DurationNS  int64       `json:"duration_ns"`
	SpanCount   int         `json:"span_count"`
	Truncated   int         `json:"truncated,omitempty"` // spans dropped by the per-trace cap
	Roots       []*WireSpan `json:"roots"`
}

// WireSpan is one node of a WireTrace span tree.
type WireSpan struct {
	ID          string            `json:"id"`
	Parent      string            `json:"parent,omitempty"` // absent on roots
	Name        string            `json:"name"`
	Class       string            `json:"class"`
	StartUnixNS int64             `json:"start_unix_ns"`
	DurationNS  int64             `json:"duration_ns"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Children    []*WireSpan       `json:"children,omitempty"`
}

// NewWireTraceSummary converts a retained trace to its list entry.
func NewWireTraceSummary(t *trace.Trace) WireTraceSummary {
	return WireTraceSummary{
		TraceID:     t.ID.String(),
		Run:         t.Run,
		Direction:   t.Direction,
		Slow:        t.Slow,
		StartUnixNS: t.Start.UnixNano(),
		DurationNS:  int64(t.Duration),
		SpanCount:   len(t.Spans),
	}
}

// NewWireTrace converts a retained trace to its full wire form, grouping
// the flat span list into trees. Spans whose parent is absent (the local
// root, spans truncated away, or a parent owned by a remote caller)
// become roots.
func NewWireTrace(t *trace.Trace) *WireTrace {
	wt := &WireTrace{
		TraceID:     t.ID.String(),
		Run:         t.Run,
		Direction:   t.Direction,
		Slow:        t.Slow,
		External:    t.External,
		StartUnixNS: t.Start.UnixNano(),
		DurationNS:  int64(t.Duration),
		SpanCount:   len(t.Spans),
		Truncated:   t.Truncated,
	}
	byID := make(map[string]*WireSpan, len(t.Spans))
	order := make([]*WireSpan, 0, len(t.Spans))
	for _, sp := range t.Spans {
		ws := &WireSpan{
			ID:          sp.ID().String(),
			Name:        sp.Name(),
			Class:       sp.Class(),
			StartUnixNS: sp.StartTime().UnixNano(),
			DurationNS:  int64(sp.Duration()),
		}
		if p := sp.ParentID(); !p.IsZero() {
			ws.Parent = p.String()
		}
		if attrs := sp.Attrs(); len(attrs) > 0 {
			ws.Attrs = make(map[string]string, len(attrs))
			for _, a := range attrs {
				ws.Attrs[a.Key] = a.Value()
			}
		}
		byID[ws.ID] = ws
		order = append(order, ws)
	}
	for _, ws := range order {
		if parent := byID[ws.Parent]; parent != nil && ws.Parent != "" {
			parent.Children = append(parent.Children, ws)
			continue
		}
		wt.Roots = append(wt.Roots, ws)
	}
	return wt
}

// WireError is the structured error envelope every non-2xx response
// carries.
type WireError struct {
	Error WireErrorBody `json:"error"`
}

// WireErrorBody is the error payload: the HTTP status, a message, and —
// for server-side faults (5xx) — the trace ID to quote when reporting
// the failure, resolvable at /v1/traces/{id} while retained.
type WireErrorBody struct {
	Status  int    `json:"status"`
	Message string `json:"message"`
	TraceID string `json:"trace_id,omitempty"`
}
