// Ablation benchmarks for the design choices called out in DESIGN.md:
// payload form (compact descriptor vs the paper's literal fanin×4 cell
// list), the One/Many encoding crossover in fanout, the R-tree node
// fan-out, and the cell-set codec against a fixed-width baseline.
package subzero_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"subzero/internal/binenc"
	"subzero/internal/grid"
	"subzero/internal/microbench"
	"subzero/internal/rtree"
)

// BenchmarkAblationPayloadForm compares the two payload layouts of the
// microbenchmark (see internal/microbench: our compact ~21-byte
// descriptor vs the paper's fanin×4-byte cell list) at high fanin, where
// the difference matters.
func BenchmarkAblationPayloadForm(b *testing.B) {
	for _, cells := range []bool{false, true} {
		name := "compact"
		if cells {
			name = "fanin-x4-cells"
		}
		b.Run(name, func(b *testing.B) {
			cfg := microbench.DefaultConfig()
			cfg.Rows, cfg.Cols = 300, 300
			cfg.Fanin, cfg.Fanout = 100, 1
			cfg.PayloadCells = cells
			var bytes int64
			for i := 0; i < b.N; i++ {
				res, err := microbench.Run(context.Background(), cfg, "<-PayOne", "")
				if err != nil {
					b.Fatal(err)
				}
				bytes = res.LineageBytes
			}
			b.ReportMetric(float64(bytes), "lineage-bytes")
		})
	}
}

// BenchmarkAblationEncodingCrossover sweeps fanout for FullOne vs
// FullMany: the per-cell hash entries of FullOne dominate at high fanout,
// the R-tree of FullMany at low fanout (paper §VIII-C's crossover).
func BenchmarkAblationEncodingCrossover(b *testing.B) {
	for _, strat := range []string{"<-FullOne", "<-FullMany"} {
		for _, fanout := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/fanout-%d", strat, fanout), func(b *testing.B) {
				cfg := microbench.DefaultConfig()
				cfg.Rows, cfg.Cols = 300, 300
				cfg.Fanin, cfg.Fanout = 8, fanout
				var bytes int64
				for i := 0; i < b.N; i++ {
					res, err := microbench.Run(context.Background(), cfg, strat, "")
					if err != nil {
						b.Fatal(err)
					}
					bytes = res.LineageBytes
				}
				b.ReportMetric(float64(bytes), "lineage-bytes")
			})
		}
	}
}

// BenchmarkAblationRTreeFanout measures point-query cost across R-tree
// node fan-outs, justifying the default of 16.
func BenchmarkAblationRTreeFanout(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	items := make([]rtree.Item, 20000)
	for i := range items {
		lo := grid.Coord{rng.Intn(1000), rng.Intn(1000)}
		items[i] = rtree.Item{
			Rect: grid.Rect{Lo: lo, Hi: grid.Coord{lo[0] + rng.Intn(5), lo[1] + rng.Intn(5)}},
			ID:   uint64(i),
		}
	}
	for _, fanout := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("fanout-%d", fanout), func(b *testing.B) {
			tr := rtree.NewWithFanout(2, fanout)
			for _, it := range items {
				if err := tr.Insert(it); err != nil {
					b.Fatal(err)
				}
			}
			pt := grid.Coord{500, 500}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.SearchPoint(pt, func(rtree.Item) bool { return true })
			}
		})
	}
}

// BenchmarkAblationCellSetCodec compares the delta+varint cell-set codec
// against a fixed 8-byte baseline on clustered cells — the compression
// that makes region lineage cheap (and that outperforms the paper's
// fanin×4-byte payloads).
func BenchmarkAblationCellSetCodec(b *testing.B) {
	cells := make([]uint64, 1000)
	base := uint64(500_000)
	for i := range cells {
		cells[i] = base + uint64(i*3)
	}
	b.Run("delta-varint", func(b *testing.B) {
		var size int
		buf := make([]byte, 0, 16*len(cells))
		for i := 0; i < b.N; i++ {
			buf = binenc.AppendCellSet(buf[:0], cells)
			size = len(buf)
		}
		b.ReportMetric(float64(size)/float64(len(cells)), "bytes/cell")
	})
	b.Run("fixed-8-byte", func(b *testing.B) {
		// The naive baseline: 8 bytes per cell, no compression.
		buf := make([]byte, 0, 8*len(cells))
		var size int
		for i := 0; i < b.N; i++ {
			buf = buf[:0]
			for _, c := range cells {
				buf = append(buf, binenc.PutUint64(c)...)
			}
			size = len(buf)
		}
		b.ReportMetric(float64(size)/float64(len(cells)), "bytes/cell")
	})
}
