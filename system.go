package subzero

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"subzero/internal/array"
	"subzero/internal/fault"
	"subzero/internal/kvstore"
	"subzero/internal/lineage"
	"subzero/internal/obs"
	"subzero/internal/ops"
	"subzero/internal/opt"
	"subzero/internal/query"
	"subzero/internal/trace"
	"subzero/internal/workflow"
)

// System wires together SubZero's components (paper Figure 3): the
// workflow executor, the versioned array store, per-operator lineage
// datastores, the statistics collector, the lineage query executor, and
// the strategy optimizer.
//
// A System is safe for concurrent use: workflows may execute while
// lineage queries run against earlier runs, and QueryBatch serves many
// queries over a bounded worker pool. Completed runs are tracked in a
// registry addressable by durable run ID (see Run, Runs, DropRun), so
// query and optimize calls accept either the live *Run pointer or its ID.
type System struct {
	versions *array.Versions
	manager  *kvstore.Manager
	stats    *lineage.Collector
	exec     *workflow.Executor
	qopts    query.Options
	par      int
	obs      *obs.Set

	healAttempts  atomic.Int64
	healSuccesses atomic.Int64
	healFailures  atomic.Int64

	mu       sync.RWMutex
	runs     map[string]*workflow.Run
	runOrder []string
}

// RunRef identifies an executed run in query and optimize calls: pass
// either the *Run returned by Execute or the run's ID string (resolved
// through the system's run registry).
type RunRef = any

// Option configures a System.
type Option func(*config)

type config struct {
	storageDir  string
	qopts       query.Options
	parallelism int
	ingest      lineage.IngestConfig
}

// WithStorageDir stores lineage in log-structured files under dir; the
// default keeps lineage stores in memory.
func WithStorageDir(dir string) Option {
	return func(c *config) { c.storageDir = dir }
}

// WithQueryOptions sets the default query-executor options.
func WithQueryOptions(o QueryOptions) Option {
	return func(c *config) { c.qopts = o }
}

// WithParallelism bounds the QueryBatch worker pool at n concurrent
// queries. The default is runtime.GOMAXPROCS(0).
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithIngest enables the sharded asynchronous lineage capture pipeline:
// operators enqueue raw region pairs and shards workers do the span
// encoding and index construction off the execution thread, group-
// committing to the lineage stores. shards <= 1 keeps the synchronous
// write path; depth bounds each shard's queue in batches (<= 0 selects
// the default), providing backpressure when operators outrun capture.
func WithIngest(shards, depth int) Option {
	return func(c *config) { c.ingest = lineage.IngestConfig{Shards: shards, Depth: depth} }
}

// NewSystem creates a SubZero instance.
func NewSystem(options ...Option) (*System, error) {
	cfg := config{qopts: query.DefaultOptions()}
	for _, o := range options {
		o(&cfg)
	}
	if cfg.parallelism <= 0 {
		cfg.parallelism = runtime.GOMAXPROCS(0)
	}
	mgr, err := kvstore.NewManager(cfg.storageDir)
	if err != nil {
		return nil, err
	}
	// Observability is always on: the metric set is a few hundred atomics,
	// and attaching it before the first store opens means every layer —
	// kvstore I/O, ingest shards, query spans — reports into one registry.
	obsSet := obs.NewSet()
	mgr.SetMetrics(&obsSet.KV)
	versions := array.NewVersions()
	stats := lineage.NewCollector()
	exec := workflow.NewExecutor(versions, mgr, stats)
	exec.SetIngest(cfg.ingest)
	exec.SetObs(&obsSet.Ingest)
	return &System{
		versions: versions,
		manager:  mgr,
		stats:    stats,
		exec:     exec,
		qopts:    cfg.qopts,
		par:      cfg.parallelism,
		obs:      obsSet,
		runs:     make(map[string]*workflow.Run),
	}, nil
}

// Execute runs a workflow under the given lineage strategy plan (nil
// means black-box everywhere). Source arrays are registered in the
// no-overwrite versioned store along with every intermediate result. The
// completed run is registered under its durable ID (run.ID) and stays
// addressable through Run until DropRun releases it.
//
// The context is checked at every operator boundary; cancellation aborts
// the workflow with a wrapped ctx.Err() naming the node where work
// stopped, and nothing is registered.
func (s *System) Execute(ctx context.Context, spec *Spec, plan Plan, sources map[string]*Array) (*Run, error) {
	run, err := s.exec.Execute(ctx, spec, plan, sources)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.runs[run.ID] = run
	s.runOrder = append(s.runOrder, run.ID)
	s.mu.Unlock()
	return run, nil
}

// Run returns a completed run by its durable ID.
func (s *System) Run(id string) (*Run, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	run, ok := s.runs[id]
	if !ok {
		return nil, fmt.Errorf("subzero: unknown run %q", id)
	}
	return run, nil
}

// Runs returns the IDs of all registered runs in completion order.
func (s *System) Runs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.runOrder))
	copy(out, s.runOrder)
	return out
}

// DropRun removes a run from the registry and releases its resources:
// every lineage store the run materialized (closing and deleting backing
// files for disk-backed systems) and every intermediate and final array
// version the run produced. Source arrays registered under their own
// names are shared across runs and are not touched.
//
// Dropping a run invalidates it: queries still in flight against it fail
// with a store error rather than returning partial results, and new
// queries by its ID fail with an unknown-run error. Callers serving
// concurrent traffic should stop routing queries to a run before
// dropping it.
func (s *System) DropRun(id string) error {
	s.mu.Lock()
	run, ok := s.runs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("subzero: unknown run %q", id)
	}
	delete(s.runs, id)
	for i, rid := range s.runOrder {
		if rid == id {
			s.runOrder = append(s.runOrder[:i], s.runOrder[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	if err := s.exec.ReleaseRun(run.ID); err != nil {
		return fmt.Errorf("subzero: drop run %q lineage: %w", id, err)
	}
	return nil
}

// resolveRun maps a RunRef to the underlying run.
func (s *System) resolveRun(ref RunRef) (*workflow.Run, error) {
	switch r := ref.(type) {
	case *workflow.Run:
		if r != nil {
			return r, nil
		}
	case string:
		return s.Run(r)
	}
	return nil, fmt.Errorf("subzero: run reference must be a *Run or a run ID string, got %T", ref)
}

// ValidateQuery checks a query against a run without executing it: the
// path must follow actual workflow edges and the cells must fit the
// starting array. Serving layers use it to distinguish malformed requests
// from execution failures.
func (s *System) ValidateQuery(run RunRef, q Query) error {
	r, err := s.resolveRun(run)
	if err != nil {
		return err
	}
	return query.New(r, nil, s.qopts).Validate(q)
}

// Query executes a lineage query against a run (a *Run or run ID) using
// the system's default query options.
func (s *System) Query(ctx context.Context, run RunRef, q Query) (*QueryResult, error) {
	return s.QueryWith(ctx, run, q, s.qopts)
}

// QueryWith executes a lineage query with explicit options. The context
// is checked at every path-step boundary and during black-box
// re-execution; cancellation aborts the trace with a wrapped ctx.Err().
func (s *System) QueryWith(ctx context.Context, run RunRef, q Query, opts QueryOptions) (*QueryResult, error) {
	r, err := s.resolveRun(run)
	if err != nil {
		return nil, err
	}
	return query.New(r, s.stats, opts).WithObs(&s.obs.Query).WithHealer(s.healerFor(r)).Execute(ctx, q)
}

// healerFor returns the corruption-recovery hook for queries against r.
// Store.BeginHeal's CAS deduplicates concurrent notifications, so a
// store corrupt under heavy query traffic is rebuilt exactly once. The
// rebuild runs detached: the query that tripped over the corruption has
// already fallen back to re-execution and should not be taxed with the
// repair.
func (s *System) healerFor(r *workflow.Run) query.Healer {
	return func(nodeID string, st *lineage.Store) {
		if !st.BeginHeal() {
			return
		}
		s.healAttempts.Add(1)
		go func() {
			defer st.EndHeal()
			//lint:ignore subzero/ctxflow the rebuild outlives the query that noticed the corruption
			if err := s.exec.RebuildStore(context.Background(), r, nodeID, st); err != nil {
				// The run keeps the degraded store: queries continue to
				// fall back, and the next corrupt lookup retries the heal.
				s.healFailures.Add(1)
				return
			}
			s.healSuccesses.Add(1)
		}()
	}
}

// HealCounts reports background rebuild outcomes since startup: rebuilds
// started, completed (store swapped and re-armed), and failed (store
// still degraded, queries still falling back).
func (s *System) HealCounts() (attempts, successes, failures int64) {
	return s.healAttempts.Load(), s.healSuccesses.Load(), s.healFailures.Load()
}

// DegradedStore describes one quarantined lineage store: a lookup hit
// corrupt data, queries against it answer via re-execution, and — if
// Healing — a background rebuild is in flight.
type DegradedStore struct {
	Run      string
	Node     string
	Strategy string
	Healing  bool
}

// DegradedStores inventories every degraded lineage store across all
// registered runs, in run-completion order. The serving layer surfaces
// this in /v1/healthz and /v1/stats.
func (s *System) DegradedStores() []DegradedStore {
	s.mu.RLock()
	order := make([]string, len(s.runOrder))
	copy(order, s.runOrder)
	runs := make(map[string]*workflow.Run, len(s.runs))
	for id, r := range s.runs {
		runs[id] = r
	}
	s.mu.RUnlock()
	var out []DegradedStore
	for _, id := range order {
		runs[id].EachStore(func(nodeID string, st *lineage.Store) {
			if st.Degraded() {
				out = append(out, DegradedStore{
					Run:      id,
					Node:     nodeID,
					Strategy: st.Strategy().ID(),
					Healing:  st.Healing(),
				})
			}
		})
	}
	return out
}

// StoreStat is one lineage store's footprint in the system inventory:
// its stored (compressed) size next to the logical cell volume the
// records represent, plus the record codec that produced it.
type StoreStat struct {
	Run          string
	Node         string
	Strategy     string
	Codec        int
	Pairs        int
	StoredBytes  int64
	LogicalBytes int64
}

// StoreInventory lists every lineage store across all registered runs,
// in run-completion order, with its compressed and logical footprint.
// The serving layer surfaces this in /v1/stats so compression ratios
// can be watched per store.
func (s *System) StoreInventory() []StoreStat {
	s.mu.RLock()
	order := make([]string, len(s.runOrder))
	copy(order, s.runOrder)
	runs := make(map[string]*workflow.Run, len(s.runs))
	for id, r := range s.runs {
		runs[id] = r
	}
	s.mu.RUnlock()
	var out []StoreStat
	for _, id := range order {
		runs[id].EachStore(func(nodeID string, st *lineage.Store) {
			out = append(out, StoreStat{
				Run:          id,
				Node:         nodeID,
				Strategy:     st.Strategy().ID(),
				Codec:        st.Codec(),
				Pairs:        st.NumPairs(),
				StoredBytes:  st.SizeBytes(),
				LogicalBytes: st.LogicalBytes(),
			})
		})
	}
	return out
}

// BatchReport aggregates one QueryBatch call.
type BatchReport struct {
	Queries   int           // queries submitted
	Succeeded int           // queries that returned a result
	Failed    int           // queries that returned an error
	Cells     uint64        // total result cells across successful queries
	QueryTime time.Duration // summed per-query execution time
	Elapsed   time.Duration // wall-clock time for the whole batch
}

// BatchResult holds per-query outcomes plus the aggregate report.
// Results and Errs are index-aligned with the submitted queries: exactly
// one of Results[i], Errs[i] is non-nil.
type BatchResult struct {
	Results []*QueryResult
	Errs    []error
	Report  BatchReport
}

// QueryBatch executes independent lineage queries concurrently over a
// bounded worker pool (see WithParallelism) — the serving primitive for
// multi-user query traffic. Queries are independent: one query failing
// does not stop the others, and per-query errors are reported in the
// returned BatchResult rather than as the call's error (which is reserved
// for an unresolvable run reference).
//
// Cancelling the context stops dispatch; queries not yet started fail
// with a wrapped ctx.Err(), and in-flight queries abort at their next
// step boundary.
func (s *System) QueryBatch(ctx context.Context, run RunRef, queries []Query, opts QueryOptions) (*BatchResult, error) {
	r, err := s.resolveRun(run)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(queries)
	br := &BatchResult{
		Results: make([]*QueryResult, n),
		Errs:    make([]error, n),
	}
	// Batch span: each worker's query spans parent under it through the
	// context. Child-span creation is safe across worker goroutines.
	bsp := trace.FromContext(ctx).Child("query-batch", obs.SpanQuery)
	bsp.SetAttrInt("queries", int64(n))
	defer bsp.End()
	ctx = trace.ContextWithSpan(ctx, bsp)
	start := time.Now()
	workers := s.par
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				br.Results[i], br.Errs[i] = s.runBatchQuery(ctx, r, queries[i], opts)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			for j := i; j < n; j++ {
				br.Errs[j] = fmt.Errorf("subzero: query %d not started: %w", j, ctx.Err())
			}
			break dispatch
		case idx <- i:
		}
	}
	close(idx)
	wg.Wait()
	br.Report = BatchReport{Queries: n, Elapsed: time.Since(start)}
	for i := range br.Results {
		if br.Errs[i] != nil {
			br.Report.Failed++
			continue
		}
		br.Report.Succeeded++
		br.Report.Cells += br.Results[i].Bitmap.Count()
		br.Report.QueryTime += br.Results[i].Elapsed
	}
	return br, nil
}

// runBatchQuery executes one batch query with panic containment: a
// poisoned query (operator bug, corrupt store tripping an invariant)
// fails only its own Errs slot with a structured *fault.PanicError. The
// worker must survive — a dead worker would strand the dispatch loop on
// an unread channel and deadlock the whole batch.
func (s *System) runBatchQuery(ctx context.Context, r *workflow.Run, q Query, opts QueryOptions) (res *QueryResult, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, fault.AsError("query batch worker", rec)
		}
	}()
	return query.New(r, s.stats, opts).WithObs(&s.obs.Query).WithHealer(s.healerFor(r)).Execute(ctx, q)
}

// Optimize runs the lineage strategy optimizer against a profiling run
// (a *Run or run ID): it returns the plan minimizing the sample
// workload's expected query cost within the constraints. Re-run the
// workflow under report.Plan to apply it.
func (s *System) Optimize(ctx context.Context, run RunRef, workload []Query, cons Constraints) (*OptimizeReport, error) {
	r, err := s.resolveRun(run)
	if err != nil {
		return nil, err
	}
	return opt.New(r, s.stats).Choose(ctx, workload, cons)
}

// OptimizeForced is Optimize with user-pinned strategies per node (paper
// §VII: "users can manually specify operator specific strategies").
func (s *System) OptimizeForced(ctx context.Context, run RunRef, workload []Query, cons Constraints, forced map[string][]Strategy) (*OptimizeReport, error) {
	r, err := s.resolveRun(run)
	if err != nil {
		return nil, err
	}
	o := opt.New(r, s.stats)
	for node, strategies := range forced {
		o.Force(node, strategies...)
	}
	return o.Choose(ctx, workload, cons)
}

// Stats returns the statistics collector's per-operator data.
func (s *System) Stats(nodeID string) OpStats { return s.stats.Get(nodeID) }

// AllStats returns statistics for every operator seen.
func (s *System) AllStats() []OpStats { return s.stats.All() }

// LineageBytes returns the total storage held by all lineage stores.
func (s *System) LineageBytes() int64 { return s.manager.TotalBytes() }

// IngestSnapshot returns the capture pipeline's aggregated counters —
// shard utilization, queue pressure, and flush (drain barrier) latency.
func (s *System) IngestSnapshot() IngestSnapshot { return s.exec.IngestSnapshot() }

// ArrayBytes returns the footprint of the versioned array store.
func (s *System) ArrayBytes() int64 { return s.versions.TotalBytes() }

// Observability returns the system's metric set: every query, ingest, and
// kvstore family this instance reports. The serving layer registers its
// HTTP families in the same set and renders the whole registry at
// /v1/metrics.
func (s *System) Observability() *obs.Set { return s.obs }

// Versions exposes the no-overwrite array store.
func (s *System) Versions() *array.Versions { return s.versions }

// Close releases all lineage stores and clears the run registry.
func (s *System) Close() error {
	s.mu.Lock()
	s.runs = make(map[string]*workflow.Run)
	s.runOrder = nil
	s.mu.Unlock()
	return s.manager.Close()
}

// ---------------------------------------------------------------------
// Built-in operator constructors (the instrumented SciDB-style operator
// library; all are mapping operators supporting Map and Full lineage).
// ---------------------------------------------------------------------

// UnaryOp applies fn cell-wise; output (c) depends on input (c).
func UnaryOp(name string, fn func(float64) float64) Operator { return ops.NewUnary(name, fn) }

// BinaryOp combines two same-shaped arrays cell-wise.
func BinaryOp(name string, fn func(a, b float64) float64) Operator { return ops.NewBinary(name, fn) }

// BroadcastOp combines input 0 cell-wise with the single cell of input 1.
func BroadcastOp(name string, fn func(x, scalar float64) float64) Operator {
	return ops.NewBroadcast(name, fn)
}

// TransposeOp swaps the dimensions of a matrix.
func TransposeOp() Operator { return ops.NewTranspose() }

// MatMulOp multiplies two matrices.
func MatMulOp() Operator { return ops.NewMatMul() }

// ConvolveOp convolves a matrix with a square odd-extent kernel.
func ConvolveOp(name string, kernel [][]float64) (Operator, error) {
	return ops.NewConvolve2D(name, kernel)
}

// MeanAllOp reduces the whole array to its mean (an all-to-all operator
// eligible for the entire-array optimization).
func MeanAllOp() Operator { return ops.NewMeanAll() }

// StdAllOp reduces the whole array to its standard deviation.
func StdAllOp() Operator { return ops.NewStdAll() }

// MaxAllOp reduces the whole array to its maximum.
func MaxAllOp() Operator { return ops.NewMaxAll() }

// ColMeanOp reduces each column of a matrix to its mean.
func ColMeanOp() Operator { return ops.NewColMean() }

// ColReduceOp reduces each column with a custom function.
func ColReduceOp(name string, fn func(col []float64) float64) Operator {
	return ops.NewColReduce(name, fn)
}

// ColCenterOp combines each cell of input 0 with its column's statistic
// from input 1 (shaped 1×n).
func ColCenterOp(name string, fn func(x, stat float64) float64) Operator {
	return ops.NewColCenter(name, fn)
}

// SliceOp extracts a rectangular window.
func SliceOp(name string, window Rect) (Operator, error) { return ops.NewSliceRect(name, window) }

// SubsampleOp keeps every stride-th cell along each dimension.
func SubsampleOp(stride int) (Operator, error) { return ops.NewSubsample(stride) }

// ConcatOp concatenates two arrays along an axis.
func ConcatOp(axis int) Operator { return ops.NewConcat(axis) }

// StandardKernels returns commonly used convolution kernels by name
// ("gaussian3", "box3", "identity3").
func StandardKernels(name string) ([][]float64, error) {
	switch name {
	case "gaussian3":
		return [][]float64{
			{1.0 / 16, 2.0 / 16, 1.0 / 16},
			{2.0 / 16, 4.0 / 16, 2.0 / 16},
			{1.0 / 16, 2.0 / 16, 1.0 / 16},
		}, nil
	case "box3":
		k := make([][]float64, 3)
		for i := range k {
			k[i] = []float64{1.0 / 9, 1.0 / 9, 1.0 / 9}
		}
		return k, nil
	case "identity3":
		return [][]float64{{0, 0, 0}, {0, 1, 0}, {0, 0, 0}}, nil
	}
	return nil, fmt.Errorf("subzero: unknown kernel %q", name)
}

// MB is a convenience for storage constraints.
func MB(n float64) int64 { return int64(math.Round(n * 1024 * 1024)) }
