package subzero

import (
	"fmt"
	"math"

	"subzero/internal/array"
	"subzero/internal/kvstore"
	"subzero/internal/lineage"
	"subzero/internal/ops"
	"subzero/internal/opt"
	"subzero/internal/query"
	"subzero/internal/workflow"
)

// System wires together SubZero's components (paper Figure 3): the
// workflow executor, the versioned array store, per-operator lineage
// datastores, the statistics collector, the lineage query executor, and
// the strategy optimizer.
type System struct {
	versions *array.Versions
	manager  *kvstore.Manager
	stats    *lineage.Collector
	exec     *workflow.Executor
	qopts    query.Options
}

// Option configures a System.
type Option func(*config)

type config struct {
	storageDir string
	qopts      query.Options
}

// WithStorageDir stores lineage in log-structured files under dir; the
// default keeps lineage stores in memory.
func WithStorageDir(dir string) Option {
	return func(c *config) { c.storageDir = dir }
}

// WithQueryOptions sets the default query-executor options.
func WithQueryOptions(o QueryOptions) Option {
	return func(c *config) { c.qopts = o }
}

// NewSystem creates a SubZero instance.
func NewSystem(options ...Option) (*System, error) {
	cfg := config{qopts: query.DefaultOptions()}
	for _, o := range options {
		o(&cfg)
	}
	mgr, err := kvstore.NewManager(cfg.storageDir)
	if err != nil {
		return nil, err
	}
	versions := array.NewVersions()
	stats := lineage.NewCollector()
	return &System{
		versions: versions,
		manager:  mgr,
		stats:    stats,
		exec:     workflow.NewExecutor(versions, mgr, stats),
		qopts:    cfg.qopts,
	}, nil
}

// Execute runs a workflow under the given lineage strategy plan (nil
// means black-box everywhere). Source arrays are registered in the
// no-overwrite versioned store along with every intermediate result.
func (s *System) Execute(spec *Spec, plan Plan, sources map[string]*Array) (*Run, error) {
	return s.exec.Execute(spec, plan, sources)
}

// Query executes a lineage query against a run using the system's default
// query options.
func (s *System) Query(run *Run, q Query) (*QueryResult, error) {
	return s.QueryWith(run, q, s.qopts)
}

// QueryWith executes a lineage query with explicit options.
func (s *System) QueryWith(run *Run, q Query, opts QueryOptions) (*QueryResult, error) {
	return query.New(run, s.stats, opts).Execute(q)
}

// Optimize runs the lineage strategy optimizer against a profiling run: it
// returns the plan minimizing the sample workload's expected query cost
// within the constraints. Re-run the workflow under report.Plan to apply
// it.
func (s *System) Optimize(run *Run, workload []Query, cons Constraints) (*OptimizeReport, error) {
	return opt.New(run, s.stats).Choose(workload, cons)
}

// OptimizeForced is Optimize with user-pinned strategies per node (paper
// §VII: "users can manually specify operator specific strategies").
func (s *System) OptimizeForced(run *Run, workload []Query, cons Constraints, forced map[string][]Strategy) (*OptimizeReport, error) {
	o := opt.New(run, s.stats)
	for node, strategies := range forced {
		o.Force(node, strategies...)
	}
	return o.Choose(workload, cons)
}

// Stats returns the statistics collector's per-operator data.
func (s *System) Stats(nodeID string) OpStats { return s.stats.Get(nodeID) }

// AllStats returns statistics for every operator seen.
func (s *System) AllStats() []OpStats { return s.stats.All() }

// LineageBytes returns the total storage held by all lineage stores.
func (s *System) LineageBytes() int64 { return s.manager.TotalBytes() }

// ArrayBytes returns the footprint of the versioned array store.
func (s *System) ArrayBytes() int64 { return s.versions.TotalBytes() }

// Versions exposes the no-overwrite array store.
func (s *System) Versions() *array.Versions { return s.versions }

// Close releases all lineage stores.
func (s *System) Close() error { return s.manager.Close() }

// ---------------------------------------------------------------------
// Built-in operator constructors (the instrumented SciDB-style operator
// library; all are mapping operators supporting Map and Full lineage).
// ---------------------------------------------------------------------

// UnaryOp applies fn cell-wise; output (c) depends on input (c).
func UnaryOp(name string, fn func(float64) float64) Operator { return ops.NewUnary(name, fn) }

// BinaryOp combines two same-shaped arrays cell-wise.
func BinaryOp(name string, fn func(a, b float64) float64) Operator { return ops.NewBinary(name, fn) }

// BroadcastOp combines input 0 cell-wise with the single cell of input 1.
func BroadcastOp(name string, fn func(x, scalar float64) float64) Operator {
	return ops.NewBroadcast(name, fn)
}

// TransposeOp swaps the dimensions of a matrix.
func TransposeOp() Operator { return ops.NewTranspose() }

// MatMulOp multiplies two matrices.
func MatMulOp() Operator { return ops.NewMatMul() }

// ConvolveOp convolves a matrix with a square odd-extent kernel.
func ConvolveOp(name string, kernel [][]float64) (Operator, error) {
	return ops.NewConvolve2D(name, kernel)
}

// MeanAllOp reduces the whole array to its mean (an all-to-all operator
// eligible for the entire-array optimization).
func MeanAllOp() Operator { return ops.NewMeanAll() }

// StdAllOp reduces the whole array to its standard deviation.
func StdAllOp() Operator { return ops.NewStdAll() }

// MaxAllOp reduces the whole array to its maximum.
func MaxAllOp() Operator { return ops.NewMaxAll() }

// ColMeanOp reduces each column of a matrix to its mean.
func ColMeanOp() Operator { return ops.NewColMean() }

// ColReduceOp reduces each column with a custom function.
func ColReduceOp(name string, fn func(col []float64) float64) Operator {
	return ops.NewColReduce(name, fn)
}

// ColCenterOp combines each cell of input 0 with its column's statistic
// from input 1 (shaped 1×n).
func ColCenterOp(name string, fn func(x, stat float64) float64) Operator {
	return ops.NewColCenter(name, fn)
}

// SliceOp extracts a rectangular window.
func SliceOp(name string, window Rect) (Operator, error) { return ops.NewSliceRect(name, window) }

// SubsampleOp keeps every stride-th cell along each dimension.
func SubsampleOp(stride int) (Operator, error) { return ops.NewSubsample(stride) }

// ConcatOp concatenates two arrays along an axis.
func ConcatOp(axis int) Operator { return ops.NewConcat(axis) }

// StandardKernels returns commonly used convolution kernels by name
// ("gaussian3", "box3", "identity3").
func StandardKernels(name string) ([][]float64, error) {
	switch name {
	case "gaussian3":
		return [][]float64{
			{1.0 / 16, 2.0 / 16, 1.0 / 16},
			{2.0 / 16, 4.0 / 16, 2.0 / 16},
			{1.0 / 16, 2.0 / 16, 1.0 / 16},
		}, nil
	case "box3":
		k := make([][]float64, 3)
		for i := range k {
			k[i] = []float64{1.0 / 9, 1.0 / 9, 1.0 / 9}
		}
		return k, nil
	case "identity3":
		return [][]float64{{0, 0, 0}, {0, 1, 0}, {0, 0, 0}}, nil
	}
	return nil, fmt.Errorf("subzero: unknown kernel %q", name)
}

// MB is a convenience for storage constraints.
func MB(n float64) int64 { return int64(math.Round(n * 1024 * 1024)) }
