package subzero_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"subzero"
)

// registryPipeline builds the small two-operator pipeline used by the
// registry and batching tests.
func registryPipeline(t *testing.T) (*subzero.System, *subzero.Spec, subzero.Plan, map[string]*subzero.Array) {
	t.Helper()
	sys, err := subzero.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	spec := subzero.NewSpec("v2")
	spec.Add("double", subzero.UnaryOp("double", func(x float64) float64 { return 2 * x }),
		subzero.FromExternal("src"))
	kernel, err := subzero.StandardKernels("box3")
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := subzero.ConvolveOp("smooth", kernel)
	if err != nil {
		t.Fatal(err)
	}
	spec.Add("smooth", smooth, subzero.FromNode("double"))
	src, err := subzero.NewArray("src", subzero.Shape{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range src.Data() {
		src.Data()[i] = float64(i)
	}
	plan := subzero.Plan{
		"double": {subzero.StratMap},
		"smooth": {subzero.StratMap},
	}
	return sys, spec, plan, map[string]*subzero.Array{"src": src}
}

func TestRunRegistryLifecycle(t *testing.T) {
	ctx := context.Background()
	sys, spec, plan, sources := registryPipeline(t)

	run1, err := sys.Execute(ctx, spec, plan, sources)
	if err != nil {
		t.Fatal(err)
	}
	run2, err := sys.Execute(ctx, spec, plan, sources)
	if err != nil {
		t.Fatal(err)
	}
	if run1.ID == run2.ID {
		t.Fatalf("duplicate run IDs: %q", run1.ID)
	}

	// Retrieval by ID returns the same run.
	got, err := sys.Run(run1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != run1 {
		t.Fatal("Run(id) returned a different run")
	}
	ids := sys.Runs()
	if len(ids) != 2 || ids[0] != run1.ID || ids[1] != run2.ID {
		t.Fatalf("Runs()=%v, want [%s %s]", ids, run1.ID, run2.ID)
	}

	// Queries resolve run IDs through the registry.
	q := subzero.BackwardQuery([]uint64{20}, subzero.Step{Node: "smooth"}, subzero.Step{Node: "double"})
	byID, err := sys.Query(ctx, run1.ID, q)
	if err != nil {
		t.Fatal(err)
	}
	byPtr, err := sys.Query(ctx, run1, q)
	if err != nil {
		t.Fatal(err)
	}
	if byID.Bitmap.Count() != byPtr.Bitmap.Count() {
		t.Fatal("run-ID query answered differently from *Run query")
	}

	// DropRun releases the run's array versions and removes it.
	before := sys.ArrayBytes()
	if err := sys.DropRun(run1.ID); err != nil {
		t.Fatal(err)
	}
	if after := sys.ArrayBytes(); after >= before {
		t.Fatalf("DropRun released no array storage: %d -> %d", before, after)
	}
	if _, err := sys.Run(run1.ID); err == nil {
		t.Fatal("dropped run still retrievable")
	}
	if _, err := sys.Query(ctx, run1.ID, q); err == nil {
		t.Fatal("query by dropped run ID succeeded")
	}
	if err := sys.DropRun(run1.ID); err == nil {
		t.Fatal("double drop succeeded")
	}
	// The other run is untouched.
	if _, err := sys.Query(ctx, run2.ID, q); err != nil {
		t.Fatalf("surviving run broken after drop: %v", err)
	}
	if ids := sys.Runs(); len(ids) != 1 || ids[0] != run2.ID {
		t.Fatalf("Runs() after drop=%v", ids)
	}
}

func TestDropRunReleasesLineageStores(t *testing.T) {
	ctx := context.Background()
	sys, err := subzero.NewSystem(subzero.WithStorageDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	spec := subzero.NewSpec("drop")
	spec.Add("id", subzero.UnaryOp("id", func(x float64) float64 { return x }),
		subzero.FromExternal("src"))
	src, err := subzero.NewArray("src", subzero.Shape{16})
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Execute(ctx, spec, subzero.Plan{"id": {subzero.StratFullOne}},
		map[string]*subzero.Array{"src": src})
	if err != nil {
		t.Fatal(err)
	}
	if sys.LineageBytes() <= 0 {
		t.Fatal("no lineage materialized")
	}
	if err := sys.DropRun(run.ID); err != nil {
		t.Fatal(err)
	}
	if got := sys.LineageBytes(); got != 0 {
		t.Fatalf("lineage bytes after drop = %d, want 0", got)
	}
}

// TestServeLoopDoesNotAccumulateSourceVersions pins the execute-and-drop
// serving lifecycle: re-executing over the same sources must not grow the
// versioned store, and DropRun must return the system to source-only
// footprint.
func TestServeLoopDoesNotAccumulateSourceVersions(t *testing.T) {
	ctx := context.Background()
	sys, spec, plan, sources := registryPipeline(t)
	srcBytes := sources["src"].MemoryBytes()
	for i := 0; i < 5; i++ {
		run, err := sys.Execute(ctx, spec, plan, sources)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.DropRun(run.ID); err != nil {
			t.Fatal(err)
		}
	}
	if n := sys.Versions().NumVersions("src"); n != 1 {
		t.Fatalf("source registered %d times, want 1", n)
	}
	if got := sys.ArrayBytes(); got != srcBytes {
		t.Fatalf("array bytes after serve loop = %d, want %d (source only)", got, srcBytes)
	}
}

func TestRunRefRejectsBadReference(t *testing.T) {
	ctx := context.Background()
	sys, _, _, _ := registryPipeline(t)
	q := subzero.BackwardQuery([]uint64{0}, subzero.Step{Node: "double"})
	if _, err := sys.Query(ctx, 42, q); err == nil {
		t.Fatal("integer run reference accepted")
	}
	if _, err := sys.Query(ctx, nil, q); err == nil {
		t.Fatal("nil run reference accepted")
	}
	var nilRun *subzero.Run
	if _, err := sys.Query(ctx, nilRun, q); err == nil {
		t.Fatal("nil *Run accepted")
	}
	if _, err := sys.Query(ctx, "no-such-run", q); err == nil {
		t.Fatal("unknown run ID accepted")
	}
}

// cancelOp cancels the shared context while executing, simulating a
// caller-side abort that lands mid-workflow.
type cancelOp struct {
	subzero.Meta
	cancel context.CancelFunc
}

func (o *cancelOp) OutShape(in []subzero.Shape) (subzero.Shape, error) {
	return in[0].Clone(), nil
}

func (o *cancelOp) Run(_ *subzero.RunCtx, ins []*subzero.Array) (*subzero.Array, error) {
	o.cancel()
	return ins[0].Clone().WithName(o.OpName), nil
}

func TestExecuteCancelledMidWorkflow(t *testing.T) {
	sys, err := subzero.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	spec := subzero.NewSpec("cancel")
	spec.Add("store", subzero.UnaryOp("store", func(x float64) float64 { return x }),
		subzero.FromExternal("src"))
	spec.Add("first", &cancelOp{
		Meta:   subzero.Meta{OpName: "first", NIn: 1},
		cancel: cancel,
	}, subzero.FromNode("store"))
	spec.Add("second", subzero.UnaryOp("second", func(x float64) float64 { return x }),
		subzero.FromNode("first"))
	src, err := subzero.NewArray("src", subzero.Shape{4})
	if err != nil {
		t.Fatal(err)
	}
	// "store" materializes lineage before the cancel lands, so the abort
	// path has real resources to release.
	_, err = sys.Execute(ctx, spec, subzero.Plan{"store": {subzero.StratFullOne}},
		map[string]*subzero.Array{"src": src})
	if err == nil {
		t.Fatal("cancelled workflow completed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if !strings.Contains(err.Error(), "second") {
		t.Fatalf("error does not name the aborted node: %v", err)
	}
	// Nothing half-finished lands in the registry, and the partial run's
	// lineage stores and intermediate arrays are released.
	if ids := sys.Runs(); len(ids) != 0 {
		t.Fatalf("aborted run registered: %v", ids)
	}
	if got := sys.LineageBytes(); got != 0 {
		t.Fatalf("aborted run leaked %d lineage bytes", got)
	}
	srcBytes := src.MemoryBytes()
	if got := sys.ArrayBytes(); got != srcBytes {
		t.Fatalf("aborted run leaked array versions: %d bytes, want %d (source only)", got, srcBytes)
	}
}

func TestExecuteDeadlineExceeded(t *testing.T) {
	sys, spec, plan, sources := registryPipeline(t)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_, err := sys.Execute(ctx, spec, plan, sources)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap DeadlineExceeded: %v", err)
	}
}

func TestQueryCancelled(t *testing.T) {
	sys, spec, plan, sources := registryPipeline(t)
	run, err := sys.Execute(context.Background(), spec, plan, sources)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := subzero.BackwardQuery([]uint64{20}, subzero.Step{Node: "smooth"}, subzero.Step{Node: "double"})
	_, err = sys.Query(ctx, run, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("query error does not wrap context.Canceled: %v", err)
	}
	if !strings.Contains(err.Error(), "smooth") {
		t.Fatalf("query error does not name the step: %v", err)
	}
}

// batchQueries builds n independent backward queries over distinct cells.
func batchQueries(n int) []subzero.Query {
	qs := make([]subzero.Query, n)
	for i := range qs {
		qs[i] = subzero.BackwardQuery([]uint64{uint64(i)},
			subzero.Step{Node: "smooth"}, subzero.Step{Node: "double"})
	}
	return qs
}

func TestQueryBatchMatchesSequential(t *testing.T) {
	ctx := context.Background()
	sys, spec, plan, sources := registryPipeline(t)
	run, err := sys.Execute(ctx, spec, plan, sources)
	if err != nil {
		t.Fatal(err)
	}
	qs := batchQueries(16)
	br, err := sys.QueryBatch(ctx, run.ID, qs, subzero.DefaultQueryOptions())
	if err != nil {
		t.Fatal(err)
	}
	if br.Report.Queries != 16 || br.Report.Succeeded != 16 || br.Report.Failed != 0 {
		t.Fatalf("report=%+v", br.Report)
	}
	if br.Report.Cells == 0 || br.Report.Elapsed <= 0 {
		t.Fatalf("report aggregates missing: %+v", br.Report)
	}
	for i, q := range qs {
		if br.Errs[i] != nil {
			t.Fatalf("query %d: %v", i, br.Errs[i])
		}
		want, err := sys.Query(ctx, run, q)
		if err != nil {
			t.Fatal(err)
		}
		got, wantCells := br.Results[i].Cells(), want.Cells()
		if len(got) != len(wantCells) {
			t.Fatalf("query %d: batch %d cells, sequential %d", i, len(got), len(wantCells))
		}
		for j := range got {
			if got[j] != wantCells[j] {
				t.Fatalf("query %d: cell mismatch at %d", i, j)
			}
		}
	}
}

func TestQueryBatchReportsPerQueryErrors(t *testing.T) {
	ctx := context.Background()
	sys, spec, plan, sources := registryPipeline(t)
	run, err := sys.Execute(ctx, spec, plan, sources)
	if err != nil {
		t.Fatal(err)
	}
	qs := batchQueries(4)
	qs[2] = subzero.BackwardQuery([]uint64{0}, subzero.Step{Node: "ghost"})
	br, err := sys.QueryBatch(ctx, run, qs, subzero.DefaultQueryOptions())
	if err != nil {
		t.Fatal(err)
	}
	if br.Report.Succeeded != 3 || br.Report.Failed != 1 {
		t.Fatalf("report=%+v", br.Report)
	}
	if br.Errs[2] == nil || br.Results[2] != nil {
		t.Fatal("bad query not reported in its slot")
	}
	for _, i := range []int{0, 1, 3} {
		if br.Errs[i] != nil {
			t.Fatalf("healthy query %d failed: %v", i, br.Errs[i])
		}
	}
}

func TestQueryBatchCancelled(t *testing.T) {
	sys, spec, plan, sources := registryPipeline(t)
	run, err := sys.Execute(context.Background(), spec, plan, sources)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	br, err := sys.QueryBatch(ctx, run, batchQueries(8), subzero.DefaultQueryOptions())
	if err != nil {
		t.Fatal(err)
	}
	if br.Report.Failed != 8 {
		t.Fatalf("cancelled batch: %+v", br.Report)
	}
	for i, qerr := range br.Errs {
		if !errors.Is(qerr, context.Canceled) {
			t.Fatalf("query %d error does not wrap context.Canceled: %v", i, qerr)
		}
	}
}

// TestConcurrentExecuteAndQueryBatch is the -race stress test: many
// goroutines execute workflows and run query batches against one System
// at once.
func TestConcurrentExecuteAndQueryBatch(t *testing.T) {
	ctx := context.Background()
	sys, spec, plan, sources := registryPipeline(t)
	seed, err := sys.Execute(ctx, spec, plan, sources)
	if err != nil {
		t.Fatal(err)
	}

	const executors, queriers = 4, 4
	var wg sync.WaitGroup
	errs := make(chan error, executors+queriers)

	for g := 0; g < executors; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				run, err := sys.Execute(ctx, spec, plan, sources)
				if err != nil {
					errs <- err
					return
				}
				if _, err := sys.Query(ctx, run.ID, subzero.BackwardQuery([]uint64{1},
					subzero.Step{Node: "smooth"}, subzero.Step{Node: "double"})); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				br, err := sys.QueryBatch(ctx, seed.ID, batchQueries(8), subzero.DefaultQueryOptions())
				if err != nil {
					errs <- err
					return
				}
				if br.Report.Failed != 0 {
					errs <- fmt.Errorf("batch failures: %+v", br.Report)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every completed run is addressable.
	for _, id := range sys.Runs() {
		if _, err := sys.Run(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sys.Runs()); got != 1+executors*3 {
		t.Fatalf("registry holds %d runs, want %d", got, 1+executors*3)
	}
}

// TestConcurrentQueryBatchOverStores exercises concurrent store lookups
// (FullOne + payload strategies materialize real stores) under -race.
func TestConcurrentQueryBatchOverStores(t *testing.T) {
	ctx := context.Background()
	sys, err := subzero.NewSystem(subzero.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	spec := subzero.NewSpec("stores")
	spec.Add("double", subzero.UnaryOp("double", func(x float64) float64 { return 2 * x }),
		subzero.FromExternal("src"))
	src, err := subzero.NewArray("src", subzero.Shape{32, 32})
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.Execute(ctx, spec, subzero.Plan{
		"double": {subzero.StratFullOne, subzero.StratFullMany},
	}, map[string]*subzero.Array{"src": src})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]subzero.Query, 32)
	for i := range qs {
		qs[i] = subzero.BackwardQuery([]uint64{uint64(i * 7)}, subzero.Step{Node: "double"})
	}
	br, err := sys.QueryBatch(ctx, run, qs, subzero.QueryOptions{EntireArray: true})
	if err != nil {
		t.Fatal(err)
	}
	if br.Report.Succeeded != len(qs) {
		t.Fatalf("report=%+v errs=%v", br.Report, br.Errs)
	}
}

// TestConcurrentQueryBatchOverMappingFunctions pins the MapCtx scratch
// race: mapping functions (ConvolveOp's map_b) unravel coordinates into
// per-node scratch, which concurrent batch workers must not share. Run
// with -race and real parallelism.
func TestConcurrentQueryBatchOverMappingFunctions(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	ctx := context.Background()
	_, spec, plan, sources := registryPipeline(t) // smooth = StratMap convolve
	// A system with a real worker pool regardless of the host's default.
	sys8, err := subzero.NewSystem(subzero.WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	defer sys8.Close()
	run8, err := sys8.Execute(ctx, spec, plan, sources)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]subzero.Query, 64)
	for i := range qs {
		qs[i] = subzero.BackwardQuery([]uint64{uint64(i)},
			subzero.Step{Node: "smooth"}, subzero.Step{Node: "double"})
	}
	br, err := sys8.QueryBatch(ctx, run8, qs, subzero.DefaultQueryOptions())
	if err != nil {
		t.Fatal(err)
	}
	if br.Report.Succeeded != len(qs) {
		t.Fatalf("report=%+v", br.Report)
	}
	// Spot-check correctness against sequential execution: corrupted
	// scratch coordinates would change neighborhood results.
	for _, i := range []int{0, 17, 40, 63} {
		want, err := sys8.Query(ctx, run8, qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if br.Results[i].Bitmap.Count() != want.Bitmap.Count() {
			t.Fatalf("query %d: batch %d cells, sequential %d",
				i, br.Results[i].Bitmap.Count(), want.Bitmap.Count())
		}
	}
}
