package workflow_test

import (
	"context"
	"strings"
	"testing"

	"subzero/internal/array"
	"subzero/internal/bitmap"
	"subzero/internal/grid"
	"subzero/internal/kvstore"
	"subzero/internal/lineage"
	"subzero/internal/ops"
	"subzero/internal/workflow"
)

func newExecutor(t *testing.T) *workflow.Executor {
	t.Helper()
	mgr, err := kvstore.NewManager("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	return workflow.NewExecutor(array.NewVersions(), mgr, lineage.NewCollector())
}

func twoStepSpec(t *testing.T) *workflow.Spec {
	t.Helper()
	spec := workflow.NewSpec("test")
	spec.Add("double", ops.NewUnary("double", func(x float64) float64 { return 2 * x }),
		workflow.FromExternal("src"))
	spec.Add("inc", ops.NewUnary("inc", func(x float64) float64 { return x + 1 }),
		workflow.FromNode("double"))
	return spec
}

func sourceArray(v ...float64) *array.Array {
	a := array.MustNew("src", grid.Shape{1, len(v)})
	copy(a.Data(), v)
	return a
}

func TestSpecValidation(t *testing.T) {
	spec := workflow.NewSpec("bad")
	spec.Add("a", ops.NewUnary("id", func(x float64) float64 { return x }), workflow.FromNode("ghost"))
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Fatalf("unknown producer not caught: %v", err)
	}

	spec2 := workflow.NewSpec("unwired")
	spec2.Add("a", ops.NewUnary("id", func(x float64) float64 { return x }), workflow.Input{})
	if err := spec2.Validate(); err == nil || !strings.Contains(err.Error(), "unwired") {
		t.Fatalf("unwired input not caught: %v", err)
	}

	add := ops.NewBinary("add", func(a, b float64) float64 { return a + b })
	cyc := workflow.NewSpec("cycle")
	cyc.Add("x", add, workflow.FromNode("y"), workflow.FromExternal("s"))
	cyc.Add("y", add, workflow.FromNode("x"), workflow.FromExternal("s"))
	if err := cyc.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not caught: %v", err)
	}
}

func TestSpecPanicsOnMisuse(t *testing.T) {
	spec := workflow.NewSpec("p")
	op := ops.NewUnary("id", func(x float64) float64 { return x })
	spec.Add("a", op, workflow.FromExternal("s"))
	assertPanics(t, func() { spec.Add("a", op, workflow.FromExternal("s")) })
	assertPanics(t, func() { spec.Add("b", op) }) // arity mismatch
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestTopoOrderAndConsumers(t *testing.T) {
	spec := workflow.NewSpec("diamond")
	id := func(x float64) float64 { return x }
	add := ops.NewBinary("add", func(a, b float64) float64 { return a + b })
	spec.Add("left", ops.NewUnary("l", id), workflow.FromExternal("s"))
	spec.Add("right", ops.NewUnary("r", id), workflow.FromExternal("s"))
	spec.Add("join", add, workflow.FromNode("left"), workflow.FromNode("right"))

	order, err := spec.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n.ID] = i
	}
	if pos["join"] < pos["left"] || pos["join"] < pos["right"] {
		t.Fatalf("topo order wrong: %v", pos)
	}
	cons := spec.Consumers()
	if len(cons["left"]) != 1 || cons["left"][0].Node != "join" || cons["left"][0].InputIdx != 0 {
		t.Fatalf("consumers wrong: %+v", cons)
	}
	if cons["right"][0].InputIdx != 1 {
		t.Fatalf("consumers wrong: %+v", cons)
	}
}

func TestExecuteBlackbox(t *testing.T) {
	e := newExecutor(t)
	run, err := e.Execute(context.Background(), twoStepSpec(t), nil, map[string]*array.Array{"src": sourceArray(1, 2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	out, err := run.Output("inc")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 5, 7}
	for i, v := range want {
		if out.Get(uint64(i)) != v {
			t.Fatalf("output=%v, want %v", out.Data(), want)
		}
	}
	if run.LineageBytes() != 0 {
		t.Fatal("blackbox run should store no lineage")
	}
	if len(run.Stores("double")) != 0 {
		t.Fatal("blackbox node has stores")
	}
	// Intermediate results must be in the versioned store (no-overwrite).
	if _, err := e.Versions().Latest(run.ID + "/double"); err != nil {
		t.Fatal("intermediate result not versioned")
	}
	if _, err := e.Versions().Latest("src"); err != nil {
		t.Fatal("source not versioned")
	}
}

func TestExecuteWithFullLineage(t *testing.T) {
	e := newExecutor(t)
	plan := workflow.Plan{
		"double": {lineage.StratFullOne},
		"inc":    {lineage.StratFullMany, lineage.StratFullOneFwd},
	}
	run, err := e.Execute(context.Background(), twoStepSpec(t), plan, map[string]*array.Array{"src": sourceArray(1, 2, 3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Stores("double")) != 1 || len(run.Stores("inc")) != 2 {
		t.Fatalf("store counts wrong: %d, %d", len(run.Stores("double")), len(run.Stores("inc")))
	}
	if run.LineageBytes() <= 0 {
		t.Fatal("no lineage bytes recorded")
	}
	// The store must answer a backward query: inc output cell 2 -> double
	// output cell 2.
	st := run.Stores("inc")[0]
	mc, err := run.MapCtx("inc")
	if err != nil {
		t.Fatal(err)
	}
	q := bitmap.FromCells(mc.OutSpace, []uint64{2})
	dst := bitmap.New(mc.InSpaces[0])
	if err := st.Backward(q, dst, 0, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !dst.Get(2) || dst.Count() != 1 {
		t.Fatalf("lineage wrong: %d cells", dst.Count())
	}
	// Stats were recorded.
	st2 := e.Stats().Get("inc")
	if st2.Runs != 1 || st2.Pairs != 4 {
		t.Fatalf("stats=%+v", st2)
	}
}

func TestExecuteRejectsUnsupportedMode(t *testing.T) {
	e := newExecutor(t)
	plan := workflow.Plan{"double": {lineage.StratPayOne}} // built-ins don't do Pay
	_, err := e.Execute(context.Background(), twoStepSpec(t), plan, map[string]*array.Array{"src": sourceArray(1)})
	if err == nil || !strings.Contains(err.Error(), "does not support") {
		t.Fatalf("unsupported mode accepted: %v", err)
	}
}

func TestExecuteMissingSource(t *testing.T) {
	e := newExecutor(t)
	_, err := e.Execute(context.Background(), twoStepSpec(t), nil, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown source") {
		t.Fatalf("missing source accepted: %v", err)
	}
}

func TestExecuteSourceFromVersions(t *testing.T) {
	e := newExecutor(t)
	// First run registers "src"; second run omits sources and resolves it
	// from the versioned store.
	if _, err := e.Execute(context.Background(), twoStepSpec(t), nil, map[string]*array.Array{"src": sourceArray(5)}); err != nil {
		t.Fatal(err)
	}
	run2, err := e.Execute(context.Background(), twoStepSpec(t), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := run2.Output("inc")
	if out.Get(0) != 11 {
		t.Fatalf("second run output=%v", out.Get(0))
	}
}

func TestReexecuteTracing(t *testing.T) {
	e := newExecutor(t)
	run, err := e.Execute(context.Background(), twoStepSpec(t), nil, map[string]*array.Array{"src": sourceArray(1, 2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	var pairs int
	dur, err := run.Reexecute(context.Background(), "double", func(rp *lineage.RegionPair) error {
		pairs++
		if len(rp.Out) != 1 || len(rp.Ins) != 1 {
			t.Fatalf("unexpected pair %+v", rp)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pairs != 3 {
		t.Fatalf("traced %d pairs, want 3", pairs)
	}
	if dur <= 0 {
		t.Fatal("no duration")
	}
}

// blackboxOnlyOp supports no lineage API at all.
type blackboxOnlyOp struct {
	workflow.Meta
}

func (o *blackboxOnlyOp) OutShape(in []grid.Shape) (grid.Shape, error) {
	return workflow.SameShapeOut(in)
}

func (o *blackboxOnlyOp) Run(_ *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	return ins[0].Clone().WithName("opaque"), nil
}

func TestReexecuteNoTracing(t *testing.T) {
	e := newExecutor(t)
	spec := workflow.NewSpec("opaque")
	spec.Add("udf", &blackboxOnlyOp{Meta: workflow.Meta{OpName: "opaque", NIn: 1}}, workflow.FromExternal("src"))
	run, err := e.Execute(context.Background(), spec, nil, map[string]*array.Array{"src": sourceArray(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Reexecute(context.Background(), "udf", func(*lineage.RegionPair) error { return nil }); err != workflow.ErrNoTracing {
		t.Fatalf("err=%v, want ErrNoTracing", err)
	}
}

// shapeLiar declares one shape but produces another.
type shapeLiar struct {
	workflow.Meta
}

func (o *shapeLiar) OutShape(in []grid.Shape) (grid.Shape, error) { return grid.Shape{9, 9}, nil }

func (o *shapeLiar) Run(_ *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	return array.New("liar", grid.Shape{2, 2})
}

func TestExecuteShapeMismatch(t *testing.T) {
	e := newExecutor(t)
	spec := workflow.NewSpec("liar")
	spec.Add("liar", &shapeLiar{Meta: workflow.Meta{OpName: "liar", NIn: 1}}, workflow.FromExternal("src"))
	_, err := e.Execute(context.Background(), spec, nil, map[string]*array.Array{"src": sourceArray(1)})
	if err == nil || !strings.Contains(err.Error(), "produced shape") {
		t.Fatalf("shape mismatch accepted: %v", err)
	}
}

func TestPlanDefaults(t *testing.T) {
	p := workflow.Plan{}
	s := p.Strategies("anything")
	if len(s) != 1 || s[0] != lineage.StratBlackbox {
		t.Fatalf("default strategies=%v", s)
	}
}

func TestRunCtxNilWriter(t *testing.T) {
	rc := workflow.NewRunCtx(lineage.NewModeSet(lineage.Blackbox), nil)
	if err := rc.LWrite([]uint64{1}, []uint64{2}); err != nil {
		t.Fatal("nil-writer LWrite must be a no-op")
	}
	if err := rc.LWritePayload([]uint64{1}, nil); err != nil {
		t.Fatal("nil-writer LWritePayload must be a no-op")
	}
	if rc.NeedsPairs() || rc.NeedsPayload() {
		t.Fatal("blackbox modes need nothing")
	}
}

// A run captured through the sharded asynchronous ingest pipeline must be
// indistinguishable from a serially captured one: same store sizes, same
// query answers, and the operator-thread overhead recorded as the enqueue
// and drain cost rather than the full encode time.
func TestExecuteShardedIngestEquivalence(t *testing.T) {
	src := make([]float64, 256)
	for i := range src {
		src[i] = float64(i)
	}
	plan := workflow.Plan{
		"double": {lineage.StratFullOne},
		"inc":    {lineage.StratFullMany},
	}
	runWith := func(shards int) (*workflow.Executor, *workflow.Run) {
		e := newExecutor(t)
		if shards > 1 {
			e.SetIngest(lineage.IngestConfig{Shards: shards, Depth: 2})
		}
		run, err := e.Execute(context.Background(), twoStepSpec(t), plan, map[string]*array.Array{"src": sourceArray(src...)})
		if err != nil {
			t.Fatal(err)
		}
		return e, run
	}
	_, serial := runWith(0)
	eSharded, sharded := runWith(4)

	if got, want := sharded.LineageBytes(), serial.LineageBytes(); got != want {
		t.Fatalf("sharded LineageBytes = %d, serial = %d", got, want)
	}
	for _, node := range []string{"double", "inc"} {
		ss, sw := sharded.Stores(node)[0].Stats(), serial.Stores(node)[0].Stats()
		if ss.Pairs != sw.Pairs || ss.OutCells != sw.OutCells || ss.InCells != sw.InCells {
			t.Fatalf("%s: volume stats diverge: sharded %+v serial %+v", node, ss, sw)
		}
		if ss.Shards != 4 || sw.Shards != 0 {
			t.Fatalf("%s: shard counts = %d/%d, want 4/0", node, ss.Shards, sw.Shards)
		}
		mc, err := sharded.MapCtx(node)
		if err != nil {
			t.Fatal(err)
		}
		for cell := uint64(0); cell < mc.OutSpace.Size(); cell += 37 {
			q := bitmap.FromCells(mc.OutSpace, []uint64{cell})
			a, b := bitmap.New(mc.InSpaces[0]), bitmap.New(mc.InSpaces[0])
			if err := serial.Stores(node)[0].Backward(q, a, 0, nil, nil, nil); err != nil {
				t.Fatal(err)
			}
			if err := sharded.Stores(node)[0].Backward(q, b, 0, nil, nil, nil); err != nil {
				t.Fatal(err)
			}
			if a.Count() != b.Count() {
				t.Fatalf("%s cell %d: sharded answer differs", node, cell)
			}
		}
	}
	snap := eSharded.IngestSnapshot()
	if snap.Shards != 4 || snap.Pairs == 0 || snap.Flushes == 0 {
		t.Fatalf("ingest snapshot not populated: %+v", snap)
	}
}
