package workflow

import (
	"fmt"
)

// Input identifies where one operator input comes from: either the output
// of another node in the workflow, or an external (source) array looked up
// by name at execution time.
type Input struct {
	// Node is the producing node's id; empty for external inputs.
	Node string
	// External is the source array's name; set iff Node is empty.
	External string
}

// FromNode references another node's output.
func FromNode(id string) Input { return Input{Node: id} }

// FromExternal references a source array provided to Execute.
func FromExternal(name string) Input { return Input{External: name} }

// Node is one operator instance in a workflow specification.
type Node struct {
	ID     string
	Op     Operator
	Inputs []Input
}

// Spec is a workflow specification: a DAG W = (N, E) where an edge
// (O_P, I_{P'}^i) wires the output of P to the i'th input of P' (paper
// §IV).
type Spec struct {
	Name  string
	nodes []*Node
	byID  map[string]*Node
}

// NewSpec creates an empty workflow specification.
func NewSpec(name string) *Spec {
	return &Spec{Name: name, byID: make(map[string]*Node)}
}

// Add appends a node wired to the given inputs. It panics on duplicate ids
// or input-arity mismatch, which are programming errors in workflow
// construction.
func (s *Spec) Add(id string, op Operator, inputs ...Input) *Node {
	if _, dup := s.byID[id]; dup {
		panic(fmt.Sprintf("workflow: duplicate node id %q", id))
	}
	if len(inputs) != op.NumInputs() {
		panic(fmt.Sprintf("workflow: node %q wired with %d inputs, operator %s takes %d",
			id, len(inputs), op.Name(), op.NumInputs()))
	}
	n := &Node{ID: id, Op: op, Inputs: inputs}
	s.nodes = append(s.nodes, n)
	s.byID[id] = n
	return n
}

// Node returns the node with the given id, or nil.
func (s *Spec) Node(id string) *Node { return s.byID[id] }

// Nodes returns the nodes in insertion order.
func (s *Spec) Nodes() []*Node { return s.nodes }

// Validate checks that all referenced producers exist and the graph is
// acyclic.
func (s *Spec) Validate() error {
	for _, n := range s.nodes {
		for i, in := range n.Inputs {
			switch {
			case in.Node == "" && in.External == "":
				return fmt.Errorf("workflow: node %q input %d is unwired", n.ID, i)
			case in.Node != "" && in.External != "":
				return fmt.Errorf("workflow: node %q input %d is doubly wired", n.ID, i)
			case in.Node != "":
				if s.byID[in.Node] == nil {
					return fmt.Errorf("workflow: node %q input %d references unknown node %q", n.ID, i, in.Node)
				}
			}
		}
	}
	_, err := s.TopoOrder()
	return err
}

// TopoOrder returns the nodes in a dependency-respecting order, or an
// error if the graph has a cycle.
func (s *Spec) TopoOrder() ([]*Node, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(s.nodes))
	var order []*Node
	var visit func(n *Node) error
	visit = func(n *Node) error {
		switch color[n.ID] {
		case gray:
			return fmt.Errorf("workflow: cycle through node %q", n.ID)
		case black:
			return nil
		}
		color[n.ID] = gray
		for _, in := range n.Inputs {
			if in.Node != "" {
				if err := visit(s.byID[in.Node]); err != nil {
					return err
				}
			}
		}
		color[n.ID] = black
		order = append(order, n)
		return nil
	}
	for _, n := range s.nodes {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Consumers returns, for each node id, the (consumer node, input index)
// pairs that read its output — the forward edges, used to validate
// forward query paths.
func (s *Spec) Consumers() map[string][]Edge {
	out := make(map[string][]Edge)
	for _, n := range s.nodes {
		for i, in := range n.Inputs {
			if in.Node != "" {
				out[in.Node] = append(out[in.Node], Edge{Node: n.ID, InputIdx: i})
			}
		}
	}
	return out
}

// Edge is a consumer endpoint: node's input InputIdx.
type Edge struct {
	Node     string
	InputIdx int
}
