package workflow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/kvstore"
	"subzero/internal/lineage"
	"subzero/internal/obs"
	"subzero/internal/trace"
)

// Plan assigns each node the lineage strategies it stores — the output of
// the strategy optimizer (or a hand-picked configuration such as the
// paper's Table II rows). Nodes absent from the plan default to Blackbox.
type Plan map[string][]lineage.Strategy

// Strategies returns the node's assigned strategies (Blackbox by default).
func (p Plan) Strategies(nodeID string) []lineage.Strategy {
	if s, ok := p[nodeID]; ok && len(s) > 0 {
		return s
	}
	return []lineage.Strategy{lineage.StratBlackbox}
}

// ErrNoTracing is returned by Run.Reexecute when the operator supports
// only Blackbox lineage: it cannot emit region pairs even in tracing mode,
// so the caller must assume an all-to-all relationship (paper §IV: "If the
// API is not used, then SubZero assumes an all-to-all relationship").
var ErrNoTracing = errors.New("workflow: operator does not support tracing mode")

// Executor runs workflow specifications with lineage capture. It owns the
// versioned array store (inputs, intermediates, outputs), the kvstore
// manager providing per-operator lineage datastores, and the statistics
// collector feeding the optimizer.
//
// An Executor is safe for concurrent use: run IDs are drawn atomically and
// the array store, kvstore manager, and collector synchronize internally.
// Each Execute call builds an independent *Run.
type Executor struct {
	versions *array.Versions
	manager  *kvstore.Manager
	stats    *lineage.Collector
	runSeq   atomic.Int64

	// ingestCfg sizes the sharded asynchronous capture pipeline; the zero
	// value keeps the synchronous write path. ingestMetrics aggregates
	// pipeline counters across every run for the serving layer.
	ingestCfg     lineage.IngestConfig
	ingestMetrics lineage.IngestMetrics

	// healSeq distinguishes the kvstore namespaces of successive store
	// rebuilds, so a rebuild never reopens the corrupt log it replaces.
	healSeq atomic.Int64
}

// NewExecutor creates an executor.
func NewExecutor(versions *array.Versions, manager *kvstore.Manager, stats *lineage.Collector) *Executor {
	return &Executor{versions: versions, manager: manager, stats: stats}
}

// SetIngest configures the asynchronous lineage ingest pipeline for
// subsequent Execute calls: cfg.Shards > 1 moves span encoding and index
// construction onto that many shard workers per run, leaving operators
// only the enqueue cost. Call before Execute; the config is not applied
// to runs already in flight.
func (e *Executor) SetIngest(cfg lineage.IngestConfig) { e.ingestCfg = cfg }

// IngestConfig returns the configured ingest pipeline parameters.
func (e *Executor) IngestConfig() lineage.IngestConfig { return e.ingestCfg }

// SetObs mirrors the executor's ingest counters into the process-wide
// metric registry. Call before Execute, alongside SetIngest.
func (e *Executor) SetObs(o *obs.IngestObs) { e.ingestMetrics.SetObs(o) }

// IngestSnapshot returns the aggregated ingest pipeline counters across
// all runs executed so far.
func (e *Executor) IngestSnapshot() lineage.IngestSnapshot {
	return e.ingestMetrics.Snapshot(e.ingestCfg)
}

// Versions exposes the executor's no-overwrite array store.
func (e *Executor) Versions() *array.Versions { return e.versions }

// Stats exposes the statistics collector.
func (e *Executor) Stats() *lineage.Collector { return e.stats }

// Run is one executed workflow instance: its resolved inputs, outputs, and
// lineage stores, with everything needed to re-run any operator in tracing
// mode.
type Run struct {
	ID   string
	Spec *Spec
	Plan Plan

	inputs  map[string][]*array.Array
	outputs map[string]*array.Array
	mapCtxs map[string]*MapCtx

	// storesMu guards the stores map once the run is live: queries read
	// it while a background rebuild (Executor.RebuildStore) swaps a
	// degraded store for its healed replacement.
	storesMu sync.RWMutex
	stores   map[string][]*lineage.Store

	// Elapsed is total workflow wall-clock time; LineageOverhead is the
	// part spent inside the lwrite API and store flushes.
	Elapsed         time.Duration
	LineageOverhead time.Duration

	stats *lineage.Collector
}

// Execute runs the workflow over the named source arrays under the given
// strategy plan. Source arrays are registered in the versioned store, as
// are all intermediate and final outputs.
//
// The context is checked at every operator boundary: if it is cancelled or
// its deadline passes, execution stops before the next operator runs and
// the wrapped ctx.Err() names the node where work stopped.
func (e *Executor) Execute(ctx context.Context, spec *Spec, plan Plan, sources map[string]*array.Array) (*Run, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if plan == nil {
		plan = Plan{}
	}
	order, err := spec.TopoOrder()
	if err != nil {
		return nil, err
	}
	run := &Run{
		ID:      fmt.Sprintf("%s-run%03d", spec.Name, e.runSeq.Add(1)),
		Spec:    spec,
		Plan:    plan,
		inputs:  make(map[string][]*array.Array),
		outputs: make(map[string]*array.Array),
		stores:  make(map[string][]*lineage.Store),
		mapCtxs: make(map[string]*MapCtx),
		stats:   e.stats,
	}
	for name, src := range sources {
		e.versions.Put(src.WithName(name))
	}
	// Stand up the per-run ingest coordinator when async capture is on:
	// its shard workers encode lineage off the operator threads, and its
	// lifetime is bounded by this Execute (and its context — cancellation
	// fails the pipeline and surfaces through the writer's flush barrier).
	var coord *lineage.Coordinator
	if e.ingestCfg.Enabled() {
		coord = lineage.NewCoordinator(ctx, e.ingestCfg, &e.ingestMetrics)
		defer coord.Close()
	}
	esp := trace.FromContext(ctx).Child("execute "+spec.Name, obs.SpanExecute)
	esp.SetAttr("run", run.ID)
	esp.SetAttrInt("nodes", int64(len(order)))
	defer esp.End()
	start := time.Now()
	for _, node := range order {
		if err := ctx.Err(); err != nil {
			e.releasePartial(run)
			return nil, fmt.Errorf("workflow: cancelled at node %q: %w", node.ID, err)
		}
		if err := e.runNode(esp, run, node, sources, coord); err != nil {
			e.releasePartial(run)
			return nil, fmt.Errorf("workflow: node %q: %w", node.ID, err)
		}
	}
	run.Elapsed = time.Since(start)
	return run, nil
}

// ReleaseRun frees everything a run materialized under its ID — the
// intermediate and final array versions and every lineage store. Source
// arrays registered under their own names are shared across runs and are
// left in place. The run registry calls this from DropRun; Execute calls
// it on its own abort path, where the run is never returned and its ID
// would otherwise be unknowable to the caller.
func (e *Executor) ReleaseRun(runID string) error {
	prefix := runID + "/"
	e.versions.DropPrefix(prefix)
	_, err := e.manager.DropPrefix(prefix)
	return err
}

// releasePartial is ReleaseRun for an aborted execution: close errors on
// a partial run's stores are not actionable by the caller, who already
// has the execution error, so they are dropped.
func (e *Executor) releasePartial(run *Run) {
	_ = e.ReleaseRun(run.ID)
}

func (e *Executor) runNode(sp *trace.Span, run *Run, node *Node, sources map[string]*array.Array, coord *lineage.Coordinator) error {
	nsp := sp.Child("node "+node.ID, obs.SpanNode)
	defer nsp.End()
	ins, err := e.resolveInputs(run, node, sources)
	if err != nil {
		return err
	}
	inShapes := make([]grid.Shape, len(ins))
	inSpaces := make([]*grid.Space, len(ins))
	for i, a := range ins {
		inShapes[i] = a.Shape()
		inSpaces[i] = a.Space()
	}
	outShape, err := node.Op.OutShape(inShapes)
	if err != nil {
		return err
	}
	outSpace := grid.NewSpace(outShape)

	// Open stores for every pair-materializing strategy.
	var fullStores, payStores []*lineage.Store
	var modes lineage.ModeSet
	for _, strat := range run.Plan.Strategies(node.ID) {
		if err := strat.Validate(); err != nil {
			return err
		}
		if !Supports(node.Op, strat.Mode) {
			return fmt.Errorf("operator %s does not support %s lineage", node.Op.Name(), strat.Mode)
		}
		if !strat.StoresPairs() {
			continue
		}
		ns := fmt.Sprintf("%s/%s/%s", run.ID, node.ID, strat.ID())
		kv, err := e.manager.Open(ns)
		if err != nil {
			return err
		}
		st, err := lineage.OpenStore(kv, strat, outSpace, inSpaces)
		if err != nil {
			return err
		}
		run.stores[node.ID] = append(run.stores[node.ID], st)
		switch strat.Mode {
		case lineage.Full:
			fullStores = append(fullStores, st)
		default: // Pay, Comp
			payStores = append(payStores, st)
		}
		modes = modes.With(strat.Mode)
	}

	var writer *lineage.Writer
	if len(fullStores) > 0 || len(payStores) > 0 {
		writer = lineage.NewWriter(outSpace, inSpaces, fullStores, payStores, nil)
		if coord != nil {
			writer.UseIngest(coord)
		}
		writer.SetSpan(nsp)
	}
	rc := NewRunCtx(modes, writer)

	start := time.Now()
	out, err := node.Op.Run(rc, ins)
	if err != nil {
		return err
	}
	if out == nil {
		return fmt.Errorf("operator %s returned no output", node.Op.Name())
	}
	if !out.Shape().Equal(outShape) {
		return fmt.Errorf("operator %s produced shape %v, declared %v", node.Op.Name(), out.Shape(), outShape)
	}
	var lineageTime time.Duration
	var pairs, outCells, inCells, payloadBytes int64
	if writer != nil {
		if err := writer.Flush(); err != nil {
			return err
		}
		lineageTime = writer.Elapsed()
		for _, st := range run.stores[node.ID] {
			ss := st.Stats()
			pairs = max64(pairs, int64(ss.Pairs))
			outCells = max64(outCells, ss.OutCells)
			inCells = max64(inCells, ss.InCells)
			payloadBytes = max64(payloadBytes, ss.PayloadBytes)
		}
	}
	elapsed := time.Since(start)
	run.LineageOverhead += lineageTime
	execTime := elapsed - lineageTime
	if execTime < 0 {
		execTime = 0
	}
	e.stats.RecordRun(node.ID, execTime, lineageTime, pairs, outCells, inCells, payloadBytes)

	run.inputs[node.ID] = ins
	run.outputs[node.ID] = out
	run.mapCtxs[node.ID] = NewMapCtx(outSpace, inSpaces)
	e.versions.Put(out.WithName(run.ID + "/" + node.ID))
	return nil
}

func (e *Executor) resolveInputs(run *Run, node *Node, sources map[string]*array.Array) ([]*array.Array, error) {
	ins := make([]*array.Array, len(node.Inputs))
	for i, in := range node.Inputs {
		switch {
		case in.Node != "":
			out, ok := run.outputs[in.Node]
			if !ok {
				return nil, fmt.Errorf("input %d: node %q has not produced output", i, in.Node)
			}
			ins[i] = out
		default:
			src, ok := sources[in.External]
			if !ok {
				// Fall back to the versioned store for arrays produced
				// by earlier runs.
				a, err := e.versions.Latest(in.External)
				if err != nil {
					return nil, fmt.Errorf("input %d: unknown source %q", i, in.External)
				}
				src = a
			}
			ins[i] = src
		}
	}
	return ins, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Output returns the output array of a node in this run.
func (r *Run) Output(nodeID string) (*array.Array, error) {
	out, ok := r.outputs[nodeID]
	if !ok {
		return nil, fmt.Errorf("workflow: no output recorded for node %q", nodeID)
	}
	return out, nil
}

// Inputs returns the resolved input arrays of a node in this run.
func (r *Run) Inputs(nodeID string) ([]*array.Array, error) {
	ins, ok := r.inputs[nodeID]
	if !ok {
		return nil, fmt.Errorf("workflow: no inputs recorded for node %q", nodeID)
	}
	return ins, nil
}

// Stores returns the lineage stores materialized for a node (nil for
// Blackbox/Map-only nodes). The slice is a snapshot: a background rebuild
// may swap a degraded store for its replacement at any time, and callers
// holding an older snapshot simply keep using the store they resolved.
func (r *Run) Stores(nodeID string) []*lineage.Store {
	r.storesMu.RLock()
	defer r.storesMu.RUnlock()
	list := r.stores[nodeID]
	if len(list) == 0 {
		return nil
	}
	out := make([]*lineage.Store, len(list))
	copy(out, list)
	return out
}

// EachStore visits every lineage store attached to the run. The health
// and stats endpoints use it to surface degraded stores.
func (r *Run) EachStore(fn func(nodeID string, st *lineage.Store)) {
	r.storesMu.RLock()
	defer r.storesMu.RUnlock()
	for nodeID, list := range r.stores {
		for _, st := range list {
			fn(nodeID, st)
		}
	}
}

// swapStore replaces old with fresh in the node's store list, returning
// false when old is no longer attached (already swapped, or the run was
// released). Lookups holding the old pointer keep using it — the corrupt
// store stays open and they fall back to re-execution again — while every
// new lookup resolves the healed replacement.
func (r *Run) swapStore(nodeID string, old, fresh *lineage.Store) bool {
	r.storesMu.Lock()
	defer r.storesMu.Unlock()
	for i, st := range r.stores[nodeID] {
		if st == old {
			r.stores[nodeID][i] = fresh
			return true
		}
	}
	return false
}

// MapCtx returns the node's mapping-function context.
func (r *Run) MapCtx(nodeID string) (*MapCtx, error) {
	mc, ok := r.mapCtxs[nodeID]
	if !ok {
		return nil, fmt.Errorf("workflow: no context for node %q", nodeID)
	}
	return mc, nil
}

// Strategies returns the node's assigned strategies.
func (r *Run) Strategies(nodeID string) []lineage.Strategy { return r.Plan.Strategies(nodeID) }

// CaptureStats sums write-path statistics across every lineage store of
// the run — the capture-overhead quantities of the BENCH_5 table.
type CaptureStats struct {
	OpWrite time.Duration // operator-thread write time (inline encode, or enqueue when sharded)
	Drain   time.Duration // end-of-node drain barrier + flush wait (sharded only)
	Encode  time.Duration // encode+commit work, summed across shard workers
	Pairs   int64
}

// CaptureStats aggregates the run's store statistics.
func (r *Run) CaptureStats() CaptureStats {
	var cs CaptureStats
	r.storesMu.RLock()
	defer r.storesMu.RUnlock()
	for _, stores := range r.stores {
		for _, st := range stores {
			ss := st.Stats()
			cs.Encode += ss.WriteTime
			cs.Pairs += int64(ss.Pairs)
			if ss.Shards > 0 {
				cs.OpWrite += ss.EnqueueTime
				cs.Drain += ss.FlushTime
			} else {
				cs.OpWrite += ss.WriteTime
			}
		}
	}
	return cs
}

// LineageBytes sums the storage footprint of every lineage store in the
// run — the disk-overhead quantity of Figures 5(a), 6(a), 7(a).
func (r *Run) LineageBytes() int64 {
	var total int64
	r.storesMu.RLock()
	defer r.storesMu.RUnlock()
	for _, stores := range r.stores {
		for _, st := range stores {
			total += st.SizeBytes()
		}
	}
	return total
}

// reexecCtxCheckInterval bounds how many streamed region pairs are
// processed between context checks during a tracing re-execution.
const reexecCtxCheckInterval = 1024

// Reexecute re-runs a node in tracing mode (cur_modes = {Full}), streaming
// every region pair to sink instead of storing it — black-box lineage
// resolution (paper §V-B). The sink may return lineage.ErrAborted (wrapped)
// to stop early; Reexecute propagates it. The context is checked
// periodically as pairs stream; cancellation aborts the trace with a
// wrapped ctx.Err() naming the node.
func (r *Run) Reexecute(ctx context.Context, nodeID string, sink func(*lineage.RegionPair) error) (time.Duration, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("workflow: reexecute %q: %w", nodeID, err)
	}
	node := r.Spec.Node(nodeID)
	if node == nil {
		return 0, fmt.Errorf("workflow: unknown node %q", nodeID)
	}
	if !Supports(node.Op, lineage.Full) {
		return 0, ErrNoTracing
	}
	ins, err := r.Inputs(nodeID)
	if err != nil {
		return 0, err
	}
	mc, err := r.MapCtx(nodeID)
	if err != nil {
		return 0, err
	}
	if ctx.Done() != nil {
		inner := sink
		n := 0
		sink = func(rp *lineage.RegionPair) error {
			if n++; n%reexecCtxCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("workflow: reexecute %q: %w", nodeID, err)
				}
			}
			return inner(rp)
		}
	}
	writer := lineage.NewWriter(mc.OutSpace, mc.InSpaces, nil, nil, sink)
	rc := NewRunCtx(lineage.NewModeSet(lineage.Full), writer)
	start := time.Now()
	if _, err := node.Op.Run(rc, ins); err != nil {
		return time.Since(start), err
	}
	if err := writer.Flush(); err != nil {
		return time.Since(start), err
	}
	return time.Since(start), nil
}

// EmitMappedPairs is a helper for mapping operators running in tracing
// mode: it synthesizes one region pair per output cell from the operator's
// map_b. Built-in operators call it from Run when cur_modes includes Full,
// which is exactly what black-box re-execution requests.
func EmitMappedPairs(rc *RunCtx, mc *MapCtx, op BackwardMapper) error {
	nIn := len(mc.InSpaces)
	ins := make([][]uint64, nIn)
	outBuf := make([]uint64, 1)
	for idx := uint64(0); idx < mc.OutSpace.Size(); idx++ {
		outBuf[0] = idx
		for i := 0; i < nIn; i++ {
			ins[i] = op.MapB(mc, idx, i, ins[i][:0])
		}
		if err := rc.LWrite(outBuf, ins...); err != nil {
			return err
		}
	}
	return nil
}

// RebuildStore re-materializes one degraded lineage store by re-running
// its node under the same strategy into a fresh kvstore namespace, then
// swapping the healed store into the run — the self-heal path behind
// "lineage is a recoverable cache". The rebuild reuses the capture
// pipeline of a normal execution (including the sharded ingest
// coordinator when configured), so a healed store is byte-identical to
// one written by the original run. The corrupt store is left open and
// detached: lookups that resolved it before the swap keep falling back
// to re-execution, and its log is freed with the run.
func (e *Executor) RebuildStore(ctx context.Context, run *Run, nodeID string, st *lineage.Store) error {
	if ctx == nil {
		ctx = context.Background()
	}
	node := run.Spec.Node(nodeID)
	if node == nil {
		return fmt.Errorf("workflow: rebuild: unknown node %q", nodeID)
	}
	ins, err := run.Inputs(nodeID)
	if err != nil {
		return fmt.Errorf("workflow: rebuild %q: %w", nodeID, err)
	}
	mc, err := run.MapCtx(nodeID)
	if err != nil {
		return fmt.Errorf("workflow: rebuild %q: %w", nodeID, err)
	}
	strat := st.Strategy()
	ns := fmt.Sprintf("%s/%s/%s@heal%d", run.ID, nodeID, strat.ID(), e.healSeq.Add(1))
	drop := func() { _, _ = e.manager.DropPrefix(ns) }
	kv, err := e.manager.Open(ns)
	if err != nil {
		return fmt.Errorf("workflow: rebuild %q: %w", nodeID, err)
	}
	fresh, err := lineage.OpenStore(kv, strat, mc.OutSpace, mc.InSpaces)
	if err != nil {
		drop()
		return fmt.Errorf("workflow: rebuild %q: %w", nodeID, err)
	}
	var fullStores, payStores []*lineage.Store
	if strat.Mode == lineage.Full {
		fullStores = []*lineage.Store{fresh}
	} else {
		payStores = []*lineage.Store{fresh}
	}
	writer := lineage.NewWriter(mc.OutSpace, mc.InSpaces, fullStores, payStores, nil)
	if e.ingestCfg.Enabled() {
		coord := lineage.NewCoordinator(ctx, e.ingestCfg, &e.ingestMetrics)
		defer coord.Close()
		writer.UseIngest(coord)
	}
	rc := NewRunCtx(lineage.NewModeSet(strat.Mode), writer)
	if _, err := node.Op.Run(rc, ins); err != nil {
		drop()
		return fmt.Errorf("workflow: rebuild %q: %w", nodeID, err)
	}
	if err := writer.Flush(); err != nil {
		drop()
		return fmt.Errorf("workflow: rebuild %q: %w", nodeID, err)
	}
	if err := ctx.Err(); err != nil {
		drop()
		return fmt.Errorf("workflow: rebuild %q: %w", nodeID, err)
	}
	if !run.swapStore(nodeID, st, fresh) {
		drop()
		return fmt.Errorf("workflow: rebuild %q: store no longer attached to run %s", nodeID, run.ID)
	}
	return nil
}

// Manager returns the kvstore manager (for size accounting in tests and
// benchmarks).
func (e *Executor) Manager() *kvstore.Manager { return e.manager }
