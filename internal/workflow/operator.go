// Package workflow implements the SubZero workflow executor (paper §III,
// §IV): directed acyclic graphs of operators over multi-dimensional arrays,
// executed with per-operator lineage capture, with every input and
// intermediate result retained ("no overwrite") so any operator can later
// be re-run in tracing mode to answer black-box lineage queries.
package workflow

import (
	"fmt"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/lineage"
)

// Operator is the interface every workflow operator implements — the
// paper's operator methods (Table I): run() plus supported_modes(). An
// operator consumes n input arrays and produces exactly one output array.
//
// Operators additionally implement the optional mapper interfaces below to
// expose mapping, payload, or composite lineage.
type Operator interface {
	// Name identifies the operator type (not the instance).
	Name() string
	// NumInputs returns the number of input arrays.
	NumInputs() int
	// OutShape computes the output shape from the input shapes, so the
	// executor can allocate lineage stores before running.
	OutShape(in []grid.Shape) (grid.Shape, error)
	// Run executes the operator. It must honor rc.Modes: when
	// rc.NeedsPairs() it calls rc.LWrite for every region pair, and when
	// rc.NeedsPayload() it calls rc.LWritePayload for payload pairs.
	Run(rc *RunCtx, ins []*array.Array) (*array.Array, error)
	// SupportedModes lists the lineage modes the operator can generate
	// (cur_modes candidates). Blackbox is implicitly always supported.
	// An operator supporting only Blackbox is treated conservatively:
	// every output cell depends on every input cell.
	SupportedModes() []lineage.Mode
}

// BackwardMapper computes backward lineage purely from coordinates — the
// operator's map_b (paper §V-A2). Implementations append the input cells
// of input inputIdx that contribute to out and return the extended slice.
type BackwardMapper interface {
	MapB(mc *MapCtx, out uint64, inputIdx int, dst []uint64) []uint64
}

// ForwardMapper computes forward lineage purely from coordinates — map_f.
type ForwardMapper interface {
	MapF(mc *MapCtx, in uint64, inputIdx int, dst []uint64) []uint64
}

// PayloadMapper computes backward lineage from a coordinate plus the
// payload stored by LWritePayload — map_p (paper §V-A3).
type PayloadMapper interface {
	MapP(mc *MapCtx, out uint64, payload []byte, inputIdx int, dst []uint64) []uint64
}

// AllToAll marks operators for the entire-array optimization (paper
// §VI-C): when it returns true, the forward lineage of any input cell is
// the entire output array and the backward lineage of any output cell is
// the entire input — the query executor may skip fine-grained tracing.
// The paper relies on "the programmer to manually annotate operators where
// the optimization can be applied"; this interface is that annotation.
type AllToAll interface {
	AllToAll() bool
}

// EntireArraySafe is the second half of the entire-array optimization:
// "Many operators can safely assume that the forward (backward) lineage
// of an entire input (output) array is the entire output (input) array"
// (paper §VI-C). When the query executor's intermediate boolean array is
// completely set, an operator annotated safe for that direction and input
// lets the step skip tracing entirely. The annotation is per direction and
// per input because it does not hold universally — the paper's own
// counterexample is concatenate, where one input's forward lineage is only
// a subset of the output.
type EntireArraySafe interface {
	// EntireArraySafe reports whether a full source set maps to the full
	// destination: for forward steps, full input inputIdx -> entire
	// output; for backward steps, full output -> entire input inputIdx.
	EntireArraySafe(forward bool, inputIdx int) bool
}

// MapCtx carries the array geometry mapping functions need: output and
// input spaces plus scratch for coordinate conversion. The scratch makes
// a MapCtx unsafe for concurrent use — callers that run mapping functions
// in parallel (the query executor serving batched queries) work on a
// Clone, which shares the immutable geometry but owns its scratch.
type MapCtx struct {
	OutSpace *grid.Space
	InSpaces []*grid.Space

	outCoord grid.Coord
	inCoords []grid.Coord
}

// NewMapCtx builds a MapCtx for the given geometry.
func NewMapCtx(outSpace *grid.Space, inSpaces []*grid.Space) *MapCtx {
	mc := &MapCtx{
		OutSpace: outSpace,
		InSpaces: inSpaces,
		outCoord: make(grid.Coord, outSpace.Rank()),
		inCoords: make([]grid.Coord, len(inSpaces)),
	}
	for i, sp := range inSpaces {
		mc.inCoords[i] = make(grid.Coord, sp.Rank())
	}
	return mc
}

// Clone returns a MapCtx over the same geometry with private scratch
// buffers, safe to use concurrently with the original.
func (mc *MapCtx) Clone() *MapCtx { return NewMapCtx(mc.OutSpace, mc.InSpaces) }

// OutCoord unravels an output cell into the context's scratch coordinate.
func (mc *MapCtx) OutCoord(idx uint64) grid.Coord {
	mc.OutSpace.UnravelInto(idx, mc.outCoord)
	return mc.outCoord
}

// InCoord unravels a cell of input i into the context's scratch coordinate.
func (mc *MapCtx) InCoord(i int, idx uint64) grid.Coord {
	mc.InSpaces[i].UnravelInto(idx, mc.inCoords[i])
	return mc.inCoords[i]
}

// RunCtx is the execution context handed to Operator.Run: it carries the
// cur_modes set and the lwrite API bound to this operator instance's
// lineage stores (or the tracing sink during re-execution).
type RunCtx struct {
	modes  lineage.ModeSet
	writer *lineage.Writer
}

// NewRunCtx builds a run context. writer may be nil when no lineage is
// requested (pure Blackbox execution).
func NewRunCtx(modes lineage.ModeSet, writer *lineage.Writer) *RunCtx {
	return &RunCtx{modes: modes, writer: writer}
}

// Modes returns the cur_modes set for this execution.
func (rc *RunCtx) Modes() lineage.ModeSet { return rc.modes }

// NeedsPairs reports whether the operator must emit full region pairs.
func (rc *RunCtx) NeedsPairs() bool { return rc.modes.NeedsPairs() }

// NeedsPayload reports whether the operator must emit payload pairs.
func (rc *RunCtx) NeedsPayload() bool { return rc.modes.NeedsPayload() }

// LWrite records a full region pair; a no-op without a writer.
func (rc *RunCtx) LWrite(out []uint64, ins ...[]uint64) error {
	if rc.writer == nil {
		return nil
	}
	return rc.writer.LWrite(out, ins...)
}

// LWritePayload records a payload pair; a no-op without a writer.
func (rc *RunCtx) LWritePayload(out []uint64, payload []byte) error {
	if rc.writer == nil {
		return nil
	}
	return rc.writer.LWritePayload(out, payload)
}

// Meta provides the boilerplate half of Operator for embedding: name,
// input count, and supported modes.
type Meta struct {
	OpName string
	NIn    int
	Modes  []lineage.Mode
}

// Name implements Operator.
func (m Meta) Name() string { return m.OpName }

// NumInputs implements Operator.
func (m Meta) NumInputs() int { return m.NIn }

// SupportedModes implements Operator.
func (m Meta) SupportedModes() []lineage.Mode { return m.Modes }

// Supports reports whether mode is in the operator's supported set;
// Blackbox is always supported.
func Supports(op Operator, mode lineage.Mode) bool {
	if mode == lineage.Blackbox {
		return true
	}
	for _, m := range op.SupportedModes() {
		if m == mode {
			return true
		}
	}
	return false
}

// IsAllToAll reports whether the operator carries the entire-array
// annotation.
func IsAllToAll(op Operator) bool {
	if a, ok := op.(AllToAll); ok {
		return a.AllToAll()
	}
	return false
}

// IsEntireArraySafe reports whether the operator annotates the full-set
// shortcut for the given direction and input; unannotated operators are
// conservatively unsafe.
func IsEntireArraySafe(op Operator, forward bool, inputIdx int) bool {
	if a, ok := op.(EntireArraySafe); ok {
		return a.EntireArraySafe(forward, inputIdx)
	}
	return false
}

// SameShapeOut is a helper OutShape for operators whose output matches
// input 0; it verifies all inputs that must agree do.
func SameShapeOut(in []grid.Shape) (grid.Shape, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("workflow: operator requires at least one input")
	}
	return in[0].Clone(), nil
}
