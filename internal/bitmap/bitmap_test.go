package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subzero/internal/grid"
)

func space(dims ...int) *grid.Space { return grid.NewSpace(grid.Shape(dims)) }

func TestSetGetCount(t *testing.T) {
	b := New(space(10, 10))
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("new bitmap not empty")
	}
	if !b.Set(5) {
		t.Fatal("first Set returned false")
	}
	if b.Set(5) {
		t.Fatal("duplicate Set returned true")
	}
	if !b.Get(5) || b.Get(6) {
		t.Fatal("Get wrong")
	}
	if b.Count() != 1 {
		t.Fatalf("Count=%d", b.Count())
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	b := New(space(4, 4))
	if b.Set(16) || b.Set(1<<40) {
		t.Fatal("out-of-range Set succeeded")
	}
	if b.Get(16) {
		t.Fatal("out-of-range Get true")
	}
	if b.Count() != 0 {
		t.Fatal("out-of-range Set changed count")
	}
}

func TestSetAllAndFull(t *testing.T) {
	for _, dims := range [][]int{{3, 3}, {8, 8}, {1, 65}, {127}, {64}, {2, 2, 2}} {
		b := New(space(dims...))
		b.SetAll()
		if !b.Full() {
			t.Fatalf("shape %v: SetAll not Full (count=%d size=%d)", dims, b.Count(), b.Size())
		}
		// Every cell individually set; none beyond.
		for i := uint64(0); i < b.Size(); i++ {
			if !b.Get(i) {
				t.Fatalf("shape %v: cell %d unset after SetAll", dims, i)
			}
		}
		got := b.Cells(nil)
		if uint64(len(got)) != b.Size() {
			t.Fatalf("shape %v: Cells returned %d of %d", dims, len(got), b.Size())
		}
	}
}

func TestSetRect(t *testing.T) {
	sp := space(6, 6)
	b := New(sp)
	added := b.SetRect(grid.Rect{Lo: grid.Coord{1, 1}, Hi: grid.Coord{3, 2}})
	if added != 6 || b.Count() != 6 {
		t.Fatalf("SetRect added=%d count=%d", added, b.Count())
	}
	// Overlapping rect adds only the new cells.
	added = b.SetRect(grid.Rect{Lo: grid.Coord{3, 2}, Hi: grid.Coord{4, 3}})
	if added != 3 {
		t.Fatalf("overlapping SetRect added=%d, want 3", added)
	}
	// Out-of-bounds rect is clipped.
	added = b.SetRect(grid.Rect{Lo: grid.Coord{5, 5}, Hi: grid.Coord{9, 9}})
	if added != 1 {
		t.Fatalf("clipped SetRect added=%d, want 1", added)
	}
	// Fully outside: nothing.
	if b.SetRect(grid.Rect{Lo: grid.Coord{7, 7}, Hi: grid.Coord{9, 9}}) != 0 {
		t.Fatal("fully-out rect set cells")
	}
}

func TestIntersectsRect(t *testing.T) {
	sp := space(8, 8)
	b := New(sp)
	b.Set(sp.Ravel(grid.Coord{4, 5}))
	if !b.IntersectsRect(grid.Rect{Lo: grid.Coord{3, 3}, Hi: grid.Coord{5, 6}}) {
		t.Fatal("should intersect")
	}
	if b.IntersectsRect(grid.Rect{Lo: grid.Coord{0, 0}, Hi: grid.Coord{3, 3}}) {
		t.Fatal("should not intersect")
	}
}

func TestIterateOrderAndEarlyStop(t *testing.T) {
	b := New(space(100))
	for _, v := range []uint64{90, 3, 64, 63} {
		b.Set(v)
	}
	var got []uint64
	b.Iterate(func(idx uint64) bool {
		got = append(got, idx)
		return len(got) < 3
	})
	want := []uint64{3, 63, 64}
	if len(got) != 3 {
		t.Fatalf("early stop failed: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Iterate order %v, want %v", got, want)
		}
	}
}

func TestOr(t *testing.T) {
	a := New(space(4, 16))
	b := New(space(4, 16))
	a.SetCells([]uint64{1, 2, 3})
	b.SetCells([]uint64{3, 4, 63})
	if err := a.Or(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 5 {
		t.Fatalf("Or count=%d, want 5", a.Count())
	}
	c := New(space(8, 8))
	if err := a.Or(c); err == nil {
		t.Fatal("shape-mismatched Or accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(space(32))
	a.Set(7)
	c := a.Clone()
	c.Set(9)
	if a.Get(9) {
		t.Fatal("clone aliases parent")
	}
	if !c.Get(7) {
		t.Fatal("clone missing parent bits")
	}
}

func TestClear(t *testing.T) {
	b := New(space(10))
	b.SetAll()
	b.Clear()
	if !b.Empty() || b.Get(3) {
		t.Fatal("Clear did not empty bitmap")
	}
}

func TestFromCellsMatchesSetCells(t *testing.T) {
	sp := space(16, 16)
	cells := []uint64{0, 17, 255, 100}
	b := FromCells(sp, cells)
	if b.Count() != 4 {
		t.Fatalf("count=%d", b.Count())
	}
	for _, c := range cells {
		if !b.Get(c) {
			t.Fatalf("cell %d missing", c)
		}
	}
}

// Property: bitmap behaves exactly like a map[uint64]bool reference set.
func TestQuickBitmapVsReference(t *testing.T) {
	f := func(ops []uint16) bool {
		sp := space(40, 40)
		b := New(sp)
		ref := map[uint64]bool{}
		for _, op := range ops {
			idx := uint64(op) % sp.Size()
			b.Set(idx)
			ref[idx] = true
		}
		if b.Count() != uint64(len(ref)) {
			return false
		}
		ok := true
		b.Iterate(func(idx uint64) bool {
			if !ref[idx] {
				ok = false
			}
			delete(ref, idx)
			return true
		})
		return ok && len(ref) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Or(a,b) has count == |union| computed by reference.
func TestQuickOrMatchesUnion(t *testing.T) {
	f := func(as, bs []uint16) bool {
		sp := space(33, 7)
		a, b := New(sp), New(sp)
		ref := map[uint64]bool{}
		for _, v := range as {
			idx := uint64(v) % sp.Size()
			a.Set(idx)
			ref[idx] = true
		}
		for _, v := range bs {
			idx := uint64(v) % sp.Size()
			b.Set(idx)
			ref[idx] = true
		}
		if err := a.Or(b); err != nil {
			return false
		}
		return a.Count() == uint64(len(ref))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetRectMatchesCells(t *testing.T) {
	f := func(lo0, lo1, e0, e1 uint8) bool {
		sp := space(30, 30)
		r := grid.Rect{
			Lo: grid.Coord{int(lo0 % 25), int(lo1 % 25)},
			Hi: grid.Coord{int(lo0%25) + int(e0%10), int(lo1%25) + int(e1%10)},
		}
		viaRect := New(sp)
		viaRect.SetRect(r)
		clipped, ok := r.Clip(sp.Shape())
		if !ok {
			return viaRect.Empty()
		}
		viaCells := FromCells(sp, clipped.Cells(sp, nil))
		if viaRect.Count() != viaCells.Count() {
			return false
		}
		match := true
		viaRect.Iterate(func(idx uint64) bool {
			if !viaCells.Get(idx) {
				match = false
			}
			return match
		})
		return match
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetCells(b *testing.B) {
	sp := space(512, 2000)
	cells := make([]uint64, 10000)
	rng := rand.New(rand.NewSource(1))
	for i := range cells {
		cells[i] = uint64(rng.Int63n(int64(sp.Size())))
	}
	bm := New(sp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bm.Clear()
		bm.SetCells(cells)
	}
}

func BenchmarkIterate(b *testing.B) {
	sp := space(512, 2000)
	bm := New(sp)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		bm.Set(uint64(rng.Int63n(int64(sp.Size()))))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		bm.Iterate(func(uint64) bool { n++; return true })
	}
}
