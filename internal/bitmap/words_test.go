package bitmap

import (
	"math/rand"
	"testing"
)

func randBlock(rng *rand.Rand) *[BlockWords]uint64 {
	var blk [BlockWords]uint64
	for i := range blk {
		blk[i] = rng.Uint64() & rng.Uint64() // ~25% density
	}
	return &blk
}

// OrBlock must agree with setting the block's bits one by one, including
// the count of freshly set cells, and clip at the space edge.
func TestOrBlockMatchesSetLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sp := space(3000) // not a multiple of 64·BlockWords
	for trial := 0; trial < 50; trial++ {
		got := New(sp)
		want := New(sp)
		// Pre-populate both so "newly set" counting is exercised.
		for i := 0; i < 200; i++ {
			c := uint64(rng.Intn(3000))
			got.Set(c)
			want.Set(c)
		}
		base := uint64(rng.Intn(4)) * 64 * uint64(rng.Intn(4))
		base = (base / 64) * 64 // 64-aligned
		if trial%3 == 0 {
			base = 2944 // block straddles the 3000-cell space edge
		}
		blk := randBlock(rng)

		before := want.Count()
		for wi := 0; wi < BlockWords; wi++ {
			for b := 0; b < 64; b++ {
				if blk[wi]&(uint64(1)<<b) != 0 {
					want.Set(base + uint64(wi)*64 + uint64(b))
				}
			}
		}
		added := got.OrBlock(base, blk)
		if added != want.Count()-before {
			t.Fatalf("trial %d: OrBlock added %d, set loop added %d", trial, added, want.Count()-before)
		}
		if got.Count() != want.Count() {
			t.Fatalf("trial %d: counts differ: %d vs %d", trial, got.Count(), want.Count())
		}
		for c := uint64(0); c < 3000; c++ {
			if got.Get(c) != want.Get(c) {
				t.Fatalf("trial %d: cell %d differs", trial, c)
			}
		}
	}
}

func TestOrBlockClipsAtSpaceEdge(t *testing.T) {
	b := New(space(100))
	var blk [BlockWords]uint64
	for i := range blk {
		blk[i] = ^uint64(0)
	}
	if added := b.OrBlock(64, &blk); added != 36 {
		t.Fatalf("OrBlock past edge added %d, want 36", added)
	}
	if b.Count() != 36 {
		t.Fatalf("count = %d, want 36", b.Count())
	}
	// A base entirely past the space is a no-op.
	if added := b.OrBlock(1<<20, &blk); added != 0 {
		t.Fatalf("out-of-space OrBlock added %d", added)
	}
}

func TestAnyBlock(t *testing.T) {
	b := New(space(4096))
	var blk [BlockWords]uint64
	blk[7] = 1 << 13 // cell base+461
	if b.AnyBlock(1024, &blk) {
		t.Fatal("AnyBlock true on empty bitmap")
	}
	b.Set(1024 + 7*64 + 13)
	if !b.AnyBlock(1024, &blk) {
		t.Fatal("AnyBlock false on matching cell")
	}
	if b.AnyBlock(2048, &blk) {
		t.Fatal("AnyBlock true for wrong block base")
	}
	if b.AnyBlock(1<<30, &blk) {
		t.Fatal("AnyBlock true past the space")
	}
}

// The word-parallel block ops are the inner loop of in-situ container
// probes; they must not allocate.
func TestBlockOpsAllocFree(t *testing.T) {
	b := New(space(1 << 16))
	var blk [BlockWords]uint64
	blk[3] = 0xDEADBEEF
	if n := testing.AllocsPerRun(100, func() {
		b.OrBlock(2048, &blk)
		b.AnyBlock(2048, &blk)
	}); n != 0 {
		t.Fatalf("block ops allocate %v per run, want 0", n)
	}
}
