package bitmap

import (
	"fmt"
	"math/bits"

	"subzero/internal/grid"
)

// Word-parallel span operations. The lineage lookup hot path stores and
// decodes cell sets as runs of consecutive indices; these methods apply
// whole runs to the intermediate boolean arrays 64 cells per step instead
// of bit-by-bit.

// SetRun marks the cells [start, start+n), clipped to the space, and
// returns the number newly set. Interior words are set 64 bits at a time.
func (b *Bitmap) SetRun(start, n uint64) uint64 {
	size := b.space.Size()
	if n == 0 || start >= size {
		return 0
	}
	end := start + n // exclusive
	if end > size || end < start {
		end = size
	}
	var added uint64
	w0, w1 := start/64, (end-1)/64
	if w0 == w1 {
		mask := (uint64(1)<<(end-start) - 1) << (start % 64)
		added = uint64(bits.OnesCount64(mask &^ b.words[w0]))
		b.words[w0] |= mask
		b.count += added
		return added
	}
	first := ^uint64(0) << (start % 64)
	added += uint64(bits.OnesCount64(first &^ b.words[w0]))
	b.words[w0] |= first
	for w := w0 + 1; w < w1; w++ {
		added += uint64(bits.OnesCount64(^b.words[w]))
		b.words[w] = ^uint64(0)
	}
	last := ^uint64(0) >> (64 - (end-1)%64 - 1)
	added += uint64(bits.OnesCount64(last &^ b.words[w1]))
	b.words[w1] |= last
	b.count += added
	return added
}

// AnyInRange reports whether any cell in [start, start+n) is set, testing
// 64 cells per word. Out-of-range portions are ignored.
func (b *Bitmap) AnyInRange(start, n uint64) bool {
	size := b.space.Size()
	if n == 0 || start >= size {
		return false
	}
	end := start + n
	if end > size || end < start {
		end = size
	}
	w0, w1 := start/64, (end-1)/64
	if w0 == w1 {
		mask := (uint64(1)<<(end-start) - 1) << (start % 64)
		return b.words[w0]&mask != 0
	}
	if b.words[w0]&(^uint64(0)<<(start%64)) != 0 {
		return true
	}
	for w := w0 + 1; w < w1; w++ {
		if b.words[w] != 0 {
			return true
		}
	}
	last := ^uint64(0) >> (64 - (end-1)%64 - 1)
	return b.words[w1]&last != 0
}

// AndNot clears every cell of b that is set in o (b = b &^ o). The two
// bitmaps must cover the same shape.
func (b *Bitmap) AndNot(o *Bitmap) error {
	if !b.space.Shape().Equal(o.space.Shape()) {
		return fmt.Errorf("bitmap: ANDNOT of mismatched shapes %v and %v", b.space.Shape(), o.space.Shape())
	}
	var count uint64
	for i := range b.words {
		b.words[i] &^= o.words[i]
		count += uint64(bits.OnesCount64(b.words[i]))
	}
	b.count = count
	return nil
}

// IterateRuns calls fn with each maximal run of set cells — (start,
// length) with every cell in [start, start+length) set — in ascending
// order until fn returns false. Full and empty words are skipped 64 cells
// at a time.
func (b *Bitmap) IterateRuns(fn func(start, length uint64) bool) {
	var runStart uint64
	inRun := false
	for w := range b.words {
		word := b.words[w]
		base := uint64(w) * 64
		switch {
		case word == 0:
			if inRun {
				if !fn(runStart, base-runStart) {
					return
				}
				inRun = false
			}
		case word == ^uint64(0):
			if !inRun {
				runStart, inRun = base, true
			}
		default:
			pos := uint64(0)
			for pos < 64 {
				if !inRun {
					rest := word >> pos
					if rest == 0 {
						break
					}
					pos += uint64(bits.TrailingZeros64(rest))
					runStart, inRun = base+pos, true
				} else {
					rest := ^(word >> pos)
					if rest == 0 {
						break // run continues into the next word
					}
					pos += uint64(bits.TrailingZeros64(rest))
					if pos >= 64 {
						break // run ends at the word boundary; the next
						// word decides whether it continues
					}
					if !fn(runStart, base+pos-runStart) {
						return
					}
					inRun = false
				}
			}
		}
	}
	if inRun {
		// Trailing bits past Size() are always zero, so this run ends at
		// the last word boundary == the space size.
		fn(runStart, uint64(len(b.words))*64-runStart)
	}
}

// IterateRects decomposes the set cells into disjoint axis-aligned
// rectangles that cover exactly the set cells and calls fn for each in
// ascending row-major order until fn returns false. Runs within one row
// become a single rectangle; blocks of consecutive full rows merge into
// one taller rectangle. The rectangle passed to fn aliases internal
// scratch and is only valid for the duration of the call.
//
// The lineage index uses this to turn a query bitmap into a handful of
// R-tree window queries instead of one point query per cell.
func (b *Bitmap) IterateRects(fn func(r grid.Rect) bool) {
	rank := b.space.Rank()
	shape := b.space.Shape()
	lo := make(grid.Coord, rank)
	hi := make(grid.Coord, rank)
	if rank == 1 {
		b.IterateRuns(func(start, length uint64) bool {
			lo[0], hi[0] = int(start), int(start+length-1)
			return fn(grid.Rect{Lo: lo, Hi: hi})
		})
		return
	}
	rowLen := uint64(shape[rank-1])
	b.IterateRuns(func(start, length uint64) bool {
		s, e := start, start+length-1
		for s <= e {
			rowOff := s % rowLen
			rowEnd := s - rowOff + rowLen - 1
			if rowOff != 0 || e < rowEnd {
				// Partial row segment.
				pe := min(e, rowEnd)
				b.space.UnravelInto(s, lo)
				b.space.UnravelInto(pe, hi)
				if !fn(grid.Rect{Lo: lo, Hi: hi}) {
					return false
				}
				if pe == e {
					break
				}
				s = pe + 1
				continue
			}
			// One or more full rows; merge as many as stay within the
			// current slab of the second-to-last dimension.
			rows := (e - s + 1) / rowLen
			b.space.UnravelInto(s, lo)
			if left := uint64(shape[rank-2] - lo[rank-2]); rows > left {
				rows = left
			}
			last := s + rows*rowLen - 1
			b.space.UnravelInto(last, hi)
			if !fn(grid.Rect{Lo: lo, Hi: hi}) {
				return false
			}
			s = last + 1
		}
		return true
	})
}
