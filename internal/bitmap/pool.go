package bitmap

import (
	"sync"

	"subzero/internal/grid"
)

// poolLimit caps how many bitmaps a Pool retains; beyond it, Put drops
// the bitmap for the GC.
const poolLimit = 32

// Pool recycles bitmap word storage across query steps. A query over a
// multi-step path allocates one intermediate boolean array per step, all
// discarded at the end; with a pool, steady-state query traffic reuses
// the same few word slices instead of re-allocating megabytes per query.
//
// Get rebinds a recycled bitmap to the requested space (word storage is
// reused whenever its capacity suffices), so one pool serves steps over
// arrays of different shapes. A zero Pool is ready to use; it is safe
// for concurrent use.
type Pool struct {
	mu   sync.Mutex
	free []*Bitmap
}

// Get returns an empty bitmap over the given space, reusing pooled
// storage when possible.
func (p *Pool) Get(space *grid.Space) *Bitmap {
	need := int((space.Size() + 63) / 64)
	p.mu.Lock()
	for i := len(p.free) - 1; i >= 0; i-- {
		b := p.free[i]
		if cap(b.words) < need {
			continue
		}
		p.free[i] = p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.mu.Unlock()
		b.space = space
		b.words = b.words[:need]
		clear(b.words)
		b.count = 0
		return b
	}
	p.mu.Unlock()
	return New(space)
}

// Put returns a bitmap to the pool. The caller must not use b afterwards;
// in particular, bitmaps handed to API consumers (query results) must
// never be Put.
func (p *Pool) Put(b *Bitmap) {
	if b == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) < poolLimit {
		p.free = append(p.free, b)
	}
}
