package bitmap

import "math/bits"

// Container block operations. The v3 lineage codec stores cell sets as
// fixed 1024-cell tiles (internal/binenc containers); a tile's bit block
// is BlockWords uint64 words whose first bit is a 64-aligned cell index,
// so lookups can OR and AND whole words against the query bitmaps
// without materializing per-cell slices.

// BlockWords is the word width of one container block: 16 words =
// 1024 cells, matching binenc.TileCells.
const BlockWords = 16

// OrBlock ORs a container block whose first bit is baseCell into the
// bitmap, returning the number of cells newly set. baseCell must be
// 64-aligned (container tile bases are 1024-aligned). Bits beyond the
// bitmap's space are clipped, mirroring Set.
func (b *Bitmap) OrBlock(baseCell uint64, blk *[BlockWords]uint64) uint64 {
	wu := baseCell / 64
	if wu >= uint64(len(b.words)) {
		return 0
	}
	w0 := int(wu)
	n := len(b.words) - w0
	if n > BlockWords {
		n = BlockWords
	}
	last := len(b.words) - 1
	rem := b.space.Size() % 64
	var added uint64
	for i := 0; i < n; i++ {
		word := blk[i]
		if w0+i == last && rem != 0 {
			word &= uint64(1)<<rem - 1
		}
		if fresh := word &^ b.words[w0+i]; fresh != 0 {
			added += uint64(bits.OnesCount64(fresh))
			b.words[w0+i] |= fresh
		}
	}
	b.count += added
	return added
}

// AnyBlock reports whether any set cell of the bitmap falls inside the
// container block at baseCell. baseCell must be 64-aligned.
func (b *Bitmap) AnyBlock(baseCell uint64, blk *[BlockWords]uint64) bool {
	wu := baseCell / 64
	if wu >= uint64(len(b.words)) {
		return false
	}
	w0 := int(wu)
	n := len(b.words) - w0
	if n > BlockWords {
		n = BlockWords
	}
	for i := 0; i < n; i++ {
		if b.words[w0+i]&blk[i] != 0 {
			return true
		}
	}
	return false
}
