// Package bitmap implements dense boolean arrays over an array shape.
//
// The SubZero query executor (paper §VI-C) stores the intermediate result of
// every lineage-query step "in an in-memory boolean array with the same
// dimensions as the input (backward query) or output (forward query) array".
// The bitmap de-duplicates the large fan-in/fan-out result sets produced by
// region lineage, detects saturation so an operator can be closed early, and
// feeds the entire-array optimization.
package bitmap

import (
	"fmt"
	"math/bits"

	"subzero/internal/grid"
)

// Bitmap is a fixed-size set of cell indices over a shape.
type Bitmap struct {
	space *grid.Space
	words []uint64
	count uint64
}

// New creates an empty bitmap over the given space.
func New(space *grid.Space) *Bitmap {
	n := (space.Size() + 63) / 64
	return &Bitmap{space: space, words: make([]uint64, n)}
}

// Space returns the space the bitmap covers.
func (b *Bitmap) Space() *grid.Space { return b.space }

// Size returns the number of addressable cells.
func (b *Bitmap) Size() uint64 { return b.space.Size() }

// Count returns the number of set cells.
func (b *Bitmap) Count() uint64 { return b.count }

// Full reports whether every cell is set.
func (b *Bitmap) Full() bool { return b.count == b.space.Size() }

// Empty reports whether no cell is set.
func (b *Bitmap) Empty() bool { return b.count == 0 }

// Set marks a cell, returning true if it was newly set. Out-of-range
// indices are ignored and return false: region lineage produced by UDFs may
// legitimately reference a superset of the array (the paper permits
// supersets of exact lineage), so the executor clips rather than fails.
func (b *Bitmap) Set(idx uint64) bool {
	if idx >= b.space.Size() {
		return false
	}
	w, m := idx/64, uint64(1)<<(idx%64)
	if b.words[w]&m != 0 {
		return false
	}
	b.words[w] |= m
	b.count++
	return true
}

// SetAll marks every cell in the bitmap (the entire-array optimization).
func (b *Bitmap) SetAll() {
	size := b.space.Size()
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if rem := size % 64; rem != 0 {
		b.words[len(b.words)-1] = (uint64(1) << rem) - 1
	}
	b.count = size
}

// Get reports whether a cell is set. Out-of-range indices return false.
func (b *Bitmap) Get(idx uint64) bool {
	if idx >= b.space.Size() {
		return false
	}
	return b.words[idx/64]&(uint64(1)<<(idx%64)) != 0
}

// SetCells marks every index in cells, returning the number newly set.
func (b *Bitmap) SetCells(cells []uint64) uint64 {
	var added uint64
	for _, idx := range cells {
		if b.Set(idx) {
			added++
		}
	}
	return added
}

// SetRect marks every cell inside the rectangle (clipped to the shape),
// returning the number newly set.
func (b *Bitmap) SetRect(r grid.Rect) uint64 {
	clipped, ok := r.Clip(b.space.Shape())
	if !ok {
		return 0
	}
	var added uint64
	cur := clipped.Lo.Clone()
	for {
		if b.Set(b.space.Ravel(cur)) {
			added++
		}
		d := len(cur) - 1
		for d >= 0 {
			cur[d]++
			if cur[d] <= clipped.Hi[d] {
				break
			}
			cur[d] = clipped.Lo[d]
			d--
		}
		if d < 0 {
			return added
		}
	}
}

// Or merges another bitmap over the same space into b.
func (b *Bitmap) Or(o *Bitmap) error {
	if !b.space.Shape().Equal(o.space.Shape()) {
		return fmt.Errorf("bitmap: OR of mismatched shapes %v and %v", b.space.Shape(), o.space.Shape())
	}
	var count uint64
	for i := range b.words {
		b.words[i] |= o.words[i]
		count += uint64(bits.OnesCount64(b.words[i]))
	}
	b.count = count
	return nil
}

// IntersectsRect reports whether any set cell lies inside the rectangle.
func (b *Bitmap) IntersectsRect(r grid.Rect) bool {
	clipped, ok := r.Clip(b.space.Shape())
	if !ok {
		return false
	}
	cur := clipped.Lo.Clone()
	for {
		if b.Get(b.space.Ravel(cur)) {
			return true
		}
		d := len(cur) - 1
		for d >= 0 {
			cur[d]++
			if cur[d] <= clipped.Hi[d] {
				break
			}
			cur[d] = clipped.Lo[d]
			d--
		}
		if d < 0 {
			return false
		}
	}
}

// Iterate calls fn with each set index in ascending order until fn returns
// false.
func (b *Bitmap) Iterate(fn func(idx uint64) bool) {
	for w, word := range b.words {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			if !fn(uint64(w)*64 + uint64(bit)) {
				return
			}
			word &= word - 1
		}
	}
}

// Cells appends all set indices to dst in ascending order and returns the
// extended slice.
func (b *Bitmap) Cells(dst []uint64) []uint64 {
	b.Iterate(func(idx uint64) bool {
		dst = append(dst, idx)
		return true
	})
	return dst
}

// Clear resets the bitmap to empty.
func (b *Bitmap) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.count = 0
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{space: b.space, words: make([]uint64, len(b.words)), count: b.count}
	copy(c.words, b.words)
	return c
}

// FromCells builds a bitmap over space with the given cells set.
func FromCells(space *grid.Space, cells []uint64) *Bitmap {
	b := New(space)
	b.SetCells(cells)
	return b
}

// MemoryBytes returns the approximate heap footprint, used by the query
// executor's accounting.
func (b *Bitmap) MemoryBytes() uint64 { return uint64(len(b.words)) * 8 }
