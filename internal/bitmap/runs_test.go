package bitmap

import (
	"math/rand"
	"testing"

	"subzero/internal/grid"
)

func TestSetRunMatchesSetLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sp := space(5, 37) // 185 cells: last word partially used
	for trial := 0; trial < 500; trial++ {
		start := uint64(rng.Intn(200))
		n := uint64(rng.Intn(200))
		a, b := New(sp), New(sp)
		// Pre-populate both with the same noise.
		for i := 0; i < 40; i++ {
			c := uint64(rng.Intn(185))
			a.Set(c)
			b.Set(c)
		}
		var wantAdded uint64
		for c := start; c < start+n; c++ {
			if a.Set(c) {
				wantAdded++
			}
		}
		if got := b.SetRun(start, n); got != wantAdded {
			t.Fatalf("trial %d: SetRun(%d,%d) added %d, want %d", trial, start, n, got, wantAdded)
		}
		if a.Count() != b.Count() {
			t.Fatalf("trial %d: counts diverge %d vs %d", trial, a.Count(), b.Count())
		}
		for c := uint64(0); c < 185; c++ {
			if a.Get(c) != b.Get(c) {
				t.Fatalf("trial %d: cell %d diverges", trial, c)
			}
		}
	}
}

func TestSetRunSpansManyWords(t *testing.T) {
	sp := space(10, 64) // 640 cells
	b := New(sp)
	if added := b.SetRun(3, 600); added != 600 {
		t.Fatalf("added %d, want 600", added)
	}
	if b.Count() != 600 || b.Get(2) || !b.Get(3) || !b.Get(602) || b.Get(603) {
		t.Fatalf("run boundaries wrong: count=%d", b.Count())
	}
	// Overlapping re-set adds only the new cells.
	if added := b.SetRun(0, 10); added != 3 {
		t.Fatalf("overlap added %d, want 3", added)
	}
}

func TestAnyInRange(t *testing.T) {
	sp := space(3, 100)
	b := New(sp)
	b.Set(70)
	b.Set(250)
	cases := []struct {
		start, n uint64
		want     bool
	}{
		{0, 70, false}, {0, 71, true}, {70, 1, true}, {71, 100, false},
		{200, 51, true}, {251, 1000, false}, {0, 1 << 40, true}, {300, 0, false},
		{1 << 40, 10, false},
	}
	for _, c := range cases {
		if got := b.AnyInRange(c.start, c.n); got != c.want {
			t.Fatalf("AnyInRange(%d,%d)=%v, want %v", c.start, c.n, got, c.want)
		}
	}
}

func TestAndNot(t *testing.T) {
	sp := space(2, 70)
	a, b := New(sp), New(sp)
	a.SetRun(0, 100)
	b.SetRun(50, 100)
	if err := a.AndNot(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 50 || !a.Get(49) || a.Get(50) {
		t.Fatalf("AndNot wrong: count=%d", a.Count())
	}
	if err := a.AndNot(New(space(140))); err == nil {
		t.Fatal("mismatched shapes accepted")
	}
}

func TestIterateRunsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		sp := space(1+rng.Intn(4), 1+rng.Intn(90))
		b := New(sp)
		for i := 0; i < rng.Intn(60); i++ {
			b.SetRun(uint64(rng.Intn(int(sp.Size()))), uint64(1+rng.Intn(20)))
		}
		rebuilt := New(sp)
		var prevEnd uint64
		first := true
		b.IterateRuns(func(start, length uint64) bool {
			if length == 0 {
				t.Fatalf("trial %d: zero-length run", trial)
			}
			if !first && start <= prevEnd {
				t.Fatalf("trial %d: runs not maximal/ascending: start %d after end %d", trial, start, prevEnd)
			}
			first = false
			prevEnd = start + length
			rebuilt.SetRun(start, length)
			return true
		})
		if rebuilt.Count() != b.Count() {
			t.Fatalf("trial %d: round trip count %d want %d", trial, rebuilt.Count(), b.Count())
		}
		b.Iterate(func(idx uint64) bool {
			if !rebuilt.Get(idx) {
				t.Fatalf("trial %d: cell %d lost", trial, idx)
			}
			return true
		})
	}
}

func TestIterateRunsFullBitmap(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 300} {
		b := New(space(n))
		b.SetAll()
		var runs int
		b.IterateRuns(func(start, length uint64) bool {
			runs++
			if start != 0 || length != uint64(n) {
				t.Fatalf("n=%d: run (%d,%d)", n, start, length)
			}
			return true
		})
		if runs != 1 {
			t.Fatalf("n=%d: %d runs", n, runs)
		}
	}
}

func TestIterateRunsEarlyStop(t *testing.T) {
	b := New(space(200))
	b.Set(3)
	b.Set(100)
	calls := 0
	b.IterateRuns(func(start, length uint64) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
}

// IterateRects must cover exactly the set cells with disjoint rects.
func TestIterateRectsExactCover(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := [][]int{{64}, {9, 11}, {4, 5, 7}, {1000}, {33, 64}}
	for trial := 0; trial < 200; trial++ {
		dims := shapes[trial%len(shapes)]
		sp := grid.NewSpace(grid.Shape(dims))
		b := New(sp)
		switch trial % 3 {
		case 0:
			for i := 0; i < rng.Intn(50); i++ {
				b.Set(uint64(rng.Intn(int(sp.Size()))))
			}
		case 1:
			b.SetRun(uint64(rng.Intn(int(sp.Size()))), uint64(1+rng.Intn(int(sp.Size()))))
		case 2:
			b.SetAll()
		}
		cover := New(sp)
		b.IterateRects(func(r grid.Rect) bool {
			if err := r.Validate(); err != nil {
				t.Fatalf("trial %d: invalid rect %v: %v", trial, r, err)
			}
			if added := cover.SetRect(r); added != r.Area() {
				t.Fatalf("trial %d: rect %v overlaps prior cover (added %d of %d)", trial, r, added, r.Area())
			}
			return true
		})
		if cover.Count() != b.Count() {
			t.Fatalf("trial %d: cover %d cells, want %d", trial, cover.Count(), b.Count())
		}
		b.Iterate(func(idx uint64) bool {
			if !cover.Get(idx) {
				t.Fatalf("trial %d: cell %d uncovered", trial, idx)
			}
			return true
		})
	}
}

// Full rows must merge: a fully-set 2-D bitmap decomposes into one rect.
func TestIterateRectsMergesRows(t *testing.T) {
	sp := space(32, 17)
	b := New(sp)
	b.SetAll()
	var rects int
	b.IterateRects(func(r grid.Rect) bool {
		rects++
		return true
	})
	if rects != 1 {
		t.Fatalf("full 2-D bitmap decomposed into %d rects, want 1", rects)
	}
}

func TestPoolReuseAndRebind(t *testing.T) {
	var p Pool
	big := space(100, 100)
	small := space(10)
	b1 := p.Get(big)
	b1.SetRun(0, 5000)
	p.Put(b1)
	// Same storage comes back rebound to a smaller space, cleared.
	b2 := p.Get(small)
	if b2 != b1 {
		t.Fatal("pool did not reuse storage")
	}
	if b2.Count() != 0 || b2.Space() != small || b2.Get(3) {
		t.Fatalf("recycled bitmap not reset: count=%d", b2.Count())
	}
	b2.SetAll()
	if b2.Count() != 10 {
		t.Fatalf("rebound bitmap wrong size: %d", b2.Count())
	}

	// A pooled bitmap whose storage is genuinely too small must not be
	// returned for a bigger space.
	var p2 Pool
	s := p2.Get(small)
	p2.Put(s)
	b3 := p2.Get(big)
	if b3 == s {
		t.Fatal("pool returned undersized storage")
	}
}

// The word-parallel ops must not allocate: they are the per-step inner
// loop of every lineage lookup.
func TestWordParallelOpsAllocFree(t *testing.T) {
	sp := space(1000, 1000)
	a, b := New(sp), New(sp)
	b.SetRun(1000, 500000)
	if n := testing.AllocsPerRun(10, func() { a.SetRun(0, 900000) }); n > 0 {
		t.Fatalf("SetRun allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		if err := a.Or(b); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("Or allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		if err := a.AndNot(b); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("AndNot allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(10, func() { a.AnyInRange(5, 999000) }); n > 0 {
		t.Fatalf("AnyInRange allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		a.IterateRuns(func(_, _ uint64) bool { return true })
	}); n > 0 {
		t.Fatalf("IterateRuns allocates %.1f/op", n)
	}
}

func BenchmarkSetRun(b *testing.B) {
	sp := space(1000, 1000)
	bm := New(sp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bm.Clear()
		bm.SetRun(123, 999000)
	}
}

func BenchmarkIterateRuns(b *testing.B) {
	sp := space(1000, 1000)
	bm := New(sp)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		bm.SetRun(uint64(rng.Intn(1000000)), uint64(1+rng.Intn(50)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total uint64
		bm.IterateRuns(func(_, n uint64) bool { total += n; return true })
	}
}

func BenchmarkOr(b *testing.B) {
	sp := space(1000, 1000)
	x, y := New(sp), New(sp)
	y.SetRun(0, 500000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := x.Or(y); err != nil {
			b.Fatal(err)
		}
	}
}
