// Package ops provides SubZero's built-in operator library: the common
// matrix and statistical operators the paper instruments with forward and
// backward mapping functions (§V-A2: "Most SciDB operators (e.g., matrix
// multiply, join, transpose, convolution) are mapping operators, and we
// have implemented their forward and backward mapping functions").
//
// Every operator here supports Map lineage (zero storage, lineage computed
// from coordinates) and Full lineage (region pairs synthesized from map_b
// during tracing-mode re-execution, which is how black-box queries are
// answered).
package ops

import (
	"fmt"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/lineage"
	"subzero/internal/workflow"
)

// mappingModes is the supported-mode set shared by all built-ins.
func mappingModes() []lineage.Mode { return []lineage.Mode{lineage.Map, lineage.Full} }

// spacesOf extracts the coordinate spaces of the inputs.
func spacesOf(ins []*array.Array) []*grid.Space {
	sp := make([]*grid.Space, len(ins))
	for i, a := range ins {
		sp[i] = a.Space()
	}
	return sp
}

// emitTracePairs synthesizes full region pairs from the operator's map_b
// when the execution requests Full lineage (tracing mode).
func emitTracePairs(rc *workflow.RunCtx, op workflow.BackwardMapper, out *array.Array, ins []*array.Array) error {
	if !rc.NeedsPairs() {
		return nil
	}
	mc := workflow.NewMapCtx(out.Space(), spacesOf(ins))
	return workflow.EmitMappedPairs(rc, mc, op)
}

func requireSameShapes(ins []*array.Array) error {
	for i := 1; i < len(ins); i++ {
		if !ins[i].Shape().Equal(ins[0].Shape()) {
			return fmt.Errorf("ops: input %d shape %v differs from input 0 shape %v", i, ins[i].Shape(), ins[0].Shape())
		}
	}
	return nil
}

// identityMapSameShape is the map_b/map_f of one-to-one operators: the
// corresponding cell at the same coordinate.
func identityMap(idx uint64, dst []uint64) []uint64 { return append(dst, idx) }

// ---------------------------------------------------------------------
// Unary elementwise operators (one-to-one mapping operators).
// ---------------------------------------------------------------------

// Unary applies a scalar function cell-wise; output cell (c) depends
// exactly on input cell (c).
type Unary struct {
	workflow.Meta
	Fn func(float64) float64
}

// NewUnary builds a unary elementwise operator with the given name.
func NewUnary(name string, fn func(float64) float64) *Unary {
	return &Unary{Meta: workflow.Meta{OpName: name, NIn: 1, Modes: mappingModes()}, Fn: fn}
}

// OutShape implements Operator.
func (u *Unary) OutShape(in []grid.Shape) (grid.Shape, error) { return workflow.SameShapeOut(in) }

// Run implements Operator.
func (u *Unary) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	out, err := array.New(u.OpName, ins[0].Shape())
	if err != nil {
		return nil, err
	}
	src, dst := ins[0].Data(), out.Data()
	for i := range src {
		dst[i] = u.Fn(src[i])
	}
	if err := emitTracePairs(rc, u, out, ins); err != nil {
		return nil, err
	}
	return out, nil
}

// MapB implements BackwardMapper.
func (u *Unary) MapB(_ *workflow.MapCtx, out uint64, _ int, dst []uint64) []uint64 {
	return identityMap(out, dst)
}

// MapF implements ForwardMapper.
func (u *Unary) MapF(_ *workflow.MapCtx, in uint64, _ int, dst []uint64) []uint64 {
	return identityMap(in, dst)
}

// ---------------------------------------------------------------------
// Binary elementwise operators.
// ---------------------------------------------------------------------

// Binary combines two same-shaped arrays cell-wise; output cell (c)
// depends on cell (c) of each input.
type Binary struct {
	workflow.Meta
	Fn func(a, b float64) float64
}

// NewBinary builds a binary elementwise operator.
func NewBinary(name string, fn func(a, b float64) float64) *Binary {
	return &Binary{Meta: workflow.Meta{OpName: name, NIn: 2, Modes: mappingModes()}, Fn: fn}
}

// OutShape implements Operator.
func (b *Binary) OutShape(in []grid.Shape) (grid.Shape, error) {
	if len(in) != 2 || !in[0].Equal(in[1]) {
		return nil, fmt.Errorf("ops: %s requires two equal shapes, got %v", b.OpName, in)
	}
	return in[0].Clone(), nil
}

// Run implements Operator.
func (b *Binary) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	if err := requireSameShapes(ins); err != nil {
		return nil, err
	}
	out, err := array.New(b.OpName, ins[0].Shape())
	if err != nil {
		return nil, err
	}
	x, y, dst := ins[0].Data(), ins[1].Data(), out.Data()
	for i := range x {
		dst[i] = b.Fn(x[i], y[i])
	}
	if err := emitTracePairs(rc, b, out, ins); err != nil {
		return nil, err
	}
	return out, nil
}

// MapB implements BackwardMapper.
func (b *Binary) MapB(_ *workflow.MapCtx, out uint64, _ int, dst []uint64) []uint64 {
	return identityMap(out, dst)
}

// MapF implements ForwardMapper.
func (b *Binary) MapF(_ *workflow.MapCtx, in uint64, _ int, dst []uint64) []uint64 {
	return identityMap(in, dst)
}

// ---------------------------------------------------------------------
// Broadcast: combine an array with a 1x1 scalar array.
// ---------------------------------------------------------------------

// Broadcast combines input 0 cell-wise with the single cell of input 1
// (e.g., subtracting a previously computed mean). Output cell (c) depends
// on input-0 cell (c) and on the scalar cell; the scalar's forward lineage
// is the entire output.
type Broadcast struct {
	workflow.Meta
	Fn func(x, scalar float64) float64
}

// NewBroadcast builds a broadcast-combine operator.
func NewBroadcast(name string, fn func(x, scalar float64) float64) *Broadcast {
	return &Broadcast{Meta: workflow.Meta{OpName: name, NIn: 2, Modes: mappingModes()}, Fn: fn}
}

// OutShape implements Operator.
func (b *Broadcast) OutShape(in []grid.Shape) (grid.Shape, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("ops: %s requires 2 inputs", b.OpName)
	}
	if in[1].Size() != 1 {
		return nil, fmt.Errorf("ops: %s input 1 must be a scalar array, got %v", b.OpName, in[1])
	}
	return in[0].Clone(), nil
}

// Run implements Operator.
func (b *Broadcast) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	out, err := array.New(b.OpName, ins[0].Shape())
	if err != nil {
		return nil, err
	}
	scalar := ins[1].Get(0)
	x, dst := ins[0].Data(), out.Data()
	for i := range x {
		dst[i] = b.Fn(x[i], scalar)
	}
	if err := emitTracePairs(rc, b, out, ins); err != nil {
		return nil, err
	}
	return out, nil
}

// MapB implements BackwardMapper.
func (b *Broadcast) MapB(_ *workflow.MapCtx, out uint64, inputIdx int, dst []uint64) []uint64 {
	if inputIdx == 1 {
		return append(dst, 0)
	}
	return identityMap(out, dst)
}

// MapF implements ForwardMapper.
func (b *Broadcast) MapF(mc *workflow.MapCtx, in uint64, inputIdx int, dst []uint64) []uint64 {
	if inputIdx == 1 {
		for idx := uint64(0); idx < mc.OutSpace.Size(); idx++ {
			dst = append(dst, idx)
		}
		return dst
	}
	return identityMap(in, dst)
}

// EntireArraySafe: one-to-one operators map full arrays to full arrays in
// both directions.
func (u *Unary) EntireArraySafe(bool, int) bool { return true }

// EntireArraySafe: cell-wise combination preserves full arrays both ways.
func (b *Binary) EntireArraySafe(bool, int) bool { return true }

// EntireArraySafe: the scalar cell and every data cell appear in some
// pair, so full maps to full in both directions for both inputs.
func (b *Broadcast) EntireArraySafe(bool, int) bool { return true }
