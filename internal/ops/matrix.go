package ops

import (
	"fmt"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/workflow"
)

// ---------------------------------------------------------------------
// Transpose (2-D).
// ---------------------------------------------------------------------

// Transpose swaps the two dimensions of a matrix. The paper uses it as the
// canonical mapping operator: map_b((x,y)) = [(y,x)].
type Transpose struct {
	workflow.Meta
}

// NewTranspose builds a 2-D transpose operator.
func NewTranspose() *Transpose {
	return &Transpose{Meta: workflow.Meta{OpName: "transpose", NIn: 1, Modes: mappingModes()}}
}

// OutShape implements Operator.
func (t *Transpose) OutShape(in []grid.Shape) (grid.Shape, error) {
	if len(in) != 1 || len(in[0]) != 2 {
		return nil, fmt.Errorf("ops: transpose requires one 2-D input, got %v", in)
	}
	return grid.Shape{in[0][1], in[0][0]}, nil
}

// Run implements Operator.
func (t *Transpose) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	shape := ins[0].Shape()
	out, err := array.New(t.OpName, grid.Shape{shape[1], shape[0]})
	if err != nil {
		return nil, err
	}
	rows, cols := shape[0], shape[1]
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out.Set2(c, r, ins[0].Get2(r, c))
		}
	}
	if err := emitTracePairs(rc, t, out, ins); err != nil {
		return nil, err
	}
	return out, nil
}

// MapB implements BackwardMapper.
func (t *Transpose) MapB(mc *workflow.MapCtx, out uint64, _ int, dst []uint64) []uint64 {
	c := mc.OutCoord(out)
	return append(dst, mc.InSpaces[0].Ravel(grid.Coord{c[1], c[0]}))
}

// MapF implements ForwardMapper.
func (t *Transpose) MapF(mc *workflow.MapCtx, in uint64, _ int, dst []uint64) []uint64 {
	c := mc.InCoord(0, in)
	return append(dst, mc.OutSpace.Ravel(grid.Coord{c[1], c[0]}))
}

// ---------------------------------------------------------------------
// Matrix multiply.
// ---------------------------------------------------------------------

// MatMul multiplies an (m×k) matrix by a (k×n) matrix. Output cell (i,j)
// depends on row i of input 0 and column j of input 1 — the paper's
// example of backward lineage including empty cells (§IV).
type MatMul struct {
	workflow.Meta
}

// NewMatMul builds a matrix-multiply operator.
func NewMatMul() *MatMul {
	return &MatMul{Meta: workflow.Meta{OpName: "matmul", NIn: 2, Modes: mappingModes()}}
}

// OutShape implements Operator.
func (m *MatMul) OutShape(in []grid.Shape) (grid.Shape, error) {
	if len(in) != 2 || len(in[0]) != 2 || len(in[1]) != 2 {
		return nil, fmt.Errorf("ops: matmul requires two 2-D inputs")
	}
	if in[0][1] != in[1][0] {
		return nil, fmt.Errorf("ops: matmul inner dimensions %d and %d differ", in[0][1], in[1][0])
	}
	return grid.Shape{in[0][0], in[1][1]}, nil
}

// Run implements Operator.
func (m *MatMul) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	a, b := ins[0], ins[1]
	rows, inner, cols := a.Shape()[0], a.Shape()[1], b.Shape()[1]
	out, err := array.New(m.OpName, grid.Shape{rows, cols})
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			sum := 0.0
			for k := 0; k < inner; k++ {
				sum += a.Get2(i, k) * b.Get2(k, j)
			}
			out.Set2(i, j, sum)
		}
	}
	if err := emitTracePairs(rc, m, out, ins); err != nil {
		return nil, err
	}
	return out, nil
}

// MapB implements BackwardMapper: row i of A, column j of B.
func (m *MatMul) MapB(mc *workflow.MapCtx, out uint64, inputIdx int, dst []uint64) []uint64 {
	c := mc.OutCoord(out)
	i, j := c[0], c[1]
	if inputIdx == 0 {
		cols := mc.InSpaces[0].Shape()[1]
		for k := 0; k < cols; k++ {
			dst = append(dst, mc.InSpaces[0].Ravel(grid.Coord{i, k}))
		}
		return dst
	}
	rows := mc.InSpaces[1].Shape()[0]
	for k := 0; k < rows; k++ {
		dst = append(dst, mc.InSpaces[1].Ravel(grid.Coord{k, j}))
	}
	return dst
}

// MapF implements ForwardMapper: A(i,k) influences row i; B(k,j) influences
// column j.
func (m *MatMul) MapF(mc *workflow.MapCtx, in uint64, inputIdx int, dst []uint64) []uint64 {
	c := mc.InCoord(inputIdx, in)
	if inputIdx == 0 {
		i := c[0]
		cols := mc.OutSpace.Shape()[1]
		for j := 0; j < cols; j++ {
			dst = append(dst, mc.OutSpace.Ravel(grid.Coord{i, j}))
		}
		return dst
	}
	j := c[1]
	rows := mc.OutSpace.Shape()[0]
	for i := 0; i < rows; i++ {
		dst = append(dst, mc.OutSpace.Ravel(grid.Coord{i, j}))
	}
	return dst
}

// ---------------------------------------------------------------------
// 2-D convolution.
// ---------------------------------------------------------------------

// Convolve2D convolves a matrix with a (2r+1)² kernel using clamped
// borders. Output cell (c) depends on the input cells within Chebyshev
// radius r of (c) — the local-neighborhood pattern of the paper's image
// operators.
type Convolve2D struct {
	workflow.Meta
	Kernel [][]float64
	radius int
}

// NewConvolve2D builds a convolution operator; the kernel must be square
// with odd extent.
func NewConvolve2D(name string, kernel [][]float64) (*Convolve2D, error) {
	n := len(kernel)
	if n == 0 || n%2 == 0 {
		return nil, fmt.Errorf("ops: kernel must have odd extent, got %d", n)
	}
	for _, row := range kernel {
		if len(row) != n {
			return nil, fmt.Errorf("ops: kernel must be square")
		}
	}
	return &Convolve2D{
		Meta:   workflow.Meta{OpName: name, NIn: 1, Modes: mappingModes()},
		Kernel: kernel,
		radius: n / 2,
	}, nil
}

// Radius returns the kernel radius.
func (c *Convolve2D) Radius() int { return c.radius }

// OutShape implements Operator.
func (c *Convolve2D) OutShape(in []grid.Shape) (grid.Shape, error) {
	if len(in) != 1 || len(in[0]) != 2 {
		return nil, fmt.Errorf("ops: convolve requires one 2-D input")
	}
	return in[0].Clone(), nil
}

// Run implements Operator.
func (c *Convolve2D) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	in := ins[0]
	rows, cols := in.Shape()[0], in.Shape()[1]
	out, err := array.New(c.OpName, in.Shape())
	if err != nil {
		return nil, err
	}
	r := c.radius
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			sum := 0.0
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					yy, xx := clamp(y+dy, rows), clamp(x+dx, cols)
					sum += c.Kernel[dy+r][dx+r] * in.Get2(yy, xx)
				}
			}
			out.Set2(y, x, sum)
		}
	}
	if err := emitTracePairs(rc, c, out, ins); err != nil {
		return nil, err
	}
	return out, nil
}

func clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// MapB implements BackwardMapper: the clipped radius-r neighborhood.
func (c *Convolve2D) MapB(mc *workflow.MapCtx, out uint64, _ int, dst []uint64) []uint64 {
	return grid.Neighborhood(mc.InSpaces[0], mc.OutCoord(out), c.radius, dst)
}

// MapF implements ForwardMapper: by symmetry, the same neighborhood.
func (c *Convolve2D) MapF(mc *workflow.MapCtx, in uint64, _ int, dst []uint64) []uint64 {
	return grid.Neighborhood(mc.OutSpace, mc.InCoord(0, in), c.radius, dst)
}

// EntireArraySafe: transposition is a bijection on cells.
func (t *Transpose) EntireArraySafe(bool, int) bool { return true }

// EntireArraySafe: every A row / B column touches every output row/column.
func (m *MatMul) EntireArraySafe(bool, int) bool { return true }

// EntireArraySafe: every cell participates in some window both ways.
func (c *Convolve2D) EntireArraySafe(bool, int) bool { return true }
