package ops

import (
	"math"
	"testing"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/lineage"
	"subzero/internal/workflow"
)

// opCase describes one operator test fixture.
type opCase struct {
	name     string
	op       workflow.Operator
	inShapes []grid.Shape
}

func mustConv(t *testing.T) *Convolve2D {
	t.Helper()
	k := [][]float64{{0, 0.2, 0}, {0.2, 0.2, 0.2}, {0, 0.2, 0}}
	c, err := NewConvolve2D("smooth", k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func allOpCases(t *testing.T) []opCase {
	t.Helper()
	slice, err := NewSliceRect("crop", grid.Rect{Lo: grid.Coord{1, 2}, Hi: grid.Coord{4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewSubsample(2)
	if err != nil {
		t.Fatal(err)
	}
	return []opCase{
		{"unary", NewUnary("double", func(x float64) float64 { return 2 * x }), []grid.Shape{{5, 6}}},
		{"binary", NewBinary("add", func(a, b float64) float64 { return a + b }), []grid.Shape{{5, 6}, {5, 6}}},
		{"broadcast", NewBroadcast("sub-scalar", func(x, s float64) float64 { return x - s }), []grid.Shape{{4, 5}, {1, 1}}},
		{"transpose", NewTranspose(), []grid.Shape{{4, 7}}},
		{"matmul", NewMatMul(), []grid.Shape{{3, 4}, {4, 5}}},
		{"conv", mustConv(t), []grid.Shape{{6, 7}}},
		{"mean-all", NewMeanAll(), []grid.Shape{{4, 5}}},
		{"std-all", NewStdAll(), []grid.Shape{{4, 5}}},
		{"max-all", NewMaxAll(), []grid.Shape{{3, 3}}},
		{"col-mean", NewColMean(), []grid.Shape{{6, 4}}},
		{"col-center", NewColCenter("col-sub", func(x, s float64) float64 { return x - s }), []grid.Shape{{6, 4}, {1, 4}}},
		{"slice", slice, []grid.Shape{{7, 8}}},
		{"subsample", sub, []grid.Shape{{7, 9}}},
		{"concat0", NewConcat(0), []grid.Shape{{3, 4}, {2, 4}}},
		{"concat1", NewConcat(1), []grid.Shape{{3, 4}, {3, 2}}},
	}
}

func buildInputs(t *testing.T, shapes []grid.Shape) []*array.Array {
	t.Helper()
	ins := make([]*array.Array, len(shapes))
	seed := 1.0
	for i, s := range shapes {
		a, err := array.New("in", s)
		if err != nil {
			t.Fatal(err)
		}
		data := a.Data()
		for j := range data {
			data[j] = seed
			seed = math.Mod(seed*1.7+0.3, 100)
		}
		ins[i] = a
	}
	return ins
}

// TestMappingDuality exhaustively checks that map_f and map_b are duals:
// in ∈ map_b(out, i)  ⇔  out ∈ map_f(in, i), for every operator, cell,
// and input.
func TestMappingDuality(t *testing.T) {
	for _, tc := range allOpCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			outShape, err := tc.op.OutShape(tc.inShapes)
			if err != nil {
				t.Fatal(err)
			}
			outSpace := grid.NewSpace(outShape)
			inSpaces := make([]*grid.Space, len(tc.inShapes))
			for i, s := range tc.inShapes {
				inSpaces[i] = grid.NewSpace(s)
			}
			mc := workflow.NewMapCtx(outSpace, inSpaces)
			bm := tc.op.(workflow.BackwardMapper)
			fm := tc.op.(workflow.ForwardMapper)

			for i := range tc.inShapes {
				// backward[out] = set of ins; forward[in] = set of outs.
				backward := make(map[uint64]map[uint64]bool)
				for out := uint64(0); out < outSpace.Size(); out++ {
					set := map[uint64]bool{}
					for _, in := range bm.MapB(mc, out, i, nil) {
						if in >= inSpaces[i].Size() {
							t.Fatalf("MapB(%d, %d) out of range: %d", out, i, in)
						}
						set[in] = true
					}
					backward[out] = set
				}
				for in := uint64(0); in < inSpaces[i].Size(); in++ {
					fwd := map[uint64]bool{}
					for _, out := range fm.MapF(mc, in, i, nil) {
						if out >= outSpace.Size() {
							t.Fatalf("MapF(%d, %d) out of range: %d", in, i, out)
						}
						fwd[out] = true
					}
					for out := uint64(0); out < outSpace.Size(); out++ {
						if backward[out][in] != fwd[out] {
							t.Fatalf("duality broken: out=%d in=%d input=%d: MapB says %v, MapF says %v",
								out, in, i, backward[out][in], fwd[out])
						}
					}
				}
			}
		})
	}
}

// TestTracePairsMatchMapping verifies that running each operator in
// tracing mode (cur_modes = Full) emits region pairs whose relation equals
// the mapping functions' relation — black-box re-execution must agree with
// Map lineage.
func TestTracePairsMatchMapping(t *testing.T) {
	for _, tc := range allOpCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			ins := buildInputs(t, tc.inShapes)
			outShape, err := tc.op.OutShape(tc.inShapes)
			if err != nil {
				t.Fatal(err)
			}
			outSpace := grid.NewSpace(outShape)
			inSpaces := spacesOf(ins)
			mc := workflow.NewMapCtx(outSpace, inSpaces)
			bm := tc.op.(workflow.BackwardMapper)

			traced := make([]map[uint64]map[uint64]bool, len(ins))
			for i := range traced {
				traced[i] = make(map[uint64]map[uint64]bool)
			}
			sink := func(rp *lineage.RegionPair) error {
				for _, out := range rp.Out {
					for i, set := range rp.Ins {
						if traced[i][out] == nil {
							traced[i][out] = map[uint64]bool{}
						}
						for _, in := range set {
							traced[i][out][in] = true
						}
					}
				}
				return nil
			}
			w := lineage.NewWriter(outSpace, inSpaces, nil, nil, sink)
			rc := workflow.NewRunCtx(lineage.NewModeSet(lineage.Full), w)
			if _, err := tc.op.Run(rc, ins); err != nil {
				t.Fatal(err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			for i := range ins {
				for out := uint64(0); out < outSpace.Size(); out++ {
					want := map[uint64]bool{}
					for _, in := range bm.MapB(mc, out, i, nil) {
						want[in] = true
					}
					got := traced[i][out]
					if len(got) != len(want) {
						t.Fatalf("out=%d input=%d: traced %d cells, mapping says %d", out, i, len(got), len(want))
					}
					for in := range want {
						if !got[in] {
							t.Fatalf("out=%d input=%d: traced pairs missing input cell %d", out, i, in)
						}
					}
				}
			}
		})
	}
}

// TestRunValues spot-checks operator semantics.
func TestRunValues(t *testing.T) {
	rc := workflow.NewRunCtx(lineage.NewModeSet(lineage.Blackbox), nil)

	a := array.MustNew("a", grid.Shape{2, 2})
	copy(a.Data(), []float64{1, 2, 3, 4})
	b := array.MustNew("b", grid.Shape{2, 2})
	copy(b.Data(), []float64{10, 20, 30, 40})

	sum, err := NewBinary("add", func(x, y float64) float64 { return x + y }).Run(rc, []*array.Array{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Get2(1, 1) != 44 || sum.Get2(0, 0) != 11 {
		t.Fatalf("add wrong: %v", sum.Data())
	}

	tr, err := NewTranspose().Run(rc, []*array.Array{a})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Get2(0, 1) != 3 || tr.Get2(1, 0) != 2 {
		t.Fatal("transpose wrong")
	}

	mm, err := NewMatMul().Run(rc, []*array.Array{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// [1 2;3 4][10 20;30 40] = [70 100; 150 220]
	if mm.Get2(0, 0) != 70 || mm.Get2(1, 1) != 220 {
		t.Fatalf("matmul wrong: %v", mm.Data())
	}

	mean, err := NewMeanAll().Run(rc, []*array.Array{a})
	if err != nil {
		t.Fatal(err)
	}
	if mean.Get(0) != 2.5 {
		t.Fatalf("mean=%f", mean.Get(0))
	}

	mx, err := NewMaxAll().Run(rc, []*array.Array{a})
	if err != nil || mx.Get(0) != 4 {
		t.Fatalf("max=%v err=%v", mx.Get(0), err)
	}

	std, err := NewStdAll().Run(rc, []*array.Array{a})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(std.Get(0)-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std=%f", std.Get(0))
	}

	cm, err := NewColMean().Run(rc, []*array.Array{a})
	if err != nil || cm.Get2(0, 0) != 2 || cm.Get2(0, 1) != 3 {
		t.Fatalf("col-mean wrong: %v", cm.Data())
	}
}

func TestSliceAndSubsampleValues(t *testing.T) {
	rc := workflow.NewRunCtx(lineage.NewModeSet(lineage.Blackbox), nil)
	a := array.MustNew("a", grid.Shape{4, 4})
	for i := range a.Data() {
		a.Data()[i] = float64(i)
	}
	sl, err := NewSliceRect("crop", grid.Rect{Lo: grid.Coord{1, 1}, Hi: grid.Coord{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sl.Run(rc, []*array.Array{a})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape().Equal(grid.Shape{2, 3}) || out.Get2(0, 0) != 5 || out.Get2(1, 2) != 11 {
		t.Fatalf("slice wrong: %v %v", out.Shape(), out.Data())
	}

	ss, err := NewSubsample(2)
	if err != nil {
		t.Fatal(err)
	}
	out, err = ss.Run(rc, []*array.Array{a})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape().Equal(grid.Shape{2, 2}) || out.Get2(1, 1) != 10 {
		t.Fatalf("subsample wrong: %v %v", out.Shape(), out.Data())
	}

	cc := NewConcat(1)
	out, err = cc.Run(rc, []*array.Array{a, a})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape().Equal(grid.Shape{4, 8}) || out.Get2(0, 4) != 0 || out.Get2(0, 3) != 3 {
		t.Fatalf("concat wrong: %v", out.Shape())
	}
}

func TestConvolutionSemantics(t *testing.T) {
	rc := workflow.NewRunCtx(lineage.NewModeSet(lineage.Blackbox), nil)
	// Identity kernel: output equals input, including at borders.
	ident, err := NewConvolve2D("ident", [][]float64{{0, 0, 0}, {0, 1, 0}, {0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	a := array.MustNew("a", grid.Shape{3, 3})
	for i := range a.Data() {
		a.Data()[i] = float64(i * i)
	}
	out, err := ident.Run(rc, []*array.Array{a})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data() {
		if out.Data()[i] != a.Data()[i] {
			t.Fatalf("identity convolution changed cell %d", i)
		}
	}
	if _, err := NewConvolve2D("bad", [][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Fatal("even kernel accepted")
	}
	if _, err := NewConvolve2D("bad", [][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("non-square kernel accepted")
	}
}

func TestOutShapeValidation(t *testing.T) {
	if _, err := NewMatMul().OutShape([]grid.Shape{{2, 3}, {4, 5}}); err == nil {
		t.Fatal("mismatched matmul accepted")
	}
	if _, err := NewTranspose().OutShape([]grid.Shape{{2, 3, 4}}); err == nil {
		t.Fatal("3-D transpose accepted")
	}
	bin := NewBinary("add", func(a, b float64) float64 { return a + b })
	if _, err := bin.OutShape([]grid.Shape{{2, 2}, {3, 3}}); err == nil {
		t.Fatal("mismatched binary accepted")
	}
	bc := NewBroadcast("s", func(x, s float64) float64 { return x })
	if _, err := bc.OutShape([]grid.Shape{{2, 2}, {2, 2}}); err == nil {
		t.Fatal("non-scalar broadcast accepted")
	}
	cc := NewColCenter("c", func(x, s float64) float64 { return x })
	if _, err := cc.OutShape([]grid.Shape{{4, 3}, {1, 2}}); err == nil {
		t.Fatal("mismatched col-center accepted")
	}
	if _, err := NewConcat(2).OutShape([]grid.Shape{{2, 2}, {2, 2}}); err == nil {
		t.Fatal("concat axis out of range accepted")
	}
	if _, err := NewSubsample(0); err == nil {
		t.Fatal("zero stride accepted")
	}
}

func TestAllToAllAnnotations(t *testing.T) {
	if !workflow.IsAllToAll(NewMeanAll()) {
		t.Fatal("reduce must be annotated all-to-all")
	}
	for _, tc := range allOpCases(t) {
		if tc.name == "mean-all" || tc.name == "std-all" || tc.name == "max-all" {
			continue
		}
		if workflow.IsAllToAll(tc.op) {
			t.Fatalf("%s wrongly annotated all-to-all", tc.name)
		}
	}
}

func TestSupportedModes(t *testing.T) {
	for _, tc := range allOpCases(t) {
		if !workflow.Supports(tc.op, lineage.Map) || !workflow.Supports(tc.op, lineage.Full) {
			t.Fatalf("%s must support Map and Full", tc.name)
		}
		if !workflow.Supports(tc.op, lineage.Blackbox) {
			t.Fatalf("%s must implicitly support Blackbox", tc.name)
		}
		if workflow.Supports(tc.op, lineage.Pay) {
			t.Fatalf("%s should not claim Pay support", tc.name)
		}
	}
}
