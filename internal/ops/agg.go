package ops

import (
	"fmt"
	"math"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/workflow"
)

// ---------------------------------------------------------------------
// Whole-array aggregates (all-to-all operators).
// ---------------------------------------------------------------------

// Reduce collapses the whole input to a 1x1 array (mean, sum, max, std).
// Every output depends on every input, so it carries the entire-array
// annotation (paper §VI-C) — the FQ0/FQ0Slow experiment toggles whether
// the query executor exploits it.
type Reduce struct {
	workflow.Meta
	Fn func(data []float64) float64
}

// NewReduce builds a whole-array aggregate.
func NewReduce(name string, fn func([]float64) float64) *Reduce {
	return &Reduce{Meta: workflow.Meta{OpName: name, NIn: 1, Modes: mappingModes()}, Fn: fn}
}

// NewMeanAll returns a mean aggregate (the astronomy benchmark's
// mean-brightness operator).
func NewMeanAll() *Reduce {
	return NewReduce("mean-all", func(data []float64) float64 {
		sum := 0.0
		for _, v := range data {
			sum += v
		}
		return sum / float64(len(data))
	})
}

// NewStdAll returns a standard-deviation aggregate.
func NewStdAll() *Reduce {
	return NewReduce("std-all", func(data []float64) float64 {
		mean, n := 0.0, float64(len(data))
		for _, v := range data {
			mean += v
		}
		mean /= n
		ss := 0.0
		for _, v := range data {
			ss += (v - mean) * (v - mean)
		}
		return math.Sqrt(ss / n)
	})
}

// NewMaxAll returns a max aggregate.
func NewMaxAll() *Reduce {
	return NewReduce("max-all", func(data []float64) float64 {
		best := math.Inf(-1)
		for _, v := range data {
			if v > best {
				best = v
			}
		}
		return best
	})
}

// OutShape implements Operator.
func (r *Reduce) OutShape(in []grid.Shape) (grid.Shape, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("ops: %s requires 1 input", r.OpName)
	}
	return grid.Shape{1, 1}, nil
}

// Run implements Operator.
func (r *Reduce) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	out, err := array.New(r.OpName, grid.Shape{1, 1})
	if err != nil {
		return nil, err
	}
	out.Set(0, r.Fn(ins[0].Data()))
	if err := emitTracePairs(rc, r, out, ins); err != nil {
		return nil, err
	}
	return out, nil
}

// MapB implements BackwardMapper: the single output depends on everything.
func (r *Reduce) MapB(mc *workflow.MapCtx, _ uint64, _ int, dst []uint64) []uint64 {
	for idx := uint64(0); idx < mc.InSpaces[0].Size(); idx++ {
		dst = append(dst, idx)
	}
	return dst
}

// MapF implements ForwardMapper: every input feeds the single output.
func (r *Reduce) MapF(_ *workflow.MapCtx, _ uint64, _ int, dst []uint64) []uint64 {
	return append(dst, 0)
}

// AllToAll implements the entire-array annotation.
func (r *Reduce) AllToAll() bool { return true }

// ---------------------------------------------------------------------
// Per-column aggregates and normalization (2-D).
// ---------------------------------------------------------------------

// ColReduce collapses each column of an (m×n) matrix to one value,
// producing (1×n). Output column j depends on exactly input column j — a
// mapping operator with column-level locality, used by the genomics
// workflow's per-feature statistics.
type ColReduce struct {
	workflow.Meta
	Fn func(col []float64) float64
}

// NewColReduce builds a per-column aggregate.
func NewColReduce(name string, fn func([]float64) float64) *ColReduce {
	return &ColReduce{Meta: workflow.Meta{OpName: name, NIn: 1, Modes: mappingModes()}, Fn: fn}
}

// NewColMean returns a per-column mean.
func NewColMean() *ColReduce {
	return NewColReduce("col-mean", func(col []float64) float64 {
		sum := 0.0
		for _, v := range col {
			sum += v
		}
		return sum / float64(len(col))
	})
}

// OutShape implements Operator.
func (c *ColReduce) OutShape(in []grid.Shape) (grid.Shape, error) {
	if len(in) != 1 || len(in[0]) != 2 {
		return nil, fmt.Errorf("ops: %s requires one 2-D input", c.OpName)
	}
	return grid.Shape{1, in[0][1]}, nil
}

// Run implements Operator.
func (c *ColReduce) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	rows, cols := ins[0].Shape()[0], ins[0].Shape()[1]
	out, err := array.New(c.OpName, grid.Shape{1, cols})
	if err != nil {
		return nil, err
	}
	col := make([]float64, rows)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			col[i] = ins[0].Get2(i, j)
		}
		out.Set2(0, j, c.Fn(col))
	}
	if err := emitTracePairs(rc, c, out, ins); err != nil {
		return nil, err
	}
	return out, nil
}

// MapB implements BackwardMapper: output (0,j) depends on column j.
func (c *ColReduce) MapB(mc *workflow.MapCtx, out uint64, _ int, dst []uint64) []uint64 {
	j := mc.OutCoord(out)[1]
	rows := mc.InSpaces[0].Shape()[0]
	for i := 0; i < rows; i++ {
		dst = append(dst, mc.InSpaces[0].Ravel(grid.Coord{i, j}))
	}
	return dst
}

// MapF implements ForwardMapper: input (i,j) feeds output (0,j).
func (c *ColReduce) MapF(mc *workflow.MapCtx, in uint64, _ int, dst []uint64) []uint64 {
	j := mc.InCoord(0, in)[1]
	return append(dst, mc.OutSpace.Ravel(grid.Coord{0, j}))
}

// ColCenter subtracts a per-column statistic (input 1, shaped 1×n) from
// every cell of input 0 (m×n): out(i,j) = in0(i,j) - in1(0,j). Used to
// z-score feature matrices.
type ColCenter struct {
	workflow.Meta
	Fn func(x, stat float64) float64
}

// NewColCenter builds a column-broadcast combine.
func NewColCenter(name string, fn func(x, stat float64) float64) *ColCenter {
	return &ColCenter{Meta: workflow.Meta{OpName: name, NIn: 2, Modes: mappingModes()}, Fn: fn}
}

// OutShape implements Operator.
func (c *ColCenter) OutShape(in []grid.Shape) (grid.Shape, error) {
	if len(in) != 2 || len(in[0]) != 2 || len(in[1]) != 2 {
		return nil, fmt.Errorf("ops: %s requires two 2-D inputs", c.OpName)
	}
	if in[1][0] != 1 || in[1][1] != in[0][1] {
		return nil, fmt.Errorf("ops: %s input 1 must be 1x%d, got %v", c.OpName, in[0][1], in[1])
	}
	return in[0].Clone(), nil
}

// Run implements Operator.
func (c *ColCenter) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	rows, cols := ins[0].Shape()[0], ins[0].Shape()[1]
	out, err := array.New(c.OpName, ins[0].Shape())
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			out.Set2(i, j, c.Fn(ins[0].Get2(i, j), ins[1].Get2(0, j)))
		}
	}
	if err := emitTracePairs(rc, c, out, ins); err != nil {
		return nil, err
	}
	return out, nil
}

// MapB implements BackwardMapper.
func (c *ColCenter) MapB(mc *workflow.MapCtx, out uint64, inputIdx int, dst []uint64) []uint64 {
	if inputIdx == 0 {
		return identityMap(out, dst)
	}
	j := mc.OutCoord(out)[1]
	return append(dst, mc.InSpaces[1].Ravel(grid.Coord{0, j}))
}

// MapF implements ForwardMapper.
func (c *ColCenter) MapF(mc *workflow.MapCtx, in uint64, inputIdx int, dst []uint64) []uint64 {
	if inputIdx == 0 {
		return identityMap(in, dst)
	}
	j := mc.InCoord(1, in)[1]
	rows := mc.OutSpace.Shape()[0]
	for i := 0; i < rows; i++ {
		dst = append(dst, mc.OutSpace.Ravel(grid.Coord{i, j}))
	}
	return dst
}

// EntireArraySafe: the aggregate is all-to-all, trivially full-preserving.
func (r *Reduce) EntireArraySafe(bool, int) bool { return true }

// EntireArraySafe: every column maps onto its aggregate and back.
func (c *ColReduce) EntireArraySafe(bool, int) bool { return true }

// EntireArraySafe: cell-wise with per-column statistics; full either way.
func (c *ColCenter) EntireArraySafe(bool, int) bool { return true }
