package ops

import (
	"fmt"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/workflow"
)

// ---------------------------------------------------------------------
// Slice: extract a rectangular window.
// ---------------------------------------------------------------------

// SliceRect copies the cells inside a rectangle into a new array whose
// origin is the rectangle's low corner. Output (c) depends on input
// (c + Lo) — a pure coordinate shift.
type SliceRect struct {
	workflow.Meta
	Window grid.Rect
}

// NewSliceRect builds a slicing operator for the given window.
func NewSliceRect(name string, window grid.Rect) (*SliceRect, error) {
	if err := window.Validate(); err != nil {
		return nil, err
	}
	return &SliceRect{
		Meta:   workflow.Meta{OpName: name, NIn: 1, Modes: mappingModes()},
		Window: window,
	}, nil
}

// OutShape implements Operator.
func (s *SliceRect) OutShape(in []grid.Shape) (grid.Shape, error) {
	if len(in) != 1 || len(in[0]) != s.Window.Rank() {
		return nil, fmt.Errorf("ops: %s window rank %d does not match input %v", s.OpName, s.Window.Rank(), in)
	}
	if !in[0].Contains(s.Window.Lo) || !in[0].Contains(s.Window.Hi) {
		return nil, fmt.Errorf("ops: %s window %v outside input shape %v", s.OpName, s.Window, in[0])
	}
	shape := make(grid.Shape, s.Window.Rank())
	for d := range shape {
		shape[d] = s.Window.Hi[d] - s.Window.Lo[d] + 1
	}
	return shape, nil
}

// Run implements Operator.
func (s *SliceRect) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	shape, err := s.OutShape([]grid.Shape{ins[0].Shape()})
	if err != nil {
		return nil, err
	}
	out, err := array.New(s.OpName, shape)
	if err != nil {
		return nil, err
	}
	outSp := out.Space()
	coord := make(grid.Coord, len(shape))
	src := make(grid.Coord, len(shape))
	for idx := uint64(0); idx < outSp.Size(); idx++ {
		outSp.UnravelInto(idx, coord)
		for d := range coord {
			src[d] = coord[d] + s.Window.Lo[d]
		}
		out.Set(idx, ins[0].GetAt(src))
	}
	if err := emitTracePairs(rc, s, out, ins); err != nil {
		return nil, err
	}
	return out, nil
}

// MapB implements BackwardMapper.
func (s *SliceRect) MapB(mc *workflow.MapCtx, out uint64, _ int, dst []uint64) []uint64 {
	c := mc.OutCoord(out)
	src := make(grid.Coord, len(c))
	for d := range c {
		src[d] = c[d] + s.Window.Lo[d]
	}
	return append(dst, mc.InSpaces[0].Ravel(src))
}

// MapF implements ForwardMapper: cells outside the window have no
// descendants.
func (s *SliceRect) MapF(mc *workflow.MapCtx, in uint64, _ int, dst []uint64) []uint64 {
	c := mc.InCoord(0, in)
	if !s.Window.Contains(c) {
		return dst
	}
	shifted := make(grid.Coord, len(c))
	for d := range c {
		shifted[d] = c[d] - s.Window.Lo[d]
	}
	return append(dst, mc.OutSpace.Ravel(shifted))
}

// ---------------------------------------------------------------------
// Subsample: keep every k-th cell along each dimension.
// ---------------------------------------------------------------------

// Subsample keeps cells whose coordinates are multiples of the stride.
// Output (c) depends on input (c*stride).
type Subsample struct {
	workflow.Meta
	Stride int
}

// NewSubsample builds a stride-k subsampler.
func NewSubsample(stride int) (*Subsample, error) {
	if stride <= 0 {
		return nil, fmt.Errorf("ops: subsample stride must be positive, got %d", stride)
	}
	return &Subsample{
		Meta:   workflow.Meta{OpName: fmt.Sprintf("subsample%d", stride), NIn: 1, Modes: mappingModes()},
		Stride: stride,
	}, nil
}

// OutShape implements Operator.
func (s *Subsample) OutShape(in []grid.Shape) (grid.Shape, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("ops: subsample requires 1 input")
	}
	shape := make(grid.Shape, len(in[0]))
	for d, n := range in[0] {
		shape[d] = (n + s.Stride - 1) / s.Stride
	}
	return shape, nil
}

// Run implements Operator.
func (s *Subsample) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	shape, err := s.OutShape([]grid.Shape{ins[0].Shape()})
	if err != nil {
		return nil, err
	}
	out, err := array.New(s.OpName, shape)
	if err != nil {
		return nil, err
	}
	outSp := out.Space()
	coord := make(grid.Coord, len(shape))
	src := make(grid.Coord, len(shape))
	for idx := uint64(0); idx < outSp.Size(); idx++ {
		outSp.UnravelInto(idx, coord)
		for d := range coord {
			src[d] = coord[d] * s.Stride
		}
		out.Set(idx, ins[0].GetAt(src))
	}
	if err := emitTracePairs(rc, s, out, ins); err != nil {
		return nil, err
	}
	return out, nil
}

// MapB implements BackwardMapper.
func (s *Subsample) MapB(mc *workflow.MapCtx, out uint64, _ int, dst []uint64) []uint64 {
	c := mc.OutCoord(out)
	src := make(grid.Coord, len(c))
	for d := range c {
		src[d] = c[d] * s.Stride
	}
	return append(dst, mc.InSpaces[0].Ravel(src))
}

// MapF implements ForwardMapper: only stride-aligned cells survive.
func (s *Subsample) MapF(mc *workflow.MapCtx, in uint64, _ int, dst []uint64) []uint64 {
	c := mc.InCoord(0, in)
	shifted := make(grid.Coord, len(c))
	for d := range c {
		if c[d]%s.Stride != 0 {
			return dst
		}
		shifted[d] = c[d] / s.Stride
	}
	return append(dst, mc.OutSpace.Ravel(shifted))
}

// ---------------------------------------------------------------------
// Concat: stack two arrays along a dimension.
// ---------------------------------------------------------------------

// Concat concatenates input 1 after input 0 along the given axis — the
// paper's §VI-C example of an operator where the entire-array optimization
// would be wrong (each input's forward lineage is only part of the
// output), so it deliberately has no AllToAll annotation.
type Concat struct {
	workflow.Meta
	Axis int
}

// NewConcat builds a concatenation along axis.
func NewConcat(axis int) *Concat {
	return &Concat{
		Meta: workflow.Meta{OpName: fmt.Sprintf("concat%d", axis), NIn: 2, Modes: mappingModes()},
		Axis: axis,
	}
}

// OutShape implements Operator.
func (c *Concat) OutShape(in []grid.Shape) (grid.Shape, error) {
	if len(in) != 2 || len(in[0]) != len(in[1]) {
		return nil, fmt.Errorf("ops: concat requires two same-rank inputs")
	}
	if c.Axis < 0 || c.Axis >= len(in[0]) {
		return nil, fmt.Errorf("ops: concat axis %d out of range for rank %d", c.Axis, len(in[0]))
	}
	shape := in[0].Clone()
	for d := range shape {
		if d == c.Axis {
			shape[d] = in[0][d] + in[1][d]
		} else if in[0][d] != in[1][d] {
			return nil, fmt.Errorf("ops: concat inputs differ in dimension %d", d)
		}
	}
	return shape, nil
}

// Run implements Operator.
func (c *Concat) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	shape, err := c.OutShape([]grid.Shape{ins[0].Shape(), ins[1].Shape()})
	if err != nil {
		return nil, err
	}
	out, err := array.New(c.OpName, shape)
	if err != nil {
		return nil, err
	}
	outSp := out.Space()
	coord := make(grid.Coord, len(shape))
	src := make(grid.Coord, len(shape))
	split := ins[0].Shape()[c.Axis]
	for idx := uint64(0); idx < outSp.Size(); idx++ {
		outSp.UnravelInto(idx, coord)
		copy(src, coord)
		if coord[c.Axis] < split {
			out.Set(idx, ins[0].GetAt(src))
		} else {
			src[c.Axis] -= split
			out.Set(idx, ins[1].GetAt(src))
		}
	}
	if err := emitTracePairs(rc, c, out, ins); err != nil {
		return nil, err
	}
	return out, nil
}

// MapB implements BackwardMapper.
func (c *Concat) MapB(mc *workflow.MapCtx, out uint64, inputIdx int, dst []uint64) []uint64 {
	coord := mc.OutCoord(out)
	split := mc.InSpaces[0].Shape()[c.Axis]
	src := make(grid.Coord, len(coord))
	copy(src, coord)
	if coord[c.Axis] < split {
		if inputIdx != 0 {
			return dst
		}
		return append(dst, mc.InSpaces[0].Ravel(src))
	}
	if inputIdx != 1 {
		return dst
	}
	src[c.Axis] -= split
	return append(dst, mc.InSpaces[1].Ravel(src))
}

// MapF implements ForwardMapper.
func (c *Concat) MapF(mc *workflow.MapCtx, in uint64, inputIdx int, dst []uint64) []uint64 {
	coord := mc.InCoord(inputIdx, in)
	shifted := make(grid.Coord, len(coord))
	copy(shifted, coord)
	if inputIdx == 1 {
		shifted[c.Axis] += mc.InSpaces[0].Shape()[c.Axis]
	}
	return append(dst, mc.OutSpace.Ravel(shifted))
}

// EntireArraySafe: a full input covers the whole window (forward), but a
// full output only reaches the window's cells, not the whole input.
func (s *SliceRect) EntireArraySafe(forward bool, _ int) bool { return forward }

// EntireArraySafe: stride-aligned cells cover every output (forward), but
// backward only reaches the stride-aligned input cells.
func (s *Subsample) EntireArraySafe(forward bool, _ int) bool { return forward }

// EntireArraySafe: the paper's counterexample (§VI-C) — one input's
// forward lineage is only part of the output, so forward is unsafe; a
// full output does cover each input entirely.
func (c *Concat) EntireArraySafe(forward bool, _ int) bool { return !forward }
