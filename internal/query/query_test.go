package query_test

import (
	"context"
	"fmt"
	"testing"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/kvstore"
	"subzero/internal/lineage"
	"subzero/internal/ops"
	"subzero/internal/query"
	"subzero/internal/workflow"
)

// maskUDF is a CRD-like test operator: output cell = 1 if input > 0.5
// ("bright"), depending on its 3x3 neighborhood; otherwise 0, depending on
// the corresponding input cell only. It supports Full, Pay, and Comp
// lineage like the paper's cosmic-ray detector (§V).
type maskUDF struct {
	workflow.Meta
}

func newMaskUDF() *maskUDF {
	return &maskUDF{Meta: workflow.Meta{
		OpName: "mask",
		NIn:    1,
		Modes:  []lineage.Mode{lineage.Full, lineage.Pay, lineage.Comp},
	}}
}

func (m *maskUDF) OutShape(in []grid.Shape) (grid.Shape, error) { return workflow.SameShapeOut(in) }

func (m *maskUDF) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	in := ins[0]
	out, err := array.New(m.OpName, in.Shape())
	if err != nil {
		return nil, err
	}
	sp := in.Space()
	coord := make(grid.Coord, sp.Rank())
	var neigh []uint64
	outBuf := make([]uint64, 1)
	for idx := uint64(0); idx < sp.Size(); idx++ {
		bright := in.Get(idx) > 0.5
		if bright {
			out.Set(idx, 1)
		}
		outBuf[0] = idx
		if rc.NeedsPairs() {
			if bright {
				sp.UnravelInto(idx, coord)
				neigh = grid.Neighborhood(sp, coord, 1, neigh[:0])
				if err := rc.LWrite(outBuf, neigh); err != nil {
					return nil, err
				}
			} else if err := rc.LWrite(outBuf, outBuf); err != nil {
				return nil, err
			}
		}
		if rc.Modes().Has(lineage.Pay) {
			radius := byte(0)
			if bright {
				radius = 1
			}
			if err := rc.LWritePayload(outBuf, []byte{radius}); err != nil {
				return nil, err
			}
		}
		if rc.Modes().Has(lineage.Comp) && bright {
			if err := rc.LWritePayload(outBuf, []byte{1}); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// MapP: the payload byte is the neighborhood radius.
func (m *maskUDF) MapP(mc *workflow.MapCtx, out uint64, payload []byte, _ int, dst []uint64) []uint64 {
	return grid.Neighborhood(mc.InSpaces[0], mc.OutCoord(out), int(payload[0]), dst)
}

// MapB is the composite default: identity.
func (m *maskUDF) MapB(_ *workflow.MapCtx, out uint64, _ int, dst []uint64) []uint64 {
	return append(dst, out)
}

// MapF is the composite default: identity.
func (m *maskUDF) MapF(_ *workflow.MapCtx, in uint64, _ int, dst []uint64) []uint64 {
	return append(dst, in)
}

// buildRun executes the test workflow (scale -> mask -> conv -> agg) under
// the given plan.
func buildRun(t *testing.T, plan workflow.Plan) (*workflow.Executor, *workflow.Run) {
	t.Helper()
	mgr, err := kvstore.NewManager("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	exec := workflow.NewExecutor(array.NewVersions(), mgr, lineage.NewCollector())

	spec := workflow.NewSpec("qtest")
	spec.Add("scale", ops.NewUnary("scale", func(x float64) float64 { return x * 2 }), workflow.FromExternal("src"))
	spec.Add("mask", newMaskUDF(), workflow.FromNode("scale"))
	conv, err := ops.NewConvolve2D("conv", [][]float64{{0, 1, 0}, {1, 1, 1}, {0, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	spec.Add("conv", conv, workflow.FromNode("mask"))
	spec.Add("agg", ops.NewMeanAll(), workflow.FromNode("conv"))

	src := array.MustNew("src", grid.Shape{10, 10})
	// Deterministic sparse "bright" cells.
	for i := range src.Data() {
		if i%17 == 0 || i == 55 {
			src.Data()[i] = 1.0
		} else {
			src.Data()[i] = 0.1
		}
	}
	run, err := exec.Execute(context.Background(), spec, plan, map[string]*array.Array{"src": src})
	if err != nil {
		t.Fatal(err)
	}
	return exec, run
}

func mapPlan(udf []lineage.Strategy) workflow.Plan {
	return workflow.Plan{
		"scale": {lineage.StratMap},
		"conv":  {lineage.StratMap},
		"agg":   {lineage.StratMap},
		"mask":  udf,
	}
}

var testQueries = []query.Query{
	{Direction: query.Backward, Cells: []uint64{0}, Path: []query.Step{{Node: "conv"}, {Node: "mask"}, {Node: "scale"}}},
	{Direction: query.Backward, Cells: []uint64{34, 35, 36}, Path: []query.Step{{Node: "conv"}, {Node: "mask"}, {Node: "scale"}}},
	{Direction: query.Backward, Cells: []uint64{55}, Path: []query.Step{{Node: "mask"}, {Node: "scale"}}},
	{Direction: query.Forward, Cells: []uint64{0, 1}, Path: []query.Step{{Node: "scale"}, {Node: "mask"}, {Node: "conv"}}},
	{Direction: query.Forward, Cells: []uint64{55}, Path: []query.Step{{Node: "mask"}, {Node: "conv"}, {Node: "agg"}}},
	{Direction: query.Forward, Cells: []uint64{17}, Path: []query.Step{{Node: "scale"}, {Node: "mask"}}},
}

func resultCells(t *testing.T, e *query.Executor, q query.Query) []uint64 {
	t.Helper()
	res, err := e.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Cells()
}

func sameCells(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStrategyEquivalence is the central metamorphic test: every lineage
// strategy must produce exactly the same query answers as black-box
// tracing, for backward and forward queries, with the optimizer on or off.
func TestStrategyEquivalence(t *testing.T) {
	// Ground truth: pure black-box run.
	_, bbRun := buildRun(t, nil)
	bbExec := query.New(bbRun, nil, query.Options{EntireArray: false, Dynamic: false})
	truth := make([][]uint64, len(testQueries))
	for i, q := range testQueries {
		truth[i] = resultCells(t, bbExec, q)
		if len(truth[i]) == 0 {
			t.Fatalf("query %d: ground truth empty", i)
		}
	}

	plans := map[string]workflow.Plan{
		"blackboxOpt": mapPlan(nil),
		"fullOne":     mapPlan([]lineage.Strategy{lineage.StratFullOne}),
		"fullMany":    mapPlan([]lineage.Strategy{lineage.StratFullMany}),
		"fullOneFwd":  mapPlan([]lineage.Strategy{lineage.StratFullOneFwd}),
		"fullManyFwd": mapPlan([]lineage.Strategy{lineage.StratFullManyFwd}),
		"fullBoth":    mapPlan([]lineage.Strategy{lineage.StratFullOne, lineage.StratFullOneFwd}),
		"payOne":      mapPlan([]lineage.Strategy{lineage.StratPayOne}),
		"payMany":     mapPlan([]lineage.Strategy{lineage.StratPayMany}),
		"compOne":     mapPlan([]lineage.Strategy{lineage.StratCompOne}),
		"compMany":    mapPlan([]lineage.Strategy{lineage.StratCompMany}),
	}
	for name, plan := range plans {
		for _, dynamic := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/dynamic=%v", name, dynamic), func(t *testing.T) {
				exec, run := buildRun(t, plan)
				qe := query.New(run, exec.Stats(), query.Options{EntireArray: false, Dynamic: dynamic})
				for i, q := range testQueries {
					got := resultCells(t, qe, q)
					if !sameCells(got, truth[i]) {
						t.Fatalf("query %d (%s): got %d cells %v, want %d cells %v",
							i, q.Direction, len(got), got, len(truth[i]), truth[i])
					}
				}
			})
		}
	}
}

// TestEntireArrayOptimization verifies the all-to-all shortcut returns the
// same result as tracing through the aggregate, and that the path label
// reflects the optimization.
func TestEntireArrayOptimization(t *testing.T) {
	exec, run := buildRun(t, mapPlan(nil))
	q := query.Query{
		Direction: query.Forward,
		Cells:     []uint64{12},
		Path:      []query.Step{{Node: "scale"}, {Node: "mask"}, {Node: "conv"}, {Node: "agg"}},
	}
	fast := query.New(run, exec.Stats(), query.Options{EntireArray: true, Dynamic: false})
	slow := query.New(run, exec.Stats(), query.Options{EntireArray: false, Dynamic: false})

	fres, err := fast.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := slow.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCells(fres.Cells(), sres.Cells()) {
		t.Fatal("entire-array optimization changed the result")
	}
	last := fres.Steps[len(fres.Steps)-1]
	if last.AccessPath != query.PathEntireArray {
		t.Fatalf("last step path=%q, want entire-array", last.AccessPath)
	}
	slowLast := sres.Steps[len(sres.Steps)-1]
	if slowLast.AccessPath == query.PathEntireArray {
		t.Fatal("optimization used while disabled")
	}
	// Backward through the aggregate: the result must be the whole conv
	// array either way.
	bq := query.Query{Direction: query.Backward, Cells: []uint64{0}, Path: []query.Step{{Node: "agg"}}}
	bres, err := fast.Execute(context.Background(), bq)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Bitmap.Count() != 100 {
		t.Fatalf("backward through all-to-all: %d cells, want 100", bres.Bitmap.Count())
	}
}

// blackboxUDF supports no lineage API: queries through it must
// conservatively return the entire array.
type blackboxUDF struct {
	workflow.Meta
}

func (o *blackboxUDF) OutShape(in []grid.Shape) (grid.Shape, error) { return workflow.SameShapeOut(in) }
func (o *blackboxUDF) Run(_ *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	return ins[0].Clone().WithName("opaque"), nil
}

func TestConservativeAllToAllForOpaqueUDF(t *testing.T) {
	mgr, _ := kvstore.NewManager("")
	defer mgr.Close()
	exec := workflow.NewExecutor(array.NewVersions(), mgr, lineage.NewCollector())
	spec := workflow.NewSpec("opaque")
	spec.Add("udf", &blackboxUDF{Meta: workflow.Meta{OpName: "opaque", NIn: 1}}, workflow.FromExternal("src"))
	src := array.MustNew("src", grid.Shape{4, 4})
	run, err := exec.Execute(context.Background(), spec, nil, map[string]*array.Array{"src": src})
	if err != nil {
		t.Fatal(err)
	}
	qe := query.New(run, exec.Stats(), query.DefaultOptions())
	res, err := qe.Execute(context.Background(), query.Query{Direction: query.Backward, Cells: []uint64{3}, Path: []query.Step{{Node: "udf"}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bitmap.Count() != 16 {
		t.Fatalf("conservative result has %d cells, want all 16", res.Bitmap.Count())
	}
	if res.Steps[0].AccessPath != query.PathConservative {
		t.Fatalf("path=%q", res.Steps[0].AccessPath)
	}
}

func TestQueryValidation(t *testing.T) {
	exec, run := buildRun(t, nil)
	qe := query.New(run, exec.Stats(), query.DefaultOptions())
	cases := []query.Query{
		{}, // empty path
		{Direction: query.Backward, Cells: []uint64{0}, Path: []query.Step{{Node: "ghost"}}},
		{Direction: query.Backward, Cells: []uint64{0}, Path: []query.Step{{Node: "conv", InputIdx: 3}}},
		{Direction: query.Backward, Cells: []uint64{0}, Path: []query.Step{{Node: "scale"}, {Node: "conv"}}}, // wrong edge
		{Direction: query.Forward, Cells: []uint64{0}, Path: []query.Step{{Node: "conv"}, {Node: "scale"}}},  // wrong edge
		{Direction: query.Backward, Cells: []uint64{1 << 40}, Path: []query.Step{{Node: "conv"}}},            // cell out of range
	}
	for i, q := range cases {
		if _, err := qe.Execute(context.Background(), q); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestQueryStatsRecorded(t *testing.T) {
	exec, run := buildRun(t, mapPlan([]lineage.Strategy{lineage.StratFullOne}))
	qe := query.New(run, exec.Stats(), query.DefaultOptions())
	if _, err := qe.Execute(context.Background(), testQueries[0]); err != nil {
		t.Fatal(err)
	}
	st := exec.Stats().Get("conv")
	if st.QuerySteps == 0 || st.QueryTime <= 0 {
		t.Fatalf("query stats not recorded: %+v", st)
	}
}

func TestEmptyIntermediateStops(t *testing.T) {
	// Forward from an input cell that mask maps nowhere... all mask cells
	// map somewhere, so instead use a query whose starting cells are empty.
	exec, run := buildRun(t, nil)
	qe := query.New(run, exec.Stats(), query.DefaultOptions())
	res, err := qe.Execute(context.Background(), query.Query{
		Direction: query.Forward,
		Cells:     nil,
		Path:      []query.Step{{Node: "scale"}, {Node: "mask"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bitmap.Count() != 0 {
		t.Fatal("empty query produced cells")
	}
	if len(res.Steps) != 1 {
		t.Fatalf("expected early stop after first step, got %d steps", len(res.Steps))
	}
}

func TestStepReports(t *testing.T) {
	exec, run := buildRun(t, mapPlan([]lineage.Strategy{lineage.StratPayOne}))
	qe := query.New(run, exec.Stats(), query.Options{EntireArray: true, Dynamic: false})
	res, err := qe.Execute(context.Background(), testQueries[2]) // backward mask -> scale
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps=%d", len(res.Steps))
	}
	if res.Steps[0].AccessPath != query.PathStore+"(<-Pay/One)" {
		t.Fatalf("step 0 path=%q", res.Steps[0].AccessPath)
	}
	if res.Steps[1].AccessPath != query.PathMap {
		t.Fatalf("step 1 path=%q", res.Steps[1].AccessPath)
	}
	if res.Steps[0].InCells != 1 || res.Steps[0].OutCells == 0 {
		t.Fatalf("step 0 counts=%+v", res.Steps[0])
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

// TestMismatchedOrientationStillCorrect pins the Figure 6(b) pathology:
// forward-optimized-only lineage must still answer backward queries
// correctly (slowly, via scans).
func TestMismatchedOrientationStillCorrect(t *testing.T) {
	_, bbRun := buildRun(t, nil)
	bbExec := query.New(bbRun, nil, query.Options{EntireArray: false, Dynamic: false})
	q := testQueries[1]
	want := resultCells(t, bbExec, q)

	exec, run := buildRun(t, mapPlan([]lineage.Strategy{lineage.StratFullOneFwd}))
	qe := query.New(run, exec.Stats(), query.Options{EntireArray: false, Dynamic: false})
	res, err := qe.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCells(res.Cells(), want) {
		t.Fatal("mismatched-orientation scan returned wrong result")
	}
	// The mask step must have used the scan path.
	found := false
	for _, s := range res.Steps {
		if s.Node == "mask" && s.AccessPath == query.PathStoreScan+"(->Full/One)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("scan path not used: %+v", res.Steps)
	}
}
