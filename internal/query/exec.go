package query

import (
	"context"
	"errors"
	"fmt"
	"time"

	"subzero/internal/bitmap"
	"subzero/internal/lineage"
	"subzero/internal/obs"
	"subzero/internal/trace"
	"subzero/internal/workflow"
)

// Access-path labels used in step reports.
const (
	PathEntireArray  = "entire-array"
	PathMap          = "map"
	PathComposite    = "composite"
	PathStore        = "store"
	PathStoreScan    = "store-scan"
	PathReexec       = "reexec"
	PathConservative = "reexec-conservative"
)

// errTraceDone stops a tracing re-execution early once the destination
// bitmap is saturated (the paper's early-close optimization).
var errTraceDone = errors.New("query: trace complete")

// stepPool recycles the per-step intermediate boolean arrays across all
// executors: each query allocates one bitmap per path step and discards
// all but the final result, so steady query traffic reuses the same word
// storage instead of re-allocating it. Result bitmaps handed to callers
// are never returned to the pool.
var stepPool bitmap.Pool

// candidate is one way to resolve a step, with its cost estimate.
type candidate struct {
	label string
	cost  time.Duration
	run   func(abort func() bool) error
}

// executeStep resolves one path step, returning the report and the next
// intermediate bitmap.
func (e *Executor) executeStep(ctx context.Context, d Direction, st Step, cur *bitmap.Bitmap) (StepReport, *bitmap.Bitmap, error) {
	report := StepReport{Node: st.Node, InputIdx: st.InputIdx, InCells: cur.Count()}
	destSpace, err := e.stepDestSpace(d, st)
	if err != nil {
		return report, nil, err
	}
	node := e.run.Spec.Node(st.Node)
	mc, err := e.run.MapCtx(st.Node)
	if err != nil {
		return report, nil, err
	}
	next := stepPool.Get(destSpace)
	// The run-wide MapCtx carries shared coordinate scratch; concurrent
	// queries (QueryBatch) must not share it, so each step works on a
	// private clone.
	mc = mc.Clone()
	start := time.Now()
	// Step span: the class starts as "other" and is rewritten to the
	// chosen access path's SpanClass family once execution settles it.
	ssp := trace.FromContext(ctx).Child("step "+st.Node, "other")
	ssp.SetAttrInt("input", int64(st.InputIdx))
	ssp.SetAttrInt("in_cells", int64(report.InCells))
	defer func() {
		if c := obs.SpanClass(report.AccessPath); c != "" {
			ssp.SetClass(c)
		}
		if report.AccessPath != "" {
			ssp.SetAttr("path", report.AccessPath)
		}
		ssp.SetAttrInt("out_cells", int64(report.OutCells))
		ssp.End()
	}()

	// Entire-array optimization (paper §VI-C), two forms: an annotated
	// all-to-all operator relates every input cell to every output cell,
	// so any non-empty query maps to the full destination array; and when
	// the intermediate boolean array is already completely set — which
	// happens after traversing an all-to-all or several high-fanin
	// operators — an operator annotated full-preserving for this
	// direction and input maps it to the full destination without
	// tracing.
	if e.opts.EntireArray && !cur.Empty() {
		if workflow.IsAllToAll(node.Op) ||
			(cur.Full() && workflow.IsEntireArraySafe(node.Op, d == Forward, st.InputIdx)) {
			next.SetAll()
			report.AccessPath = PathEntireArray
			report.OutCells = next.Count()
			report.Elapsed = time.Since(start)
			e.record(report, false)
			return report, next, nil
		}
	}

	// Candidate probe span: enumerating access paths costs store metadata
	// lookups and cost estimates, attributed separately from execution.
	var probeStart time.Time
	if e.obs != nil {
		probeStart = time.Now()
	}
	psp := ssp.Child("candidates", obs.SpanProbe)
	cands := e.candidates(ctx, ssp, d, st, node, mc, cur, next, &report)
	psp.End()
	if e.obs != nil {
		e.obs.RecordProbe(time.Since(probeStart))
	}
	chosen := cands[0]
	if e.opts.Dynamic {
		for _, c := range cands[1:] {
			if c.cost < chosen.cost {
				chosen = c
			}
		}
	}
	reexecBudget := e.reexecEstimate(st.Node)

	report.AccessPath = chosen.label
	runErr := func() error {
		if !e.opts.Dynamic || chosen.label == PathReexec {
			// Saturation short-circuit: even without the query-time
			// optimizer, store lookups close early once every
			// destination cell is set — the abort surfaces as a "full"
			// ErrAborted, which is the entire-array fast path succeeding
			// mid-step.
			return chosen.run(next.Full)
		}
		// Query-time optimizer: monitor the lineage access and abort once
		// it has consumed the re-execution budget; the subsequent fallback
		// bounds the step at ~2x black-box (paper §VII-A).
		deadline := start.Add(reexecBudget)
		return chosen.run(func() bool { return next.Full() || time.Now().After(deadline) })
	}()

	if runErr != nil {
		corrupt := errors.Is(runErr, lineage.ErrCorrupt)
		if !corrupt && !errors.Is(runErr, lineage.ErrAborted) {
			stepPool.Put(next)
			return report, nil, runErr
		}
		if corrupt {
			// Corruption quarantine: the store has already latched its
			// degraded flag; hand it to the healer for a background
			// rebuild and answer this query through re-execution — the
			// same fallback an optimizer abort takes, because replay is
			// ground truth for the lineage the store failed to serve.
			e.notifyDegraded(st.Node)
		}
		if !next.Full() {
			// Genuine abort: discard partial work and re-execute.
			next.Clear()
			report.FellBack = true
			report.AccessPath = chosen.label + "+" + PathReexec
			if err := e.runReexec(ctx, d, st, cur, next, &report); err != nil {
				stepPool.Put(next)
				return report, nil, err
			}
		}
		// A "full" abort is the early-close optimization succeeding:
		// lineage lookups only ever set true positives, so a saturated
		// intermediate is exact no matter why the path stopped early.
	}
	report.OutCells = next.Count()
	report.Elapsed = time.Since(start)
	e.record(report, report.FellBack || chosen.label == PathReexec || chosen.label == PathConservative)
	return report, next, nil
}

func (e *Executor) record(r StepReport, reexec bool) {
	e.stats.RecordQueryStep(r.Node, int64(r.InCells), int64(r.OutCells), r.Elapsed, reexec)
	if e.obs != nil {
		e.obs.RecordStep(r.Node, r.AccessPath, r.Elapsed, r.FellBack)
	}
}

// candidates enumerates the access paths available for a step, cheapest
// estimates included. The slice is ordered by static preference: mapping
// functions, then composite, then orientation-matched stores, then
// mismatched stores, then re-execution.
func (e *Executor) candidates(ctx context.Context, sp *trace.Span, d Direction, st Step, node *workflow.Node, mc *workflow.MapCtx, cur, next *bitmap.Bitmap, report *StepReport) []candidate {
	var cands []candidate
	strategies := e.run.Strategies(st.Node)
	opStats := e.stats.Get(st.Node)
	n := time.Duration(cur.Count())

	// Mapping functions: available when the Map strategy is assigned and
	// the operator implements the needed direction.
	hasMap := false
	for _, s := range strategies {
		if s.Mode == lineage.Map {
			hasMap = true
		}
	}
	if hasMap && e.hasMapper(d, node) {
		fanPerCell := e.probeMapFan(d, st, node, mc, cur)
		cands = append(cands, candidate{
			label: PathMap,
			cost:  n*cMapCall + time.Duration(float64(n)*fanPerCell)*cCellSet,
			run: func(abort func() bool) error {
				return e.runMap(d, st, node, mc, cur, next, abort)
			},
		})
	}

	// Materialized stores.
	var matched, mismatched []*lineage.Store
	var comp *lineage.Store
	for _, s := range e.run.Stores(st.Node) {
		strat := s.Strategy()
		switch {
		case strat.Mode == lineage.Comp:
			comp = s
		case d == Backward && strat.Orient == lineage.BackwardOpt,
			d == Forward && strat.Orient == lineage.ForwardOpt && strat.Mode == lineage.Full:
			matched = append(matched, s)
		default:
			mismatched = append(mismatched, s)
		}
	}
	if _, isPM := node.Op.(workflow.PayloadMapper); comp != nil && isPM {
		store := comp
		cands = append(cands, candidate{
			label: fmt.Sprintf("%s(%s)", PathComposite, store.Strategy()),
			cost:  e.storeCost(d, store, opStats, n, true),
			run: func(abort func() bool) error {
				return e.runComposite(sp, d, st, node, mc, store, cur, next, abort)
			},
		})
	}
	for _, s := range matched {
		store := s
		cands = append(cands, candidate{
			label: fmt.Sprintf("%s(%s)", PathStore, store.Strategy()),
			cost:  e.storeCost(d, store, opStats, n, true),
			run: func(abort func() bool) error {
				return e.runStore(sp, d, st, node, mc, store, cur, next, abort)
			},
		})
	}
	for _, s := range mismatched {
		store := s
		cands = append(cands, candidate{
			label: fmt.Sprintf("%s(%s)", PathStoreScan, store.Strategy()),
			cost:  e.storeCost(d, store, opStats, n, false),
			run: func(abort func() bool) error {
				return e.runStore(sp, d, st, node, mc, store, cur, next, abort)
			},
		})
	}

	// Black-box re-execution: always available.
	cands = append(cands, candidate{
		label: PathReexec,
		cost:  e.reexecEstimate(st.Node),
		run: func(abort func() bool) error {
			return e.runReexec(ctx, d, st, cur, next, report)
		},
	})
	return cands
}

func (e *Executor) hasMapper(d Direction, node *workflow.Node) bool {
	if d == Backward {
		_, ok := node.Op.(workflow.BackwardMapper)
		return ok
	}
	_, ok := node.Op.(workflow.ForwardMapper)
	return ok
}

// runMap resolves a step with pure mapping functions, closing early once
// the destination saturates.
func (e *Executor) runMap(d Direction, st Step, node *workflow.Node, mc *workflow.MapCtx, cur, next *bitmap.Bitmap, abort func() bool) error {
	var buf []uint64
	var stepErr error
	n := 0
	cur.Iterate(func(cell uint64) bool {
		if n++; n%64 == 0 {
			if next.Full() {
				return false // early close
			}
			if abort != nil && abort() {
				stepErr = lineage.ErrAborted
				return false
			}
		}
		if d == Backward {
			buf = node.Op.(workflow.BackwardMapper).MapB(mc, cell, st.InputIdx, buf[:0])
		} else {
			buf = node.Op.(workflow.ForwardMapper).MapF(mc, cell, st.InputIdx, buf[:0])
		}
		next.SetCells(buf)
		return true
	})
	return stepErr
}

// runStore resolves a step against one materialized store (matched or
// mismatched orientation — the store handles both).
func (e *Executor) runStore(sp *trace.Span, d Direction, st Step, node *workflow.Node, mc *workflow.MapCtx, store *lineage.Store, cur, next *bitmap.Bitmap, abort func() bool) error {
	mapp := e.payloadFn(node, mc)
	if d == Backward {
		return store.BackwardSpan(sp, cur, next, st.InputIdx, mapp, nil, abort)
	}
	return store.ForwardSpan(sp, cur, next, st.InputIdx, mapp, abort)
}

// runComposite resolves a step against a composite store: stored payload
// pairs override the operator's default mapping (paper §V-A4).
func (e *Executor) runComposite(sp *trace.Span, d Direction, st Step, node *workflow.Node, mc *workflow.MapCtx, store *lineage.Store, cur, next *bitmap.Bitmap, abort func() bool) error {
	mapp := e.payloadFn(node, mc)
	if d == Backward {
		covered := stepPool.Get(mc.OutSpace)
		defer stepPool.Put(covered)
		if err := store.BackwardSpan(sp, cur, next, st.InputIdx, mapp, covered, abort); err != nil {
			return err
		}
		// Default mapping for the query cells no payload pair covered.
		bm, ok := node.Op.(workflow.BackwardMapper)
		if !ok {
			return fmt.Errorf("composite operator %s lacks map_b", node.Op.Name())
		}
		var buf []uint64
		var stepErr error
		n := 0
		cur.Iterate(func(cell uint64) bool {
			if covered.Get(cell) {
				return true
			}
			if n++; n%64 == 0 {
				if next.Full() {
					return false
				}
				if abort != nil && abort() {
					stepErr = lineage.ErrAborted
					return false
				}
			}
			buf = bm.MapB(mc, cell, st.InputIdx, buf[:0])
			next.SetCells(buf)
			return true
		})
		return stepErr
	}

	// Forward: payload pairs are scanned by the store; output cells not
	// covered by any payload pair keep the default forward mapping.
	if err := store.ForwardSpan(sp, cur, next, st.InputIdx, mapp, abort); err != nil {
		return err
	}
	fm, ok := node.Op.(workflow.ForwardMapper)
	if !ok {
		return fmt.Errorf("composite operator %s lacks map_f", node.Op.Name())
	}
	var buf []uint64
	var stepErr error
	n := 0
	cur.Iterate(func(cell uint64) bool {
		if n++; n%64 == 0 {
			if next.Full() {
				return false
			}
			if abort != nil && abort() {
				stepErr = lineage.ErrAborted
				return false
			}
		}
		buf = fm.MapF(mc, cell, st.InputIdx, buf[:0])
		for _, out := range buf {
			if next.Get(out) {
				continue
			}
			inStore, err := store.ContainsOut(out)
			if err != nil {
				stepErr = err
				return false
			}
			if !inStore {
				next.Set(out)
			}
		}
		return true
	})
	return stepErr
}

// runReexec re-runs the operator in tracing mode and joins the streamed
// region pairs with the query cells (paper §V-B). Operators that cannot
// trace resolve conservatively to the entire destination array.
func (e *Executor) runReexec(ctx context.Context, d Direction, st Step, cur, next *bitmap.Bitmap, report *StepReport) error {
	sink := func(rp *lineage.RegionPair) error {
		if d == Backward {
			for _, out := range rp.Out {
				if cur.Get(out) {
					next.SetCells(rp.Ins[st.InputIdx])
					break
				}
			}
		} else {
			for _, in := range rp.Ins[st.InputIdx] {
				if cur.Get(in) {
					next.SetCells(rp.Out)
					break
				}
			}
		}
		if next.Full() {
			return errTraceDone // early close
		}
		return nil
	}
	_, err := e.run.Reexecute(ctx, st.Node, sink)
	switch {
	case err == nil || errors.Is(err, errTraceDone):
		return nil
	case errors.Is(err, workflow.ErrNoTracing):
		// No lineage API at all: assume all-to-all (paper §IV).
		next.SetAll()
		report.AccessPath = PathConservative
		return nil
	default:
		return err
	}
}

// payloadFn adapts the operator's MapP to the store-level callback.
func (e *Executor) payloadFn(node *workflow.Node, mc *workflow.MapCtx) lineage.PayloadFn {
	pm, ok := node.Op.(workflow.PayloadMapper)
	if !ok {
		return nil
	}
	return func(out uint64, payload []byte, inputIdx int, dst []uint64) []uint64 {
		return pm.MapP(mc, out, payload, inputIdx, dst)
	}
}
