package query_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/kvstore"
	"subzero/internal/lineage"
	"subzero/internal/query"
	"subzero/internal/workflow"
)

// slowMask wraps maskUDF so the cost relationships are deterministic:
// Run takes ~8ms (a comfortably large re-execution budget, so the cheap-
// looking store is chosen), while map_p costs ~200µs per call (so the
// chosen payload lookup needs ~20ms for 100 cells and must blow through
// the budget mid-flight).
type slowMask struct {
	*maskUDF
}

func (s *slowMask) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	time.Sleep(8 * time.Millisecond)
	return s.maskUDF.Run(rc, ins)
}

func (s *slowMask) MapP(mc *workflow.MapCtx, out uint64, payload []byte, i int, dst []uint64) []uint64 {
	time.Sleep(200 * time.Microsecond)
	return s.maskUDF.MapP(mc, out, payload, i, dst)
}

// TestDynamicFallbackTriggersAndStaysCorrect forces the query-time
// optimizer's monitored abort: the store access is chosen on its (cheap)
// estimate, turns out to be pathologically slow, exceeds the re-execution
// budget, and the executor must abandon it, re-run the operator, and
// still return the correct answer (paper §VII-A: "the optimizer limits
// the query performance degradation to 2x by dynamically switching to the
// BlackBox strategy").
func TestDynamicFallbackTriggersAndStaysCorrect(t *testing.T) {
	mgr, err := kvstore.NewManager("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	exec := workflow.NewExecutor(array.NewVersions(), mgr, lineage.NewCollector())
	spec := workflow.NewSpec("fallback")
	spec.Add("mask", &slowMask{newMaskUDF()}, workflow.FromExternal("src"))
	src := array.MustNew("src", grid.Shape{10, 10})
	for i := range src.Data() {
		src.Data()[i] = 1.0 // every cell bright: every cell has a payload
	}
	run, err := exec.Execute(context.Background(), spec, workflow.Plan{"mask": {lineage.StratPayOne}},
		map[string]*array.Array{"src": src})
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{
		Direction: query.Backward,
		Cells:     manyCells(100),
		Path:      []query.Step{{Node: "mask"}},
	}
	// Ground truth from tracing (static executor never consults map_p
	// when re-executing).
	want := resultCells(t, query.New(run, nil, query.Options{}), q)

	qe := query.New(run, exec.Stats(), query.Options{EntireArray: true, Dynamic: true})
	res, err := qe.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCells(res.Cells(), want) {
		t.Fatalf("fallback changed the answer: %d cells, want %d", len(res.Cells()), len(want))
	}
	step := res.Steps[0]
	if !step.FellBack {
		t.Fatalf("expected dynamic fallback, got access path %q", step.AccessPath)
	}
	if !strings.Contains(step.AccessPath, query.PathReexec) {
		t.Fatalf("fallback path label %q missing reexec", step.AccessPath)
	}
}

// manyCells returns n distinct cells of the 10x10 test array.
func manyCells(n int) []uint64 {
	out := make([]uint64, 0, n)
	for i := 0; i < n && i < 100; i++ {
		out = append(out, uint64(i))
	}
	return out
}

// TestDynamicPrefersCheapestPath checks cost-based selection directly:
// with both a matched store and mapping functions assigned, the dynamic
// executor must not pick the mismatched scan.
func TestDynamicPrefersCheapestPath(t *testing.T) {
	exec, run := buildRun(t, mapPlan([]lineage.Strategy{
		lineage.StratFullOne, lineage.StratFullOneFwd,
	}))
	qe := query.New(run, exec.Stats(), query.Options{EntireArray: true, Dynamic: true})
	res, err := qe.Execute(context.Background(), query.Query{
		Direction: query.Backward,
		Cells:     []uint64{55},
		Path:      []query.Step{{Node: "mask"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Steps[0].AccessPath; strings.Contains(got, query.PathStoreScan) {
		t.Fatalf("dynamic optimizer picked the mismatched scan: %q", got)
	}
}

// TestStaticPrefersMatchedStore pins the static preference order:
// matched-orientation stores beat mismatched ones.
func TestStaticPrefersMatchedStore(t *testing.T) {
	exec, run := buildRun(t, mapPlan([]lineage.Strategy{
		lineage.StratFullOneFwd, lineage.StratFullOne,
	}))
	qe := query.New(run, exec.Stats(), query.Options{EntireArray: true, Dynamic: false})
	res, err := qe.Execute(context.Background(), query.Query{
		Direction: query.Backward,
		Cells:     []uint64{55},
		Path:      []query.Step{{Node: "mask"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Steps[0].AccessPath; got != query.PathStore+"(<-Full/One)" {
		t.Fatalf("static executor used %q, want the matched store", got)
	}
}
