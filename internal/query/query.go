// Package query implements SubZero's lineage query executor (paper §IV,
// §VI-C, §VII-A).
//
// A lineage query starts from a set of cells and traces them through a
// path of operators, either backward (from an operator's output toward
// workflow inputs) or forward (from an operator's input toward workflow
// outputs). The executor resolves one path step at a time, holding each
// intermediate result in an in-memory boolean array (bitmap) over the
// corresponding array's shape — deduplicating the large fan-in/fan-out
// result sets, closing a step early once every possible cell is set, and
// enabling the entire-array optimization for all-to-all operators.
//
// At each step the executor chooses among the operator's available access
// paths: mapping functions, materialized lineage stores (matched or
// mismatched orientation), composite store + default mapping, or black-box
// re-execution in tracing mode. With the query-time optimizer enabled it
// picks the cheapest estimated path and monitors execution, dynamically
// falling back to re-execution so that worst-case cost stays within ~2× of
// black-box (paper §VII-A).
package query

import (
	"context"
	"fmt"
	"time"

	"subzero/internal/bitmap"
	"subzero/internal/grid"
	"subzero/internal/lineage"
	"subzero/internal/obs"
	"subzero/internal/trace"
	"subzero/internal/workflow"
)

// Direction distinguishes backward from forward lineage queries.
type Direction int

// Query directions.
const (
	// Backward traces output cells to the input cells that produced them.
	Backward Direction = iota
	// Forward traces input cells to the output cells they influenced.
	Forward
)

func (d Direction) String() string {
	if d == Forward {
		return "forward"
	}
	return "backward"
}

// Step is one (operator, input index) element of a query path — the
// (P_i, idx_i) pairs of execute_query (paper §IV).
type Step struct {
	Node     string
	InputIdx int
}

// Query is a lineage query: starting cells plus the operator path to trace
// through. For a backward query the cells lie in Path[0].Node's output
// array; for a forward query they lie in Path[0].Node's InputIdx'th input
// array.
type Query struct {
	Direction Direction
	Cells     []uint64
	Path      []Step
}

// Options configure the executor.
type Options struct {
	// EntireArray enables the entire-array optimization for annotated
	// all-to-all operators (on by default via DefaultOptions; the paper's
	// FQ0-Slow measurement disables it).
	EntireArray bool
	// Dynamic enables the query-time optimizer: cost-based access-path
	// choice with monitored fallback to re-execution. When false the
	// executor statically prefers materialized lineage, reproducing the
	// mismatched-index pathologies of Figure 6(b).
	Dynamic bool
}

// DefaultOptions enables every optimization.
func DefaultOptions() Options { return Options{EntireArray: true, Dynamic: true} }

// StepReport records how one path step was executed.
type StepReport struct {
	Node       string
	InputIdx   int
	AccessPath string
	InCells    uint64
	OutCells   uint64
	Elapsed    time.Duration
	FellBack   bool // dynamic fallback to re-execution occurred
}

// Result is a completed lineage query: the final cell set plus per-step
// diagnostics.
type Result struct {
	Bitmap  *bitmap.Bitmap
	Steps   []StepReport
	Elapsed time.Duration
}

// Cells returns the result's cell indices in ascending order.
func (r *Result) Cells() []uint64 { return r.Bitmap.Cells(nil) }

// Executor executes lineage queries against one workflow run.
//
// Executors are safe for concurrent use, and several executors over the
// same run may execute queries in parallel: per-query state is local to
// each Execute call, and run state (lineage stores, statistics) is read
// through internally synchronized paths.
type Executor struct {
	run    *workflow.Run
	stats  *lineage.Collector
	opts   Options
	obs    *obs.QueryObs
	healer Healer
}

// Healer is notified when a query trips over a corrupt lineage store.
// The store has already latched its degraded flag; the healer's job is
// to schedule a background rebuild. Implementations must deduplicate
// concurrent notifications themselves (Store.BeginHeal is the intended
// claim mechanism) and must not block: it is called on the query path.
type Healer func(nodeID string, st *lineage.Store)

// New creates an executor over a run. stats may be nil to skip collection.
func New(run *workflow.Run, stats *lineage.Collector, opts Options) *Executor {
	if stats == nil {
		stats = lineage.NewCollector()
	}
	return &Executor{run: run, stats: stats, opts: opts}
}

// WithObs attaches query metrics (workload mix, latency, per-step spans)
// and returns the executor for chaining. A nil bundle leaves the executor
// unobserved with zero overhead.
func (e *Executor) WithObs(o *obs.QueryObs) *Executor {
	e.obs = o
	return e
}

// WithHealer attaches a corruption-recovery hook and returns the
// executor for chaining. A nil healer (the default) means corrupt
// stores still degrade and queries still fall back to re-execution,
// but nothing schedules a rebuild.
func (e *Executor) WithHealer(h Healer) *Executor {
	e.healer = h
	return e
}

// notifyDegraded hands every degraded store of a node to the healer.
func (e *Executor) notifyDegraded(nodeID string) {
	if e.healer == nil {
		return
	}
	for _, st := range e.run.Stores(nodeID) {
		if st.Degraded() {
			e.healer(nodeID, st)
		}
	}
}

// Validate checks that the query's path follows actual workflow edges and
// its cells fit the starting array.
func (e *Executor) Validate(q Query) error {
	if len(q.Path) == 0 {
		return fmt.Errorf("query: empty path")
	}
	spec := e.run.Spec
	for i, st := range q.Path {
		node := spec.Node(st.Node)
		if node == nil {
			return fmt.Errorf("query: unknown node %q", st.Node)
		}
		if st.InputIdx < 0 || st.InputIdx >= node.Op.NumInputs() {
			return fmt.Errorf("query: step %d input index %d out of range for %s", i, st.InputIdx, st.Node)
		}
		if i == len(q.Path)-1 {
			break
		}
		next := q.Path[i+1]
		if q.Direction == Backward {
			// The next operator must produce this step's traced input.
			if node.Inputs[st.InputIdx].Node != next.Node {
				return fmt.Errorf("query: step %d: input %d of %s is not produced by %s",
					i, st.InputIdx, st.Node, next.Node)
			}
		} else {
			// This operator's output must feed the next step's input.
			nextNode := spec.Node(next.Node)
			if nextNode == nil {
				return fmt.Errorf("query: unknown node %q", next.Node)
			}
			if nextNode.Inputs[next.InputIdx].Node != st.Node {
				return fmt.Errorf("query: step %d: output of %s does not feed input %d of %s",
					i, st.Node, next.InputIdx, next.Node)
			}
		}
	}
	startSpace, err := e.stepSourceSpace(q.Direction, q.Path[0])
	if err != nil {
		return err
	}
	for _, c := range q.Cells {
		if c >= startSpace.Size() {
			return fmt.Errorf("query: cell %d outside starting array (size %d)", c, startSpace.Size())
		}
	}
	return nil
}

// stepSourceSpace returns the space the step's query cells live in.
func (e *Executor) stepSourceSpace(d Direction, st Step) (*grid.Space, error) {
	mc, err := e.run.MapCtx(st.Node)
	if err != nil {
		return nil, err
	}
	if d == Backward {
		return mc.OutSpace, nil
	}
	return mc.InSpaces[st.InputIdx], nil
}

// stepDestSpace returns the space the step's result lives in.
func (e *Executor) stepDestSpace(d Direction, st Step) (*grid.Space, error) {
	mc, err := e.run.MapCtx(st.Node)
	if err != nil {
		return nil, err
	}
	if d == Backward {
		return mc.InSpaces[st.InputIdx], nil
	}
	return mc.OutSpace, nil
}

// Execute runs the query and returns the final cell set.
//
// The context is checked at every path-step boundary and periodically
// during black-box re-execution; cancellation aborts the trace with a
// wrapped ctx.Err() identifying the step where work stopped.
func (e *Executor) Execute(ctx context.Context, q Query) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := e.Validate(q); err != nil {
		return nil, err
	}
	// Query span: every step span below parents under it via the context.
	// On the sampled-off path FromContext yields nil and the whole chain
	// costs nothing.
	qsp := trace.FromContext(ctx).Child("query "+q.Direction.String(), obs.SpanQuery)
	qsp.SetAttr("run", e.run.ID)
	qsp.SetAttr("direction", q.Direction.String())
	qsp.SetAttrInt("cells", int64(len(q.Cells)))
	defer qsp.End()
	ctx = trace.ContextWithSpan(ctx, qsp)
	start := time.Now()
	srcSpace, err := e.stepSourceSpace(q.Direction, q.Path[0])
	if err != nil {
		return nil, err
	}
	cur := stepPool.Get(srcSpace)
	cur.SetCells(q.Cells)
	res := &Result{}
	for _, st := range q.Path {
		if err := ctx.Err(); err != nil {
			stepPool.Put(cur)
			return nil, fmt.Errorf("query: cancelled at step %s[%d]: %w", st.Node, st.InputIdx, err)
		}
		report, next, err := e.executeStep(ctx, q.Direction, st, cur)
		if err != nil {
			stepPool.Put(cur)
			return nil, fmt.Errorf("query: step %s[%d]: %w", st.Node, st.InputIdx, err)
		}
		res.Steps = append(res.Steps, report)
		// The consumed intermediate goes back to the pool; the final
		// bitmap below is handed to the caller and never recycled.
		stepPool.Put(cur)
		cur = next
		if cur.Empty() {
			break // nothing left to trace
		}
	}
	res.Bitmap = cur
	res.Elapsed = time.Since(start)
	if e.obs != nil {
		e.obs.RecordQuery(int(q.Direction), res.Elapsed, q.Cells)
		// Exemplar: link the latency bucket this query landed in to its
		// retained trace, so a histogram spike points at evidence.
		e.obs.AttachExemplar(int(q.Direction), res.Elapsed, qsp.TraceIDString())
	}
	return res, nil
}
