package query

import (
	"time"

	"subzero/internal/bitmap"
	"subzero/internal/lineage"
	"subzero/internal/workflow"
)

// The query-time optimizer's cost model: per-unit constants live in
// internal/lineage (shared with the strategy optimizer); this file binds
// them to live stores and collector statistics.
const (
	cMapCall    = lineage.CostMapCall
	cCellSet    = lineage.CostCellSet
	cLookupOne  = lineage.CostLookupOne
	cLookupMany = lineage.CostLookupMany
	cScanPair   = lineage.CostScanPair
	cMapPCall   = lineage.CostMapPCall
)

// reexecEstimate is the cost of answering a step by re-running the
// operator: its measured average execution time (the statistics collector
// always has one run — the workflow execution itself) plus the join over
// the traced pairs. Operators that never materialized pairs (Map or
// Blackbox strategies report zero) still emit at least one pair per
// output cell in tracing mode, so the pair count is bounded below by the
// output size — without this, re-execution looks spuriously cheap and
// the dynamic optimizer prefers it over mapping functions on large
// intermediate sets.
func (e *Executor) reexecEstimate(nodeID string) time.Duration {
	st := e.stats.Get(nodeID)
	if st.Runs == 0 {
		return lineage.CostDefaultReexec
	}
	pairs := st.Pairs / int64(st.Runs)
	if pairs == 0 {
		if mc, err := e.run.MapCtx(nodeID); err == nil {
			pairs = int64(mc.OutSpace.Size())
		}
	}
	return st.AvgExecTime() + time.Duration(pairs)*lineage.CostTraceJoin
}

// storeCost estimates resolving n query cells against a store.
func (e *Executor) storeCost(d Direction, store *lineage.Store, opStats lineage.OpStats, n time.Duration, matched bool) time.Duration {
	ss := store.Stats()
	pairs := time.Duration(ss.Pairs)
	if pairs == 0 {
		pairs = 1
	}
	// Average result cells contributed per hit pair.
	var perPair time.Duration
	if d == Backward {
		perPair = time.Duration(ss.InCells) / pairs
	} else {
		perPair = time.Duration(ss.OutCells) / pairs
	}
	if perPair == 0 {
		perPair = 1
	}
	strat := store.Strategy()
	if !matched {
		// Mismatched orientation: full scan of every record, plus map_p
		// evaluation per output cell for payload encodings.
		cost := pairs * cScanPair
		if strat.Mode == lineage.Pay || strat.Mode == lineage.Comp {
			outsPerPair := time.Duration(ss.OutCells) / pairs
			if outsPerPair == 0 {
				outsPerPair = 1
			}
			cost += pairs * outsPerPair * cMapPCall
		}
		return cost + pairs*perPair*cCellSet/4
	}
	lookup := cLookupOne
	if strat.Enc == lineage.Many {
		lookup = cLookupMany
	}
	cost := n*lookup + n*perPair*cCellSet
	if strat.Mode == lineage.Pay || strat.Mode == lineage.Comp {
		cost += n * cMapPCall
	}
	return cost
}

// probeMapFan estimates the per-cell fan of a mapping function by invoking
// it on one sample query cell — mapping functions are pure and cheap, so a
// single probe is an adequate estimator for the cost model.
func (e *Executor) probeMapFan(d Direction, st Step, node *workflow.Node, mc *workflow.MapCtx, cur *bitmap.Bitmap) float64 {
	if cur.Empty() {
		return 1
	}
	var sample uint64
	cur.Iterate(func(c uint64) bool { sample = c; return false })
	var out []uint64
	if d == Backward {
		out = node.Op.(workflow.BackwardMapper).MapB(mc, sample, st.InputIdx, nil)
	} else {
		out = node.Op.(workflow.ForwardMapper).MapF(mc, sample, st.InputIdx, nil)
	}
	if len(out) == 0 {
		return 1
	}
	return float64(len(out))
}
