// Package lineage implements SubZero's core contribution: region lineage —
// the representation, storage, and retrieval of fine-grained lineage
// between cells of multi-dimensional arrays (paper §V–§VI).
//
// A region pair (outcells, incells_1 … incells_n) records an all-to-all
// relationship between a set of output cells and sets of input cells, one
// per operator input. Operators emit region pairs through the lwrite API
// while they execute; the Encoder serializes pairs into per-operator
// hashtable stores using one of four encoding strategies (FullOne,
// FullMany, PayOne, PayMany), each either backward-optimized (keyed on
// output cells) or forward-optimized (keyed on input cells). Mapping and
// composite lineage avoid storage partially or entirely by computing
// lineage from cell coordinates via operator-supplied mapping functions.
package lineage

import "fmt"

// Mode is the lineage mode an operator generates (paper §V-A, Table I).
type Mode uint8

// Lineage modes.
const (
	// Blackbox stores nothing beyond the versioned arrays; queries re-run
	// the operator in tracing mode.
	Blackbox Mode = iota
	// Full explicitly stores every region pair.
	Full
	// Map stores nothing: forward/backward mapping functions compute
	// lineage from cell coordinates alone.
	Map
	// Pay stores (outcells, payload) pairs; a payload-aware mapping
	// function map_p recomputes the input cells at query time.
	Pay
	// Comp combines Map and Pay: the mapping functions define the default
	// relationship and stored payload pairs override it.
	Comp
)

func (m Mode) String() string {
	switch m {
	case Blackbox:
		return "Blackbox"
	case Full:
		return "Full"
	case Map:
		return "Map"
	case Pay:
		return "Pay"
	case Comp:
		return "Comp"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ModeSet is the cur_modes argument passed to an operator's run method: the
// set of lineage modes the operator must generate during this execution.
type ModeSet uint8

// NewModeSet builds a set from modes.
func NewModeSet(modes ...Mode) ModeSet {
	var s ModeSet
	for _, m := range modes {
		s |= 1 << m
	}
	return s
}

// Has reports whether the set contains m.
func (s ModeSet) Has(m Mode) bool { return s&(1<<m) != 0 }

// With returns the set extended with m.
func (s ModeSet) With(m Mode) ModeSet { return s | 1<<m }

// NeedsPairs reports whether the operator must call lwrite with full
// region pairs (Full mode requested).
func (s ModeSet) NeedsPairs() bool { return s.Has(Full) }

// NeedsPayload reports whether the operator must call lwrite with payload
// pairs (Pay or Comp mode requested).
func (s ModeSet) NeedsPayload() bool { return s.Has(Pay) || s.Has(Comp) }

func (s ModeSet) String() string {
	out := ""
	for _, m := range []Mode{Blackbox, Full, Map, Pay, Comp} {
		if s.Has(m) {
			if out != "" {
				out += "|"
			}
			out += m.String()
		}
	}
	if out == "" {
		return "{}"
	}
	return out
}

// Encoding is the physical layout of stored region pairs (paper §VI-B,
// Figure 4).
type Encoding uint8

// Encoding strategies.
const (
	// EncNone marks strategies that store nothing (Map, Blackbox).
	EncNone Encoding = iota
	// One: one hash entry per key-side cell pointing at a shared
	// value-side blob (Figure 4.2); direct hash lookups, no spatial index.
	One
	// Many: one hash entry per region pair with the key-side cell set
	// serialized in the entry, plus an R-tree over key-side bounding
	// boxes (Figure 4.1); best when fanout is high.
	Many
)

func (e Encoding) String() string {
	switch e {
	case EncNone:
		return "None"
	case One:
		return "One"
	case Many:
		return "Many"
	}
	return fmt.Sprintf("Encoding(%d)", uint8(e))
}

// Orientation says which side of a region pair is the hash key.
type Orientation uint8

// Orientations.
const (
	// BackwardOpt keys on output cells: backward queries are lookups.
	BackwardOpt Orientation = iota
	// ForwardOpt keys on input cells: forward queries are lookups.
	ForwardOpt
)

func (o Orientation) String() string {
	if o == ForwardOpt {
		return "->"
	}
	return "<-"
}

// Strategy fully specifies how one operator stores lineage: a mode, an
// encoding, and an orientation (paper §VI-B: "Each storage strategy is
// fully specified by a lineage mode, encoding strategy, and whether it is
// forward or backward optimized"). An operator may hold several stores
// with different strategies.
type Strategy struct {
	Mode   Mode
	Enc    Encoding
	Orient Orientation
}

// Named strategy constructors matching the paper's terminology.
var (
	StratBlackbox = Strategy{Mode: Blackbox, Enc: EncNone, Orient: BackwardOpt}
	StratMap      = Strategy{Mode: Map, Enc: EncNone, Orient: BackwardOpt}
	StratFullOne  = Strategy{Mode: Full, Enc: One, Orient: BackwardOpt}
	StratFullMany = Strategy{Mode: Full, Enc: Many, Orient: BackwardOpt}
	StratPayOne   = Strategy{Mode: Pay, Enc: One, Orient: BackwardOpt}
	StratPayMany  = Strategy{Mode: Pay, Enc: Many, Orient: BackwardOpt}
	StratCompOne  = Strategy{Mode: Comp, Enc: One, Orient: BackwardOpt}
	StratCompMany = Strategy{Mode: Comp, Enc: Many, Orient: BackwardOpt}

	StratFullOneFwd  = Strategy{Mode: Full, Enc: One, Orient: ForwardOpt}
	StratFullManyFwd = Strategy{Mode: Full, Enc: Many, Orient: ForwardOpt}
)

// Validate checks mode/encoding/orientation consistency. Payload-bearing
// modes cannot be forward-optimized: the payload is an opaque blob that
// only map_p can interpret, so input cells are not available as keys at
// write time (paper §V-A3: "payload functions are designed to optimize
// execution of backward lineage queries").
func (s Strategy) Validate() error {
	switch s.Mode {
	case Blackbox, Map:
		if s.Enc != EncNone {
			return fmt.Errorf("lineage: %s mode must use EncNone, got %s", s.Mode, s.Enc)
		}
	case Full:
		if s.Enc != One && s.Enc != Many {
			return fmt.Errorf("lineage: Full mode needs One or Many encoding")
		}
	case Pay, Comp:
		if s.Enc != One && s.Enc != Many {
			return fmt.Errorf("lineage: %s mode needs One or Many encoding", s.Mode)
		}
		if s.Orient == ForwardOpt {
			return fmt.Errorf("lineage: %s mode cannot be forward-optimized", s.Mode)
		}
	default:
		return fmt.Errorf("lineage: unknown mode %d", s.Mode)
	}
	return nil
}

// StoresPairs reports whether the strategy materializes lineage entries
// (i.e., needs a physical store).
func (s Strategy) StoresPairs() bool { return s.Mode == Full || s.Mode == Pay || s.Mode == Comp }

func (s Strategy) String() string {
	switch s.Mode {
	case Blackbox, Map:
		return s.Mode.String()
	}
	return fmt.Sprintf("%s%s/%s", s.Orient, s.Mode, s.Enc)
}

// ID returns a short stable identifier used in store namespaces.
func (s Strategy) ID() string {
	dir := "b"
	if s.Orient == ForwardOpt {
		dir = "f"
	}
	return fmt.Sprintf("%s-%s-%s", s.Mode, s.Enc, dir)
}
