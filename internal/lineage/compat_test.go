package lineage

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"subzero/internal/binenc"
	"subzero/internal/bitmap"
	"subzero/internal/grid"
	"subzero/internal/kvstore"
)

// encodeRecordV1 reproduces the pre-span (v1) record encoding byte for
// byte: flags 0/1 followed by per-cell delta+varint cell sets. Stores
// written before the span codec hold records in exactly this form.
func encodeRecordV1(rp *RegionPair) []byte {
	var buf []byte
	if rp.IsPayload() {
		buf = append(buf, recPayload)
		buf = binenc.AppendCellSet(buf, rp.Out)
		buf = binenc.AppendBytes(buf, rp.Payload)
		return buf
	}
	buf = append(buf, recFull)
	buf = binenc.AppendCellSet(buf, rp.Out)
	buf = binary.AppendUvarint(buf, uint64(len(rp.Ins)))
	for _, in := range rp.Ins {
		buf = binenc.AppendCellSet(buf, in)
	}
	return buf
}

// Golden v1 bytes must keep decoding: the flags byte doubles as the
// format version, and 0/1 mark the legacy per-cell encoding.
func TestDecodeGoldenV1Records(t *testing.T) {
	// flags=0 (full), outs {1,5,9} as count+first+gaps, 2 inputs
	// {0,2} and {7}.
	goldenFull := []byte{0, 3, 1, 4, 4, 2, 2, 0, 2, 1, 7}
	if want := encodeRecordV1(&RegionPair{Out: []uint64{1, 5, 9}, Ins: [][]uint64{{0, 2}, {7}}}); !bytes.Equal(goldenFull, want) {
		t.Fatalf("golden v1 full bytes drifted from encoder: %v vs %v", goldenFull, want)
	}
	rec, err := decodeRecord(goldenFull)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.outs.cells(nil); !equalU64(got, []uint64{1, 5, 9}) {
		t.Fatalf("v1 outs = %v", got)
	}
	if len(rec.ins) != 2 || !equalU64(rec.ins[0].cells(nil), []uint64{0, 2}) || !equalU64(rec.ins[1].cells(nil), []uint64{7}) {
		t.Fatalf("v1 ins = %+v", rec.ins)
	}

	// flags=1 (payload), outs {4}, 3-byte payload.
	goldenPay := []byte{1, 1, 4, 3, 9, 8, 7}
	rec, err = decodeRecord(goldenPay)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.outs.cells(nil); !equalU64(got, []uint64{4}) || !bytes.Equal(rec.payload, []byte{9, 8, 7}) {
		t.Fatalf("v1 payload record = %v %v", got, rec.payload)
	}
}

// The v2 span encoding is pinned too, so accidental format drift is
// caught before it ships. These bytes must never change: v2 stores on
// disk hold exactly this form, and SetCodec(CodecV2) must keep producing
// it byte for byte.
func TestEncodeGoldenV2Records(t *testing.T) {
	got := encodeRecordV2(&RegionPair{Out: []uint64{1, 5, 9}, Ins: [][]uint64{{0, 2}, {7}}})
	// flags=2; outs: 3 runs (gap 1,len 1)(gap 3,len 1)(gap 3,len 1);
	// 2 inputs: {0,2} = 2 runs, {7} = 1 run.
	want := []byte{2, 3, 1, 1, 3, 1, 3, 1, 2, 2, 0, 1, 1, 1, 1, 7, 1}
	if !bytes.Equal(got, want) {
		t.Fatalf("v2 full record bytes = %v, want %v", got, want)
	}
	// A dense run collapses: outs {10..15} is one (gap 10, len 6) pair.
	got = encodeRecordV2(&RegionPair{Out: []uint64{10, 11, 12, 13, 14, 15}, Payload: []byte{1}})
	want = []byte{3, 1, 10, 6, 1, 1}
	if !bytes.Equal(got, want) {
		t.Fatalf("v2 payload record bytes = %v, want %v", got, want)
	}
}

// The v3 container encoding is pinned the same way — and encodeRecord
// (the default codec) must emit exactly these bytes.
func TestEncodeGoldenV3Records(t *testing.T) {
	got := encodeRecord(&RegionPair{Out: []uint64{1, 5, 9}, Ins: [][]uint64{{0, 2}, {7}}})
	// flags=4; every set is tiny, so all take the sparse-direct form
	// (count, nTiles=0, first+gaps): outs {1,5,9}, then 2 inputs {0,2}
	// and {7}.
	want := []byte{4, 3, 0, 1, 4, 4, 2, 2, 0, 0, 2, 1, 0, 7}
	if !bytes.Equal(got, want) {
		t.Fatalf("v3 full record bytes = %v, want %v", got, want)
	}
	if rec, err := decodeRecord(got); err != nil {
		t.Fatal(err)
	} else if !equalU64(rec.outs.cells(nil), []uint64{1, 5, 9}) {
		t.Fatalf("v3 sparse decode = %v", rec.outs.cells(nil))
	}

	// A full tile plus a 6-cell run in the next tile: count 1030 (2
	// varint bytes), 2 tiles; tile 0 is type full (header 0<<2|3, no
	// payload); tile 1 (gap 0) is type runs (header 0<<2|1) with one
	// (gap 10, len 6) run.
	out := make([]uint64, 0, 1030)
	for c := uint64(0); c < 1024; c++ {
		out = append(out, c)
	}
	for c := uint64(1034); c < 1040; c++ {
		out = append(out, c)
	}
	got = encodeRecord(&RegionPair{Out: out, Payload: []byte{1}})
	want = []byte{5, 0x86, 0x08, 2, 3, 1, 1, 10, 6, 1, 1}
	if !bytes.Equal(got, want) {
		t.Fatalf("v3 payload record bytes = %v, want %v", got, want)
	}
	rec, err := decodeRecord(got)
	if err != nil {
		t.Fatal(err)
	}
	if rec.outs.size() != 1030 || !equalU64(rec.outs.cells(nil), out) || !bytes.Equal(rec.payload, []byte{1}) {
		t.Fatalf("v3 container decode: size %d", rec.outs.size())
	}
}

// Every record any store could contain must decode to the same cell sets
// whichever of the three codecs wrote it.
func TestV1V2V3DecodeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		if trial%5 == 0 {
			n = 600 + rng.Intn(1200) // force tiled containers in v3
		}
		rp := RegionPair{Out: randCells(rng, n)}
		if rng.Intn(2) == 0 {
			rp.Ins = [][]uint64{randCells(rng, 1+rng.Intn(40)), randCells(rng, 1+rng.Intn(10))}
		} else {
			rp.Payload = []byte{byte(trial)}
		}
		v1, err := decodeRecord(encodeRecordV1(&rp))
		if err != nil {
			t.Fatalf("trial %d v1: %v", trial, err)
		}
		for name, enc := range map[string]func(*RegionPair) []byte{"v2": encodeRecordV2, "v3": encodeRecordV3} {
			rec, err := decodeRecord(enc(&rp))
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if !equalU64(v1.outs.cells(nil), rec.outs.cells(nil)) {
				t.Fatalf("trial %d %s outs differ", trial, name)
			}
			if rec.outs.size() != uint64(len(v1.outs.cells(nil))) {
				t.Fatalf("trial %d %s size = %d", trial, name, rec.outs.size())
			}
			if len(v1.ins) != len(rec.ins) {
				t.Fatalf("trial %d %s ins arity differ", trial, name)
			}
			for i := range v1.ins {
				if !equalU64(v1.ins[i].cells(nil), rec.ins[i].cells(nil)) {
					t.Fatalf("trial %d %s input %d differ", trial, name, i)
				}
			}
			if !bytes.Equal(v1.payload, rec.payload) {
				t.Fatalf("trial %d %s payload differ", trial, name)
			}
		}
	}
}

func randCells(rng *rand.Rand, n int) []uint64 {
	cells := make([]uint64, 0, n)
	c := uint64(rng.Intn(5))
	for i := 0; i < n; i++ {
		cells = append(cells, c)
		if rng.Intn(3) == 0 {
			c += uint64(2 + rng.Intn(50)) // gap: new run
		} else {
			c++ // extend run
		}
	}
	return cells
}

// A mixed-version store — some pairs written with the v2 codec, some
// with v3 — must answer queries identically to the same lineage written
// all-v2. Versioning is per record, so codec flips mid-store (an old
// store reopened by a new build keeps appending) must be invisible to
// lookups.
func TestMixedVersionStoreAnswersLikeV2(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pairs := randomPairs(rng, 120)
	for _, strat := range []Strategy{StratFullOne, StratFullMany} {
		t.Run(strat.String(), func(t *testing.T) {
			stV2, err := OpenStore(kvstore.NewMem(), strat, tOutSpace, tInSpaces)
			if err != nil {
				t.Fatal(err)
			}
			if err := stV2.SetCodec(CodecV2); err != nil {
				t.Fatal(err)
			}
			if err := stV2.WritePairs(pairs); err != nil {
				t.Fatal(err)
			}
			if err := stV2.Flush(); err != nil {
				t.Fatal(err)
			}

			stMix, err := OpenStore(kvstore.NewMem(), strat, tOutSpace, tInSpaces)
			if err != nil {
				t.Fatal(err)
			}
			if err := stMix.SetCodec(CodecV2); err != nil {
				t.Fatal(err)
			}
			if err := stMix.WritePairs(pairs[:60]); err != nil {
				t.Fatal(err)
			}
			if err := stMix.SetCodec(CodecV3); err != nil {
				t.Fatal(err)
			}
			if err := stMix.WritePairs(pairs[60:]); err != nil {
				t.Fatal(err)
			}
			if err := stMix.Flush(); err != nil {
				t.Fatal(err)
			}

			qrng := rand.New(rand.NewSource(5))
			for trial := 0; trial < 25; trial++ {
				q := randomQuery(qrng, tOutSpace, 40)
				for input := range tInSpaces {
					a, b := bitmap.New(tInSpaces[input]), bitmap.New(tInSpaces[input])
					if err := stV2.Backward(q, a, input, testMapP, nil, nil); err != nil {
						t.Fatal(err)
					}
					if err := stMix.Backward(q, b, input, testMapP, nil, nil); err != nil {
						t.Fatal(err)
					}
					if !sameBitmap(a, b) {
						t.Fatalf("trial %d input %d: mixed-version backward differs from all-v2", trial, input)
					}
				}
				fq := randomQuery(qrng, tInSpaces[0], 40)
				a, b := bitmap.New(tOutSpace), bitmap.New(tOutSpace)
				if err := stV2.Forward(fq, a, 0, testMapP, nil); err != nil {
					t.Fatal(err)
				}
				if err := stMix.Forward(fq, b, 0, testMapP, nil); err != nil {
					t.Fatal(err)
				}
				if !sameBitmap(a, b) {
					t.Fatalf("trial %d: mixed-version forward differs from all-v2", trial)
				}
			}
		})
	}
}

// A store whose hashtable was written entirely by the v1 encoder must
// reopen and answer queries identically to a freshly written store.
func TestStoreReadsV1Records(t *testing.T) {
	outSp := grid.NewSpace(grid.Shape{16, 16})
	inSp := []*grid.Space{grid.NewSpace(grid.Shape{16, 16})}
	rng := rand.New(rand.NewSource(7))
	pairs := make([]RegionPair, 20)
	for i := range pairs {
		pairs[i] = RegionPair{Out: randCells(rng, 1+rng.Intn(8)), Ins: [][]uint64{randCells(rng, 1+rng.Intn(8))}}
		pairs[i].Normalize()
		clip(&pairs[i], outSp.Size())
	}

	// v2 store written through the normal path.
	kvNew := kvstore.NewMem()
	stNew, err := OpenStore(kvNew, StratFullOne, outSp, inSp)
	if err != nil {
		t.Fatal(err)
	}
	if err := stNew.WritePairs(pairs); err != nil {
		t.Fatal(err)
	}
	if err := stNew.Flush(); err != nil {
		t.Fatal(err)
	}

	// v1 store: same pairs, but pair records hand-written in v1 bytes.
	kvOld := kvstore.NewMem()
	stOld, err := OpenStore(kvOld, StratFullOne, outSp, inSp)
	if err != nil {
		t.Fatal(err)
	}
	if err := stOld.WritePairs(pairs); err != nil {
		t.Fatal(err)
	}
	if err := stOld.Flush(); err != nil {
		t.Fatal(err)
	}
	for id := range pairs {
		if err := kvOld.Put(pairKey(uint64(id)), encodeRecordV1(&pairs[id])); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen so no cached v2 record survives.
	stOld, err = OpenStore(kvOld, StratFullOne, outSp, inSp)
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 20; trial++ {
		q := bitmap.New(outSp)
		for i := 0; i < 30; i++ {
			q.Set(uint64(rng.Intn(int(outSp.Size()))))
		}
		dstOld, dstNew := bitmap.New(inSp[0]), bitmap.New(inSp[0])
		if err := stOld.Backward(q, dstOld, 0, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
		if err := stNew.Backward(q, dstNew, 0, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
		if !sameBitmap(dstOld, dstNew) {
			t.Fatalf("trial %d: v1-record store answers differ from v2", trial)
		}
	}
}

func clip(rp *RegionPair, size uint64) {
	trim := func(cells []uint64) []uint64 {
		out := cells[:0]
		for _, c := range cells {
			if c < size {
				out = append(out, c)
			}
		}
		if len(out) == 0 {
			out = append(out, 0)
		}
		return out
	}
	rp.Out = trim(rp.Out)
	for i := range rp.Ins {
		rp.Ins[i] = trim(rp.Ins[i])
	}
}

func sameBitmap(a, b *bitmap.Bitmap) bool {
	if a.Count() != b.Count() {
		return false
	}
	same := true
	a.Iterate(func(idx uint64) bool {
		if !b.Get(idx) {
			same = false
		}
		return same
	})
	return same
}
