package lineage

import (
	"testing"

	"subzero/internal/bitmap"
	"subzero/internal/kvstore"
)

func TestWriterRoutesToStores(t *testing.T) {
	full, _ := OpenStore(kvstore.NewMem(), StratFullOne, tOutSpace, tInSpaces)
	fullFwd, _ := OpenStore(kvstore.NewMem(), StratFullOneFwd, tOutSpace, tInSpaces)
	pay, _ := OpenStore(kvstore.NewMem(), StratPayOne, tOutSpace, tInSpaces)

	w := NewWriter(tOutSpace, tInSpaces, []*Store{full, fullFwd}, []*Store{pay}, nil)
	if err := w.LWrite([]uint64{1, 2}, []uint64{5}, []uint64{3}); err != nil {
		t.Fatal(err)
	}
	if err := w.LWritePayload([]uint64{4}, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if full.NumPairs() != 1 || fullFwd.NumPairs() != 1 {
		t.Fatalf("full stores pairs=(%d,%d), want (1,1)", full.NumPairs(), fullFwd.NumPairs())
	}
	if pay.NumPairs() != 1 {
		t.Fatalf("pay store pairs=%d, want 1", pay.NumPairs())
	}
	if w.Pairs() != 2 {
		t.Fatalf("writer pairs=%d", w.Pairs())
	}
	if w.Elapsed() <= 0 {
		t.Fatal("elapsed not recorded")
	}

	// Both full stores must answer; the forward store answers forward
	// queries directly.
	q := bitmap.FromCells(tOutSpace, []uint64{1})
	dst := bitmap.New(tInSpaces[0])
	if err := full.Backward(q, dst, 0, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !dst.Get(5) {
		t.Fatal("backward store missing lineage")
	}
	qf := bitmap.FromCells(tInSpaces[1], []uint64{3})
	dstF := bitmap.New(tOutSpace)
	if err := fullFwd.Forward(qf, dstF, 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !dstF.Get(1) || !dstF.Get(2) {
		t.Fatal("forward store missing lineage")
	}
}

func TestWriterCopiesCallerBuffers(t *testing.T) {
	full, _ := OpenStore(kvstore.NewMem(), StratFullOne, tOutSpace, tInSpaces)
	w := NewWriter(tOutSpace, tInSpaces, []*Store{full}, nil, nil)
	out := []uint64{1}
	in0 := []uint64{2}
	in1 := []uint64{}
	if err := w.LWrite(out, in0, in1); err != nil {
		t.Fatal(err)
	}
	out[0], in0[0] = 300, 300 // caller reuses buffers
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	q := bitmap.FromCells(tOutSpace, []uint64{1})
	dst := bitmap.New(tInSpaces[0])
	if err := full.Backward(q, dst, 0, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !dst.Get(2) || dst.Get(300) {
		t.Fatal("writer aliased caller buffers")
	}
}

func TestWriterSinkMode(t *testing.T) {
	var captured []RegionPair
	sink := func(rp *RegionPair) error {
		captured = append(captured, rp.Clone())
		return nil
	}
	w := NewWriter(tOutSpace, tInSpaces, nil, nil, sink)
	if err := w.LWrite([]uint64{3}, []uint64{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(captured) != 1 || captured[0].Out[0] != 3 || len(captured[0].Ins[0]) != 2 {
		t.Fatalf("sink captured %+v", captured)
	}
}

func TestWriterValidation(t *testing.T) {
	w := NewWriter(tOutSpace, tInSpaces, nil, nil, nil)
	if err := w.LWrite([]uint64{1}, []uint64{2}); err == nil {
		t.Fatal("wrong input-set count accepted")
	}
	if err := w.LWrite([]uint64{1 << 30}, []uint64{1}, nil); err == nil {
		t.Fatal("out-of-range output accepted")
	}
	if err := w.LWritePayload([]uint64{}, []byte{1}); err == nil {
		t.Fatal("empty output set accepted")
	}
}

func TestWriterBufferFlushThreshold(t *testing.T) {
	full, _ := OpenStore(kvstore.NewMem(), StratFullMany, tOutSpace, tInSpaces)
	w := NewWriter(tOutSpace, tInSpaces, []*Store{full}, nil, nil)
	// Write enough cells to trigger the internal threshold flush.
	big := make([]uint64, 300)
	for i := range big {
		big[i] = uint64(i)
	}
	for p := 0; p < 300; p++ {
		if err := w.LWrite([]uint64{uint64(p)}, big, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Some pairs must already be in the store before the final Flush.
	if full.NumPairs() == 0 {
		t.Fatal("threshold flush never triggered")
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if full.NumPairs() != 300 {
		t.Fatalf("pairs=%d, want 300", full.NumPairs())
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.RecordRun("op1", 100, 10, 5, 50, 200, 0)
	c.RecordRun("op1", 100, 10, 5, 50, 200, 0)
	c.RecordQueryStep("op1", 10, 40, 25, false)
	c.RecordQueryStep("op1", 10, 40, 25, true)

	st := c.Get("op1")
	if st.Runs != 2 || st.Pairs != 10 || st.ExecTime != 200 {
		t.Fatalf("run stats=%+v", st)
	}
	if st.QuerySteps != 2 || st.Reexecs != 1 || st.QueryInCells != 20 {
		t.Fatalf("query stats=%+v", st)
	}
	if st.AvgFanout() != 10 || st.AvgFanin() != 40 {
		t.Fatalf("fanout=%f fanin=%f", st.AvgFanout(), st.AvgFanin())
	}
	if st.AvgExecTime() != 100 {
		t.Fatalf("avg exec=%v", st.AvgExecTime())
	}
	if got := c.Get("ghost"); got.Runs != 0 {
		t.Fatal("unknown node should be zero")
	}
	c.RecordRun("op0", 1, 1, 1, 1, 1, 1)
	all := c.All()
	if len(all) != 2 || all[0].NodeID != "op0" {
		t.Fatalf("All=%v", all)
	}
	c.Reset()
	if len(c.All()) != 0 {
		t.Fatal("Reset failed")
	}
}

func TestOpStatsZeroDivision(t *testing.T) {
	var st OpStats
	if st.AvgFanin() != 0 || st.AvgFanout() != 0 || st.AvgExecTime() != 0 {
		t.Fatal("zero stats must not divide by zero")
	}
}
