package lineage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"subzero/internal/bitmap"
	"subzero/internal/grid"
	"subzero/internal/kvstore"
	"subzero/internal/obs"
	"subzero/internal/rtree"
	"subzero/internal/trace"
)

// The lookup hot path is span-oriented end to end: query bitmaps are
// walked as runs, hashtable probes are grouped into batches served under
// one kvstore lock, records decode into run sets replayed word-parallel
// into the destination bitmap, and Many-encoding index probes are
// rectangle window queries instead of per-cell point queries. Per-lookup
// buffers live in a sync.Pool so a steady query load allocates almost
// nothing.

// probeBatchSize is how many per-cell hashtable probes are grouped into
// one kvstore.GetBatch call (one lock acquisition / I/O pass per batch).
// It is also the abort-poll granularity of the One-encoding paths.
const probeBatchSize = 256

// lookupScratch holds the reusable buffers of one in-flight lookup.
type lookupScratch struct {
	cells  []uint64            // batched query cells awaiting probe
	keyBuf []byte              // arena backing the probe keys
	keys   [][]byte            // per-cell probe keys, slices of keyBuf
	ids    []uint64            // decoded pair-id list of one cell entry
	seen   map[uint64]struct{} // pair ids already applied this lookup
}

var scratchPool = sync.Pool{
	New: func() any { return &lookupScratch{seen: make(map[uint64]struct{}, 64)} },
}

func getScratch() *lookupScratch { return scratchPool.Get().(*lookupScratch) }

func (sc *lookupScratch) release() {
	sc.cells = sc.cells[:0]
	clear(sc.seen)
	scratchPool.Put(sc)
}

// forEachBatch walks q as runs, accumulating cells into sc.cells and
// invoking process at every probeBatchSize boundary plus once for the
// final partial batch. process consumes sc.cells and must reset it; a
// false return stops the walk (and skips the final flush).
func (sc *lookupScratch) forEachBatch(q *bitmap.Bitmap, process func() bool) {
	ok := true
	q.IterateRuns(func(start, length uint64) bool {
		for c := start; c < start+length; c++ {
			sc.cells = append(sc.cells, c)
			if len(sc.cells) == probeBatchSize && !process() {
				ok = false
				return false
			}
		}
		return true
	})
	if ok {
		process()
	}
}

// buildKeys fills the key arena with one cell key per batched cell.
func (sc *lookupScratch) buildKeys(slot int) {
	sc.keyBuf = sc.keyBuf[:0]
	sc.keys = sc.keys[:0]
	for _, c := range sc.cells {
		off := len(sc.keyBuf)
		sc.keyBuf = append(sc.keyBuf, keyCell, byte(slot))
		sc.keyBuf = binary.BigEndian.AppendUint64(sc.keyBuf, c)
		sc.keys = append(sc.keys, sc.keyBuf[off:len(sc.keyBuf):len(sc.keyBuf)])
	}
}

// Backward resolves the backward lineage of the query cells q (a bitmap
// over the operator's output space) into input inputIdx, OR-ing the result
// into dst (a bitmap over that input's space).
//
// mapp is the operator's payload mapping function; it is required for Pay
// and Comp stores and ignored otherwise. If covered is non-nil, every
// query cell answered by a stored (payload) pair is marked in it — the
// query executor uses this to apply the composite default mapping to the
// remaining cells. abort, if non-nil, is polled periodically; returning
// true cancels the lookup with ErrAborted (the query-time optimizer's
// dynamic fallback hook).
func (s *Store) Backward(q, dst *bitmap.Bitmap, inputIdx int, mapp PayloadFn, covered *bitmap.Bitmap, abort func() bool) error {
	return s.BackwardSpan(nil, q, dst, inputIdx, mapp, covered, abort)
}

// BackwardSpan is Backward under a trace span: kvstore probe batches on
// the One-encoding paths become child spans of sp. A nil sp (the
// sampled-off path) adds nothing.
func (s *Store) BackwardSpan(sp *trace.Span, q, dst *bitmap.Bitmap, inputIdx int, mapp PayloadFn, covered *bitmap.Bitmap, abort func() bool) error {
	if inputIdx < 0 || inputIdx >= len(s.inSpaces) {
		return fmt.Errorf("lineage: input index %d out of range (%d inputs)", inputIdx, len(s.inSpaces))
	}
	if (s.strat.Mode == Pay || s.strat.Mode == Comp) && mapp == nil {
		return fmt.Errorf("lineage: %s store requires a payload mapping function", s.strat)
	}
	release, err := s.beginRead()
	if err != nil {
		return err
	}
	defer release()
	if s.strat.Orient == ForwardOpt {
		// Mismatched orientation: fall back to a full scan of records.
		return s.scanBackward(q, dst, inputIdx, abort)
	}
	switch {
	case s.strat.Enc == One && s.strat.Mode == Full:
		return s.lookupFullOne(sp, q, dst, 0, inputIdx, false, abort)
	case s.strat.Enc == Many && s.strat.Mode == Full:
		return s.backwardFullMany(q, dst, inputIdx, abort)
	case s.strat.Enc == One:
		return s.backwardPayOne(sp, q, dst, inputIdx, mapp, covered, abort)
	default:
		return s.backwardPayMany(q, dst, inputIdx, mapp, covered, abort)
	}
}

// lookupFullOne serves both directions of the FullOne encodings: probe
// the slot's per-cell hash entries in batches, then replay each distinct
// referenced pair record into dst exactly once (records repeat under
// fanout, so the dedup both batches record fetches and skips redundant
// bitmap writes).
func (s *Store) lookupFullOne(sp *trace.Span, q, dst *bitmap.Bitmap, slot, inputIdx int, forward bool, abort func() bool) error {
	sc := getScratch()
	defer sc.release()
	var err error
	process := func() bool {
		if len(sc.cells) == 0 {
			return true
		}
		if aborted(abort) {
			err = ErrAborted
			return false
		}
		sc.buildKeys(slot)
		// Phase 1: drain the hashtable batch into the id scratch. No
		// store re-entry happens under the batch's lock; record fetches
		// wait for phase 2.
		sc.ids = sc.ids[:0]
		ksp := sp.Child("kvstore.GetBatch", obs.SpanKVProbe)
		ksp.SetAttrInt("keys", int64(len(sc.keys)))
		berr := kvstore.GetBatch(s.kv, sc.keys, func(_ int, val []byte, ok bool) bool {
			if !ok {
				return true
			}
			if sc.ids, err = appendIDList(sc.ids, val); err != nil {
				err = s.corruptf(err)
			}
			return err == nil
		})
		ksp.End()
		if berr != nil && err == nil {
			err = berr
		}
		if err != nil {
			return false
		}
		// Phase 2: replay each referenced pair record exactly once.
		for _, id := range sc.ids {
			if _, dup := sc.seen[id]; dup {
				continue
			}
			sc.seen[id] = struct{}{}
			rec, rerr := s.getRecord(id)
			if rerr != nil {
				err = rerr
				return false
			}
			if forward {
				rec.outs.addTo(dst)
			} else {
				rec.ins[inputIdx].addTo(dst)
			}
		}
		sc.cells = sc.cells[:0]
		return true
	}
	sc.forEachBatch(q, process)
	return err
}

// candidateIDs collects the distinct pair ids whose key-side bounding box
// intersects the query, by decomposing the query bitmap into covering
// rectangles and running one R-tree window query per rectangle.
func (s *Store) candidateIDs(q *bitmap.Bitmap, slot int, abort func() bool) (map[uint64]struct{}, error) {
	ids := make(map[uint64]struct{})
	tr := s.trees[slot]
	var err error
	q.IterateRects(func(r grid.Rect) bool {
		// One rect replaces a whole batch of point probes, so poll the
		// abort hook on every window query.
		if aborted(abort) {
			err = ErrAborted
			return false
		}
		tr.SearchRect(r, func(it rtree.Item) bool {
			ids[it.ID] = struct{}{}
			return true
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	return ids, nil
}

func (s *Store) backwardFullMany(q, dst *bitmap.Bitmap, inputIdx int, abort func() bool) error {
	ids, err := s.candidateIDs(q, 0, abort)
	if err != nil {
		return err
	}
	n := 0
	for id := range ids {
		if n++; n%abortCheckInterval == 0 && aborted(abort) {
			return ErrAborted
		}
		rec, err := s.getRecord(id)
		if err != nil {
			return err
		}
		if rec.outs.intersects(q) {
			rec.ins[inputIdx].addTo(dst)
		}
	}
	return nil
}

func (s *Store) backwardPayOne(sp *trace.Span, q, dst *bitmap.Bitmap, inputIdx int, mapp PayloadFn, covered *bitmap.Bitmap, abort func() bool) error {
	sc := getScratch()
	defer sc.release()
	var err error
	var buf []uint64
	n := 0
	process := func() bool {
		if len(sc.cells) == 0 {
			return true
		}
		if aborted(abort) {
			err = ErrAborted
			return false
		}
		sc.buildKeys(0)
		ksp := sp.Child("kvstore.GetBatch", obs.SpanKVProbe)
		ksp.SetAttrInt("keys", int64(len(sc.keys)))
		berr := kvstore.GetBatch(s.kv, sc.keys, func(i int, val []byte, ok bool) bool {
			if !ok {
				return true
			}
			// map_p dominates this path, so the abort hook is polled at
			// per-cell granularity inside the batch as well.
			if n++; n%abortCheckInterval == 0 && aborted(abort) {
				err = ErrAborted
				return false
			}
			cell := sc.cells[i]
			if perr := forEachPayload(val, func(p []byte) error {
				buf = mapp(cell, p, inputIdx, buf[:0])
				dst.SetCells(buf)
				return nil
			}); perr != nil {
				err = s.corruptf(perr)
				return false
			}
			if covered != nil {
				covered.Set(cell)
			}
			return true
		})
		ksp.End()
		if berr != nil && err == nil {
			err = berr
		}
		sc.cells = sc.cells[:0]
		return err == nil
	}
	sc.forEachBatch(q, process)
	return err
}

func (s *Store) backwardPayMany(q, dst *bitmap.Bitmap, inputIdx int, mapp PayloadFn, covered *bitmap.Bitmap, abort func() bool) error {
	ids, err := s.candidateIDs(q, 0, abort)
	if err != nil {
		return err
	}
	var buf []uint64
	n := 0
	for id := range ids {
		if n++; n%abortCheckInterval == 0 && aborted(abort) {
			return ErrAborted
		}
		rec, err := s.getRecord(id)
		if err != nil {
			return err
		}
		rec.outs.forEach(func(out uint64) bool {
			if !q.Get(out) {
				return true
			}
			buf = mapp(out, rec.payload, inputIdx, buf[:0])
			dst.SetCells(buf)
			if covered != nil {
				covered.Set(out)
			}
			return true
		})
	}
	return nil
}

// scanBackward answers a backward query against a forward-optimized store
// by scanning every record — the mismatched-index pathology of Figure 6(b).
func (s *Store) scanBackward(q, dst *bitmap.Bitmap, inputIdx int, abort func() bool) error {
	n := 0
	return s.scanRecords(func(id uint64, rec *record) (bool, error) {
		if n++; n%abortCheckInterval == 0 && aborted(abort) {
			return false, ErrAborted
		}
		if rec.outs.intersects(q) {
			rec.ins[inputIdx].addTo(dst)
		}
		return true, nil
	})
}

// Forward resolves the forward lineage of the query cells q (a bitmap over
// input inputIdx's space) into dst (a bitmap over the output space).
//
// Payload stores are never forward-optimized: the paper's forward query
// over payload lineage "must iterate through each (outcells, payload) pair
// and compute the input cells using map_p before it can be compared to the
// query coordinates" — that scan is implemented here.
func (s *Store) Forward(q, dst *bitmap.Bitmap, inputIdx int, mapp PayloadFn, abort func() bool) error {
	return s.ForwardSpan(nil, q, dst, inputIdx, mapp, abort)
}

// ForwardSpan is Forward under a trace span; see BackwardSpan.
func (s *Store) ForwardSpan(sp *trace.Span, q, dst *bitmap.Bitmap, inputIdx int, mapp PayloadFn, abort func() bool) error {
	if inputIdx < 0 || inputIdx >= len(s.inSpaces) {
		return fmt.Errorf("lineage: input index %d out of range (%d inputs)", inputIdx, len(s.inSpaces))
	}
	if (s.strat.Mode == Pay || s.strat.Mode == Comp) && mapp == nil {
		return fmt.Errorf("lineage: %s store requires a payload mapping function", s.strat)
	}
	release, err := s.beginRead()
	if err != nil {
		return err
	}
	defer release()
	switch {
	case s.strat.Mode == Pay || s.strat.Mode == Comp:
		if s.strat.Enc == One {
			return s.forwardPayOneScan(q, dst, inputIdx, mapp, abort)
		}
		return s.forwardPayManyScan(q, dst, inputIdx, mapp, abort)
	case s.strat.Orient == BackwardOpt:
		// Mismatched orientation for full lineage: scan records.
		n := 0
		return s.scanRecords(func(id uint64, rec *record) (bool, error) {
			if n++; n%abortCheckInterval == 0 && aborted(abort) {
				return false, ErrAborted
			}
			if rec.ins[inputIdx].intersects(q) {
				rec.outs.addTo(dst)
			}
			return true, nil
		})
	case s.strat.Enc == One:
		return s.lookupFullOne(sp, q, dst, inputIdx, inputIdx, true, abort)
	default:
		return s.forwardFullMany(q, dst, inputIdx, abort)
	}
}

func (s *Store) forwardFullMany(q, dst *bitmap.Bitmap, inputIdx int, abort func() bool) error {
	ids, err := s.candidateIDs(q, inputIdx, abort)
	if err != nil {
		return err
	}
	n := 0
	for id := range ids {
		if n++; n%abortCheckInterval == 0 && aborted(abort) {
			return ErrAborted
		}
		rec, err := s.getRecord(id)
		if err != nil {
			return err
		}
		if rec.ins[inputIdx].intersects(q) {
			rec.outs.addTo(dst)
		}
	}
	return nil
}

// errPayloadHit stops a payload scan early once the current cell is
// established in the result.
var errPayloadHit = errors.New("lineage: payload scan hit")

func (s *Store) forwardPayOneScan(q, dst *bitmap.Bitmap, inputIdx int, mapp PayloadFn, abort func() bool) error {
	var buf []uint64
	n := 0
	return s.scanCellEntries(0, func(cell uint64, val []byte) (bool, error) {
		if n++; n%abortCheckInterval == 0 && aborted(abort) {
			return false, ErrAborted
		}
		if dst.Get(cell) {
			return true, nil // already established
		}
		err := forEachPayload(val, func(p []byte) error {
			buf = mapp(cell, p, inputIdx, buf[:0])
			if anyInBitmap(buf, q) {
				dst.Set(cell)
				return errPayloadHit
			}
			return nil
		})
		if err != nil && !errors.Is(err, errPayloadHit) {
			return false, s.corruptf(err)
		}
		return true, nil
	})
}

func (s *Store) forwardPayManyScan(q, dst *bitmap.Bitmap, inputIdx int, mapp PayloadFn, abort func() bool) error {
	var buf []uint64
	n := 0
	return s.scanRecords(func(id uint64, rec *record) (bool, error) {
		if n++; n%abortCheckInterval == 0 && aborted(abort) {
			return false, ErrAborted
		}
		rec.outs.forEach(func(out uint64) bool {
			if dst.Get(out) {
				return true
			}
			buf = mapp(out, rec.payload, inputIdx, buf[:0])
			if anyInBitmap(buf, q) {
				dst.Set(out)
			}
			return true
		})
		return true, nil
	})
}

// ContainsOut reports whether an output cell is covered by any stored
// (payload) pair. The query executor uses it to decide which output cells
// of a composite operator keep their default mapping on the forward path.
func (s *Store) ContainsOut(cell uint64) (bool, error) {
	release, err := s.beginRead()
	if err != nil {
		return false, err
	}
	defer release()
	if s.strat.Enc == One {
		_, ok, err := s.kv.Get(cellKey(0, cell))
		return ok, err
	}
	coord := s.outSpace.Unravel(cell)
	found := false
	var ferr error
	s.trees[0].SearchPoint(coord, func(it rtree.Item) bool {
		rec, err := s.getRecord(it.ID)
		if err != nil {
			ferr = err
			return false
		}
		if rec.outs.contains(cell) {
			found = true
			return false
		}
		return true
	})
	return found, ferr
}

func aborted(abort func() bool) bool { return abort != nil && abort() }

func intersectsBitmap(cells []uint64, b *bitmap.Bitmap) bool {
	for _, c := range cells {
		if b.Get(c) {
			return true
		}
	}
	return false
}

func anyInBitmap(cells []uint64, b *bitmap.Bitmap) bool { return intersectsBitmap(cells, b) }
