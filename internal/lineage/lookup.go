package lineage

import (
	"fmt"

	"subzero/internal/bitmap"
	"subzero/internal/grid"
	"subzero/internal/rtree"
)

// Backward resolves the backward lineage of the query cells q (a bitmap
// over the operator's output space) into input inputIdx, OR-ing the result
// into dst (a bitmap over that input's space).
//
// mapp is the operator's payload mapping function; it is required for Pay
// and Comp stores and ignored otherwise. If covered is non-nil, every
// query cell answered by a stored (payload) pair is marked in it — the
// query executor uses this to apply the composite default mapping to the
// remaining cells. abort, if non-nil, is polled periodically; returning
// true cancels the lookup with ErrAborted (the query-time optimizer's
// dynamic fallback hook).
func (s *Store) Backward(q, dst *bitmap.Bitmap, inputIdx int, mapp PayloadFn, covered *bitmap.Bitmap, abort func() bool) error {
	if inputIdx < 0 || inputIdx >= len(s.inSpaces) {
		return fmt.Errorf("lineage: input index %d out of range (%d inputs)", inputIdx, len(s.inSpaces))
	}
	if (s.strat.Mode == Pay || s.strat.Mode == Comp) && mapp == nil {
		return fmt.Errorf("lineage: %s store requires a payload mapping function", s.strat)
	}
	if err := s.flushPending(); err != nil {
		return err
	}
	if s.strat.Orient == ForwardOpt {
		// Mismatched orientation: fall back to a full scan of records.
		return s.scanBackward(q, dst, inputIdx, abort)
	}
	switch {
	case s.strat.Enc == One && s.strat.Mode == Full:
		return s.backwardFullOne(q, dst, inputIdx, abort)
	case s.strat.Enc == Many && s.strat.Mode == Full:
		return s.backwardFullMany(q, dst, inputIdx, abort)
	case s.strat.Enc == One:
		return s.backwardPayOne(q, dst, inputIdx, mapp, covered, abort)
	default:
		return s.backwardPayMany(q, dst, inputIdx, mapp, covered, abort)
	}
}

func (s *Store) backwardFullOne(q, dst *bitmap.Bitmap, inputIdx int, abort func() bool) error {
	var err error
	n := 0
	q.Iterate(func(cell uint64) bool {
		if n++; n%abortCheckInterval == 0 && aborted(abort) {
			err = ErrAborted
			return false
		}
		val, ok, gerr := s.kv.Get(cellKey(0, cell))
		if gerr != nil {
			err = gerr
			return false
		}
		if !ok {
			return true
		}
		ids, derr := decodeIDList(val)
		if derr != nil {
			err = derr
			return false
		}
		for _, id := range ids {
			rec, rerr := s.getRecord(id)
			if rerr != nil {
				err = rerr
				return false
			}
			dst.SetCells(rec.ins[inputIdx])
		}
		return true
	})
	return err
}

// candidateIDs collects the distinct pair ids whose key-side bounding box
// contains any query cell, via per-cell point queries on the slot's R-tree.
func (s *Store) candidateIDs(q *bitmap.Bitmap, slot int, abort func() bool) (map[uint64]struct{}, error) {
	ids := make(map[uint64]struct{})
	tr := s.trees[slot]
	space := s.slotSpace(slot)
	coord := make(grid.Coord, space.Rank())
	var err error
	n := 0
	q.Iterate(func(cell uint64) bool {
		if n++; n%abortCheckInterval == 0 && aborted(abort) {
			err = ErrAborted
			return false
		}
		space.UnravelInto(cell, coord)
		tr.SearchPoint(coord, func(it rtree.Item) bool {
			ids[it.ID] = struct{}{}
			return true
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	return ids, nil
}

func (s *Store) backwardFullMany(q, dst *bitmap.Bitmap, inputIdx int, abort func() bool) error {
	ids, err := s.candidateIDs(q, 0, abort)
	if err != nil {
		return err
	}
	for id := range ids {
		rec, err := s.getRecord(id)
		if err != nil {
			return err
		}
		if intersectsBitmap(rec.outs, q) {
			dst.SetCells(rec.ins[inputIdx])
		}
	}
	return nil
}

func (s *Store) backwardPayOne(q, dst *bitmap.Bitmap, inputIdx int, mapp PayloadFn, covered *bitmap.Bitmap, abort func() bool) error {
	var err error
	var buf []uint64
	n := 0
	q.Iterate(func(cell uint64) bool {
		if n++; n%abortCheckInterval == 0 && aborted(abort) {
			err = ErrAborted
			return false
		}
		val, ok, gerr := s.kv.Get(cellKey(0, cell))
		if gerr != nil {
			err = gerr
			return false
		}
		if !ok {
			return true
		}
		payloads, derr := decodePayloadList(val)
		if derr != nil {
			err = derr
			return false
		}
		for _, p := range payloads {
			buf = mapp(cell, p, inputIdx, buf[:0])
			dst.SetCells(buf)
		}
		if covered != nil {
			covered.Set(cell)
		}
		return true
	})
	return err
}

func (s *Store) backwardPayMany(q, dst *bitmap.Bitmap, inputIdx int, mapp PayloadFn, covered *bitmap.Bitmap, abort func() bool) error {
	ids, err := s.candidateIDs(q, 0, abort)
	if err != nil {
		return err
	}
	var buf []uint64
	for id := range ids {
		rec, err := s.getRecord(id)
		if err != nil {
			return err
		}
		for _, out := range rec.outs {
			if !q.Get(out) {
				continue
			}
			buf = mapp(out, rec.payload, inputIdx, buf[:0])
			dst.SetCells(buf)
			if covered != nil {
				covered.Set(out)
			}
		}
	}
	return nil
}

// scanBackward answers a backward query against a forward-optimized store
// by scanning every record — the mismatched-index pathology of Figure 6(b).
func (s *Store) scanBackward(q, dst *bitmap.Bitmap, inputIdx int, abort func() bool) error {
	n := 0
	return s.scanRecords(func(id uint64, rec *record) (bool, error) {
		if n++; n%abortCheckInterval == 0 && aborted(abort) {
			return false, ErrAborted
		}
		if intersectsBitmap(rec.outs, q) {
			dst.SetCells(rec.ins[inputIdx])
		}
		return true, nil
	})
}

// Forward resolves the forward lineage of the query cells q (a bitmap over
// input inputIdx's space) into dst (a bitmap over the output space).
//
// Payload stores are never forward-optimized: the paper's forward query
// over payload lineage "must iterate through each (outcells, payload) pair
// and compute the input cells using map_p before it can be compared to the
// query coordinates" — that scan is implemented here.
func (s *Store) Forward(q, dst *bitmap.Bitmap, inputIdx int, mapp PayloadFn, abort func() bool) error {
	if inputIdx < 0 || inputIdx >= len(s.inSpaces) {
		return fmt.Errorf("lineage: input index %d out of range (%d inputs)", inputIdx, len(s.inSpaces))
	}
	if (s.strat.Mode == Pay || s.strat.Mode == Comp) && mapp == nil {
		return fmt.Errorf("lineage: %s store requires a payload mapping function", s.strat)
	}
	if err := s.flushPending(); err != nil {
		return err
	}
	switch {
	case s.strat.Mode == Pay || s.strat.Mode == Comp:
		if s.strat.Enc == One {
			return s.forwardPayOneScan(q, dst, inputIdx, mapp, abort)
		}
		return s.forwardPayManyScan(q, dst, inputIdx, mapp, abort)
	case s.strat.Orient == BackwardOpt:
		// Mismatched orientation for full lineage: scan records.
		n := 0
		return s.scanRecords(func(id uint64, rec *record) (bool, error) {
			if n++; n%abortCheckInterval == 0 && aborted(abort) {
				return false, ErrAborted
			}
			if intersectsBitmap(rec.ins[inputIdx], q) {
				dst.SetCells(rec.outs)
			}
			return true, nil
		})
	case s.strat.Enc == One:
		return s.forwardFullOne(q, dst, inputIdx, abort)
	default:
		return s.forwardFullMany(q, dst, inputIdx, abort)
	}
}

func (s *Store) forwardFullOne(q, dst *bitmap.Bitmap, inputIdx int, abort func() bool) error {
	var err error
	n := 0
	q.Iterate(func(cell uint64) bool {
		if n++; n%abortCheckInterval == 0 && aborted(abort) {
			err = ErrAborted
			return false
		}
		val, ok, gerr := s.kv.Get(cellKey(inputIdx, cell))
		if gerr != nil {
			err = gerr
			return false
		}
		if !ok {
			return true
		}
		ids, derr := decodeIDList(val)
		if derr != nil {
			err = derr
			return false
		}
		for _, id := range ids {
			rec, rerr := s.getRecord(id)
			if rerr != nil {
				err = rerr
				return false
			}
			dst.SetCells(rec.outs)
		}
		return true
	})
	return err
}

func (s *Store) forwardFullMany(q, dst *bitmap.Bitmap, inputIdx int, abort func() bool) error {
	ids, err := s.candidateIDs(q, inputIdx, abort)
	if err != nil {
		return err
	}
	for id := range ids {
		rec, err := s.getRecord(id)
		if err != nil {
			return err
		}
		if intersectsBitmap(rec.ins[inputIdx], q) {
			dst.SetCells(rec.outs)
		}
	}
	return nil
}

func (s *Store) forwardPayOneScan(q, dst *bitmap.Bitmap, inputIdx int, mapp PayloadFn, abort func() bool) error {
	var buf []uint64
	n := 0
	return s.scanCellEntries(0, func(cell uint64, val []byte) (bool, error) {
		if n++; n%abortCheckInterval == 0 && aborted(abort) {
			return false, ErrAborted
		}
		if dst.Get(cell) {
			return true, nil // already established
		}
		payloads, err := decodePayloadList(val)
		if err != nil {
			return false, err
		}
		for _, p := range payloads {
			buf = mapp(cell, p, inputIdx, buf[:0])
			if anyInBitmap(buf, q) {
				dst.Set(cell)
				break
			}
		}
		return true, nil
	})
}

func (s *Store) forwardPayManyScan(q, dst *bitmap.Bitmap, inputIdx int, mapp PayloadFn, abort func() bool) error {
	var buf []uint64
	n := 0
	return s.scanRecords(func(id uint64, rec *record) (bool, error) {
		if n++; n%abortCheckInterval == 0 && aborted(abort) {
			return false, ErrAborted
		}
		for _, out := range rec.outs {
			if dst.Get(out) {
				continue
			}
			buf = mapp(out, rec.payload, inputIdx, buf[:0])
			if anyInBitmap(buf, q) {
				dst.Set(out)
			}
		}
		return true, nil
	})
}

// ContainsOut reports whether an output cell is covered by any stored
// (payload) pair. The query executor uses it to decide which output cells
// of a composite operator keep their default mapping on the forward path.
func (s *Store) ContainsOut(cell uint64) (bool, error) {
	if err := s.flushPending(); err != nil {
		return false, err
	}
	if s.strat.Enc == One {
		_, ok, err := s.kv.Get(cellKey(0, cell))
		return ok, err
	}
	coord := s.outSpace.Unravel(cell)
	found := false
	var ferr error
	s.trees[0].SearchPoint(coord, func(it rtree.Item) bool {
		rec, err := s.getRecord(it.ID)
		if err != nil {
			ferr = err
			return false
		}
		if grid.ContainsSorted(rec.outs, cell) {
			found = true
			return false
		}
		return true
	})
	return found, ferr
}

func aborted(abort func() bool) bool { return abort != nil && abort() }

func intersectsBitmap(cells []uint64, b *bitmap.Bitmap) bool {
	for _, c := range cells {
		if b.Get(c) {
			return true
		}
	}
	return false
}

func anyInBitmap(cells []uint64, b *bitmap.Bitmap) bool { return intersectsBitmap(cells, b) }
