package lineage

import (
	"fmt"

	"subzero/internal/grid"
)

// RegionPair is the unit of region lineage (paper §IV): an all-to-all
// relationship between a set of output cells and one set of input cells
// per operator input, or — for payload lineage — between a set of output
// cells and an opaque payload interpreted by the operator's map_p.
//
// Cell sets are sorted, deduplicated row-major linear indices within their
// array's space.
type RegionPair struct {
	// Out is the set of output cells.
	Out []uint64
	// Ins holds one input cell set per operator input; nil for payload
	// pairs.
	Ins [][]uint64
	// Payload is the operator-defined blob for Pay/Comp lineage; nil for
	// full pairs.
	Payload []byte
}

// IsPayload reports whether the pair carries a payload instead of explicit
// input cells.
func (rp *RegionPair) IsPayload() bool { return rp.Ins == nil }

// Normalize sorts and deduplicates all cell sets in place.
func (rp *RegionPair) Normalize() {
	rp.Out = grid.SortCells(rp.Out)
	for i := range rp.Ins {
		rp.Ins[i] = grid.SortCells(rp.Ins[i])
	}
}

// Validate checks the pair against the operator's output/input spaces.
// Sets must be sorted (call Normalize first) and in range.
func (rp *RegionPair) Validate(outSpace *grid.Space, inSpaces []*grid.Space) error {
	if len(rp.Out) == 0 {
		return fmt.Errorf("lineage: region pair with empty output set")
	}
	if rp.Payload != nil && rp.Ins != nil {
		return fmt.Errorf("lineage: region pair has both payload and input cells")
	}
	if err := checkCells(rp.Out, outSpace.Size(), "output"); err != nil {
		return err
	}
	if rp.Ins != nil {
		if len(rp.Ins) != len(inSpaces) {
			return fmt.Errorf("lineage: region pair has %d input sets, operator has %d inputs",
				len(rp.Ins), len(inSpaces))
		}
		for i, in := range rp.Ins {
			if err := checkCells(in, inSpaces[i].Size(), fmt.Sprintf("input %d", i)); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkCells(cells []uint64, size uint64, what string) error {
	for i, c := range cells {
		if c >= size {
			return fmt.Errorf("lineage: %s cell %d out of range (size %d)", what, c, size)
		}
		if i > 0 && cells[i-1] >= c {
			return fmt.Errorf("lineage: %s cells not sorted/deduplicated", what)
		}
	}
	return nil
}

// CellCount returns the total number of cells referenced by the pair, used
// by the statistics collector for fan-in/fan-out accounting.
func (rp *RegionPair) CellCount() (out, in int) {
	out = len(rp.Out)
	for _, s := range rp.Ins {
		in += len(s)
	}
	return out, in
}

// Clone deep-copies the pair.
func (rp *RegionPair) Clone() RegionPair {
	c := RegionPair{Out: append([]uint64(nil), rp.Out...)}
	if rp.Ins != nil {
		c.Ins = make([][]uint64, len(rp.Ins))
		for i, s := range rp.Ins {
			c.Ins[i] = append([]uint64(nil), s...)
		}
	}
	if rp.Payload != nil {
		c.Payload = append([]byte(nil), rp.Payload...)
	}
	return c
}

// PayloadFn recomputes the input cells of input inputIdx for one output
// cell given the pair's payload — the operator's map_p (paper §V-A3).
// Implementations append to dst and return the extended slice; results
// need not be sorted.
type PayloadFn func(outCell uint64, payload []byte, inputIdx int, dst []uint64) []uint64
