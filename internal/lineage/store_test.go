package lineage

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"subzero/internal/binenc"
	"subzero/internal/bitmap"
	"subzero/internal/grid"
	"subzero/internal/kvstore"
)

// Test fixture: a fake 2-input operator over a 20x20 output, with input 0
// shaped 20x20 and input 1 shaped 8x8.
var (
	tOutSpace = grid.NewSpace(grid.Shape{20, 20})
	tInSpaces = []*grid.Space{grid.NewSpace(grid.Shape{20, 20}), grid.NewSpace(grid.Shape{8, 8})}
)

// testPayload encodes explicit input cell sets into a payload blob so the
// payload path can be checked against the same reference as full lineage.
func testPayload(ins [][]uint64) []byte {
	var buf []byte
	for _, in := range ins {
		buf = binenc.AppendCellSet(buf, in)
	}
	return buf
}

// testMapP is the operator's map_p: decode the inputIdx'th cell set.
func testMapP(_ uint64, payload []byte, inputIdx int, dst []uint64) []uint64 {
	off := 0
	for i := 0; ; i++ {
		cells, n, err := binenc.DecodeCellSet(payload[off:])
		if err != nil {
			panic(err)
		}
		if i == inputIdx {
			return append(dst, cells...)
		}
		off += n
	}
}

// randomPairs generates region pairs with clustered cells.
func randomPairs(rng *rand.Rand, n int) []RegionPair {
	pairs := make([]RegionPair, 0, n)
	for p := 0; p < n; p++ {
		rp := RegionPair{}
		nOut := 1 + rng.Intn(6)
		base := rng.Intn(int(tOutSpace.Size()) - 25)
		for i := 0; i < nOut; i++ {
			rp.Out = append(rp.Out, uint64(base+rng.Intn(25)))
		}
		rp.Ins = make([][]uint64, 2)
		nIn0 := 1 + rng.Intn(8)
		base0 := rng.Intn(int(tInSpaces[0].Size()) - 30)
		for i := 0; i < nIn0; i++ {
			rp.Ins[0] = append(rp.Ins[0], uint64(base0+rng.Intn(30)))
		}
		if rng.Intn(4) > 0 { // input 1 sometimes unused
			nIn1 := 1 + rng.Intn(4)
			for i := 0; i < nIn1; i++ {
				rp.Ins[1] = append(rp.Ins[1], uint64(rng.Intn(int(tInSpaces[1].Size()))))
			}
		}
		rp.Normalize()
		pairs = append(pairs, rp)
	}
	return pairs
}

// Reference implementations.
func refBackward(pairs []RegionPair, q *bitmap.Bitmap, inputIdx int) *bitmap.Bitmap {
	dst := bitmap.New(tInSpaces[inputIdx])
	for _, rp := range pairs {
		hit := false
		for _, o := range rp.Out {
			if q.Get(o) {
				hit = true
				break
			}
		}
		if hit {
			dst.SetCells(rp.Ins[inputIdx])
		}
	}
	return dst
}

func refForward(pairs []RegionPair, q *bitmap.Bitmap, inputIdx int) *bitmap.Bitmap {
	dst := bitmap.New(tOutSpace)
	for _, rp := range pairs {
		hit := false
		for _, c := range rp.Ins[inputIdx] {
			if q.Get(c) {
				hit = true
				break
			}
		}
		if hit {
			dst.SetCells(rp.Out)
		}
	}
	return dst
}

func bitmapsEqual(a, b *bitmap.Bitmap) bool {
	if a.Count() != b.Count() {
		return false
	}
	eq := true
	a.Iterate(func(idx uint64) bool {
		if !b.Get(idx) {
			eq = false
		}
		return eq
	})
	return eq
}

// toStorePairs converts full pairs into the representation a given mode
// stores (payload pairs for Pay/Comp).
func toStorePairs(strat Strategy, pairs []RegionPair) []RegionPair {
	if strat.Mode == Full {
		return pairs
	}
	out := make([]RegionPair, len(pairs))
	for i, rp := range pairs {
		out[i] = RegionPair{Out: rp.Out, Payload: testPayload(rp.Ins)}
	}
	return out
}

func allStoreStrategies() []Strategy {
	return []Strategy{
		StratFullOne, StratFullMany, StratFullOneFwd, StratFullManyFwd,
		StratPayOne, StratPayMany, StratCompOne, StratCompMany,
	}
}

func randomQuery(rng *rand.Rand, space *grid.Space, n int) *bitmap.Bitmap {
	q := bitmap.New(space)
	for i := 0; i < n; i++ {
		q.Set(uint64(rng.Intn(int(space.Size()))))
	}
	return q
}

// TestStoreEquivalence is the core correctness test: every storage
// strategy must answer backward and forward queries identically to the
// brute-force reference, for matched AND mismatched orientations, on both
// store backends.
func TestStoreEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pairs := randomPairs(rng, 120)

	for _, backend := range []string{"mem", "file"} {
		for _, strat := range allStoreStrategies() {
			t.Run(fmt.Sprintf("%s/%s", backend, strat.ID()), func(t *testing.T) {
				var kv kvstore.Store
				if backend == "mem" {
					kv = kvstore.NewMem()
				} else {
					fs, err := kvstore.OpenFile(filepath.Join(t.TempDir(), "s.log"))
					if err != nil {
						t.Fatal(err)
					}
					defer fs.Close()
					kv = fs
				}
				st, err := OpenStore(kv, strat, tOutSpace, tInSpaces)
				if err != nil {
					t.Fatal(err)
				}
				if err := st.WritePairs(toStorePairs(strat, pairs)); err != nil {
					t.Fatal(err)
				}
				if err := st.Flush(); err != nil {
					t.Fatal(err)
				}
				if st.NumPairs() != len(pairs) {
					t.Fatalf("NumPairs=%d, want %d", st.NumPairs(), len(pairs))
				}
				if st.SizeBytes() <= 0 {
					t.Fatal("SizeBytes not positive after flush")
				}

				qrng := rand.New(rand.NewSource(7))
				for trial := 0; trial < 20; trial++ {
					for inputIdx := 0; inputIdx < 2; inputIdx++ {
						// Backward.
						q := randomQuery(qrng, tOutSpace, 1+qrng.Intn(30))
						want := refBackward(pairs, q, inputIdx)
						got := bitmap.New(tInSpaces[inputIdx])
						if err := st.Backward(q, got, inputIdx, testMapP, nil, nil); err != nil {
							t.Fatal(err)
						}
						if !bitmapsEqual(got, want) {
							t.Fatalf("backward input %d: got %d cells, want %d", inputIdx, got.Count(), want.Count())
						}
						// Forward.
						qf := randomQuery(qrng, tInSpaces[inputIdx], 1+qrng.Intn(20))
						wantF := refForward(pairs, qf, inputIdx)
						gotF := bitmap.New(tOutSpace)
						if err := st.Forward(qf, gotF, inputIdx, testMapP, nil); err != nil {
							t.Fatal(err)
						}
						if !bitmapsEqual(gotF, wantF) {
							t.Fatalf("forward input %d: got %d cells, want %d", inputIdx, gotF.Count(), wantF.Count())
						}
					}
				}
			})
		}
	}
}

// TestStoreReopen verifies that a file-backed store answers identically
// after closing and reopening (index and metadata persistence).
func TestStoreReopen(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pairs := randomPairs(rng, 60)
	q := randomQuery(rand.New(rand.NewSource(9)), tOutSpace, 25)

	for _, strat := range allStoreStrategies() {
		t.Run(strat.ID(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "s.log")
			fs, err := kvstore.OpenFile(path)
			if err != nil {
				t.Fatal(err)
			}
			st, err := OpenStore(fs, strat, tOutSpace, tInSpaces)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.WritePairs(toStorePairs(strat, pairs)); err != nil {
				t.Fatal(err)
			}
			if err := st.Flush(); err != nil {
				t.Fatal(err)
			}
			want := bitmap.New(tInSpaces[0])
			if err := st.Backward(q, want, 0, testMapP, nil, nil); err != nil {
				t.Fatal(err)
			}
			wantPairs := st.NumPairs()
			if err := fs.Close(); err != nil {
				t.Fatal(err)
			}

			fs2, err := kvstore.OpenFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer fs2.Close()
			st2, err := OpenStore(fs2, strat, tOutSpace, tInSpaces)
			if err != nil {
				t.Fatal(err)
			}
			if st2.NumPairs() != wantPairs {
				t.Fatalf("reopened NumPairs=%d, want %d", st2.NumPairs(), wantPairs)
			}
			got := bitmap.New(tInSpaces[0])
			if err := st2.Backward(q, got, 0, testMapP, nil, nil); err != nil {
				t.Fatal(err)
			}
			if !bitmapsEqual(got, want) {
				t.Fatal("reopened store answers differently")
			}
		})
	}
}

func TestPayCoverageReporting(t *testing.T) {
	kv := kvstore.NewMem()
	for _, strat := range []Strategy{StratPayOne, StratPayMany, StratCompOne, StratCompMany} {
		st, err := OpenStore(kv, strat, tOutSpace, tInSpaces)
		if err != nil {
			t.Fatal(err)
		}
		pair := RegionPair{Out: []uint64{3, 4}, Payload: testPayload([][]uint64{{10}, {}})}
		if err := st.WritePairs([]RegionPair{pair}); err != nil {
			t.Fatal(err)
		}
		q := bitmap.FromCells(tOutSpace, []uint64{3, 7}) // 3 covered, 7 not
		dst := bitmap.New(tInSpaces[0])
		covered := bitmap.New(tOutSpace)
		if err := st.Backward(q, dst, 0, testMapP, covered, nil); err != nil {
			t.Fatal(err)
		}
		if !covered.Get(3) || covered.Get(7) || covered.Get(4) {
			t.Fatalf("%s: coverage wrong: covered(3)=%v covered(7)=%v", strat, covered.Get(3), covered.Get(7))
		}
		if !dst.Get(10) || dst.Count() != 1 {
			t.Fatalf("%s: backward result wrong", strat)
		}
		kv = kvstore.NewMem() // fresh for next strategy
	}
}

func TestContainsOut(t *testing.T) {
	for _, strat := range []Strategy{StratPayOne, StratPayMany} {
		kv := kvstore.NewMem()
		st, err := OpenStore(kv, strat, tOutSpace, tInSpaces)
		if err != nil {
			t.Fatal(err)
		}
		pair := RegionPair{Out: []uint64{5, 17}, Payload: testPayload([][]uint64{{1}, {}})}
		if err := st.WritePairs([]RegionPair{pair}); err != nil {
			t.Fatal(err)
		}
		for cell, want := range map[uint64]bool{5: true, 17: true, 6: false, 399: false} {
			got, err := st.ContainsOut(cell)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s: ContainsOut(%d)=%v, want %v", strat, cell, got, want)
			}
		}
	}
}

func TestStoreAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pairs := randomPairs(rng, 200)
	abort := func() bool { return true }
	fullQ := bitmap.New(tOutSpace)
	fullQ.SetAll()

	for _, strat := range allStoreStrategies() {
		kv := kvstore.NewMem()
		st, err := OpenStore(kv, strat, tOutSpace, tInSpaces)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.WritePairs(toStorePairs(strat, pairs)); err != nil {
			t.Fatal(err)
		}
		dst := bitmap.New(tInSpaces[0])
		if err := st.Backward(fullQ, dst, 0, testMapP, nil, abort); err != ErrAborted {
			t.Fatalf("%s: backward abort err=%v, want ErrAborted", strat, err)
		}
	}
}

func TestStoreRejectsWrongPairKind(t *testing.T) {
	kv := kvstore.NewMem()
	full, _ := OpenStore(kv, StratFullOne, tOutSpace, tInSpaces)
	if err := full.WritePairs([]RegionPair{{Out: []uint64{1}, Payload: []byte{1}}}); err == nil {
		t.Fatal("full store accepted payload pair")
	}
	pay, _ := OpenStore(kvstore.NewMem(), StratPayOne, tOutSpace, tInSpaces)
	if err := pay.WritePairs([]RegionPair{{Out: []uint64{1}, Ins: [][]uint64{{0}, {}}}}); err == nil {
		t.Fatal("payload store accepted full pair")
	}
}

func TestOpenStoreValidation(t *testing.T) {
	kv := kvstore.NewMem()
	if _, err := OpenStore(kv, StratBlackbox, tOutSpace, tInSpaces); err == nil {
		t.Fatal("blackbox store opened")
	}
	if _, err := OpenStore(kv, StratMap, tOutSpace, tInSpaces); err == nil {
		t.Fatal("map store opened")
	}
	if _, err := OpenStore(kv, StratFullOne, tOutSpace, nil); err == nil {
		t.Fatal("store with no inputs opened")
	}
}

func TestStoreInputIndexRange(t *testing.T) {
	st, _ := OpenStore(kvstore.NewMem(), StratFullOne, tOutSpace, tInSpaces)
	q := bitmap.New(tOutSpace)
	dst := bitmap.New(tInSpaces[0])
	if err := st.Backward(q, dst, 5, nil, nil, nil); err == nil {
		t.Fatal("out-of-range input accepted")
	}
	if err := st.Forward(q, dst, -1, nil, nil); err == nil {
		t.Fatal("negative input accepted")
	}
}

// Key collisions: the same output cell written by many pairs must
// accumulate all of them (One encodings merge id/payload lists).
func TestStoreKeyCollisions(t *testing.T) {
	for _, strat := range []Strategy{StratFullOne, StratPayOne} {
		kv := kvstore.NewMem()
		st, err := OpenStore(kv, strat, tOutSpace, tInSpaces)
		if err != nil {
			t.Fatal(err)
		}
		var pairs []RegionPair
		for i := 0; i < 10; i++ {
			full := RegionPair{Out: []uint64{7}, Ins: [][]uint64{{uint64(i)}, {}}}
			pairs = append(pairs, full)
		}
		if err := st.WritePairs(toStorePairs(strat, pairs)); err != nil {
			t.Fatal(err)
		}
		// Force multiple pending flushes to also exercise kv-merge.
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
		more := RegionPair{Out: []uint64{7}, Ins: [][]uint64{{99}, {}}}
		if err := st.WritePairs(toStorePairs(strat, []RegionPair{more})); err != nil {
			t.Fatal(err)
		}
		q := bitmap.FromCells(tOutSpace, []uint64{7})
		dst := bitmap.New(tInSpaces[0])
		if err := st.Backward(q, dst, 0, testMapP, nil, nil); err != nil {
			t.Fatal(err)
		}
		if dst.Count() != 11 {
			t.Fatalf("%s: collision lost lineage: %d cells, want 11", strat, dst.Count())
		}
	}
}

func TestStoreStatsAccumulate(t *testing.T) {
	st, _ := OpenStore(kvstore.NewMem(), StratFullOne, tOutSpace, tInSpaces)
	pairs := []RegionPair{
		{Out: []uint64{1, 2}, Ins: [][]uint64{{3, 4, 5}, {0}}},
		{Out: []uint64{9}, Ins: [][]uint64{{6}, {}}},
	}
	if err := st.WritePairs(pairs); err != nil {
		t.Fatal(err)
	}
	got := st.Stats()
	if got.Pairs != 2 || got.OutCells != 3 || got.InCells != 5 {
		t.Fatalf("stats=%+v", got)
	}
}
