package lineage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"subzero/internal/fault"
	"subzero/internal/grid"
	"subzero/internal/kvstore"
	"subzero/internal/rtree"
)

// ErrAborted is returned by store lookups cancelled by the query-time
// optimizer when materialized-lineage access exceeds its budget and the
// executor falls back to re-running the operator (paper §VII-A).
var ErrAborted = errors.New("lineage: lookup aborted by query-time optimizer")

// ErrCorrupt marks a CRC/decode failure discovered at lookup time: a
// record the hashtable returned but the codec cannot make sense of, or a
// per-cell entry referencing a pair id the store does not hold. Lookups
// returning it have already marked the store degraded; the query executor
// answers via operator re-execution (the same fallback as ErrAborted) and
// the system schedules a background rebuild. Lineage is a recoverable
// cache — corruption degrades one store, never the daemon.
var ErrCorrupt = errors.New("lineage: store corrupt")

// fpDecode injects a decode failure at the record-lookup site, simulating
// the corruption a bit-flip or software bug would produce past the kv
// layer's CRC.
var fpDecode = fault.Register("lineage/lookup/decode")

// StoreStats aggregates what the statistics collector records about one
// store's write path; the optimizer's cost model is calibrated from these.
//
// With the sharded ingest pipeline the write path has two sides, and the
// stats keep them apart: WriteTime is the total encode+commit work summed
// across every writer (one thread when serial, N shard workers when
// sharded), while EnqueueTime and FlushTime are the only parts the
// operator's own thread pays under async ingest — the handoff (including
// backpressure stalls) and the end-of-run drain barrier.
type StoreStats struct {
	Pairs        int
	OutCells     int64
	InCells      int64
	PayloadBytes int64
	WriteTime    time.Duration // encode+commit work, summed across shard workers
	EnqueueTime  time.Duration // operator-thread handoff incl. backpressure stalls
	FlushTime    time.Duration // operator-thread drain barrier + final flush
	Shards       int           // shard workers that built the store (0 = serial)
}

// OperatorTime returns the write-path time spent on the operator's own
// thread — the capture overhead the paper's optimizer trades against
// query speed. Serial stores pay the full WriteTime inline; sharded
// stores pay only the enqueue and drain costs.
func (ss StoreStats) OperatorTime() time.Duration {
	if ss.Shards > 0 {
		return ss.EnqueueTime + ss.FlushTime
	}
	return ss.WriteTime
}

// CriticalWriteTime estimates the wall-clock the strategy adds to a
// workflow run: for sharded ingest the encode work spreads across Shards
// workers while the operator thread pays enqueue + drain, so the critical
// path is the larger of the two; serial stores pay WriteTime inline. The
// strategy optimizer costs runtime overhead from this instead of the raw
// serial WriteTime.
func (ss StoreStats) CriticalWriteTime() time.Duration {
	if ss.Shards > 1 {
		perShard := ss.WriteTime / time.Duration(ss.Shards)
		op := ss.EnqueueTime + ss.FlushTime
		if perShard > op {
			return perShard
		}
		return op
	}
	return ss.WriteTime
}

// Store holds the materialized region lineage of a single operator
// instance under a single strategy — one "operator specific datastore" of
// the paper's architecture. It encodes region pairs into a kvstore
// hashtable according to the strategy's encoding and orientation, and
// serves backward/forward lookups over them.
//
// The store is split into an immutable read side and a write side. The
// read side (Backward, Forward, ContainsOut) is safe for concurrent use.
// The write side has two modes: the synchronous path (WritePairs, called
// from one goroutine, never overlapping lookups — the pre-pipeline
// contract) and the sharded ingest path, where a Coordinator's shard
// workers call ingestBatch concurrently with each other AND with lookups.
// For that mode liveMu arbitrates: workers hold it shared for the span of
// a batch, and a lookup racing the ingest drains the coordinator
// (Coordinator.Barrier) and then holds liveMu exclusively, so it observes
// a consistent merged view — every pair enqueued before the lookup
// started, and no torn batch.
type Store struct {
	strat    Strategy
	outSpace *grid.Space
	inSpaces []*grid.Space
	kv       kvstore.Store

	// trees index the key side of Many encodings: slot 0 holds output
	// bounding boxes for backward-optimized stores; slot i holds input-i
	// bounding boxes for forward-optimized stores. idxMu guards inserts
	// and the dirty flag against concurrent shard workers; reads are
	// lock-free once the write side is quiescent (see liveMu).
	trees    []*rtree.Tree
	idxMu    sync.Mutex
	dirtyIdx bool

	// nextPair allocates record ids; the ingest coordinator reserves id
	// ranges from it on the enqueueing thread so ids stay dense and
	// deterministic regardless of shard scheduling.
	nextPair atomic.Uint64

	// codec is the record format written for new pairs (CodecV2 or
	// CodecV3); reads always accept every version, so one store may mix
	// them.
	codec atomic.Uint32

	// mu guards the pending buffers and the record cache.
	mu sync.Mutex

	// Pending per-cell entries for One encodings, merged into the
	// hashtable in batches so key collisions don't force a read-modify-
	// write per lwrite call.
	pendingIDs   []map[uint64][]uint64
	pendingPay   map[uint64][][]byte
	pendingCount int

	// pending mirrors pendingCount for the lock-free read fast path:
	// lookups check it before taking mu, so concurrent queries against a
	// flushed store never serialize on the mutex just to discover there
	// is nothing to flush.
	pending atomic.Int64

	recCache map[uint64]*record

	// statsMu guards the volume counters; the duration counters are
	// atomics so concurrent shard workers aggregate without a lock and
	// without under-reporting (a read-modify-write race would drop
	// increments).
	statsMu   sync.Mutex
	stats     StoreStats // volumes + Shards; durations live in the atomics
	writeNS   atomic.Int64
	enqueueNS atomic.Int64
	flushNS   atomic.Int64

	// ingest is the coordinator currently feeding this store, if any;
	// lookups use it to barrier racing writes. liveMu is the shared/
	// exclusive gate described above.
	ingest atomic.Pointer[Coordinator]
	liveMu sync.RWMutex

	// degraded latches when a lookup hits corruption (see ErrCorrupt);
	// healing claims the store for a single background rebuild.
	degraded atomic.Bool
	healing  atomic.Bool
}

const (
	pendingFlushThreshold = 1 << 18
	recCacheLimit         = 1 << 13
	abortCheckInterval    = 64
)

// OpenStore creates (or reopens) a lineage store over the given hashtable.
// The strategy must be one that materializes pairs (Full, Pay, or Comp).
// Reopening a non-empty hashtable restores the pair counter and rebuilds
// the spatial indexes from their persisted form.
func OpenStore(kv kvstore.Store, strat Strategy, outSpace *grid.Space, inSpaces []*grid.Space) (*Store, error) {
	if err := strat.Validate(); err != nil {
		return nil, err
	}
	if !strat.StoresPairs() {
		return nil, fmt.Errorf("lineage: strategy %s does not materialize pairs", strat)
	}
	if len(inSpaces) == 0 || len(inSpaces) > 255 {
		return nil, fmt.Errorf("lineage: store needs 1..255 input spaces, got %d", len(inSpaces))
	}
	s := &Store{
		strat:    strat,
		outSpace: outSpace,
		inSpaces: inSpaces,
		kv:       kv,
		recCache: make(map[uint64]*record),
	}
	s.codec.Store(CodecV3)
	nSlots := 1
	if strat.Orient == ForwardOpt {
		nSlots = len(inSpaces)
	}
	if strat.Enc == Many {
		s.trees = make([]*rtree.Tree, nSlots)
		for i := range s.trees {
			s.trees[i] = rtree.New(s.slotSpace(i).Rank())
		}
	}
	if strat.Enc == One {
		if strat.Mode == Pay || strat.Mode == Comp {
			s.pendingPay = make(map[uint64][][]byte)
		} else {
			s.pendingIDs = make([]map[uint64][]uint64, nSlots)
			for i := range s.pendingIDs {
				s.pendingIDs[i] = make(map[uint64][]uint64)
			}
		}
	}
	if err := s.loadMeta(); err != nil {
		return nil, err
	}
	return s, nil
}

// slotSpace returns the space of the key side of the given slot.
func (s *Store) slotSpace(slot int) *grid.Space {
	if s.strat.Orient == ForwardOpt {
		return s.inSpaces[slot]
	}
	return s.outSpace
}

// loadMeta restores the pair counter, stats, and spatial indexes. The
// atomically committed meta blob (kvstore.MetaCommitter) is preferred;
// stores written by earlier builds keep their metadata under in-log '!'
// keys and load through the legacy path. If neither source yields
// metadata but the hashtable holds pair records — a crash threw away the
// sidecar, or it was corrupted — the store rebuilds what it can from the
// records themselves rather than half-loading.
func (s *Store) loadMeta() error {
	if mc, ok := s.kv.(kvstore.MetaCommitter); ok {
		blob, ok2, err := mc.LoadMeta()
		if err != nil {
			return err
		}
		if ok2 {
			if err := s.decodeMetaBlob(blob); err == nil {
				return nil
			}
			// Undecodable blob: treat as absent and fall through.
		}
	}
	if err := s.loadLegacyMeta(); err != nil {
		return err
	}
	if s.nextPair.Load() == 0 && s.kv.Len() > 0 {
		return s.rebuildMeta()
	}
	return nil
}

// loadLegacyMeta reads the pre-sidecar metadata keys from the hashtable.
func (s *Store) loadLegacyMeta() error {
	val, ok, err := s.kv.Get(metaKey("next"))
	if err != nil {
		return err
	}
	if ok {
		id, n := binary.Uvarint(val)
		if n <= 0 {
			return fmt.Errorf("lineage: corrupt store meta")
		}
		s.nextPair.Store(id)
		// Restore stats snapshot if present.
		if sv, ok2, _ := s.kv.Get(metaKey("stats")); ok2 {
			s.decodeStats(sv)
		}
	}
	for i := range s.trees {
		tv, ok, err := s.kv.Get(metaKey(fmt.Sprintf("idx%d", i)))
		if err != nil {
			return err
		}
		if ok {
			tr, err := rtree.Decode(tv)
			if err != nil {
				return fmt.Errorf("lineage: decode index %d: %w", i, err)
			}
			s.trees[i] = tr
		}
	}
	return nil
}

// metaBlobVersion frames the single metadata blob committed through
// kvstore.MetaCommitter: version byte, pair counter, stats, and one
// serialized R-tree per slot, so a flush is all-or-nothing on disk.
const metaBlobVersion = 1

func (s *Store) encodeMetaBlob() []byte {
	buf := []byte{metaBlobVersion}
	buf = binary.AppendUvarint(buf, s.nextPair.Load())
	stats := s.encodeStats()
	buf = binary.AppendUvarint(buf, uint64(len(stats)))
	buf = append(buf, stats...)
	buf = binary.AppendUvarint(buf, uint64(len(s.trees)))
	for _, tr := range s.trees {
		tv := tr.Encode()
		buf = binary.AppendUvarint(buf, uint64(len(tv)))
		buf = append(buf, tv...)
	}
	return buf
}

func (s *Store) decodeMetaBlob(blob []byte) error {
	if len(blob) == 0 || blob[0] != metaBlobVersion {
		return fmt.Errorf("lineage: unknown meta blob version")
	}
	rest := blob[1:]
	next, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("lineage: meta blob pair counter")
	}
	rest = rest[n:]
	slen, n := binary.Uvarint(rest)
	if n <= 0 || slen > uint64(len(rest)-n) {
		return fmt.Errorf("lineage: meta blob stats")
	}
	rest = rest[n:]
	statsBlob := rest[:slen]
	rest = rest[slen:]
	nTrees, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("lineage: meta blob tree count")
	}
	rest = rest[n:]
	trees := make([]*rtree.Tree, 0, nTrees)
	for i := uint64(0); i < nTrees; i++ {
		tlen, n := binary.Uvarint(rest)
		if n <= 0 || tlen > uint64(len(rest)-n) {
			return fmt.Errorf("lineage: meta blob tree %d", i)
		}
		rest = rest[n:]
		tr, err := rtree.Decode(rest[:tlen])
		if err != nil {
			return fmt.Errorf("lineage: meta blob tree %d: %w", i, err)
		}
		trees = append(trees, tr)
		rest = rest[tlen:]
	}
	s.nextPair.Store(next)
	s.decodeStats(statsBlob)
	for i := range s.trees {
		if i < len(trees) {
			s.trees[i] = trees[i]
		}
	}
	return nil
}

// rebuildMeta reconstructs the pair counter and (for Many encodings) the
// spatial indexes by scanning the surviving pair records — the recovery
// path for a store whose meta was lost to a crash or corruption. Lineage
// is a recoverable cache, so best effort is enough: statistics are gone,
// but every surviving pair stays queryable.
func (s *Store) rebuildMeta() error {
	var maxID uint64
	var any bool
	err := s.scanRecords(func(id uint64, rec *record) (bool, error) {
		any = true
		if id > maxID {
			maxID = id
		}
		if s.strat.Enc == Many {
			if s.strat.Orient == BackwardOpt {
				if bb, ok := grid.BoundingBox(s.outSpace, rec.outs.cells(nil)); ok {
					if err := s.trees[0].Insert(rtree.Item{Rect: bb, ID: id}); err != nil {
						return false, err
					}
				}
			} else {
				for i := range rec.ins {
					if bb, ok := grid.BoundingBox(s.inSpaces[i], rec.ins[i].cells(nil)); ok {
						if err := s.trees[i].Insert(rtree.Item{Rect: bb, ID: id}); err != nil {
							return false, err
						}
					}
				}
			}
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	if any {
		s.nextPair.Store(maxID + 1)
		if s.strat.Enc == Many {
			s.dirtyIdx = true
		}
	}
	return nil
}

// Record codec versions selectable for newly written pairs. Reads accept
// every version regardless of this setting.
const (
	// CodecV2 is the run-length record format (flags 2/3).
	CodecV2 = 2
	// CodecV3 is the tiled container format (flags 4/5), answered in
	// situ by lookups. The default.
	CodecV3 = 3
)

// SetCodec selects the record format for subsequently written pairs.
// Benchmarks and compat tests use it to build v2 stores; production
// stores keep the v3 default.
func (s *Store) SetCodec(v int) error {
	if v != CodecV2 && v != CodecV3 {
		return fmt.Errorf("lineage: unknown record codec %d", v)
	}
	s.codec.Store(uint32(v))
	return nil
}

// Codec returns the record format written for new pairs.
func (s *Store) Codec() int { return int(s.codec.Load()) }

// encodePair serializes one region pair with the store's codec.
func (s *Store) encodePair(rp *RegionPair) []byte {
	if s.codec.Load() == CodecV2 {
		return encodeRecordV2(rp)
	}
	return encodeRecordV3(rp)
}

// Strategy returns the store's strategy.
func (s *Store) Strategy() Strategy { return s.strat }

// Degraded reports whether a lookup has hit corruption in this store.
// A degraded store still answers queries — the executor falls back to
// operator re-execution — until a background rebuild replaces it.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// MarkDegraded latches the degraded flag. Lookup paths call it through
// corruptf; tests and the rebuild coordinator may call it directly.
func (s *Store) MarkDegraded() { s.degraded.Store(true) }

// ClearDegraded re-arms the store after a successful rebuild.
func (s *Store) ClearDegraded() { s.degraded.Store(false) }

// BeginHeal claims the store for one background rebuild; the second and
// later claimants get false, so concurrent corrupt lookups schedule a
// single rebuild. EndHeal releases the claim.
func (s *Store) BeginHeal() bool { return s.healing.CompareAndSwap(false, true) }

// EndHeal releases the rebuild claim taken by BeginHeal.
func (s *Store) EndHeal() { s.healing.Store(false) }

// Healing reports whether a background rebuild currently owns the store.
func (s *Store) Healing() bool { return s.healing.Load() }

// corruptf marks the store degraded and wraps err so it matches both
// ErrCorrupt and the original cause via errors.Is.
func (s *Store) corruptf(err error) error {
	s.degraded.Store(true)
	return fmt.Errorf("%w: %w", ErrCorrupt, err)
}

// Stats returns the accumulated write statistics, merging the atomic
// duration counters into the volume snapshot.
func (s *Store) Stats() StoreStats {
	s.statsMu.Lock()
	st := s.stats
	s.statsMu.Unlock()
	st.WriteTime = time.Duration(s.writeNS.Load())
	st.EnqueueTime = time.Duration(s.enqueueNS.Load())
	st.FlushTime = time.Duration(s.flushNS.Load())
	return st
}

// AddWriteTime accrues time spent by the runtime serializing into this
// store; it is part of the strategy's runtime overhead. The counter is
// atomic so concurrent shard workers aggregate their per-shard durations
// without under-reporting.
func (s *Store) AddWriteTime(d time.Duration) { s.writeNS.Add(int64(d)) }

// AddEnqueueTime accrues operator-thread handoff time (including
// backpressure stalls) under sharded ingest.
func (s *Store) AddEnqueueTime(d time.Duration) { s.enqueueNS.Add(int64(d)) }

// AddFlushTime accrues operator-thread drain/flush time.
func (s *Store) AddFlushTime(d time.Duration) { s.flushNS.Add(int64(d)) }

// addVolumes accumulates the pair/cell volume counters for one batch.
func (s *Store) addVolumes(pairs int, outCells, inCells, payloadBytes int64) {
	s.statsMu.Lock()
	s.stats.Pairs += pairs
	s.stats.OutCells += outCells
	s.stats.InCells += inCells
	s.stats.PayloadBytes += payloadBytes
	s.statsMu.Unlock()
}

// setShards records how many ingest shard workers feed this store.
func (s *Store) setShards(n int) {
	s.statsMu.Lock()
	s.stats.Shards = n
	s.statsMu.Unlock()
}

// NumPairs returns the number of region pairs written.
func (s *Store) NumPairs() int {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats.Pairs
}

// reserveIDs allocates n consecutive pair ids. The ingest coordinator
// calls it on the enqueueing thread, so id assignment is deterministic in
// enqueue order no matter how shard workers are scheduled — a store built
// with any shard count holds byte-identical records.
func (s *Store) reserveIDs(n int) uint64 {
	return s.nextPair.Add(uint64(n)) - uint64(n)
}

// reservePairIDs reserves one id per pair for record-storing encodings,
// or nil when the encoding stores no records (PayOne). The synchronous
// write path and the ingest coordinator share it so id assignment can
// never diverge between them.
func (s *Store) reservePairIDs(n int) []uint64 {
	if !s.storesRecords() {
		return nil
	}
	base := s.reserveIDs(n)
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = base + uint64(i)
	}
	return ids
}

// storesRecords reports whether the encoding writes per-pair records (and
// therefore needs pair ids). PayOne duplicates payloads into cell entries
// instead.
func (s *Store) storesRecords() bool {
	return !(s.strat.Enc == One && (s.strat.Mode == Pay || s.strat.Mode == Comp))
}

// checkPairKind validates that the pair carries what the strategy stores.
func (s *Store) checkPairKind(rp *RegionPair) error {
	wantPayload := s.strat.Mode == Pay || s.strat.Mode == Comp
	if rp.IsPayload() != wantPayload {
		return fmt.Errorf("lineage: %s store got %s pair", s.strat,
			map[bool]string{true: "payload", false: "full"}[rp.IsPayload()])
	}
	return nil
}

// batchVolumes sums the volume counters of a batch.
func batchVolumes(pairs []RegionPair) (outCells, inCells, payloadBytes int64) {
	for i := range pairs {
		rp := &pairs[i]
		outCells += int64(len(rp.Out))
		for _, in := range rp.Ins {
			inCells += int64(len(in))
		}
		payloadBytes += int64(len(rp.Payload))
	}
	return
}

// WritePairs encodes a batch of region pairs into the store on the
// calling thread — the synchronous write path. Pairs must already be
// normalized and validated (the writer does both). Record values are
// group-committed through one kvstore batch per call.
func (s *Store) WritePairs(pairs []RegionPair) error {
	for i := range pairs {
		if err := s.checkPairKind(&pairs[i]); err != nil {
			return err
		}
	}
	return s.ingestBatch(pairs, s.reservePairIDs(len(pairs)))
}

// ingestBatch applies one batch of pairs: encode records, group-commit
// them, index them, and buffer the per-cell entries. It is the shared
// write path of WritePairs (synchronous) and the coordinator's shard
// workers (concurrent); liveMu is held shared so a racing lookup can
// exclude in-flight batches wholesale.
func (s *Store) ingestBatch(pairs []RegionPair, ids []uint64) error {
	s.liveMu.RLock()
	defer s.liveMu.RUnlock()

	// Encode and group-commit the pair records first: per-cell entries
	// and index items must never reference a record the hashtable does
	// not hold yet.
	if ids != nil {
		recs := make([]kvstore.KV, len(pairs))
		for i := range pairs {
			recs[i] = kvstore.KV{Key: pairKey(ids[i]), Val: s.encodePair(&pairs[i])}
		}
		if err := kvstore.PutBatch(s.kv, recs); err != nil {
			return err
		}
	}

	switch {
	case s.strat.Enc == Many:
		if err := s.indexBatch(pairs, ids); err != nil {
			return err
		}
	default:
		if err := s.bufferCellEntries(pairs, ids); err != nil {
			return err
		}
	}
	out, in, pay := batchVolumes(pairs)
	s.addVolumes(len(pairs), out, in, pay)
	return nil
}

// indexBatch inserts one R-tree item per (pair, slot) for Many encodings.
// Bounding boxes are computed outside the index lock so concurrent shard
// workers only serialize on the tree inserts themselves.
func (s *Store) indexBatch(pairs []RegionPair, ids []uint64) error {
	type slotItem struct {
		slot int
		item rtree.Item
	}
	items := make([]slotItem, 0, len(pairs))
	for i := range pairs {
		rp := &pairs[i]
		if s.strat.Orient == BackwardOpt {
			if bb, ok := grid.BoundingBox(s.outSpace, rp.Out); ok {
				items = append(items, slotItem{0, rtree.Item{Rect: bb, ID: ids[i]}})
			}
		} else {
			for j, in := range rp.Ins {
				if bb, ok := grid.BoundingBox(s.inSpaces[j], in); ok {
					items = append(items, slotItem{j, rtree.Item{Rect: bb, ID: ids[i]}})
				}
			}
		}
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	for _, it := range items {
		if err := s.trees[it.slot].Insert(it.item); err != nil {
			return err
		}
	}
	s.dirtyIdx = true
	return nil
}

// bufferCellEntries merges one batch's per-cell references (FullOne ids,
// PayOne payload duplicates) into the pending buffers under one lock
// acquisition, flushing to the hashtable when the threshold is crossed.
func (s *Store) bufferCellEntries(pairs []RegionPair, ids []uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range pairs {
		rp := &pairs[i]
		switch {
		case s.pendingPay != nil:
			// PayOne: duplicate the payload under every output cell.
			for _, c := range rp.Out {
				s.pendingPay[c] = append(s.pendingPay[c], rp.Payload)
				s.pendingCount++
			}
		case s.strat.Orient == BackwardOpt:
			for _, c := range rp.Out {
				s.pendingIDs[0][c] = append(s.pendingIDs[0][c], ids[i])
				s.pendingCount++
			}
		default:
			for j, in := range rp.Ins {
				for _, c := range in {
					s.pendingIDs[j][c] = append(s.pendingIDs[j][c], ids[i])
					s.pendingCount++
				}
			}
		}
	}
	s.pending.Store(int64(s.pendingCount))
	if s.pendingCount >= pendingFlushThreshold {
		return s.flushPendingLocked()
	}
	return nil
}

// flushPending merges buffered per-cell entries into the hashtable under
// the store lock; lookup paths call it before reading so late buffered
// writes are visible.
func (s *Store) flushPending() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushPendingLocked()
}

// beginRead is the lookup-path gate. The fast path — no ingest
// coordinator attached, nothing pending — is a single atomic load. When a
// coordinator is feeding the store, the lookup drains it (so every pair
// enqueued before the lookup is fully applied) and then holds the write
// gate exclusively, so batches enqueued after the drain cannot tear the
// view mid-lookup. The returned release must be called when the lookup
// finishes.
func (s *Store) beginRead() (release func(), err error) {
	if c := s.ingest.Load(); c != nil {
		if err := c.Barrier(); err != nil {
			return nil, err
		}
		s.liveMu.Lock()
		if err := s.flushPendingIfAny(); err != nil {
			s.liveMu.Unlock()
			return nil, err
		}
		return s.liveMu.Unlock, nil
	}
	if err := s.maybeFlushPending(); err != nil {
		return nil, err
	}
	return func() {}, nil
}

// attachIngest marks the store as being fed by a coordinator; lookups
// barrier against it until detachIngest.
func (s *Store) attachIngest(c *Coordinator) {
	s.ingest.Store(c)
	s.setShards(c.Shards())
}

// detachIngest returns the store to the quiescent read contract.
func (s *Store) detachIngest() { s.ingest.Store(nil) }

// maybeFlushPending is the quiescent-store gate: a lock-free check of the
// atomic pending counter, falling through to the locked flush only when
// buffered writes actually exist. Writes never overlap lookups in this
// mode (see the Store contract), so a zero reading is stable for the
// whole lookup.
func (s *Store) maybeFlushPending() error {
	if s.pending.Load() == 0 {
		return nil
	}
	return s.flushPending()
}

// flushPendingIfAny is maybeFlushPending for callers already holding the
// write gate.
func (s *Store) flushPendingIfAny() error {
	if s.pending.Load() == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushPendingLocked()
}

// flushPendingLocked merges buffered per-cell entries into the hashtable.
// Existing entries are read through one GetBatch pass and the merged
// entries written back through one PutBatch group commit, so the backing
// store is locked twice per flush rather than twice per key. Merged id
// lists are sorted so the stored bytes are deterministic regardless of
// which shard worker buffered which pair. Callers hold s.mu.
func (s *Store) flushPendingLocked() error {
	if s.pendingCount == 0 {
		return nil
	}
	if s.pendingPay != nil {
		if err := flushCellMap(s.kv, 0, s.pendingPay,
			func(old []byte, payloads [][]byte) ([][]byte, error) {
				existing, err := decodePayloadList(old)
				if err != nil {
					return nil, err
				}
				return append(existing, payloads...), nil
			},
			func(payloads [][]byte) []byte {
				// Payload lists are sets to the query path; sort them so
				// the stored bytes don't depend on shard scheduling.
				sort.SliceStable(payloads, func(i, j int) bool {
					return bytes.Compare(payloads[i], payloads[j]) < 0
				})
				return encodePayloadList(payloads)
			},
		); err != nil {
			return err
		}
		s.pendingPay = make(map[uint64][][]byte)
	}
	for slot, m := range s.pendingIDs {
		if len(m) == 0 {
			continue
		}
		if err := flushCellMap(s.kv, slot, m,
			func(old []byte, ids []uint64) ([]uint64, error) {
				existing, err := decodeIDList(old)
				if err != nil {
					return nil, err
				}
				return append(existing, ids...), nil
			},
			func(ids []uint64) []byte {
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				return encodeIDList(ids)
			},
		); err != nil {
			return err
		}
		s.pendingIDs[slot] = make(map[uint64][]uint64)
	}
	s.pendingCount = 0
	s.pending.Store(0)
	return nil
}

// flushCellMap merges one slot's pending per-cell values into the
// hashtable: one batched read pass over the existing entries, one group-
// commit write pass for the merged values.
func flushCellMap[V any](kv kvstore.Store, slot int, pend map[uint64]V,
	merge func(old []byte, fresh V) (V, error), encode func(V) []byte) error {
	cells := make([]uint64, 0, len(pend))
	for c := range pend {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i] < cells[j] })
	keys := make([][]byte, len(cells))
	for i, c := range cells {
		keys[i] = cellKey(slot, c)
	}
	var mergeErr error
	batch := make([]kvstore.KV, len(cells))
	if err := kvstore.GetBatch(kv, keys, func(i int, val []byte, ok bool) bool {
		v := pend[cells[i]]
		if ok {
			if v, mergeErr = merge(val, v); mergeErr != nil {
				return false
			}
		}
		batch[i] = kvstore.KV{Key: keys[i], Val: encode(v)}
		return true
	}); err != nil {
		return err
	}
	if mergeErr != nil {
		return mergeErr
	}
	return kvstore.PutBatch(kv, batch)
}

// Flush persists pending entries, spatial indexes, and metadata, then
// syncs the hashtable. When the backing store supports atomic meta
// commits the pair counter, stats, and serialized indexes go down as one
// all-or-nothing blob after the data sync, so a crash mid-flush leaves
// either the previous consistent metadata or the new one — never a store
// that half-loads. SizeBytes is exact after Flush.
func (s *Store) Flush() error {
	s.mu.Lock()
	if err := s.flushPendingLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()

	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if mc, ok := s.kv.(kvstore.MetaCommitter); ok {
		// Data first, then the meta blob: metadata must never describe
		// records the log has not durably absorbed.
		if err := s.kv.Sync(); err != nil {
			return err
		}
		if err := mc.CommitMeta(s.encodeMetaBlob()); err != nil {
			return err
		}
		s.dirtyIdx = false
		return nil
	}
	if s.dirtyIdx {
		for i, tr := range s.trees {
			if err := s.kv.Put(metaKey(fmt.Sprintf("idx%d", i)), tr.Encode()); err != nil {
				return err
			}
		}
		s.dirtyIdx = false
	}
	if err := s.kv.Put(metaKey("next"), binary.AppendUvarint(nil, s.nextPair.Load())); err != nil {
		return err
	}
	if err := s.kv.Put(metaKey("stats"), s.encodeStats()); err != nil {
		return err
	}
	return s.kv.Sync()
}

func (s *Store) encodeStats() []byte {
	st := s.Stats()
	buf := binary.AppendUvarint(nil, uint64(st.Pairs))
	buf = binary.AppendUvarint(buf, uint64(st.OutCells))
	buf = binary.AppendUvarint(buf, uint64(st.InCells))
	buf = binary.AppendUvarint(buf, uint64(st.PayloadBytes))
	// Durations are fixed-width: a varint here would make the record's
	// size — and thus SizeBytes — depend on wall-clock timing, breaking
	// the determinism the benchmarks and their tests rely on. The legacy
	// prefix (4 varints + WriteTime) is preserved so stores written by
	// earlier builds load unchanged; the ingest extension follows it.
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.WriteTime))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.EnqueueTime))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.FlushTime))
	return binary.LittleEndian.AppendUint32(buf, uint32(st.Shards))
}

func (s *Store) decodeStats(val []byte) {
	vals := make([]uint64, 0, 4)
	off := 0
	for i := 0; i < 4 && off < len(val); i++ {
		v, n := binary.Uvarint(val[off:])
		if n <= 0 {
			return
		}
		vals = append(vals, v)
		off += n
	}
	rest := len(val) - off
	if len(vals) != 4 || (rest != 8 && rest != 8+8+8+4) {
		return
	}
	st := StoreStats{
		Pairs:        int(vals[0]),
		OutCells:     int64(vals[1]),
		InCells:      int64(vals[2]),
		PayloadBytes: int64(vals[3]),
		WriteTime:    time.Duration(binary.LittleEndian.Uint64(val[off:])),
	}
	if rest > 8 {
		st.EnqueueTime = time.Duration(binary.LittleEndian.Uint64(val[off+8:]))
		st.FlushTime = time.Duration(binary.LittleEndian.Uint64(val[off+16:]))
		st.Shards = int(binary.LittleEndian.Uint32(val[off+24:]))
	}
	s.statsMu.Lock()
	s.stats = st
	s.statsMu.Unlock()
	s.writeNS.Store(int64(st.WriteTime))
	s.enqueueNS.Store(int64(st.EnqueueTime))
	s.flushNS.Store(int64(st.FlushTime))
}

// LogicalBytes returns the uncompressed footprint of the lineage this
// store holds — 8 bytes per stored out/in cell index plus the raw
// payload bytes — the denominator of the store's compression ratio
// (SizeBytes / LogicalBytes). It is derived from the accumulated volume
// stats, so it survives reopen like the rest of StoreStats.
func (s *Store) LogicalBytes() int64 {
	st := s.Stats()
	return (st.OutCells+st.InCells)*8 + st.PayloadBytes
}

// SizeBytes returns the storage charged to this store: the hashtable size
// plus an estimate for any not-yet-flushed state.
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	size := s.kv.SizeBytes()
	if s.pendingCount > 0 {
		size += int64(s.pendingCount) * 14
	}
	s.mu.Unlock()
	s.idxMu.Lock()
	if s.dirtyIdx {
		for _, tr := range s.trees {
			size += int64(tr.EncodedLen())
		}
	}
	s.idxMu.Unlock()
	return size
}

func (s *Store) getRecord(id uint64) (*record, error) {
	s.mu.Lock()
	rec, ok := s.recCache[id]
	s.mu.Unlock()
	if ok {
		return rec, nil
	}
	if err := fault.Inject(fpDecode); err != nil {
		return nil, s.corruptf(err)
	}
	val, ok, err := s.kv.Get(pairKey(id))
	if err != nil {
		return nil, err
	}
	if !ok {
		// A cell entry or index item references a record the hashtable
		// does not hold: the store's invariants are broken, not the query.
		return nil, s.corruptf(fmt.Errorf("lineage: dangling pair id %d", id))
	}
	rec, err = decodeRecord(val)
	if err != nil {
		return nil, s.corruptf(err)
	}
	s.mu.Lock()
	if len(s.recCache) >= recCacheLimit {
		s.recCache = make(map[uint64]*record)
	}
	s.recCache[id] = rec
	s.mu.Unlock()
	return rec, nil
}

// scanRecords visits every pair record.
func (s *Store) scanRecords(fn func(id uint64, rec *record) (bool, error)) error {
	var scanErr error
	err := s.kv.Scan(func(key, val []byte) bool {
		if len(key) == 0 || key[0] != keyPair {
			return true
		}
		id, n := binary.Uvarint(key[1:])
		if n <= 0 {
			scanErr = s.corruptf(fmt.Errorf("lineage: corrupt pair key"))
			return false
		}
		rec, err := decodeRecord(val)
		if err != nil {
			scanErr = s.corruptf(err)
			return false
		}
		cont, err := fn(id, rec)
		if err != nil {
			scanErr = err
			return false
		}
		return cont
	})
	if scanErr != nil {
		return scanErr
	}
	return err
}

// scanCellEntries visits every per-cell entry of a slot (One encodings).
func (s *Store) scanCellEntries(slot int, fn func(cell uint64, val []byte) (bool, error)) error {
	var scanErr error
	err := s.kv.Scan(func(key, val []byte) bool {
		if len(key) != 10 || key[0] != keyCell || int(key[1]) != slot {
			return true
		}
		cell := binary.BigEndian.Uint64(key[2:])
		cont, err := fn(cell, val)
		if err != nil {
			scanErr = err
			return false
		}
		return cont
	})
	if scanErr != nil {
		return scanErr
	}
	return err
}
