package lineage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"subzero/internal/grid"
	"subzero/internal/kvstore"
	"subzero/internal/rtree"
)

// ErrAborted is returned by store lookups cancelled by the query-time
// optimizer when materialized-lineage access exceeds its budget and the
// executor falls back to re-running the operator (paper §VII-A).
var ErrAborted = errors.New("lineage: lookup aborted by query-time optimizer")

// StoreStats aggregates what the statistics collector records about one
// store's write path; the optimizer's cost model is calibrated from these.
type StoreStats struct {
	Pairs        int
	OutCells     int64
	InCells      int64
	PayloadBytes int64
	WriteTime    time.Duration
}

// Store holds the materialized region lineage of a single operator
// instance under a single strategy — one "operator specific datastore" of
// the paper's architecture. It encodes region pairs into a kvstore
// hashtable according to the strategy's encoding and orientation, and
// serves backward/forward lookups over them.
//
// Writes (WritePairs, Flush) are serialized by the workflow executor and
// must not overlap with lookups. Lookups (Backward, Forward, ContainsOut)
// are safe to run concurrently with each other once the run has completed:
// mu guards the pending write buffers and the record cache, the backing
// kvstore synchronizes internally, and the spatial indexes are read-only
// after the final flush.
type Store struct {
	strat    Strategy
	outSpace *grid.Space
	inSpaces []*grid.Space
	kv       kvstore.Store

	// trees index the key side of Many encodings: slot 0 holds output
	// bounding boxes for backward-optimized stores; slot i holds input-i
	// bounding boxes for forward-optimized stores.
	trees    []*rtree.Tree
	nextPair uint64
	dirtyIdx bool

	// mu guards the pending buffers, the record cache, and stats against
	// concurrent lookups.
	mu sync.Mutex

	// Pending per-cell entries for One encodings, merged into the
	// hashtable in batches so key collisions don't force a read-modify-
	// write per lwrite call.
	pendingIDs   []map[uint64][]uint64
	pendingPay   map[uint64][][]byte
	pendingCount int

	// pending mirrors pendingCount for the lock-free read fast path:
	// lookups check it before taking mu, so concurrent queries against a
	// flushed store never serialize on the mutex just to discover there
	// is nothing to flush.
	pending atomic.Int64

	recCache map[uint64]*record

	stats StoreStats
}

const (
	pendingFlushThreshold = 1 << 18
	recCacheLimit         = 1 << 13
	abortCheckInterval    = 64
)

// OpenStore creates (or reopens) a lineage store over the given hashtable.
// The strategy must be one that materializes pairs (Full, Pay, or Comp).
// Reopening a non-empty hashtable restores the pair counter and rebuilds
// the spatial indexes from their persisted form.
func OpenStore(kv kvstore.Store, strat Strategy, outSpace *grid.Space, inSpaces []*grid.Space) (*Store, error) {
	if err := strat.Validate(); err != nil {
		return nil, err
	}
	if !strat.StoresPairs() {
		return nil, fmt.Errorf("lineage: strategy %s does not materialize pairs", strat)
	}
	if len(inSpaces) == 0 || len(inSpaces) > 255 {
		return nil, fmt.Errorf("lineage: store needs 1..255 input spaces, got %d", len(inSpaces))
	}
	s := &Store{
		strat:    strat,
		outSpace: outSpace,
		inSpaces: inSpaces,
		kv:       kv,
		recCache: make(map[uint64]*record),
	}
	nSlots := 1
	if strat.Orient == ForwardOpt {
		nSlots = len(inSpaces)
	}
	if strat.Enc == Many {
		s.trees = make([]*rtree.Tree, nSlots)
		for i := range s.trees {
			s.trees[i] = rtree.New(s.slotSpace(i).Rank())
		}
	}
	if strat.Enc == One {
		if strat.Mode == Pay || strat.Mode == Comp {
			s.pendingPay = make(map[uint64][][]byte)
		} else {
			s.pendingIDs = make([]map[uint64][]uint64, nSlots)
			for i := range s.pendingIDs {
				s.pendingIDs[i] = make(map[uint64][]uint64)
			}
		}
	}
	if err := s.loadMeta(); err != nil {
		return nil, err
	}
	return s, nil
}

// slotSpace returns the space of the key side of the given slot.
func (s *Store) slotSpace(slot int) *grid.Space {
	if s.strat.Orient == ForwardOpt {
		return s.inSpaces[slot]
	}
	return s.outSpace
}

func (s *Store) loadMeta() error {
	val, ok, err := s.kv.Get(metaKey("next"))
	if err != nil {
		return err
	}
	if ok {
		id, n := binary.Uvarint(val)
		if n <= 0 {
			return fmt.Errorf("lineage: corrupt store meta")
		}
		s.nextPair = id
		// Restore stats snapshot if present.
		if sv, ok2, _ := s.kv.Get(metaKey("stats")); ok2 {
			s.decodeStats(sv)
		}
	}
	for i := range s.trees {
		tv, ok, err := s.kv.Get(metaKey(fmt.Sprintf("idx%d", i)))
		if err != nil {
			return err
		}
		if ok {
			tr, err := rtree.Decode(tv)
			if err != nil {
				return fmt.Errorf("lineage: decode index %d: %w", i, err)
			}
			s.trees[i] = tr
		}
	}
	return nil
}

// Strategy returns the store's strategy.
func (s *Store) Strategy() Strategy { return s.strat }

// Stats returns the accumulated write statistics.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// AddWriteTime accrues time spent by the runtime serializing into this
// store; it is part of the strategy's runtime overhead.
func (s *Store) AddWriteTime(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.WriteTime += d
}

// NumPairs returns the number of region pairs written.
func (s *Store) NumPairs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.Pairs
}

// WritePairs encodes a batch of region pairs into the store. Pairs must
// already be normalized and validated (the writer does both).
func (s *Store) WritePairs(pairs []RegionPair) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range pairs {
		if err := s.writePair(&pairs[i]); err != nil {
			s.pending.Store(int64(s.pendingCount))
			return err
		}
	}
	s.pending.Store(int64(s.pendingCount))
	if s.pendingCount >= pendingFlushThreshold {
		return s.flushPendingLocked()
	}
	return nil
}

func (s *Store) writePair(rp *RegionPair) error {
	wantPayload := s.strat.Mode == Pay || s.strat.Mode == Comp
	if rp.IsPayload() != wantPayload {
		return fmt.Errorf("lineage: %s store got %s pair", s.strat,
			map[bool]string{true: "payload", false: "full"}[rp.IsPayload()])
	}
	s.stats.Pairs++
	s.stats.OutCells += int64(len(rp.Out))
	for _, in := range rp.Ins {
		s.stats.InCells += int64(len(in))
	}
	s.stats.PayloadBytes += int64(len(rp.Payload))

	switch {
	case s.strat.Enc == One && wantPayload:
		// PayOne: duplicate the payload under every output cell.
		for _, c := range rp.Out {
			s.pendingPay[c] = append(s.pendingPay[c], rp.Payload)
			s.pendingCount++
		}
		return nil
	case s.strat.Enc == One:
		// FullOne: shared pair record + per-cell references.
		id := s.nextPair
		s.nextPair++
		if err := s.kv.Put(pairKey(id), encodeRecord(rp)); err != nil {
			return err
		}
		if s.strat.Orient == BackwardOpt {
			for _, c := range rp.Out {
				s.pendingIDs[0][c] = append(s.pendingIDs[0][c], id)
				s.pendingCount++
			}
		} else {
			for i, in := range rp.Ins {
				for _, c := range in {
					s.pendingIDs[i][c] = append(s.pendingIDs[i][c], id)
					s.pendingCount++
				}
			}
		}
		return nil
	default:
		// Many encodings: one record per pair + R-tree entries.
		id := s.nextPair
		s.nextPair++
		if err := s.kv.Put(pairKey(id), encodeRecord(rp)); err != nil {
			return err
		}
		if s.strat.Orient == BackwardOpt {
			if bb, ok := grid.BoundingBox(s.outSpace, rp.Out); ok {
				if err := s.trees[0].Insert(rtree.Item{Rect: bb, ID: id}); err != nil {
					return err
				}
			}
		} else {
			for i, in := range rp.Ins {
				if bb, ok := grid.BoundingBox(s.inSpaces[i], in); ok {
					if err := s.trees[i].Insert(rtree.Item{Rect: bb, ID: id}); err != nil {
						return err
					}
				}
			}
		}
		s.dirtyIdx = true
		return nil
	}
}

// flushPending merges buffered per-cell entries into the hashtable under
// the store lock; lookup paths call it before reading so late buffered
// writes are visible.
func (s *Store) flushPending() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushPendingLocked()
}

// maybeFlushPending is the lookup-path gate: a lock-free check of the
// atomic pending counter, falling through to the locked flush only when
// buffered writes actually exist. Writes never overlap lookups (see the
// Store contract), so a zero reading is stable for the whole lookup.
func (s *Store) maybeFlushPending() error {
	if s.pending.Load() == 0 {
		return nil
	}
	return s.flushPending()
}

// flushPendingLocked merges buffered per-cell entries into the hashtable.
// Reads of existing entries are batched before writes so the file store's
// write buffer is drained once, not per key. Callers hold s.mu.
func (s *Store) flushPendingLocked() error {
	if s.pendingCount == 0 {
		return nil
	}
	if s.pendingPay != nil {
		merged := make(map[uint64][][]byte, len(s.pendingPay))
		for c, payloads := range s.pendingPay {
			if old, ok, err := s.kv.Get(cellKey(0, c)); err != nil {
				return err
			} else if ok {
				existing, err := decodePayloadList(old)
				if err != nil {
					return err
				}
				payloads = append(existing, payloads...)
			}
			merged[c] = payloads
		}
		for c, payloads := range merged {
			if err := s.kv.Put(cellKey(0, c), encodePayloadList(payloads)); err != nil {
				return err
			}
		}
		s.pendingPay = make(map[uint64][][]byte)
	}
	for slot, m := range s.pendingIDs {
		if len(m) == 0 {
			continue
		}
		merged := make(map[uint64][]uint64, len(m))
		for c, ids := range m {
			if old, ok, err := s.kv.Get(cellKey(slot, c)); err != nil {
				return err
			} else if ok {
				existing, err := decodeIDList(old)
				if err != nil {
					return err
				}
				ids = append(existing, ids...)
			}
			merged[c] = ids
		}
		for c, ids := range merged {
			if err := s.kv.Put(cellKey(slot, c), encodeIDList(ids)); err != nil {
				return err
			}
		}
		s.pendingIDs[slot] = make(map[uint64][]uint64)
	}
	s.pendingCount = 0
	s.pending.Store(0)
	return nil
}

// Flush persists pending entries, spatial indexes, and metadata, then
// syncs the hashtable. SizeBytes is exact after Flush.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushPendingLocked(); err != nil {
		return err
	}
	if s.dirtyIdx {
		for i, tr := range s.trees {
			if err := s.kv.Put(metaKey(fmt.Sprintf("idx%d", i)), tr.Encode()); err != nil {
				return err
			}
		}
		s.dirtyIdx = false
	}
	if err := s.kv.Put(metaKey("next"), binary.AppendUvarint(nil, s.nextPair)); err != nil {
		return err
	}
	if err := s.kv.Put(metaKey("stats"), s.encodeStats()); err != nil {
		return err
	}
	return s.kv.Sync()
}

func (s *Store) encodeStats() []byte {
	buf := binary.AppendUvarint(nil, uint64(s.stats.Pairs))
	buf = binary.AppendUvarint(buf, uint64(s.stats.OutCells))
	buf = binary.AppendUvarint(buf, uint64(s.stats.InCells))
	buf = binary.AppendUvarint(buf, uint64(s.stats.PayloadBytes))
	// WriteTime is fixed-width: a varint here would make the record's
	// size — and thus SizeBytes — depend on wall-clock timing, breaking
	// the determinism the benchmarks and their tests rely on.
	return binary.LittleEndian.AppendUint64(buf, uint64(s.stats.WriteTime))
}

func (s *Store) decodeStats(val []byte) {
	vals := make([]uint64, 0, 4)
	off := 0
	for i := 0; i < 4 && off < len(val); i++ {
		v, n := binary.Uvarint(val[off:])
		if n <= 0 {
			return
		}
		vals = append(vals, v)
		off += n
	}
	if len(vals) != 4 || len(val)-off != 8 {
		return
	}
	s.stats = StoreStats{
		Pairs:        int(vals[0]),
		OutCells:     int64(vals[1]),
		InCells:      int64(vals[2]),
		PayloadBytes: int64(vals[3]),
		WriteTime:    time.Duration(binary.LittleEndian.Uint64(val[off:])),
	}
}

// SizeBytes returns the storage charged to this store: the hashtable size
// plus an estimate for any not-yet-flushed state.
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	size := s.kv.SizeBytes()
	if s.pendingCount > 0 {
		size += int64(s.pendingCount) * 14
	}
	if s.dirtyIdx {
		for _, tr := range s.trees {
			size += int64(tr.EncodedLen())
		}
	}
	return size
}

func (s *Store) getRecord(id uint64) (*record, error) {
	s.mu.Lock()
	rec, ok := s.recCache[id]
	s.mu.Unlock()
	if ok {
		return rec, nil
	}
	val, ok, err := s.kv.Get(pairKey(id))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("lineage: dangling pair id %d", id)
	}
	rec, err = decodeRecord(val)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if len(s.recCache) >= recCacheLimit {
		s.recCache = make(map[uint64]*record)
	}
	s.recCache[id] = rec
	s.mu.Unlock()
	return rec, nil
}

// scanRecords visits every pair record.
func (s *Store) scanRecords(fn func(id uint64, rec *record) (bool, error)) error {
	var scanErr error
	err := s.kv.Scan(func(key, val []byte) bool {
		if len(key) == 0 || key[0] != keyPair {
			return true
		}
		id, n := binary.Uvarint(key[1:])
		if n <= 0 {
			scanErr = fmt.Errorf("lineage: corrupt pair key")
			return false
		}
		rec, err := decodeRecord(val)
		if err != nil {
			scanErr = err
			return false
		}
		cont, err := fn(id, rec)
		if err != nil {
			scanErr = err
			return false
		}
		return cont
	})
	if scanErr != nil {
		return scanErr
	}
	return err
}

// scanCellEntries visits every per-cell entry of a slot (One encodings).
func (s *Store) scanCellEntries(slot int, fn func(cell uint64, val []byte) (bool, error)) error {
	var scanErr error
	err := s.kv.Scan(func(key, val []byte) bool {
		if len(key) != 10 || key[0] != keyCell || int(key[1]) != slot {
			return true
		}
		cell := binary.BigEndian.Uint64(key[2:])
		cont, err := fn(cell, val)
		if err != nil {
			scanErr = err
			return false
		}
		return cont
	})
	if scanErr != nil {
		return scanErr
	}
	return err
}
