package lineage

import (
	"sort"
	"sync"
	"time"
)

// OpStats aggregates the statistics collector's view of one operator
// instance (paper Figure 3: the collector feeds the optimizer measured
// execution times, lineage volumes, and observed query fanin/fanout).
type OpStats struct {
	NodeID string

	// Write path.
	Runs         int
	ExecTime     time.Duration // operator computation, excluding lwrite
	LineageTime  time.Duration // time inside the lwrite API
	Pairs        int64
	OutCells     int64
	InCells      int64
	PayloadBytes int64

	// Query path.
	QuerySteps    int
	QueryTime     time.Duration
	QueryInCells  int64 // cells entering a step at this operator
	QueryOutCells int64 // cells produced by the step
	Reexecs       int
}

// AvgFanout returns the average output cells per region pair, the operator
// property that drives the FullOne/FullMany crossover (paper §VIII-C).
func (s *OpStats) AvgFanout() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.OutCells) / float64(s.Pairs)
}

// AvgFanin returns the average input cells per region pair.
func (s *OpStats) AvgFanin() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.InCells) / float64(s.Pairs)
}

// AvgExecTime returns the mean single-run execution time, the cost of a
// black-box re-execution.
func (s *OpStats) AvgExecTime() time.Duration {
	if s.Runs == 0 {
		return 0
	}
	return s.ExecTime / time.Duration(s.Runs)
}

// Collector accumulates OpStats per operator instance. It is safe for
// concurrent use.
type Collector struct {
	mu     sync.Mutex
	byNode map[string]*OpStats
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{byNode: make(map[string]*OpStats)}
}

func (c *Collector) get(nodeID string) *OpStats {
	st, ok := c.byNode[nodeID]
	if !ok {
		st = &OpStats{NodeID: nodeID}
		c.byNode[nodeID] = st
	}
	return st
}

// RecordRun records one operator execution: computation time, lwrite
// overhead, and the pair/cell volumes written.
func (c *Collector) RecordRun(nodeID string, exec, lineageTime time.Duration, pairs, outCells, inCells, payloadBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.get(nodeID)
	st.Runs++
	st.ExecTime += exec
	st.LineageTime += lineageTime
	st.Pairs += pairs
	st.OutCells += outCells
	st.InCells += inCells
	st.PayloadBytes += payloadBytes
}

// RecordQueryStep records one lineage-query step executed at an operator:
// how many cells entered, how many came out, how long it took, and whether
// it required re-executing the operator.
func (c *Collector) RecordQueryStep(nodeID string, inCells, outCells int64, elapsed time.Duration, reexec bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.get(nodeID)
	st.QuerySteps++
	st.QueryTime += elapsed
	st.QueryInCells += inCells
	st.QueryOutCells += outCells
	if reexec {
		st.Reexecs++
	}
}

// Get returns a copy of the stats for a node (zero value if unseen).
func (c *Collector) Get(nodeID string) OpStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.byNode[nodeID]; ok {
		return *st
	}
	return OpStats{NodeID: nodeID}
}

// All returns copies of every node's stats, sorted by node id.
func (c *Collector) All() []OpStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]OpStats, 0, len(c.byNode))
	for _, st := range c.byNode {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NodeID < out[j].NodeID })
	return out
}

// Reset clears all statistics.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byNode = make(map[string]*OpStats)
}
