package lineage

import (
	"encoding/binary"
	"fmt"
	"sort"

	"subzero/internal/binenc"
	"subzero/internal/bitmap"
)

// Physical key layout inside a store's hashtable:
//
//	'P' + uvarint(pairID)          region-pair record
//	'K' + slot byte + 8-byte cell  per-cell entry (One encodings)
//	'!' + name                     store metadata (next pair id, R-trees)
//
// For backward-optimized stores the only key slot is 0 (output cells); for
// forward-optimized stores slot i holds the cells of input i.
const (
	keyPair = 'P'
	keyCell = 'K'
	keyMeta = '!'
)

func pairKey(id uint64) []byte {
	buf := make([]byte, 1, 11)
	buf[0] = keyPair
	return binary.AppendUvarint(buf, id)
}

func cellKey(slot int, cell uint64) []byte {
	buf := make([]byte, 10)
	buf[0] = keyCell
	buf[1] = byte(slot)
	binary.BigEndian.PutUint64(buf[2:], cell)
	return buf
}

func metaKey(name string) []byte { return append([]byte{keyMeta}, name...) }

// cellSet is a decoded record cell set as the lookup path consumes it:
// word-parallel application to destination bitmaps (addTo), word-parallel
// probing against query bitmaps (intersects), point membership, and
// ordered iteration. Two implementations exist — runSet for v1/v2 records
// (materialized runs) and containerSet for v3 records, which answers all
// of these directly on the compressed container form.
type cellSet interface {
	addTo(dst *bitmap.Bitmap) uint64
	intersects(q *bitmap.Bitmap) bool
	contains(cell uint64) bool
	forEach(fn func(cell uint64) bool)
	cells(dst []uint64) []uint64
	size() uint64
}

// runSet is a decoded cell set held as maximal runs — flat (start,
// length) pairs sorted by start — plus the total cell count. The lookup
// hot path applies whole runs to destination bitmaps (Bitmap.SetRun) and
// probes them word-parallel (Bitmap.AnyInRange) without ever
// materializing a per-cell []uint64.
type runSet struct {
	runs  []uint64 // flat (start, length) pairs
	count uint64
}

// appendRun appends a run, merging it into the previous run when
// contiguous (legacy per-cell decoding produces adjacent cells).
func (rs *runSet) appendRun(start, length uint64) {
	if n := len(rs.runs); n > 0 && rs.runs[n-2]+rs.runs[n-1] == start {
		rs.runs[n-1] += length
	} else {
		rs.runs = append(rs.runs, start, length)
	}
	rs.count += length
}

// addTo ORs the set's cells into dst word-parallel, returning the number
// newly set.
func (rs *runSet) addTo(dst *bitmap.Bitmap) uint64 {
	var added uint64
	for i := 0; i < len(rs.runs); i += 2 {
		added += dst.SetRun(rs.runs[i], rs.runs[i+1])
	}
	return added
}

// intersects reports whether any cell of the set is set in q.
func (rs *runSet) intersects(q *bitmap.Bitmap) bool {
	for i := 0; i < len(rs.runs); i += 2 {
		if q.AnyInRange(rs.runs[i], rs.runs[i+1]) {
			return true
		}
	}
	return false
}

// contains reports whether the set holds cell, by binary search over the
// run starts.
func (rs *runSet) contains(cell uint64) bool {
	n := len(rs.runs) / 2
	i := sort.Search(n, func(i int) bool { return rs.runs[2*i] > cell })
	if i == 0 {
		return false
	}
	start, length := rs.runs[2*(i-1)], rs.runs[2*(i-1)+1]
	return cell-start < length
}

// forEach calls fn with every cell in ascending order until fn returns
// false.
func (rs *runSet) forEach(fn func(cell uint64) bool) {
	for i := 0; i < len(rs.runs); i += 2 {
		start, length := rs.runs[i], rs.runs[i+1]
		for c := start; c < start+length; c++ {
			if !fn(c) {
				return
			}
		}
	}
}

// cells materializes the set as a sorted index slice (tests and
// diagnostics only — lookups stay on runs).
func (rs *runSet) cells(dst []uint64) []uint64 {
	rs.forEach(func(c uint64) bool {
		dst = append(dst, c)
		return true
	})
	return dst
}

// size returns the total cell count.
func (rs *runSet) size() uint64 { return rs.count }

// record is a decoded region-pair record. Cell sets stay in their
// compact form — runs for v1/v2, compressed containers for v3 — so a
// record held in recCache costs far less than per-cell slices and
// replays into a destination bitmap word-parallel.
type record struct {
	outs    cellSet
	ins     []cellSet // nil for payload records
	payload []byte
}

// The leading flags byte doubles as the record-format version:
//
//	0, 1 — v1 (pre-span): cell sets in per-cell delta+varint form
//	2, 3 — v2 (span): cell sets in run-length (gap, length) form
//	4, 5 — v3 (containers): cell sets in tiled container form
//	       (binenc.AppendCellSetContainers), probed in situ
//
// Writers emit the store's configured codec (v3 by default; see
// Store.SetCodec); readers accept every version, so stores written by
// earlier builds stay readable and versions may mix within one store.
const (
	recFull              = 0 // v1: explicit input cell sets follow
	recPayload           = 1 // v1: payload blob follows
	recFullRuns          = 2 // v2: run-length input cell sets follow
	recPayloadRuns       = 3 // v2: run-length outs + payload blob
	recFullContainers    = 4 // v3: container input cell sets follow
	recPayloadContainers = 5 // v3: container outs + payload blob
)

// encodeRecord serializes a region pair with the default codec.
func encodeRecord(rp *RegionPair) []byte { return encodeRecordV3(rp) }

// encodeRecordV2 serializes a region pair as a (v2, run-length)
// pair-record value. Kept callable — not just readable — so mixed-version
// compat tests and the compress benchmark can build v2 stores, and the
// golden v2 bytes stay pinned against the exact original encoder.
func encodeRecordV2(rp *RegionPair) []byte {
	var buf []byte
	if rp.IsPayload() {
		buf = append(buf, recPayloadRuns)
		buf = binenc.AppendCellSetRuns(buf, rp.Out)
		buf = binenc.AppendBytes(buf, rp.Payload)
		return buf
	}
	buf = append(buf, recFullRuns)
	buf = binenc.AppendCellSetRuns(buf, rp.Out)
	buf = binary.AppendUvarint(buf, uint64(len(rp.Ins)))
	for _, in := range rp.Ins {
		buf = binenc.AppendCellSetRuns(buf, in)
	}
	return buf
}

// encodeRecordV3 serializes a region pair as a (v3, tiled container)
// pair-record value. Cell offsets are delta-coded against their tile
// base, and each tile independently picks the smallest of the array,
// run, and bitmap container forms.
func encodeRecordV3(rp *RegionPair) []byte {
	var buf []byte
	if rp.IsPayload() {
		buf = append(buf, recPayloadContainers)
		buf = binenc.AppendCellSetContainers(buf, rp.Out)
		buf = binenc.AppendBytes(buf, rp.Payload)
		return buf
	}
	buf = append(buf, recFullContainers)
	buf = binenc.AppendCellSetContainers(buf, rp.Out)
	buf = binary.AppendUvarint(buf, uint64(len(rp.Ins)))
	for _, in := range rp.Ins {
		buf = binenc.AppendCellSetContainers(buf, in)
	}
	return buf
}

// decodeCellSetAny decodes one cell set — run-length (v2) or per-cell
// delta+varint (v1) according to runsForm — straight into a runSet via
// the streaming visitors, returning the bytes consumed. Run storage is
// sized once from the leading count (exact for v2, where it is the run
// count; worst case for v1, where it counts cells) so decoding never
// regrows the slice.
func decodeCellSetAny(src []byte, runsForm bool, into *runSet) (int, error) {
	if n, read := binary.Uvarint(src); read > 0 && n <= uint64(len(src)) && into.runs == nil {
		into.runs = make([]uint64, 0, 2*n)
	}
	if runsForm {
		return binenc.DecodeRunsInto(src, func(start, length uint64) bool {
			into.appendRun(start, length)
			return true
		})
	}
	return binenc.DecodeCellSetInto(src, func(cell uint64) bool {
		into.appendRun(cell, 1)
		return true
	})
}

// decodeCellSet decodes one cell set of the given record version into
// its in-memory probe form: a runSet for v1/v2, and for v3 either a
// containerSet wrapping the compressed bytes in situ or a runSet for the
// tiny sparse-direct sets.
func decodeCellSet(src []byte, flags byte) (cellSet, int, error) {
	if flags >= recFullContainers {
		return decodeCellSetContainers(src)
	}
	rs := &runSet{}
	n, err := decodeCellSetAny(src, flags == recFullRuns || flags == recPayloadRuns, rs)
	return rs, n, err
}

// decodeRecord parses a pair-record value of any format version.
func decodeRecord(val []byte) (*record, error) {
	if len(val) == 0 {
		return nil, fmt.Errorf("lineage: empty pair record")
	}
	flags, rest := val[0], val[1:]
	if flags > recPayloadContainers {
		return nil, fmt.Errorf("lineage: unknown pair record flags %d", flags)
	}
	isPayload := flags == recPayload || flags == recPayloadRuns || flags == recPayloadContainers
	rec := &record{}
	outs, n, err := decodeCellSet(rest, flags)
	if err != nil {
		return nil, fmt.Errorf("lineage: pair record outs: %w", err)
	}
	rec.outs = outs
	rest = rest[n:]
	if isPayload {
		payload, _, err := binenc.DecodeBytes(rest)
		if err != nil {
			return nil, fmt.Errorf("lineage: pair record payload: %w", err)
		}
		rec.payload = make([]byte, len(payload)) // non-nil even when empty
		copy(rec.payload, payload)
		return rec, nil
	}
	nIns, read := binary.Uvarint(rest)
	if read <= 0 || nIns > 255 {
		return nil, fmt.Errorf("lineage: pair record input count")
	}
	rest = rest[read:]
	rec.ins = make([]cellSet, nIns)
	for i := range rec.ins {
		in, n, err := decodeCellSet(rest, flags)
		if err != nil {
			return nil, fmt.Errorf("lineage: pair record input %d: %w", i, err)
		}
		rec.ins[i] = in
		rest = rest[n:]
	}
	return rec, nil
}

// encodeIDList serializes the pair-id list stored in a One-encoding cell
// entry (usually a single id).
func encodeIDList(ids []uint64) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, id)
	}
	return buf
}

// appendIDList parses a cell entry's pair-id list, appending to dst so
// the lookup hot path can reuse one scratch slice across probes.
func appendIDList(dst []uint64, val []byte) ([]uint64, error) {
	n, read := binary.Uvarint(val)
	if read <= 0 || n > uint64(len(val)) {
		return dst, fmt.Errorf("lineage: cell entry id count")
	}
	off := read
	for i := uint64(0); i < n; i++ {
		id, read := binary.Uvarint(val[off:])
		if read <= 0 {
			return dst, fmt.Errorf("lineage: cell entry id %d truncated", i)
		}
		dst = append(dst, id)
		off += read
	}
	return dst, nil
}

// decodeIDList parses a cell entry's pair-id list into a fresh slice
// (write-path merges; lookups use appendIDList).
func decodeIDList(val []byte) ([]uint64, error) {
	return appendIDList(nil, val)
}

// encodePayloadList serializes the payload list stored in a PayOne cell
// entry (paper Figure 4.4 stores "a duplicate of the payload in each hash
// value"; a list handles the rare case of one output cell appearing in
// multiple payload pairs).
func encodePayloadList(payloads [][]byte) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(payloads)))
	for _, p := range payloads {
		buf = binenc.AppendBytes(buf, p)
	}
	return buf
}

// forEachPayload streams the payloads of a PayOne cell entry into fn
// without copying; each payload aliases val and is only valid for the
// duration of the call. A non-nil error from fn stops the scan and is
// returned.
func forEachPayload(val []byte, fn func(p []byte) error) error {
	n, read := binary.Uvarint(val)
	if read <= 0 || n > uint64(len(val))+1 {
		return fmt.Errorf("lineage: payload list count")
	}
	off := read
	for i := uint64(0); i < n; i++ {
		p, consumed, err := binenc.DecodeBytes(val[off:])
		if err != nil {
			return fmt.Errorf("lineage: payload %d: %w", i, err)
		}
		if err := fn(p); err != nil {
			return err
		}
		off += consumed
	}
	return nil
}

// decodePayloadList parses a PayOne cell entry into copied payload slices
// (write-path merges; lookups use forEachPayload).
func decodePayloadList(val []byte) ([][]byte, error) {
	var out [][]byte
	err := forEachPayload(val, func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if out == nil {
		out = [][]byte{}
	}
	return out, nil
}
