package lineage

import (
	"encoding/binary"
	"fmt"

	"subzero/internal/binenc"
)

// Physical key layout inside a store's hashtable:
//
//	'P' + uvarint(pairID)          region-pair record
//	'K' + slot byte + 8-byte cell  per-cell entry (One encodings)
//	'!' + name                     store metadata (next pair id, R-trees)
//
// For backward-optimized stores the only key slot is 0 (output cells); for
// forward-optimized stores slot i holds the cells of input i.
const (
	keyPair = 'P'
	keyCell = 'K'
	keyMeta = '!'
)

func pairKey(id uint64) []byte {
	buf := make([]byte, 1, 11)
	buf[0] = keyPair
	return binary.AppendUvarint(buf, id)
}

func cellKey(slot int, cell uint64) []byte {
	buf := make([]byte, 10)
	buf[0] = keyCell
	buf[1] = byte(slot)
	binary.BigEndian.PutUint64(buf[2:], cell)
	return buf
}

func metaKey(name string) []byte { return append([]byte{keyMeta}, name...) }

// record is a decoded region-pair record.
type record struct {
	outs    []uint64
	ins     [][]uint64 // nil for payload records
	payload []byte
}

const (
	recFull    = 0 // flags value: explicit input cell sets follow
	recPayload = 1 // flags value: payload blob follows
)

// encodeRecord serializes a region pair as a pair-record value.
func encodeRecord(rp *RegionPair) []byte {
	var buf []byte
	if rp.IsPayload() {
		buf = append(buf, recPayload)
		buf = binenc.AppendCellSet(buf, rp.Out)
		buf = binenc.AppendBytes(buf, rp.Payload)
		return buf
	}
	buf = append(buf, recFull)
	buf = binenc.AppendCellSet(buf, rp.Out)
	buf = binary.AppendUvarint(buf, uint64(len(rp.Ins)))
	for _, in := range rp.Ins {
		buf = binenc.AppendCellSet(buf, in)
	}
	return buf
}

// decodeRecord parses a pair-record value.
func decodeRecord(val []byte) (*record, error) {
	if len(val) == 0 {
		return nil, fmt.Errorf("lineage: empty pair record")
	}
	flags, rest := val[0], val[1:]
	outs, n, err := binenc.DecodeCellSet(rest)
	if err != nil {
		return nil, fmt.Errorf("lineage: pair record outs: %w", err)
	}
	rest = rest[n:]
	switch flags {
	case recPayload:
		payload, _, err := binenc.DecodeBytes(rest)
		if err != nil {
			return nil, fmt.Errorf("lineage: pair record payload: %w", err)
		}
		p := make([]byte, len(payload)) // non-nil even when empty
		copy(p, payload)
		return &record{outs: outs, payload: p}, nil
	case recFull:
		nIns, read := binary.Uvarint(rest)
		if read <= 0 || nIns > 255 {
			return nil, fmt.Errorf("lineage: pair record input count")
		}
		rest = rest[read:]
		ins := make([][]uint64, nIns)
		for i := range ins {
			set, n, err := binenc.DecodeCellSet(rest)
			if err != nil {
				return nil, fmt.Errorf("lineage: pair record input %d: %w", i, err)
			}
			ins[i] = set
			rest = rest[n:]
		}
		return &record{outs: outs, ins: ins}, nil
	default:
		return nil, fmt.Errorf("lineage: unknown pair record flags %d", flags)
	}
}

// encodeIDList serializes the pair-id list stored in a One-encoding cell
// entry (usually a single id).
func encodeIDList(ids []uint64) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.AppendUvarint(buf, id)
	}
	return buf
}

// decodeIDList parses a cell entry's pair-id list.
func decodeIDList(val []byte) ([]uint64, error) {
	n, read := binary.Uvarint(val)
	if read <= 0 || n > uint64(len(val)) {
		return nil, fmt.Errorf("lineage: cell entry id count")
	}
	ids := make([]uint64, 0, n)
	off := read
	for i := uint64(0); i < n; i++ {
		id, read := binary.Uvarint(val[off:])
		if read <= 0 {
			return nil, fmt.Errorf("lineage: cell entry id %d truncated", i)
		}
		ids = append(ids, id)
		off += read
	}
	return ids, nil
}

// encodePayloadList serializes the payload list stored in a PayOne cell
// entry (paper Figure 4.4 stores "a duplicate of the payload in each hash
// value"; a list handles the rare case of one output cell appearing in
// multiple payload pairs).
func encodePayloadList(payloads [][]byte) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(payloads)))
	for _, p := range payloads {
		buf = binenc.AppendBytes(buf, p)
	}
	return buf
}

// decodePayloadList parses a PayOne cell entry.
func decodePayloadList(val []byte) ([][]byte, error) {
	n, read := binary.Uvarint(val)
	if read <= 0 || n > uint64(len(val))+1 {
		return nil, fmt.Errorf("lineage: payload list count")
	}
	out := make([][]byte, 0, n)
	off := read
	for i := uint64(0); i < n; i++ {
		p, consumed, err := binenc.DecodeBytes(val[off:])
		if err != nil {
			return nil, fmt.Errorf("lineage: payload %d: %w", i, err)
		}
		out = append(out, append([]byte(nil), p...))
		off += consumed
	}
	return out, nil
}
