package lineage

import "testing"

func TestModeSet(t *testing.T) {
	s := NewModeSet(Full, Pay)
	if !s.Has(Full) || !s.Has(Pay) || s.Has(Map) || s.Has(Blackbox) {
		t.Fatalf("set contents wrong: %s", s)
	}
	if !s.NeedsPairs() || !s.NeedsPayload() {
		t.Fatal("needs flags wrong")
	}
	if NewModeSet(Comp).NeedsPairs() {
		t.Fatal("Comp alone should not need full pairs")
	}
	if !NewModeSet(Comp).NeedsPayload() {
		t.Fatal("Comp needs payload")
	}
	if NewModeSet(Blackbox).NeedsPairs() || NewModeSet(Blackbox).NeedsPayload() {
		t.Fatal("Blackbox writes nothing")
	}
	ext := NewModeSet(Full).With(Map)
	if !ext.Has(Map) || !ext.Has(Full) {
		t.Fatal("With failed")
	}
}

func TestStrategyValidate(t *testing.T) {
	valid := []Strategy{
		StratBlackbox, StratMap, StratFullOne, StratFullMany,
		StratPayOne, StratPayMany, StratCompOne, StratCompMany,
		StratFullOneFwd, StratFullManyFwd,
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	invalid := []Strategy{
		{Mode: Blackbox, Enc: One},
		{Mode: Map, Enc: Many},
		{Mode: Full, Enc: EncNone},
		{Mode: Pay, Enc: EncNone},
		{Mode: Pay, Enc: One, Orient: ForwardOpt},
		{Mode: Comp, Enc: Many, Orient: ForwardOpt},
		{Mode: Mode(42), Enc: One},
	}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Fatalf("%+v validated", s)
		}
	}
}

func TestStrategyStringsAndIDs(t *testing.T) {
	cases := map[Strategy]string{
		StratBlackbox:    "Blackbox",
		StratMap:         "Map",
		StratFullOne:     "<-Full/One",
		StratFullManyFwd: "->Full/Many",
		StratPayMany:     "<-Pay/Many",
		StratCompOne:     "<-Comp/One",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%+v String=%q, want %q", s, got, want)
		}
	}
	// IDs must be unique across the named strategies.
	ids := map[string]bool{}
	for _, s := range []Strategy{
		StratBlackbox, StratMap, StratFullOne, StratFullMany, StratPayOne,
		StratPayMany, StratCompOne, StratCompMany, StratFullOneFwd, StratFullManyFwd,
	} {
		if ids[s.ID()] {
			t.Fatalf("duplicate strategy ID %q", s.ID())
		}
		ids[s.ID()] = true
	}
}

func TestStoresPairs(t *testing.T) {
	if StratBlackbox.StoresPairs() || StratMap.StoresPairs() {
		t.Fatal("storage-free strategies claim to store")
	}
	for _, s := range []Strategy{StratFullOne, StratFullMany, StratPayOne, StratPayMany, StratCompOne} {
		if !s.StoresPairs() {
			t.Fatalf("%s should store pairs", s)
		}
	}
}
