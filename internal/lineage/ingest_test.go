package lineage

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"subzero/internal/bitmap"
	"subzero/internal/kvstore"
)

// writeThrough pushes pairs through a Writer (optionally via a sharded
// coordinator) into the store, mirroring how the executor feeds lineage.
func writeThrough(t *testing.T, st *Store, strat Strategy, pairs []RegionPair, coord *Coordinator) {
	t.Helper()
	var full, pay []*Store
	if strat.Mode == Full {
		full = []*Store{st}
	} else {
		pay = []*Store{st}
	}
	w := NewWriter(tOutSpace, tInSpaces, full, pay, nil)
	if coord != nil {
		w.UseIngest(coord)
	}
	for i, rp := range toStorePairs(strat, pairs) {
		var err error
		if strat.Mode == Full {
			err = w.LWrite(rp.Out, rp.Ins...)
		} else {
			err = w.LWritePayload(rp.Out, rp.Payload)
		}
		if err != nil {
			t.Fatal(err)
		}
		// Force small blocks so the pipeline sees many batches, not one.
		if i%16 == 15 {
			if err := w.flushBuffers(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

// encodeLegacyStats reproduces the pre-pipeline stats record layout: four
// varint volumes plus one fixed-width WriteTime.
func encodeLegacyStats(ss StoreStats) []byte {
	buf := make([]byte, 0, 40)
	buf = appendUvarint(buf, uint64(ss.Pairs))
	buf = appendUvarint(buf, uint64(ss.OutCells))
	buf = appendUvarint(buf, uint64(ss.InCells))
	buf = appendUvarint(buf, uint64(ss.PayloadBytes))
	for i := 0; i < 8; i++ {
		buf = append(buf, byte(uint64(ss.WriteTime)>>(8*i)))
	}
	return buf
}

func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// corruptFile flips bytes in the middle of a file.
func corruptFile(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for i := len(buf) / 2; i < len(buf) && i < len(buf)/2+8; i++ {
		buf[i] ^= 0xA5
	}
	return os.WriteFile(path, buf, 0o644)
}

// Sharded ingest must produce a store that answers every query exactly
// like a serially written one — and, because pair ids are reserved on the
// enqueueing thread, one whose size accounting matches byte for byte.
func TestShardedIngestMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pairs := randomPairs(rng, 300)
	for _, strat := range allStoreStrategies() {
		for _, shards := range []int{2, 4, 7} {
			t.Run(fmt.Sprintf("%s/shards=%d", strat.ID(), shards), func(t *testing.T) {
				serial, err := OpenStore(kvstore.NewMem(), strat, tOutSpace, tInSpaces)
				if err != nil {
					t.Fatal(err)
				}
				writeThrough(t, serial, strat, pairs, nil)

				coord := NewCoordinator(context.Background(), IngestConfig{Shards: shards, Depth: 2}, nil)
				defer coord.Close()
				sharded, err := OpenStore(kvstore.NewMem(), strat, tOutSpace, tInSpaces)
				if err != nil {
					t.Fatal(err)
				}
				writeThrough(t, sharded, strat, pairs, coord)

				if got, want := sharded.NumPairs(), serial.NumPairs(); got != want {
					t.Fatalf("sharded NumPairs = %d, serial = %d", got, want)
				}
				ss, sw := sharded.Stats(), serial.Stats()
				if ss.OutCells != sw.OutCells || ss.InCells != sw.InCells || ss.PayloadBytes != sw.PayloadBytes {
					t.Fatalf("volume stats diverge: sharded %+v serial %+v", ss, sw)
				}
				if ss.Shards != shards {
					t.Fatalf("sharded store reports %d shards, want %d", ss.Shards, shards)
				}
				if got, want := sharded.SizeBytes(), serial.SizeBytes(); got != want {
					t.Fatalf("sharded SizeBytes = %d, serial = %d (id assignment nondeterministic?)", got, want)
				}

				var mapp PayloadFn
				if strat.Mode == Pay || strat.Mode == Comp {
					mapp = testMapP
				}
				for trial := 0; trial < 10; trial++ {
					q := randomQuery(rng, tOutSpace, 40)
					a, b := bitmap.New(tInSpaces[0]), bitmap.New(tInSpaces[0])
					if err := serial.Backward(q, a, 0, mapp, nil, nil); err != nil {
						t.Fatal(err)
					}
					if err := sharded.Backward(q, b, 0, mapp, nil, nil); err != nil {
						t.Fatal(err)
					}
					if !bitmapsEqual(a, b) {
						t.Fatalf("trial %d: sharded backward answer differs from serial", trial)
					}
					fq := randomQuery(rng, tInSpaces[0], 40)
					fa, fb := bitmap.New(tOutSpace), bitmap.New(tOutSpace)
					if err := serial.Forward(fq, fa, 0, mapp, nil); err != nil {
						t.Fatal(err)
					}
					if err := sharded.Forward(fq, fb, 0, mapp, nil); err != nil {
						t.Fatal(err)
					}
					if !bitmapsEqual(fa, fb) {
						t.Fatalf("trial %d: sharded forward answer differs from serial", trial)
					}
				}
			})
		}
	}
}

// Queries racing an active ingest must see a consistent merged view:
// everything enqueued before the query, nothing torn. The test streams
// pairs through a sharded writer while lookups run concurrently, checks
// every mid-flight answer is a subset of the final answer, and checks the
// settled store answers byte-identically to a fully flushed serial store.
func TestQueryRacesIngest(t *testing.T) {
	for _, strat := range []Strategy{StratFullOne, StratFullMany} {
		t.Run(strat.ID(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			pairs := randomPairs(rng, 400)
			serial, err := OpenStore(kvstore.NewMem(), strat, tOutSpace, tInSpaces)
			if err != nil {
				t.Fatal(err)
			}
			writeThrough(t, serial, strat, pairs, nil)
			q := randomQuery(rng, tOutSpace, 60)
			final := bitmap.New(tInSpaces[0])
			if err := serial.Backward(q, final, 0, nil, nil, nil); err != nil {
				t.Fatal(err)
			}

			coord := NewCoordinator(context.Background(), IngestConfig{Shards: 4, Depth: 2}, nil)
			defer coord.Close()
			st, err := OpenStore(kvstore.NewMem(), strat, tOutSpace, tInSpaces)
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			stop := make(chan struct{})
			errCh := make(chan error, 8)
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						dst := bitmap.New(tInSpaces[0])
						if err := st.Backward(q, dst, 0, nil, nil, nil); err != nil {
							errCh <- err
							return
						}
						// Mid-flight answers must never contain cells the
						// finished store does not.
						ok := true
						dst.Iterate(func(idx uint64) bool {
							if !final.Get(idx) {
								ok = false
							}
							return ok
						})
						if !ok {
							errCh <- fmt.Errorf("mid-ingest answer contains cells absent from the final store")
							return
						}
					}
				}()
			}
			writeThrough(t, st, strat, pairs, coord)
			close(stop)
			wg.Wait()
			select {
			case err := <-errCh:
				t.Fatal(err)
			default:
			}

			// Settled: identical to the serial store.
			got := bitmap.New(tInSpaces[0])
			if err := st.Backward(q, got, 0, nil, nil, nil); err != nil {
				t.Fatal(err)
			}
			if !bitmapsEqual(got, final) {
				t.Fatal("post-ingest answer differs from serial store")
			}
		})
	}
}

// failingStore errors on the Nth record write, whichever worker gets it.
type failingStore struct {
	kvstore.Store
	writes atomic.Int64
	failAt int64
}

var errInjected = errors.New("injected write failure")

func (f *failingStore) Put(key, val []byte) error {
	if f.writes.Add(1) >= f.failAt {
		return errInjected
	}
	return f.Store.Put(key, val)
}

func (f *failingStore) PutBatch(kvs []kvstore.KV) error {
	if f.writes.Add(int64(len(kvs))) >= f.failAt {
		return errInjected
	}
	return kvstore.PutBatch(f.Store, kvs) // falls back to per-key Puts... but counted above
}

// A shard worker failure must reach the operator through the writer, at
// the latest at the flush barrier.
func TestIngestErrorPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pairs := randomPairs(rng, 200)
	coord := NewCoordinator(context.Background(), IngestConfig{Shards: 3, Depth: 2}, nil)
	defer coord.Close()
	fs := &failingStore{Store: kvstore.NewMem(), failAt: 50}
	st, err := OpenStore(fs, StratFullOne, tOutSpace, tInSpaces)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(tOutSpace, tInSpaces, []*Store{st}, nil, nil)
	w.UseIngest(coord)
	var sawErr error
	for _, rp := range pairs {
		if err := w.LWrite(rp.Out, rp.Ins...); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == nil {
		sawErr = w.Flush()
	}
	if !errors.Is(sawErr, errInjected) {
		t.Fatalf("injected shard failure did not propagate, got %v", sawErr)
	}
	if !errors.Is(coord.Err(), errInjected) {
		t.Fatalf("coordinator did not latch the failure: %v", coord.Err())
	}
}

// Cancelling the run's context must fail the pipeline with a wrapped
// ctx.Err(), unblocking producers stuck in backpressure.
func TestIngestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pairs := randomPairs(rng, 300)
	ctx, cancel := context.WithCancel(context.Background())
	coord := NewCoordinator(ctx, IngestConfig{Shards: 2, Depth: 1}, nil)
	defer coord.Close()
	st, err := OpenStore(kvstore.NewMem(), StratFullOne, tOutSpace, tInSpaces)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(tOutSpace, tInSpaces, []*Store{st}, nil, nil)
	w.UseIngest(coord)
	for _, rp := range pairs[:100] {
		if err := w.LWrite(rp.Out, rp.Ins...); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	var sawErr error
	for _, rp := range pairs[100:] {
		if sawErr = w.LWrite(rp.Out, rp.Ins...); sawErr != nil {
			break
		}
	}
	if sawErr == nil {
		sawErr = w.Flush()
	}
	if !errors.Is(sawErr, context.Canceled) {
		t.Fatalf("cancellation did not propagate through the writer, got %v", sawErr)
	}
}

// Satellite regression: concurrent writers aggregating durations must not
// under-report — the counters are atomic, so N goroutines adding D each
// yield exactly N*D.
func TestAddWriteTimeConcurrentAccounting(t *testing.T) {
	st, err := OpenStore(kvstore.NewMem(), StratFullOne, tOutSpace, tInSpaces)
	if err != nil {
		t.Fatal(err)
	}
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				st.AddWriteTime(time.Microsecond)
				st.AddEnqueueTime(2 * time.Microsecond)
				st.AddFlushTime(3 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	ss := st.Stats()
	want := workers * iters * time.Microsecond
	if ss.WriteTime != want || ss.EnqueueTime != 2*want || ss.FlushTime != 3*want {
		t.Fatalf("durations under-reported: write=%v enqueue=%v flush=%v want %v/%v/%v",
			ss.WriteTime, ss.EnqueueTime, ss.FlushTime, want, 2*want, 3*want)
	}
}

// Satellite regression: the encoded stats record — and therefore
// SizeBytes and LineageBytes — must not vary with wall-clock timing. All
// duration fields are fixed-width.
func TestStatsEncodingTimingIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var wantLen int
	for trial := 0; trial < 50; trial++ {
		st, err := OpenStore(kvstore.NewMem(), StratFullOne, tOutSpace, tInSpaces)
		if err != nil {
			t.Fatal(err)
		}
		st.addVolumes(12, 340, 560, 0) // fixed volumes
		st.setShards(4)
		st.AddWriteTime(time.Duration(rng.Int63n(int64(time.Hour))))
		st.AddEnqueueTime(time.Duration(rng.Int63n(int64(time.Hour))))
		st.AddFlushTime(time.Duration(rng.Int63n(int64(time.Hour))))
		enc := st.encodeStats()
		if trial == 0 {
			wantLen = len(enc)
		} else if len(enc) != wantLen {
			t.Fatalf("stats record length varies with timing: %d vs %d", len(enc), wantLen)
		}
		// Round-trip through decode preserves every field.
		st2, err := OpenStore(kvstore.NewMem(), StratFullOne, tOutSpace, tInSpaces)
		if err != nil {
			t.Fatal(err)
		}
		st2.decodeStats(enc)
		if got, want := st2.Stats(), st.Stats(); got != want {
			t.Fatalf("stats round-trip = %+v, want %+v", got, want)
		}
	}
}

// Legacy stats records (4 varints + one fixed-width WriteTime) written by
// pre-pipeline builds must keep decoding.
func TestStatsDecodeLegacyFormat(t *testing.T) {
	st, err := OpenStore(kvstore.NewMem(), StratFullOne, tOutSpace, tInSpaces)
	if err != nil {
		t.Fatal(err)
	}
	legacy := encodeLegacyStats(StoreStats{Pairs: 7, OutCells: 70, InCells: 700, PayloadBytes: 3, WriteTime: 12345 * time.Nanosecond})
	st.decodeStats(legacy)
	got := st.Stats()
	want := StoreStats{Pairs: 7, OutCells: 70, InCells: 700, PayloadBytes: 3, WriteTime: 12345 * time.Nanosecond}
	if got != want {
		t.Fatalf("legacy stats decode = %+v, want %+v", got, want)
	}
}

// A store written and flushed by the pipeline must reopen with its meta
// (pair counter, stats, indexes) loaded from the atomic blob, and a
// corrupted meta sidecar must degrade to a rebuild instead of a
// half-load — pairs stay queryable.
func TestStoreMetaBlobReopenAndRecovery(t *testing.T) {
	for _, strat := range []Strategy{StratFullOne, StratFullMany} {
		t.Run(strat.ID(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(23))
			pairs := randomPairs(rng, 80)
			dir := t.TempDir() + "/s.log"
			fs, err := kvstore.OpenFile(dir)
			if err != nil {
				t.Fatal(err)
			}
			st, err := OpenStore(fs, strat, tOutSpace, tInSpaces)
			if err != nil {
				t.Fatal(err)
			}
			writeThrough(t, st, strat, pairs, nil)
			q := randomQuery(rng, tOutSpace, 50)
			want := bitmap.New(tInSpaces[0])
			if err := st.Backward(q, want, 0, nil, nil, nil); err != nil {
				t.Fatal(err)
			}
			wantPairs := st.NumPairs()
			fs.Close()

			// Clean reopen: everything restored from the blob.
			fs, err = kvstore.OpenFile(dir)
			if err != nil {
				t.Fatal(err)
			}
			st, err = OpenStore(fs, strat, tOutSpace, tInSpaces)
			if err != nil {
				t.Fatal(err)
			}
			if st.NumPairs() != wantPairs {
				t.Fatalf("reopened NumPairs = %d, want %d", st.NumPairs(), wantPairs)
			}
			got := bitmap.New(tInSpaces[0])
			if err := st.Backward(q, got, 0, nil, nil, nil); err != nil {
				t.Fatal(err)
			}
			if !bitmapsEqual(got, want) {
				t.Fatal("reopened store answers differ")
			}
			fs.Close()

			// Corrupt the sidecar: the store must rebuild from records and
			// still answer correctly (stats are sacrificed, pairs are not).
			if err := corruptFile(dir + ".meta"); err != nil {
				t.Fatal(err)
			}
			fs, err = kvstore.OpenFile(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer fs.Close()
			st, err = OpenStore(fs, strat, tOutSpace, tInSpaces)
			if err != nil {
				t.Fatal(err)
			}
			got2 := bitmap.New(tInSpaces[0])
			if err := st.Backward(q, got2, 0, nil, nil, nil); err != nil {
				t.Fatal(err)
			}
			if !bitmapsEqual(got2, want) {
				t.Fatal("rebuilt store answers differ after meta corruption")
			}
			if next := st.nextPair.Load(); next != uint64(wantPairs) {
				t.Fatalf("rebuilt pair counter = %d, want %d", next, wantPairs)
			}
		})
	}
}
