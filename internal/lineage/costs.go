package lineage

import "time"

// Cost-model constants shared by the query-time optimizer (internal/query)
// and the strategy optimizer (internal/opt) — the per-unit costs of the
// primitive operations each access path performs. They are rough
// calibrations for an in-process Go implementation: the optimizers only
// need them to be ordinally correct (mapping call < hash lookup < R-tree
// lookup < record scan < re-execution), with the workload-dependent
// factors (fanin, fanout, pair counts, measured execution times) supplied
// by the statistics collector.
const (
	// CostMapCall is one mapping-function invocation.
	CostMapCall = 250 * time.Nanosecond
	// CostCellSet is setting one result cell in the boolean array.
	CostCellSet = 15 * time.Nanosecond
	// CostLookupOne is one hash lookup plus value decode (One encodings).
	CostLookupOne = 1200 * time.Nanosecond
	// CostLookupMany is one R-tree point query (Many encodings).
	CostLookupMany = 3500 * time.Nanosecond
	// CostScanPair is scanning and decoding one pair record.
	CostScanPair = 1500 * time.Nanosecond
	// CostMapPCall is one payload-function (map_p) evaluation.
	CostMapPCall = 400 * time.Nanosecond
	// CostTraceJoin is joining one traced pair against the query during
	// black-box re-execution — cheaper than CostScanPair because traced
	// pairs stream through memory without store reads or decoding.
	CostTraceJoin = 300 * time.Nanosecond

	// CostDefaultReexec is assumed for re-execution when no run has been
	// observed.
	CostDefaultReexec = 50 * time.Millisecond
)

// Write-path and storage estimation constants, used by the strategy
// optimizer to extrapolate un-profiled encodings from profiled volumes.
const (
	// EstBytesPerCell is the average encoded size of one cell index in a
	// delta+varint cell set.
	EstBytesPerCell = 2.3
	// EstRecordOverhead is the fixed per-record cost (CRC, framing, key).
	EstRecordOverhead = 18.0
	// EstCellEntryBytes is one per-cell hash entry (One encodings):
	// framing + 10-byte key + small id/payload list.
	EstCellEntryBytes = 23.0
	// EstTreeEntryBytes is one serialized R-tree item (Many encodings).
	EstTreeEntryBytes = 22.0

	// EstWritePerByte is the time to serialize+buffer one byte.
	EstWritePerByte = 8 * time.Nanosecond
	// EstWritePerPair is the fixed per-pair lwrite cost.
	EstWritePerPair = 700 * time.Nanosecond
	// EstTreeInsert is one R-tree insertion.
	EstTreeInsert = 1800 * time.Nanosecond
)

// v3 container-codec estimation constants. Stores default to the tiled
// container record form (CodecV3), which changes both the size and the
// probe cost the optimizers should assume for un-profiled strategies.
const (
	// EstBytesPerCellV3 is the average encoded size of one cell index
	// under the v3 container codec: the bitmap container caps every tile
	// at 1 bit per cell (0.125 B), run containers compress clustered
	// regions below that, and tiny sets fall back to varint sparse-direct
	// near the v1 cost. The blend across the benchmark workloads sits well
	// under one byte per cell.
	EstBytesPerCellV3 = 0.6
	// EstWritePerPairV3 is the fixed per-pair lwrite cost under the v3
	// encoder — below EstWritePerPair because dense tiles are emitted as
	// fixed-width words or run pairs instead of per-cell varint appends.
	EstWritePerPairV3 = 550 * time.Nanosecond
	// CostScanPairV3 is scanning one v3 pair record in an unindexed
	// probe: the query bitmap is intersected in situ against the
	// compressed containers, word-parallel, with no run materialization.
	CostScanPairV3 = 900 * time.Nanosecond
)
