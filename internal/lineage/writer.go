package lineage

import (
	"fmt"
	"time"

	"subzero/internal/grid"
	"subzero/internal/obs"
	"subzero/internal/trace"
)

// Writer implements the lwrite half of the runtime API (paper Table I) for
// a single operator execution. Operators call LWrite with explicit region
// pairs and LWritePayload with (outcells, payload) pairs; the writer
// normalizes and validates them, buffers blocks of pairs in memory, and
// bulk-encodes each block into every store whose strategy consumes that
// pair kind ("Blocks of region pairs are buffered in memory, and bulk
// encoded using the Encoder", §VI-A).
//
// During black-box re-execution the executor attaches a sink instead of
// stores; pairs stream to the query join without being persisted.
type Writer struct {
	outSpace *grid.Space
	inSpaces []*grid.Space

	fullStores []*Store // strategies consuming explicit pairs (Full)
	payStores  []*Store // strategies consuming payload pairs (Pay, Comp)
	sink       func(*RegionPair) error

	// coord, when set, routes buffered blocks to the sharded asynchronous
	// ingest pipeline instead of encoding them inline; the operator thread
	// then pays only the enqueue cost.
	coord *Coordinator

	// span, when set, parents trace spans around ingest enqueue and the
	// end-of-run drain barrier. Nil (the sampled-off path) costs nothing.
	span *trace.Span

	fullBuf   []RegionPair
	payBuf    []RegionPair
	bufCells  int
	elapsed   time.Duration
	pairCount int
}

// flushCellThreshold bounds the cells buffered before a bulk encode.
const flushCellThreshold = 1 << 16

// NewWriter creates a writer for one operator execution. fullStores
// receive LWrite pairs, payStores receive LWritePayload pairs, and sink
// (optional) receives every pair for tracing-mode re-execution.
func NewWriter(outSpace *grid.Space, inSpaces []*grid.Space, fullStores, payStores []*Store, sink func(*RegionPair) error) *Writer {
	return &Writer{
		outSpace:   outSpace,
		inSpaces:   inSpaces,
		fullStores: fullStores,
		payStores:  payStores,
		sink:       sink,
	}
}

// UseIngest switches the writer to the asynchronous ingest pipeline:
// buffered blocks are handed to the coordinator's shard workers instead
// of being encoded on the calling thread. Every attached store is marked
// so lookups racing the ingest barrier against the coordinator first.
// Call before the first LWrite.
func (w *Writer) UseIngest(c *Coordinator) {
	if c == nil || !c.cfg.Enabled() {
		return
	}
	w.coord = c
	for _, s := range w.fullStores {
		s.attachIngest(c)
	}
	for _, s := range w.payStores {
		s.attachIngest(c)
	}
}

// SetSpan attaches the trace span under which ingest enqueue and drain
// spans are created. Call alongside UseIngest, before the first LWrite.
func (w *Writer) SetSpan(sp *trace.Span) { w.span = sp }

// LWrite records a full region pair: outcells in the output array and one
// cell set per input array (lwrite(outcells, incells1, ..., incellsn)).
// The writer copies the slices, so callers may reuse their buffers.
func (w *Writer) LWrite(out []uint64, ins ...[]uint64) error {
	start := time.Now()
	defer func() { w.elapsed += time.Since(start) }()
	if len(ins) != len(w.inSpaces) {
		return fmt.Errorf("lineage: lwrite got %d input sets, operator has %d inputs", len(ins), len(w.inSpaces))
	}
	rp := RegionPair{Out: append([]uint64(nil), out...), Ins: make([][]uint64, len(ins))}
	for i, in := range ins {
		rp.Ins[i] = append([]uint64(nil), in...)
	}
	rp.Normalize()
	if err := rp.Validate(w.outSpace, w.inSpaces); err != nil {
		return err
	}
	w.pairCount++
	if w.sink != nil {
		if err := w.sink(&rp); err != nil {
			return err
		}
	}
	if len(w.fullStores) == 0 {
		return nil
	}
	w.fullBuf = append(w.fullBuf, rp)
	out2, in2 := rp.CellCount()
	w.bufCells += out2 + in2
	if w.bufCells >= flushCellThreshold {
		return w.flushBuffers()
	}
	return nil
}

// LWritePayload records a payload pair (lwrite(outcells, payload)): the
// output cells plus a small operator-defined blob that map_p interprets at
// query time. The writer copies both arguments.
func (w *Writer) LWritePayload(out []uint64, payload []byte) error {
	start := time.Now()
	defer func() { w.elapsed += time.Since(start) }()
	rp := RegionPair{
		Out:     append([]uint64(nil), out...),
		Payload: append([]byte(nil), payload...),
	}
	if rp.Payload == nil {
		rp.Payload = []byte{}
	}
	rp.Normalize()
	if err := rp.Validate(w.outSpace, w.inSpaces); err != nil {
		return err
	}
	w.pairCount++
	if len(w.payStores) == 0 {
		return nil
	}
	w.payBuf = append(w.payBuf, rp)
	w.bufCells += len(rp.Out)
	if w.bufCells >= flushCellThreshold {
		return w.flushBuffers()
	}
	return nil
}

func (w *Writer) flushBuffers() error {
	if w.coord != nil {
		// Asynchronous path: ownership of the buffered blocks transfers
		// to the pipeline, so fresh buffers grow on the next LWrite.
		esp := w.span.Child("ingest.enqueue", obs.SpanIngestEnqueue)
		esp.SetAttrInt("pairs", int64(len(w.fullBuf)+len(w.payBuf)))
		defer esp.End()
		if len(w.fullBuf) > 0 {
			if err := w.coord.Enqueue(w.fullStores, w.fullBuf); err != nil {
				return err
			}
			w.fullBuf = nil
		}
		if len(w.payBuf) > 0 {
			if err := w.coord.Enqueue(w.payStores, w.payBuf); err != nil {
				return err
			}
			w.payBuf = nil
		}
		w.bufCells = 0
		return nil
	}
	if len(w.fullBuf) > 0 {
		for _, s := range w.fullStores {
			start := time.Now()
			if err := s.WritePairs(w.fullBuf); err != nil {
				return err
			}
			s.AddWriteTime(time.Since(start))
		}
		w.fullBuf = w.fullBuf[:0]
	}
	if len(w.payBuf) > 0 {
		for _, s := range w.payStores {
			start := time.Now()
			if err := s.WritePairs(w.payBuf); err != nil {
				return err
			}
			s.AddWriteTime(time.Since(start))
		}
		w.payBuf = w.payBuf[:0]
	}
	w.bufCells = 0
	return nil
}

// Flush drains buffered pairs into the stores and persists their indexes.
// Under asynchronous ingest it is the end-of-run barrier: the shard
// workers drain, then each store commits its pending entries and metadata
// and returns to the quiescent read contract. The executor calls it once
// when the operator's run completes.
func (w *Writer) Flush() error {
	start := time.Now()
	defer func() { w.elapsed += time.Since(start) }()
	if err := w.flushBuffers(); err != nil {
		return err
	}
	if w.coord != nil {
		// However Flush exits, the stores must return to the quiescent
		// read contract: a store left attached to a coordinator that the
		// executor is about to close would route every later lookup into
		// a dead pipeline.
		defer func() {
			for _, s := range w.fullStores {
				s.detachIngest()
			}
			for _, s := range w.payStores {
				s.detachIngest()
			}
		}()
		bstart := time.Now()
		dsp := w.span.Child("ingest.drain", obs.SpanIngestDrain)
		if err := w.coord.Barrier(); err != nil {
			dsp.End()
			return err
		}
		dsp.End()
		// The drain barrier is operator-thread flush latency shared by
		// every store of this writer; split it so a node profiling k
		// strategies does not charge each store the other k-1 stores'
		// drain cost.
		if n := len(w.fullStores) + len(w.payStores); n > 0 {
			share := time.Since(bstart) / time.Duration(n)
			for _, s := range w.fullStores {
				s.AddFlushTime(share)
			}
			for _, s := range w.payStores {
				s.AddFlushTime(share)
			}
		}
	}
	flushStore := func(s *Store) error {
		fstart := time.Now()
		err := s.Flush()
		if w.coord != nil {
			s.AddFlushTime(time.Since(fstart))
		}
		return err
	}
	for _, s := range w.fullStores {
		if err := flushStore(s); err != nil {
			return err
		}
	}
	for _, s := range w.payStores {
		if err := flushStore(s); err != nil {
			return err
		}
	}
	return nil
}

// Elapsed returns the wall-clock time spent inside the lwrite API for this
// execution — the runtime overhead attributable to lineage capture.
func (w *Writer) Elapsed() time.Duration { return w.elapsed }

// Pairs returns the number of pairs written through this writer.
func (w *Writer) Pairs() int { return w.pairCount }
