package lineage

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"subzero/internal/bitmap"
	"subzero/internal/fault"
	"subzero/internal/kvstore"
)

// TestCrashPointMatrix iterates every registered kvstore failpoint in
// the flush/commit path: flush a clean batch, arm the point, push a
// second batch into the fault, abandon the store without closing (a
// simulated kill — buffered bytes and unsynced state die with the
// process), reopen, and require consistent-prefix recovery: the store
// loads, answers queries, covers everything the pre-fault flush made
// durable, and claims nothing beyond what was ever written.
//
// The matrix walks fault.Registered(), so a new fsync/commit site that
// registers its failpoint (as CONTRIBUTING requires) is tested here with
// no further wiring.
func TestCrashPointMatrix(t *testing.T) {
	var points []string
	for _, p := range fault.Registered() {
		if strings.HasPrefix(p, "kvstore/") {
			points = append(points, p)
		}
	}
	if len(points) == 0 {
		t.Fatal("no kvstore failpoints registered")
	}
	t.Logf("crash matrix over %d failpoints: %v", len(points), points)

	strat := StratFullOne
	rng := rand.New(rand.NewSource(77))
	pairsA := randomPairs(rng, 40)
	pairsB := randomPairs(rng, 40)
	q := randomQuery(rand.New(rand.NewSource(3)), tOutSpace, 25)
	wantA := refBackward(pairsA, q, 0)
	wantAB := refBackward(append(append([]RegionPair{}, pairsA...), pairsB...), q, 0)

	for _, pt := range points {
		t.Run(pt, func(t *testing.T) {
			defer fault.Reset()
			path := filepath.Join(t.TempDir(), "s.log")
			fs, err := kvstore.OpenFile(path)
			if err != nil {
				t.Fatal(err)
			}
			st, err := OpenStore(fs, strat, tOutSpace, tInSpaces)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.WritePairs(toStorePairs(strat, pairsA)); err != nil {
				t.Fatal(err)
			}
			if err := st.Flush(); err != nil {
				t.Fatal(err)
			}

			action := fault.Action{Kind: fault.KindError}
			if strings.HasSuffix(pt, "file/write") {
				action = fault.Action{Kind: fault.KindTorn, Bytes: 8}
			}
			if err := fault.Arm(pt, action); err != nil {
				t.Fatal(err)
			}
			// Batch B goes through the lineage write path. Points that
			// path bypasses (the legacy single-record Put — FileStore is
			// a MetaCommitter, so lineage group-commits via PutBatch)
			// are driven directly so every registered point proves out.
			if err := st.WritePairs(toStorePairs(strat, pairsB)); err == nil {
				_ = st.Flush()
			}
			if fault.Hits(pt) == 0 {
				if err := fs.Put([]byte("!direct"), []byte("x")); err == nil {
					_ = fs.Sync()
				}
			}
			if fault.Hits(pt) == 0 && strings.HasPrefix(pt, "kvstore/file/") {
				// The wrapped file's Sync is unreachable through the
				// store: FileStore deliberately never fsyncs its log
				// (lineage is a recoverable cache). Drive the file
				// layer directly so the point still proves out.
				raw, err := os.Create(filepath.Join(filepath.Dir(path), "direct"))
				if err != nil {
					t.Fatal(err)
				}
				wf := fault.WrapFile("kvstore/file", raw)
				if _, err := wf.Write([]byte("x")); err == nil {
					_ = wf.Sync()
				}
				_ = raw.Close()
			}
			if fault.Hits(pt) == 0 {
				t.Fatalf("failpoint %s never fired", pt)
			}
			fault.Reset()

			// Simulated kill: the faulted store is abandoned, never
			// closed. Reopen must recover a consistent prefix.
			fs2, err := kvstore.OpenFile(path)
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", pt, err)
			}
			defer fs2.Close()
			st2, err := OpenStore(fs2, strat, tOutSpace, tInSpaces)
			if err != nil {
				t.Fatalf("OpenStore after crash at %s: %v", pt, err)
			}
			got := bitmap.New(tInSpaces[0])
			if err := st2.Backward(q, got, 0, testMapP, nil, nil); err != nil {
				t.Fatalf("query after crash at %s: %v", pt, err)
			}
			assertSubset(t, wantA, got, "flushed batch A lost after crash at "+pt)
			assertSubset(t, got, wantAB, "recovered answer exceeds written lineage after crash at "+pt)
		})
	}
}

// assertSubset fails unless every cell of sub is set in super.
func assertSubset(t *testing.T, sub, super *bitmap.Bitmap, msg string) {
	t.Helper()
	ok := true
	sub.Iterate(func(idx uint64) bool {
		if !super.Get(idx) {
			ok = false
		}
		return ok
	})
	if !ok {
		t.Fatal(msg)
	}
}

// TestRebuildByteIdentical: writing the same lineage into two fresh
// stores produces byte-identical logs — record for record, key and
// value. This is the foundation of the self-healing path: a store
// rebuilt from re-execution is indistinguishable from one that never
// saw corruption. Both record codecs must hold the property: the v3
// container encoder's per-tile form choice is deterministic, so a
// rebuilt v3 store is as reproducible as a v2 one.
func TestRebuildByteIdentical(t *testing.T) {
	strat := StratFullOne
	rng := rand.New(rand.NewSource(11))
	pairs := randomPairs(rng, 80)
	build := func(path string, codec int) map[string]string {
		fs, err := kvstore.OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		st, err := OpenStore(fs, strat, tOutSpace, tInSpaces)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.SetCodec(codec); err != nil {
			t.Fatal(err)
		}
		if err := st.WritePairs(toStorePairs(strat, pairs[:40])); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := st.WritePairs(toStorePairs(strat, pairs[40:])); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
		m := make(map[string]string)
		if err := fs.Scan(func(k, v []byte) bool {
			m[string(k)] = string(v)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if err := fs.Close(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	for codec, name := range map[int]string{CodecV2: "v2", CodecV3: "v3"} {
		t.Run(name, func(t *testing.T) {
			a := build(filepath.Join(t.TempDir(), "a.log"), codec)
			b := build(filepath.Join(t.TempDir(), "b.log"), codec)
			if len(a) != len(b) {
				t.Fatalf("rebuild record counts differ: %d vs %d", len(a), len(b))
			}
			for k, va := range a {
				if vb, ok := b[k]; !ok || vb != va {
					t.Fatalf("rebuild differs at key %q", k)
				}
			}
		})
	}
}
