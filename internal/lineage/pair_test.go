package lineage

import (
	"bytes"
	"testing"

	"subzero/internal/grid"
)

func TestRegionPairNormalizeValidate(t *testing.T) {
	outSp := grid.NewSpace(grid.Shape{4, 4})
	inSp := []*grid.Space{grid.NewSpace(grid.Shape{4, 4}), grid.NewSpace(grid.Shape{2, 2})}

	rp := RegionPair{
		Out: []uint64{5, 1, 5},
		Ins: [][]uint64{{3, 3, 0}, {2}},
	}
	rp.Normalize()
	if len(rp.Out) != 2 || rp.Out[0] != 1 || rp.Out[1] != 5 {
		t.Fatalf("normalize out=%v", rp.Out)
	}
	if err := rp.Validate(outSp, inSp); err != nil {
		t.Fatal(err)
	}
	out, in := rp.CellCount()
	if out != 2 || in != 3 {
		t.Fatalf("CellCount=(%d,%d)", out, in)
	}
}

func TestRegionPairValidateErrors(t *testing.T) {
	outSp := grid.NewSpace(grid.Shape{4})
	inSp := []*grid.Space{grid.NewSpace(grid.Shape{4})}

	cases := []RegionPair{
		{Out: nil, Ins: [][]uint64{{0}}},                             // empty out
		{Out: []uint64{9}, Ins: [][]uint64{{0}}},                     // out of range
		{Out: []uint64{0}, Ins: [][]uint64{{9}}},                     // input out of range
		{Out: []uint64{0}, Ins: [][]uint64{{0}, {1}}},                // wrong input count
		{Out: []uint64{2, 1}, Ins: [][]uint64{{0}}},                  // unsorted
		{Out: []uint64{0}, Ins: [][]uint64{{0}}, Payload: []byte{1}}, // both kinds
	}
	for i, rp := range cases {
		if err := rp.Validate(outSp, inSp); err == nil {
			t.Fatalf("case %d validated: %+v", i, rp)
		}
	}
	// Payload pair with no Ins is fine.
	pp := RegionPair{Out: []uint64{1}, Payload: []byte{42}}
	if err := pp.Validate(outSp, inSp); err != nil {
		t.Fatal(err)
	}
	if !pp.IsPayload() {
		t.Fatal("IsPayload wrong")
	}
}

func TestRegionPairClone(t *testing.T) {
	rp := RegionPair{Out: []uint64{1}, Ins: [][]uint64{{2, 3}}, Payload: nil}
	c := rp.Clone()
	c.Out[0] = 99
	c.Ins[0][0] = 99
	if rp.Out[0] != 1 || rp.Ins[0][0] != 2 {
		t.Fatal("clone aliases parent")
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	full := RegionPair{Out: []uint64{1, 5, 9}, Ins: [][]uint64{{0, 2}, {7}}}
	rec, err := decodeRecord(encodeRecord(&full))
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.outs.cells(nil); !equalU64(got, full.Out) {
		t.Fatalf("full record outs: %v", got)
	}
	if len(rec.ins) != 2 || !equalU64(rec.ins[0].cells(nil), full.Ins[0]) || !equalU64(rec.ins[1].cells(nil), full.Ins[1]) {
		t.Fatalf("full record ins round trip: %+v", rec)
	}
	if rec.payload != nil {
		t.Fatal("full record has payload")
	}

	pay := RegionPair{Out: []uint64{4}, Payload: []byte{9, 8, 7}}
	rec, err = decodeRecord(encodeRecord(&pay))
	if err != nil {
		t.Fatal(err)
	}
	if rec.ins != nil || !bytes.Equal(rec.payload, []byte{9, 8, 7}) {
		t.Fatalf("payload record round trip: %+v", rec)
	}

	// Empty payload must round-trip as non-nil.
	payEmpty := RegionPair{Out: []uint64{4}, Payload: []byte{}}
	rec, err = decodeRecord(encodeRecord(&payEmpty))
	if err != nil || rec.payload == nil {
		t.Fatalf("empty payload: rec=%+v err=%v", rec, err)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRecordCodecErrors(t *testing.T) {
	if _, err := decodeRecord(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	if _, err := decodeRecord([]byte{99, 0}); err == nil {
		t.Fatal("bad flags accepted")
	}
	full := encodeRecord(&RegionPair{Out: []uint64{1, 2}, Ins: [][]uint64{{3}}})
	if _, err := decodeRecord(full[:len(full)-1]); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestIDListCodec(t *testing.T) {
	for _, ids := range [][]uint64{{}, {0}, {1, 2, 1 << 40}} {
		got, err := decodeIDList(encodeIDList(ids))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ids) {
			t.Fatalf("got %v, want %v", got, ids)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("got %v, want %v", got, ids)
			}
		}
	}
	if _, err := decodeIDList(nil); err == nil {
		t.Fatal("nil id list accepted")
	}
}

func TestPayloadListCodec(t *testing.T) {
	lists := [][][]byte{
		{},
		{[]byte("a")},
		{[]byte("x"), {}, []byte("longer payload")},
	}
	for _, l := range lists {
		got, err := decodePayloadList(encodePayloadList(l))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(l) {
			t.Fatalf("got %d payloads, want %d", len(got), len(l))
		}
		for i := range l {
			if !bytes.Equal(got[i], l[i]) {
				t.Fatalf("payload %d mismatch", i)
			}
		}
	}
}
