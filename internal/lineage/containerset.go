package lineage

import (
	"encoding/binary"
	"math/bits"
	"sort"
	"sync/atomic"

	"subzero/internal/binenc"
	"subzero/internal/bitmap"
)

// The container tile width and the bitmap block width must agree for the
// word-parallel probe path to line up; this fails to compile if they
// drift apart.
var _ [binenc.TileWords - bitmap.BlockWords]struct{}
var _ [bitmap.BlockWords - binenc.TileWords]struct{}

// containerSet is a v3 record cell set answered directly on its
// compressed form. It keeps one copy of the encoded container bytes and
// an index of (tile base, type, payload) built in a single validating
// pass at decode time — no per-cell materialization.
//
// Probes work in situ: full tiles go through the existing word-parallel
// run primitives, bitmap containers are tested straight off their
// little-endian payload, and array/run containers are lazily promoted —
// once, on first probe — to a 16-word bit block shared by later probes.
// Promotion is per tile and race-safe: records live in the recCache and
// are probed by concurrent lookups, so blocks install via CAS on an
// atomic pointer (losing a benign race just discards a duplicate block).
type containerSet struct {
	data   []byte // copied container encoding; tile payloads alias it
	total  uint64
	tiles  []ctile
	blocks []atomic.Pointer[[binenc.TileWords]uint64]
}

// ctile is one indexed container: the tile's first cell index, its
// container type, and its payload bytes within data.
type ctile struct {
	base uint64
	typ  byte
	pay  []byte
}

// decodeCellSetContainers parses a v3 container-form cell set. Tiny
// sparse-direct sets decode to a runSet (they carry no containers);
// everything else wraps the compressed bytes in a containerSet.
func decodeCellSetContainers(src []byte) (cellSet, int, error) {
	type tileMeta struct {
		base           uint64
		typ            byte
		payOff, payLen int
	}
	var rs *runSet
	var metas []tileMeta
	total, n, err := binenc.WalkContainers(src,
		func(cell uint64) bool {
			if rs == nil {
				rs = &runSet{}
			}
			rs.appendRun(cell, 1)
			return true
		},
		func(base uint64, typ byte, payOff, payLen int) bool {
			metas = append(metas, tileMeta{base, typ, payOff, payLen})
			return true
		})
	if err != nil {
		return nil, 0, err
	}
	if metas == nil {
		if rs == nil {
			rs = &runSet{} // empty set
		}
		return rs, n, nil
	}
	data := make([]byte, n)
	copy(data, src[:n])
	cs := &containerSet{
		data:   data,
		total:  total,
		tiles:  make([]ctile, len(metas)),
		blocks: make([]atomic.Pointer[[binenc.TileWords]uint64], len(metas)),
	}
	for i, m := range metas {
		cs.tiles[i] = ctile{base: m.base, typ: m.typ, pay: data[m.payOff : m.payOff+m.payLen]}
	}
	return cs, n, nil
}

// block returns tile i promoted to its bit block, promoting on first use.
func (cs *containerSet) block(i int) *[binenc.TileWords]uint64 {
	if blk := cs.blocks[i].Load(); blk != nil {
		return blk
	}
	blk := new([binenc.TileWords]uint64)
	// The payload was validated by WalkContainers at decode time, so
	// expansion cannot fail; a zero block is the safe result if it ever
	// did.
	_, _ = binenc.ExpandContainer(cs.tiles[i].typ, cs.tiles[i].pay, blk)
	if !cs.blocks[i].CompareAndSwap(nil, blk) {
		blk = cs.blocks[i].Load()
	}
	return blk
}

// addTo ORs the set's cells into dst word-parallel, returning the number
// newly set.
func (cs *containerSet) addTo(dst *bitmap.Bitmap) uint64 {
	var added uint64
	for i := range cs.tiles {
		t := &cs.tiles[i]
		if t.typ == binenc.ContainerFull {
			added += dst.SetRun(t.base, binenc.TileCells)
			continue
		}
		added += dst.OrBlock(t.base, cs.block(i))
	}
	return added
}

// intersects reports whether any cell of the set is set in q.
func (cs *containerSet) intersects(q *bitmap.Bitmap) bool {
	for i := range cs.tiles {
		t := &cs.tiles[i]
		if t.typ == binenc.ContainerFull {
			if q.AnyInRange(t.base, binenc.TileCells) {
				return true
			}
			continue
		}
		if q.AnyBlock(t.base, cs.block(i)) {
			return true
		}
	}
	return false
}

// contains reports whether the set holds cell, by binary search over the
// tile bases. Bitmap containers are tested straight off their payload
// bytes; array/run containers through their promoted block.
func (cs *containerSet) contains(cell uint64) bool {
	i := sort.Search(len(cs.tiles), func(i int) bool { return cs.tiles[i].base > cell })
	if i == 0 {
		return false
	}
	t := &cs.tiles[i-1]
	off := cell - t.base
	if off >= binenc.TileCells {
		return false
	}
	switch t.typ {
	case binenc.ContainerFull:
		return true
	case binenc.ContainerBitmap:
		word := binary.LittleEndian.Uint64(t.pay[(off/64)*8:])
		return word&(uint64(1)<<(off%64)) != 0
	}
	blk := cs.block(i - 1)
	return blk[off/64]&(uint64(1)<<(off%64)) != 0
}

// forEach calls fn with every cell in ascending order until fn returns
// false.
func (cs *containerSet) forEach(fn func(cell uint64) bool) {
	for i := range cs.tiles {
		t := &cs.tiles[i]
		if t.typ == binenc.ContainerFull {
			for c := t.base; c < t.base+binenc.TileCells; c++ {
				if !fn(c) {
					return
				}
			}
			continue
		}
		blk := cs.block(i)
		for wi := range blk {
			word := blk[wi]
			base := t.base + uint64(wi)*64
			for word != 0 {
				if !fn(base + uint64(bits.TrailingZeros64(word))) {
					return
				}
				word &= word - 1
			}
		}
	}
}

// cells materializes the set as a sorted index slice (tests and
// diagnostics only — lookups stay on containers).
func (cs *containerSet) cells(dst []uint64) []uint64 {
	cs.forEach(func(c uint64) bool {
		dst = append(dst, c)
		return true
	})
	return dst
}

// size returns the total cell count, carried by the encoding.
func (cs *containerSet) size() uint64 { return cs.total }
