package lineage

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"subzero/internal/fault"
	"subzero/internal/obs"
)

// Failpoints covering the async capture path: a shard worker applying a
// batch (error and panic actions exercise the latched-error and panic-
// containment contracts) and the drain barrier (delay actions widen the
// lookup/ingest race window deterministically).
var (
	fpIngestBatch = fault.Register("lineage/ingest/batch")
	fpIngestDrain = fault.Register("lineage/ingest/drain")
)

// This file is the sharded asynchronous ingest pipeline: the write half
// of the capture path, moved off the operator's thread.
//
//	operator ──lwrite──▶ Writer ──batches──▶ Coordinator
//	                                            │ hash-partition
//	                        ┌───────────┬───────┴───┬───────────┐
//	                     shard 0     shard 1      ...        shard N-1
//	                  span-encode  span-encode            span-encode
//	                  build index  build index            build index
//	                        └───────────┴─────┬─────┴───────────┘
//	                                 kvstore group commit
//
// Operators pay only the enqueue cost (plus backpressure stalls when the
// shards fall behind); the expensive span encoding (internal/binenc) and
// hashtable/R-tree construction run on the shard workers. Flush becomes
// a drain barrier, and a lookup racing an unflushed store barriers first
// so it sees a consistent merged view (Store.beginRead).

// DefaultIngestDepth is the per-shard queue depth, in batches, when the
// config leaves Depth unset. The queue is deliberately shallow: each
// batch already carries up to flushCellThreshold cells, so a deep queue
// would only hide backpressure and grow the drain barrier.
const DefaultIngestDepth = 8

// IngestConfig sizes the asynchronous ingest pipeline.
type IngestConfig struct {
	// Shards is the number of shard workers encoding lineage off the
	// operator thread. <= 1 keeps the synchronous write path.
	Shards int
	// Depth bounds each shard's queue, in batches; an operator that
	// outruns the shards blocks on enqueue (backpressure) rather than
	// buffering unboundedly. <= 0 selects DefaultIngestDepth.
	Depth int
}

// Enabled reports whether the config asks for asynchronous ingest.
func (c IngestConfig) Enabled() bool { return c.Shards > 1 }

// normalized fills defaults.
func (c IngestConfig) normalized() IngestConfig {
	if c.Depth <= 0 {
		c.Depth = DefaultIngestDepth
	}
	return c
}

// ingestTask is one unit of shard work: a sub-batch of pairs destined for
// one store, with pre-assigned record ids, or a barrier token.
type ingestTask struct {
	store   *Store
	pairs   []RegionPair
	ids     []uint64 // pre-assigned pair ids; nil for PayOne
	barrier *sync.WaitGroup
}

// ingestShard is one worker's queue plus its utilization counters.
type ingestShard struct {
	ch     chan ingestTask
	pairs  int64         // guarded by Coordinator.statsMu
	busyNS time.Duration // guarded by Coordinator.statsMu
}

// Coordinator hash-partitions raw region pairs across N shard workers —
// the per-run ingest pipeline the workflow executor stands up when async
// capture is enabled. One coordinator serves every store of a run;
// operators execute serially, so at any moment the active writer's
// stores are the only ones receiving work.
//
// Error model: the first failure (encode, commit, or context
// cancellation) is latched; subsequent enqueues fail fast with it and
// the drain barrier re-reports it, so the error reaches the operator
// through the writer exactly as a synchronous write failure would.
type Coordinator struct {
	ctx     context.Context
	cfg     IngestConfig
	shards  []*ingestShard
	wg      sync.WaitGroup
	metrics *IngestMetrics // optional, shared across runs

	// inFlight counts tasks enqueued but not yet fully applied; Barrier
	// short-circuits when it reads zero, so lookups against a quiescent
	// store don't pay a token round-trip per call.
	inFlight atomic.Int64

	// life arbitrates channel sends against Close: producers hold it
	// shared around sends, Close holds it exclusively around closing the
	// shard channels, so a racing Barrier or Enqueue can never send on a
	// closed channel.
	life sync.RWMutex

	mu     sync.Mutex
	err    error
	closed bool

	statsMu sync.Mutex // guards per-shard utilization counters
}

// NewCoordinator starts cfg.Shards shard workers. The context bounds the
// pipeline's lifetime: cancellation fails the coordinator, unblocks
// producers stuck in backpressure, and surfaces through Barrier so the
// run aborts on the executor's existing cancellation path. Close must be
// called when the run ends. metrics may be nil.
func NewCoordinator(ctx context.Context, cfg IngestConfig, metrics *IngestMetrics) *Coordinator {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.normalized()
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	c := &Coordinator{ctx: ctx, cfg: cfg, metrics: metrics}
	if metrics != nil {
		metrics.ensureShards(cfg.Shards)
	}
	c.shards = make([]*ingestShard, cfg.Shards)
	for i := range c.shards {
		sh := &ingestShard{ch: make(chan ingestTask, cfg.Depth)}
		c.shards[i] = sh
		c.wg.Add(1)
		go c.worker(i, sh)
	}
	return c
}

// Shards returns the worker count.
func (c *Coordinator) Shards() int { return c.cfg.Shards }

// Depth returns the per-shard queue depth in batches.
func (c *Coordinator) Depth() int { return c.cfg.Depth }

// Err returns the latched pipeline error, if any.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *Coordinator) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

// worker drains one shard queue. After a failure (or cancellation) it
// keeps consuming so producers and barriers never deadlock, but drops the
// work.
func (c *Coordinator) worker(idx int, sh *ingestShard) {
	defer c.wg.Done()
	for t := range sh.ch {
		if t.barrier != nil {
			t.barrier.Done()
			continue
		}
		if err := c.ctx.Err(); err != nil {
			c.fail(fmt.Errorf("lineage: ingest cancelled: %w", err))
			c.inFlight.Add(-1)
			continue
		}
		if c.Err() != nil {
			c.inFlight.Add(-1)
			continue
		}
		start := time.Now()
		err := c.runBatch(t.store, t.pairs, t.ids)
		elapsed := time.Since(start)
		t.store.AddWriteTime(elapsed)
		c.inFlight.Add(-1)
		c.statsMu.Lock()
		sh.pairs += int64(len(t.pairs))
		sh.busyNS += elapsed
		c.statsMu.Unlock()
		if c.metrics != nil {
			c.metrics.recordTask(idx, len(t.pairs), elapsed)
		}
		if err != nil {
			c.fail(err)
		}
	}
}

// runBatch applies one batch with panic containment: a panicking encode
// or commit (a poisoned pair block) becomes a latched pipeline error that
// fails this run's capture, while the worker goroutine survives to keep
// draining its queue — producers blocked on the shard channel and drain
// barriers must never deadlock on a dead worker.
func (c *Coordinator) runBatch(store *Store, pairs []RegionPair, ids []uint64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fault.AsError("lineage ingest shard worker", r)
		}
	}()
	if err := fault.Inject(fpIngestBatch); err != nil {
		return err
	}
	return store.ingestBatch(pairs, ids)
}

// shardOf picks the shard for one pair: the partition key is the pair's
// first output cell, mixed through a Fibonacci hash so spatially adjacent
// pairs spread across workers.
func (c *Coordinator) shardOf(rp *RegionPair) int {
	var cell uint64
	if len(rp.Out) > 0 {
		cell = rp.Out[0]
	}
	return int((cell * 0x9E3779B97F4A7C15) >> 33 % uint64(len(c.shards)))
}

// Enqueue hands one batch of pairs to the pipeline for every store in
// stores, hash-partitioning the pairs across the shard workers. Record
// ids are reserved here, on the calling thread, so every live record and
// merged cell entry ends up byte-identical to a serial write regardless
// of worker scheduling. (On log-structured FileStores the *garbage* left
// by threshold flushes can still vary with scheduling, so the log's
// total size is deterministic only for memory-backed stores.) The call
// blocks when a shard queue is full (bounded-channel backpressure) and
// fails fast on a latched pipeline error or context cancellation.
// Ownership of pairs transfers to the pipeline; the caller must not
// mutate the slice afterwards.
func (c *Coordinator) Enqueue(stores []*Store, pairs []RegionPair) error {
	if len(pairs) == 0 || len(stores) == 0 {
		return nil
	}
	if err := c.Err(); err != nil {
		return err
	}
	enqueueStart := time.Now()
	c.life.RLock()
	defer c.life.RUnlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("lineage: enqueue on closed ingest coordinator")
	}
	c.mu.Unlock()

	// Partition once; the per-shard sub-batches are read-only and shared
	// by every store's tasks — only the pair-id slices are per store.
	buckets := make([][]int, len(c.shards))
	for i := range pairs {
		sh := c.shardOf(&pairs[i])
		buckets[sh] = append(buckets[sh], i)
	}
	subs := make([][]RegionPair, len(c.shards))
	for sh, idxs := range buckets {
		if len(idxs) == 0 {
			continue
		}
		sub := make([]RegionPair, len(idxs))
		for j, i := range idxs {
			sub[j] = pairs[i]
		}
		subs[sh] = sub
	}
	var batches int
	for _, st := range stores {
		start := time.Now()
		ids := st.reservePairIDs(len(pairs))
		for sh, idxs := range buckets {
			if len(idxs) == 0 {
				continue
			}
			var subIDs []uint64
			if ids != nil {
				subIDs = make([]uint64, len(idxs))
				for j, i := range idxs {
					subIDs[j] = ids[i]
				}
			}
			task := ingestTask{store: st, pairs: subs[sh], ids: subIDs}
			c.inFlight.Add(1)
			select {
			case c.shards[sh].ch <- task:
			case <-c.ctx.Done():
				c.inFlight.Add(-1)
				err := fmt.Errorf("lineage: ingest cancelled: %w", c.ctx.Err())
				c.fail(err)
				return err
			}
			batches++
			if c.metrics != nil {
				c.metrics.observeDepth(len(c.shards[sh].ch))
			}
		}
		st.AddEnqueueTime(time.Since(start))
	}
	if c.metrics != nil {
		// The stall covers the whole hand-off — partitioning, id
		// reservation, and time blocked on full shard queues — i.e. what
		// async capture still costs the operator thread.
		c.metrics.recordEnqueue(batches, len(pairs), time.Since(enqueueStart))
	}
	return c.Err()
}

// Barrier drains the pipeline: it returns once every task enqueued
// before the call has been fully applied to its store, then reports the
// latched pipeline error, if any. Lookups racing an unflushed store and
// the writer's end-of-run Flush both synchronize through this.
func (c *Coordinator) Barrier() error {
	// Fast path: nothing enqueued-but-unapplied means there is nothing to
	// drain. Tasks racing this read arrived after the barrier's point in
	// time, so skipping the token round-trip is still consistent. This
	// keeps per-cell read gates (ContainsOut under an attached
	// coordinator) from paying a full pipeline drain each call.
	if c.inFlight.Load() == 0 {
		return c.Err()
	}
	if err := fault.Inject(fpIngestDrain); err != nil {
		c.fail(err)
		return err
	}
	start := time.Now()
	var wg sync.WaitGroup
	c.life.RLock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.life.RUnlock()
		return c.Err()
	}
	c.mu.Unlock()
	for _, sh := range c.shards {
		wg.Add(1)
		select {
		case sh.ch <- ingestTask{barrier: &wg}:
		case <-c.ctx.Done():
			wg.Done()
			c.life.RUnlock()
			err := fmt.Errorf("lineage: ingest cancelled: %w", c.ctx.Err())
			c.fail(err)
			return err
		}
	}
	c.life.RUnlock()
	wg.Wait()
	if c.metrics != nil {
		c.metrics.recordBarrier(time.Since(start))
	}
	return c.Err()
}

// Close shuts the pipeline down, waiting for the workers to exit. Tasks
// still queued are processed (or dropped, after a failure) first. Close
// is idempotent.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return c.Err()
	}
	c.closed = true
	c.mu.Unlock()
	// Exclude in-flight senders (Enqueue/Barrier) so the close below can
	// never race a channel send.
	c.life.Lock()
	for _, sh := range c.shards {
		close(sh.ch)
	}
	c.life.Unlock()
	c.wg.Wait()
	return c.Err()
}

// ShardLoads returns per-shard (pairs, busy time) — the utilization view
// the serving layer exposes.
func (c *Coordinator) ShardLoads() ([]int64, []time.Duration) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	pairs := make([]int64, len(c.shards))
	busy := make([]time.Duration, len(c.shards))
	for i, sh := range c.shards {
		pairs[i] = sh.pairs
		busy[i] = sh.busyNS
	}
	return pairs, busy
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

// IngestMetrics aggregates pipeline counters across every coordinator of
// an executor — the numbers GET /v1/stats serves: queue pressure, shard
// utilization, and flush (drain barrier) latency.
type IngestMetrics struct {
	mu             sync.Mutex
	batches        int64
	pairs          int64
	queueHighWater int
	encodeNS       time.Duration
	barrierNS      time.Duration
	barrierMinNS   time.Duration // 0 until the first barrier
	barrierMaxNS   time.Duration
	barriers       int64
	shardPairs     []int64
	shardBusyNS    []time.Duration

	// obs mirrors the counters into the process-wide metric registry; nil
	// when the owning System has no observability set attached. The
	// per-shard series are resolved once in ensureShards so the worker
	// loop pays only atomic adds.
	obs           *obs.IngestObs
	obsShardBusy  []*obs.Counter
	obsShardPairs []*obs.Counter
}

// SetObs attaches the obs ingest bundle. Attach before the first
// coordinator is created; per-shard series resolve lazily as shard counts
// grow.
func (m *IngestMetrics) SetObs(o *obs.IngestObs) {
	m.mu.Lock()
	m.obs = o
	n := len(m.shardPairs)
	m.mu.Unlock()
	if n > 0 {
		m.ensureShards(n)
	}
}

func (m *IngestMetrics) ensureShards(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.shardPairs) < n {
		m.shardPairs = append(m.shardPairs, 0)
		m.shardBusyNS = append(m.shardBusyNS, 0)
	}
	if m.obs != nil {
		for len(m.obsShardBusy) < n {
			label := strconv.Itoa(len(m.obsShardBusy))
			m.obsShardBusy = append(m.obsShardBusy, m.obs.ShardBusy.With1(label))
			m.obsShardPairs = append(m.obsShardPairs, m.obs.ShardPairs.With1(label))
		}
	}
}

func (m *IngestMetrics) recordEnqueue(batches, pairs int, stall time.Duration) {
	m.mu.Lock()
	m.batches += int64(batches)
	m.pairs += int64(pairs)
	o := m.obs
	m.mu.Unlock()
	if o != nil {
		o.Batches.Add(int64(batches))
		o.Pairs.Add(int64(pairs))
		o.EnqueueStall.ObserveDuration(stall)
	}
}

func (m *IngestMetrics) observeDepth(depth int) {
	m.mu.Lock()
	if depth > m.queueHighWater {
		m.queueHighWater = depth
	}
	o := m.obs
	m.mu.Unlock()
	if o != nil {
		o.QueueDepth.Set(int64(depth))
	}
}

func (m *IngestMetrics) recordTask(shard, pairs int, busy time.Duration) {
	m.mu.Lock()
	m.encodeNS += busy
	if shard < len(m.shardPairs) {
		m.shardPairs[shard] += int64(pairs)
		m.shardBusyNS[shard] += busy
	}
	if shard < len(m.obsShardBusy) {
		m.obsShardBusy[shard].Add(int64(busy))
		m.obsShardPairs[shard].Add(int64(pairs))
	}
	m.mu.Unlock()
}

func (m *IngestMetrics) recordBarrier(d time.Duration) {
	m.mu.Lock()
	m.barrierNS += d
	m.barriers++
	if m.barrierMinNS == 0 || d < m.barrierMinNS {
		m.barrierMinNS = d
	}
	if d > m.barrierMaxNS {
		m.barrierMaxNS = d
	}
	o := m.obs
	m.mu.Unlock()
	if o != nil {
		o.Flush.ObserveDuration(d)
	}
}

// IngestSnapshot is a point-in-time copy of the pipeline counters.
type IngestSnapshot struct {
	Shards         int             // configured shard workers (0 = serial ingest)
	Depth          int             // per-shard queue depth, in batches
	Batches        int64           // sub-batches enqueued to shard queues
	Pairs          int64           // region pairs through the pipeline
	QueueHighWater int             // deepest shard queue observed, in batches
	EncodeTime     time.Duration   // summed shard-worker busy time
	FlushTime      time.Duration   // summed drain-barrier latency
	FlushMin       time.Duration   // fastest drain barrier (0 until one runs)
	FlushAvg       time.Duration   // mean drain-barrier latency
	FlushMax       time.Duration   // slowest drain barrier
	Flushes        int64           // drain barriers executed
	ShardPairs     []int64         // per-shard pairs processed
	ShardBusy      []time.Duration // per-shard busy time
}

// Snapshot captures the counters under the given configuration.
func (m *IngestMetrics) Snapshot(cfg IngestConfig) IngestSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := IngestSnapshot{
		Batches:        m.batches,
		Pairs:          m.pairs,
		QueueHighWater: m.queueHighWater,
		EncodeTime:     m.encodeNS,
		FlushTime:      m.barrierNS,
		FlushMin:       m.barrierMinNS,
		FlushMax:       m.barrierMaxNS,
		Flushes:        m.barriers,
		ShardPairs:     append([]int64(nil), m.shardPairs...),
		ShardBusy:      append([]time.Duration(nil), m.shardBusyNS...),
	}
	if m.barriers > 0 {
		snap.FlushAvg = m.barrierNS / time.Duration(m.barriers)
	}
	if cfg.Enabled() {
		cfg = cfg.normalized()
		snap.Shards = cfg.Shards
		snap.Depth = cfg.Depth
	}
	return snap
}
