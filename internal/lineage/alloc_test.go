package lineage

import (
	"math/rand"
	"testing"

	"subzero/internal/binenc"
	"subzero/internal/bitmap"
	"subzero/internal/grid"
	"subzero/internal/kvstore"
)

// A warmed FullOne backward lookup must stay within a small constant
// allocation budget per query, independent of the number of query cells:
// probes run through pooled scratch and batch keys, and records replay
// from the run cache straight into the destination bitmap. The bound is
// deliberately loose (map growth, pool misses) but far below the
// one-allocation-per-cell regime this guards against.
func TestBackwardLookupAllocBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pairs := randomPairs(rng, 400)
	kv := kvstore.NewMem()
	st, err := OpenStore(kv, StratFullOne, tOutSpace, tInSpaces)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WritePairs(toStorePairs(StratFullOne, pairs)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	q := randomQuery(rng, tOutSpace, 600)
	dst := bitmap.New(tInSpaces[0])
	// Warm: record cache, lookup scratch pool, batch arenas.
	for i := 0; i < 3; i++ {
		dst.Clear()
		if err := st.Backward(q, dst, 0, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		dst.Clear()
		if err := st.Backward(q, dst, 0, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 25 {
		t.Fatalf("warmed Backward allocates %.1f/op, want <= 25 (per-cell allocations crept back?)", allocs)
	}
}

// The write path must stay within a small constant allocation budget per
// pair: one record encode, one batched key, and amortized map growth.
// This guards the enqueue-side cost of the ingest pipeline — if per-pair
// allocations creep up, capture overhead follows.
func TestWritePairsAllocBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pairs := randomPairs(rng, 64)
	st, err := OpenStore(kvstore.NewMem(), StratFullOne, tOutSpace, tInSpaces)
	if err != nil {
		t.Fatal(err)
	}
	// Warm: pending maps, record batch scratch.
	if err := st.WritePairs(pairs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := st.WritePairs(pairs); err != nil {
			t.Fatal(err)
		}
	})
	perPair := allocs / float64(len(pairs))
	if perPair > 10 {
		t.Fatalf("FullOne write path allocates %.2f/pair, want <= 10 (capture overhead regression)", perPair)
	}
}

// The in-situ container probe primitives must be allocation-free once a
// record's tiles are promoted: addTo/intersects/contains on a warmed
// containerSet are pure word arithmetic against the query bitmap.
func TestContainerSetProbeAllocFree(t *testing.T) {
	sp := grid.NewSpace(grid.Shape{64, 1024})
	var cells []uint64
	for c := uint64(0); c < 8192; c += 2 { // strided: bitmap containers
		cells = append(cells, c)
	}
	for c := uint64(16384); c < 16384+2048; c++ { // dense: full tiles
		cells = append(cells, c)
	}
	cells = append(cells, 40000, 40007, 40900) // scattered: array container
	set, _, err := decodeCellSetContainers(binenc.AppendCellSetContainers(nil, cells))
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := set.(*containerSet)
	if !ok {
		t.Fatalf("decoded %T, want *containerSet", set)
	}
	dst := bitmap.New(sp)
	q := bitmap.New(sp)
	q.Set(4096)
	cs.addTo(dst) // warm: promotes every tile block
	if allocs := testing.AllocsPerRun(100, func() {
		cs.addTo(dst)
		cs.intersects(q)
		cs.contains(16500)
	}); allocs != 0 {
		t.Fatalf("warmed containerSet probe allocates %.1f/op, want 0", allocs)
	}
	if got := dst.Count(); got != uint64(len(cells)) {
		t.Fatalf("addTo set %d cells, want %d", got, len(cells))
	}
	if !cs.intersects(q) || !cs.contains(16500) || cs.contains(40001) {
		t.Fatal("containerSet probe answers wrong")
	}
}

// A warmed Backward on a store holding container-form (v3) records must
// meet the same ≤25 allocs/op budget as the sparse case above: the
// in-situ probe path adds no per-record or per-tile allocations after
// tile blocks promote on first touch.
func TestBackwardLookupAllocBoundV3Containers(t *testing.T) {
	outSp := grid.NewSpace(grid.Shape{64, 1024})
	inSps := []*grid.Space{grid.NewSpace(grid.Shape{64, 1024})}
	rng := rand.New(rand.NewSource(51))
	var pairs []RegionPair
	for p := 0; p < 48; p++ {
		rp := RegionPair{Ins: make([][]uint64, 1)}
		ob := uint64(rng.Intn(60)) * 1024
		for c := ob; c < ob+2048; c += 2 { // strided tile pair: bitmap containers
			rp.Out = append(rp.Out, c)
		}
		ib := uint64(rng.Intn(60)) * 1024
		for c := ib; c < ib+1024; c++ { // full tile
			rp.Ins[0] = append(rp.Ins[0], c)
		}
		pairs = append(pairs, rp)
	}
	st, err := OpenStore(kvstore.NewMem(), StratFullOne, outSp, inSps)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WritePairs(toStorePairs(StratFullOne, pairs)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	q := randomQuery(rng, outSp, 600)
	dst := bitmap.New(inSps[0])
	for i := 0; i < 3; i++ {
		dst.Clear()
		if err := st.Backward(q, dst, 0, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		dst.Clear()
		if err := st.Backward(q, dst, 0, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 25 {
		t.Fatalf("warmed v3 Backward allocates %.1f/op, want <= 25 (container probe path allocating?)", allocs)
	}
}
