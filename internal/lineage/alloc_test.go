package lineage

import (
	"math/rand"
	"testing"

	"subzero/internal/bitmap"
	"subzero/internal/kvstore"
)

// A warmed FullOne backward lookup must stay within a small constant
// allocation budget per query, independent of the number of query cells:
// probes run through pooled scratch and batch keys, and records replay
// from the run cache straight into the destination bitmap. The bound is
// deliberately loose (map growth, pool misses) but far below the
// one-allocation-per-cell regime this guards against.
func TestBackwardLookupAllocBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pairs := randomPairs(rng, 400)
	kv := kvstore.NewMem()
	st, err := OpenStore(kv, StratFullOne, tOutSpace, tInSpaces)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WritePairs(toStorePairs(StratFullOne, pairs)); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}

	q := randomQuery(rng, tOutSpace, 600)
	dst := bitmap.New(tInSpaces[0])
	// Warm: record cache, lookup scratch pool, batch arenas.
	for i := 0; i < 3; i++ {
		dst.Clear()
		if err := st.Backward(q, dst, 0, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		dst.Clear()
		if err := st.Backward(q, dst, 0, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 25 {
		t.Fatalf("warmed Backward allocates %.1f/op, want <= 25 (per-cell allocations crept back?)", allocs)
	}
}

// The write path must stay within a small constant allocation budget per
// pair: one record encode, one batched key, and amortized map growth.
// This guards the enqueue-side cost of the ingest pipeline — if per-pair
// allocations creep up, capture overhead follows.
func TestWritePairsAllocBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pairs := randomPairs(rng, 64)
	st, err := OpenStore(kvstore.NewMem(), StratFullOne, tOutSpace, tInSpaces)
	if err != nil {
		t.Fatal(err)
	}
	// Warm: pending maps, record batch scratch.
	if err := st.WritePairs(pairs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := st.WritePairs(pairs); err != nil {
			t.Fatal(err)
		}
	})
	perPair := allocs / float64(len(pairs))
	if perPair > 10 {
		t.Fatalf("FullOne write path allocates %.2f/pair, want <= 10 (capture overhead regression)", perPair)
	}
}
