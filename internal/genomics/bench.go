package genomics

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"time"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/kvstore"
	"subzero/internal/lineage"
	"subzero/internal/opt"
	"subzero/internal/query"
	"subzero/internal/workflow"
)

// StrategyNames lists the Table-II genomics configurations in paper
// order.
var StrategyNames = []string{
	"BlackBox", "FullOne", "FullMany", "FullForw", "FullBoth",
	"PayOne", "PayMany", "PayBoth",
}

// Plan returns one Table-II genomics configuration. Built-in operators
// always use mapping lineage ("Each operator uses mapping lineage if
// possible, and otherwise stores lineage using the specified strategy",
// §VIII-B); the row names configure the four UDFs.
func Plan(name string) (workflow.Plan, error) {
	plan := workflow.Plan{}
	for _, id := range BuiltinIDs() {
		plan[id] = []lineage.Strategy{lineage.StratMap}
	}
	var udf []lineage.Strategy
	switch name {
	case "BlackBox":
		udf = nil
	case "FullOne":
		udf = []lineage.Strategy{lineage.StratFullOne}
	case "FullMany":
		udf = []lineage.Strategy{lineage.StratFullMany}
	case "FullForw":
		udf = []lineage.Strategy{lineage.StratFullOneFwd}
	case "FullBoth":
		udf = []lineage.Strategy{lineage.StratFullOne, lineage.StratFullOneFwd}
	case "PayOne":
		udf = []lineage.Strategy{lineage.StratPayOne}
	case "PayMany":
		udf = []lineage.Strategy{lineage.StratPayMany}
	case "PayBoth":
		udf = []lineage.Strategy{lineage.StratPayOne, lineage.StratFullOneFwd}
	default:
		return nil, fmt.Errorf("genomics: unknown strategy %q", name)
	}
	for _, id := range UDFIDs {
		if udf != nil {
			plan[id] = udf
		}
	}
	return plan, nil
}

// trainBackPath walks from the extracted training data to the raw
// training matrix.
func trainBackPath() []query.Step {
	return []query.Step{
		{Node: NodeExtractTrain, InputIdx: 0},
		{Node: "tr-norm", InputIdx: 0},
		{Node: "tr-center", InputIdx: 0},
		{Node: "tr-t", InputIdx: 0},
	}
}

// Queries builds the benchmark workload from an executed run: two
// backward and two forward queries (paper §II-B, Figure 6).
func Queries(run *workflow.Run) (map[string]query.Query, error) {
	pred, err := run.Output(NodePredict)
	if err != nil {
		return nil, err
	}
	// BQ0 starts from actual (non-zero) predictions.
	var predCells []uint64
	for i, v := range pred.Data() {
		if v != 0 {
			predCells = append(predCells, uint64(i))
			if len(predCells) == 5 {
				break
			}
		}
	}
	if len(predCells) == 0 {
		return nil, fmt.Errorf("genomics: no predictions produced")
	}
	model, err := run.Output(NodeModel)
	if err != nil {
		return nil, err
	}
	// BQ1 starts from significant model columns.
	var modelCells []uint64
	for i, v := range model.Data() {
		if i != LabelRow && math.Abs(v) > significanceThreshold {
			modelCells = append(modelCells, uint64(i))
			if len(modelCells) == 3 {
				break
			}
		}
	}
	if len(modelCells) == 0 {
		return nil, fmt.Errorf("genomics: model has no significant features")
	}
	// Forward queries start from a block of raw training cells covering
	// the first signal features of the first patients.
	ins, err := run.Inputs("tr-t")
	if err != nil {
		return nil, err
	}
	trainSp := ins[0].Space()
	fwd := grid.Rect{Lo: grid.Coord{0, 0}, Hi: grid.Coord{2, 7}}.Cells(trainSp, nil)

	fq0Path := []query.Step{
		{Node: "tr-t", InputIdx: 0},
		{Node: "tr-center", InputIdx: 0},
		{Node: "tr-norm", InputIdx: 0},
		{Node: NodeExtractTrain, InputIdx: 0},
		{Node: NodeModel, InputIdx: 0},
	}
	return map[string]query.Query{
		"BQ0": {
			Direction: query.Backward,
			Cells:     predCells,
			Path: append([]query.Step{
				{Node: NodePredict, InputIdx: 1},
				{Node: NodeModel, InputIdx: 0},
			}, trainBackPath()...),
		},
		"BQ1": {
			Direction: query.Backward,
			Cells:     modelCells,
			Path: append([]query.Step{
				{Node: NodeModel, InputIdx: 0},
			}, trainBackPath()...),
		},
		"FQ0": {Direction: query.Forward, Cells: fwd, Path: fq0Path},
		"FQ1": {
			Direction: query.Forward,
			Cells:     fwd,
			Path:      append(append([]query.Step{}, fq0Path...), query.Step{Node: NodePredict, InputIdx: 1}),
		},
	}, nil
}

// QueryNames lists the workload in report order.
var QueryNames = []string{"BQ0", "BQ1", "FQ0", "FQ1"}

// StrategyResult is one column of Figure 6: overheads plus static and
// dynamic query costs.
type StrategyResult struct {
	Name          string
	RunTime       time.Duration
	LineageBytes  int64
	BaselineBytes int64
	Static        map[string]time.Duration // query-time optimizer off
	Dynamic       map[string]time.Duration // query-time optimizer on
	QueryCells    map[string]int
}

// RunStrategy executes the workflow under one configuration and measures
// overheads and the query workload with the query-time optimizer off
// (Figure 6(b)) and on (Figure 6(c)).
func RunStrategy(ctx context.Context, name string, cfg GenConfig, storageRoot string) (*StrategyResult, error) {
	plan, err := Plan(name)
	if err != nil {
		return nil, err
	}
	exec, run, data, err := execute(ctx, plan, cfg, storageRoot, "gen-"+name)
	if err != nil {
		return nil, err
	}
	defer exec.Manager().Close()
	res := &StrategyResult{
		Name:          name,
		RunTime:       run.Elapsed,
		LineageBytes:  run.LineageBytes(),
		BaselineBytes: data.Train.MemoryBytes() + data.Test.MemoryBytes(),
		Static:        map[string]time.Duration{},
		Dynamic:       map[string]time.Duration{},
		QueryCells:    map[string]int{},
	}
	queries, err := Queries(run)
	if err != nil {
		return nil, err
	}
	for qname, q := range queries {
		static := query.New(run, exec.Stats(), query.Options{EntireArray: true, Dynamic: false})
		start := time.Now()
		qr, err := static.Execute(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("genomics: %s/%s static: %w", name, qname, err)
		}
		res.Static[qname] = time.Since(start)
		res.QueryCells[qname] = len(qr.Cells())

		dynamic := query.New(run, exec.Stats(), query.Options{EntireArray: true, Dynamic: true})
		start = time.Now()
		if _, err := dynamic.Execute(ctx, q); err != nil {
			return nil, fmt.Errorf("genomics: %s/%s dynamic: %w", name, qname, err)
		}
		res.Dynamic[qname] = time.Since(start)
	}
	return res, nil
}

func execute(ctx context.Context, plan workflow.Plan, cfg GenConfig, storageRoot, tag string) (*workflow.Executor, *workflow.Run, *Data, error) {
	spec, err := NewSpec()
	if err != nil {
		return nil, nil, nil, err
	}
	data, err := Generate(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	root := storageRoot
	if root != "" {
		root = filepath.Join(storageRoot, tag)
	}
	mgr, err := kvstore.NewManager(root)
	if err != nil {
		return nil, nil, nil, err
	}
	exec := workflow.NewExecutor(array.NewVersions(), mgr, lineage.NewCollector())
	run, err := exec.Execute(ctx, spec, plan, map[string]*array.Array{
		"train": data.Train, "test": data.Test,
	})
	if err != nil {
		mgr.Close()
		return nil, nil, nil, err
	}
	return exec, run, data, nil
}

// SweepResult is one bar group of Figure 7: the optimizer's plan under a
// storage budget.
type SweepResult struct {
	Name         string
	BudgetBytes  int64
	RunTime      time.Duration
	LineageBytes int64
	QueryTimes   map[string]time.Duration
	Plan         workflow.Plan
}

// OptimizerSweep reproduces Figure 7: a profiling run measures per-UDF
// lineage volumes, then for each storage budget the ILP chooses a plan,
// the workflow re-runs under it, and the workload is measured.
func OptimizerSweep(ctx context.Context, cfg GenConfig, budgets []int64, storageRoot string) ([]SweepResult, error) {
	// Profiling run: built-ins Map, UDFs materialize both a Full and a
	// payload store so every encoding can be estimated from measurements.
	profPlan := workflow.Plan{}
	for _, id := range BuiltinIDs() {
		profPlan[id] = []lineage.Strategy{lineage.StratMap}
	}
	for _, id := range UDFIDs {
		profPlan[id] = []lineage.Strategy{lineage.StratFullOne, lineage.StratPayOne}
	}
	exec, profRun, _, err := execute(ctx, profPlan, cfg, storageRoot, "gen-profile")
	if err != nil {
		return nil, err
	}
	defer exec.Manager().Close()
	queries, err := Queries(profRun)
	if err != nil {
		return nil, err
	}
	workload := make([]query.Query, 0, len(queries))
	for _, qn := range QueryNames {
		workload = append(workload, queries[qn])
	}

	var out []SweepResult
	for _, budget := range budgets {
		optimizer := opt.New(profRun, exec.Stats())
		rep, err := optimizer.Choose(ctx, workload, opt.Constraints{MaxDiskBytes: budget})
		if err != nil {
			return nil, fmt.Errorf("genomics: optimize budget %d: %w", budget, err)
		}
		name := fmt.Sprintf("SubZero%d", budget/(1024*1024))
		if budget <= 0 {
			name = "SubZeroUnbounded"
		}
		sr := SweepResult{
			Name:        name,
			BudgetBytes: budget,
			Plan:        rep.Plan,
			QueryTimes:  map[string]time.Duration{},
		}
		exec2, run2, _, err := execute(ctx, rep.Plan, cfg, storageRoot, name)
		if err != nil {
			return nil, fmt.Errorf("genomics: run plan for %s: %w", name, err)
		}
		sr.RunTime = run2.Elapsed
		sr.LineageBytes = run2.LineageBytes()
		qs2, err := Queries(run2)
		if err != nil {
			exec2.Manager().Close()
			return nil, err
		}
		for qname, q := range qs2 {
			qe := query.New(run2, exec2.Stats(), query.DefaultOptions())
			start := time.Now()
			if _, err := qe.Execute(ctx, q); err != nil {
				exec2.Manager().Close()
				return nil, fmt.Errorf("genomics: %s/%s: %w", name, qname, err)
			}
			sr.QueryTimes[qname] = time.Since(start)
		}
		exec2.Manager().Close()
		out = append(out, sr)
	}
	return out, nil
}

// CaptureResult is one row of the capture-overhead table: the write
// path's cost to the operator threads under one ingest configuration.
type CaptureResult struct {
	Strategy string
	Shards   int
	Elapsed  time.Duration // workflow wall clock
	Overhead time.Duration // operator-thread lineage time (enqueue + drain when sharded)
	OpWrite  time.Duration // operator-thread write time: inline encode when serial, enqueue when sharded
	Drain    time.Duration // end-of-node drain barrier + flush wait (sharded only)
	Encode   time.Duration // encode+commit work, summed across shard workers
	Pairs    int64
}

// CaptureRun executes the workflow under one configuration and the given
// ingest pipeline config, measuring capture overhead only (no queries).
// It backs the before/after capture table of BENCH_5.
func CaptureRun(ctx context.Context, name string, cfg GenConfig, ingest lineage.IngestConfig, storageRoot string) (*CaptureResult, error) {
	plan, err := Plan(name)
	if err != nil {
		return nil, err
	}
	spec, err := NewSpec()
	if err != nil {
		return nil, err
	}
	data, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	root := storageRoot
	if root != "" {
		root = filepath.Join(storageRoot, fmt.Sprintf("gen-cap-%s-%d", name, ingest.Shards))
	}
	mgr, err := kvstore.NewManager(root)
	if err != nil {
		return nil, err
	}
	defer mgr.Close()
	exec := workflow.NewExecutor(array.NewVersions(), mgr, lineage.NewCollector())
	exec.SetIngest(ingest)
	run, err := exec.Execute(ctx, spec, plan, map[string]*array.Array{
		"train": data.Train, "test": data.Test,
	})
	if err != nil {
		return nil, err
	}
	cs := run.CaptureStats()
	return &CaptureResult{
		Strategy: name,
		Shards:   ingest.Shards,
		Elapsed:  run.Elapsed,
		Overhead: run.LineageOverhead,
		OpWrite:  cs.OpWrite,
		Drain:    cs.Drain,
		Encode:   cs.Encode,
		Pairs:    cs.Pairs,
	}, nil
}
