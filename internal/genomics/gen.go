// Package genomics implements the paper's genomics benchmark (§II-B,
// §VIII-B): a medulloblastoma-relapse prediction workflow of 10 built-in
// mapping operators and 4 payload UDFs, driven from a patient-feature
// matrix, with the benchmark's query workload and Table-II strategy
// configurations.
//
// The original benchmark used a 56×100 matrix (96 patients, 55 health and
// genetic features) from the Broad Institute, replicated 100× because
// "future datasets are expected to come from a larger group of patients".
// The generator synthesizes an equivalent matrix: continuous expression
// features, binary abnormality flags, and a relapse-label row correlated
// with a subset of features, with a fraction of patients unlabeled. As in
// the paper the matrix is then scaled by replicating patients.
package genomics

import (
	"math/rand"

	"subzero/internal/array"
	"subzero/internal/grid"
)

// Matrix layout constants: rows are features, columns are patients
// (56×100 at scale 1).
const (
	NumFeatures  = 55 // feature rows 0..54
	LabelRow     = 55 // final row holds the relapse label
	NumRows      = 56
	BasePatients = 100

	// MissingValue marks unlabeled patients (and missing test features);
	// it is chosen so it remains separable after normalization.
	MissingValue = -50.0
)

// GenConfig controls the generator.
type GenConfig struct {
	Scale        int // patient-replication factor (paper uses 100)
	TestFraction float64
	MissingFrac  float64
	Seed         int64
}

// DefaultGenConfig matches the paper's 100× scaled dataset.
func DefaultGenConfig() GenConfig {
	return GenConfig{Scale: 100, TestFraction: 0.5, MissingFrac: 0.08, Seed: 7}
}

// Scaled returns the configuration at a different replication factor.
func (c GenConfig) Scaled(scale int) GenConfig {
	if scale < 1 {
		scale = 1
	}
	c.Scale = scale
	return c
}

// Data is a generated benchmark dataset.
type Data struct {
	Train *array.Array // NumRows × (BasePatients*Scale)
	Test  *array.Array // NumRows × (BasePatients*Scale*TestFraction)
}

// Generate synthesizes the training and test matrices.
func Generate(cfg GenConfig) (*Data, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	trainCols := BasePatients * cfg.Scale
	testCols := int(float64(trainCols) * cfg.TestFraction)
	if testCols < 4 {
		testCols = 4
	}
	train, err := array.New("train", grid.Shape{NumRows, trainCols})
	if err != nil {
		return nil, err
	}
	test, err := array.New("test", grid.Shape{NumRows, testCols})
	if err != nil {
		return nil, err
	}
	fillMatrix(train, rng, cfg, true)
	fillMatrix(test, rng, cfg, false)
	return &Data{Train: train, Test: test}, nil
}

// fillMatrix populates one matrix. Ten "signal" features correlate with
// the relapse label; labeled=false marks a test matrix, whose label row is
// entirely missing and whose feature row 0 is missing for a fraction of
// patients (driving UDF G's selection).
func fillMatrix(m *array.Array, rng *rand.Rand, cfg GenConfig, labeled bool) {
	cols := m.Shape()[1]
	for p := 0; p < cols; p++ {
		relapse := rng.Float64() < 0.4
		for f := 0; f < NumFeatures; f++ {
			var v float64
			switch {
			case f < 10: // signal expression features
				v = rng.Float64()
				if relapse {
					v += 1.0
				}
			case f < 40: // neutral expression features
				v = rng.Float64() * 2
			default: // binary abnormality flags
				if rng.Float64() < 0.15 {
					v = 1
				}
			}
			m.Set2(f, p, v)
		}
		switch {
		case !labeled:
			m.Set2(LabelRow, p, MissingValue)
			if rng.Float64() < cfg.MissingFrac {
				m.Set2(0, p, MissingValue)
			}
		case rng.Float64() < cfg.MissingFrac:
			m.Set2(LabelRow, p, MissingValue)
		case relapse:
			m.Set2(LabelRow, p, 1)
		default:
			m.Set2(LabelRow, p, 0)
		}
	}
}
