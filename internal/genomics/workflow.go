package genomics

import (
	"fmt"
	"math"

	"subzero/internal/ops"
	"subzero/internal/workflow"
)

// UDF node identifiers (paper Figure 2's E-H).
const (
	NodeExtractTrain = "E-extract-train"
	NodeModel        = "F-model"
	NodeExtractTest  = "G-extract-test"
	NodePredict      = "H-predict"
)

// UDFIDs lists the four UDF nodes.
var UDFIDs = []string{NodeExtractTrain, NodeModel, NodeExtractTest, NodePredict}

// selectionThreshold separates normalized valid values from the missing
// sentinel after centering and scaling.
const selectionThreshold = -1.0

// significanceThreshold is Predict's minimum |model weight|.
const significanceThreshold = 0.15

// BuiltinIDs returns the 10 built-in mapping-operator node ids.
func BuiltinIDs() []string {
	return []string{
		"tr-t", "tr-mean", "tr-center", "tr-std", "tr-norm",
		"te-t", "te-mean", "te-center", "te-std", "te-norm",
	}
}

// NewSpec builds the genomics workflow of Figure 2: a normalization
// pipeline per matrix (transpose, per-column mean, center, per-column
// deviation, scale — 5 mapping built-ins each), then the four payload
// UDFs: E extracts labeled training patients, F computes the relapse
// model, G extracts complete test patients, and H predicts relapse.
func NewSpec() (*workflow.Spec, error) {
	spec := workflow.NewSpec("genomics")
	addNorm := func(prefix, source string) string {
		id := func(n string) string { return prefix + "-" + n }
		spec.Add(id("t"), ops.NewTranspose(), workflow.FromExternal(source))
		spec.Add(id("mean"), ops.NewColMean(), workflow.FromNode(id("t")))
		spec.Add(id("center"), ops.NewColCenter("center", func(x, m float64) float64 { return x - m }),
			workflow.FromNode(id("t")), workflow.FromNode(id("mean")))
		spec.Add(id("std"), ops.NewColReduce("col-std", colStd), workflow.FromNode(id("center")))
		spec.Add(id("norm"), ops.NewColCenter("scale", func(x, s float64) float64 { return x / (1 + s) }),
			workflow.FromNode(id("center")), workflow.FromNode(id("std")))
		return id("norm")
	}
	trNorm := addNorm("tr", "train")
	teNorm := addNorm("te", "test")

	spec.Add(NodeExtractTrain, NewExtract("extract-train", LabelRow, selectionThreshold),
		workflow.FromNode(trNorm))
	spec.Add(NodeModel, NewModel(LabelRow), workflow.FromNode(NodeExtractTrain))
	spec.Add(NodeExtractTest, NewExtract("extract-test", 0, selectionThreshold),
		workflow.FromNode(teNorm))
	spec.Add(NodePredict, NewPredict(LabelRow, 0, significanceThreshold),
		workflow.FromNode(NodeExtractTest), workflow.FromNode(NodeModel))

	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("genomics: %w", err)
	}
	if got := len(spec.Nodes()); got != 14 {
		return nil, fmt.Errorf("genomics: workflow has %d nodes, want 14 (10 built-ins + 4 UDFs)", got)
	}
	return spec, nil
}

func colStd(col []float64) float64 {
	n := float64(len(col))
	mean := 0.0
	for _, v := range col {
		mean += v
	}
	mean /= n
	ss := 0.0
	for _, v := range col {
		ss += (v - mean) * (v - mean)
	}
	return math.Sqrt(ss / n)
}
