package genomics

import (
	"context"
	"math"
	"testing"
	"time"

	"subzero/internal/array"
	"subzero/internal/kvstore"
	"subzero/internal/lineage"
	"subzero/internal/query"
	"subzero/internal/workflow"
)

func testConfig() GenConfig { return DefaultGenConfig().Scaled(2) }

func TestGenerator(t *testing.T) {
	cfg := testConfig()
	data, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if data.Train.Shape()[0] != NumRows || data.Train.Shape()[1] != BasePatients*cfg.Scale {
		t.Fatalf("train shape=%v", data.Train.Shape())
	}
	// Labels are 0, 1, or missing; some of each must exist.
	var n0, n1, nm int
	for p := 0; p < data.Train.Shape()[1]; p++ {
		switch data.Train.Get2(LabelRow, p) {
		case 0:
			n0++
		case 1:
			n1++
		case MissingValue:
			nm++
		default:
			t.Fatalf("unexpected label %f", data.Train.Get2(LabelRow, p))
		}
	}
	if n0 == 0 || n1 == 0 || nm == 0 {
		t.Fatalf("label mix 0=%d 1=%d missing=%d", n0, n1, nm)
	}
	// Test matrix is unlabeled.
	for p := 0; p < data.Test.Shape()[1]; p++ {
		if data.Test.Get2(LabelRow, p) != MissingValue {
			t.Fatal("test matrix has labels")
		}
	}
	// Determinism.
	again, _ := Generate(cfg)
	for i, v := range data.Train.Data() {
		if again.Train.Data()[i] != v {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestSpecStructure(t *testing.T) {
	spec, err := NewSpec()
	if err != nil {
		t.Fatal(err)
	}
	if len(BuiltinIDs()) != 10 || len(UDFIDs) != 4 {
		t.Fatalf("builtins=%d udfs=%d", len(BuiltinIDs()), len(UDFIDs))
	}
	for _, id := range BuiltinIDs() {
		if !workflow.Supports(spec.Node(id).Op, lineage.Map) {
			t.Fatalf("built-in %s must be a mapping operator", id)
		}
	}
	for _, id := range UDFIDs {
		op := spec.Node(id).Op
		if !workflow.Supports(op, lineage.Pay) || !workflow.Supports(op, lineage.Full) {
			t.Fatalf("UDF %s must support Pay and Full", id)
		}
		if _, ok := op.(workflow.PayloadMapper); !ok {
			t.Fatalf("UDF %s lacks map_p", id)
		}
	}
}

func runGenomics(t *testing.T, planName string) (*workflow.Executor, *workflow.Run) {
	t.Helper()
	plan, err := Plan(planName)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := NewSpec()
	if err != nil {
		t.Fatal(err)
	}
	data, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := kvstore.NewManager("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	exec := workflow.NewExecutor(array.NewVersions(), mgr, lineage.NewCollector())
	run, err := exec.Execute(context.Background(), spec, plan, map[string]*array.Array{
		"train": data.Train, "test": data.Test,
	})
	if err != nil {
		t.Fatal(err)
	}
	return exec, run
}

func TestPipelineSemantics(t *testing.T) {
	_, run := runGenomics(t, "BlackBox")
	// The model must weight the signal features (0-9) far above the
	// neutral ones (10-39).
	model, err := run.Output(NodeModel)
	if err != nil {
		t.Fatal(err)
	}
	var signal, neutral float64
	for f := 0; f < 10; f++ {
		signal += math.Abs(model.Get2(0, f))
	}
	for f := 10; f < 40; f++ {
		neutral += math.Abs(model.Get2(0, f))
	}
	signal /= 10
	neutral /= 30
	if signal < 3*neutral {
		t.Fatalf("model cannot separate signal (%f) from neutral (%f)", signal, neutral)
	}
	// Predictions: relapse-ish patients score higher on average.
	pred, err := run.Output(NodePredict)
	if err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, v := range pred.Data() {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("no predictions made")
	}
}

// TestStrategyQueryEquivalence: all eight Table-II configurations must
// answer the workload identically, statically and dynamically.
func TestStrategyQueryEquivalence(t *testing.T) {
	truth := map[string][]uint64{}
	for _, name := range StrategyNames {
		exec, run := runGenomics(t, name)
		queries, err := Queries(run)
		if err != nil {
			t.Fatal(err)
		}
		for _, dynamic := range []bool{false, true} {
			qe := query.New(run, exec.Stats(), query.Options{EntireArray: true, Dynamic: dynamic})
			for qname, q := range queries {
				res, err := qe.Execute(context.Background(), q)
				if err != nil {
					t.Fatalf("%s/%s dynamic=%v: %v", name, qname, dynamic, err)
				}
				cells := res.Cells()
				if len(cells) == 0 {
					t.Fatalf("%s/%s returned no cells", name, qname)
				}
				if want, ok := truth[qname]; ok {
					if len(want) != len(cells) {
						t.Fatalf("%s/%s dynamic=%v: %d cells, want %d", name, qname, dynamic, len(cells), len(want))
					}
					for i := range want {
						if want[i] != cells[i] {
							t.Fatalf("%s/%s: cell mismatch at %d", name, qname, i)
						}
					}
				} else {
					truth[qname] = cells
				}
			}
		}
	}
}

func TestRunStrategyMeasurements(t *testing.T) {
	res, err := RunStrategy(context.Background(), "PayBoth", testConfig(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.LineageBytes <= 0 {
		t.Fatal("no lineage stored")
	}
	for _, qn := range QueryNames {
		if res.Static[qn] <= 0 || res.Dynamic[qn] <= 0 {
			t.Fatalf("missing timings for %s: %+v", qn, res)
		}
		if res.QueryCells[qn] == 0 {
			t.Fatalf("query %s empty", qn)
		}
	}
	if _, err := Plan("nope"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// Forward-optimized-only lineage must degrade backward queries (the
// Figure 6(b) pathology) while the dynamic optimizer keeps them near
// black-box (Figure 6(c)).
func TestDynamicOptimizerBoundsMismatchedAccess(t *testing.T) {
	res, err := RunStrategy(context.Background(), "FullForw", testConfig(), "")
	if err != nil {
		t.Fatal(err)
	}
	bb, err := RunStrategy(context.Background(), "BlackBox", testConfig(), "")
	if err != nil {
		t.Fatal(err)
	}
	// The paper's bound: the query-time optimizer keeps every query
	// within a small factor of pure black-box execution, no matter how
	// mismatched the materialized lineage is (Figure 6(c)). The factor
	// here is generous because test-scale timings are noisy.
	for _, qn := range []string{"BQ0", "BQ1"} {
		limit := bb.Dynamic[qn]*5 + 100*time.Millisecond
		if res.Dynamic[qn] > limit {
			t.Fatalf("%s: dynamic=%v exceeds black-box-based bound %v (blackbox=%v)",
				qn, res.Dynamic[qn], limit, bb.Dynamic[qn])
		}
	}
}

func TestOptimizerSweep(t *testing.T) {
	budgets := []int64{1 << 10, 1 << 22, 0}
	results, err := OptimizerSweep(context.Background(), testConfig(), budgets, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(budgets) {
		t.Fatalf("results=%d", len(results))
	}
	// Tiny budget: essentially no lineage. Large budgets: lineage within
	// budget; unbounded: at least as much as the 4MB budget.
	if results[0].LineageBytes > 1<<10 {
		t.Fatalf("tiny budget stored %d bytes", results[0].LineageBytes)
	}
	if results[1].LineageBytes > 1<<22 {
		t.Fatalf("plan exceeded budget: %d > %d", results[1].LineageBytes, int64(1<<22))
	}
	for _, r := range results {
		for _, qn := range QueryNames {
			if r.QueryTimes[qn] <= 0 {
				t.Fatalf("%s missing query time for %s", r.Name, qn)
			}
		}
	}
}
