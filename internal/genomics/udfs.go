package genomics

import (
	"encoding/binary"
	"fmt"
	"math"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/lineage"
	"subzero/internal/workflow"
)

// udfModes: the genomics UDFs are payload operators (paper Figure 2:
// "the 4 UDFs are all payload operators"); Full support enables tracing.
func udfModes() []lineage.Mode { return []lineage.Mode{lineage.Full, lineage.Pay} }

// selectedSentinel marks de-selected rows in Extract output.
const selectedSentinel = MissingValue

// Extract is UDF E/G: it filters patient rows of a normalized
// patient×column matrix, keeping rows whose selector column exceeds a
// threshold (labeled patients for E, complete-data patients for G).
// Selected rows pass through; de-selected rows are zeroed with the
// selector cell set to the missing sentinel. Each output cell depends on
// its own input cell plus the row's selector cell; payload lineage stores
// one 5-byte payload per row (paper §II-B: E and G "extract a subset of
// the input arrays").
type Extract struct {
	workflow.Meta
	SelCol    int
	Threshold float64
}

// NewExtract builds an extraction UDF.
func NewExtract(name string, selCol int, threshold float64) *Extract {
	return &Extract{
		Meta:      workflow.Meta{OpName: name, NIn: 1, Modes: udfModes()},
		SelCol:    selCol,
		Threshold: threshold,
	}
}

// OutShape implements Operator.
func (e *Extract) OutShape(in []grid.Shape) (grid.Shape, error) {
	if len(in) != 1 || len(in[0]) != 2 {
		return nil, fmt.Errorf("genomics: %s requires one 2-D input", e.OpName)
	}
	if e.SelCol < 0 || e.SelCol >= in[0][1] {
		return nil, fmt.Errorf("genomics: %s selector column %d outside %v", e.OpName, e.SelCol, in[0])
	}
	return in[0].Clone(), nil
}

// Run implements Operator.
func (e *Extract) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	in := ins[0]
	rows, cols := in.Shape()[0], in.Shape()[1]
	out, err := array.New(e.OpName, in.Shape())
	if err != nil {
		return nil, err
	}
	sp := in.Space()
	rowCells := make([]uint64, cols)
	pairOut := make([]uint64, 1)
	pairIn := make([]uint64, 2)
	for p := 0; p < rows; p++ {
		selCell := sp.Ravel(grid.Coord{p, e.SelCol})
		selected := in.Get(selCell) > e.Threshold
		for f := 0; f < cols; f++ {
			idx := sp.Ravel(grid.Coord{p, f})
			rowCells[f] = idx
			if selected {
				out.Set(idx, in.Get(idx))
			} else if f == e.SelCol {
				out.Set(idx, selectedSentinel)
			}
			if rc.NeedsPairs() {
				pairOut[0] = idx
				if selected {
					pairIn[0], pairIn[1] = idx, selCell
					if err := rc.LWrite(pairOut, pairIn); err != nil {
						return nil, err
					}
				} else {
					pairIn[0] = selCell
					if err := rc.LWrite(pairOut, pairIn[:1]); err != nil {
						return nil, err
					}
				}
			}
		}
		if rc.NeedsPayload() {
			if err := rc.LWritePayload(rowCells, encodeExtractPayload(selected, e.SelCol)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func encodeExtractPayload(selected bool, selCol int) []byte {
	buf := make([]byte, 5)
	if selected {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint32(buf[1:], uint32(selCol))
	return buf
}

// MapP implements PayloadMapper: per output cell, its own input cell (for
// selected rows) plus the row's selector cell.
func (e *Extract) MapP(mc *workflow.MapCtx, out uint64, payload []byte, _ int, dst []uint64) []uint64 {
	selCol := int(binary.LittleEndian.Uint32(payload[1:]))
	c := mc.OutCoord(out)
	selCell := mc.InSpaces[0].Ravel(grid.Coord{c[0], selCol})
	if payload[0] == 1 {
		dst = append(dst, out)
	}
	if out != selCell || payload[0] != 1 {
		dst = append(dst, selCell)
	}
	return dst
}

// Model is UDF F: it computes a per-column relapse-contribution model from
// the extracted training matrix (patients × columns, the last column
// holding labels). model[f] = mean(f | relapse) − mean(f | no relapse)
// over the selected patients — the Bayesian-model stand-in (paper §II-B:
// "The model computes how much each feature value contributes to the
// likelihood of patient relapse"). Each model cell depends on its column
// restricted to selected patients plus the label column; the payload is a
// bitmap of selected patients.
type Model struct {
	workflow.Meta
	LabelCol int
}

// NewModel builds the modeling UDF.
func NewModel(labelCol int) *Model {
	return &Model{Meta: workflow.Meta{OpName: "model", NIn: 1, Modes: udfModes()}, LabelCol: labelCol}
}

// OutShape implements Operator: 1×columns.
func (m *Model) OutShape(in []grid.Shape) (grid.Shape, error) {
	if len(in) != 1 || len(in[0]) != 2 {
		return nil, fmt.Errorf("genomics: model requires one 2-D input")
	}
	return grid.Shape{1, in[0][1]}, nil
}

// Run implements Operator.
func (m *Model) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	in := ins[0]
	rows, cols := in.Shape()[0], in.Shape()[1]
	out, err := array.New(m.OpName, grid.Shape{1, cols})
	if err != nil {
		return nil, err
	}
	sp := in.Space()

	// Selected patients carry a non-sentinel label; relapse = label above
	// the mean selected label (self-calibrating against normalization).
	var selected []int
	labelSum := 0.0
	for p := 0; p < rows; p++ {
		l := in.Get2(p, m.LabelCol)
		if l > selectedSentinel/2 {
			selected = append(selected, p)
			labelSum += l
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("genomics: model found no labeled patients")
	}
	labelMean := labelSum / float64(len(selected))
	var relapse, healthy []int
	for _, p := range selected {
		if in.Get2(p, m.LabelCol) > labelMean {
			relapse = append(relapse, p)
		} else {
			healthy = append(healthy, p)
		}
	}
	for f := 0; f < cols; f++ {
		out.Set2(0, f, classMean(in, relapse, f)-classMean(in, healthy, f))
	}

	if rc.NeedsPairs() || rc.NeedsPayload() {
		payload := encodeModelPayload(m.LabelCol, selected, rows)
		var insCells []uint64
		pairOut := make([]uint64, 1)
		for f := 0; f < cols; f++ {
			pairOut[0] = out.Space().Ravel(grid.Coord{0, f})
			if rc.NeedsPairs() {
				insCells = insCells[:0]
				for _, p := range selected {
					insCells = append(insCells, sp.Ravel(grid.Coord{p, f}))
					if f != m.LabelCol {
						insCells = append(insCells, sp.Ravel(grid.Coord{p, m.LabelCol}))
					}
				}
				if err := rc.LWrite(pairOut, insCells); err != nil {
					return nil, err
				}
			}
			if rc.NeedsPayload() {
				if err := rc.LWritePayload(pairOut, payload); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

func classMean(in *array.Array, patients []int, col int) float64 {
	if len(patients) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range patients {
		sum += in.Get2(p, col)
	}
	return sum / float64(len(patients))
}

func encodeModelPayload(labelCol int, selected []int, rows int) []byte {
	buf := make([]byte, 4+(rows+7)/8)
	binary.LittleEndian.PutUint32(buf, uint32(labelCol))
	for _, p := range selected {
		buf[4+p/8] |= 1 << (p % 8)
	}
	return buf
}

// MapP implements PayloadMapper: expand the selected-patient bitmap into
// this column's cells plus the label column's cells.
func (m *Model) MapP(mc *workflow.MapCtx, out uint64, payload []byte, _ int, dst []uint64) []uint64 {
	labelCol := int(binary.LittleEndian.Uint32(payload))
	f := mc.OutCoord(out)[1]
	sp := mc.InSpaces[0]
	rows := sp.Shape()[0]
	for p := 0; p < rows; p++ {
		if payload[4+p/8]&(1<<(p%8)) == 0 {
			continue
		}
		dst = append(dst, sp.Ravel(grid.Coord{p, f}))
		if f != labelCol {
			dst = append(dst, sp.Ravel(grid.Coord{p, labelCol}))
		}
	}
	return dst
}

// Predict is UDF H: it scores each test patient with the model, using
// only the significant model columns (|weight| above a threshold,
// excluding the label column). Each prediction depends on the patient's
// significant feature cells (input 0), the patient's selector cell, and
// the significant model cells (input 1); the payload is the list of
// significant columns.
type Predict struct {
	workflow.Meta
	LabelCol  int
	SelCol    int
	Threshold float64
}

// NewPredict builds the prediction UDF.
func NewPredict(labelCol, selCol int, threshold float64) *Predict {
	return &Predict{
		Meta:     workflow.Meta{OpName: "predict", NIn: 2, Modes: udfModes()},
		LabelCol: labelCol, SelCol: selCol, Threshold: threshold,
	}
}

// OutShape implements Operator: one score per test patient.
func (h *Predict) OutShape(in []grid.Shape) (grid.Shape, error) {
	if len(in) != 2 || len(in[0]) != 2 || len(in[1]) != 2 {
		return nil, fmt.Errorf("genomics: predict requires two 2-D inputs")
	}
	if in[1][0] != 1 || in[1][1] != in[0][1] {
		return nil, fmt.Errorf("genomics: model shape %v does not match features %v", in[1], in[0])
	}
	return grid.Shape{in[0][0], 1}, nil
}

// Run implements Operator.
func (h *Predict) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	feats, model := ins[0], ins[1]
	rows, cols := feats.Shape()[0], feats.Shape()[1]
	out, err := array.New(h.OpName, grid.Shape{rows, 1})
	if err != nil {
		return nil, err
	}
	var sig []int
	for f := 0; f < cols; f++ {
		if f != h.LabelCol && math.Abs(model.Get2(0, f)) > h.Threshold {
			sig = append(sig, f)
		}
	}
	payload := encodePredictPayload(h.SelCol, sig)
	sp := feats.Space()
	pairOut := make([]uint64, 1)
	var in0, in1 []uint64
	for p := 0; p < rows; p++ {
		selected := feats.Get2(p, h.SelCol) > selectedSentinel/2
		score := 0.0
		if selected {
			for _, f := range sig {
				score += model.Get2(0, f) * feats.Get2(p, f)
			}
		}
		out.Set2(p, 0, score)
		pairOut[0] = out.Space().Ravel(grid.Coord{p, 0})
		if rc.NeedsPairs() {
			in0 = in0[:0]
			in1 = in1[:0]
			in0 = append(in0, sp.Ravel(grid.Coord{p, h.SelCol}))
			for _, f := range sig {
				in0 = append(in0, sp.Ravel(grid.Coord{p, f}))
				in1 = append(in1, model.Space().Ravel(grid.Coord{0, f}))
			}
			if err := rc.LWrite(pairOut, in0, in1); err != nil {
				return nil, err
			}
		}
		if rc.NeedsPayload() {
			if err := rc.LWritePayload(pairOut, payload); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func encodePredictPayload(selCol int, sig []int) []byte {
	buf := make([]byte, 4+2+2*len(sig))
	binary.LittleEndian.PutUint32(buf, uint32(selCol))
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(sig)))
	for i, f := range sig {
		binary.LittleEndian.PutUint16(buf[6+2*i:], uint16(f))
	}
	return buf
}

// MapP implements PayloadMapper for both inputs: significant feature
// cells of the patient (plus its selector cell) in input 0, significant
// model cells in input 1.
func (h *Predict) MapP(mc *workflow.MapCtx, out uint64, payload []byte, inputIdx int, dst []uint64) []uint64 {
	selCol := int(binary.LittleEndian.Uint32(payload))
	n := int(binary.LittleEndian.Uint16(payload[4:]))
	p := mc.OutCoord(out)[0]
	sp := mc.InSpaces[inputIdx]
	if inputIdx == 0 {
		dst = append(dst, sp.Ravel(grid.Coord{p, selCol}))
	}
	for i := 0; i < n; i++ {
		f := int(binary.LittleEndian.Uint16(payload[6+2*i:]))
		if inputIdx == 0 {
			dst = append(dst, sp.Ravel(grid.Coord{p, f}))
		} else {
			dst = append(dst, sp.Ravel(grid.Coord{0, f}))
		}
	}
	return dst
}
