package array

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Versions is the "no overwrite" array store (paper §IV): every update to a
// named array appends a new immutable version, and intermediate workflow
// results are always retained. This is what makes black-box lineage free to
// record — the inputs needed to re-run any operator are always present.
type Versions struct {
	mu   sync.RWMutex
	data map[string][]*Array
}

// NewVersions creates an empty store.
func NewVersions() *Versions {
	return &Versions{data: make(map[string][]*Array)}
}

// Put appends a new version of the array under its name and returns the
// version number (0 for the first). Re-putting the array currently at the
// head of the version chain (same backing storage) is a no-op returning
// the existing version number: a long-lived server re-executing workflows
// over the same sources must not grow a duplicate version per run.
func (v *Versions) Put(a *Array) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	vs := v.data[a.Name()]
	if n := len(vs); n > 0 && vs[n-1].SharesStorage(a) {
		return n - 1
	}
	v.data[a.Name()] = append(vs, a)
	return len(v.data[a.Name()]) - 1
}

// Get returns a specific version of a named array.
func (v *Versions) Get(name string, version int) (*Array, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	vs := v.data[name]
	if version < 0 || version >= len(vs) {
		return nil, fmt.Errorf("array: no version %d of %q (have %d)", version, name, len(vs))
	}
	return vs[version], nil
}

// Latest returns the most recent version of a named array.
func (v *Versions) Latest(name string) (*Array, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	vs := v.data[name]
	if len(vs) == 0 {
		return nil, fmt.Errorf("array: unknown array %q", name)
	}
	return vs[len(vs)-1], nil
}

// NumVersions returns how many versions of name exist.
func (v *Versions) NumVersions(name string) int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.data[name])
}

// Names returns all stored array names, sorted.
func (v *Versions) Names() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.data))
	for n := range v.data {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DropPrefix removes every version of every array whose name starts with
// prefix, returning how many arrays were released. The run registry uses
// it to free a dropped run's intermediate and final outputs (which are
// stored under "<runID>/<nodeID>" names).
func (v *Versions) DropPrefix(prefix string) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	var dropped int
	for name := range v.data {
		if strings.HasPrefix(name, prefix) {
			delete(v.data, name)
			dropped++
		}
	}
	return dropped
}

// TotalBytes returns the cell-data footprint of every stored version; the
// paper compares lineage overhead against this quantity ("the cost of
// storing the intermediate and final results").
func (v *Versions) TotalBytes() int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var total int64
	for _, vs := range v.data {
		for _, a := range vs {
			total += a.MemoryBytes()
		}
	}
	return total
}
