package array

import (
	"testing"

	"subzero/internal/grid"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("a", grid.Shape{}); err == nil {
		t.Fatal("empty shape accepted")
	}
	if _, err := New("a", grid.Shape{0, 5}); err == nil {
		t.Fatal("zero extent accepted")
	}
	if _, err := New("a", grid.Shape{1 << 20, 1 << 20}); err == nil {
		t.Fatal("oversized array accepted")
	}
}

func TestDefaultAttribute(t *testing.T) {
	a := MustNew("img", grid.Shape{2, 3})
	if a.NumAttrs() != 1 || a.AttrNames()[0] != "v" {
		t.Fatalf("default attrs=%v", a.AttrNames())
	}
	if a.Size() != 6 {
		t.Fatalf("Size=%d", a.Size())
	}
}

func TestMultiAttr(t *testing.T) {
	a := MustNew("obs", grid.Shape{4}, "flux", "mask")
	if a.NumAttrs() != 2 {
		t.Fatal("attr count")
	}
	a.Attr(1)[2] = 7
	if a.Attr(0)[2] != 0 || a.Attr(1)[2] != 7 {
		t.Fatal("attributes not independent")
	}
}

func TestGetSetAccessors(t *testing.T) {
	a := MustNew("m", grid.Shape{3, 4})
	a.Set(5, 1.5)
	if a.Get(5) != 1.5 {
		t.Fatal("linear accessor")
	}
	a.SetAt(grid.Coord{2, 3}, 9)
	if a.GetAt(grid.Coord{2, 3}) != 9 || a.Get(11) != 9 {
		t.Fatal("coord accessor")
	}
	a.Set2(1, 2, 4)
	if a.Get2(1, 2) != 4 || a.GetAt(grid.Coord{1, 2}) != 4 {
		t.Fatal("2d accessor")
	}
}

func TestFillAndClone(t *testing.T) {
	a := MustNew("x", grid.Shape{10})
	a.Fill(3)
	c := a.Clone()
	c.Set(0, 99)
	if a.Get(0) != 3 {
		t.Fatal("clone aliases parent")
	}
	for i := uint64(0); i < 10; i++ {
		if c.Get(i) != 99 && c.Get(i) != 3 {
			t.Fatal("fill wrong")
		}
	}
}

func TestWithNameShares(t *testing.T) {
	a := MustNew("orig", grid.Shape{5})
	b := a.WithName("renamed")
	b.Set(1, 42)
	if a.Get(1) != 42 {
		t.Fatal("WithName must share storage")
	}
	if a.Name() != "orig" || b.Name() != "renamed" {
		t.Fatal("names wrong")
	}
}

func TestMemoryBytes(t *testing.T) {
	a := MustNew("m", grid.Shape{10, 10}, "x", "y")
	if a.MemoryBytes() != 10*10*8*2 {
		t.Fatalf("MemoryBytes=%d", a.MemoryBytes())
	}
}

func TestVersionsNoOverwrite(t *testing.T) {
	vs := NewVersions()
	a0 := MustNew("img", grid.Shape{2, 2})
	a0.Fill(1)
	a1 := MustNew("img", grid.Shape{2, 2})
	a1.Fill(2)

	if v := vs.Put(a0); v != 0 {
		t.Fatalf("first version=%d", v)
	}
	if v := vs.Put(a1); v != 1 {
		t.Fatalf("second version=%d", v)
	}
	got0, err := vs.Get("img", 0)
	if err != nil || got0.Get(0) != 1 {
		t.Fatal("old version lost (no-overwrite violated)")
	}
	latest, err := vs.Latest("img")
	if err != nil || latest.Get(0) != 2 {
		t.Fatal("latest wrong")
	}
	if vs.NumVersions("img") != 2 {
		t.Fatal("version count")
	}
}

func TestVersionsErrors(t *testing.T) {
	vs := NewVersions()
	if _, err := vs.Latest("ghost"); err == nil {
		t.Fatal("unknown array returned")
	}
	vs.Put(MustNew("a", grid.Shape{1}))
	if _, err := vs.Get("a", 5); err == nil {
		t.Fatal("out-of-range version returned")
	}
	if _, err := vs.Get("a", -1); err == nil {
		t.Fatal("negative version returned")
	}
}

func TestVersionsAccounting(t *testing.T) {
	vs := NewVersions()
	vs.Put(MustNew("a", grid.Shape{100}))
	vs.Put(MustNew("b", grid.Shape{50}))
	if vs.TotalBytes() != (100+50)*8 {
		t.Fatalf("TotalBytes=%d", vs.TotalBytes())
	}
	names := vs.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names=%v", names)
	}
}
