// Package array implements the SciDB-like data model SubZero operates on
// (paper §IV): dense multi-dimensional arrays whose cells are addressed by
// coordinates and carry one or more named, typed fields (attributes), plus
// the "no overwrite" versioned array store that makes black-box lineage
// free — every operator input and output remains addressable, so any
// operator can be re-run in tracing mode at query time.
//
// Attribute values are float64; the scientific workloads in the paper
// (telescope pixels, patient features, model likelihoods) are all numeric,
// and integral data (labels, masks) is stored exactly since float64 holds
// integers up to 2^53.
package array

import (
	"fmt"

	"subzero/internal/grid"
)

// Array is a dense multi-dimensional array with one or more attributes.
// Cell (coordinate) c's value in attribute k is Attr(k)[space.Ravel(c)].
type Array struct {
	name  string
	space *grid.Space
	names []string
	attrs [][]float64
}

// New creates a zero-filled array. If no attribute names are given, a
// single attribute "v" is created.
func New(name string, shape grid.Shape, attrNames ...string) (*Array, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if len(attrNames) == 0 {
		attrNames = []string{"v"}
	}
	size := shape.Size()
	if size > 1<<31 {
		return nil, fmt.Errorf("array: %s shape %v too large (%d cells)", name, shape, size)
	}
	a := &Array{
		name:  name,
		space: grid.NewSpace(shape),
		names: append([]string(nil), attrNames...),
		attrs: make([][]float64, len(attrNames)),
	}
	for i := range a.attrs {
		a.attrs[i] = make([]float64, size)
	}
	return a, nil
}

// MustNew is New for statically known-good shapes; it panics on error.
func MustNew(name string, shape grid.Shape, attrNames ...string) *Array {
	a, err := New(name, shape, attrNames...)
	if err != nil {
		panic(err)
	}
	return a
}

// Name returns the array's name.
func (a *Array) Name() string { return a.name }

// WithName returns a shallow copy of the array under a new name, sharing
// attribute storage. The workflow executor uses it to register an
// operator's output under the operator's output identifier.
func (a *Array) WithName(name string) *Array {
	cp := *a
	cp.name = name
	return &cp
}

// SharesStorage reports whether two arrays view the same attribute
// storage (e.g. one is a WithName copy of the other). The versioned store
// uses it to avoid registering duplicate versions of an unchanged array.
func (a *Array) SharesStorage(b *Array) bool {
	if b == nil || len(a.attrs) != len(b.attrs) {
		return false
	}
	for i := range a.attrs {
		if len(a.attrs[i]) == 0 || len(b.attrs[i]) == 0 || &a.attrs[i][0] != &b.attrs[i][0] {
			return false
		}
	}
	return len(a.attrs) > 0
}

// Space returns the coordinate space.
func (a *Array) Space() *grid.Space { return a.space }

// Shape returns the array shape. Callers must not modify it.
func (a *Array) Shape() grid.Shape { return a.space.Shape() }

// Size returns the number of cells.
func (a *Array) Size() uint64 { return a.space.Size() }

// NumAttrs returns the number of attributes.
func (a *Array) NumAttrs() int { return len(a.attrs) }

// AttrNames returns the attribute names in declaration order.
func (a *Array) AttrNames() []string { return append([]string(nil), a.names...) }

// Attr returns the backing slice of attribute k (row-major). The slice may
// be read and written directly by operators; it must not be resized.
func (a *Array) Attr(k int) []float64 { return a.attrs[k] }

// Data returns attribute 0, the primary value of each cell.
func (a *Array) Data() []float64 { return a.attrs[0] }

// Get returns attribute 0 at a linear index.
func (a *Array) Get(idx uint64) float64 { return a.attrs[0][idx] }

// Set assigns attribute 0 at a linear index.
func (a *Array) Set(idx uint64, v float64) { a.attrs[0][idx] = v }

// GetAt returns attribute 0 at a coordinate.
func (a *Array) GetAt(c grid.Coord) float64 { return a.attrs[0][a.space.Ravel(c)] }

// SetAt assigns attribute 0 at a coordinate.
func (a *Array) SetAt(c grid.Coord, v float64) { a.attrs[0][a.space.Ravel(c)] = v }

// Get2 returns attribute 0 at (row, col) of a 2-D array.
func (a *Array) Get2(r, c int) float64 {
	return a.attrs[0][uint64(r)*uint64(a.space.Shape()[1])+uint64(c)]
}

// Set2 assigns attribute 0 at (row, col) of a 2-D array.
func (a *Array) Set2(r, c int, v float64) {
	a.attrs[0][uint64(r)*uint64(a.space.Shape()[1])+uint64(c)] = v
}

// Fill assigns v to every cell of attribute 0.
func (a *Array) Fill(v float64) {
	data := a.attrs[0]
	for i := range data {
		data[i] = v
	}
}

// Clone returns a deep copy with the same name.
func (a *Array) Clone() *Array {
	c := &Array{name: a.name, space: a.space, names: append([]string(nil), a.names...)}
	c.attrs = make([][]float64, len(a.attrs))
	for i, d := range a.attrs {
		c.attrs[i] = append([]float64(nil), d...)
	}
	return c
}

// MemoryBytes returns the approximate heap footprint of the cell data,
// which the benchmarks report as array storage cost.
func (a *Array) MemoryBytes() int64 {
	var total int64
	for _, d := range a.attrs {
		total += int64(len(d)) * 8
	}
	return total
}

func (a *Array) String() string {
	return fmt.Sprintf("Array(%s %v x%d attrs)", a.name, a.Shape(), len(a.attrs))
}
