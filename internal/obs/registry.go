package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Unit declares how a family's int64 samples map to exposition values.
type Unit int

const (
	// Raw exposes stored values as-is (counts, cells, bytes).
	Raw Unit = iota
	// Nanos stores nanoseconds and exposes floating-point seconds, the
	// Prometheus convention for durations.
	Nanos
)

// metricKind is the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// labelSep joins label values into a series key. Label values containing
// the separator byte (unit separator, never printable) would collide; no
// SubZero label value can.
const labelSep = "\x1f"

// series is one (labels -> metric) binding inside a family.
type series struct {
	labelStr string   // rendered `k="v",k2="v2"` form, "" for the scalar series
	values   []string // raw label values, aligned with family.labels
	c        *Counter
	g        *Gauge
	h        *Histogram
}

// family is one named metric family: a TYPE, a unit, a label schema, and
// its series.
type family struct {
	name   string
	help   string
	kind   metricKind
	unit   Unit
	labels []string

	mu     sync.Mutex
	keys   []string // insertion order; sorted at exposition time
	series map[string]*series
}

// ensure returns the series for the given label values, creating it on
// first use. values must match the family's label schema length.
func (f *family) ensure(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s takes %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := ""
	switch len(values) {
	case 0:
	case 1:
		key = values[0]
	case 2:
		key = values[0] + labelSep + values[1]
	default:
		key = strings.Join(values, labelSep)
	}
	f.mu.Lock()
	s := f.series[key]
	if s == nil {
		s = &series{values: append([]string(nil), values...)}
		var b strings.Builder
		for i, name := range f.labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(name)
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(values[i]))
			b.WriteByte('"')
		}
		s.labelStr = b.String()
		switch f.kind {
		case kindCounter:
			s.c = new(Counter)
		case kindGauge:
			s.g = new(Gauge)
		case kindHistogram:
			s.h = new(Histogram)
		}
		f.series[key] = s
		f.keys = append(f.keys, key)
	}
	f.mu.Unlock()
	return s
}

// Registry holds metric families and renders them in Prometheus text
// exposition format 0.0.4. Registration is for setup time (duplicate names
// panic); observation goes through the returned metric pointers and never
// touches the registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help string, kind metricKind, unit Unit, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic("obs: duplicate metric family " + name)
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		unit:   unit,
		labels: labels,
		series: make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// NewCounter registers an unlabeled counter family and returns its series.
func (r *Registry) NewCounter(name, help string, unit Unit) *Counter {
	return r.register(name, help, kindCounter, unit, nil).ensure(nil).c
}

// NewGauge registers an unlabeled gauge family and returns its series.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, Raw, nil).ensure(nil).g
}

// NewHistogram registers an unlabeled histogram family and returns its
// series.
func (r *Registry) NewHistogram(name, help string, unit Unit) *Histogram {
	return r.register(name, help, kindHistogram, unit, nil).ensure(nil).h
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, unit Unit, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, unit, labels)}
}

// With returns the counter for the given label values, creating it on
// first use. Resolve once and cache the pointer on hot paths.
func (v *CounterVec) With(values ...string) *Counter { return v.f.ensure(values).c }

// With1 is a non-variadic With for single-label families.
func (v *CounterVec) With1(a string) *Counter { return v.f.ensure1(a).c }

// With2 is a non-variadic With for two-label families; its only allocation
// is the composite key string.
func (v *CounterVec) With2(a, b string) *Counter { return v.f.ensure2(a, b).c }

// Each calls fn for every series with its raw label values and current
// count, in insertion order.
func (v *CounterVec) Each(fn func(values []string, count int64)) {
	v.f.mu.Lock()
	keys := append([]string(nil), v.f.keys...)
	all := make([]*series, len(keys))
	for i, k := range keys {
		all[i] = v.f.series[k]
	}
	v.f.mu.Unlock()
	for _, s := range all {
		fn(s.values, s.c.Load())
	}
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// NewHistogramVec registers a labeled histogram family.
func (r *Registry) NewHistogramVec(name, help string, unit Unit, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, kindHistogram, unit, labels)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.ensure(values).h }

// With1 is a non-variadic With for single-label families.
func (v *HistogramVec) With1(a string) *Histogram { return v.f.ensure1(a).h }

// ensure1 and ensure2 mirror ensure without a variadic slice, keeping
// single- and double-label lookups at zero and one allocation.
func (f *family) ensure1(a string) *series {
	if len(f.labels) != 1 {
		panic(fmt.Sprintf("obs: metric %s takes %d label values, got 1", f.name, len(f.labels)))
	}
	f.mu.Lock()
	s := f.series[a]
	f.mu.Unlock()
	if s != nil {
		return s
	}
	return f.ensure([]string{a})
}

func (f *family) ensure2(a, b string) *series {
	if len(f.labels) != 2 {
		panic(fmt.Sprintf("obs: metric %s takes %d label values, got 2", f.name, len(f.labels)))
	}
	key := a + labelSep + b
	f.mu.Lock()
	s := f.series[key]
	f.mu.Unlock()
	if s != nil {
		return s
	}
	return f.ensure([]string{a, b})
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatValue renders a stored int64 in the family's unit.
func formatValue(v int64, unit Unit) string {
	if unit == Nanos {
		return strconv.FormatFloat(float64(v)/1e9, 'g', -1, 64)
	}
	return strconv.FormatInt(v, 10)
}

// formatBound renders a bucket upper bound in the family's unit.
func formatBound(i int, unit Unit) string {
	if i >= NumBuckets-1 {
		return "+Inf"
	}
	return formatValue(BucketBound(i), unit)
}

// WriteProm renders every family in Prometheus text exposition format
// 0.0.4: families sorted by name, a HELP and TYPE line each, series sorted
// by label string, histograms as cumulative le buckets plus _sum/_count.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.write(&b, false)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteOpenMetrics renders the same families as WriteProm with two
// OpenMetrics additions: histogram bucket lines carry exemplars
// ("# {trace_id=\"...\"} value" suffix) when a traced observation landed
// in the bucket, and the body ends with the required "# EOF" terminator.
// Serve it only under content negotiation — the 0.0.4 parser in client/
// would otherwise see the exemplar as part of the sample line.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.write(&b, true)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (f *family) write(b *strings.Builder, exemplars bool) {
	f.mu.Lock()
	keys := append([]string(nil), f.keys...)
	all := make([]*series, len(keys))
	for i, k := range keys {
		all[i] = f.series[k]
	}
	f.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].labelStr < all[j].labelStr })

	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteByte('\n')
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.kind.String())
	b.WriteByte('\n')

	for _, s := range all {
		switch f.kind {
		case kindCounter:
			writeSample(b, f.name, "", s.labelStr, "", formatValue(s.c.Load(), f.unit))
		case kindGauge:
			writeSample(b, f.name, "", s.labelStr, "", formatValue(s.g.Load(), f.unit))
		case kindHistogram:
			snap := s.h.Snapshot()
			var cum int64
			for i := range snap.Buckets {
				cum += snap.Buckets[i]
				// Collapse empty interior buckets: emit a bucket line only
				// when it adds information (non-empty, first, or last).
				if snap.Buckets[i] == 0 && i != NumBuckets-1 && i != 0 {
					continue
				}
				var ex string
				if exemplars {
					if e := s.h.Exemplar(i); e != nil {
						ex = ` # {trace_id="` + escapeLabelValue(e.TraceID) + `"} ` +
							formatValue(e.Value, f.unit)
					}
				}
				writeSample(b, f.name, "_bucket", s.labelStr,
					`le="`+formatBound(i, f.unit)+`"`, strconv.FormatInt(cum, 10)+ex)
			}
			writeSample(b, f.name, "_sum", s.labelStr, "", formatValue(snap.Sum, f.unit))
			writeSample(b, f.name, "_count", s.labelStr, "", strconv.FormatInt(snap.Count, 10))
		}
	}
}

// writeSample writes one exposition line: name+suffix{labels,extra} value.
func writeSample(b *strings.Builder, name, suffix, labels, extra, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}
