// Package obs is SubZero's stdlib-only observability layer: atomic
// counters, gauges, and fixed-bucket histograms that are lock-free on the
// observation path, plus a metric registry with a hand-rolled Prometheus
// text-format exposition writer (no dependencies).
//
// Design constraints, in priority order:
//
//   - Observation is the hot path: Counter.Add, Gauge.Set, and
//     Histogram.Observe are single atomic operations (zero allocations,
//     pinned by TestObservationAllocBounds). Vec lookups cost at most one
//     small allocation for the composite label key; callers on truly hot
//     paths resolve their series once and keep the pointer.
//   - Reading is rare and may be approximate: Snapshot copies counters
//     field by field without a global lock, so a snapshot taken during a
//     storm of observations can be skewed by in-flight updates. Every
//     individual counter is monotonic.
//   - The zero value of every metric is ready to use, so metric bundles
//     embed them directly and tests need no registry.
//
// Histograms use fixed power-of-two buckets over non-negative int64
// values. Durations are observed in nanoseconds and exposed in seconds
// (Unit Nanos); dimensionless values (cells, bytes) are exposed raw.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n. Negative n is a programming error but is
// applied as-is; the exposition layer does not re-check monotonicity.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (in-flight requests, queue depth).
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// NumBuckets is the fixed bucket count of every Histogram. Bucket i holds
// observations in (2^(i-1), 2^i] (bucket 0 holds [0, 1]); the last bucket
// is unbounded. 44 buckets cover [0ns, ~73min] at nanosecond resolution.
const NumBuckets = 44

// Histogram is a fixed-bucket histogram over non-negative int64 values,
// lock-free on the observation path. The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	minP1   atomic.Int64 // min+1; 0 means "no observations yet"
	maxP1   atomic.Int64 // max+1; 0 means "no observations yet"
	buckets [NumBuckets]atomic.Int64
	// ex holds the latest exemplar per bucket — a trace ID linking the
	// bucket to a retained trace. Nil entries mean "no exemplar"; the
	// plain Observe path never touches this array.
	ex [NumBuckets]atomic.Pointer[Exemplar]
}

// Exemplar links a histogram bucket to one concrete traced observation,
// in the OpenMetrics sense: a metric spike points straight at a retained
// trace. Immutable once published.
type Exemplar struct {
	TraceID string
	Value   int64
}

// SetExemplar attaches an exemplar to the bucket covering v. It does NOT
// observe v — callers pair it with an Observe of the same value (the
// split keeps Observe allocation-free for untraced requests).
func (h *Histogram) SetExemplar(v int64, traceID string) {
	if traceID == "" {
		return
	}
	if v < 0 {
		v = 0
	}
	h.ex[bucketIndex(v)].Store(&Exemplar{TraceID: traceID, Value: v})
}

// Exemplar returns the latest exemplar of bucket i, or nil.
func (h *Histogram) Exemplar(i int) *Exemplar {
	if i < 0 || i >= NumBuckets {
		return nil
	}
	return h.ex[i].Load()
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	idx := bits.Len64(uint64(v - 1))
	if idx >= NumBuckets {
		idx = NumBuckets - 1
	}
	return idx
}

// BucketBound returns the inclusive upper bound of bucket i
// (math.MaxInt64 for the unbounded last bucket).
func BucketBound(i int) int64 {
	if i >= NumBuckets-1 {
		return math.MaxInt64
	}
	return 1 << i
}

// Observe records one value. Negative values clamp to zero. Zero
// allocations; safe for concurrent use.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	p := v + 1
	for {
		cur := h.minP1.Load()
		if cur != 0 && cur <= p {
			break
		}
		if h.minP1.CompareAndSwap(cur, p) {
			break
		}
	}
	for {
		cur := h.maxP1.Load()
		if cur >= p {
			break
		}
		if h.maxP1.CompareAndSwap(cur, p) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistogramSnapshot is a point-in-time copy of a histogram. Fields are
// loaded individually, so a snapshot racing observations can be off by the
// in-flight updates; each field is itself monotonic (except Min).
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Min     int64 // 0 when Count == 0
	Max     int64 // 0 when Count == 0
	Buckets [NumBuckets]int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if p := h.minP1.Load(); p > 0 {
		s.Min = p - 1
	}
	if p := h.maxP1.Load(); p > 0 {
		s.Max = p - 1
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the average observed value (0 when empty).
func (s *HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the covering bucket, clamped to the observed [Min, Max] range.
func (s *HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, b := range s.Buckets {
		if b == 0 {
			continue
		}
		if float64(cum+b) >= rank {
			lo := int64(0)
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := BucketBound(i)
			if hi > s.Max {
				hi = s.Max
			}
			if lo < s.Min {
				lo = s.Min
			}
			if lo > hi {
				lo = hi
			}
			frac := (rank - float64(cum)) / float64(b)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += b
	}
	return s.Max
}
