package obs

import (
	"strings"
	"time"
)

// Span classes for per-step query tracing. These mirror the executor's
// access-path families: the class is the prefix of a StepReport access
// path ("store(FullOne<-)" -> "store"), plus "probe" for candidate
// enumeration, which has no access path of its own.
const (
	SpanProbe       = "probe"
	SpanEntireArray = "entire-array"
	SpanMap         = "map"
	SpanComposite   = "composite"
	SpanStore       = "store"
	SpanStoreScan   = "store-scan"
	SpanReexec      = "reexec"
	spanOther       = "other"
)

// Span classes for the layers above and below the executor, used by
// internal/trace span trees (they have no StepReport access path, so
// RecordStep never sees them). Every span a tracer emits must carry one
// of the SpanClasses() families — see CONTRIBUTING.
const (
	SpanHTTP          = "http"
	SpanQuery         = "query"
	SpanExecute       = "execute"
	SpanNode          = "node"
	SpanKVProbe       = "kvstore-probe"
	SpanIngestEnqueue = "ingest-enqueue"
	SpanIngestDrain   = "ingest-drain"
)

// SpanClasses returns every valid trace span class. The executor families
// (probe..reexec) double as step-metric labels; the rest exist only in
// trace trees.
func SpanClasses() []string {
	return []string{
		SpanProbe, SpanEntireArray, SpanMap, SpanComposite, SpanStore,
		SpanStoreScan, SpanReexec, spanOther,
		SpanHTTP, SpanQuery, SpanExecute, SpanNode, SpanKVProbe,
		SpanIngestEnqueue, SpanIngestDrain,
	}
}

// spanObs couples the per-class step counter and latency histogram.
type spanObs struct {
	steps   *Counter
	latency *Histogram
}

// QueryObs instruments the query executor: workload mix, latency by
// direction, region locality, and per-step span tracing.
type QueryObs struct {
	// Backward and Forward count completed query executions by direction.
	Backward *Counter
	Forward  *Counter
	// Latency holds per-direction query latency, indexed by
	// query.Direction (0 backward, 1 forward).
	Latency [2]*Histogram
	// Cells counts queried cells; RegionSpan observes the linear extent
	// (max cell - min cell + 1) of each query's region — the locality
	// signal the adaptive optimizer consumes.
	Cells      *Counter
	RegionSpan *Histogram
	// Steps and StepLatency trace path steps by span class; Fallbacks
	// counts steps that abandoned materialized lineage for re-execution.
	Steps       *CounterVec
	StepLatency *HistogramVec
	Fallbacks   *Counter
	// OperatorHits counts (node, access path) pairs — per-operator
	// strategy hit counts.
	OperatorHits *CounterVec

	// spans pre-resolves the common classes; read-only after newQueryObs,
	// so RecordStep reads it without locks.
	spans map[string]spanObs
}

func newQueryObs(r *Registry) QueryObs {
	q := QueryObs{
		Steps: r.NewCounterVec("subzero_query_steps_total",
			"Query path steps executed, by span class.", Raw, "span"),
		StepLatency: r.NewHistogramVec("subzero_query_step_duration_seconds",
			"Latency of query path steps, by span class.", Nanos, "span"),
		Cells: r.NewCounter("subzero_query_cells_total",
			"Cells submitted across all lineage queries.", Raw),
		RegionSpan: r.NewHistogram("subzero_query_region_span_cells",
			"Linear extent (max-min+1 cell index) of each query region.", Raw),
		Fallbacks: r.NewCounter("subzero_query_fallbacks_total",
			"Query steps that fell back from materialized lineage to re-execution.", Raw),
		OperatorHits: r.NewCounterVec("subzero_query_operator_path_total",
			"Query step executions by workflow node and access path.", Raw, "node", "path"),
	}
	dirs := r.NewCounterVec("subzero_queries_total",
		"Completed lineage queries, by direction.", Raw, "direction")
	q.Backward = dirs.With1("backward")
	q.Forward = dirs.With1("forward")
	lat := r.NewHistogramVec("subzero_query_duration_seconds",
		"Lineage query latency, by direction.", Nanos, "direction")
	q.Latency[0] = lat.With1("backward")
	q.Latency[1] = lat.With1("forward")
	q.spans = make(map[string]spanObs)
	for _, class := range []string{SpanProbe, SpanEntireArray, SpanMap,
		SpanComposite, SpanStore, SpanStoreScan, SpanReexec, spanOther} {
		q.spans[class] = spanObs{steps: q.Steps.With1(class), latency: q.StepLatency.With1(class)}
	}
	return q
}

// SpanClass reduces a step access-path label to its span class: the
// prefix before the first '(' ("store(FullOne<-)+reexec" -> "store",
// "reexec-conservative" -> "reexec").
func SpanClass(accessPath string) string {
	if i := strings.IndexByte(accessPath, '('); i >= 0 {
		accessPath = accessPath[:i]
	}
	if accessPath == "reexec-conservative" {
		return SpanReexec
	}
	return accessPath
}

// RecordStep records one executed path step: span class counters and
// latency, the per-operator access-path hit, and the fallback counter.
// At most one allocation (the composite node+path key).
func (q *QueryObs) RecordStep(node, accessPath string, elapsed time.Duration, fellBack bool) {
	class := SpanClass(accessPath)
	so, ok := q.spans[class]
	if !ok {
		so = q.spans[spanOther]
	}
	so.steps.Inc()
	so.latency.ObserveDuration(elapsed)
	q.OperatorHits.With2(node, accessPath).Inc()
	if fellBack {
		q.Fallbacks.Inc()
	}
}

// RecordProbe records a candidate-enumeration span.
func (q *QueryObs) RecordProbe(elapsed time.Duration) {
	so := q.spans[SpanProbe]
	so.steps.Inc()
	so.latency.ObserveDuration(elapsed)
}

// RecordQuery records a completed query: direction mix, latency, cell
// count, and region extent (span = max-min+1 over the queried cells).
func (q *QueryObs) RecordQuery(direction int, elapsed time.Duration, cells []uint64) {
	if direction == 0 {
		q.Backward.Inc()
	} else {
		q.Forward.Inc()
	}
	if direction < 0 || direction > 1 {
		direction = 0
	}
	q.Latency[direction].ObserveDuration(elapsed)
	q.Cells.Add(int64(len(cells)))
	if len(cells) > 0 {
		min, max := cells[0], cells[0]
		for _, c := range cells[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		q.RegionSpan.Observe(int64(max-min) + 1)
	}
}

// AttachExemplar links the query-latency bucket covering elapsed to the
// given trace ID, so a spike in subzero_query_duration_seconds points at
// a retained trace. No-op when traceID is empty (untraced request).
func (q *QueryObs) AttachExemplar(direction int, elapsed time.Duration, traceID string) {
	if traceID == "" {
		return
	}
	if direction < 0 || direction > 1 {
		direction = 0
	}
	q.Latency[direction].SetExemplar(int64(elapsed), traceID)
}

// IngestObs instruments the sharded capture pipeline.
type IngestObs struct {
	// EnqueueStall observes the time Enqueue spent handing a batch to the
	// shard queues — backpressure shows up here.
	EnqueueStall *Histogram
	// Flush observes drain-barrier latency (Writer.Flush waiting for the
	// pipeline to empty).
	Flush *Histogram
	// Batches and Pairs count enqueued lineage batches and region pairs.
	Batches *Counter
	Pairs   *Counter
	// QueueDepth tracks the most recently observed total queue depth.
	QueueDepth *Gauge
	// ShardBusy and ShardPairs break worker time and pair volume down by
	// shard; the coordinator resolves per-shard series once at startup.
	ShardBusy  *CounterVec
	ShardPairs *CounterVec
}

func newIngestObs(r *Registry) IngestObs {
	return IngestObs{
		EnqueueStall: r.NewHistogram("subzero_ingest_enqueue_stall_seconds",
			"Time operator threads spent enqueueing lineage batches (backpressure).", Nanos),
		Flush: r.NewHistogram("subzero_ingest_flush_seconds",
			"Drain-barrier latency waiting for the capture pipeline to empty.", Nanos),
		Batches: r.NewCounter("subzero_ingest_batches_total",
			"Lineage batches enqueued to the capture pipeline.", Raw),
		Pairs: r.NewCounter("subzero_ingest_pairs_total",
			"Region pairs enqueued to the capture pipeline.", Raw),
		QueueDepth: r.NewGauge("subzero_ingest_queue_depth",
			"Most recently observed total ingest queue depth, in batches."),
		ShardBusy: r.NewCounterVec("subzero_ingest_shard_busy_seconds_total",
			"Cumulative busy time of ingest shard workers.", Nanos, "shard"),
		ShardPairs: r.NewCounterVec("subzero_ingest_shard_pairs_total",
			"Region pairs processed per ingest shard.", Raw, "shard"),
	}
}

// KVObs instruments the key-value store layer. The instrumented store
// wrapper holds these pointers directly, so the lookup hot path pays only
// atomic adds.
type KVObs struct {
	Gets         *Counter
	GetBatches   *Counter
	Puts         *Counter
	PutBatches   *Counter
	Scans        *Counter
	KeysRead     *Counter
	KeysWritten  *Counter
	BytesRead    *Counter
	BytesWritten *Counter
	// GetBatchLatency and PutBatchLatency time whole batch calls,
	// including value decode work done in the caller's callback.
	GetBatchLatency *Histogram
	PutBatchLatency *Histogram
}

func newKVObs(r *Registry) KVObs {
	ops := r.NewCounterVec("subzero_kvstore_ops_total",
		"Key-value store operations, by op.", Raw, "op")
	keys := r.NewCounterVec("subzero_kvstore_keys_total",
		"Keys read or written through the key-value store.", Raw, "dir")
	bytes := r.NewCounterVec("subzero_kvstore_bytes_total",
		"Value bytes read or written through the key-value store.", Raw, "dir")
	return KVObs{
		Gets:         ops.With1("get"),
		GetBatches:   ops.With1("get_batch"),
		Puts:         ops.With1("put"),
		PutBatches:   ops.With1("put_batch"),
		Scans:        ops.With1("scan"),
		KeysRead:     keys.With1("read"),
		KeysWritten:  keys.With1("written"),
		BytesRead:    bytes.With1("read"),
		BytesWritten: bytes.With1("written"),
		GetBatchLatency: r.NewHistogram("subzero_kvstore_get_batch_seconds",
			"Latency of batched key-value reads (the lineage lookup hot path).", Nanos),
		PutBatchLatency: r.NewHistogram("subzero_kvstore_put_batch_seconds",
			"Latency of batched key-value writes (lineage flush group commits).", Nanos),
	}
}

// HTTPObs instruments the serving layer.
type HTTPObs struct {
	// Requests and Latency are labeled by route pattern; the server
	// resolves each endpoint's series at registration time.
	Requests *CounterVec
	Latency  *HistogramVec
	InFlight *Gauge
	// Shed counts requests rejected by the capacity gate or drain;
	// Cancelled counts requests abandoned by the client mid-flight.
	Shed      *Counter
	Cancelled *Counter
}

func newHTTPObs(r *Registry) HTTPObs {
	return HTTPObs{
		Requests: r.NewCounterVec("subzero_http_requests_total",
			"HTTP requests served, by route.", Raw, "endpoint"),
		Latency: r.NewHistogramVec("subzero_http_request_duration_seconds",
			"HTTP request latency, by route.", Nanos, "endpoint"),
		InFlight: r.NewGauge("subzero_http_in_flight",
			"Requests currently being served."),
		Shed: r.NewCounter("subzero_http_shed_total",
			"Requests shed by the capacity gate or while draining.", Raw),
		Cancelled: r.NewCounter("subzero_http_cancelled_total",
			"Requests abandoned by the client before completion.", Raw),
	}
}

// Set is the process-wide observability surface: every metric family the
// serving and capture pipeline export, pre-registered in one Registry. A
// System owns one Set; the server renders its Registry at /v1/metrics.
type Set struct {
	Registry *Registry
	Query    QueryObs
	Ingest   IngestObs
	KV       KVObs
	HTTP     HTTPObs
}

// NewSet builds a Set with every SubZero metric family registered.
func NewSet() *Set {
	r := NewRegistry()
	return &Set{
		Registry: r,
		Query:    newQueryObs(r),
		Ingest:   newIngestObs(r),
		KV:       newKVObs(r),
		HTTP:     newHTTPObs(r),
	}
}
