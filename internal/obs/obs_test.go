package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4},
		{1 << 42, 42},
		{1<<42 + 1, NumBuckets - 1},
		{math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		v := c.v
		if v < 0 {
			v = 0 // Observe clamps before indexing
		}
		if got := bucketIndex(v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every value must land in a bucket whose bound contains it.
	for _, v := range []int64{0, 1, 2, 3, 100, 999, 1 << 20, 1 << 43} {
		i := bucketIndex(v)
		if v > BucketBound(i) {
			t.Errorf("value %d above bound of its bucket %d (%d)", v, i, BucketBound(i))
		}
		if i > 0 && v <= BucketBound(i-1) {
			t.Errorf("value %d belongs in an earlier bucket than %d", v, i)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{10, 20, 30, 40, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 1100 {
		t.Fatalf("sum = %d, want 1100", s.Sum)
	}
	if s.Min != 10 || s.Max != 1000 {
		t.Fatalf("min/max = %d/%d, want 10/1000", s.Min, s.Max)
	}
	if got := s.Mean(); got != 220 {
		t.Fatalf("mean = %d, want 220", got)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.50)
	p95 := s.Quantile(0.95)
	p99 := s.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not ordered: p50=%d p95=%d p99=%d", p50, p95, p99)
	}
	// Power-of-two buckets are coarse; accept the right bucket's range.
	if p50 < 256 || p50 > 512 {
		t.Errorf("p50 = %d, want within (256, 512]", p50)
	}
	if p99 < 512 || p99 > 1000 {
		t.Errorf("p99 = %d, want within (512, 1000]", p99)
	}
	if s.Quantile(1.0) != 1000 {
		t.Errorf("p100 = %d, want 1000", s.Quantile(1.0))
	}

	var empty Histogram
	es := empty.Snapshot()
	if es.Quantile(0.5) != 0 || es.Mean() != 0 {
		t.Errorf("empty histogram quantile/mean nonzero")
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.ObserveDuration(-5 * time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("negative observation not clamped: %+v", s)
	}
}

// TestObservationAllocBounds pins the ISSUE's hot-path budget: plain
// observations are allocation-free and vec lookups cost at most one
// allocation (the composite label key).
func TestObservationAllocBounds(t *testing.T) {
	var c Counter
	if n := testing.AllocsPerRun(100, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %v times", n)
	}
	var g Gauge
	if n := testing.AllocsPerRun(100, func() { g.Set(3) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v times", n)
	}
	var h Histogram
	if n := testing.AllocsPerRun(100, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v times", n)
	}

	r := NewRegistry()
	cv := r.NewCounterVec("c_total", "h", Raw, "a")
	cv.With1("x").Inc() // create the series outside the measured loop
	if n := testing.AllocsPerRun(100, func() { cv.With1("x").Inc() }); n != 0 {
		t.Errorf("CounterVec.With1 steady state allocates %v times", n)
	}
	cv2 := r.NewCounterVec("c2_total", "h", Raw, "a", "b")
	cv2.With2("x", "y").Inc()
	if n := testing.AllocsPerRun(100, func() { cv2.With2("x", "y").Inc() }); n > 1 {
		t.Errorf("CounterVec.With2 steady state allocates %v times, want <=1", n)
	}

	set := NewSet()
	set.Query.RecordStep("node", "store(FullOne<-)", time.Millisecond, false)
	if n := testing.AllocsPerRun(100, func() {
		set.Query.RecordStep("node", "store(FullOne<-)", time.Millisecond, false)
	}); n > 1 {
		t.Errorf("QueryObs.RecordStep allocates %v times, want <=1", n)
	}
	kv := &set.KV
	if n := testing.AllocsPerRun(100, func() {
		kv.Gets.Inc()
		kv.KeysRead.Inc()
		kv.BytesRead.Add(128)
	}); n != 0 {
		t.Errorf("KV counter path allocates %v times", n)
	}
}

func TestSpanClass(t *testing.T) {
	cases := map[string]string{
		"entire-array":           SpanEntireArray,
		"map":                    SpanMap,
		"map(<-)":                SpanMap,
		"composite(Comp/One)":    SpanComposite,
		"store(FullOne<-)":       SpanStore,
		"store-scan(->F/One)":    SpanStoreScan,
		"store(PayOne<-)+reexec": SpanStore,
		"reexec":                 SpanReexec,
		"reexec-conservative":    SpanReexec,
	}
	for in, want := range cases {
		if got := SpanClass(in); got != want {
			t.Errorf("SpanClass(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRecordQuery(t *testing.T) {
	set := NewSet()
	set.Query.RecordQuery(0, time.Millisecond, []uint64{10, 4, 30})
	set.Query.RecordQuery(1, 2*time.Millisecond, []uint64{7})
	if set.Query.Backward.Load() != 1 || set.Query.Forward.Load() != 1 {
		t.Fatalf("direction counters = %d/%d, want 1/1",
			set.Query.Backward.Load(), set.Query.Forward.Load())
	}
	if got := set.Query.Cells.Load(); got != 4 {
		t.Fatalf("cells = %d, want 4", got)
	}
	rs := set.Query.RegionSpan.Snapshot()
	if rs.Count != 2 || rs.Max != 27 || rs.Min != 1 {
		t.Fatalf("region span snapshot = %+v, want count 2, min 1, max 27", rs)
	}
	if set.Query.Latency[0].Count() != 1 || set.Query.Latency[1].Count() != 1 {
		t.Fatalf("latency counts = %d/%d, want 1/1",
			set.Query.Latency[0].Count(), set.Query.Latency[1].Count())
	}
}

func TestVecEach(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("hits_total", "h", Raw, "node", "path")
	cv.With2("a", "store").Add(3)
	cv.With2("b", "map").Add(5)
	got := map[string]int64{}
	cv.Each(func(values []string, count int64) {
		got[values[0]+"/"+values[1]] = count
	})
	if len(got) != 2 || got["a/store"] != 3 || got["b/map"] != 5 {
		t.Fatalf("Each = %v", got)
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("x_total", "h", Raw, "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	cv.With("only-one")
}

func TestDuplicateFamilyPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "h", Raw)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate family did not panic")
		}
	}()
	r.NewCounter("dup_total", "again", Raw)
}

// TestConcurrentObserveAndWrite exercises the lock-free observation path
// against concurrent exposition under -race.
func TestConcurrentObserveAndWrite(t *testing.T) {
	set := NewSet()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				set.Query.RecordQuery(0, time.Microsecond, []uint64{1, 2, 3})
				set.Query.RecordStep("n", "store(FullOne<-)", time.Microsecond, false)
				set.KV.GetBatchLatency.Observe(100)
				set.HTTP.InFlight.Add(1)
				set.HTTP.InFlight.Add(-1)
			}
		}()
	}
	for i := 0; i < 20; i++ {
		var sb strings.Builder
		if err := set.Registry.WriteProm(&sb); err != nil {
			t.Errorf("WriteProm: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}
