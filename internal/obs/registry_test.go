package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf)$`)

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("subzero_test_ops_total", "Operations performed.", Raw)
	c.Add(7)
	g := r.NewGauge("subzero_test_depth", "Queue depth.")
	g.Set(3)
	h := r.NewHistogram("subzero_test_latency_seconds", "Latency.", Nanos)
	h.Observe(1500) // 1.5µs -> bucket le 2048ns = 2.048e-06s
	cv := r.NewCounterVec("subzero_test_hits_total", "Hits by kind.", Raw, "kind")
	cv.With1("alpha").Add(2)
	cv.With1("beta").Inc()

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP subzero_test_ops_total Operations performed.\n",
		"# TYPE subzero_test_ops_total counter\n",
		"subzero_test_ops_total 7\n",
		"# TYPE subzero_test_depth gauge\n",
		"subzero_test_depth 3\n",
		"# TYPE subzero_test_latency_seconds histogram\n",
		"subzero_test_latency_seconds_count 1\n",
		"subzero_test_latency_seconds_sum 1.5e-06\n",
		`subzero_test_hits_total{kind="alpha"} 2` + "\n",
		`subzero_test_hits_total{kind="beta"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// Families must be sorted by name and preceded by HELP then TYPE.
	var lastFamily string
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	helpSeen := map[string]bool{}
	typeSeen := map[string]bool{}
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			if name < lastFamily {
				t.Errorf("family %s out of order after %s", name, lastFamily)
			}
			lastFamily = name
			helpSeen[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			name := strings.Fields(line)[2]
			if !helpSeen[name] {
				t.Errorf("TYPE before HELP for %s", name)
			}
			typeSeen[name] = true
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("unparsable sample line %q", line)
				continue
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
			if !typeSeen[base] && !typeSeen[m[1]] {
				t.Errorf("sample %q has no TYPE line", line)
			}
		}
	}
}

func TestHistogramExpositionCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "h", Nanos)
	for _, v := range []int64{1, 2, 3, 1000, 1 << 50} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	var infCount, total int64
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			if strings.HasPrefix(line, "lat_seconds_count ") {
				total, _ = strconv.ParseInt(strings.TrimPrefix(line, "lat_seconds_count "), 10, 64)
			}
			continue
		}
		_, val, ok := strings.Cut(line, "} ")
		if !ok {
			t.Fatalf("malformed bucket line %q", line)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Fatalf("bucket value %q: %v", val, err)
		}
		if n < prev {
			t.Errorf("bucket counts not cumulative: %d after %d in %q", n, prev, line)
		}
		prev = n
		if strings.Contains(line, `le="+Inf"`) {
			infCount = n
		}
	}
	if infCount != 5 || total != 5 {
		t.Errorf("+Inf bucket %d, count %d, want both 5", infCount, total)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("esc_total", "h", Raw, "endpoint")
	cv.With1("GET /v1/\"weird\"\npath\\x").Inc()
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{endpoint="GET /v1/\"weird\"\npath\\x"} 1`
	if !strings.Contains(sb.String(), want+"\n") {
		t.Fatalf("escaped sample missing; got:\n%s", sb.String())
	}
	// The escaped line must still parse as one sample.
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i < 0 {
			t.Errorf("sample line %q has no value separator", line)
		} else if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Errorf("sample value in %q does not parse: %v", line, err)
		}
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("help_total", "line one\nline \\two", Raw)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# HELP help_total line one\nline \\two`+"\n") {
		t.Fatalf("HELP not escaped:\n%s", sb.String())
	}
}

func TestNewSetRegistersAllFamilies(t *testing.T) {
	set := NewSet()
	var sb strings.Builder
	if err := set.Registry.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, fam := range []string{
		"subzero_queries_total",
		"subzero_query_duration_seconds",
		"subzero_query_steps_total",
		"subzero_query_step_duration_seconds",
		"subzero_query_cells_total",
		"subzero_query_region_span_cells",
		"subzero_query_fallbacks_total",
		"subzero_query_operator_path_total",
		"subzero_ingest_enqueue_stall_seconds",
		"subzero_ingest_flush_seconds",
		"subzero_ingest_batches_total",
		"subzero_ingest_pairs_total",
		"subzero_ingest_queue_depth",
		"subzero_ingest_shard_busy_seconds_total",
		"subzero_ingest_shard_pairs_total",
		"subzero_kvstore_ops_total",
		"subzero_kvstore_keys_total",
		"subzero_kvstore_bytes_total",
		"subzero_kvstore_get_batch_seconds",
		"subzero_kvstore_put_batch_seconds",
		"subzero_http_requests_total",
		"subzero_http_request_duration_seconds",
		"subzero_http_in_flight",
		"subzero_http_shed_total",
		"subzero_http_cancelled_total",
	} {
		if !strings.Contains(out, "# TYPE "+fam+" ") {
			t.Errorf("family %s not registered", fam)
		}
	}
}
