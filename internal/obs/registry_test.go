package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf)$`)

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("subzero_test_ops_total", "Operations performed.", Raw)
	c.Add(7)
	g := r.NewGauge("subzero_test_depth", "Queue depth.")
	g.Set(3)
	h := r.NewHistogram("subzero_test_latency_seconds", "Latency.", Nanos)
	h.Observe(1500) // 1.5µs -> bucket le 2048ns = 2.048e-06s
	cv := r.NewCounterVec("subzero_test_hits_total", "Hits by kind.", Raw, "kind")
	cv.With1("alpha").Add(2)
	cv.With1("beta").Inc()

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP subzero_test_ops_total Operations performed.\n",
		"# TYPE subzero_test_ops_total counter\n",
		"subzero_test_ops_total 7\n",
		"# TYPE subzero_test_depth gauge\n",
		"subzero_test_depth 3\n",
		"# TYPE subzero_test_latency_seconds histogram\n",
		"subzero_test_latency_seconds_count 1\n",
		"subzero_test_latency_seconds_sum 1.5e-06\n",
		`subzero_test_hits_total{kind="alpha"} 2` + "\n",
		`subzero_test_hits_total{kind="beta"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// Families must be sorted by name and preceded by HELP then TYPE.
	var lastFamily string
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	helpSeen := map[string]bool{}
	typeSeen := map[string]bool{}
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			if name < lastFamily {
				t.Errorf("family %s out of order after %s", name, lastFamily)
			}
			lastFamily = name
			helpSeen[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			name := strings.Fields(line)[2]
			if !helpSeen[name] {
				t.Errorf("TYPE before HELP for %s", name)
			}
			typeSeen[name] = true
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("unparsable sample line %q", line)
				continue
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
			if !typeSeen[base] && !typeSeen[m[1]] {
				t.Errorf("sample %q has no TYPE line", line)
			}
		}
	}
}

func TestHistogramExpositionCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "h", Nanos)
	for _, v := range []int64{1, 2, 3, 1000, 1 << 50} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	var infCount, total int64
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			if strings.HasPrefix(line, "lat_seconds_count ") {
				total, _ = strconv.ParseInt(strings.TrimPrefix(line, "lat_seconds_count "), 10, 64)
			}
			continue
		}
		_, val, ok := strings.Cut(line, "} ")
		if !ok {
			t.Fatalf("malformed bucket line %q", line)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Fatalf("bucket value %q: %v", val, err)
		}
		if n < prev {
			t.Errorf("bucket counts not cumulative: %d after %d in %q", n, prev, line)
		}
		prev = n
		if strings.Contains(line, `le="+Inf"`) {
			infCount = n
		}
	}
	if infCount != 5 || total != 5 {
		t.Errorf("+Inf bucket %d, count %d, want both 5", infCount, total)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("esc_total", "h", Raw, "endpoint")
	cv.With1("GET /v1/\"weird\"\npath\\x").Inc()
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{endpoint="GET /v1/\"weird\"\npath\\x"} 1`
	if !strings.Contains(sb.String(), want+"\n") {
		t.Fatalf("escaped sample missing; got:\n%s", sb.String())
	}
	// The escaped line must still parse as one sample.
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i < 0 {
			t.Errorf("sample line %q has no value separator", line)
		} else if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Errorf("sample value in %q does not parse: %v", line, err)
		}
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("help_total", "line one\nline \\two", Raw)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# HELP help_total line one\nline \\two`+"\n") {
		t.Fatalf("HELP not escaped:\n%s", sb.String())
	}
}

func TestNewSetRegistersAllFamilies(t *testing.T) {
	set := NewSet()
	var sb strings.Builder
	if err := set.Registry.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, fam := range []string{
		"subzero_queries_total",
		"subzero_query_duration_seconds",
		"subzero_query_steps_total",
		"subzero_query_step_duration_seconds",
		"subzero_query_cells_total",
		"subzero_query_region_span_cells",
		"subzero_query_fallbacks_total",
		"subzero_query_operator_path_total",
		"subzero_ingest_enqueue_stall_seconds",
		"subzero_ingest_flush_seconds",
		"subzero_ingest_batches_total",
		"subzero_ingest_pairs_total",
		"subzero_ingest_queue_depth",
		"subzero_ingest_shard_busy_seconds_total",
		"subzero_ingest_shard_pairs_total",
		"subzero_kvstore_ops_total",
		"subzero_kvstore_keys_total",
		"subzero_kvstore_bytes_total",
		"subzero_kvstore_get_batch_seconds",
		"subzero_kvstore_put_batch_seconds",
		"subzero_http_requests_total",
		"subzero_http_request_duration_seconds",
		"subzero_http_in_flight",
		"subzero_http_shed_total",
		"subzero_http_cancelled_total",
	} {
		if !strings.Contains(out, "# TYPE "+fam+" ") {
			t.Errorf("family %s not registered", fam)
		}
	}
}

func TestWriteOpenMetricsExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("x_seconds", "X.", Nanos)
	h.Observe(100)
	h.SetExemplar(100, "4bf92f3577b34da6a3ce929d0e0e4736")

	var prom, om strings.Builder
	if err := r.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}

	if strings.Contains(prom.String(), "trace_id") {
		t.Fatal("WriteProm must not emit exemplars (0.0.4 parsers choke)")
	}
	if strings.Contains(prom.String(), "# EOF") {
		t.Fatal("WriteProm must not emit the OpenMetrics terminator")
	}
	want := `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 1e-07`
	if !strings.Contains(om.String(), want) {
		t.Fatalf("WriteOpenMetrics missing exemplar %q in:\n%s", want, om.String())
	}
	if !strings.HasSuffix(om.String(), "# EOF\n") {
		t.Fatal("WriteOpenMetrics must end with # EOF")
	}
}

func TestSetExemplarEmptyTraceIgnored(t *testing.T) {
	var h Histogram
	h.SetExemplar(5, "")
	for i := 0; i < NumBuckets; i++ {
		if h.Exemplar(i) != nil {
			t.Fatal("empty trace ID must not create an exemplar")
		}
	}
	if h.Exemplar(-1) != nil || h.Exemplar(NumBuckets) != nil {
		t.Fatal("out-of-range Exemplar must return nil")
	}
}

func TestSpanClassesComplete(t *testing.T) {
	classes := SpanClasses()
	seen := map[string]bool{}
	for _, c := range classes {
		if seen[c] {
			t.Fatalf("duplicate span class %q", c)
		}
		seen[c] = true
	}
	for _, c := range []string{SpanProbe, SpanStore, SpanReexec, SpanHTTP,
		SpanQuery, SpanExecute, SpanNode, SpanKVProbe, SpanIngestEnqueue,
		SpanIngestDrain} {
		if !seen[c] {
			t.Fatalf("SpanClasses missing %q", c)
		}
	}
}

func TestAttachExemplar(t *testing.T) {
	set := NewSet()
	set.Query.AttachExemplar(0, 100*time.Nanosecond, "abc123")
	found := false
	for i := 0; i < NumBuckets; i++ {
		if e := set.Query.Latency[0].Exemplar(i); e != nil {
			found = true
			if e.TraceID != "abc123" {
				t.Fatalf("exemplar trace = %q", e.TraceID)
			}
		}
	}
	if !found {
		t.Fatal("AttachExemplar stored nothing")
	}
	set.Query.AttachExemplar(1, time.Millisecond, "") // no-op
	for i := 0; i < NumBuckets; i++ {
		if set.Query.Latency[1].Exemplar(i) != nil {
			t.Fatal("empty trace ID attached an exemplar")
		}
	}
}
