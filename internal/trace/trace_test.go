package trace

import (
	"context"
	"testing"
	"time"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{Sample: 1})
	sp := tr.StartRequest("root", "")
	h := sp.Traceparent()
	tid, sid, flags, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected own output", h)
	}
	if tid.String() != sp.TraceIDString() {
		t.Fatalf("trace ID mismatch: %s vs %s", tid, sp.TraceIDString())
	}
	if sid != sp.ID() {
		t.Fatalf("span ID mismatch: %s vs %s", sid, sp.ID())
	}
	if flags&FlagSampled == 0 {
		t.Fatal("sampled flag not set")
	}
	sp.End()
}

func TestParseTraceparentRejects(t *testing.T) {
	cases := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // too short
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // version ff
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7-01",  // bad dash
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",  // bad hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", // trailing junk on v00
	}
	for _, c := range cases {
		if _, _, _, ok := ParseTraceparent(c); ok {
			t.Errorf("ParseTraceparent(%q) accepted invalid header", c)
		}
	}
	// A future version may carry extra dash-separated fields.
	future := "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"
	if _, _, _, ok := ParseTraceparent(future); !ok {
		t.Errorf("ParseTraceparent(%q) rejected future-version header", future)
	}
}

func TestStartRequestPropagatesTraceparent(t *testing.T) {
	tr := New(Config{Sample: 0}) // only the forced flag can sample
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sp := tr.StartRequest("root", h)
	if sp == nil {
		t.Fatal("sampled flag on incoming traceparent must force sampling")
	}
	if got := sp.TraceIDString(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID not propagated: %s", got)
	}
	if got := sp.ParentID().String(); got != "00f067aa0ba902b7" {
		t.Fatalf("parent span not propagated: %s", got)
	}
	sp.End()
	tp, _ := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	tr2 := tr.Get(tp)
	if tr2 == nil {
		t.Fatal("trace not retained")
	}
	if !tr2.External {
		t.Fatal("trace with remote parent must be marked external")
	}
}

func TestStartRequestUnsampledHeader(t *testing.T) {
	tr := New(Config{Sample: 0})
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"
	if sp := tr.StartRequest("root", h); sp != nil {
		t.Fatal("unsampled flag with Sample=0 must not sample")
	}
}

func TestSpanTreeRetention(t *testing.T) {
	tr := New(Config{Sample: 1})
	root := tr.StartRequest("GET /v1/query", "")
	root.SetAttr("route", "/v1/query")
	q := root.Child("query backward", "query")
	q.SetAttr("run", "genomics-run001")
	q.SetAttr("direction", "backward")
	q.SetAttrInt("cells", 3)
	probe := q.Child("kvstore.GetBatch", "kvstore-probe")
	probe.SetAttrInt("keys", 42)
	probe.End()
	q.End()
	root.End()

	tid, _ := ParseTraceID(root.TraceIDString())
	got := tr.Get(tid)
	if got == nil {
		t.Fatal("trace not retained")
	}
	if len(got.Spans) != 3 {
		t.Fatalf("span count = %d, want 3", len(got.Spans))
	}
	if got.Run != "genomics-run001" || got.Direction != "backward" {
		t.Fatalf("run/direction not extracted: %q %q", got.Run, got.Direction)
	}
	byID := map[SpanID]*Span{}
	for _, sp := range got.Spans {
		byID[sp.ID()] = sp
	}
	pr := byID[probe.ID()]
	if pr == nil || pr.ParentID() != q.ID() {
		t.Fatal("probe span parentage broken")
	}
	if byID[q.ID()].ParentID() != root.ID() {
		t.Fatal("query span parentage broken")
	}
	if !byID[root.ID()].ParentID().IsZero() {
		t.Fatal("local root must have zero parent")
	}
	if pr.Class() != "kvstore-probe" {
		t.Fatalf("probe class = %q", pr.Class())
	}
	var keys int64 = -1
	for _, a := range pr.Attrs() {
		if a.Key == "keys" && a.IsInt {
			keys = a.Int
		}
	}
	if keys != 42 {
		t.Fatalf("keys attr = %d, want 42", keys)
	}
}

func TestSlowTraceRouting(t *testing.T) {
	tr := New(Config{Sample: 1, Slow: time.Hour})
	fast := tr.StartRequest("fast", "")
	fast.End()
	slow := tr.StartRequest("slow", "")
	slow.MarkSlow()
	slow.End()

	st := tr.Snapshot()
	if st.Retained != 1 || st.Slow != 1 {
		t.Fatalf("retained=%d slow=%d, want 1/1", st.Retained, st.Slow)
	}
	slowOnly := tr.List(Filter{SlowOnly: true})
	if len(slowOnly) != 1 || slowOnly[0].ID.String() != slow.TraceIDString() {
		t.Fatalf("SlowOnly filter returned %d traces", len(slowOnly))
	}
	all := tr.List(Filter{})
	if len(all) != 2 {
		t.Fatalf("List returned %d traces, want 2", len(all))
	}
}

func TestSlowByDuration(t *testing.T) {
	tr := New(Config{Sample: 1, Slow: time.Nanosecond})
	sp := tr.StartRequest("slow", "")
	time.Sleep(time.Millisecond)
	sp.End()
	if st := tr.Snapshot(); st.Slow != 1 {
		t.Fatalf("duration rule did not mark trace slow: %+v", st)
	}
}

func TestListFilters(t *testing.T) {
	tr := New(Config{Sample: 1})
	for i, run := range []string{"a-run001", "b-run001", "a-run001"} {
		root := tr.StartRequest("req", "")
		q := root.Child("query", "query")
		q.SetAttr("run", run)
		if i == 1 {
			q.SetAttr("direction", "forward")
		} else {
			q.SetAttr("direction", "backward")
		}
		q.End()
		root.End()
	}
	if got := len(tr.List(Filter{Run: "a-run001"})); got != 2 {
		t.Fatalf("Run filter: %d, want 2", got)
	}
	if got := len(tr.List(Filter{Direction: "forward"})); got != 1 {
		t.Fatalf("Direction filter: %d, want 1", got)
	}
	if got := len(tr.List(Filter{Limit: 1})); got != 1 {
		t.Fatalf("Limit: %d, want 1", got)
	}
	if got := len(tr.List(Filter{MinDuration: time.Hour})); got != 0 {
		t.Fatalf("MinDuration: %d, want 0", got)
	}
}

func TestGetMergesSharedTraceID(t *testing.T) {
	tr := New(Config{Sample: 1})
	// Two requests under one client-supplied traceparent, as the e2e
	// execute+query flow produces.
	const h = "00-aaaabbbbccccddddeeeeffff00001111-00f067aa0ba902b7-01"
	first := tr.StartRequest("POST /v1/execute", h)
	c1 := first.Child("execute wf", "execute")
	c1.SetAttr("run", "wf-run001")
	c1.End()
	first.End()
	second := tr.StartRequest("POST /v1/query", h)
	c2 := second.Child("query backward", "query")
	c2.SetAttr("direction", "backward")
	c2.End()
	second.End()

	tid, _ := ParseTraceID("aaaabbbbccccddddeeeeffff00001111")
	merged := tr.Get(tid)
	if merged == nil {
		t.Fatal("merged trace missing")
	}
	if len(merged.Spans) != 4 {
		t.Fatalf("merged spans = %d, want 4", len(merged.Spans))
	}
	if merged.Run != "wf-run001" || merged.Direction != "backward" {
		t.Fatalf("merged run/direction: %q %q", merged.Run, merged.Direction)
	}
}

func TestMaxSpansTruncation(t *testing.T) {
	tr := New(Config{Sample: 1, MaxSpans: 4})
	root := tr.StartRequest("root", "")
	for i := 0; i < 10; i++ {
		root.Child("c", "probe").End()
	}
	root.End()
	tid, _ := ParseTraceID(root.TraceIDString())
	got := tr.Get(tid)
	if got == nil {
		t.Fatal("trace missing")
	}
	if len(got.Spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(got.Spans))
	}
	if got.Truncated != 7 { // 10 children + root = 11 ended, 4 kept
		t.Fatalf("truncated = %d, want 7", got.Truncated)
	}
}

func TestLateSpanEnd(t *testing.T) {
	tr := New(Config{Sample: 1})
	root := tr.StartRequest("root", "")
	straggler := root.Child("late", "probe")
	root.End()
	straggler.End() // after finalize: must be dropped, not corrupt the trace
	if st := tr.Snapshot(); st.Late != 1 {
		t.Fatalf("late = %d, want 1", st.Late)
	}
	tid, _ := ParseTraceID(root.TraceIDString())
	if got := tr.Get(tid); len(got.Spans) != 1 {
		t.Fatalf("late span leaked into trace: %d spans", len(got.Spans))
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New(Config{Sample: 1})
	root := tr.StartRequest("root", "")
	root.End()
	root.End()
	if st := tr.Snapshot(); st.Retained != 1 {
		t.Fatalf("double End retained %d traces", st.Retained)
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRequest("root", "")
	if sp != nil {
		t.Fatal("nil tracer must not sample")
	}
	// Exercise the whole nil-span surface.
	sp.SetAttr("k", "v")
	sp.SetAttrInt("k", 1)
	sp.SetClass("probe")
	sp.MarkSlow()
	child := sp.Child("c", "probe")
	if child != nil {
		t.Fatal("nil span must produce nil children")
	}
	child.End()
	sp.End()
	if sp.TraceIDString() != "" || sp.Traceparent() != "" {
		t.Fatal("nil span must render empty IDs")
	}
	if tr.Get(TraceID{1}) != nil || tr.List(Filter{}) != nil {
		t.Fatal("nil tracer must return nothing")
	}
	ctx := ContextWithSpan(context.Background(), nil)
	if FromContext(ctx) != nil {
		t.Fatal("nil span must not be stored in context")
	}
}

// TestOffPathAllocFree pins the sampled-off hot path at zero allocations:
// unsampled StartRequest, context plumbing, and every nil-span method.
func TestOffPathAllocFree(t *testing.T) {
	tr := New(Config{Sample: 0})
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartRequest("GET /v1/query", "")
		ctx2 := ContextWithSpan(ctx, sp)
		cur := FromContext(ctx2)
		child := cur.Child("query backward", "query")
		child.SetAttr("run", "r")
		child.SetAttrInt("cells", 3)
		child.MarkSlow()
		child.End()
		sp.End()
		_ = sp.TraceIDString()
	})
	if allocs != 0 {
		t.Fatalf("sampled-off path allocates %.1f per op, want 0", allocs)
	}
}

func TestItoa(t *testing.T) {
	for _, c := range []struct {
		v    int64
		want string
	}{{0, "0"}, {7, "7"}, {-7, "-7"}, {1234567890, "1234567890"}} {
		if got := itoa(c.v); got != c.want {
			t.Errorf("itoa(%d) = %q, want %q", c.v, got, c.want)
		}
	}
	if got := (Attr{Key: "k", Int: 42, IsInt: true}).Value(); got != "42" {
		t.Errorf("Attr.Value int form = %q", got)
	}
	if got := (Attr{Key: "k", Str: "s"}).Value(); got != "s" {
		t.Errorf("Attr.Value str form = %q", got)
	}
}

func TestSamplingProbability(t *testing.T) {
	tr := New(Config{Sample: 0.5})
	kept := 0
	for i := 0; i < 2000; i++ {
		if sp := tr.StartRequest("r", ""); sp != nil {
			kept++
			sp.End()
		}
	}
	if kept < 800 || kept > 1200 {
		t.Fatalf("Sample=0.5 kept %d/2000, far from half", kept)
	}
}
