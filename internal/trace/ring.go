package trace

import "sync/atomic"

// ring is a bounded lock-free retention ring of completed traces. Writers
// claim a slot with a single atomic add and publish the immutable *Trace
// with an atomic store; readers snapshot with atomic loads. A reader can
// observe a slot mid-overwrite only as either the old or the new pointer —
// never a torn tree — because traces are frozen before they are stored.
type ring struct {
	slots []atomic.Pointer[Trace]
	seq   atomic.Uint64
}

func newRing(capacity int) *ring {
	return &ring{slots: make([]atomic.Pointer[Trace], capacity)}
}

// put publishes a completed trace, evicting the oldest entry once full.
func (r *ring) put(tr *Trace) {
	i := r.seq.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(tr)
}

// snapshot copies the current contents, newest first. The result length
// is bounded by the ring capacity.
func (r *ring) snapshot() []*Trace {
	n := uint64(len(r.slots))
	seq := r.seq.Load()
	if seq > n {
		seq = n
	}
	out := make([]*Trace, 0, seq)
	// Walk backwards from the most recently claimed slot. Concurrent
	// writers may have already overwritten "older" slots with newer
	// traces; that only makes the snapshot fresher, never inconsistent.
	head := r.seq.Load()
	for k := uint64(0); k < n; k++ {
		idx := (head + n - 1 - k) % n
		if tr := r.slots[idx].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// len reports how many slots are populated.
func (r *ring) len() int {
	n := 0
	for i := range r.slots {
		if r.slots[i].Load() != nil {
			n++
		}
	}
	return n
}
