package trace

import "context"

// ctxKey is the private context key for the current span.
type ctxKey struct{}

// ContextWithSpan returns a context carrying sp as the current span. A
// nil span returns ctx unchanged, so the sampled-off path threads
// contexts without allocating.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the current span, or nil when the request is not
// sampled. The nil result is safe to use directly: all Span methods are
// nil-receiver safe.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
