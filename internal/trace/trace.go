// Package trace is SubZero's stdlib-only request tracer: real span trees
// per request — trace/span IDs, parent links, start/duration, and typed
// attributes — threaded through every layer the obs counters touch (HTTP
// handler, query executor steps, kvstore probes, ingest barriers).
//
// Design constraints, in priority order:
//
//   - The sampled-off path is allocation-free: every *Span method is
//     nil-receiver safe, FromContext on a span-less context allocates
//     nothing, and an unsampled StartRequest returns nil without touching
//     the heap (pinned by TestOffPathAllocFree).
//   - Completed traces are immutable: a *Trace is built once, after its
//     root span ends, and published to the retention rings through atomic
//     pointers — readers can never observe a half-written tree.
//   - Retention is bounded: a lock-free ring for completed traces plus a
//     separate always-keep ring for slow traces, so a burst of fast
//     requests cannot evict the evidence for the one that dragged.
//
// Interop follows W3C Trace Context: StartRequest accepts an incoming
// traceparent header (propagating the caller's trace ID and parent span)
// and Span.Traceparent renders the outgoing form, so scatter-gather
// deployments stitch one tree across nodes.
package trace

import (
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the 16-byte W3C trace identifier.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is the 8-byte W3C span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses a 32-hex-digit trace ID (the /v1/traces/{id} path
// form). The zero ID is rejected.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, !id.IsZero()
}

// Defaults for Config fields left zero.
const (
	DefaultCapacity     = 256
	DefaultSlowCapacity = 64
	DefaultMaxSpans     = 512
)

// Config assembles a Tracer.
type Config struct {
	// Sample is the head-based sampling probability in [0, 1]. It is
	// applied per request at StartRequest; a request carrying a
	// traceparent with the sampled flag set is always traced regardless.
	// Note the zero value disables sampling — servers default to 1.0.
	Sample float64
	// Slow marks a completed trace slow (routing it to the always-keep
	// ring) when its root span lasts at least this long. 0 disables the
	// duration rule; MarkSlow still applies.
	Slow time.Duration
	// Capacity bounds the completed-trace ring (default DefaultCapacity).
	Capacity int
	// SlowCapacity bounds the always-keep slow ring (default
	// DefaultSlowCapacity). Slow traces are only evicted by newer slow
	// traces.
	SlowCapacity int
	// MaxSpans caps the spans retained per trace (default
	// DefaultMaxSpans); further spans are counted as truncated.
	MaxSpans int
}

// Stats is a point-in-time snapshot of the tracer's own counters.
type Stats struct {
	Started   int64 // StartRequest calls
	Sampled   int64 // requests that got a real span tree
	Retained  int64 // completed traces pushed to the normal ring
	Slow      int64 // completed traces pushed to the slow ring
	Truncated int64 // spans dropped by the per-trace cap
	Late      int64 // spans that ended after their trace finalized
}

// Tracer samples requests, assembles span trees, and retains completed
// traces. Safe for concurrent use.
type Tracer struct {
	sample   float64
	slow     time.Duration
	maxSpans int

	ring     *ring
	slowRing *ring

	started   atomic.Int64
	sampled   atomic.Int64
	retained  atomic.Int64
	slowKept  atomic.Int64
	truncated atomic.Int64
	late      atomic.Int64
}

// New builds a Tracer. Zero Config fields select the documented defaults
// (except Sample, whose zero value genuinely means "never sample").
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.SlowCapacity <= 0 {
		cfg.SlowCapacity = DefaultSlowCapacity
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefaultMaxSpans
	}
	return &Tracer{
		sample:   cfg.Sample,
		slow:     cfg.Slow,
		maxSpans: cfg.MaxSpans,
		ring:     newRing(cfg.Capacity),
		slowRing: newRing(cfg.SlowCapacity),
	}
}

// SlowThreshold returns the configured slow-trace duration rule.
func (t *Tracer) SlowThreshold() time.Duration { return t.slow }

// Snapshot returns the tracer's own counters.
func (t *Tracer) Snapshot() Stats {
	return Stats{
		Started:   t.started.Load(),
		Sampled:   t.sampled.Load(),
		Retained:  t.retained.Load(),
		Slow:      t.slowKept.Load(),
		Truncated: t.truncated.Load(),
		Late:      t.late.Load(),
	}
}

// StartRequest begins the root span of one request. traceparent is the
// raw incoming header ("" when absent): a valid header propagates the
// caller's trace ID and parent span, and its sampled flag forces tracing;
// otherwise the head-based sampling probability decides. Returns nil when
// the request is not sampled — all Span methods are nil-safe, so callers
// thread the result unconditionally. A nil *Tracer never samples.
func (t *Tracer) StartRequest(name, traceparent string) *Span {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	var tid TraceID
	var parent SpanID
	forced := false
	if traceparent != "" {
		if ptid, pspan, flags, ok := ParseTraceparent(traceparent); ok {
			tid, parent = ptid, pspan
			forced = flags&FlagSampled != 0
		}
	}
	if !forced && !t.sampleDecision() {
		return nil
	}
	t.sampled.Add(1)
	if tid.IsZero() {
		tid = t.newTraceID()
	}
	td := &traceData{tracer: t, id: tid, external: !parent.IsZero()}
	sp := &Span{
		td:     td,
		id:     t.newSpanID(),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
	td.root = sp
	return sp
}

// sampleDecision applies the head-based probability. Sample >= 1 keeps
// everything without consuming randomness.
func (t *Tracer) sampleDecision() bool {
	if t.sample >= 1 {
		return true
	}
	if t.sample <= 0 {
		return false
	}
	return rand.Float64() < t.sample
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		hi, lo := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(hi >> (8 * i))
			id[8+i] = byte(lo >> (8 * i))
		}
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		v := rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(v >> (8 * i))
		}
	}
	return id
}

// retain routes a finalized trace to its ring.
func (t *Tracer) retain(tr *Trace) {
	if tr.Slow {
		t.slowKept.Add(1)
		t.slowRing.put(tr)
		return
	}
	t.retained.Add(1)
	t.ring.put(tr)
}

// traceData is the mutable under-construction state shared by a request's
// spans. It dies when the root span ends and the immutable Trace is
// published.
type traceData struct {
	tracer   *Tracer
	id       TraceID
	root     *Span
	external bool // root's parent span came from a remote caller

	mu        sync.Mutex
	spans     []*Span // ended spans, in end order
	truncated int
	slow      bool
	done      bool
}

// Attr is one typed span attribute.
type Attr struct {
	Key string
	Str string
	Int int64
	// IsInt distinguishes the integer form (Int) from the string form
	// (Str).
	IsInt bool
}

// Value renders the attribute value as a string.
func (a Attr) Value() string {
	if a.IsInt {
		return itoa(a.Int)
	}
	return a.Str
}

// itoa is strconv.FormatInt(v, 10) without the import weight in callers.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Span is one node of a request's span tree. A span is owned by the
// goroutine that created it until End; all methods are nil-receiver safe,
// so unsampled requests thread nil spans for free.
type Span struct {
	td       *traceData
	id       SpanID
	parent   SpanID
	name     string
	class    string
	start    time.Time
	duration time.Duration
	attrs    []Attr
	ended    bool
}

// Child starts a child span. class must be one of the obs.SpanClass
// families (see CONTRIBUTING). Returns nil on a nil receiver.
func (s *Span) Child(name, class string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		td:     s.td,
		id:     s.td.tracer.newSpanID(),
		parent: s.id,
		name:   name,
		class:  class,
		start:  time.Now(),
	}
}

// SetClass sets the span's class after creation (used when the class is
// only known once an access path is chosen).
func (s *Span) SetClass(class string) {
	if s != nil {
		s.class = class
	}
}

// SetAttr attaches a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Str: value})
	}
}

// SetAttrInt attaches an integer attribute.
func (s *Span) SetAttrInt(key string, value int64) {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Int: value, IsInt: true})
	}
}

// MarkSlow flags the whole trace slow regardless of root duration, so it
// lands in the always-keep ring. The serving layer calls it when a query
// crosses the -slow-query threshold.
func (s *Span) MarkSlow() {
	if s == nil {
		return
	}
	td := s.td
	td.mu.Lock()
	td.slow = true
	td.mu.Unlock()
}

// Sampled reports whether the span is real (non-nil).
func (s *Span) Sampled() bool { return s != nil }

// TraceIDString returns the trace ID as hex, or "" on a nil span — the
// form exemplars and log records carry.
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	return s.td.id.String()
}

// Traceparent renders the outgoing W3C header for propagating this span
// as the parent of downstream work ("" on a nil span).
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.td.id, s.id, FlagSampled)
}

// ID returns the span's ID (zero on nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// ParentID returns the parent span's ID (zero for a local root).
func (s *Span) ParentID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.parent
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Class returns the span's obs.SpanClass family.
func (s *Span) Class() string {
	if s == nil {
		return ""
	}
	return s.class
}

// StartTime returns when the span started.
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the span's duration (valid after End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.duration
}

// Attrs returns the span's attributes. The slice must not be mutated.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// End completes the span, recording its duration and appending it to the
// trace. Ending the root span finalizes the trace: an immutable *Trace is
// built and published to the retention rings. End is idempotent and
// nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	td := s.td
	td.mu.Lock()
	if s.ended {
		td.mu.Unlock()
		return
	}
	s.ended = true
	s.duration = time.Since(s.start)
	switch {
	case td.done:
		td.tracer.late.Add(1)
	case len(td.spans) < td.tracer.maxSpans:
		td.spans = append(td.spans, s)
	default:
		td.truncated++
	}
	var tr *Trace
	if s == td.root && !td.done {
		tr = td.finalizeLocked()
	}
	td.mu.Unlock()
	if tr != nil {
		td.tracer.retain(tr)
	}
}

// Trace is one completed, immutable span tree. Published through atomic
// pointers after construction; never mutated afterwards.
type Trace struct {
	ID        TraceID
	Root      SpanID
	External  bool // the root's parent span belongs to a remote caller
	Start     time.Time
	Duration  time.Duration
	Slow      bool
	Run       string // first "run" attribute seen across spans
	Direction string // first "direction" attribute seen across spans
	Truncated int
	Spans     []*Span // ended spans; fields are frozen
}

// finalizeLocked builds the immutable trace. Caller holds td.mu.
func (td *traceData) finalizeLocked() *Trace {
	td.done = true
	root := td.root
	tr := &Trace{
		ID:        td.id,
		Root:      root.id,
		External:  td.external,
		Start:     root.start,
		Duration:  root.duration,
		Slow:      td.slow,
		Truncated: td.truncated,
		Spans:     td.spans,
	}
	if td.truncated > 0 {
		td.tracer.truncated.Add(int64(td.truncated))
	}
	if !tr.Slow && td.tracer.slow > 0 && root.duration >= td.tracer.slow {
		tr.Slow = true
	}
	for _, sp := range tr.Spans {
		for _, a := range sp.attrs {
			switch {
			case tr.Run == "" && a.Key == "run":
				tr.Run = a.Value()
			case tr.Direction == "" && a.Key == "direction":
				tr.Direction = a.Value()
			}
		}
		if tr.Run != "" && tr.Direction != "" {
			break
		}
	}
	return tr
}

// Filter selects traces in List.
type Filter struct {
	Run         string        // exact run ID ("" matches all)
	Direction   string        // "backward" or "forward" ("" matches all)
	MinDuration time.Duration // minimum root duration
	SlowOnly    bool          // only slow traces
	Limit       int           // max results (<= 0 selects 100)
}

// match reports whether the trace passes the filter.
func (f Filter) match(tr *Trace) bool {
	if f.Run != "" && tr.Run != f.Run {
		return false
	}
	if f.Direction != "" && tr.Direction != f.Direction {
		return false
	}
	if tr.Duration < f.MinDuration {
		return false
	}
	if f.SlowOnly && !tr.Slow {
		return false
	}
	return true
}

// List returns retained traces passing the filter, newest first. Each
// retained entry is one request; requests sharing a propagated trace ID
// appear as separate entries (Get merges them).
func (t *Tracer) List(f Filter) []*Trace {
	if t == nil {
		return nil
	}
	limit := f.Limit
	if limit <= 0 {
		limit = 100
	}
	all := append(t.slowRing.snapshot(), t.ring.snapshot()...)
	// Newest first across both rings.
	sortTracesByStart(all)
	out := make([]*Trace, 0, min(limit, len(all)))
	for _, tr := range all {
		if !f.match(tr) {
			continue
		}
		out = append(out, tr)
		if len(out) == limit {
			break
		}
	}
	return out
}

// sortTracesByStart orders newest first (insertion sort: ring snapshots
// are already mostly ordered and small).
func sortTracesByStart(ts []*Trace) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Start.After(ts[j-1].Start); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// Get returns the retained trace with the given ID, merging every
// retained entry that shares it (a client propagating one traceparent
// across an execute and a query yields one stitched tree). Returns nil
// when no entry matches.
func (t *Tracer) Get(id TraceID) *Trace {
	if t == nil || id.IsZero() {
		return nil
	}
	var entries []*Trace
	for _, tr := range t.slowRing.snapshot() {
		if tr.ID == id {
			entries = append(entries, tr)
		}
	}
	for _, tr := range t.ring.snapshot() {
		if tr.ID == id {
			entries = append(entries, tr)
		}
	}
	switch len(entries) {
	case 0:
		return nil
	case 1:
		return entries[0]
	}
	// Merge: order entries oldest first, concatenate spans, widen the
	// window, keep the earliest root.
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].Start.Before(entries[j-1].Start); j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	first := entries[0]
	merged := &Trace{
		ID:        id,
		Root:      first.Root,
		External:  first.External,
		Start:     first.Start,
		Run:       first.Run,
		Direction: first.Direction,
	}
	end := first.Start
	for _, e := range entries {
		merged.Spans = append(merged.Spans, e.Spans...)
		merged.Truncated += e.Truncated
		merged.Slow = merged.Slow || e.Slow
		if merged.Run == "" {
			merged.Run = e.Run
		}
		if merged.Direction == "" {
			merged.Direction = e.Direction
		}
		if stop := e.Start.Add(e.Duration); stop.After(end) {
			end = stop
		}
	}
	merged.Duration = end.Sub(merged.Start)
	return merged
}
