package trace

import "encoding/hex"

// Traceparent is the W3C Trace Context header name, in the canonical
// lowercase form the spec uses.
const Traceparent = "traceparent"

// FlagSampled is the traceparent trace-flags bit indicating the caller
// sampled this request.
const FlagSampled byte = 0x01

// ParseTraceparent parses a W3C traceparent header value:
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// Per the spec, any two-digit version other than "ff" is accepted with
// version-00 semantics. Zero trace or span IDs are invalid.
func ParseTraceparent(h string) (TraceID, SpanID, byte, bool) {
	var tid TraceID
	var sid SpanID
	if len(h) < 55 {
		return tid, sid, 0, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tid, sid, 0, false
	}
	version, err := hex.DecodeString(h[0:2])
	if err != nil || version[0] == 0xff {
		return tid, sid, 0, false
	}
	// Version 00 is exactly 55 chars; future versions may append fields
	// after another dash.
	if len(h) > 55 && (version[0] == 0 || h[55] != '-') {
		return tid, sid, 0, false
	}
	if _, err := hex.Decode(tid[:], []byte(h[3:35])); err != nil {
		return TraceID{}, sid, 0, false
	}
	if _, err := hex.Decode(sid[:], []byte(h[36:52])); err != nil {
		return TraceID{}, SpanID{}, 0, false
	}
	flags, err := hex.DecodeString(h[53:55])
	if err != nil {
		return TraceID{}, SpanID{}, 0, false
	}
	if tid.IsZero() || sid.IsZero() {
		return TraceID{}, SpanID{}, 0, false
	}
	return tid, sid, flags[0], true
}

// FormatTraceparent renders a version-00 traceparent header value.
func FormatTraceparent(tid TraceID, sid SpanID, flags byte) string {
	buf := make([]byte, 0, 55)
	buf = append(buf, '0', '0', '-')
	buf = hex.AppendEncode(buf, tid[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, sid[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, []byte{flags})
	return string(buf)
}
