package trace

import (
	"sync"
	"testing"
	"time"
)

// TestRetentionStorm hammers the tracer from concurrent producers while
// readers continuously List and Get, proving under -race that:
//
//   - ring bounds hold (never more than Capacity + SlowCapacity retained),
//   - explicitly-marked slow traces survive fast-trace churn,
//   - a served trace is never half-written: the root is present, every
//     span is fully initialized, and every span's parent is another span
//     in the trace (or the trace's external/truncated parent).
//
// Slowness is marked explicitly (MarkSlow) rather than by duration so the
// test is deterministic under CI load.
func TestRetentionStorm(t *testing.T) {
	const (
		producers = 8
		perWorker = 400
		capacity  = 32
		slowCap   = 8
	)
	tr := New(Config{Sample: 1, Capacity: capacity, SlowCapacity: slowCap})

	var producerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	// Readers: validate tree integrity on everything served.
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, got := range tr.List(Filter{Limit: capacity + slowCap}) {
					checkTraceIntegrity(t, tr.Get(got.ID))
				}
			}
		}()
	}

	// Producers: bursts of fast traces with an occasional slow one.
	slowIDs := make([][]TraceID, producers)
	for p := 0; p < producers; p++ {
		producerWG.Add(1)
		go func(p int) {
			defer producerWG.Done()
			for i := 0; i < perWorker; i++ {
				root := tr.StartRequest("req", "")
				q := root.Child("query backward", "query")
				q.SetAttr("run", "storm-run001")
				q.SetAttr("direction", "backward")
				probe := q.Child("kvstore.GetBatch", "kvstore-probe")
				probe.SetAttrInt("keys", int64(i))
				probe.End()
				q.End()
				if i%100 == 99 {
					root.MarkSlow()
					id, _ := ParseTraceID(root.TraceIDString())
					slowIDs[p] = append(slowIDs[p], id)
				}
				root.End()
			}
		}(p)
	}

	// Wait for producers, then stop readers.
	done := make(chan struct{})
	go func() {
		producerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		close(stop)
		t.Fatal("storm did not finish in 60s")
	}
	close(stop)
	readerWG.Wait()

	// Ring bounds.
	if n := tr.ring.len(); n > capacity {
		t.Fatalf("normal ring holds %d > capacity %d", n, capacity)
	}
	if n := tr.slowRing.len(); n > slowCap {
		t.Fatalf("slow ring holds %d > capacity %d", n, slowCap)
	}

	// The most recent slowCap slow traces must have survived the churn of
	// thousands of fast traces. Eviction order across goroutines is not
	// deterministic, so assert the aggregate: the slow ring is full and
	// every entry is one we deliberately marked.
	marked := map[TraceID]bool{}
	for _, ids := range slowIDs {
		for _, id := range ids {
			marked[id] = true
		}
	}
	slow := tr.List(Filter{SlowOnly: true, Limit: slowCap * 2})
	if len(slow) != slowCap {
		t.Fatalf("slow ring retained %d traces, want %d", len(slow), slowCap)
	}
	for _, s := range slow {
		if !marked[s.ID] {
			t.Fatalf("slow ring holds unmarked trace %s", s.ID)
		}
		if !s.Slow {
			t.Fatalf("trace %s in slow ring not flagged slow", s.ID)
		}
	}

	st := tr.Snapshot()
	wantSampled := int64(producers * perWorker)
	if st.Sampled != wantSampled {
		t.Fatalf("sampled = %d, want %d", st.Sampled, wantSampled)
	}
	if st.Late != 0 || st.Truncated != 0 {
		t.Fatalf("unexpected late=%d truncated=%d", st.Late, st.Truncated)
	}
}

// checkTraceIntegrity asserts tr is a complete, well-formed tree.
func checkTraceIntegrity(t *testing.T, tr *Trace) {
	t.Helper()
	if tr == nil {
		return // evicted between List and Get: fine
	}
	ids := map[SpanID]bool{}
	for _, sp := range tr.Spans {
		ids[sp.ID()] = true
	}
	if !ids[tr.Root] {
		t.Fatalf("trace %s served without its root span", tr.ID)
	}
	for _, sp := range tr.Spans {
		if sp.StartTime().IsZero() || sp.ID().IsZero() {
			t.Fatalf("trace %s serves half-written span", tr.ID)
		}
		if p := sp.ParentID(); !p.IsZero() && !ids[p] && sp.ID() != tr.Root {
			// A non-root span's parent must be present unless the trace
			// is external (parent belongs to the remote caller) or
			// truncated (parent may have been dropped).
			if !tr.External && tr.Truncated == 0 {
				t.Fatalf("trace %s: span %s has missing parent %s", tr.ID, sp.ID(), p)
			}
		}
	}
}
