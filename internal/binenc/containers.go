package binenc

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Tiled container cell-set codec (v3). The cell space is cut into fixed
// tiles of TileCells indices and each non-empty tile stores its cells in
// whichever container form encodes smallest — roaring-style, but sized
// for region lineage:
//
//	array   — cell count + tile-local offsets as delta varints; wins for
//	          a few scattered cells per tile
//	runs    — run count + tile-local (gap, length) varint pairs; wins for
//	          clustered regions
//	bitmap  — 128 fixed little-endian bytes (16 uint64 words); wins for
//	          medium-density scatter, and bounds every tile at 1 bit/cell
//	full    — no payload; the tile is completely covered
//
// The layout is:
//
//	uvarint(totalCount)
//	uvarint(nTiles)            0 = sparse-direct form (below)
//	per tile: uvarint(tileGap<<2 | type) + payload
//
// The first tile's gap is its absolute tile index; later gaps are
// tile−prevTile−1, so tiles are strictly increasing by construction.
// Tiny sets (≤ SparseDirectMax cells — the singleton per-cell pairs that
// dominate many workloads) skip tiling entirely: nTiles==0 is followed by
// the cells as first+gap varints, costing no more than the v1 form.
//
// TileCells is a multiple of 64, so a tile's bit block aligns with the
// uint64 words of the query bitmaps and lookups can OR/AND whole words
// against a decoded container without materializing per-cell slices.
const (
	// TileCells is the number of cell indices covered by one tile.
	TileCells = 1024
	// TileWords is the uint64-word width of one tile's bit block.
	TileWords = TileCells / 64
	// SparseDirectMax is the largest cell count encoded in sparse-direct
	// form instead of tiles.
	SparseDirectMax = 8

	tileShift = 10
	tileMask  = TileCells - 1
)

// Container types, packed into the low two bits of each tile header.
const (
	ContainerArray  = 0
	ContainerRuns   = 1
	ContainerBitmap = 2
	ContainerFull   = 3
)

// maxTile keeps tile<<tileShift from overflowing a uint64 cell index.
const maxTile = uint64(1)<<(64-tileShift) - 1

// AppendCellSetContainers appends a sorted, deduplicated cell-index set
// in tiled container form.
func AppendCellSetContainers(dst []byte, cells []uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(cells)))
	if len(cells) == 0 {
		return dst
	}
	if len(cells) <= SparseDirectMax {
		dst = append(dst, 0) // nTiles == 0: sparse-direct form
		prev := uint64(0)
		for i, c := range cells {
			if i == 0 {
				dst = binary.AppendUvarint(dst, c)
			} else {
				dst = binary.AppendUvarint(dst, c-prev)
			}
			prev = c
		}
		return dst
	}
	nTiles := 0
	for i := 0; i < len(cells); i = tileEnd(cells, i) {
		nTiles++
	}
	dst = binary.AppendUvarint(dst, uint64(nTiles))
	prevTile := uint64(0)
	for i := 0; i < len(cells); {
		j := tileEnd(cells, i)
		seg := cells[i:j]
		tile := cells[i] >> tileShift
		gap := tile
		if i > 0 {
			gap = tile - prevTile - 1
		}
		typ := chooseContainer(seg)
		dst = binary.AppendUvarint(dst, gap<<2|uint64(typ))
		dst = appendContainer(dst, typ, tile<<tileShift, seg)
		prevTile = tile
		i = j
	}
	return dst
}

// tileEnd returns the index just past the cells sharing cells[i]'s tile.
func tileEnd(cells []uint64, i int) int {
	tile := cells[i] >> tileShift
	j := i + 1
	for j < len(cells) && cells[j]>>tileShift == tile {
		j++
	}
	return j
}

// chooseContainer picks the smallest container form for one tile's cells,
// preferring runs over array over bitmap on ties so the encoding is
// deterministic (golden bytes and rebuild determinism depend on it).
func chooseContainer(seg []uint64) byte {
	n := len(seg)
	if n == TileCells {
		return ContainerFull
	}
	base := seg[0] &^ uint64(tileMask)
	runsBytes := 0
	nRuns := 0
	prevEnd := uint64(0)
	for i := 0; i < n; {
		j := i + 1
		for j < n && seg[j] == seg[j-1]+1 {
			j++
		}
		start := seg[i] - base
		runsBytes += uvarintLen(start-prevEnd) + uvarintLen(uint64(j-i))
		prevEnd = start + uint64(j-i)
		nRuns++
		i = j
	}
	runsBytes += uvarintLen(uint64(nRuns))
	arrayBytes := uvarintLen(uint64(n))
	prev := uint64(0)
	for i, c := range seg {
		off := c - base
		if i == 0 {
			arrayBytes += uvarintLen(off)
		} else {
			arrayBytes += uvarintLen(off - prev)
		}
		prev = off
	}
	typ, best := byte(ContainerRuns), runsBytes
	if arrayBytes < best {
		typ, best = ContainerArray, arrayBytes
	}
	if TileWords*8 < best {
		typ = ContainerBitmap
	}
	return typ
}

// appendContainer appends one tile's payload in the chosen form.
func appendContainer(dst []byte, typ byte, base uint64, seg []uint64) []byte {
	switch typ {
	case ContainerFull:
		return dst
	case ContainerBitmap:
		var w [TileWords]uint64
		for _, c := range seg {
			off := c - base
			w[off/64] |= uint64(1) << (off % 64)
		}
		for _, word := range w {
			dst = binary.LittleEndian.AppendUint64(dst, word)
		}
		return dst
	case ContainerArray:
		dst = binary.AppendUvarint(dst, uint64(len(seg)))
		prev := uint64(0)
		for i, c := range seg {
			off := c - base
			if i == 0 {
				dst = binary.AppendUvarint(dst, off)
			} else {
				dst = binary.AppendUvarint(dst, off-prev)
			}
			prev = off
		}
		return dst
	default: // ContainerRuns
		nRuns := 0
		for i := 0; i < len(seg); {
			j := i + 1
			for j < len(seg) && seg[j] == seg[j-1]+1 {
				j++
			}
			nRuns++
			i = j
		}
		dst = binary.AppendUvarint(dst, uint64(nRuns))
		prevEnd := uint64(0)
		for i := 0; i < len(seg); {
			j := i + 1
			for j < len(seg) && seg[j] == seg[j-1]+1 {
				j++
			}
			start := seg[i] - base
			dst = binary.AppendUvarint(dst, start-prevEnd)
			dst = binary.AppendUvarint(dst, uint64(j-i))
			prevEnd = start + uint64(j-i)
			i = j
		}
		return dst
	}
}

// WalkContainers parses a container-form cell set without materializing
// it: sparse-direct cells stream through sparse, and each tile streams
// through container as (tileBase, type, payload offset, payload length)
// with offsets into src. Either callback may be nil (the walk still
// parses and validates). It returns the declared cell count and the
// bytes consumed.
//
// The walk validates everything a consumer relies on: strictly
// increasing cells and tiles, canonical in-tile gaps, run lengths ≥ 1,
// payloads inside the buffer, and the per-container cell counts summing
// to the declared total — so payloads it yields can later be expanded
// without re-validation.
func WalkContainers(src []byte,
	sparse func(cell uint64) bool,
	container func(tileBase uint64, typ byte, payOff, payLen int) bool,
) (count uint64, n int, err error) {
	total, read := binary.Uvarint(src)
	if read <= 0 {
		return 0, 0, fmt.Errorf("binenc: truncated container cell count")
	}
	off := read
	if total == 0 {
		return 0, off, nil
	}
	nTiles, read := binary.Uvarint(src[off:])
	if read <= 0 {
		return 0, 0, fmt.Errorf("binenc: truncated container tile count")
	}
	off += read
	if nTiles == 0 {
		if total > uint64(len(src)) { // each cell takes >=1 byte
			return 0, 0, fmt.Errorf("binenc: sparse cell count %d exceeds buffer", total)
		}
		prev := uint64(0)
		emitting := sparse != nil
		for i := uint64(0); i < total; i++ {
			d, read := binary.Uvarint(src[off:])
			if read <= 0 {
				return 0, 0, fmt.Errorf("binenc: truncated sparse cell %d/%d", i, total)
			}
			off += read
			if i == 0 {
				prev = d
			} else {
				if d == 0 {
					return 0, 0, fmt.Errorf("binenc: non-increasing sparse cell %d/%d", i, total)
				}
				prev += d
			}
			if emitting {
				emitting = sparse(prev)
			}
		}
		return total, off, nil
	}
	if nTiles > uint64(len(src)) { // each tile takes >=1 header byte
		return 0, 0, fmt.Errorf("binenc: tile count %d exceeds buffer", nTiles)
	}
	var got uint64
	tile := uint64(0)
	emitting := container != nil
	for i := uint64(0); i < nTiles; i++ {
		hdr, read := binary.Uvarint(src[off:])
		if read <= 0 {
			return 0, 0, fmt.Errorf("binenc: truncated tile header %d/%d", i, nTiles)
		}
		off += read
		typ := byte(hdr & 3)
		gap := hdr >> 2
		if i == 0 {
			tile = gap
		} else {
			tile += gap + 1
			if tile <= gap { // wrapped
				return 0, 0, fmt.Errorf("binenc: tile index overflow at tile %d/%d", i, nTiles)
			}
		}
		if tile > maxTile {
			return 0, 0, fmt.Errorf("binenc: tile index %d overflows cell space", tile)
		}
		cnt, payLen, err := parseContainerPayload(typ, src[off:])
		if err != nil {
			return 0, 0, fmt.Errorf("binenc: tile %d/%d: %w", i, nTiles, err)
		}
		got += cnt
		if emitting {
			emitting = container(tile<<tileShift, typ, off, payLen)
		}
		off += payLen
	}
	if got != total {
		return 0, 0, fmt.Errorf("binenc: container cells sum to %d, declared %d", got, total)
	}
	return total, off, nil
}

// parseContainerPayload validates one container payload and returns its
// cell count and encoded length.
func parseContainerPayload(typ byte, src []byte) (count uint64, n int, err error) {
	switch typ {
	case ContainerFull:
		return TileCells, 0, nil
	case ContainerBitmap:
		if len(src) < TileWords*8 {
			return 0, 0, fmt.Errorf("truncated bitmap container")
		}
		for i := 0; i < TileWords; i++ {
			count += uint64(bits.OnesCount64(binary.LittleEndian.Uint64(src[i*8:])))
		}
		if count == 0 {
			return 0, 0, fmt.Errorf("empty bitmap container")
		}
		return count, TileWords * 8, nil
	case ContainerArray:
		cells, read := binary.Uvarint(src)
		if read <= 0 {
			return 0, 0, fmt.Errorf("truncated array container count")
		}
		if cells == 0 || cells >= TileCells {
			return 0, 0, fmt.Errorf("array container of %d cells", cells)
		}
		off := read
		prev := uint64(0)
		for i := uint64(0); i < cells; i++ {
			d, read := binary.Uvarint(src[off:])
			if read <= 0 {
				return 0, 0, fmt.Errorf("truncated array container cell %d/%d", i, cells)
			}
			off += read
			if i == 0 {
				prev = d
			} else {
				if d == 0 {
					return 0, 0, fmt.Errorf("non-increasing array container cell %d/%d", i, cells)
				}
				prev += d
			}
			if prev >= TileCells {
				return 0, 0, fmt.Errorf("array container cell %d past tile end", prev)
			}
		}
		return cells, off, nil
	default: // ContainerRuns
		nRuns, read := binary.Uvarint(src)
		if read <= 0 {
			return 0, 0, fmt.Errorf("truncated run container count")
		}
		if nRuns == 0 || nRuns > TileCells/2 {
			return 0, 0, fmt.Errorf("run container of %d runs", nRuns)
		}
		off := read
		pos := uint64(0)
		for i := uint64(0); i < nRuns; i++ {
			gap, read := binary.Uvarint(src[off:])
			if read <= 0 {
				return 0, 0, fmt.Errorf("truncated run gap %d/%d", i, nRuns)
			}
			off += read
			length, read := binary.Uvarint(src[off:])
			if read <= 0 {
				return 0, 0, fmt.Errorf("truncated run length %d/%d", i, nRuns)
			}
			off += read
			if length == 0 {
				return 0, 0, fmt.Errorf("zero-length run %d/%d", i, nRuns)
			}
			if i > 0 && gap == 0 {
				return 0, 0, fmt.Errorf("adjacent runs %d/%d not merged", i, nRuns)
			}
			start := pos + gap
			if start >= TileCells || length > TileCells-start {
				return 0, 0, fmt.Errorf("run %d/%d past tile end", i, nRuns)
			}
			pos = start + length
			count += length
		}
		return count, off, nil
	}
}

// ExpandContainer decodes one container payload (as yielded by
// WalkContainers) into a tile's bit block — bit i set means tile-local
// cell i — and returns the cell count. The block is OR-merged, so zero
// it first when reusing.
func ExpandContainer(typ byte, pay []byte, w *[TileWords]uint64) (uint64, error) {
	switch typ {
	case ContainerFull:
		for i := range w {
			w[i] = ^uint64(0)
		}
		return TileCells, nil
	case ContainerBitmap:
		if len(pay) < TileWords*8 {
			return 0, fmt.Errorf("binenc: truncated bitmap container")
		}
		var count uint64
		for i := range w {
			w[i] |= binary.LittleEndian.Uint64(pay[i*8:])
			count += uint64(bits.OnesCount64(w[i]))
		}
		return count, nil
	case ContainerArray:
		var count uint64
		cells, read := binary.Uvarint(pay)
		if read <= 0 {
			return 0, fmt.Errorf("binenc: truncated array container count")
		}
		off := read
		prev := uint64(0)
		for i := uint64(0); i < cells; i++ {
			d, read := binary.Uvarint(pay[off:])
			if read <= 0 {
				return 0, fmt.Errorf("binenc: truncated array container cell %d/%d", i, cells)
			}
			off += read
			if i == 0 {
				prev = d
			} else {
				prev += d
			}
			if prev >= TileCells {
				return 0, fmt.Errorf("binenc: array container cell %d past tile end", prev)
			}
			w[prev/64] |= uint64(1) << (prev % 64)
			count++
		}
		return count, nil
	default: // ContainerRuns
		var count uint64
		nRuns, read := binary.Uvarint(pay)
		if read <= 0 {
			return 0, fmt.Errorf("binenc: truncated run container count")
		}
		off := read
		pos := uint64(0)
		for i := uint64(0); i < nRuns; i++ {
			gap, read := binary.Uvarint(pay[off:])
			if read <= 0 {
				return 0, fmt.Errorf("binenc: truncated run gap %d/%d", i, nRuns)
			}
			off += read
			length, read := binary.Uvarint(pay[off:])
			if read <= 0 {
				return 0, fmt.Errorf("binenc: truncated run length %d/%d", i, nRuns)
			}
			off += read
			start := pos + gap
			if start >= TileCells || length > TileCells-start {
				return 0, fmt.Errorf("binenc: run %d/%d past tile end", i, nRuns)
			}
			setLocalRun(w, start, length)
			pos = start + length
			count += length
		}
		return count, nil
	}
}

// setLocalRun sets [start, start+length) in a tile block word-parallel.
func setLocalRun(w *[TileWords]uint64, start, length uint64) {
	end := start + length // exclusive, <= TileCells
	for wi := start / 64; wi*64 < end; wi++ {
		from := start
		if ws := wi * 64; from < ws {
			from = ws
		}
		to := end
		if we := wi*64 + 64; to > we {
			to = we
		}
		if nbits := to - from; nbits == 64 {
			w[wi] = ^uint64(0)
		} else {
			w[wi] |= (uint64(1)<<nbits - 1) << (from % 64)
		}
	}
}

// DecodeContainersInto streams a container-form cell set as maximal runs
// within each tile, in ascending order, returning the bytes consumed. If
// visit returns false the remaining containers are skipped (but still
// parsed, so the consumed count stays correct).
func DecodeContainersInto(src []byte, visit func(start, length uint64) bool) (int, error) {
	emitting := true
	_, n, err := WalkContainers(src,
		func(cell uint64) bool {
			if emitting {
				emitting = visit(cell, 1)
			}
			return true
		},
		func(base uint64, typ byte, payOff, payLen int) bool {
			if !emitting {
				return true
			}
			if typ == ContainerFull {
				emitting = visit(base, TileCells)
				return true
			}
			var w [TileWords]uint64
			if _, err := ExpandContainer(typ, src[payOff:payOff+payLen], &w); err != nil {
				return true // unreachable: the walk validated the payload
			}
			emitting = emitBlockRuns(base, &w, visit)
			return true
		})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// emitBlockRuns streams the maximal set-bit runs of one tile block.
func emitBlockRuns(base uint64, w *[TileWords]uint64, visit func(start, length uint64) bool) bool {
	var runStart, runLen uint64
	for wi := 0; wi < TileWords; wi++ {
		word := w[wi]
		for word != 0 {
			cell := base + uint64(wi)*64 + uint64(bits.TrailingZeros64(word))
			switch {
			case runLen > 0 && cell == runStart+runLen:
				runLen++
			case runLen > 0:
				if !visit(runStart, runLen) {
					return false
				}
				fallthrough
			default:
				runStart, runLen = cell, 1
			}
			word &= word - 1
		}
	}
	if runLen > 0 {
		return visit(runStart, runLen)
	}
	return true
}
