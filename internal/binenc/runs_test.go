package binenc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func decodeRunsToCells(t *testing.T, src []byte) ([]uint64, int) {
	t.Helper()
	var cells []uint64
	n, err := DecodeRunsInto(src, func(start, length uint64) bool {
		for c := start; c < start+length; c++ {
			cells = append(cells, c)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return cells, n
}

func TestCellSetRunsRoundTrip(t *testing.T) {
	cases := [][]uint64{
		{},
		{0},
		{5},
		{1, 2, 3, 4, 5},
		{0, 1, 2, 10, 11, 40},
		{7, 9, 11},
		{1 << 40, 1<<40 + 1, 1 << 50},
	}
	for _, cells := range cases {
		enc := AppendCellSetRuns(nil, cells)
		got, n := decodeRunsToCells(t, enc)
		if n != len(enc) {
			t.Fatalf("%v: consumed %d of %d bytes", cells, n, len(enc))
		}
		if !equalCells(got, cells) {
			t.Fatalf("round trip %v -> %v", cells, got)
		}
		if want := CellSetRunsLen(cells); want != len(enc) {
			t.Fatalf("%v: CellSetRunsLen=%d, encoded %d", cells, want, len(enc))
		}
	}
}

func TestRunsCompressClusteredSets(t *testing.T) {
	// A dense range of 10k cells must collapse to a few bytes, far
	// smaller than the per-cell delta encoding.
	cells := make([]uint64, 10000)
	for i := range cells {
		cells[i] = uint64(1000 + i)
	}
	runEnc := AppendCellSetRuns(nil, cells)
	cellEnc := AppendCellSet(nil, cells)
	if len(runEnc) >= len(cellEnc)/100 {
		t.Fatalf("run encoding %dB vs per-cell %dB: expected >100x", len(runEnc), len(cellEnc))
	}
}

func TestDecodeRunsIntoEarlyStop(t *testing.T) {
	enc := AppendCellSetRuns(nil, []uint64{1, 2, 10, 11, 20})
	var calls int
	n, err := DecodeRunsInto(enc, func(_, _ uint64) bool {
		calls++
		return false
	})
	if err != nil || calls != 1 {
		t.Fatalf("early stop: calls=%d err=%v", calls, err)
	}
	if n != len(enc) {
		t.Fatalf("early stop consumed %d of %d bytes", n, len(enc))
	}
}

func TestDecodeRunsErrors(t *testing.T) {
	if _, err := DecodeRunsInto(nil, nil); err == nil {
		t.Fatal("nil input accepted")
	}
	enc := AppendCellSetRuns(nil, []uint64{3, 4, 9})
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeRunsInto(enc[:cut], func(_, _ uint64) bool { return true }); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Zero-length run is rejected.
	if _, err := DecodeRunsInto([]byte{1, 0, 0}, func(_, _ uint64) bool { return true }); err == nil {
		t.Fatal("zero-length run accepted")
	}
}

func TestDecodeCellSetIntoMatchesDecodeCellSet(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		cells := make([]uint64, 0, 50)
		c := uint64(rng.Intn(10))
		for i := 0; i < rng.Intn(50); i++ {
			cells = append(cells, c)
			c += uint64(1 + rng.Intn(30))
		}
		enc := AppendCellSet(nil, cells)
		want, wantN, err := DecodeCellSet(enc)
		if err != nil {
			t.Fatal(err)
		}
		var got []uint64
		gotN, err := DecodeCellSetInto(enc, func(cell uint64) bool {
			got = append(got, cell)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if gotN != wantN || !equalCells(got, want) {
			t.Fatalf("trial %d: streaming decode diverges", trial)
		}
	}
}

func TestQuickRunsRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		cells := widen(raw)
		enc := AppendCellSetRuns(nil, cells)
		var got []uint64
		n, err := DecodeRunsInto(enc, func(start, length uint64) bool {
			for c := start; c < start+length; c++ {
				got = append(got, c)
			}
			return true
		})
		return err == nil && n == len(enc) && equalCells(got, cells)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Sequential frames: two run sets appended back to back must decode with
// correct byte accounting (the record codec relies on this).
func TestRunsSequentialFrames(t *testing.T) {
	a := []uint64{1, 2, 3}
	b := []uint64{100, 200}
	enc := AppendCellSetRuns(AppendCellSetRuns(nil, a), b)
	gotA, n := decodeRunsToCells(t, enc)
	if !equalCells(gotA, a) {
		t.Fatalf("first frame %v", gotA)
	}
	gotB, m := decodeRunsToCells(t, enc[n:])
	if !equalCells(gotB, b) || n+m != len(enc) {
		t.Fatalf("second frame %v (consumed %d+%d of %d)", gotB, n, m, len(enc))
	}
}

// Streaming decode must not allocate — it feeds bitmap.SetRun directly in
// the lookup hot path.
func TestDecodeRunsIntoAllocFree(t *testing.T) {
	cells := make([]uint64, 0, 4096)
	for i := 0; i < 4096; i++ {
		cells = append(cells, uint64(i*3)) // worst case: no merging
	}
	enc := AppendCellSetRuns(nil, cells)
	var total uint64
	if n := testing.AllocsPerRun(20, func() {
		_, err := DecodeRunsInto(enc, func(_, length uint64) bool {
			total += length
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Fatalf("DecodeRunsInto allocates %.1f/op", n)
	}
}

func TestGoldenRunsEncoding(t *testing.T) {
	// {3,4,5, 9, 20,21}: 3 runs -> count 3, (3,3) (gap 3,1) (gap 10,2).
	got := AppendCellSetRuns(nil, []uint64{3, 4, 5, 9, 20, 21})
	want := []byte{3, 3, 3, 3, 1, 10, 2}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden runs encoding %v, want %v", got, want)
	}
}

func BenchmarkDecodeRunsInto1000(b *testing.B) {
	cells := make([]uint64, 1000)
	for i := range cells {
		cells[i] = uint64(i * 2)
	}
	enc := AppendCellSetRuns(nil, cells)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total uint64
		if _, err := DecodeRunsInto(enc, func(_, n uint64) bool { total += n; return true }); err != nil {
			b.Fatal(err)
		}
	}
}
