package binenc

import (
	"testing"
)

// The decoders must never panic or over-consume on arbitrary bytes, and
// encode→decode must be the identity on canonical inputs. Byte-exact
// decode→re-encode is deliberately NOT asserted: binary.Uvarint accepts
// non-minimal varints, so valid decodes of non-canonical bytes exist.
// Seed corpora come from the golden-bytes fixtures the unit tests pin.

func FuzzDecodeCellSet(f *testing.F) {
	f.Add(AppendCellSet(nil, nil))
	f.Add(AppendCellSet(nil, []uint64{0}))
	f.Add(AppendCellSet(nil, []uint64{3, 4, 5, 9, 20, 21}))
	f.Add(AppendCellSet(nil, []uint64{0, 1, 2, 63, 64, 65, 1 << 40}))
	f.Add(AppendUvarint(nil, 1<<40)) // absurd count, tiny buffer
	f.Add([]byte{})
	f.Add([]byte{0x80}) // truncated varint

	f.Fuzz(func(t *testing.T, data []byte) {
		cells, n, err := DecodeCellSet(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}

		// The streaming decoder must agree with the materializing one.
		var streamed []uint64
		sn, serr := DecodeCellSetInto(data, func(cell uint64) bool {
			streamed = append(streamed, cell)
			return true
		})
		if serr != nil || sn != n {
			t.Fatalf("DecodeCellSetInto = (%d, %v), DecodeCellSet = (%d, nil)", sn, serr, n)
		}
		assertSameCells(t, "streamed", streamed, cells)

		// Encode→decode is the identity on whatever we decoded: the
		// delta arithmetic is symmetric even across uint64 wraparound.
		re := AppendCellSet(nil, cells)
		if got := CellSetLen(cells); got != len(re) {
			t.Fatalf("CellSetLen = %d, encoded length = %d", got, len(re))
		}
		cells2, n2, err := DecodeCellSet(re)
		if err != nil || n2 != len(re) {
			t.Fatalf("re-decode = (%d, %v), want (%d, nil)", n2, err, len(re))
		}
		assertSameCells(t, "re-decoded", cells2, cells)
	})
}

func FuzzDecodeRuns(f *testing.F) {
	f.Add(AppendCellSetRuns(nil, nil))
	f.Add(AppendCellSetRuns(nil, []uint64{3, 4, 5, 9, 20, 21})) // golden: {3, 3,3, 3,1, 10,2}
	f.Add(AppendCellSetRuns(nil, []uint64{0, 1, 2, 3}))
	f.Add(AppendCellSetRuns(nil, []uint64{0, 2, 4, 6, 8}))
	f.Add([]byte{1, 0, 0}) // zero-length run
	f.Add([]byte{0x80})    // truncated varint

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes: the decoder must never panic, emit a
		// zero-length run, or consume past the buffer. Run extents can
		// span nearly the whole uint64 range, so runs are counted, not
		// materialized.
		const maxRuns = 4096
		runs := 0
		n, err := DecodeRunsInto(data, func(start, length uint64) bool {
			if length == 0 {
				t.Fatalf("decoder emitted a zero-length run at %d", start)
			}
			runs++
			return runs < maxRuns
		})
		if err == nil && (n < 0 || n > len(data)) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}

		// Canonical path: derive a sorted cell set from the input (a mix
		// of adjacent and spread cells), encode it, and require the
		// decoder to reproduce it exactly.
		limit := len(data)
		if limit > maxRuns {
			limit = maxRuns
		}
		cells := make([]uint64, 0, limit)
		pos := uint64(0)
		for _, b := range data[:limit] {
			pos += uint64(b>>3) + 1 // gap 1 (consecutive) up to 32
			cells = append(cells, pos)
		}
		enc := AppendCellSetRuns(nil, cells)
		if got := CellSetRunsLen(cells); got != len(enc) {
			t.Fatalf("CellSetRunsLen = %d, encoded length = %d", got, len(enc))
		}
		var decoded []uint64
		dn, err := DecodeRunsInto(enc, func(start, length uint64) bool {
			for c := start; c < start+length; c++ {
				decoded = append(decoded, c)
			}
			return true
		})
		if err != nil || dn != len(enc) {
			t.Fatalf("decode canonical encoding = (%d, %v), want (%d, nil)", dn, err, len(enc))
		}
		assertSameCells(t, "canonical round-trip", decoded, cells)
	})
}

func FuzzDecodeContainers(f *testing.F) {
	f.Add(AppendCellSetContainers(nil, nil))
	f.Add(AppendCellSetContainers(nil, []uint64{5, 9, 1024}))                                                       // sparse-direct golden
	f.Add(AppendCellSetContainers(nil, []uint64{100, 101, 102, 103, 104, 105, 106, 107, 108}))                      // run container
	f.Add(AppendCellSetContainers(nil, fullTile(0)))                                                                // full container
	f.Add(AppendCellSetContainers(nil, everyOther(2048, 512)))                                                      // bitmap container
	f.Add(AppendCellSetContainers(nil, []uint64{10, 500, 900, 2048, 3000, 1 << 40, 1<<40 + 999, 2 << 40, 3 << 40})) // array containers across far tiles
	f.Add([]byte{8, 1, 1, 1, 0, 4})                                                                                 // count mismatch
	f.Add([]byte{9, 1, 1, 1, 0, 0})                                                                                 // zero-length run
	f.Add([]byte{0x80})                                                                                             // truncated varint

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary bytes: the decoder must never panic, emit a
		// zero-length run, or consume past the buffer.
		const maxRuns = 4096
		runs := 0
		n, err := DecodeContainersInto(data, func(start, length uint64) bool {
			if length == 0 {
				t.Fatalf("decoder emitted a zero-length run at %d", start)
			}
			runs++
			return runs < maxRuns
		})
		if err == nil && (n < 0 || n > len(data)) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}

		// Canonical path: derive a sorted cell set from the input, encode
		// it in container form, and require the streaming decode to agree
		// cell for cell with the v2 span codec over the same set — the
		// compatibility contract mixed-version stores rely on.
		limit := len(data)
		if limit > maxRuns {
			limit = maxRuns
		}
		cells := make([]uint64, 0, limit)
		pos := uint64(0)
		for _, b := range data[:limit] {
			pos += uint64(b>>3) + 1 // gap 1 (consecutive) up to 32
			cells = append(cells, pos)
		}
		enc := AppendCellSetContainers(nil, cells)
		var decoded []uint64
		dn, err := DecodeContainersInto(enc, func(start, length uint64) bool {
			for c := start; c < start+length; c++ {
				decoded = append(decoded, c)
			}
			return true
		})
		if err != nil || dn != len(enc) {
			t.Fatalf("decode canonical encoding = (%d, %v), want (%d, nil)", dn, err, len(enc))
		}
		assertSameCells(t, "canonical container round-trip", decoded, cells)

		var fromRuns []uint64
		if _, err := DecodeRunsInto(AppendCellSetRuns(nil, cells), func(start, length uint64) bool {
			for c := start; c < start+length; c++ {
				fromRuns = append(fromRuns, c)
			}
			return true
		}); err != nil {
			t.Fatalf("v2 runs decode: %v", err)
		}
		assertSameCells(t, "containers vs v2 runs", decoded, fromRuns)

		// Encode→decode must be a fixed point: re-encoding the decoded
		// set reproduces the canonical bytes (the rebuild-determinism
		// contract).
		re := AppendCellSetContainers(nil, decoded)
		if string(re) != string(enc) {
			t.Fatalf("re-encode differs: %v vs %v", re, enc)
		}
	})
}

func assertSameCells(t *testing.T, what string, got, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d cells, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: cell %d = %d, want %d", what, i, got[i], want[i])
		}
	}
}
