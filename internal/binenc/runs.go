package binenc

import (
	"encoding/binary"
	"fmt"
)

// Span (run-length) cell-set codec. A sorted, deduplicated cell set is
// stored as its maximal runs of consecutive indices: a run count followed
// by one (gap, length) varint pair per run, where gap is the distance
// from the end of the previous run (the first run's gap is its absolute
// start index). Clustered region lineage — the common case for array
// operators — collapses to a handful of pairs, and the streaming
// decoders below let lookups consume spans without materializing
// []uint64 cell slices.

// AppendCellSetRuns appends a sorted, deduplicated cell set in span form.
func AppendCellSetRuns(dst []byte, cells []uint64) []byte {
	nRuns := CountRuns(cells)
	dst = binary.AppendUvarint(dst, uint64(nRuns))
	prevEnd := uint64(0)
	for i := 0; i < len(cells); {
		j := i + 1
		for j < len(cells) && cells[j] == cells[j-1]+1 {
			j++
		}
		start, length := cells[i], uint64(j-i)
		dst = binary.AppendUvarint(dst, start-prevEnd)
		dst = binary.AppendUvarint(dst, length)
		prevEnd = start + length
		i = j
	}
	return dst
}

// CountRuns returns the number of maximal consecutive runs in a sorted,
// deduplicated cell set.
func CountRuns(cells []uint64) int {
	n := 0
	for i := 0; i < len(cells); {
		j := i + 1
		for j < len(cells) && cells[j] == cells[j-1]+1 {
			j++
		}
		n++
		i = j
	}
	return n
}

// CellSetRunsLen returns the encoded size of AppendCellSetRuns without
// materializing the encoding.
func CellSetRunsLen(cells []uint64) int {
	n := uvarintLen(uint64(CountRuns(cells)))
	prevEnd := uint64(0)
	for i := 0; i < len(cells); {
		j := i + 1
		for j < len(cells) && cells[j] == cells[j-1]+1 {
			j++
		}
		start, length := cells[i], uint64(j-i)
		n += uvarintLen(start-prevEnd) + uvarintLen(length)
		prevEnd = start + length
		i = j
	}
	return n
}

// DecodeRunsInto streams the runs of a span-encoded cell set into visit
// in ascending order and returns the number of bytes consumed. If visit
// returns false the remaining runs are skipped (but still parsed, so the
// consumed count stays correct).
func DecodeRunsInto(src []byte, visit func(start, length uint64) bool) (int, error) {
	n, read := binary.Uvarint(src)
	if read <= 0 {
		return 0, fmt.Errorf("binenc: truncated run count")
	}
	off := read
	if n > uint64(len(src)) { // each run takes >=2 bytes; cheap sanity bound
		return 0, fmt.Errorf("binenc: run count %d exceeds buffer", n)
	}
	pos := uint64(0)
	emitting := true
	for i := uint64(0); i < n; i++ {
		gap, read := binary.Uvarint(src[off:])
		if read <= 0 {
			return 0, fmt.Errorf("binenc: truncated run gap %d/%d", i, n)
		}
		off += read
		length, read := binary.Uvarint(src[off:])
		if read <= 0 {
			return 0, fmt.Errorf("binenc: truncated run length %d/%d", i, n)
		}
		off += read
		if length == 0 {
			return 0, fmt.Errorf("binenc: zero-length run %d/%d", i, n)
		}
		start := pos + gap
		pos = start + length
		if emitting {
			emitting = visit(start, length)
		}
	}
	return off, nil
}

// DecodeCellSetInto streams the cells of a delta+varint cell set (the
// AppendCellSet encoding) into visit in ascending order and returns the
// number of bytes consumed. If visit returns false the remaining cells
// are skipped (but still parsed, so the consumed count stays correct).
func DecodeCellSetInto(src []byte, visit func(cell uint64) bool) (int, error) {
	n, read := binary.Uvarint(src)
	if read <= 0 {
		return 0, fmt.Errorf("binenc: truncated cell-set count")
	}
	off := read
	if n > uint64(len(src)) {
		return 0, fmt.Errorf("binenc: cell-set count %d exceeds buffer", n)
	}
	prev := uint64(0)
	emitting := true
	for i := uint64(0); i < n; i++ {
		d, read := binary.Uvarint(src[off:])
		if read <= 0 {
			return 0, fmt.Errorf("binenc: truncated cell-set entry %d/%d", i, n)
		}
		off += read
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		if emitting {
			emitting = visit(prev)
		}
	}
	return off, nil
}
