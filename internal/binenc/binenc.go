// Package binenc implements the compact binary encodings SubZero uses to
// serialize lineage data: delta+varint cell-set codecs, rectangle codecs,
// and length-prefixed framing. The paper (§VI-B) bit-packs each coordinate
// into a single integer when the array is small enough; we always address
// cells by their uint64 row-major linear index (see internal/grid), so the
// codecs here operate on sorted []uint64 index sets.
package binenc

import (
	"encoding/binary"
	"fmt"

	"subzero/internal/grid"
)

// AppendUvarint appends v in unsigned-varint form.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendCellSet appends a sorted, deduplicated cell-index set using
// delta+varint coding: a count followed by the first index and successive
// gaps. Sorted inputs with spatial locality compress to ~1-2 bytes/cell.
func AppendCellSet(dst []byte, cells []uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(cells)))
	prev := uint64(0)
	for i, v := range cells {
		if i == 0 {
			dst = binary.AppendUvarint(dst, v)
		} else {
			dst = binary.AppendUvarint(dst, v-prev)
		}
		prev = v
	}
	return dst
}

// DecodeCellSet decodes a cell set produced by AppendCellSet, returning the
// cells and the number of bytes consumed.
func DecodeCellSet(src []byte) ([]uint64, int, error) {
	n, read := binary.Uvarint(src)
	if read <= 0 {
		return nil, 0, fmt.Errorf("binenc: truncated cell-set count")
	}
	off := read
	if n > uint64(len(src)) { // each cell takes >=1 byte; cheap sanity bound
		return nil, 0, fmt.Errorf("binenc: cell-set count %d exceeds buffer", n)
	}
	cells := make([]uint64, 0, n)
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		d, read := binary.Uvarint(src[off:])
		if read <= 0 {
			return nil, 0, fmt.Errorf("binenc: truncated cell-set entry %d/%d", i, n)
		}
		off += read
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		cells = append(cells, prev)
	}
	return cells, off, nil
}

// CellSetLen returns the encoded size of a cell set without materializing
// the encoding; the cost model uses it for disk estimates.
func CellSetLen(cells []uint64) int {
	n := uvarintLen(uint64(len(cells)))
	prev := uint64(0)
	for i, v := range cells {
		if i == 0 {
			n += uvarintLen(v)
		} else {
			n += uvarintLen(v - prev)
		}
		prev = v
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendRect appends a rectangle as rank followed by varint Lo/Hi bounds
// (Hi stored as a delta from Lo, which is always >= 0 for valid rects).
func AppendRect(dst []byte, r grid.Rect) []byte {
	dst = binary.AppendUvarint(dst, uint64(r.Rank()))
	for d := range r.Lo {
		dst = binary.AppendUvarint(dst, uint64(r.Lo[d]))
		dst = binary.AppendUvarint(dst, uint64(r.Hi[d]-r.Lo[d]))
	}
	return dst
}

// DecodeRect decodes a rectangle produced by AppendRect, returning the rect
// and the number of bytes consumed.
func DecodeRect(src []byte) (grid.Rect, int, error) {
	rank, read := binary.Uvarint(src)
	if read <= 0 || rank == 0 || rank > 64 {
		return grid.Rect{}, 0, fmt.Errorf("binenc: bad rect rank")
	}
	off := read
	r := grid.Rect{Lo: make(grid.Coord, rank), Hi: make(grid.Coord, rank)}
	for d := 0; d < int(rank); d++ {
		lo, read := binary.Uvarint(src[off:])
		if read <= 0 {
			return grid.Rect{}, 0, fmt.Errorf("binenc: truncated rect lo[%d]", d)
		}
		off += read
		ext, read := binary.Uvarint(src[off:])
		if read <= 0 {
			return grid.Rect{}, 0, fmt.Errorf("binenc: truncated rect hi[%d]", d)
		}
		off += read
		r.Lo[d] = int(lo)
		r.Hi[d] = int(lo + ext)
	}
	return r, off, nil
}

// AppendBytes appends a length-prefixed byte string.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// DecodeBytes decodes a length-prefixed byte string, returning a slice
// aliasing src and the number of bytes consumed.
func DecodeBytes(src []byte) ([]byte, int, error) {
	n, read := binary.Uvarint(src)
	if read <= 0 {
		return nil, 0, fmt.Errorf("binenc: truncated byte-string length")
	}
	if uint64(len(src)-read) < n {
		return nil, 0, fmt.Errorf("binenc: byte string of %d bytes exceeds buffer", n)
	}
	return src[read : read+int(n)], read + int(n), nil
}

// PutUint64 encodes v as 8 fixed big-endian bytes; used for hash keys where
// lexicographic order must match numeric order.
func PutUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// Uint64 decodes an 8-byte big-endian value.
func Uint64(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("binenc: uint64 key has %d bytes, want 8", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}
