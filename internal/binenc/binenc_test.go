package binenc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"subzero/internal/grid"
)

func TestCellSetRoundTrip(t *testing.T) {
	cases := [][]uint64{
		nil,
		{0},
		{5},
		{1, 2, 3},
		{0, 1000000, 1000001, 1 << 40},
	}
	for _, cells := range cases {
		enc := AppendCellSet(nil, cells)
		got, n, err := DecodeCellSet(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", cells, err)
		}
		if n != len(enc) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
		}
		if len(got) != len(cells) {
			t.Fatalf("got %v, want %v", got, cells)
		}
		for i := range cells {
			if got[i] != cells[i] {
				t.Fatalf("got %v, want %v", got, cells)
			}
		}
	}
}

func TestCellSetLenMatchesEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		cells := make([]uint64, rng.Intn(40))
		for i := range cells {
			cells[i] = uint64(rng.Int63n(1 << 30))
		}
		cells = grid.SortCells(cells)
		enc := AppendCellSet(nil, cells)
		if got := CellSetLen(cells); got != len(enc) {
			t.Fatalf("CellSetLen=%d, encoding is %d bytes", got, len(enc))
		}
	}
}

func TestCellSetLocalityCompression(t *testing.T) {
	// A dense run of adjacent cells must encode in ~1 byte/cell after the
	// first; this property is what makes region lineage cheap to store.
	cells := make([]uint64, 1000)
	for i := range cells {
		cells[i] = uint64(1_000_000 + i)
	}
	enc := AppendCellSet(nil, cells)
	if len(enc) > 1100 {
		t.Fatalf("dense run encoded to %d bytes, expected ~1 byte/cell", len(enc))
	}
}

func TestDecodeCellSetTruncated(t *testing.T) {
	enc := AppendCellSet(nil, []uint64{1, 500, 100000, 1 << 33})
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeCellSet(enc[:cut]); err == nil {
			// cut==0 decodes count 0? No: empty buffer returns error.
			// A prefix that happens to be a full valid encoding of a
			// shorter set is impossible here because count is fixed.
			t.Fatalf("truncation at %d bytes not detected", cut)
		}
	}
}

func TestDecodeCellSetBogusCount(t *testing.T) {
	enc := AppendUvarint(nil, 1<<40) // absurd count, tiny buffer
	if _, _, err := DecodeCellSet(enc); err == nil {
		t.Fatal("bogus count not rejected")
	}
}

func TestRectRoundTrip(t *testing.T) {
	cases := []grid.Rect{
		{Lo: grid.Coord{0}, Hi: grid.Coord{0}},
		{Lo: grid.Coord{1, 2}, Hi: grid.Coord{3, 5}},
		{Lo: grid.Coord{0, 0, 0}, Hi: grid.Coord{511, 1999, 7}},
	}
	for _, r := range cases {
		enc := AppendRect(nil, r)
		got, n, err := DecodeRect(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", r, err)
		}
		if n != len(enc) || !got.Equal(r) {
			t.Fatalf("got %v (%d bytes), want %v (%d bytes)", got, n, r, len(enc))
		}
	}
}

func TestRectDecodeErrors(t *testing.T) {
	if _, _, err := DecodeRect(nil); err == nil {
		t.Fatal("empty rect buffer accepted")
	}
	bad := AppendUvarint(nil, 0) // rank 0
	if _, _, err := DecodeRect(bad); err == nil {
		t.Fatal("rank-0 rect accepted")
	}
	enc := AppendRect(nil, grid.Rect{Lo: grid.Coord{3, 4}, Hi: grid.Coord{9, 9}})
	if _, _, err := DecodeRect(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated rect accepted")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	for _, b := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 300)} {
		enc := AppendBytes(nil, b)
		got, n, err := DecodeBytes(enc)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(enc) || !bytes.Equal(got, b) {
			t.Fatalf("round trip failed for %d bytes", len(b))
		}
	}
	if _, _, err := DecodeBytes(AppendUvarint(nil, 100)); err == nil {
		t.Fatal("oversize byte string accepted")
	}
}

func TestUint64Key(t *testing.T) {
	for _, v := range []uint64{0, 1, 1 << 63, ^uint64(0)} {
		got, err := Uint64(PutUint64(v))
		if err != nil || got != v {
			t.Fatalf("Uint64 round trip %d -> %d err=%v", v, got, err)
		}
	}
	if _, err := Uint64([]byte{1, 2}); err == nil {
		t.Fatal("short key accepted")
	}
	// Lexicographic order must equal numeric order.
	if bytes.Compare(PutUint64(5), PutUint64(300)) >= 0 {
		t.Fatal("big-endian keys not order-preserving")
	}
}

// Property: cell-set encoding round-trips for arbitrary sorted sets.
func TestQuickCellSetRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		cells := make([]uint64, len(raw))
		for i, v := range raw {
			cells[i] = uint64(v)
		}
		cells = grid.SortCells(cells)
		got, n, err := DecodeCellSet(AppendCellSet(nil, cells))
		if err != nil || n == 0 {
			return false
		}
		if len(got) != len(cells) {
			return false
		}
		for i := range cells {
			if got[i] != cells[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: multiple values appended back-to-back decode in sequence, as the
// lineage encoder relies on when framing region pairs.
func TestQuickSequentialFrames(t *testing.T) {
	f := func(a, b []uint32, payload []byte) bool {
		ca := grid.SortCells(widen(a))
		cb := grid.SortCells(widen(b))
		var buf []byte
		buf = AppendCellSet(buf, ca)
		buf = AppendBytes(buf, payload)
		buf = AppendCellSet(buf, cb)

		g1, n1, err := DecodeCellSet(buf)
		if err != nil {
			return false
		}
		p, n2, err := DecodeBytes(buf[n1:])
		if err != nil {
			return false
		}
		g2, n3, err := DecodeCellSet(buf[n1+n2:])
		if err != nil || n1+n2+n3 != len(buf) {
			return false
		}
		return equalCells(g1, ca) && equalCells(g2, cb) && bytes.Equal(p, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func widen(in []uint32) []uint64 {
	out := make([]uint64, len(in))
	for i, v := range in {
		out[i] = uint64(v)
	}
	return out
}

func equalCells(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkAppendCellSet1000(b *testing.B) {
	cells := make([]uint64, 1000)
	for i := range cells {
		cells[i] = uint64(i * 3)
	}
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendCellSet(buf[:0], cells)
	}
}

func BenchmarkDecodeCellSet1000(b *testing.B) {
	cells := make([]uint64, 1000)
	for i := range cells {
		cells[i] = uint64(i * 3)
	}
	enc := AppendCellSet(nil, cells)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeCellSet(enc); err != nil {
			b.Fatal(err)
		}
	}
}
