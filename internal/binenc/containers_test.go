package binenc

import (
	"bytes"
	"math/rand"
	"testing"
)

// decodeContainerCells materializes a container-form set through the
// streaming run decoder.
func decodeContainerCells(t *testing.T, enc []byte) []uint64 {
	t.Helper()
	var cells []uint64
	n, err := DecodeContainersInto(enc, func(start, length uint64) bool {
		if length == 0 {
			t.Fatal("zero-length run emitted")
		}
		for c := start; c < start+length; c++ {
			cells = append(cells, c)
		}
		return true
	})
	if err != nil {
		t.Fatalf("DecodeContainersInto: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	return cells
}

func TestContainersGoldenBytes(t *testing.T) {
	cases := []struct {
		name  string
		cells []uint64
		want  []byte
	}{
		{"empty", nil, []byte{0}},
		// count 3, nTiles=0 (sparse-direct), first 5 then gaps.
		{"sparse-direct", []uint64{5, 9, 1024}, []byte{3, 0, 5, 4, 0xF7, 0x07}},
		// 9 cells > SparseDirectMax: one tile, one run (gap 100, len 9):
		// runs beats array and bitmap.
		{"single-run", []uint64{100, 101, 102, 103, 104, 105, 106, 107, 108},
			[]byte{9, 1, 1, 1, 100, 9}},
		// A full tile has no payload.
		{"full-tile", fullTile(0), append([]byte{0x80, 0x08, 1}, 3)},
		// Every other cell of tile 2: 512 cells, 512 runs (~1KB), array
		// ~514B, bitmap 128B wins. Header gap=2, type=2 -> 2<<2|2 = 10.
		{"bitmap-tile", everyOther(2048, 512),
			append([]byte{0x80, 0x04, 1, 10}, bytes.Repeat([]byte{0x55}, 128)...)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := AppendCellSetContainers(nil, tc.cells)
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("encoded bytes = %v, want %v", got, tc.want)
			}
			back := decodeContainerCells(t, got)
			if !sameCells(back, tc.cells) {
				t.Fatalf("round trip = %v, want %v", back, tc.cells)
			}
		})
	}
}

func fullTile(base uint64) []uint64 {
	cells := make([]uint64, TileCells)
	for i := range cells {
		cells[i] = base + uint64(i)
	}
	return cells
}

func everyOther(base uint64, n int) []uint64 {
	cells := make([]uint64, n)
	for i := range cells {
		cells[i] = base + 2*uint64(i)
	}
	return cells
}

// Random sets across the density spectrum must round-trip exactly and
// agree with the v2 span codec's decode of the same set.
func TestContainersRoundTripDensities(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gapFns := []func() uint64{
		func() uint64 { return 1 },                          // dense runs
		func() uint64 { return uint64(1 + rng.Intn(2)) },    // ~60% density
		func() uint64 { return uint64(1 + rng.Intn(7)) },    // medium scatter
		func() uint64 { return uint64(1 + rng.Intn(5000)) }, // sparse
	}
	for gi, gap := range gapFns {
		for trial := 0; trial < 30; trial++ {
			n := 1 + rng.Intn(3000)
			cells := make([]uint64, 0, n)
			pos := uint64(rng.Intn(2000))
			for i := 0; i < n; i++ {
				cells = append(cells, pos)
				pos += gap()
			}
			enc := AppendCellSetContainers(nil, cells)
			got := decodeContainerCells(t, enc)
			if !sameCells(got, cells) {
				t.Fatalf("gap fn %d trial %d: round trip mismatch (%d cells)", gi, trial, n)
			}

			// The v2 codec over the same set must agree cell for cell.
			v2 := AppendCellSetRuns(nil, cells)
			var fromV2 []uint64
			if _, err := DecodeRunsInto(v2, func(start, length uint64) bool {
				for c := start; c < start+length; c++ {
					fromV2 = append(fromV2, c)
				}
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if !sameCells(got, fromV2) {
				t.Fatalf("gap fn %d trial %d: containers disagree with v2 runs", gi, trial)
			}
		}
	}
}

// Medium-density cell sets are the case the bitmap container exists
// for. Strided masks (every other cell) are the v2 worst case — one
// 2-byte run per cell pair vs 1 bit per cell — and must compress ≥5×.
// Random scatter peaks at ~2 bytes per run around 50% density, so the
// bound there is lower but still well above 3×.
func TestContainersCompressMediumDensity(t *testing.T) {
	strided := everyOther(0, 32*1024)
	v2 := len(AppendCellSetRuns(nil, strided))
	v3 := len(AppendCellSetContainers(nil, strided))
	if v3*5 > v2 {
		t.Fatalf("strided: v3 = %dB, v2 = %dB — want at least 5x smaller", v3, v2)
	}

	rng := rand.New(rand.NewSource(7))
	var scatter []uint64
	for c := uint64(0); c < 64*1024; c++ {
		if rng.Intn(100) < 40 {
			scatter = append(scatter, c)
		}
	}
	v2 = len(AppendCellSetRuns(nil, scatter))
	v3 = len(AppendCellSetContainers(nil, scatter))
	if v3*3 > v2 {
		t.Fatalf("scatter: v3 = %dB, v2 = %dB — want at least 3x smaller", v3, v2)
	}
}

func TestWalkContainersRejectsMalformed(t *testing.T) {
	valid := AppendCellSetContainers(nil, everyOther(0, 512))
	cases := map[string][]byte{
		"empty":                 {},
		"truncated count":       {0x80},
		"truncated tiles":       {5},
		"sparse count too big":  {0xFF, 0xFF, 0x7F, 0},
		"truncated sparse cell": {3, 0, 1, 1},
		"sparse non-increasing": {3, 0, 1, 0, 1},
		"truncated header":      {9, 1},
		"truncated bitmap":      valid[:len(valid)-1],
		"array zero cells":      {9, 1, 0, 0},
		"array past tile":       {9, 1, 0, 9, 0xFF, 0x07, 1, 1, 1, 1, 1, 1, 1, 1},
		"run zero length":       {9, 1, 1, 1, 0, 0},
		"run past tile":         {9, 1, 1, 1, 0xFF, 0x07, 2},
		"count mismatch":        {8, 1, 1, 1, 0, 4},
	}
	for name, src := range cases {
		if _, _, err := WalkContainers(src, nil, nil); err == nil {
			t.Errorf("%s: want error, got none", name)
		}
	}
}

func sameCells(got, want []uint64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
