package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subzero/internal/grid"
)

func randRect(rng *rand.Rand, universe, maxExt int) grid.Rect {
	lo := grid.Coord{rng.Intn(universe), rng.Intn(universe)}
	return grid.Rect{
		Lo: lo,
		Hi: grid.Coord{lo[0] + rng.Intn(maxExt), lo[1] + rng.Intn(maxExt)},
	}
}

// bruteSearch is the reference implementation: a linear scan.
func bruteSearch(items []Item, q grid.Rect) map[uint64]bool {
	out := map[uint64]bool{}
	for _, it := range items {
		if it.Rect.Intersects(q) {
			out[it.ID] = true
		}
	}
	return out
}

func treeSearch(t *Tree, q grid.Rect) map[uint64]bool {
	out := map[uint64]bool{}
	t.Search(q, func(it Item) bool {
		out[it.ID] = true
		return true
	})
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := New(2)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatal("empty tree wrong shape")
	}
	found := false
	tr.Search(grid.Rect{Lo: grid.Coord{0, 0}, Hi: grid.Coord{10, 10}}, func(Item) bool {
		found = true
		return true
	})
	if found {
		t.Fatal("empty tree returned items")
	}
}

func TestInsertValidation(t *testing.T) {
	tr := New(2)
	if err := tr.Insert(Item{Rect: grid.Rect{Lo: grid.Coord{5, 5}, Hi: grid.Coord{1, 1}}}); err == nil {
		t.Fatal("inverted rect accepted")
	}
	if err := tr.Insert(Item{Rect: grid.Rect{Lo: grid.Coord{1}, Hi: grid.Coord{2}}}); err == nil {
		t.Fatal("rank-mismatched rect accepted")
	}
}

func TestInsertSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New(2)
	var items []Item
	for i := 0; i < 2000; i++ {
		it := Item{Rect: randRect(rng, 500, 20), ID: uint64(i)}
		items = append(items, it)
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 2000 {
		t.Fatalf("Len=%d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 100; q++ {
		query := randRect(rng, 500, 60)
		want := bruteSearch(items, query)
		got := treeSearch(tr, query)
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d items, want %d", query, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("query %v: missing id %d", query, id)
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := New(2)
	for i := 0; i < 100; i++ {
		_ = tr.Insert(Item{Rect: grid.RectOf(grid.Coord{i, i}), ID: uint64(i)})
	}
	n := 0
	tr.Search(grid.Rect{Lo: grid.Coord{0, 0}, Hi: grid.Coord{99, 99}}, func(Item) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestSearchPoint(t *testing.T) {
	tr := New(2)
	_ = tr.Insert(Item{Rect: grid.Rect{Lo: grid.Coord{0, 0}, Hi: grid.Coord{10, 10}}, ID: 1})
	_ = tr.Insert(Item{Rect: grid.Rect{Lo: grid.Coord{20, 20}, Hi: grid.Coord{30, 30}}, ID: 2})
	got := map[uint64]bool{}
	tr.SearchPoint(grid.Coord{5, 5}, func(it Item) bool {
		got[it.ID] = true
		return true
	})
	if !got[1] || got[2] {
		t.Fatalf("point search got %v", got)
	}
}

func TestBulkLoadMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 1, 15, 16, 17, 300, 5000} {
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Rect: randRect(rng, 400, 10), ID: uint64(i)}
		}
		tr := BulkLoad(2, items)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for q := 0; q < 30; q++ {
			query := randRect(rng, 400, 50)
			want := bruteSearch(items, query)
			got := treeSearch(tr, query)
			if len(got) != len(want) {
				t.Fatalf("n=%d query %v: got %d, want %d", n, query, len(got), len(want))
			}
		}
	}
}

func TestBulkLoad1D(t *testing.T) {
	items := make([]Item, 200)
	for i := range items {
		items[i] = Item{Rect: grid.Rect{Lo: grid.Coord{i * 3}, Hi: grid.Coord{i*3 + 1}}, ID: uint64(i)}
	}
	tr := BulkLoad(1, items)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := treeSearch(tr, grid.Rect{Lo: grid.Coord{10}, Hi: grid.Coord{20}})
	want := bruteSearch(items, grid.Rect{Lo: grid.Coord{10}, Hi: grid.Coord{20}})
	if len(got) != len(want) {
		t.Fatalf("1d search got %d, want %d", len(got), len(want))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	items := make([]Item, 500)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, 300, 12), ID: uint64(i * 7)}
	}
	orig := BulkLoad(2, items)
	dec, err := Decode(orig.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != orig.Len() {
		t.Fatalf("decoded Len=%d, want %d", dec.Len(), orig.Len())
	}
	if err := dec.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 50; q++ {
		query := randRect(rng, 300, 40)
		a, b := treeSearch(orig, query), treeSearch(dec, query)
		if len(a) != len(b) {
			t.Fatalf("query %v: orig %d, decoded %d", query, len(a), len(b))
		}
		for id := range a {
			if !b[id] {
				t.Fatalf("query %v: decoded missing %d", query, id)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	enc := BulkLoad(2, []Item{{Rect: grid.RectOf(grid.Coord{1, 2}), ID: 9}}).Encode()
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestEncodedLenIsUpperBoundIsh(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	items := make([]Item, 300)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, 1000, 8), ID: uint64(i)}
	}
	tr := BulkLoad(2, items)
	actual := len(tr.Encode())
	est := tr.EncodedLen()
	if est < actual {
		t.Fatalf("EncodedLen=%d underestimates actual %d", est, actual)
	}
	if est > actual*2 {
		t.Fatalf("EncodedLen=%d wildly overestimates actual %d", est, actual)
	}
}

// Property: tree search equals brute force for random workloads, both for
// incremental inserts and bulk load.
func TestQuickSearchEquivalence(t *testing.T) {
	f := func(seed int64, nItems uint8, queries [4][4]uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nItems)
		items := make([]Item, n)
		tr := New(2)
		for i := range items {
			items[i] = Item{Rect: randRect(rng, 100, 10), ID: uint64(i)}
			if err := tr.Insert(items[i]); err != nil {
				return false
			}
		}
		bl := BulkLoad(2, items)
		for _, q := range queries {
			query := grid.Rect{
				Lo: grid.Coord{int(q[0]) % 100, int(q[1]) % 100},
				Hi: grid.Coord{int(q[0])%100 + int(q[2])%30, int(q[1])%100 + int(q[3])%30},
			}
			want := bruteSearch(items, query)
			if got := treeSearch(tr, query); len(got) != len(want) {
				return false
			}
			if got := treeSearch(bl, query); len(got) != len(want) {
				return false
			}
		}
		return tr.CheckInvariants() == nil && bl.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rects := make([]Item, b.N)
	for i := range rects {
		rects[i] = Item{Rect: randRect(rng, 2000, 8), ID: uint64(i)}
	}
	tr := New(2)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tr.Insert(rects[i])
	}
}

func BenchmarkSearch10k(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	items := make([]Item, 10000)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, 2000, 8), ID: uint64(i)}
	}
	tr := BulkLoad(2, items)
	q := grid.Rect{Lo: grid.Coord{500, 500}, Hi: grid.Coord{520, 520}}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Search(q, func(Item) bool { return true })
	}
}

func BenchmarkBulkLoad10k(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	items := make([]Item, 10000)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, 2000, 8), ID: uint64(i)}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BulkLoad(2, items)
	}
}
