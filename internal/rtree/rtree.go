// Package rtree implements an in-memory R-tree over integer rectangles.
//
// SubZero's FullMany and PayMany encodings store one hash entry per region
// pair and "create an R-tree on the cells in the hash key to quickly find
// the entries that intersect with the query" (paper §VI-B). This package is
// the stdlib-only substitute for the libspatialindex dependency of the
// original prototype: a Guttman R-tree with quadratic splits for
// incremental inserts, an STR (sort-tile-recursive) bulk loader used when a
// lineage store is reopened, and a compact serialization so the index can
// be persisted beside its store and charged against the storage budget.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"subzero/internal/grid"
)

// DefaultMaxEntries is the default node fan-out. Nodes split when they
// exceed it; the minimum fill is DefaultMaxEntries*minFillRatio.
const DefaultMaxEntries = 16

const minFillRatio = 0.4

// Item is a rectangle with an opaque identifier (a lineage pair id).
type Item struct {
	Rect grid.Rect
	ID   uint64
}

type entry struct {
	rect  grid.Rect
	child *node // nil in leaves
	id    uint64
}

type node struct {
	leaf    bool
	entries []entry
}

// Tree is an R-tree. The zero value is not usable; call New or BulkLoad.
// Tree is not safe for concurrent mutation; concurrent Search is safe.
type Tree struct {
	root       *node
	rank       int
	maxEntries int
	minEntries int
	size       int
}

// New creates an empty tree for rectangles of the given rank.
func New(rank int) *Tree {
	return NewWithFanout(rank, DefaultMaxEntries)
}

// NewWithFanout creates an empty tree with a custom node fan-out (>= 4).
func NewWithFanout(rank, maxEntries int) *Tree {
	if rank <= 0 {
		panic(fmt.Sprintf("rtree: invalid rank %d", rank))
	}
	if maxEntries < 4 {
		maxEntries = 4
	}
	minEntries := int(float64(maxEntries) * minFillRatio)
	if minEntries < 2 {
		minEntries = 2
	}
	return &Tree{
		root:       &node{leaf: true},
		rank:       rank,
		maxEntries: maxEntries,
		minEntries: minEntries,
	}
}

// Len returns the number of items in the tree.
func (t *Tree) Len() int { return t.size }

// Rank returns the dimensionality of the indexed rectangles.
func (t *Tree) Rank() int { return t.rank }

// Insert adds an item to the tree.
func (t *Tree) Insert(it Item) error {
	if err := it.Rect.Validate(); err != nil {
		return err
	}
	if it.Rect.Rank() != t.rank {
		return fmt.Errorf("rtree: rect rank %d, tree rank %d", it.Rect.Rank(), t.rank)
	}
	t.insertEntry(entry{rect: it.Rect, id: it.ID})
	t.size++
	return nil
}

func (t *Tree) insertEntry(e entry) {
	leaf, path := t.chooseLeaf(e.rect)
	leaf.entries = append(leaf.entries, e)
	t.adjust(leaf, path)
}

// chooseLeaf descends to the leaf whose MBR needs least enlargement,
// recording the path of ancestors for upward adjustment.
func (t *Tree) chooseLeaf(r grid.Rect) (*node, []*node) {
	var path []*node
	n := t.root
	for !n.leaf {
		path = append(path, n)
		best := 0
		bestEnl, bestArea := math.Inf(1), math.Inf(1)
		for i := range n.entries {
			area := rectAreaF(n.entries[i].rect)
			enl := rectAreaF(n.entries[i].rect.Union(r)) - area
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.entries[best].child
	}
	return n, path
}

// adjust walks from a modified leaf to the root, splitting overflowing
// nodes and refreshing ancestor MBRs.
func (t *Tree) adjust(n *node, path []*node) {
	for {
		var split *node
		if len(n.entries) > t.maxEntries {
			split = t.splitNode(n)
		}
		if len(path) == 0 {
			if split != nil {
				// Root split: grow the tree.
				newRoot := &node{leaf: false, entries: []entry{
					{rect: mbr(n), child: n},
					{rect: mbr(split), child: split},
				}}
				t.root = newRoot
			}
			return
		}
		parent := path[len(path)-1]
		path = path[:len(path)-1]
		for i := range parent.entries {
			if parent.entries[i].child == n {
				parent.entries[i].rect = mbr(n)
				break
			}
		}
		if split != nil {
			parent.entries = append(parent.entries, entry{rect: mbr(split), child: split})
		}
		n = parent
	}
}

// splitNode performs Guttman's quadratic split, moving roughly half the
// entries into a returned sibling node.
func (t *Tree) splitNode(n *node) *node {
	ents := n.entries
	// Pick seeds: the pair wasting the most area if grouped together.
	si, sj, worst := 0, 1, math.Inf(-1)
	for i := 0; i < len(ents); i++ {
		for j := i + 1; j < len(ents); j++ {
			d := rectAreaF(ents[i].rect.Union(ents[j].rect)) - rectAreaF(ents[i].rect) - rectAreaF(ents[j].rect)
			if d > worst {
				si, sj, worst = i, j, d
			}
		}
	}
	groupA := []entry{ents[si]}
	groupB := []entry{ents[sj]}
	rectA, rectB := ents[si].rect, ents[sj].rect
	rest := make([]entry, 0, len(ents)-2)
	for k := range ents {
		if k != si && k != sj {
			rest = append(rest, ents[k])
		}
	}
	for len(rest) > 0 {
		// Force assignment if one group must take all remaining entries
		// to reach minimum fill.
		if len(groupA)+len(rest) == t.minEntries {
			groupA = append(groupA, rest...)
			for _, e := range rest {
				rectA = rectA.Union(e.rect)
			}
			break
		}
		if len(groupB)+len(rest) == t.minEntries {
			groupB = append(groupB, rest...)
			for _, e := range rest {
				rectB = rectB.Union(e.rect)
			}
			break
		}
		// Pick next: entry with greatest preference for one group.
		bestK, bestDiff := 0, -1.0
		var bestDA, bestDB float64
		for k, e := range rest {
			dA := rectAreaF(rectA.Union(e.rect)) - rectAreaF(rectA)
			dB := rectAreaF(rectB.Union(e.rect)) - rectAreaF(rectB)
			diff := math.Abs(dA - dB)
			if diff > bestDiff {
				bestK, bestDiff, bestDA, bestDB = k, diff, dA, dB
			}
		}
		e := rest[bestK]
		rest = append(rest[:bestK], rest[bestK+1:]...)
		switch {
		case bestDA < bestDB:
			groupA = append(groupA, e)
			rectA = rectA.Union(e.rect)
		case bestDB < bestDA:
			groupB = append(groupB, e)
			rectB = rectB.Union(e.rect)
		case len(groupA) <= len(groupB):
			groupA = append(groupA, e)
			rectA = rectA.Union(e.rect)
		default:
			groupB = append(groupB, e)
			rectB = rectB.Union(e.rect)
		}
	}
	n.entries = groupA
	return &node{leaf: n.leaf, entries: groupB}
}

// Search calls fn for every item whose rectangle intersects q, until fn
// returns false. The traversal order is unspecified.
func (t *Tree) Search(q grid.Rect, fn func(Item) bool) {
	if t.size == 0 {
		return
	}
	t.search(t.root, q, fn)
}

func (t *Tree) search(n *node, q grid.Rect, fn func(Item) bool) bool {
	for i := range n.entries {
		e := &n.entries[i]
		if !e.rect.Intersects(q) {
			continue
		}
		if n.leaf {
			if !fn(Item{Rect: e.rect, ID: e.id}) {
				return false
			}
		} else if !t.search(e.child, q, fn) {
			return false
		}
	}
	return true
}

// SearchRect calls fn for every item whose rectangle intersects the
// window q — one window query replaces a batch of SearchPoint probes when
// the query cells decompose into rectangles. The window is not retained.
func (t *Tree) SearchRect(q grid.Rect, fn func(Item) bool) {
	t.Search(q, fn)
}

// SearchPoint calls fn for every item whose rectangle contains the
// coordinate.
func (t *Tree) SearchPoint(c grid.Coord, fn func(Item) bool) {
	t.Search(grid.Rect{Lo: c, Hi: c}, fn)
}

// Items returns all indexed items in unspecified order.
func (t *Tree) Items() []Item {
	out := make([]Item, 0, t.size)
	var walk func(*node)
	walk = func(n *node) {
		for i := range n.entries {
			if n.leaf {
				out = append(out, Item{Rect: n.entries[i].rect, ID: n.entries[i].id})
			} else {
				walk(n.entries[i].child)
			}
		}
	}
	walk(t.root)
	return out
}

// Height returns the number of levels (1 for a lone leaf root).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.entries[0].child {
		h++
	}
	return h
}

// BulkLoad builds a tree from items using sort-tile-recursive packing,
// which produces better-clustered nodes than repeated insertion and is used
// when rebuilding the index for a reopened lineage store.
func BulkLoad(rank int, items []Item) *Tree {
	t := New(rank)
	if len(items) == 0 {
		return t
	}
	ents := make([]entry, len(items))
	for i, it := range items {
		ents[i] = entry{rect: it.Rect, id: it.ID}
	}
	leaves := tile(ents, 0, rank, t.maxEntries)
	level := make([]*node, len(leaves))
	for i, le := range leaves {
		level[i] = &node{leaf: true, entries: le}
	}
	t.size = len(items)
	// Build upper levels by tiling node MBRs until one node remains.
	for len(level) > 1 {
		parentEnts := make([]entry, len(level))
		for i, n := range level {
			parentEnts[i] = entry{rect: mbr(n), child: n}
		}
		groups := tile(parentEnts, 0, rank, t.maxEntries)
		next := make([]*node, len(groups))
		for i, g := range groups {
			next[i] = &node{leaf: false, entries: g}
		}
		level = next
	}
	t.root = level[0]
	return t
}

// tile recursively sorts entries by successive dimensions and chops them
// into groups of at most max entries (STR packing).
func tile(ents []entry, dim, rank, max int) [][]entry {
	if len(ents) <= max {
		return [][]entry{ents}
	}
	sort.SliceStable(ents, func(i, j int) bool {
		return center(ents[i].rect, dim) < center(ents[j].rect, dim)
	})
	if dim == rank-1 {
		var groups [][]entry
		for i := 0; i < len(ents); i += max {
			end := i + max
			if end > len(ents) {
				end = len(ents)
			}
			groups = append(groups, ents[i:end:end])
		}
		return groups
	}
	nGroups := int(math.Ceil(float64(len(ents)) / float64(max)))
	slabs := int(math.Ceil(math.Pow(float64(nGroups), 1/float64(rank-dim))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := int(math.Ceil(float64(len(ents)) / float64(slabs)))
	var groups [][]entry
	for i := 0; i < len(ents); i += slabSize {
		end := i + slabSize
		if end > len(ents) {
			end = len(ents)
		}
		groups = append(groups, tile(ents[i:end:end], dim+1, rank, max)...)
	}
	return groups
}

func center(r grid.Rect, d int) float64 { return float64(r.Lo[d]+r.Hi[d]) / 2 }

func mbr(n *node) grid.Rect {
	r := n.entries[0].rect
	for i := 1; i < len(n.entries); i++ {
		r = r.Union(n.entries[i].rect)
	}
	return r
}

func rectAreaF(r grid.Rect) float64 {
	a := 1.0
	for d := range r.Lo {
		a *= float64(r.Hi[d] - r.Lo[d] + 1)
	}
	return a
}

// CheckInvariants validates structural invariants (every child MBR is
// contained in its parent entry rect, leaf depth uniform, fill bounds).
// Used by tests.
func (t *Tree) CheckInvariants() error {
	depth := -1
	var walk func(n *node, level int, root bool) error
	walk = func(n *node, level int, root bool) error {
		if !root && (len(n.entries) < t.minEntries || len(n.entries) > t.maxEntries) {
			// Bulk-loaded trees may have one under-filled trailing node
			// per level; allow >=1 instead of strict minimum.
			if len(n.entries) < 1 || len(n.entries) > t.maxEntries {
				return fmt.Errorf("rtree: node fill %d outside [1,%d]", len(n.entries), t.maxEntries)
			}
		}
		if n.leaf {
			if depth == -1 {
				depth = level
			} else if depth != level {
				return fmt.Errorf("rtree: leaves at depths %d and %d", depth, level)
			}
			return nil
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.child == nil {
				return fmt.Errorf("rtree: internal entry without child")
			}
			if !e.rect.Equal(mbr(e.child)) {
				return fmt.Errorf("rtree: stale MBR %v for child MBR %v", e.rect, mbr(e.child))
			}
			if err := walk(e.child, level+1, false); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.root, 0, true)
}
