package rtree

import (
	"encoding/binary"
	"fmt"

	"subzero/internal/binenc"
)

// Encode serializes the tree's items (rank, count, then rect+id per item).
// Decoding bulk-loads a fresh tree, so node structure need not be
// preserved; this keeps the format trivially forward-compatible and lets a
// reopened store regain a well-packed index.
func (t *Tree) Encode() []byte {
	items := t.Items()
	buf := make([]byte, 0, 16+len(items)*12)
	buf = binary.AppendUvarint(buf, uint64(t.rank))
	buf = binary.AppendUvarint(buf, uint64(len(items)))
	for _, it := range items {
		buf = binenc.AppendRect(buf, it.Rect)
		buf = binary.AppendUvarint(buf, it.ID)
	}
	return buf
}

// Decode reconstructs a tree from Encode output via STR bulk load.
func Decode(data []byte) (*Tree, error) {
	rank, read := binary.Uvarint(data)
	if read <= 0 || rank == 0 || rank > 64 {
		return nil, fmt.Errorf("rtree: bad encoded rank")
	}
	off := read
	count, read := binary.Uvarint(data[off:])
	if read <= 0 {
		return nil, fmt.Errorf("rtree: truncated item count")
	}
	off += read
	items := make([]Item, 0, count)
	for i := uint64(0); i < count; i++ {
		r, n, err := binenc.DecodeRect(data[off:])
		if err != nil {
			return nil, fmt.Errorf("rtree: item %d: %w", i, err)
		}
		off += n
		id, read := binary.Uvarint(data[off:])
		if read <= 0 {
			return nil, fmt.Errorf("rtree: truncated item %d id", i)
		}
		off += read
		items = append(items, Item{Rect: r, ID: id})
	}
	return BulkLoad(int(rank), items), nil
}

// EncodedLen estimates the serialized size without materializing it; the
// cost model charges this against the storage budget for *Many encodings.
func (t *Tree) EncodedLen() int {
	n := 10
	for _, it := range t.Items() {
		n += 2 // rank varint + id varint lower bound
		for d := range it.Rect.Lo {
			n += uvarintLen(uint64(it.Rect.Lo[d])) + uvarintLen(uint64(it.Rect.Hi[d]-it.Rect.Lo[d]))
		}
		n += uvarintLen(it.ID)
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
