package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestJSONReportRoundTrip(t *testing.T) {
	tbl := NewTable("Figure X", "strategy", "disk", "runtime")
	tbl.AddRow("FullOne", Bytes(2048), 1500*time.Microsecond)
	tbl.AddRow("Map", Bytes(0), 10*time.Nanosecond)

	var rep JSONReport
	rep.Add(tbl)
	if rep.Len() != 1 {
		t.Fatalf("Len = %d", rep.Len())
	}

	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Figures []JSONTable `json:"figures"`
	}
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Figures) != 1 {
		t.Fatalf("figures = %d", len(decoded.Figures))
	}
	fig := decoded.Figures[0]
	if fig.Title != "Figure X" || len(fig.Headers) != 3 || len(fig.Rows) != 2 {
		t.Fatalf("figure = %+v", fig)
	}
	// Cells carry the same formatting as the text tables.
	if fig.Rows[0][1] != "2.0KB" || fig.Rows[0][2] != "1.50ms" {
		t.Fatalf("row formatting = %v", fig.Rows[0])
	}
}

func TestJSONReportEmptyWritesValidEnvelope(t *testing.T) {
	var rep JSONReport
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if _, ok := decoded["figures"]; !ok {
		t.Fatalf("envelope missing figures: %s", blob)
	}
}
