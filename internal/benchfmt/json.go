package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// JSONTable is the machine-readable form of one rendered Table. Rows keep
// the same formatted strings as the text output, so a tracked BENCH.json
// diff reads like the printed figures.
type JSONTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// JSONTable converts the table's accumulated rows.
func (t *Table) JSONTable() JSONTable {
	rows := make([][]string, len(t.rows))
	for i, row := range t.rows {
		rows[i] = append([]string(nil), row...)
	}
	return JSONTable{Title: t.Title, Headers: append([]string(nil), t.Headers...), Rows: rows}
}

// JSONReport accumulates figure tables for a machine-readable benchmark
// artifact (BENCH.json), so the bench trajectory can be tracked across
// changes. It is safe for concurrent Add calls.
type JSONReport struct {
	mu      sync.Mutex
	figures []JSONTable
}

// Add records one table.
func (r *JSONReport) Add(t *Table) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.figures = append(r.figures, t.JSONTable())
}

// Len returns how many tables were recorded.
func (r *JSONReport) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.figures)
}

// jsonEnvelope is the on-disk layout of a JSONReport.
type jsonEnvelope struct {
	Figures []JSONTable `json:"figures"`
}

// WriteFile marshals the report to path, indented for diffable tracking.
func (r *JSONReport) WriteFile(path string) error {
	r.mu.Lock()
	figures := append([]JSONTable(nil), r.figures...)
	r.mu.Unlock()
	if figures == nil {
		figures = []JSONTable{}
	}
	blob, err := json.MarshalIndent(jsonEnvelope{Figures: figures}, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: marshal report: %w", err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return fmt.Errorf("benchfmt: write report: %w", err)
	}
	return nil
}
