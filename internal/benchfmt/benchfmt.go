// Package benchfmt formats benchmark measurements as the aligned text
// tables the subzero-bench harness prints — one table or series per paper
// figure.
package benchfmt

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table accumulates rows and prints them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v unless they are
// durations or byte counts, which get human units.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = format(v)
	}
	t.rows = append(t.rows, row)
}

func format(v any) string {
	switch x := v.(type) {
	case time.Duration:
		return Duration(x)
	case Bytes:
		return ByteCount(int64(x))
	case float64:
		return fmt.Sprintf("%.3g", x)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Bytes marks an int64 as a byte count for formatting.
type Bytes int64

// Duration renders a duration with three significant digits.
func Duration(d time.Duration) string {
	switch {
	case d <= 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// ByteCount renders a byte count with binary units.
func ByteCount(n int64) string {
	switch {
	case n < 0:
		return "-" + ByteCount(-n)
	case n < 1024:
		return fmt.Sprintf("%dB", n)
	case n < 1024*1024:
		return fmt.Sprintf("%.1fKB", float64(n)/1024)
	case n < 1024*1024*1024:
		return fmt.Sprintf("%.2fMB", float64(n)/(1024*1024))
	default:
		return fmt.Sprintf("%.2fGB", float64(n)/(1024*1024*1024))
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
		fmt.Fprintf(w, "%s\n", strings.Repeat("=", len(t.Title)))
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	printRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Ratio formats a/b as "N.Nx" (or "-" when b is zero).
func Ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", a/b)
}
