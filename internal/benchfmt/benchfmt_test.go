package benchfmt

import (
	"strings"
	"testing"
	"time"
)

func TestDuration(t *testing.T) {
	cases := map[time.Duration]string{
		0:                       "0",
		500 * time.Nanosecond:   "500ns",
		2500 * time.Nanosecond:  "2.5µs",
		3 * time.Millisecond:    "3.00ms",
		1500 * time.Millisecond: "1.50s",
	}
	for d, want := range cases {
		if got := Duration(d); got != want {
			t.Errorf("Duration(%v)=%q, want %q", d, got, want)
		}
	}
}

func TestByteCount(t *testing.T) {
	cases := map[int64]string{
		0:       "0B",
		512:     "512B",
		2048:    "2.0KB",
		3 << 20: "3.00MB",
		5 << 30: "5.00GB",
		-2048:   "-2.0KB",
	}
	for n, want := range cases {
		if got := ByteCount(n); got != want {
			t.Errorf("ByteCount(%d)=%q, want %q", n, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Figure X", "strategy", "disk", "time")
	tab.AddRow("BlackBox", Bytes(1024), 2*time.Millisecond)
	tab.AddRow("SubZero", Bytes(10*1024*1024), 150*time.Microsecond)
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Figure X", "strategy", "BlackBox", "1.0KB", "10.00MB", "2.00ms", "150.0µs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 2) != "5.0x" {
		t.Fatalf("Ratio=%s", Ratio(10, 2))
	}
	if Ratio(1, 0) != "-" {
		t.Fatal("zero denominator")
	}
}
