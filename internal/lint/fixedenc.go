package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// fixedEncPackages are the package-path tails whose persisted encodings
// must stay timing-independent.
var fixedEncPackages = map[string]bool{
	"binenc":  true,
	"lineage": true,
	"kvstore": true,
}

// FixedEnc enforces timing-independent store encodings: durations (and
// other wall-clock-derived values) written by the serialization packages
// must use fixed-width helpers, never varint. A varint-encoded duration
// makes the record's byte size — and therefore LineageBytes, SizeBytes,
// and every size-based benchmark assertion — depend on how fast the run
// happened to execute.
var FixedEnc = &Analyzer{
	Name: "fixedenc",
	Doc: "check that durations and stats are encoded fixed-width, never " +
		"varint, so store sizes stay timing-independent",
	Run: runFixedEnc,
}

func runFixedEnc(pass *Pass) error {
	if !fixedEncPackages[pkgPathTail(pass.Pkg.Path())] {
		return nil
	}
	InspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isVarintEncoder(pass.TypesInfo, call) || len(call.Args) == 0 {
			return true
		}
		val := call.Args[len(call.Args)-1]
		if timingDerived(pass.TypesInfo, val) {
			pass.Reportf(call.Pos(),
				"varint encoding of a wall-clock-derived value: the stored size would depend on timing; use a fixed-width encoding (binary.LittleEndian.AppendUint64)")
		}
		return true
	})
	return nil
}

// isVarintEncoder matches encoding/binary's varint writers and any
// varint-named helper exported by a binenc package.
func isVarintEncoder(info *types.Info, call *ast.CallExpr) bool {
	if isPkgFunc(info, call, "encoding/binary",
		"PutUvarint", "PutVarint", "AppendUvarint", "AppendVarint") {
		return true
	}
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return pkgPathTail(fn.Pkg().Path()) == "binenc" &&
		strings.Contains(strings.ToLower(fn.Name()), "varint")
}

// timingDerived reports whether the expression's value derives from a
// time.Duration or a wall-clock reading, through any chain of
// conversions, arithmetic, and accessor methods.
func timingDerived(info *types.Info, expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	if tv, ok := info.Types[expr]; ok && isDuration(tv.Type) {
		return true
	}
	switch e := expr.(type) {
	case *ast.CallExpr:
		if isConversion(info, e) && len(e.Args) == 1 {
			return timingDerived(info, e.Args[0])
		}
		return timingAccessor(info, e)
	case *ast.BinaryExpr:
		return timingDerived(info, e.X) || timingDerived(info, e.Y)
	case *ast.UnaryExpr:
		return timingDerived(info, e.X)
	}
	return false
}

// timingAccessor matches method calls that extract a number from a
// duration or a wall-clock time: d.Nanoseconds(), t.UnixNano(), ...
func timingAccessor(info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call)
	if fn == nil {
		return false
	}
	sig := fn.Signature()
	if sig == nil || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	switch {
	case isDuration(recv):
		return true
	case isNamed(recv, "time", "Time"):
		return strings.HasPrefix(fn.Name(), "Unix")
	}
	return false
}
