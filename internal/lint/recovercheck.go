package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RecoverCheck flags recover() uses that swallow the panic value: a bare
// `recover()` statement, `_ = recover()`, or a comparison like
// `recover() != nil` that tests for a panic without binding it. A
// containment site that discards the value turns every future panic into
// a silent no-op — no message, no stack, no trace ID — which is exactly
// the failure mode the fault-injection work exists to prevent. Bind the
// value (`if rec := recover(); rec != nil { ... }`) and carry it into a
// structured error (fault.AsError) or a log record.
var RecoverCheck = &Analyzer{
	Name: "recovercheck",
	Doc: "check that recover() binds the panic value instead of " +
		"swallowing it; containment must preserve evidence",
	Run: runRecoverCheck,
}

func runRecoverCheck(pass *Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if isRecoverCall(info, n.X) {
					pass.Reportf(n.Pos(), "recover() swallows the panic value: bind it and carry it into an error or log record")
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if isRecoverCall(info, rhs) && i < len(n.Lhs) && isBlankIdent(n.Lhs[i]) {
						pass.Reportf(n.Pos(), "recover() swallows the panic value: bind it instead of assigning to _")
					}
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if (isRecoverCall(info, n.X) && isNilExpr(info, n.Y)) ||
					(isRecoverCall(info, n.Y) && isNilExpr(info, n.X)) {
					pass.Reportf(n.Pos(), "recover() swallows the panic value: use `if rec := recover(); rec != nil` so the value survives")
				}
			}
			return true
		})
	}
	return nil
}

// isRecoverCall reports whether e is a call of the recover builtin.
func isRecoverCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "recover"
}

func isBlankIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}
