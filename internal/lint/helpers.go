package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// namedType unwraps aliases and pointers down to the *types.Named core of
// t, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamed reports whether t (possibly behind pointers/aliases) is the
// named type pkgPath.name. pkgPath matches exactly, or by "/"-suffix so
// fixture modules (e.g. badmod/internal/bitmap) satisfy checks written
// against subzero's package layout.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	return pathMatches(n.Obj().Pkg().Path(), pkgPath)
}

// pathMatches reports whether got is want or ends in "/"+want.
func pathMatches(got, want string) bool {
	return got == want || strings.HasSuffix(got, "/"+want)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

// isDuration reports whether t is time.Duration.
func isDuration(t types.Type) bool {
	return isNamed(t, "time", "Duration")
}

// staticCallee resolves the *types.Func a call statically dispatches to,
// or nil for dynamic calls (function values, interface methods resolve to
// the interface method object).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPkgFunc reports whether the call statically resolves to a function of
// the given package path (suffix-matched) with one of the given names.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || !pathMatches(fn.Pkg().Path(), pkgPath) {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// enclosingFuncDecl returns the innermost FuncDecl on the stack, or nil.
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// pkgPathTail returns the last element of an import path.
func pkgPathTail(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
