package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolReturn checks that values obtained from bitmap.Pool.Get or
// sync.Pool.Get reach the matching Put on every return path. A pooled
// bitmap leaked on an error path silently degrades the pool back to
// per-query allocation — exactly the regression the pooling work was
// measured against.
//
// The analysis is local and ownership-aware rather than a full CFG
// dataflow: a Get-value that escapes the function (returned, stored into
// a field/container, or handed to another call) transfers ownership and
// is not the Get-site's responsibility anymore. For values that stay
// local, either a deferred Put must exist, or no return statement may
// occur between the Get and the first Put.
var PoolReturn = &Analyzer{
	Name: "poolreturn",
	Doc: "check that pool.Get values are returned with Put on every " +
		"path, including error and early-abort paths",
	Run: runPoolReturn,
}

func runPoolReturn(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkPoolFunc(pass, fd)
			}
		}
	}
	return nil
}

// poolUse accumulates what one function does with one Get-value.
type poolUse struct {
	getPos      token.Pos
	deferredPut bool
	firstPutPos token.Pos
	putCount    int
	escapes     bool
	reassigned  bool
	leakReturns []token.Pos // returns between Get and first Put
}

func checkPoolFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Find `x := pool.Get(...)` bindings (possibly via type assertion for
	// sync.Pool) and dropped Get results.
	uses := make(map[*types.Var]*poolUse)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isPoolGet(info, call) {
				pass.Reportf(call.Pos(), "result of pool Get is dropped: the pooled value can never be returned with Put")
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			rhs := ast.Unparen(n.Rhs[0])
			if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
				rhs = ast.Unparen(ta.X)
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isPoolGet(info, call) {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				pass.Reportf(call.Pos(), "result of pool Get is dropped: the pooled value can never be returned with Put")
				return true
			}
			obj, _ := info.Defs[id].(*types.Var)
			if obj == nil {
				obj, _ = info.Uses[id].(*types.Var)
			}
			if obj != nil {
				if _, dup := uses[obj]; !dup {
					uses[obj] = &poolUse{getPos: call.Pos()}
				}
			}
		}
		return true
	})
	if len(uses) == 0 {
		return
	}

	classifyPoolUses(pass, fd, uses)

	for obj, u := range uses {
		switch {
		case u.reassigned, u.deferredPut:
			// Rebound values are beyond this local analysis; a deferred
			// Put covers every path by construction.
		case u.escapes:
			// Ownership transferred: returned, stored, or handed off.
		case u.putCount == 0:
			pass.Reportf(u.getPos,
				"%q is obtained from a pool but never returned with Put on any path", obj.Name())
		default:
			for _, pos := range u.leakReturns {
				pass.Reportf(pos,
					"return leaks pooled value %q: no Put on this path (defer the Put, or Put before returning)", obj.Name())
			}
		}
	}
}

// classifyPoolUses walks the function recording how each tracked value is
// used: Put calls (deferred or not), escapes, reassignments, and return
// statements that precede the first Put.
func classifyPoolUses(pass *Pass, fd *ast.FuncDecl, uses map[*types.Var]*poolUse) {
	info := pass.TypesInfo

	lookup := func(id *ast.Ident) *poolUse {
		obj, _ := info.Uses[id].(*types.Var)
		if obj == nil {
			obj, _ = info.Defs[id].(*types.Var)
		}
		if obj == nil {
			return nil
		}
		return uses[obj]
	}

	var returns []token.Pos
	stack := make([]ast.Node, 0, 32)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, ret.Pos())
		}
		if id, ok := n.(*ast.Ident); ok {
			if u := lookup(id); u != nil && id.Pos() > u.getPos {
				classifyUse(info, id, u, stack)
			}
		}
		stack = append(stack, n)
		return true
	})

	// Returns between a Get and its first Put leak on that path.
	for _, u := range uses {
		if u.putCount == 0 || u.deferredPut {
			continue
		}
		for _, rpos := range returns {
			if rpos > u.getPos && rpos < u.firstPutPos {
				u.leakReturns = append(u.leakReturns, rpos)
			}
		}
	}
}

// classifyUse records what one identifier occurrence does with the
// tracked pooled value.
func classifyUse(info *types.Info, id *ast.Ident, u *poolUse, stack []ast.Node) {
	parent := innermost(stack, 0)
	switch p := parent.(type) {
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == id {
				u.reassigned = true
				return
			}
		}
		// id on the RHS: escapes unless assigned to a plain local ident.
		for _, rhs := range p.Rhs {
			if containsIdent(rhs, id) {
				for _, lhs := range p.Lhs {
					if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
						u.escapes = true
						return
					}
				}
				// Plain ident alias: treat as reassignment-like handoff.
				u.escapes = true
				return
			}
		}
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == id {
				if isPoolPut(info, p) {
					u.putCount++
					if u.firstPutPos == 0 || p.Pos() < u.firstPutPos {
						u.firstPutPos = p.Pos()
					}
					if underDefer(stack) {
						u.deferredPut = true
					}
				} else {
					u.escapes = true
				}
				return
			}
		}
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.KeyValueExpr:
		u.escapes = true
	}
}

// innermost returns the stack entry n levels above the current node.
func innermost(stack []ast.Node, n int) ast.Node {
	idx := len(stack) - 1 - n
	if idx < 0 {
		return nil
	}
	return stack[idx]
}

// underDefer reports whether the stack passes through a DeferStmt (a
// direct `defer pool.Put(x)` or a deferred closure).
func underDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// containsIdent reports whether expr contains this exact identifier node.
func containsIdent(expr ast.Expr, id *ast.Ident) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if n == id {
			found = true
		}
		return !found
	})
	return found
}

// isPoolGet reports whether the call is (*bitmap.Pool).Get or
// (*sync.Pool).Get.
func isPoolGet(info *types.Info, call *ast.CallExpr) bool {
	return isPoolMethod(info, call, "Get")
}

// isPoolPut reports whether the call is (*bitmap.Pool).Put or
// (*sync.Pool).Put.
func isPoolPut(info *types.Info, call *ast.CallExpr) bool {
	return isPoolMethod(info, call, "Put")
}

func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := staticCallee(info, call)
	if fn == nil || fn.Name() != name {
		return false
	}
	sig := fn.Signature()
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	return isNamed(t, "sync", "Pool") || isNamed(t, "internal/bitmap", "Pool")
}
