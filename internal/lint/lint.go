// Package lint implements subzerolint, the static-analysis suite that
// mechanically enforces the invariants SubZero's concurrent service
// depends on: context propagation into every blocking path (ctxflow),
// no mixing of sync/atomic and plain access to the same variable
// (atomicfield), pool values returned on every path (poolreturn),
// fixed-width — never varint — encoding of durations so store sizes
// stay timing-independent (fixedenc), and explicitly json-tagged,
// wire-safe Wire* DTOs (wiretag).
//
// The suite is intentionally built on the standard library alone
// (go/ast, go/types, and the go command): the repository vendors no
// external modules, so the Analyzer/Pass/Diagnostic surface here mirrors
// golang.org/x/tools/go/analysis closely enough that the analyzers could
// be ported to it mechanically, while the driver loads packages through
// `go list -export` and the compiler's export data (see load.go).
//
// Findings are suppressed with an explicit, justified directive on the
// flagged line or the line above it:
//
//	//lint:ignore subzero/<analyzer> <reason>
//
// A directive without a reason is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Diagnostics are reported
// under the name "subzero/<Name>".
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// directives; short, lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description `subzerolint help` prints.
	Doc string
	// Run performs the check over one package.
	Run func(*Pass) error
}

// String returns the diagnostic category, "subzero/<name>".
func (a *Analyzer) String() string { return "subzero/" + a.Name }

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one raw finding, positioned by token.Pos; the runner
// resolves it against the file set and the suppression directives.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// A Finding is a resolved diagnostic as printed to the user.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: subzero/%s", f.Pos, f.Message, f.Analyzer)
}

// IgnoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string // bare analyzer name ("ctxflow"), or "*"
	reason   string
	line     int
	pos      token.Pos
}

// directivePrefix introduces a suppression comment.
const directivePrefix = "//lint:ignore "

// parseDirectives extracts the //lint:ignore directives of a file,
// reporting malformed ones (no analyzer, or no reason) as findings.
func parseDirectives(fset *token.FileSet, file *ast.File, report func(Diagnostic)) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, strings.TrimSpace(directivePrefix)) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, strings.TrimSpace(directivePrefix))
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				report(Diagnostic{Analyzer: "ignore", Pos: c.Pos(),
					Message: "malformed //lint:ignore directive: missing analyzer name"})
				continue
			}
			name := strings.TrimPrefix(fields[0], "subzero/")
			reason := strings.TrimSpace(strings.TrimPrefix(rest, " "+fields[0]))
			reason = strings.TrimSpace(strings.TrimPrefix(reason, fields[0]))
			if reason == "" {
				report(Diagnostic{Analyzer: "ignore", Pos: c.Pos(),
					Message: fmt.Sprintf("//lint:ignore subzero/%s needs a reason", name)})
				continue
			}
			out = append(out, ignoreDirective{
				analyzer: name,
				reason:   reason,
				line:     fset.Position(c.End()).Line,
				pos:      c.Pos(),
			})
		}
	}
	return out
}

// RunAnalyzers executes the analyzers over one loaded package and
// resolves suppressions. Diagnostics positioned in _test.go files are
// dropped: the invariants guard production code, and tests legitimately
// use context.Background, bare pools, and ad-hoc encodings.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var raw []Diagnostic
	var directives []ignoreDirective
	for _, f := range pkg.Files {
		directives = append(directives, parseDirectives(pkg.Fset, f, func(d Diagnostic) {
			raw = append(raw, d)
		})...)
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}

	var out []Finding
	for _, d := range raw {
		pos := pkg.Fset.Position(d.Pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		if suppressed(directives, pos, d.Analyzer) {
			continue
		}
		out = append(out, Finding{Analyzer: d.Analyzer, Pos: pos, Message: d.Message})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// suppressed reports whether a directive on the diagnostic's line, or the
// line directly above it, names the diagnostic's analyzer.
func suppressed(directives []ignoreDirective, pos token.Position, analyzer string) bool {
	for _, d := range directives {
		if d.analyzer != analyzer && d.analyzer != "*" {
			continue
		}
		if d.line == pos.Line || d.line == pos.Line-1 {
			return true
		}
	}
	return false
}

// InspectStack walks each file keeping the ancestor stack: fn sees every
// node with its path from the file root (innermost ancestor last, node
// itself excluded). Returning false skips the node's children.
func InspectStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}
