// Package linttest runs subzerolint analyzers over testdata fixture
// packages and compares the diagnostics against expectations written in
// the fixtures themselves, in the style of golang.org/x/tools'
// analysistest:
//
//	ctx := context.Background() // want `context\.Background\(\) in library code`
//
// Every diagnostic must be matched by a `// want "regexp"` (or
// backquoted) comment on its line, and every want comment must be
// matched by a diagnostic; anything unmatched on either side fails the
// test. Fixtures are real packages under testdata — they typecheck
// against the module and the standard library, so analyzer behavior is
// exercised on the same typed ASTs the production driver sees.
package linttest

import (
	"go/ast"
	"regexp"
	"strings"
	"testing"

	"subzero/internal/lint"
)

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run loads the fixture packages named by the patterns (relative to the
// test's working directory), applies the analyzer, and diffs diagnostics
// against the fixtures' want comments.
func Run(t *testing.T, a *lint.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		t.Fatalf("load fixtures %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v", patterns)
	}
	for _, pkg := range pkgs {
		findings, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		wants := collectWants(t, pkg)
		for _, f := range findings {
			if !matchWant(wants, f.Pos.Filename, f.Pos.Line, f.Message) {
				t.Errorf("%s: unexpected diagnostic: %s [subzero/%s]", f.Pos, f.Message, f.Analyzer)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.rx)
			}
		}
	}
}

// matchWant consumes the first unmatched want on the diagnostic's line
// whose regexp matches the message.
func matchWant(wants []*want, file string, line int, message string) bool {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.rx.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses the `// want` comments of every fixture file.
func collectWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				out = append(out, parseWant(t, pkg, c)...)
			}
		}
	}
	return out
}

// parseWant extracts zero or more expectations from one comment. The
// comment position anchors the expected diagnostic line.
func parseWant(t *testing.T, pkg *lint.Package, c *ast.Comment) []*want {
	t.Helper()
	text := strings.TrimPrefix(c.Text, "//")
	idx := strings.Index(text, "want ")
	if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	rest := strings.TrimSpace(text[idx+len("want "):])
	var out []*want
	for rest != "" {
		quote := rest[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want comment: expectations must be quoted: %s", pos, c.Text)
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			t.Fatalf("%s: malformed want comment: unterminated %c-quote: %s", pos, quote, c.Text)
		}
		pattern := rest[1 : 1+end]
		rx, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
		}
		out = append(out, &want{file: pos.Filename, line: pos.Line, rx: rx})
		rest = strings.TrimSpace(rest[1+end+1:])
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment carries no expectations: %s", pos, c.Text)
	}
	return out
}
