package lint

// All returns the full subzerolint suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicField,
		CtxFlow,
		FixedEnc,
		PoolReturn,
		RecoverCheck,
		WireTag,
	}
}

// ByName resolves one analyzer, accepting either the bare name or the
// "subzero/"-prefixed diagnostic category.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name || "subzero/"+a.Name == name {
			return a
		}
	}
	return nil
}
