package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicField enforces the all-or-nothing atomics discipline: once any
// code accesses a variable through sync/atomic (atomic.AddInt64(&x, ...),
// atomic.LoadUint64(&x), ...), every other access to that variable in
// the package must also go through sync/atomic. A plain read racing an
// atomic write is a data race the race detector only catches when the
// interleaving happens; this check makes it structural. Typed atomics
// (atomic.Int64 & co.) are immune by construction and preferred.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "check that variables accessed via sync/atomic are never read " +
		"or written plainly elsewhere",
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: collect every variable (struct field or package-level var)
	// whose address is taken by a sync/atomic call.
	atomicVars := make(map[*types.Var]ast.Node)
	InspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicCall(pass.TypesInfo, call) {
			return true
		}
		for _, arg := range call.Args {
			if v := addressedVar(pass.TypesInfo, arg); v != nil {
				if _, seen := atomicVars[v]; !seen {
					atomicVars[v] = call
				}
			}
		}
		return true
	})
	if len(atomicVars) == 0 {
		return nil
	}

	// Pass 2: every other use of those variables must itself be the
	// &-operand of a sync/atomic call.
	InspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, _ := pass.TypesInfo.Uses[id].(*types.Var)
		if obj == nil {
			return true
		}
		if _, tracked := atomicVars[obj]; !tracked {
			return true
		}
		if insideAtomicOperand(pass.TypesInfo, stack) {
			return true
		}
		pass.Reportf(id.Pos(),
			"%q is accessed with sync/atomic elsewhere in this package; plain access is a data race — use sync/atomic consistently or a typed atomic",
			id.Name)
		return true
	})
	return nil
}

// isAtomicCall reports whether the call is a sync/atomic package function
// that operates through a pointer (Add*, Load*, Store*, Swap*,
// CompareAndSwap*, And*, Or*).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	// Typed-atomic methods have receivers; only the legacy pointer
	// functions mix with plain access.
	if fn.Signature().Recv() != nil {
		return false
	}
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// addressedVar resolves &expr arguments to the field or package-level
// variable being addressed, or nil.
func addressedVar(info *types.Info, arg ast.Expr) *types.Var {
	unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || unary.Op.String() != "&" {
		return nil
	}
	switch x := ast.Unparen(unary.X).(type) {
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		// Package-qualified var: pkg.X
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v
	}
	return nil
}

// insideAtomicOperand reports whether the innermost interesting ancestors
// are `&<expr>` directly inside a sync/atomic call's argument list.
func insideAtomicOperand(info *types.Info, stack []ast.Node) bool {
	// Walk outward past the selector chain to the unary & and its call.
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.SelectorExpr); ok {
			i--
			continue
		}
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 1 {
		return false
	}
	unary, ok := stack[i].(*ast.UnaryExpr)
	if !ok || unary.Op.String() != "&" {
		return false
	}
	for j := i - 1; j >= 0; j-- {
		if _, ok := stack[j].(*ast.ParenExpr); ok {
			continue
		}
		call, ok := stack[j].(*ast.CallExpr)
		return ok && isAtomicCall(info, call)
	}
	return false
}
