package lint_test

import (
	"strings"
	"testing"

	"subzero/internal/lint"
)

// TestIgnoreDirectiveContract pins the suppression rules: a directive
// without a reason is itself a finding and suppresses nothing, and a
// directive naming a different analyzer leaves the diagnostic standing.
func TestIgnoreDirectiveContract(t *testing.T) {
	pkgs, err := lint.Load(".", "./testdata/src/ignorecheck")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	findings, err := lint.RunAnalyzers(pkgs[0], []*lint.Analyzer{lint.CtxFlow})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	var reasonless, ctxflow int
	for _, f := range findings {
		switch {
		case f.Analyzer == "ignore" && strings.Contains(f.Message, "needs a reason"):
			reasonless++
		case f.Analyzer == "ctxflow":
			ctxflow++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if reasonless != 1 {
		t.Errorf("reasonless-directive findings = %d, want 1", reasonless)
	}
	// Both Background calls must survive: one under a reasonless
	// directive, one under a directive for the wrong analyzer.
	if ctxflow != 2 {
		t.Errorf("unsuppressed ctxflow findings = %d, want 2", ctxflow)
	}
}

// TestRealTreeIsClean locks in the satellite work of this change: the
// production tree carries zero subzerolint findings, so any new finding
// is a regression, not pre-existing noise.
func TestRealTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and analyzes the whole module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, pkg := range pkgs {
		findings, err := lint.RunAnalyzers(pkg, lint.All())
		if err != nil {
			t.Fatalf("run on %s: %v", pkg.PkgPath, err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
}
