package lint_test

import (
	"testing"

	"subzero/internal/lint"
	"subzero/internal/lint/linttest"
)

// Each analyzer runs over a fixture package seeded with violations,
// sanctioned idioms, and a //lint:ignore case; the fixture's want
// comments are the expected diagnostic set.

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, lint.CtxFlow, "./testdata/src/ctxflow")
}

func TestCtxFlowMainPackage(t *testing.T) {
	linttest.Run(t, lint.CtxFlow, "./testdata/src/ctxflow_main")
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, lint.AtomicField, "./testdata/src/atomicfield")
}

func TestPoolReturn(t *testing.T) {
	linttest.Run(t, lint.PoolReturn, "./testdata/src/poolreturn")
}

func TestFixedEnc(t *testing.T) {
	linttest.Run(t, lint.FixedEnc,
		"./testdata/src/fixedenc/lineage", "./testdata/src/fixedenc/other")
}

func TestRecoverCheck(t *testing.T) {
	linttest.Run(t, lint.RecoverCheck, "./testdata/src/recovercheck")
}

func TestWireTag(t *testing.T) {
	linttest.Run(t, lint.WireTag, "./testdata/src/wiretag")
}

func TestByName(t *testing.T) {
	for _, a := range lint.All() {
		if lint.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not resolve", a.Name)
		}
		if lint.ByName("subzero/"+a.Name) != a {
			t.Errorf("ByName(%q) did not resolve", "subzero/"+a.Name)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName accepted an unknown analyzer")
	}
}
