// Package poolreturn is a subzerolint fixture: values obtained from
// bitmap.Pool.Get or sync.Pool.Get must reach the matching Put on every
// return path, unless ownership is transferred out of the function.
package poolreturn

import (
	"errors"
	"sync"

	"subzero/internal/bitmap"
	"subzero/internal/grid"
)

var scratch = sync.Pool{New: func() any { return new([]byte) }}

// Deferred covers every path with one deferred Put: not flagged.
func Deferred() int {
	b := scratch.Get().(*[]byte)
	defer scratch.Put(b)
	return len(*b)
}

// EarlyReturn leaks the pooled bitmap on the error path.
func EarlyReturn(pool *bitmap.Pool, sp *grid.Space, fail bool) error {
	bm := pool.Get(sp)
	if fail {
		return errors.New("abort") // want `return leaks pooled value "bm"`
	}
	pool.Put(bm)
	return nil
}

// NeverPut uses the pooled value but never returns it on any path.
func NeverPut() int {
	b := scratch.Get().(*[]byte) // want `"b" is obtained from a pool but never returned with Put on any path`
	return len(*b)
}

// DroppedResult discards the Get result outright.
func DroppedResult() {
	scratch.Get() // want `result of pool Get is dropped`
}

// Handoff transfers ownership to the caller: not flagged.
func Handoff(pool *bitmap.Pool, sp *grid.Space) *bitmap.Bitmap {
	bm := pool.Get(sp)
	return bm
}

// Balanced puts before the only return: not flagged.
func Balanced(pool *bitmap.Pool, sp *grid.Space) uint64 {
	bm := pool.Get(sp)
	n := bm.Count()
	pool.Put(bm)
	return n
}

// Suppressed documents a deliberate leak with the ignore directive.
func Suppressed() int {
	//lint:ignore subzero/poolreturn fixture exercising the suppression path
	b := scratch.Get().(*[]byte)
	return len(*b)
}
