// Package atomicfield is a subzerolint fixture: variables accessed via
// sync/atomic must never be read or written plainly anywhere else.
package atomicfield

import "sync/atomic"

// counters mixes atomic and plain access on purpose.
type counters struct {
	hits   int64
	misses int64
}

var global int64

// Inc is the atomic side of the mix; these accesses are not flagged.
func (c *counters) Inc() {
	atomic.AddInt64(&c.hits, 1)
	atomic.StoreInt64(&global, 1)
}

// Hits reads the atomically-written field plainly.
func (c *counters) Hits() int64 {
	return c.hits // want `"hits" is accessed with sync/atomic elsewhere in this package`
}

// Misses never mixes: plain access only, not flagged.
func (c *counters) Misses() int64 {
	c.misses++
	return c.misses
}

// Reset writes the atomically-accessed package variable plainly.
func Reset() {
	global = 0 // want `"global" is accessed with sync/atomic elsewhere in this package`
}

// Loaded reads atomically: not flagged.
func (c *counters) Loaded() int64 {
	return atomic.LoadInt64(&c.hits)
}

// Snapshot documents a deliberate plain read with the ignore directive.
func (c *counters) Snapshot() int64 {
	//lint:ignore subzero/atomicfield fixture exercising the suppression path
	return c.hits
}
