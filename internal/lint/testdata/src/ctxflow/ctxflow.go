// Package ctxflow is a subzerolint fixture: context-propagation
// violations in library code, with the diagnostics the analyzer must
// produce and the idioms it must accept.
package ctxflow

import (
	"context"
	"time"
)

// Mint fabricates a context instead of accepting one from the caller.
func Mint() error {
	ctx := context.Background() // want `context\.Background\(\) in library code: accept a context\.Context from the caller and forward it`
	return wait(ctx)
}

// MintTODO is the same straggler spelled with TODO.
func MintTODO() error {
	return wait(context.TODO()) // want `context\.TODO\(\) in library code`
}

// NilGuard is the sanctioned nil-tolerance fallback: not flagged.
func NilGuard(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return wait(ctx)
}

// Dropped accepts a context and never forwards it into the work it does.
func Dropped(ctx context.Context, d time.Duration) time.Duration { // want `context parameter "ctx" is accepted but never forwarded`
	return 2 * d
}

// Second accepts the context in the wrong position.
func Second(d time.Duration, ctx context.Context) error { // want `context\.Context should be the first parameter of Second`
	time.Sleep(d)
	return wait(ctx)
}

// Suppressed documents a deliberate exception with the ignore directive.
func Suppressed() error {
	//lint:ignore subzero/ctxflow fixture exercising the suppression path
	ctx := context.Background()
	return wait(ctx)
}

func wait(ctx context.Context) error {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
