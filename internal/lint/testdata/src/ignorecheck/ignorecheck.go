// Package ignorecheck is a subzerolint fixture for the suppression
// machinery itself: a directive without a reason is a finding and does
// not suppress anything, and a directive naming a different analyzer
// leaves the original diagnostic standing. This fixture is asserted
// directly by a Go test rather than with want comments, because the
// expected diagnostics land on the directive lines themselves.
package ignorecheck

import "context"

// Bare carries a reasonless directive: both the directive and the
// unsuppressed finding must be reported.
func Bare() context.Context {
	//lint:ignore subzero/ctxflow
	return context.Background()
}

// WrongName suppresses the wrong analyzer: the ctxflow finding stands.
func WrongName() context.Context {
	//lint:ignore subzero/wiretag this reason applies to another analyzer
	return context.Background()
}
