// Package lineage is a subzerolint fixture: inside the store-encoding
// packages (binenc, lineage, kvstore), durations and other wall-clock
// readings must be encoded fixed-width — a varint's length depends on
// the value, so store sizes would depend on timing.
package lineage

import (
	"encoding/binary"
	"time"
)

// EncodeStats mixes legitimate varint counts with flagged varint
// timings.
func EncodeStats(buf []byte, pairs int, writeTime time.Duration, flushed time.Time) []byte {
	buf = binary.AppendUvarint(buf, uint64(pairs))                 // ok: a count is timing-independent
	buf = binary.AppendUvarint(buf, uint64(writeTime))             // want `varint encoding of a wall-clock-derived value`
	buf = binary.AppendUvarint(buf, uint64(flushed.UnixNano()))    // want `varint encoding of a wall-clock-derived value`
	buf = binary.LittleEndian.AppendUint64(buf, uint64(writeTime)) // ok: fixed width
	tmp := make([]byte, binary.MaxVarintLen64)
	n := binary.PutUvarint(tmp, uint64(writeTime.Nanoseconds())) // want `varint encoding of a wall-clock-derived value`
	return append(buf, tmp[:n]...)
}

// AppendLegacy keeps a varint duration for format compatibility,
// documented with the ignore directive.
func AppendLegacy(buf []byte, d time.Duration) []byte {
	//lint:ignore subzero/fixedenc fixture exercising the suppression path
	return binary.AppendUvarint(buf, uint64(d))
}
