// Package other sits outside the fixedenc scope (binenc, lineage,
// kvstore): varint-encoding a duration here is legal, so this package
// must produce no findings.
package other

import (
	"encoding/binary"
	"time"
)

// AppendElapsed varint-encodes a duration outside the store packages.
func AppendElapsed(buf []byte, d time.Duration) []byte {
	return binary.AppendUvarint(buf, uint64(d))
}
