// Package wiretag is a subzerolint fixture: every exported field of a
// Wire*-named DTO carries an explicit json tag and a wire-safe type.
package wiretag

import "time"

// WireGood is fully tagged with wire-safe types: not flagged.
type WireGood struct {
	ID        string         `json:"id"`
	ElapsedNS int64          `json:"elapsed_ns"`
	Pages     []WirePage     `json:"pages"`
	ByName    map[string]int `json:"by_name"`
}

// WirePage is a nested sibling DTO, checked at its own declaration.
type WirePage struct {
	N int `json:"n"`
}

// WireBad collects the tag violations.
type WireBad struct {
	Untagged int // want `WireBad\.Untagged has no json tag`
	hidden   int // want `WireBad\.hidden is unexported and will not serialize`
	Unnamed  int `json:",omitempty"` // want `WireBad\.Unnamed json tag has no field name`
}

// WireUnsafe collects the type violations.
type WireUnsafe struct {
	Elapsed time.Duration `json:"elapsed"` // want `time\.Duration on the wire: encode as integer nanoseconds`
	Stamp   time.Time     `json:"stamp"`   // want `time\.Time on the wire`
	Any     any           `json:"any"`     // want `interface types are not self-describing on the wire`
	Done    chan int      `json:"done"`    // want `channels cannot cross the wire`
}

// WireEmbed embeds a field, hiding part of the wire surface.
type WireEmbed struct {
	WireGood // want `WireEmbed embeds a field`
}

// plain is not a DTO: nothing in it is checked.
type plain struct {
	Elapsed time.Duration
	hidden  int
}

// WireSuppressed documents a deliberate exception.
type WireSuppressed struct {
	//lint:ignore subzero/wiretag fixture exercising the suppression path
	Raw any `json:"raw"`
}

// use keeps the unexported bits referenced so the fixture typechecks
// without tripping unused-symbol vet heuristics.
func use() (plain, WireBad) {
	var p plain
	p.hidden++
	var b WireBad
	b.hidden++
	return p, b
}

var _ = use
