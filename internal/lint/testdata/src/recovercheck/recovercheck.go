// Package recovercheck is a subzerolint fixture: recover() must bind the
// panic value so containment sites preserve evidence instead of turning
// panics into silent no-ops.
package recovercheck

import "fmt"

// Swallowed discards the panic value outright: flagged.
func Swallowed() {
	defer func() {
		recover() // want `recover\(\) swallows the panic value`
	}()
}

// BlankAssigned routes the value straight to the blank identifier: flagged.
func BlankAssigned() {
	defer func() {
		_ = recover() // want `recover\(\) swallows the panic value`
	}()
}

// ComparedOnly tests for a panic but never binds it — the error that
// escapes says nothing about what went wrong: flagged.
func ComparedOnly() (err error) {
	defer func() {
		if recover() != nil { // want `recover\(\) swallows the panic value`
			err = fmt.Errorf("something panicked")
		}
	}()
	return nil
}

// NilOnLeft is the same comparison with the operands swapped: flagged.
func NilOnLeft() bool {
	defer func() {
		if nil == recover() { // want `recover\(\) swallows the panic value`
			return
		}
	}()
	return true
}

// Bound is the sanctioned idiom: the value is captured and carried into
// the returned error. Not flagged.
func Bound() (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("panic: %v", rec)
		}
	}()
	return nil
}

// Logged hands the value to a sink without the if-binding form: still a
// use of the value, not flagged.
func Logged(sink func(any)) {
	defer func() {
		sink(recover())
	}()
}

// Ignored documents a sanctioned swallow with the standard directive.
func Ignored() {
	defer func() {
		//lint:ignore subzero/recovercheck fixture exercises the directive
		recover()
	}()
}
