// Command ctxflow_main is a subzerolint fixture: package-main context
// rules. Creating the root context is main's job and is not flagged;
// minting a second context while one is already in scope discards it.
package main

import (
	"context"
	"time"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second) // ok: the root context
	defer cancel()
	if err := run(ctx); err != nil {
		panic(err)
	}
	detached()
}

func run(ctx context.Context) error {
	drain, cancel := context.WithTimeout(context.Background(), time.Second) // want `context\.Background\(\) discards "ctx" already in scope`
	defer cancel()
	<-drain.Done()
	return ctx.Err()
}

func detached() {
	first, cancel := context.WithTimeout(context.Background(), time.Millisecond) // ok: nothing in scope yet
	defer cancel()
	second := context.Background() // want `context\.Background\(\) discards "first" already in scope`
	<-first.Done()
	_ = second.Err()
}
