package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"reflect"
	"strconv"
	"strings"
)

// WireTag enforces the wire-format DTO contract: every exported field of
// a Wire*-named struct carries an explicit json tag with a non-empty
// name, and only wire-safe types cross the boundary — no time.Duration
// (durations travel as int64 nanoseconds with an _ns suffix), no
// time.Time, no interfaces, channels, funcs, and no internal package
// types leaking into the public surface.
var WireTag = &Analyzer{
	Name: "wiretag",
	Doc: "check that Wire* DTO fields carry explicit json tags and only " +
		"wire-safe types",
	Run: runWireTag,
}

func runWireTag(pass *Pass) error {
	InspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || !strings.HasPrefix(ts.Name.Name, "Wire") {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			checkWireField(pass, ts.Name.Name, field)
		}
		return true
	})
	return nil
}

func checkWireField(pass *Pass, dto string, field *ast.Field) {
	if len(field.Names) == 0 {
		pass.Reportf(field.Pos(),
			"%s embeds a field: wire DTOs must spell every field out with an explicit json tag", dto)
		return
	}
	for _, name := range field.Names {
		if !name.IsExported() {
			pass.Reportf(name.Pos(),
				"%s.%s is unexported and will not serialize; export it or remove it from the wire DTO", dto, name.Name)
			continue
		}
		checkJSONTag(pass, dto, name, field)
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok {
			if reason := wireUnsafe(tv.Type, make(map[types.Type]bool)); reason != "" {
				pass.Reportf(name.Pos(), "%s.%s: %s", dto, name.Name, reason)
			}
		}
	}
}

func checkJSONTag(pass *Pass, dto string, name *ast.Ident, field *ast.Field) {
	if field.Tag == nil {
		pass.Reportf(name.Pos(),
			"%s.%s has no json tag: wire field names must be explicit, not derived from the Go name", dto, name.Name)
		return
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		pass.Reportf(field.Tag.Pos(), "%s.%s has an unparsable struct tag", dto, name.Name)
		return
	}
	tag, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		pass.Reportf(name.Pos(),
			"%s.%s has no json tag: wire field names must be explicit, not derived from the Go name", dto, name.Name)
		return
	}
	jsonName, _, _ := strings.Cut(tag, ",")
	if jsonName == "" {
		pass.Reportf(field.Tag.Pos(),
			"%s.%s json tag has no field name: spell the wire name out explicitly", dto, name.Name)
	}
}

// wireUnsafe returns a non-empty reason if the type must not cross the
// wire boundary.
func wireUnsafe(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Alias:
		return wireUnsafe(types.Unalias(u), seen)
	case *types.Basic:
		switch u.Kind() {
		case types.Bool, types.String,
			types.Int, types.Int8, types.Int16, types.Int32, types.Int64,
			types.Uint, types.Uint8, types.Uint16, types.Uint32, types.Uint64,
			types.Float32, types.Float64:
			return ""
		}
		return fmt.Sprintf("%s is not a wire-safe basic type", u)
	case *types.Pointer:
		return wireUnsafe(u.Elem(), seen)
	case *types.Slice:
		return wireUnsafe(u.Elem(), seen)
	case *types.Array:
		return wireUnsafe(u.Elem(), seen)
	case *types.Map:
		if k, ok := u.Key().Underlying().(*types.Basic); !ok || k.Info()&types.IsString == 0 && k.Info()&types.IsInteger == 0 {
			return fmt.Sprintf("map key %s does not serialize to a JSON object key", u.Key())
		}
		return wireUnsafe(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if reason := wireUnsafe(u.Field(i).Type(), seen); reason != "" {
				return reason
			}
		}
		return ""
	case *types.Interface:
		return "interface types are not self-describing on the wire"
	case *types.Chan:
		return "channels cannot cross the wire"
	case *types.Signature:
		return "funcs cannot cross the wire"
	case *types.Named:
		obj := u.Obj()
		if isDuration(u) {
			return "time.Duration on the wire: encode as integer nanoseconds with an _ns field instead"
		}
		if isNamed(u, "time", "Time") {
			return "time.Time on the wire: encode as integer nanoseconds with an _ns field instead"
		}
		if strings.HasPrefix(obj.Name(), "Wire") {
			return "" // sibling DTO, checked at its own declaration
		}
		if obj.Pkg() != nil && strings.Contains(obj.Pkg().Path(), "/internal/") {
			return fmt.Sprintf("internal type %s leaks into the wire format; define a Wire* representation", obj.Name())
		}
		return wireUnsafe(u.Underlying(), seen)
	}
	return ""
}
