package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context propagation into every blocking path:
//
//   - Library (non-main) packages must never mint their own context:
//     context.Background() and context.TODO() are flagged unless they are
//     the nil-tolerance fallback `if ctx == nil { ctx = context.Background() }`
//     at the top of an exported entry point.
//   - In package main, Background/TODO is flagged when the enclosing
//     function already has a context.Context in scope — a parameter or an
//     earlier local — because the existing context is being silently
//     discarded. Detached work (a graceful-shutdown deadline after the
//     root context fired) should derive via context.WithoutCancel
//     instead, keeping the context's values.
//   - A context.Context parameter must come first in the parameter list.
//   - A named context parameter that the function body never references
//     was accepted but dropped: the blocking work it guards is
//     uncancellable.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "check that caller contexts are accepted first, forwarded, and " +
		"never replaced by context.Background/TODO in library code",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	isMain := pass.Pkg.Name() == "main"

	InspectStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			name := backgroundOrTODO(pass.TypesInfo, n)
			if name == "" {
				return true
			}
			if isNilGuardAssign(pass.TypesInfo, n, stack) {
				return true
			}
			if !isMain {
				pass.Reportf(n.Pos(),
					"context.%s() in library code: accept a context.Context from the caller and forward it", name)
				return true
			}
			if fd := enclosingFuncDecl(stack); fd != nil {
				if prior := inScopeCtx(pass.TypesInfo, fd, stack, n); prior != nil {
					pass.Reportf(n.Pos(),
						"context.%s() discards %q already in scope; derive from it (context.WithoutCancel for detached shutdown work)",
						name, prior.Name())
				}
			}
		case *ast.FuncDecl:
			checkCtxParamPosition(pass, n)
			checkCtxParamForwarded(pass, n)
		}
		return true
	})
	return nil
}

// backgroundOrTODO returns "Background" or "TODO" if the call is one of
// those context constructors, else "".
func backgroundOrTODO(info *types.Info, call *ast.CallExpr) string {
	if isPkgFunc(info, call, "context", "Background") {
		return "Background"
	}
	if isPkgFunc(info, call, "context", "TODO") {
		return "TODO"
	}
	return ""
}

// isNilGuardAssign recognizes the API-tolerance idiom
//
//	if ctx == nil {
//		ctx = context.Background()
//	}
//
// which keeps nil-context callers working without hiding a real context.
func isNilGuardAssign(info *types.Info, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || assign.Rhs[0] != call {
		return false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	target := info.Uses[lhs]
	if target == nil {
		target = info.Defs[lhs]
	}
	// The assignment must be the body of an if whose condition is
	// `<lhs> == nil` (either operand order) over the same object.
	for i := len(stack) - 2; i >= 0 && i >= len(stack)-4; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op.String() != "==" {
			return false
		}
		for _, pair := range [2][2]ast.Expr{{cond.X, cond.Y}, {cond.Y, cond.X}} {
			id, ok := pair[0].(*ast.Ident)
			nilIdent, ok2 := pair[1].(*ast.Ident)
			if ok && ok2 && nilIdent.Name == "nil" && target != nil && info.Uses[id] == target {
				return true
			}
		}
		return false
	}
	return false
}

// inScopeCtx returns a context.Context-typed object that is already in
// scope at the given call: a parameter of the enclosing function, or a
// local declared in a statement that completes before the one containing
// the call. The boundary is the enclosing statement's start, so the root
// creation `ctx, stop := signal.NotifyContext(context.Background(), ...)`
// does not count its own LHS as prior scope.
func inScopeCtx(info *types.Info, fd *ast.FuncDecl, stack []ast.Node, call *ast.CallExpr) types.Object {
	if p := ctxParam(info, fd); p != nil {
		return p
	}
	var boundary = call.Pos()
	for i := len(stack) - 1; i >= 0; i-- {
		if stmt, ok := stack[i].(ast.Stmt); ok {
			boundary = stmt.Pos()
			break
		}
	}
	var found types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Defs[id].(*types.Var); ok && isContextType(v.Type()) && id.End() < boundary {
			found = v
		}
		return true
	})
	return found
}

// ctxParam returns the first context.Context parameter object of the
// function, or nil.
func ctxParam(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj, ok := info.Defs[name].(*types.Var); ok && isContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// checkCtxParamPosition flags context parameters that are not first.
func checkCtxParamPosition(pass *Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isContextType(tv.Type) {
			if idx > 0 {
				pass.Reportf(field.Pos(),
					"context.Context should be the first parameter of %s", fd.Name.Name)
			}
			return
		}
		idx += n
	}
}

// checkCtxParamForwarded flags a named, non-blank context parameter the
// body never references: the function accepted a context and dropped it.
func checkCtxParamForwarded(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || len(fd.Body.List) == 0 || fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok || !isContextType(obj.Type()) {
				continue
			}
			used := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					used = true
					return false
				}
				return !used
			})
			if !used {
				pass.Reportf(name.Pos(),
					"context parameter %q is accepted but never forwarded; the work %s does cannot be cancelled",
					name.Name, fd.Name.Name)
			}
		}
	}
}
