package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked target package ready for analysis.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg mirrors the `go list -json` fields the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
}

// Load type-checks the packages matching patterns (relative to dir, e.g.
// "./...") and returns them ready for analysis. It needs no network and
// no GOPATH: `go list -export -deps` resolves the import graph and
// compiles export data into the build cache, and the compiler's gc
// importer consumes that export data directly, so only the target
// packages themselves are parsed and type-checked from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CgoFiles,ImportMap,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	// Vendored or test-variant import spellings resolve through ImportMap.
	for _, p := range targets {
		for src, real := range p.ImportMap {
			if exp, ok := exports[real]; ok {
				exports[src] = exp
			}
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(exp)
	})

	var out []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("lint: %s uses cgo, which the loader does not support", t.ImportPath)
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.Name = t.Name
		out = append(out, pkg)
	}
	return out, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		name := gf
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, gf)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
