package astro

import (
	"context"
	"testing"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/kvstore"
	"subzero/internal/lineage"
	"subzero/internal/query"
	"subzero/internal/workflow"
)

// testConfig is a small sky that keeps tests fast: ~64x250 pixels.
func testConfig() GenConfig {
	cfg := DefaultGenConfig().Scaled(0.125)
	cfg.Stars = 12
	cfg.CosmicRays = 8
	return cfg
}

func TestGenerator(t *testing.T) {
	cfg := testConfig()
	sky, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sky.Exposure1.Shape().Equal(grid.Shape{cfg.Rows, cfg.Cols}) {
		t.Fatalf("shape=%v", sky.Exposure1.Shape())
	}
	if len(sky.StarCenters) != cfg.Stars || len(sky.CR1) != cfg.CosmicRays {
		t.Fatalf("stars=%d crs=%d", len(sky.StarCenters), len(sky.CR1))
	}
	// Cosmic rays must vastly exceed star brightness.
	cr := sky.Exposure1.GetAt(sky.CR1[0])
	if cr < cfg.CRPeak*0.7 {
		t.Fatalf("cosmic ray brightness %f too low", cr)
	}
	// Exposures share stars but differ in cosmic rays.
	if sky.Exposure2.GetAt(sky.CR1[0]) > cfg.CRPeak*0.5 {
		t.Skip("cosmic rays collided between exposures (acceptable, rare)")
	}
	// Determinism: same seed, same pixels.
	sky2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sky.Exposure1.Data() {
		if sky2.Exposure1.Data()[i] != v {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestSpecStructure(t *testing.T) {
	spec, err := NewSpec()
	if err != nil {
		t.Fatal(err)
	}
	if len(BuiltinIDs()) != 22 || len(UDFIDs) != 4 {
		t.Fatalf("builtin=%d udf=%d", len(BuiltinIDs()), len(UDFIDs))
	}
	for _, id := range append(BuiltinIDs(), UDFIDs...) {
		if spec.Node(id) == nil {
			t.Fatalf("node %s missing", id)
		}
	}
	// Built-ins must all be mapping operators; UDFs must not support Map.
	for _, id := range BuiltinIDs() {
		if !workflow.Supports(spec.Node(id).Op, lineage.Map) {
			t.Fatalf("built-in %s does not support Map", id)
		}
	}
	for _, id := range UDFIDs {
		if workflow.Supports(spec.Node(id).Op, lineage.Map) {
			t.Fatalf("UDF %s claims Map support", id)
		}
		if !workflow.Supports(spec.Node(id).Op, lineage.Full) {
			t.Fatalf("UDF %s must support Full for tracing", id)
		}
	}
}

func executeAstro(t *testing.T, planName string) (*workflow.Executor, *workflow.Run) {
	t.Helper()
	plan, err := Plan(planName)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := NewSpec()
	if err != nil {
		t.Fatal(err)
	}
	sky, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := kvstore.NewManager("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	exec := workflow.NewExecutor(array.NewVersions(), mgr, lineage.NewCollector())
	run, err := exec.Execute(context.Background(), spec, plan, map[string]*array.Array{
		"img1": sky.Exposure1, "img2": sky.Exposure2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return exec, run
}

func TestPipelineDetections(t *testing.T) {
	_, run := executeAstro(t, "BlackBox")
	// Cosmic rays detected in both masks.
	for _, node := range []string{NodeCRD1, NodeCRD2} {
		out, err := run.Output(node)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, v := range out.Data() {
			if v > 0 {
				n++
			}
		}
		if n == 0 {
			t.Fatalf("%s found no cosmic rays", node)
		}
		if n > int(out.Size()/10) {
			t.Fatalf("%s flagged %d pixels — threshold far too low", node, n)
		}
	}
	// Stars detected and labeled.
	stars, err := largestStar(run)
	if err != nil {
		t.Fatal(err)
	}
	if len(stars) < 2 {
		t.Fatalf("largest star has %d pixels", len(stars))
	}
	// Cosmic rays removed: cleaned composite must not contain CR-scale
	// values.
	cleaned, err := run.Output(NodeCRRemove)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range cleaned.Data() {
		if v > crThreshold*2 {
			t.Fatalf("cell %d still cosmic-ray bright after cleaning: %f", i, v)
		}
	}
}

func TestAllStrategiesExecute(t *testing.T) {
	for _, name := range StrategyNames {
		t.Run(name, func(t *testing.T) {
			_, run := executeAstro(t, name)
			if name == "BlackBox" || name == "BlackBoxOpt" {
				if run.LineageBytes() != 0 {
					t.Fatalf("%s stored %d lineage bytes", name, run.LineageBytes())
				}
			} else if run.LineageBytes() == 0 {
				t.Fatalf("%s stored no lineage", name)
			}
		})
	}
	if _, err := Plan("bogus"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestStrategyQueryEquivalence: every Table-II configuration must answer
// every benchmark query identically (Figure 5(b) compares their speed, so
// their answers must agree).
func TestStrategyQueryEquivalence(t *testing.T) {
	truth := map[string][]uint64{}
	for _, name := range StrategyNames {
		exec, run := executeAstro(t, name)
		queries, err := Queries(run)
		if err != nil {
			t.Fatal(err)
		}
		qe := query.New(run, exec.Stats(), query.Options{EntireArray: true, Dynamic: false})
		for qname, q := range queries {
			res, err := qe.Execute(context.Background(), q)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, qname, err)
			}
			cells := res.Cells()
			if len(cells) == 0 {
				t.Fatalf("%s/%s returned no cells", name, qname)
			}
			if want, ok := truth[qname]; ok {
				if len(want) != len(cells) {
					t.Fatalf("%s/%s: %d cells, first strategy had %d", name, qname, len(cells), len(want))
				}
				for i := range want {
					if want[i] != cells[i] {
						t.Fatalf("%s/%s: cell mismatch at %d", name, qname, i)
					}
				}
			} else {
				truth[qname] = cells
			}
		}
	}
}

// The entire-array optimization must not change FQ0's answer.
func TestFQ0SlowMatchesFast(t *testing.T) {
	exec, run := executeAstro(t, "SubZero")
	queries, err := Queries(run)
	if err != nil {
		t.Fatal(err)
	}
	fq := queries["FQ0"]
	fast, err := query.New(run, exec.Stats(), query.Options{EntireArray: true}).Execute(context.Background(), fq)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := query.New(run, exec.Stats(), query.Options{EntireArray: false}).Execute(context.Background(), fq)
	if err != nil {
		t.Fatal(err)
	}
	a, b := fast.Cells(), slow.Cells()
	if len(a) != len(b) {
		t.Fatalf("fast=%d cells slow=%d cells", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FQ0 fast/slow mismatch")
		}
	}
}

// RunStrategy end-to-end smoke test with file-backed stores.
func TestRunStrategyFileBacked(t *testing.T) {
	res, err := RunStrategy(context.Background(), "SubZero", testConfig(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.LineageBytes <= 0 || res.RunTime <= 0 {
		t.Fatalf("result=%+v", res)
	}
	for _, qn := range QueryNames {
		if _, ok := res.QueryTimes[qn]; !ok {
			t.Fatalf("query %s missing from results", qn)
		}
		if res.QueryCells[qn] == 0 {
			t.Fatalf("query %s returned no cells", qn)
		}
	}
}

// The SubZero configuration must store far less than Full lineage — the
// headline of Figure 5(a).
func TestSubZeroStorageAdvantage(t *testing.T) {
	subzero, err := RunStrategy(context.Background(), "SubZero", testConfig(), "")
	if err != nil {
		t.Fatal(err)
	}
	fullone, err := RunStrategy(context.Background(), "FullOne", testConfig(), "")
	if err != nil {
		t.Fatal(err)
	}
	if subzero.LineageBytes*5 > fullone.LineageBytes {
		t.Fatalf("SubZero %d bytes vs FullOne %d bytes: expected >5x advantage",
			subzero.LineageBytes, fullone.LineageBytes)
	}
}
