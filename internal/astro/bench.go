package astro

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/kvstore"
	"subzero/internal/lineage"
	"subzero/internal/query"
	"subzero/internal/workflow"
)

// StrategyNames lists the Table-II astronomy configurations in paper
// order.
var StrategyNames = []string{"BlackBox", "BlackBoxOpt", "FullMany", "FullOne", "SubZero"}

// Plan returns the strategy plan for one Table-II configuration:
//
//	BlackBox    — every operator stores black-box lineage only.
//	BlackBoxOpt — like BlackBox, but built-ins use mapping lineage.
//	FullOne     — like BlackBoxOpt, but UDFs store backward FullOne.
//	FullMany    — like FullOne with the FullMany encoding.
//	SubZero     — the optimizer's choice: composite lineage (PayOne
//	              payload side) for the cosmic-ray UDFs, payload lineage
//	              for star detection.
func Plan(name string) (workflow.Plan, error) {
	plan := workflow.Plan{}
	mapBuiltins := func() {
		for _, id := range BuiltinIDs() {
			plan[id] = []lineage.Strategy{lineage.StratMap}
		}
	}
	switch name {
	case "BlackBox":
	case "BlackBoxOpt":
		mapBuiltins()
	case "FullOne":
		mapBuiltins()
		for _, id := range UDFIDs {
			plan[id] = []lineage.Strategy{lineage.StratFullOne}
		}
	case "FullMany":
		mapBuiltins()
		for _, id := range UDFIDs {
			plan[id] = []lineage.Strategy{lineage.StratFullMany}
		}
	case "SubZero":
		mapBuiltins()
		plan[NodeCRD1] = []lineage.Strategy{lineage.StratCompOne}
		plan[NodeCRD2] = []lineage.Strategy{lineage.StratCompOne}
		plan[NodeCRRemove] = []lineage.Strategy{lineage.StratCompOne}
		plan[NodeStarDetect] = []lineage.Strategy{lineage.StratPayOne}
	default:
		return nil, fmt.Errorf("astro: unknown strategy %q", name)
	}
	return plan, nil
}

// backPathB1 is the backward path from a composite-image consumer down
// branch 1 to the raw exposure.
func backPathB1() []query.Step {
	return []query.Step{
		{Node: "merge", InputIdx: 0},
		{Node: "b1/norm", InputIdx: 0},
		{Node: "b1/denoise", InputIdx: 0},
		{Node: "b1/clip", InputIdx: 0},
		{Node: "b1/bgsub", InputIdx: 0},
		{Node: "b1/smooth", InputIdx: 0},
		{Node: "b1/gain", InputIdx: 0},
		{Node: "b1/bias", InputIdx: 0},
	}
}

// Queries builds the benchmark's lineage queries from an executed run
// (§VIII-A: five backward queries and one forward query; FQ0-Slow is FQ0
// with the entire-array optimization disabled).
func Queries(run *workflow.Run) (map[string]query.Query, error) {
	starCells, err := largestStar(run)
	if err != nil {
		return nil, err
	}
	crCells, err := maskCells(run, NodeCRD1, 32)
	if err != nil {
		return nil, err
	}
	out, err := run.Output("postsmooth")
	if err != nil {
		return nil, err
	}
	block := centerBlock(out.Space(), 8)

	qs := map[string]query.Query{}
	// BQ0: a detected star traced to the raw exposure.
	qs["BQ0"] = query.Query{
		Direction: query.Backward,
		Cells:     starCells,
		Path: append([]query.Step{
			{Node: NodeStarDetect, InputIdx: 0},
			{Node: "contrast", InputIdx: 0},
			{Node: "postsmooth", InputIdx: 0},
			{Node: NodeCRRemove, InputIdx: 0},
		}, backPathB1()...),
	}
	// BQ1: a region of the cleaned composite traced to exposure 2's
	// normalized image (one step across the merge).
	qs["BQ1"] = query.Query{
		Direction: query.Backward,
		Cells:     block,
		Path: []query.Step{
			{Node: "postsmooth", InputIdx: 0},
			{Node: NodeCRRemove, InputIdx: 0},
			{Node: "merge", InputIdx: 1},
		},
	}
	// BQ2: cosmic-ray mask pixels traced to the raw exposure.
	qs["BQ2"] = query.Query{
		Direction: query.Backward,
		Cells:     crCells,
		Path: []query.Step{
			{Node: NodeCRD1, InputIdx: 0},
			{Node: "b1/norm", InputIdx: 0},
			{Node: "b1/denoise", InputIdx: 0},
			{Node: "b1/clip", InputIdx: 0},
			{Node: "b1/bgsub", InputIdx: 0},
			{Node: "b1/smooth", InputIdx: 0},
			{Node: "b1/gain", InputIdx: 0},
			{Node: "b1/bias", InputIdx: 0},
		},
	}
	// BQ3: a star traced to the cosmic-ray mask (isolate a faulty mask).
	qs["BQ3"] = query.Query{
		Direction: query.Backward,
		Cells:     starCells,
		Path: []query.Step{
			{Node: NodeStarDetect, InputIdx: 0},
			{Node: "contrast", InputIdx: 0},
			{Node: "postsmooth", InputIdx: 0},
			{Node: NodeCRRemove, InputIdx: 1},
		},
	}
	// BQ4: a post-processing region traced into the merge.
	qs["BQ4"] = query.Query{
		Direction: query.Backward,
		Cells:     block,
		Path: []query.Step{
			{Node: "postsmooth", InputIdx: 0},
			{Node: NodeCRRemove, InputIdx: 0},
			{Node: "merge", InputIdx: 0},
		},
	}
	// FQ0: raw pixels traced forward to the star labels; the path crosses
	// branch 1's background-mean — an all-to-all operator — which the
	// entire-array optimization short-circuits.
	img1, err := run.Inputs("b1/bias")
	if err != nil {
		return nil, err
	}
	qs["FQ0"] = query.Query{
		Direction: query.Forward,
		Cells:     centerBlock(img1[0].Space(), 4),
		Path: []query.Step{
			{Node: "b1/bias", InputIdx: 0},
			{Node: "b1/gain", InputIdx: 0},
			{Node: "b1/smooth", InputIdx: 0},
			{Node: "b1/bgmean", InputIdx: 0},
			{Node: "b1/bgsub", InputIdx: 1},
			{Node: "b1/clip", InputIdx: 0},
			{Node: "b1/denoise", InputIdx: 0},
			{Node: "b1/norm", InputIdx: 0},
			{Node: "merge", InputIdx: 0},
			{Node: NodeCRRemove, InputIdx: 0},
			{Node: "postsmooth", InputIdx: 0},
			{Node: "contrast", InputIdx: 0},
			{Node: NodeStarDetect, InputIdx: 0},
		},
	}
	return qs, nil
}

// largestStar returns the cells of the most prominent star label in D's
// output.
func largestStar(run *workflow.Run) ([]uint64, error) {
	out, err := run.Output(NodeStarDetect)
	if err != nil {
		return nil, err
	}
	counts := map[float64][]uint64{}
	data := out.Data()
	for i, v := range data {
		if v > 0 {
			counts[v] = append(counts[v], uint64(i))
		}
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("astro: no stars detected; generator/threshold mismatch")
	}
	var best []uint64
	for _, cells := range counts {
		if len(cells) > len(best) {
			best = cells
		}
	}
	return best, nil
}

// maskCells returns up to limit set cells of a mask output.
func maskCells(run *workflow.Run, nodeID string, limit int) ([]uint64, error) {
	out, err := run.Output(nodeID)
	if err != nil {
		return nil, err
	}
	var cells []uint64
	for i, v := range out.Data() {
		if v > 0 {
			cells = append(cells, uint64(i))
			if len(cells) >= limit {
				break
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("astro: no cosmic rays detected in %s", nodeID)
	}
	return cells, nil
}

// centerBlock returns an n×n block of cells at the array center.
func centerBlock(sp *grid.Space, n int) []uint64 {
	sh := sp.Shape()
	r := grid.Rect{
		Lo: grid.Coord{sh[0]/2 - n/2, sh[1]/2 - n/2},
		Hi: grid.Coord{sh[0]/2 + n/2 - 1, sh[1]/2 + n/2 - 1},
	}
	clipped, _ := r.Clip(sh)
	return clipped.Cells(sp, nil)
}

// StrategyResult is one row of Figure 5: per-strategy overheads and query
// costs.
type StrategyResult struct {
	Name          string
	RunTime       time.Duration
	LineageBytes  int64
	BaselineBytes int64 // the two input exposures
	QueryTimes    map[string]time.Duration
	QueryCells    map[string]int
}

// RunStrategy executes the workflow under one Table-II configuration and
// measures overheads plus all benchmark queries (including FQ0-Slow).
// storageRoot selects file-backed lineage stores; empty means in-memory.
func RunStrategy(ctx context.Context, name string, cfg GenConfig, storageRoot string) (*StrategyResult, error) {
	plan, err := Plan(name)
	if err != nil {
		return nil, err
	}
	spec, err := NewSpec()
	if err != nil {
		return nil, err
	}
	sky, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	root := storageRoot
	if root != "" {
		root = filepath.Join(storageRoot, "astro-"+name)
	}
	mgr, err := kvstore.NewManager(root)
	if err != nil {
		return nil, err
	}
	defer mgr.Close()
	exec := workflow.NewExecutor(array.NewVersions(), mgr, lineage.NewCollector())

	run, err := exec.Execute(ctx, spec, plan, map[string]*array.Array{
		"img1": sky.Exposure1, "img2": sky.Exposure2,
	})
	if err != nil {
		return nil, err
	}
	res := &StrategyResult{
		Name:          name,
		RunTime:       run.Elapsed,
		LineageBytes:  run.LineageBytes(),
		BaselineBytes: sky.Exposure1.MemoryBytes() + sky.Exposure2.MemoryBytes(),
		QueryTimes:    map[string]time.Duration{},
		QueryCells:    map[string]int{},
	}
	queries, err := Queries(run)
	if err != nil {
		return nil, err
	}
	for qname, q := range queries {
		opts := query.Options{EntireArray: true, Dynamic: false}
		if err := runQuery(ctx, run, exec, qname, q, opts, res); err != nil {
			return nil, err
		}
	}
	// FQ0-Slow: the forward query without the entire-array optimization.
	slow := query.Options{EntireArray: false, Dynamic: false}
	if err := runQuery(ctx, run, exec, "FQ0Slow", queries["FQ0"], slow, res); err != nil {
		return nil, err
	}
	return res, nil
}

func runQuery(ctx context.Context, run *workflow.Run, exec *workflow.Executor, name string, q query.Query, opts query.Options, res *StrategyResult) error {
	qe := query.New(run, exec.Stats(), opts)
	start := time.Now()
	qr, err := qe.Execute(ctx, q)
	if err != nil {
		return fmt.Errorf("astro: query %s under %s: %w", name, res.Name, err)
	}
	res.QueryTimes[name] = time.Since(start)
	res.QueryCells[name] = len(qr.Cells())
	return nil
}

// QueryNames lists the benchmark queries in report order.
var QueryNames = []string{"BQ0", "BQ1", "BQ2", "BQ3", "BQ4", "FQ0", "FQ0Slow"}

// CaptureResult is one row of the capture-overhead table: how much the
// write path costs the operator threads under one ingest configuration.
type CaptureResult struct {
	Strategy string
	Shards   int
	Elapsed  time.Duration // workflow wall clock
	Overhead time.Duration // operator-thread lineage time (enqueue + drain when sharded)
	OpWrite  time.Duration // operator-thread write time: inline encode when serial, enqueue when sharded
	Drain    time.Duration // end-of-node drain barrier + flush wait (sharded only)
	Encode   time.Duration // encode+commit work, summed across shard workers
	Pairs    int64
}

// CaptureRun executes the workflow under one Table-II configuration and
// the given ingest pipeline config, measuring capture overhead only (no
// queries). It backs the before/after capture table of BENCH_5.
func CaptureRun(ctx context.Context, name string, cfg GenConfig, ingest lineage.IngestConfig, storageRoot string) (*CaptureResult, error) {
	plan, err := Plan(name)
	if err != nil {
		return nil, err
	}
	spec, err := NewSpec()
	if err != nil {
		return nil, err
	}
	sky, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	root := storageRoot
	if root != "" {
		root = filepath.Join(storageRoot, fmt.Sprintf("astro-cap-%s-%d", name, ingest.Shards))
	}
	mgr, err := kvstore.NewManager(root)
	if err != nil {
		return nil, err
	}
	defer mgr.Close()
	exec := workflow.NewExecutor(array.NewVersions(), mgr, lineage.NewCollector())
	exec.SetIngest(ingest)
	run, err := exec.Execute(ctx, spec, plan, map[string]*array.Array{
		"img1": sky.Exposure1, "img2": sky.Exposure2,
	})
	if err != nil {
		return nil, err
	}
	cs := run.CaptureStats()
	return &CaptureResult{
		Strategy: name,
		Shards:   ingest.Shards,
		Elapsed:  run.Elapsed,
		Overhead: run.LineageOverhead,
		OpWrite:  cs.OpWrite,
		Drain:    cs.Drain,
		Encode:   cs.Encode,
		Pairs:    cs.Pairs,
	}, nil
}
