package astro

import (
	"fmt"
	"math"

	"subzero/internal/ops"
	"subzero/internal/workflow"
)

// Operator thresholds calibrated against the generator's brightness scale.
const (
	biasLevel     = 100.0 // generator sky level
	crThreshold   = 200.0 // post-pipeline cosmic-ray brightness floor
	starThreshold = 20.0  // post-cleaning star-core brightness floor
)

// Node identifiers of the four UDFs (paper Figure 1's A-D).
const (
	NodeCRD1       = "A-crd1"
	NodeCRD2       = "B-crd2"
	NodeCRRemove   = "C-crremove"
	NodeStarDetect = "D-stardetect"
)

// BuiltinIDs lists the 22 built-in node ids; UDFIDs the 4 UDFs.
var UDFIDs = []string{NodeCRD1, NodeCRD2, NodeCRRemove, NodeStarDetect}

// gaussian3 is the 3x3 smoothing kernel used by both branches.
func gaussian3() [][]float64 {
	return [][]float64{
		{1.0 / 16, 2.0 / 16, 1.0 / 16},
		{2.0 / 16, 4.0 / 16, 2.0 / 16},
		{1.0 / 16, 2.0 / 16, 1.0 / 16},
	}
}

// branchNodes returns the 9 built-in node ids of one exposure branch.
func branchNodes(prefix string) []string {
	out := make([]string, 0, 9)
	for _, n := range []string{"bias", "gain", "smooth", "bgmean", "bgsub", "clip", "denoise", "std", "norm"} {
		out = append(out, prefix+"/"+n)
	}
	return out
}

// BuiltinIDs returns the 22 built-in node ids of the workflow.
func BuiltinIDs() []string {
	ids := append(branchNodes("b1"), branchNodes("b2")...)
	return append(ids, "merge", "maskor", "postsmooth", "contrast")
}

// NewSpec builds the LSST workflow of Figure 1: per-exposure cleaning
// branches (9 built-ins each), cosmic-ray detection per exposure (UDFs A
// and B), exposure merging and mask union, cosmic-ray removal on the
// composite (UDF C), post-processing, and star detection (UDF D) — 22
// built-in operators and 4 UDFs.
func NewSpec() (*workflow.Spec, error) {
	spec := workflow.NewSpec("astro")
	addBranch := func(prefix, source string) (string, error) {
		smoothK, err := ops.NewConvolve2D("smooth", gaussian3())
		if err != nil {
			return "", err
		}
		denoiseK, err := ops.NewConvolve2D("denoise", gaussian3())
		if err != nil {
			return "", err
		}
		id := func(n string) string { return prefix + "/" + n }
		spec.Add(id("bias"), ops.NewUnary("bias-sub", func(x float64) float64 { return x - biasLevel }),
			workflow.FromExternal(source))
		spec.Add(id("gain"), ops.NewUnary("gain", func(x float64) float64 { return x * 1.02 }),
			workflow.FromNode(id("bias")))
		spec.Add(id("smooth"), smoothK, workflow.FromNode(id("gain")))
		spec.Add(id("bgmean"), ops.NewMeanAll(), workflow.FromNode(id("smooth")))
		spec.Add(id("bgsub"), ops.NewBroadcast("bg-sub", func(x, m float64) float64 { return x - m }),
			workflow.FromNode(id("smooth")), workflow.FromNode(id("bgmean")))
		spec.Add(id("clip"), ops.NewUnary("clip", func(x float64) float64 { return math.Max(x, 0) }),
			workflow.FromNode(id("bgsub")))
		spec.Add(id("denoise"), denoiseK, workflow.FromNode(id("clip")))
		spec.Add(id("std"), ops.NewStdAll(), workflow.FromNode(id("denoise")))
		spec.Add(id("norm"), ops.NewBroadcast("norm", func(x, s float64) float64 { return x / (1 + s/1000) }),
			workflow.FromNode(id("denoise")), workflow.FromNode(id("std")))
		return id("norm"), nil
	}

	out1, err := addBranch("b1", "img1")
	if err != nil {
		return nil, err
	}
	out2, err := addBranch("b2", "img2")
	if err != nil {
		return nil, err
	}
	spec.Add(NodeCRD1, NewCosmicRayDetect(crThreshold), workflow.FromNode(out1))
	spec.Add(NodeCRD2, NewCosmicRayDetect(crThreshold), workflow.FromNode(out2))
	spec.Add("merge", ops.NewBinary("merge-mean", func(a, b float64) float64 { return (a + b) / 2 }),
		workflow.FromNode(out1), workflow.FromNode(out2))
	spec.Add("maskor", ops.NewBinary("mask-or", math.Max),
		workflow.FromNode(NodeCRD1), workflow.FromNode(NodeCRD2))
	spec.Add(NodeCRRemove, NewCosmicRayRemove(),
		workflow.FromNode("merge"), workflow.FromNode("maskor"))
	post, err := ops.NewConvolve2D("post-smooth", gaussian3())
	if err != nil {
		return nil, err
	}
	spec.Add("postsmooth", post, workflow.FromNode(NodeCRRemove))
	spec.Add("contrast", ops.NewUnary("contrast", func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return math.Pow(x, 0.95)
	}), workflow.FromNode("postsmooth"))
	spec.Add(NodeStarDetect, NewStarDetect(starThreshold), workflow.FromNode("contrast"))

	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("astro: %w", err)
	}
	if got := len(spec.Nodes()); got != 26 {
		return nil, fmt.Errorf("astro: workflow has %d nodes, want 26 (22 built-ins + 4 UDFs)", got)
	}
	return spec, nil
}
