package astro

import (
	"encoding/binary"
	"fmt"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/lineage"
	"subzero/internal/workflow"
)

// CRRadius is the neighborhood radius a detected cosmic-ray pixel depends
// on (paper §V: "depends on neighboring input cells within 3 pixels").
const CRRadius = 3

// CleanRadius is the interpolation radius of the cosmic-ray removal UDF.
const CleanRadius = 2

// CosmicRayDetect is UDF A/B: it flags pixels whose value exceeds the
// threshold as cosmic rays, emitting a mask of the same shape. A flagged
// output cell depends on the radius-3 neighborhood of its input pixel;
// every other cell depends only on the corresponding pixel. It is a
// composite operator (paper §V-A4): the identity mapping is the default
// and payload pairs (storing the radius) override it for the rare cosmic
// rays.
type CosmicRayDetect struct {
	workflow.Meta
	Threshold float64
}

// NewCosmicRayDetect builds the detector.
func NewCosmicRayDetect(threshold float64) *CosmicRayDetect {
	return &CosmicRayDetect{
		Meta: workflow.Meta{
			OpName: "cosmic-ray-detect",
			NIn:    1,
			Modes:  []lineage.Mode{lineage.Full, lineage.Comp},
		},
		Threshold: threshold,
	}
}

// OutShape implements Operator.
func (c *CosmicRayDetect) OutShape(in []grid.Shape) (grid.Shape, error) {
	return workflow.SameShapeOut(in)
}

// Run implements Operator (compare the paper's CRD pseudocode in §V-A).
func (c *CosmicRayDetect) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	in := ins[0]
	out, err := array.New(c.OpName, in.Shape())
	if err != nil {
		return nil, err
	}
	sp := in.Space()
	coord := make(grid.Coord, sp.Rank())
	var neigh []uint64
	outBuf := make([]uint64, 1)
	payload := []byte{CRRadius}
	for idx := uint64(0); idx < sp.Size(); idx++ {
		isCR := in.Get(idx) > c.Threshold
		if isCR {
			out.Set(idx, 1)
		}
		outBuf[0] = idx
		if rc.NeedsPairs() {
			if isCR {
				sp.UnravelInto(idx, coord)
				neigh = grid.Neighborhood(sp, coord, CRRadius, neigh[:0])
				if err := rc.LWrite(outBuf, neigh); err != nil {
					return nil, err
				}
			} else if err := rc.LWrite(outBuf, outBuf); err != nil {
				return nil, err
			}
		}
		if rc.NeedsPayload() && isCR {
			if err := rc.LWritePayload(outBuf, payload); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// MapP implements PayloadMapper: the payload byte is the radius.
func (c *CosmicRayDetect) MapP(mc *workflow.MapCtx, out uint64, payload []byte, _ int, dst []uint64) []uint64 {
	return grid.Neighborhood(mc.InSpaces[0], mc.OutCoord(out), int(payload[0]), dst)
}

// MapB implements the composite default: identity.
func (c *CosmicRayDetect) MapB(_ *workflow.MapCtx, out uint64, _ int, dst []uint64) []uint64 {
	return append(dst, out)
}

// MapF implements the composite default: identity.
func (c *CosmicRayDetect) MapF(_ *workflow.MapCtx, in uint64, _ int, dst []uint64) []uint64 {
	return append(dst, in)
}

// CosmicRayRemove is UDF C: it replaces pixels flagged in the mask (input
// 1) with the mean of their unflagged neighbors within CleanRadius in the
// image (input 0). Cleaned cells depend on the neighborhoods of both
// inputs; untouched cells depend on their own pixel and mask cell — again
// a composite operator.
type CosmicRayRemove struct {
	workflow.Meta
}

// NewCosmicRayRemove builds the cleaner.
func NewCosmicRayRemove() *CosmicRayRemove {
	return &CosmicRayRemove{Meta: workflow.Meta{
		OpName: "cosmic-ray-remove",
		NIn:    2,
		Modes:  []lineage.Mode{lineage.Full, lineage.Comp},
	}}
}

// OutShape implements Operator.
func (c *CosmicRayRemove) OutShape(in []grid.Shape) (grid.Shape, error) {
	if len(in) != 2 || !in[0].Equal(in[1]) {
		return nil, fmt.Errorf("astro: cosmic-ray-remove requires image and mask of equal shape")
	}
	return in[0].Clone(), nil
}

// Run implements Operator.
func (c *CosmicRayRemove) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	img, mask := ins[0], ins[1]
	out, err := array.New(c.OpName, img.Shape())
	if err != nil {
		return nil, err
	}
	sp := img.Space()
	coord := make(grid.Coord, sp.Rank())
	var neigh []uint64
	outBuf := make([]uint64, 1)
	payload := []byte{CleanRadius}
	for idx := uint64(0); idx < sp.Size(); idx++ {
		outBuf[0] = idx
		if mask.Get(idx) == 0 {
			out.Set(idx, img.Get(idx))
			if rc.NeedsPairs() {
				if err := rc.LWrite(outBuf, outBuf, outBuf); err != nil {
					return nil, err
				}
			}
			continue
		}
		sp.UnravelInto(idx, coord)
		neigh = grid.Neighborhood(sp, coord, CleanRadius, neigh[:0])
		sum, n := 0.0, 0
		for _, nb := range neigh {
			if mask.Get(nb) == 0 {
				sum += img.Get(nb)
				n++
			}
		}
		if n > 0 {
			out.Set(idx, sum/float64(n))
		}
		if rc.NeedsPairs() {
			if err := rc.LWrite(outBuf, neigh, neigh); err != nil {
				return nil, err
			}
		}
		if rc.NeedsPayload() {
			if err := rc.LWritePayload(outBuf, payload); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// MapP implements PayloadMapper: the radius-payload neighborhood, in
// whichever input is asked for (cleaning reads both image and mask
// neighborhoods).
func (c *CosmicRayRemove) MapP(mc *workflow.MapCtx, out uint64, payload []byte, inputIdx int, dst []uint64) []uint64 {
	return grid.Neighborhood(mc.InSpaces[inputIdx], mc.OutCoord(out), int(payload[0]), dst)
}

// MapB implements the composite default: identity into both inputs.
func (c *CosmicRayRemove) MapB(_ *workflow.MapCtx, out uint64, _ int, dst []uint64) []uint64 {
	return append(dst, out)
}

// MapF implements the composite default: identity from both inputs.
func (c *CosmicRayRemove) MapF(_ *workflow.MapCtx, in uint64, _ int, dst []uint64) []uint64 {
	return append(dst, in)
}

// StarDetect is UDF D: it labels connected components of bright pixels
// with star identifiers (paper §IV: "Every output pixel labeled Star X
// depends on all of the input pixels in the Star X region"). It is a
// payload operator: each star emits one region pair whose payload is the
// star's bounding box (16 bytes), and map_p expands the box back into
// input cells. The box may be a slight superset of the exact region,
// which the paper's scientists explicitly allowed; this operator defines
// its lineage to be the box in every mode so all strategies agree.
type StarDetect struct {
	workflow.Meta
	Threshold float64
}

// NewStarDetect builds the detector.
func NewStarDetect(threshold float64) *StarDetect {
	return &StarDetect{
		Meta: workflow.Meta{
			OpName: "star-detect",
			NIn:    1,
			Modes:  []lineage.Mode{lineage.Full, lineage.Pay},
		},
		Threshold: threshold,
	}
}

// OutShape implements Operator.
func (s *StarDetect) OutShape(in []grid.Shape) (grid.Shape, error) {
	return workflow.SameShapeOut(in)
}

// Run implements Operator: threshold + 4-connected flood fill.
func (s *StarDetect) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	in := ins[0]
	out, err := array.New(s.OpName, in.Shape())
	if err != nil {
		return nil, err
	}
	sp := in.Space()
	rows, cols := in.Shape()[0], in.Shape()[1]
	visited := make([]bool, sp.Size())
	label := 0
	var stack, region []uint64
	for seed := uint64(0); seed < sp.Size(); seed++ {
		if visited[seed] || in.Get(seed) <= s.Threshold {
			continue
		}
		label++
		region = region[:0]
		stack = append(stack[:0], seed)
		visited[seed] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			region = append(region, cur)
			out.Set(cur, float64(label))
			y, x := int(cur)/cols, int(cur)%cols
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				ny, nx := y+d[0], x+d[1]
				if ny < 0 || ny >= rows || nx < 0 || nx >= cols {
					continue
				}
				nidx := uint64(ny)*uint64(cols) + uint64(nx)
				if !visited[nidx] && in.Get(nidx) > s.Threshold {
					visited[nidx] = true
					stack = append(stack, nidx)
				}
			}
		}
		if err := s.emitStar(rc, sp, region); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (s *StarDetect) emitStar(rc *workflow.RunCtx, sp *grid.Space, region []uint64) error {
	if !rc.NeedsPairs() && !rc.NeedsPayload() {
		return nil
	}
	bb, ok := grid.BoundingBox(sp, region)
	if !ok {
		return nil
	}
	if rc.NeedsPairs() {
		if err := rc.LWrite(region, bb.Cells(sp, nil)); err != nil {
			return err
		}
	}
	if rc.NeedsPayload() {
		if err := rc.LWritePayload(region, encodeBox(bb)); err != nil {
			return err
		}
	}
	return nil
}

func encodeBox(r grid.Rect) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint32(buf[0:], uint32(r.Lo[0]))
	binary.LittleEndian.PutUint32(buf[4:], uint32(r.Lo[1]))
	binary.LittleEndian.PutUint32(buf[8:], uint32(r.Hi[0]))
	binary.LittleEndian.PutUint32(buf[12:], uint32(r.Hi[1]))
	return buf
}

func decodeBox(b []byte) grid.Rect {
	return grid.Rect{
		Lo: grid.Coord{int(binary.LittleEndian.Uint32(b[0:])), int(binary.LittleEndian.Uint32(b[4:]))},
		Hi: grid.Coord{int(binary.LittleEndian.Uint32(b[8:])), int(binary.LittleEndian.Uint32(b[12:]))},
	}
}

// MapP implements PayloadMapper: expand the stored bounding box.
func (s *StarDetect) MapP(mc *workflow.MapCtx, _ uint64, payload []byte, _ int, dst []uint64) []uint64 {
	return decodeBox(payload).Cells(mc.InSpaces[0], dst)
}

// EntireArraySafe: every pixel appears in its own (default or payload)
// pair, so full maps to full in both directions.
func (c *CosmicRayDetect) EntireArraySafe(bool, int) bool { return true }

// EntireArraySafe: as above, for both the image and the mask input.
func (c *CosmicRayRemove) EntireArraySafe(bool, int) bool { return true }
