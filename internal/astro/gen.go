// Package astro implements the paper's astronomy benchmark (§II-A,
// §VIII-A): an LSST-like image-processing workflow of 22 built-in
// operators and 4 UDFs that cleans two exposures of the same sky patch,
// detects and removes cosmic rays, and labels the pixels of detected
// stars — plus the synthetic image generator, the benchmark's lineage
// queries, and the Table-II strategy configurations.
//
// The real benchmark used two 512×2000-pixel images provided by LSST; the
// generator synthesizes equivalent exposures: a noisy sky background,
// Gaussian point-spread-function stars shared between both exposures, and
// per-exposure single-pixel cosmic-ray hits. Star sparsity and cosmic-ray
// rarity are what give the workload its locality structure, which is the
// property the lineage results depend on.
package astro

import (
	"math"
	"math/rand"

	"subzero/internal/array"
	"subzero/internal/grid"
)

// GenConfig controls the synthetic sky generator.
type GenConfig struct {
	Rows, Cols int
	Stars      int     // number of stars shared by both exposures
	CosmicRays int     // per-exposure cosmic-ray hits
	SkyLevel   float64 // background level (ADU)
	SkyNoise   float64 // background noise amplitude
	StarPeak   float64 // peak star brightness above sky
	CRPeak     float64 // cosmic-ray brightness (far above any star)
	Seed       int64
}

// DefaultGenConfig mirrors the paper's image scale: two 512×2000 images
// with sparse small stars and rare cosmic rays.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Rows: 512, Cols: 2000,
		Stars:      80,
		CosmicRays: 40,
		SkyLevel:   100,
		SkyNoise:   2,
		StarPeak:   60,
		CRPeak:     4000,
		Seed:       1,
	}
}

// Scaled returns the config with image area (and star/cosmic-ray counts)
// scaled by f in each dimension; tests use small fractions.
func (c GenConfig) Scaled(f float64) GenConfig {
	c.Rows = maxInt(16, int(float64(c.Rows)*f))
	c.Cols = maxInt(16, int(float64(c.Cols)*f))
	c.Stars = maxInt(2, int(float64(c.Stars)*f*f))
	c.CosmicRays = maxInt(2, int(float64(c.CosmicRays)*f*f))
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Sky is a generated observation: two exposures of the same star field
// with independent noise and cosmic rays.
type Sky struct {
	Exposure1, Exposure2 *array.Array
	StarCenters          []grid.Coord
	CR1, CR2             []grid.Coord
}

// Generate synthesizes the two exposures.
func Generate(cfg GenConfig) (*Sky, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	img1, err := array.New("img1", grid.Shape{cfg.Rows, cfg.Cols})
	if err != nil {
		return nil, err
	}
	img2, err := array.New("img2", grid.Shape{cfg.Rows, cfg.Cols})
	if err != nil {
		return nil, err
	}
	sky := &Sky{Exposure1: img1, Exposure2: img2}

	// Background: sky level plus uniform noise, independent per exposure.
	for _, img := range []*array.Array{img1, img2} {
		data := img.Data()
		for i := range data {
			data[i] = cfg.SkyLevel + cfg.SkyNoise*(rng.Float64()*2-1)
		}
	}
	// Stars: Gaussian blobs at the same positions in both exposures.
	for s := 0; s < cfg.Stars; s++ {
		cy := 3 + rng.Intn(cfg.Rows-6)
		cx := 3 + rng.Intn(cfg.Cols-6)
		sky.StarCenters = append(sky.StarCenters, grid.Coord{cy, cx})
		sigma := 0.8 + rng.Float64()*0.8
		peak := cfg.StarPeak * (0.5 + rng.Float64())
		for _, img := range []*array.Array{img1, img2} {
			addStar(img, cy, cx, sigma, peak)
		}
	}
	// Cosmic rays: very bright single pixels, independent per exposure.
	sky.CR1 = addCosmicRays(img1, rng, cfg)
	sky.CR2 = addCosmicRays(img2, rng, cfg)
	return sky, nil
}

func addStar(img *array.Array, cy, cx int, sigma, peak float64) {
	r := 3
	rows, cols := img.Shape()[0], img.Shape()[1]
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			y, x := cy+dy, cx+dx
			if y < 0 || y >= rows || x < 0 || x >= cols {
				continue
			}
			d2 := float64(dy*dy + dx*dx)
			img.Set2(y, x, img.Get2(y, x)+peak*math.Exp(-d2/(2*sigma*sigma)))
		}
	}
}

func addCosmicRays(img *array.Array, rng *rand.Rand, cfg GenConfig) []grid.Coord {
	var hits []grid.Coord
	for i := 0; i < cfg.CosmicRays; i++ {
		y := rng.Intn(cfg.Rows)
		x := rng.Intn(cfg.Cols)
		img.Set2(y, x, cfg.CRPeak*(0.8+0.4*rng.Float64()))
		hits = append(hits, grid.Coord{y, x})
	}
	return hits
}
