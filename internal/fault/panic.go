package fault

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a recovered panic converted into a structured error by
// the containment layers (query-batch workers, ingest shard workers,
// HTTP handlers). It preserves the panic value and the goroutine stack
// at recovery, so the blast site is diagnosable even though the daemon
// kept running.
type PanicError struct {
	Op    string // the operation that panicked, e.g. "lineage ingest worker"
	Value any    // the recovered value
	Stack []byte // debug.Stack() at the recovery site
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Op, e.Value)
}

// AsError wraps a recovered panic value into a *PanicError, capturing
// the current stack. Call only from a deferred recover site:
//
//	defer func() {
//	    if r := recover(); r != nil {
//	        err = fault.AsError("ingest worker", r)
//	    }
//	}()
func AsError(op string, recovered any) *PanicError {
	return &PanicError{Op: op, Value: recovered, Stack: debug.Stack()}
}
