// Package fault is a deterministic, stdlib-only failpoint framework in
// the style of mature storage engines: named injection points compiled
// into the binary as no-ops, armed per-process (environment) or per-test
// (programmatic API) with a small action vocabulary — return an error,
// tear a write after N bytes, delay, or panic.
//
// The disabled fast path is one atomic load and must stay allocation-free
// (pinned by an AllocsPerRun test); armed paths may allocate freely.
//
// Injection points are registered at package init of the code that hosts
// them:
//
//	var _ = fault.Register("kvstore/flush")
//
// and consulted inline:
//
//	if err := fault.Inject("kvstore/flush"); err != nil {
//	    return err
//	}
//
// Arming an unregistered point is an error — it catches typos and keeps
// Registered() an honest inventory of real injection sites, which the
// crash-point matrix test iterates.
package fault

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar names the environment variable ArmFromEnv reads. Its value is a
// spec in the ArmSpec grammar, e.g.
//
//	SUBZERO_FAULTS='kvstore/flush=error(disk full);lineage/decode=error'
const EnvVar = "SUBZERO_FAULTS"

// Kind enumerates failpoint actions.
type Kind int

const (
	// KindError makes Inject return an injected *Error.
	KindError Kind = iota
	// KindTorn, at a wrapped-file write site, writes only the first
	// Bytes bytes of the call before failing; at a plain Inject site it
	// behaves like KindError.
	KindTorn
	// KindDelay sleeps for Delay, then proceeds normally.
	KindDelay
	// KindPanic panics with a *PanicValue naming the point.
	KindPanic
)

// Action is what an armed failpoint does when reached.
type Action struct {
	Kind  Kind
	Msg   string        // KindError/KindTorn: message carried by the injected error
	Bytes int           // KindTorn: bytes written before the failure
	Delay time.Duration // KindDelay: sleep duration
	Count int           // triggers before the point goes quiet; 0 = unlimited
}

// Error is the failure injected at an armed point. It matches
// errors.Is(err, ErrInjected).
type Error struct {
	Point string
	Msg   string
}

func (e *Error) Error() string {
	if e.Msg == "" {
		return "fault: injected failure at " + e.Point
	}
	return "fault: injected failure at " + e.Point + ": " + e.Msg
}

// Is makes every injected error match the ErrInjected sentinel.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// ErrInjected is the sentinel all injected errors match via errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// PanicValue is the value thrown by KindPanic points.
type PanicValue struct{ Point string }

func (v *PanicValue) String() string { return "fault: injected panic at " + v.Point }

type point struct {
	armed     atomic.Pointer[Action]
	remaining atomic.Int64 // countdown when Action.Count > 0
	hits      atomic.Int64
}

var (
	// active counts armed points; zero is the compiled-in no-op fast path.
	active atomic.Int64

	mu     sync.Mutex
	points sync.Map // name -> *point
)

// Register declares a failpoint name and returns it, so hosting packages
// can register at init:
//
//	var fpFlush = fault.Register("kvstore/flush")
//
// Registering the same name twice is harmless.
func Register(name string) string {
	points.LoadOrStore(name, &point{})
	return name
}

// Registered returns all registered failpoint names, sorted.
func Registered() []string {
	var names []string
	points.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// Inject is the injection point. Disabled (no point armed anywhere) it is
// a single atomic load returning nil with zero allocations. An armed
// point applies its action: KindError and KindTorn return an injected
// *Error, KindDelay sleeps, KindPanic panics with a *PanicValue.
func Inject(name string) error {
	if active.Load() == 0 {
		return nil
	}
	a := take(name)
	if a == nil {
		return nil
	}
	switch a.Kind {
	case KindDelay:
		time.Sleep(a.Delay)
		return nil
	case KindPanic:
		panic(&PanicValue{Point: name})
	default:
		return &Error{Point: name, Msg: a.Msg}
	}
}

// take resolves the action armed at name, consuming one trigger from its
// count. It returns nil when the point is unregistered, disarmed, or
// exhausted.
func take(name string) *Action {
	v, ok := points.Load(name)
	if !ok {
		return nil
	}
	p := v.(*point)
	a := p.armed.Load()
	if a == nil {
		return nil
	}
	if a.Count > 0 && p.remaining.Add(-1) < 0 {
		return nil
	}
	p.hits.Add(1)
	return a
}

// Arm activates a registered failpoint with the given action, replacing
// any previous action. Unknown names are an error.
func Arm(name string, a Action) error {
	mu.Lock()
	defer mu.Unlock()
	v, ok := points.Load(name)
	if !ok {
		return fmt.Errorf("fault: arming unregistered failpoint %q", name)
	}
	p := v.(*point)
	p.remaining.Store(int64(a.Count))
	if p.armed.Swap(&a) == nil {
		active.Add(1)
	}
	return nil
}

// Disarm deactivates a failpoint. Unknown or already-quiet names no-op.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	v, ok := points.Load(name)
	if !ok {
		return
	}
	if v.(*point).armed.Swap(nil) != nil {
		active.Add(-1)
	}
}

// Reset disarms every failpoint and clears hit counters. Tests defer it.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points.Range(func(_, v any) bool {
		p := v.(*point)
		if p.armed.Swap(nil) != nil {
			active.Add(-1)
		}
		p.hits.Store(0)
		p.remaining.Store(0)
		return true
	})
}

// Hits reports how many times the named point has triggered since the
// last Reset.
func Hits(name string) int64 {
	v, ok := points.Load(name)
	if !ok {
		return 0
	}
	return v.(*point).hits.Load()
}

// ArmSpec arms failpoints from a compact spec: semicolon-separated
// `name=action` terms where action is one of
//
//	error          error(message)
//	torn(N)        fail a wrapped write after N bytes
//	delay(dur)     sleep, dur in time.ParseDuration syntax
//	panic          panic with a *PanicValue
//
// Example: "kvstore/flush=error(disk full);lineage/decode=error".
// Every named point must be registered.
func ArmSpec(spec string) error {
	for _, term := range strings.Split(spec, ";") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		name, actionStr, ok := strings.Cut(term, "=")
		if !ok {
			return fmt.Errorf("fault: spec term %q: want name=action", term)
		}
		a, err := parseAction(strings.TrimSpace(actionStr))
		if err != nil {
			return fmt.Errorf("fault: spec term %q: %w", term, err)
		}
		if err := Arm(strings.TrimSpace(name), a); err != nil {
			return err
		}
	}
	return nil
}

// ArmFromEnv arms failpoints from the SUBZERO_FAULTS environment
// variable. An unset or empty variable is a no-op. Call from main after
// all hosting packages have init-registered their points.
func ArmFromEnv() error {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil
	}
	return ArmSpec(spec)
}

func parseAction(s string) (Action, error) {
	verb, arg := s, ""
	if open := strings.IndexByte(s, '('); open >= 0 {
		if !strings.HasSuffix(s, ")") {
			return Action{}, fmt.Errorf("unterminated action argument in %q", s)
		}
		verb, arg = s[:open], s[open+1:len(s)-1]
	}
	switch verb {
	case "error":
		return Action{Kind: KindError, Msg: arg}, nil
	case "torn":
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			return Action{}, fmt.Errorf("torn wants a non-negative byte count, got %q", arg)
		}
		return Action{Kind: KindTorn, Bytes: n}, nil
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return Action{}, fmt.Errorf("delay wants a duration, got %q", arg)
		}
		return Action{Kind: KindDelay, Delay: d}, nil
	case "panic":
		return Action{Kind: KindPanic}, nil
	default:
		return Action{}, fmt.Errorf("unknown action %q", verb)
	}
}
