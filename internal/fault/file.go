package fault

import (
	"io"
	"os"
	"time"
)

// File is the slice of *os.File behavior the storage layer depends on.
// Wrapping it (rather than the Store interface) keeps fault injection
// below the bufio write buffer, so torn writes land exactly where a
// crashed process would leave them: a partial frame at the file tail.
type File interface {
	io.Writer
	io.ReaderAt
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
	Stat() (os.FileInfo, error)
}

// WrapFile returns f with two failpoints spliced into its write path:
// <point>/write (honors KindTorn: the first Action.Bytes bytes reach the
// file, then the write fails) and <point>/sync. Both are registered here.
// With no point armed the overhead per call is one atomic load.
func WrapFile(point string, f File) File {
	return &faultFile{
		File:      f,
		writeName: Register(point + "/write"),
		syncName:  Register(point + "/sync"),
	}
}

type faultFile struct {
	File
	writeName string
	syncName  string
}

func (f *faultFile) Write(p []byte) (int, error) {
	if active.Load() == 0 {
		return f.File.Write(p)
	}
	a := take(f.writeName)
	if a == nil {
		return f.File.Write(p)
	}
	switch a.Kind {
	case KindTorn:
		n := min(a.Bytes, len(p))
		wrote, err := f.File.Write(p[:n])
		if err != nil {
			return wrote, err
		}
		return wrote, &Error{Point: f.writeName, Msg: a.Msg}
	case KindDelay:
		time.Sleep(a.Delay)
		return f.File.Write(p)
	case KindPanic:
		panic(&PanicValue{Point: f.writeName})
	default:
		return 0, &Error{Point: f.writeName, Msg: a.Msg}
	}
}

func (f *faultFile) Sync() error {
	if err := Inject(f.syncName); err != nil {
		return err
	}
	return f.File.Sync()
}
