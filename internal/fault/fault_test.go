package fault_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"subzero/internal/fault"
)

func TestDisabledInjectIsZeroAlloc(t *testing.T) {
	fault.Reset()
	fault.Register("alloc/test")
	allocs := testing.AllocsPerRun(1000, func() {
		if err := fault.Inject("alloc/test"); err != nil {
			t.Errorf("disabled failpoint injected: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled Inject allocates: %v allocs/op, want 0", allocs)
	}
}

func TestArmErrorAndDisarm(t *testing.T) {
	defer fault.Reset()
	name := fault.Register("test/error")
	if err := fault.Inject(name); err != nil {
		t.Fatalf("unarmed point injected: %v", err)
	}
	if err := fault.Arm(name, fault.Action{Kind: fault.KindError, Msg: "boom"}); err != nil {
		t.Fatal(err)
	}
	err := fault.Inject(name)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("armed point returned %v, want ErrInjected", err)
	}
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Point != name || fe.Msg != "boom" {
		t.Fatalf("injected error = %#v", err)
	}
	if got := fault.Hits(name); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	fault.Disarm(name)
	if err := fault.Inject(name); err != nil {
		t.Fatalf("disarmed point injected: %v", err)
	}
}

func TestArmUnregisteredFails(t *testing.T) {
	defer fault.Reset()
	if err := fault.Arm("no/such/point", fault.Action{Kind: fault.KindError}); err == nil {
		t.Fatal("arming an unregistered point succeeded")
	}
}

func TestCountLimitsTriggers(t *testing.T) {
	defer fault.Reset()
	name := fault.Register("test/count")
	if err := fault.Arm(name, fault.Action{Kind: fault.KindError, Count: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := fault.Inject(name); err == nil {
			t.Fatalf("trigger %d: no injection", i)
		}
	}
	if err := fault.Inject(name); err != nil {
		t.Fatalf("exhausted point still injects: %v", err)
	}
	if got := fault.Hits(name); got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
}

func TestPanicAction(t *testing.T) {
	defer fault.Reset()
	name := fault.Register("test/panic")
	if err := fault.Arm(name, fault.Action{Kind: fault.KindPanic}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		pv, ok := r.(*fault.PanicValue)
		if !ok || pv.Point != name {
			t.Fatalf("panicked with %v, want *PanicValue for %s", r, name)
		}
	}()
	_ = fault.Inject(name)
}

func TestDelayAction(t *testing.T) {
	defer fault.Reset()
	name := fault.Register("test/delay")
	if err := fault.Arm(name, fault.Action{Kind: fault.KindDelay, Delay: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := fault.Inject(name); err != nil {
		t.Fatalf("delay action errored: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("delay action returned after %v, want >= 10ms", elapsed)
	}
}

func TestArmSpec(t *testing.T) {
	defer fault.Reset()
	a := fault.Register("spec/a")
	b := fault.Register("spec/b")
	c := fault.Register("spec/c")
	if err := fault.ArmSpec("spec/a=error(no space); spec/b=torn(16) ;spec/c=delay(1ms)"); err != nil {
		t.Fatal(err)
	}
	err := fault.Inject(a)
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Msg != "no space" {
		t.Fatalf("spec/a injected %v", err)
	}
	if err := fault.Inject(b); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("spec/b (torn at plain site) injected %v, want error", err)
	}
	if err := fault.Inject(c); err != nil {
		t.Fatalf("spec/c injected %v, want nil after delay", err)
	}

	for _, bad := range []string{"nonsense", "spec/a=explode", "spec/a=torn(x)", "spec/a=delay(later)", "unregistered/x=error"} {
		if err := fault.ArmSpec(bad); err == nil {
			t.Errorf("spec %q armed without error", bad)
		}
	}
}

func TestRegisteredIsSorted(t *testing.T) {
	fault.Register("zzz/point")
	fault.Register("aaa/point")
	names := fault.Registered()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("Registered() not sorted: %q > %q", names[i-1], names[i])
		}
	}
}

func TestWrapFileTornWrite(t *testing.T) {
	defer fault.Reset()
	path := filepath.Join(t.TempDir(), "torn.log")
	raw, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	f := fault.WrapFile("test/file", raw)

	if _, err := f.Write([]byte("prefix|")); err != nil {
		t.Fatalf("unarmed write: %v", err)
	}
	if err := fault.Arm("test/file/write", fault.Action{Kind: fault.KindTorn, Bytes: 3}); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn write err = %v, want ErrInjected", err)
	}
	if n != 3 {
		t.Fatalf("torn write wrote %d bytes, want 3", n)
	}
	fault.Disarm("test/file/write")

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(blob); got != "prefix|abc" {
		t.Fatalf("file contents = %q, want %q", got, "prefix|abc")
	}
}

func TestWrapFileSyncFault(t *testing.T) {
	defer fault.Reset()
	path := filepath.Join(t.TempDir(), "sync.log")
	raw, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	f := fault.WrapFile("test/syncfile", raw)
	if err := f.Sync(); err != nil {
		t.Fatalf("unarmed sync: %v", err)
	}
	if err := fault.Arm("test/syncfile/sync", fault.Action{Kind: fault.KindError, Msg: "EIO"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("armed sync err = %v, want ErrInjected", err)
	}
}

func TestAsError(t *testing.T) {
	err := fault.AsError("worker", "boom")
	if got := err.Error(); got != "panic in worker: boom" {
		t.Fatalf("Error() = %q", got)
	}
	if len(err.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	if !strings.Contains(string(err.Stack), "goroutine") {
		t.Fatalf("stack looks wrong: %q", err.Stack[:min(64, len(err.Stack))])
	}
}

func TestArmFromEnv(t *testing.T) {
	defer fault.Reset()
	name := fault.Register("env/point")
	t.Setenv(fault.EnvVar, "env/point=error(from env)")
	if err := fault.ArmFromEnv(); err != nil {
		t.Fatal(err)
	}
	if err := fault.Inject(name); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("env-armed point injected %v", err)
	}
	fault.Reset()
	t.Setenv(fault.EnvVar, "")
	if err := fault.ArmFromEnv(); err != nil {
		t.Fatal(err)
	}
	if err := fault.Inject(name); err != nil {
		t.Fatalf("point armed from empty env: %v", err)
	}
}
