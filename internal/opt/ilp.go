package opt

import (
	"fmt"
	"time"

	"subzero/internal/lineage"
	"subzero/internal/lp"
	"subzero/internal/workflow"
)

// Objective scaling: query costs in seconds; disk in megabytes and runtime
// in seconds enter only through the ε-weighted tiebreak term.
const (
	epsTiebreak = 1e-6
	mb          = 1024 * 1024
)

// solve builds the strategy-selection ILP, solves it, and decodes the
// chosen plan.
func (o *Optimizer) solve(nodes []string, perNode map[string][]Choice, wl *workloadInfo, cons Constraints) (*Report, error) {
	beta := cons.Beta
	if beta == 0 {
		beta = 1
	}

	// Variable layout: for each node i with J_i candidates,
	//   x_ij           (selection)
	//   yB_ij          (backward assignment, if backward queries touch i)
	//   yF_ij          (forward assignment, if forward queries touch i)
	type varRef struct{ x, yB, yF int }
	refs := make(map[string][]varRef, len(nodes))
	nVars := 0
	alloc := func() int { v := nVars; nVars++; return v }
	for _, id := range nodes {
		cands := perNode[id]
		rs := make([]varRef, len(cands))
		for j := range cands {
			rs[j] = varRef{x: alloc(), yB: -1, yF: -1}
			if wl.backward[id] > 0 {
				rs[j].yB = alloc()
			}
			if wl.forward[id] > 0 {
				rs[j].yF = alloc()
			}
		}
		refs[id] = rs
	}

	prob := &lp.Problem{
		NumVars:   nVars,
		Objective: make([]float64, nVars),
		Binary:    make([]bool, nVars),
	}
	for i := range prob.Binary {
		prob.Binary[i] = true
	}

	diskCo := make([]float64, nVars)
	runCo := make([]float64, nVars)
	for _, id := range nodes {
		cands := perNode[id]
		rs := refs[id]
		pB, pF := wl.pBackward(id), wl.pForward(id)
		for j, c := range cands {
			diskMB := float64(c.DiskBytes) / mb
			runSec := c.Runtime.Seconds()
			prob.Objective[rs[j].x] = epsTiebreak * (diskMB + beta*runSec)
			diskCo[rs[j].x] = float64(c.DiskBytes)
			runCo[rs[j].x] = runSec
			if rs[j].yB >= 0 {
				prob.Objective[rs[j].yB] = pB * c.QBackward.Seconds()
			}
			if rs[j].yF >= 0 {
				prob.Objective[rs[j].yF] = pF * c.QForward.Seconds()
			}
		}
		// Every operator keeps at least one strategy.
		co := make([]float64, nVars)
		for j := range cands {
			co[rs[j].x] = 1
		}
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: co, Sense: lp.GE, RHS: 1})
		// Assignment: the query processor uses exactly one chosen
		// strategy per direction (y_ij <= x_ij, Σ_j y_ij = 1).
		for _, dir := range []func(varRef) int{func(r varRef) int { return r.yB }, func(r varRef) int { return r.yF }} {
			if dir(rs[0]) < 0 {
				continue
			}
			sum := make([]float64, nVars)
			for j := range cands {
				y := dir(rs[j])
				sum[y] = 1
				link := make([]float64, nVars)
				link[y] = 1
				link[rs[j].x] = -1
				prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: link, Sense: lp.LE, RHS: 0})
			}
			prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: sum, Sense: lp.EQ, RHS: 1})
		}
		// User-forced strategies.
		for _, f := range o.forced[id] {
			found := false
			for j, c := range cands {
				if c.Strategy == f {
					co := make([]float64, nVars)
					co[rs[j].x] = 1
					prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: co, Sense: lp.EQ, RHS: 1})
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("opt: forced strategy %s unavailable for node %s", f, id)
			}
		}
	}
	if cons.MaxDiskBytes > 0 {
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: diskCo, Sense: lp.LE, RHS: float64(cons.MaxDiskBytes)})
	}
	if cons.MaxRuntime > 0 {
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: runCo, Sense: lp.LE, RHS: cons.MaxRuntime.Seconds()})
	}

	start := time.Now()
	sol, err := lp.SolveILP(prob)
	if err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}
	rep := &Report{
		Plan:      workflow.Plan{},
		PerNode:   perNode,
		Objective: sol.Objective,
		SolveTime: time.Since(start),
		Status:    sol.Status,
	}
	if sol.Status != lp.Optimal {
		return rep, fmt.Errorf("opt: ILP %s (constraints too tight?)", sol.Status)
	}
	for _, id := range nodes {
		cands := perNode[id]
		rs := refs[id]
		var chosen []lineage.Strategy
		for j := range cands {
			if sol.X[rs[j].x] > 0.5 {
				perNode[id][j].Chosen = true
				rep.DiskBytes += cands[j].DiskBytes
				rep.Runtime += cands[j].Runtime
				if cands[j].Strategy != lineage.StratBlackbox {
					chosen = append(chosen, cands[j].Strategy)
				}
			}
		}
		if len(chosen) > 0 {
			rep.Plan[id] = chosen
		}
	}
	return rep, nil
}
