// Package opt implements SubZero's lineage strategy optimizer (paper
// §VII): given per-operator statistics from a profiling run, a sample
// lineage query workload, and user storage/runtime constraints, it chooses
// the set of storage strategies per operator that minimizes expected
// workload query cost, by formulating and solving a 0/1 integer program.
//
// The formulation follows the paper:
//
//	min_x  Σ_i p_i · min_{j | x_ij=1} q_ij  +  ε·Σ_ij (disk_ij + β·run_ij)·x_ij
//	s.t.   Σ_ij disk_ij·x_ij ≤ MaxDISK
//	       Σ_ij run_ij·x_ij  ≤ MaxRUNTIME
//	       ∀i: Σ_j x_ij ≥ 1
//	       x_ij = 1 for user-forced strategies
//
// with one refinement: the min-term is split by query direction, because
// the query processor picks the cheapest *chosen* strategy per query, and
// a backward-optimized store answers backward queries cheaply while being
// useless for forward ones (this is what makes "store both orientations"
// configurations like the paper's FullBoth/SubZero20 worthwhile). Each
// min-term is linearized exactly with assignment variables y_ij ≤ x_ij,
// Σ_j y_ij = 1.
package opt

import (
	"context"
	"fmt"
	"time"

	"subzero/internal/lineage"
	"subzero/internal/lp"
	"subzero/internal/query"
	"subzero/internal/workflow"
)

// Constraints are the user-specified resource limits (paper Figure 3:
// "Constraints" input to the Optimizer).
type Constraints struct {
	// MaxDiskBytes bounds total lineage storage; <= 0 means unbounded.
	MaxDiskBytes int64
	// MaxRuntime bounds total lineage-capture overhead per workflow run;
	// <= 0 means unbounded.
	MaxRuntime time.Duration
	// Beta weights runtime overhead against disk in the objective's
	// tiebreak term (paper's β). Zero means 1.0.
	Beta float64
}

// Choice records the optimizer's decision and estimates for one strategy.
type Choice struct {
	Strategy  lineage.Strategy
	DiskBytes int64
	Runtime   time.Duration
	QBackward time.Duration // est. backward query cost at this operator
	QForward  time.Duration // est. forward query cost at this operator
	Chosen    bool
}

// Report explains an optimization outcome.
type Report struct {
	Plan      workflow.Plan
	PerNode   map[string][]Choice
	Objective float64
	DiskBytes int64         // total estimated disk of the chosen plan
	Runtime   time.Duration // total estimated runtime overhead
	SolveTime time.Duration
	Status    lp.Status
}

// Optimizer chooses lineage strategies for a workflow using statistics
// from a profiling run.
type Optimizer struct {
	run    *workflow.Run
	stats  *lineage.Collector
	forced map[string][]lineage.Strategy
}

// New creates an optimizer over a profiling run. The run should have
// materialized each instrumented operator's richest supported lineage
// (e.g., Full plus its payload mode) so volumes and write times are
// measured rather than guessed; operators without profiled stores fall
// back to conservative estimates.
func New(run *workflow.Run, stats *lineage.Collector) *Optimizer {
	return &Optimizer{run: run, stats: stats, forced: map[string][]lineage.Strategy{}}
}

// Force pins strategies for a node (paper: "users can manually specify
// operator specific strategies prior to running the optimizer").
func (o *Optimizer) Force(nodeID string, strategies ...lineage.Strategy) {
	o.forced[nodeID] = append(o.forced[nodeID], strategies...)
}

// Choose solves the strategy-selection ILP for the given sample workload
// and constraints and returns the plan plus a report. The context is
// checked between per-node candidate enumeration and before the ILP
// solve; cancellation returns a wrapped ctx.Err().
func (o *Optimizer) Choose(ctx context.Context, workload []query.Query, cons Constraints) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(workload) == 0 {
		return nil, fmt.Errorf("opt: empty sample workload")
	}
	nodes, profiles, err := o.profiles()
	if err != nil {
		return nil, err
	}
	wl := analyzeWorkload(workload)

	// Enumerate candidate strategies with estimates per node.
	perNode := make(map[string][]Choice, len(nodes))
	for _, nodeID := range nodes {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("opt: cancelled at node %q: %w", nodeID, err)
		}
		cands := o.candidates(nodeID, profiles[nodeID], wl)
		cands = pruneCandidates(cands, wl, o.forced[nodeID], cons)
		perNode[nodeID] = cands
	}

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("opt: cancelled before solve: %w", err)
	}
	rep, err := o.solve(nodes, perNode, wl, cons)
	if err != nil {
		return nil, err
	}
	return rep, nil
}
