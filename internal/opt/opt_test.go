package opt_test

import (
	"context"
	"testing"
	"time"

	"subzero/internal/array"
	"subzero/internal/grid"
	"subzero/internal/kvstore"
	"subzero/internal/lineage"
	"subzero/internal/ops"
	"subzero/internal/opt"
	"subzero/internal/query"
	"subzero/internal/workflow"
)

// payUDF is a payload-only UDF: each output cell depends on a radius-1
// neighborhood, recorded as payload lineage (or full pairs when traced).
type payUDF struct {
	workflow.Meta
}

func newPayUDF() *payUDF {
	return &payUDF{Meta: workflow.Meta{
		OpName: "payudf",
		NIn:    1,
		Modes:  []lineage.Mode{lineage.Full, lineage.Pay},
	}}
}

func (u *payUDF) OutShape(in []grid.Shape) (grid.Shape, error) { return workflow.SameShapeOut(in) }

func (u *payUDF) Run(rc *workflow.RunCtx, ins []*array.Array) (*array.Array, error) {
	in := ins[0]
	out, err := array.New(u.OpName, in.Shape())
	if err != nil {
		return nil, err
	}
	sp := in.Space()
	coord := make(grid.Coord, sp.Rank())
	var neigh []uint64
	outBuf := make([]uint64, 1)
	for idx := uint64(0); idx < sp.Size(); idx++ {
		out.Set(idx, in.Get(idx)+1)
		outBuf[0] = idx
		if rc.NeedsPairs() {
			sp.UnravelInto(idx, coord)
			neigh = grid.Neighborhood(sp, coord, 1, neigh[:0])
			if err := rc.LWrite(outBuf, neigh); err != nil {
				return nil, err
			}
		}
		if rc.Modes().Has(lineage.Pay) {
			if err := rc.LWritePayload(outBuf, []byte{1}); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func (u *payUDF) MapP(mc *workflow.MapCtx, out uint64, payload []byte, _ int, dst []uint64) []uint64 {
	return grid.Neighborhood(mc.InSpaces[0], mc.OutCoord(out), int(payload[0]), dst)
}

// profiledRun executes scale -> payudf with profiling lineage (Full + Pay
// on the UDF, Map on the built-in).
func profiledRun(t *testing.T) (*workflow.Executor, *workflow.Run) {
	t.Helper()
	mgr, err := kvstore.NewManager("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	exec := workflow.NewExecutor(array.NewVersions(), mgr, lineage.NewCollector())
	spec := workflow.NewSpec("opt-test")
	spec.Add("scale", ops.NewUnary("scale", func(x float64) float64 { return x * 3 }), workflow.FromExternal("src"))
	spec.Add("udf", newPayUDF(), workflow.FromNode("scale"))

	src := array.MustNew("src", grid.Shape{20, 20})
	for i := range src.Data() {
		src.Data()[i] = float64(i % 7)
	}
	plan := workflow.Plan{
		"scale": {lineage.StratMap},
		"udf":   {lineage.StratFullOne, lineage.StratPayOne},
	}
	run, err := exec.Execute(context.Background(), spec, plan, map[string]*array.Array{"src": src})
	if err != nil {
		t.Fatal(err)
	}
	return exec, run
}

var sampleWorkload = []query.Query{
	{Direction: query.Backward, Cells: []uint64{5, 6, 7}, Path: []query.Step{{Node: "udf"}, {Node: "scale"}}},
	{Direction: query.Backward, Cells: []uint64{100}, Path: []query.Step{{Node: "udf"}}},
	{Direction: query.Forward, Cells: []uint64{3}, Path: []query.Step{{Node: "scale"}, {Node: "udf"}}},
}

func TestOptimizerPicksMapForBuiltins(t *testing.T) {
	exec, run := profiledRun(t)
	o := opt.New(run, exec.Stats())
	rep, err := o.Choose(context.Background(), sampleWorkload, opt.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	scale := rep.Plan.Strategies("scale")
	found := false
	for _, s := range scale {
		if s == lineage.StratMap {
			found = true
		}
		if s.StoresPairs() {
			t.Fatalf("optimizer materialized lineage for a mapping operator: %v", scale)
		}
	}
	if !found {
		t.Fatalf("mapping operator not assigned Map: %v", scale)
	}
}

func TestOptimizerUnboundedPicksStores(t *testing.T) {
	exec, run := profiledRun(t)
	o := opt.New(run, exec.Stats())
	rep, err := o.Choose(context.Background(), sampleWorkload, opt.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	udf := rep.Plan.Strategies("udf")
	backward := false
	for _, s := range udf {
		if s.StoresPairs() && s.Orient == lineage.BackwardOpt {
			backward = true
		}
	}
	if !backward {
		t.Fatalf("unbounded optimizer left UDF without backward lineage: %v", udf)
	}
}

func TestOptimizerTightBudgetFallsBackToBlackbox(t *testing.T) {
	exec, run := profiledRun(t)
	o := opt.New(run, exec.Stats())
	rep, err := o.Choose(context.Background(), sampleWorkload, opt.Constraints{MaxDiskBytes: 10}) // 10 bytes: nothing fits
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Plan["udf"]; ok {
		t.Fatalf("udf should be blackbox under a 10-byte budget, got %v", rep.Plan["udf"])
	}
	if rep.DiskBytes > 10 {
		t.Fatalf("plan disk %d exceeds budget", rep.DiskBytes)
	}
}

func TestOptimizerRespectsBudgetExactly(t *testing.T) {
	exec, run := profiledRun(t)
	o := opt.New(run, exec.Stats())
	// Find a budget between the cheapest and the full store cost.
	unbounded, err := o.Choose(context.Background(), sampleWorkload, opt.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	budget := unbounded.DiskBytes / 2
	if budget == 0 {
		t.Skip("plan too small to halve")
	}
	o2 := opt.New(run, exec.Stats())
	rep, err := o2.Choose(context.Background(), sampleWorkload, opt.Constraints{MaxDiskBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DiskBytes > budget {
		t.Fatalf("plan disk %d exceeds budget %d", rep.DiskBytes, budget)
	}
}

func TestOptimizerObjectiveMonotoneInBudget(t *testing.T) {
	exec, run := profiledRun(t)
	var prev float64 = -1
	for _, budget := range []int64{1 << 10, 1 << 14, 1 << 18, 1 << 26, 0} {
		o := opt.New(run, exec.Stats())
		rep, err := o.Choose(context.Background(), sampleWorkload, opt.Constraints{MaxDiskBytes: budget})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if prev >= 0 && rep.Objective > prev*1.0001 {
			t.Fatalf("objective increased with larger budget: %g -> %g", prev, rep.Objective)
		}
		prev = rep.Objective
	}
}

func TestOptimizerForcedStrategy(t *testing.T) {
	exec, run := profiledRun(t)
	o := opt.New(run, exec.Stats())
	o.Force("udf", lineage.StratPayMany)
	rep, err := o.Choose(context.Background(), sampleWorkload, opt.Constraints{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range rep.Plan.Strategies("udf") {
		if s == lineage.StratPayMany {
			found = true
		}
	}
	if !found {
		t.Fatalf("forced strategy not in plan: %v", rep.Plan["udf"])
	}
}

func TestOptimizerForcedUnavailable(t *testing.T) {
	exec, run := profiledRun(t)
	o := opt.New(run, exec.Stats())
	o.Force("scale", lineage.StratPayOne) // built-ins don't support Pay
	if _, err := o.Choose(context.Background(), sampleWorkload, opt.Constraints{}); err == nil {
		t.Fatal("forcing an unsupported strategy should fail")
	}
}

func TestOptimizerEmptyWorkload(t *testing.T) {
	exec, run := profiledRun(t)
	o := opt.New(run, exec.Stats())
	if _, err := o.Choose(context.Background(), nil, opt.Constraints{}); err == nil {
		t.Fatal("empty workload accepted")
	}
}

// The chosen plan must actually be executable and answer queries
// identically to black-box: optimizer output feeds back into the executor.
func TestOptimizedPlanRoundTrip(t *testing.T) {
	exec, run := profiledRun(t)
	o := opt.New(run, exec.Stats())
	rep, err := o.Choose(context.Background(), sampleWorkload, opt.Constraints{})
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth from the profiling run via tracing only.
	truthExec := query.New(run, exec.Stats(), query.Options{})
	q := sampleWorkload[0]
	truthRes, err := truthExec.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	src := array.MustNew("src", grid.Shape{20, 20})
	for i := range src.Data() {
		src.Data()[i] = float64(i % 7)
	}
	run2, err := exec.Execute(context.Background(), run.Spec, rep.Plan, map[string]*array.Array{"src": src})
	if err != nil {
		t.Fatalf("optimized plan failed to execute: %v", err)
	}
	qe := query.New(run2, exec.Stats(), query.DefaultOptions())
	res, err := qe.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	a, b := truthRes.Cells(), res.Cells()
	if len(a) != len(b) {
		t.Fatalf("optimized plan answers differently: %d vs %d cells", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("optimized plan answers differently")
		}
	}
}

func TestOptimizerRuntimeConstraint(t *testing.T) {
	exec, run := profiledRun(t)
	o := opt.New(run, exec.Stats())
	rep, err := o.Choose(context.Background(), sampleWorkload, opt.Constraints{MaxRuntime: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runtime > time.Nanosecond {
		t.Fatalf("plan runtime %v exceeds constraint", rep.Runtime)
	}
	if _, ok := rep.Plan["udf"]; ok {
		t.Fatalf("udf must be blackbox under a 1ns runtime budget: %v", rep.Plan["udf"])
	}
}
