package opt

import (
	"sort"
	"time"

	"subzero/internal/lineage"
	"subzero/internal/query"
	"subzero/internal/workflow"
)

// nodeProfile is what the statistics collector and profiling stores know
// about one operator instance.
type nodeProfile struct {
	nodeID string
	op     workflow.Operator

	exec time.Duration // average execution time (re-execution cost basis)

	// Full-pair volumes (from a profiled Full store or collector stats).
	pairs    float64
	outCells float64
	inCells  float64

	// Payload volumes (from a profiled Pay/Comp store).
	payPairs    float64
	payOutCells float64
	payBytes    float64

	// measured holds exact (size, write time) per profiled strategy.
	measured map[lineage.Strategy]measuredStore
}

type measuredStore struct {
	bytes     int64
	writeTime time.Duration
}

// profiles gathers a nodeProfile for every node in the run, in
// deterministic order.
func (o *Optimizer) profiles() ([]string, map[string]*nodeProfile, error) {
	var nodes []string
	out := make(map[string]*nodeProfile)
	for _, n := range o.run.Spec.Nodes() {
		nodes = append(nodes, n.ID)
		st := o.stats.Get(n.ID)
		p := &nodeProfile{
			nodeID:   n.ID,
			op:       n.Op,
			exec:     st.AvgExecTime(),
			measured: make(map[lineage.Strategy]measuredStore),
		}
		for _, store := range o.run.Stores(n.ID) {
			ss := store.Stats()
			// Runtime overhead is costed from the per-shard ingest stats,
			// not the raw serial WriteTime: under sharded ingest the
			// encode work spreads across workers and the operator thread
			// pays only enqueue + drain, so the wall-clock a strategy
			// adds is the critical path of the two sides.
			p.measured[store.Strategy()] = measuredStore{bytes: store.SizeBytes(), writeTime: ss.CriticalWriteTime()}
			switch store.Strategy().Mode {
			case lineage.Full:
				p.pairs = float64(ss.Pairs)
				p.outCells = float64(ss.OutCells)
				p.inCells = float64(ss.InCells)
			case lineage.Pay, lineage.Comp:
				p.payPairs = float64(ss.Pairs)
				p.payOutCells = float64(ss.OutCells)
				p.payBytes = float64(ss.PayloadBytes)
			}
		}
		// Fall back to collector volumes, then to the conservative
		// all-to-all assumption for operators never profiled.
		if p.pairs == 0 && st.Pairs > 0 && st.Runs > 0 {
			p.pairs = float64(st.Pairs) / float64(st.Runs)
			p.outCells = float64(st.OutCells) / float64(st.Runs)
			p.inCells = float64(st.InCells) / float64(st.Runs)
		}
		if p.pairs == 0 {
			mc, err := o.run.MapCtx(n.ID)
			if err != nil {
				return nil, nil, err
			}
			p.pairs = 1
			p.outCells = float64(mc.OutSpace.Size())
			for _, sp := range mc.InSpaces {
				p.inCells += float64(sp.Size())
			}
		}
		if p.payPairs == 0 {
			// Assume payload lineage would mirror full lineage with a
			// small constant payload.
			p.payPairs = p.pairs
			p.payOutCells = p.outCells
			p.payBytes = p.pairs * 4
		}
		out[n.ID] = p
	}
	sort.Strings(nodes)
	return nodes, out, nil
}

// workloadInfo summarizes the sample workload: per-node touch
// probabilities split by direction, and the average query size.
type workloadInfo struct {
	total    int
	backward map[string]int // node -> #backward queries touching it
	forward  map[string]int
	avgCells float64
	hasBwd   bool
	hasFwd   bool
}

func analyzeWorkload(workload []query.Query) *workloadInfo {
	wl := &workloadInfo{
		total:    len(workload),
		backward: map[string]int{},
		forward:  map[string]int{},
	}
	totalCells := 0
	for _, q := range workload {
		totalCells += len(q.Cells)
		seen := map[string]bool{}
		for _, st := range q.Path {
			if seen[st.Node] {
				continue
			}
			seen[st.Node] = true
			if q.Direction == query.Backward {
				wl.backward[st.Node]++
				wl.hasBwd = true
			} else {
				wl.forward[st.Node]++
				wl.hasFwd = true
			}
		}
	}
	wl.avgCells = float64(totalCells) / float64(len(workload))
	if wl.avgCells < 1 {
		wl.avgCells = 1
	}
	return wl
}

// pBackward returns p_i restricted to backward queries.
func (wl *workloadInfo) pBackward(nodeID string) float64 {
	return float64(wl.backward[nodeID]) / float64(wl.total)
}

// pForward returns p_i restricted to forward queries.
func (wl *workloadInfo) pForward(nodeID string) float64 {
	return float64(wl.forward[nodeID]) / float64(wl.total)
}

// candidates enumerates every strategy the operator supports, with disk,
// runtime, and per-direction query-cost estimates.
func (o *Optimizer) candidates(nodeID string, p *nodeProfile, wl *workloadInfo) []Choice {
	cands := []Choice{o.estimate(p, lineage.StratBlackbox, wl)}
	if workflow.Supports(p.op, lineage.Map) {
		cands = append(cands, o.estimate(p, lineage.StratMap, wl))
	}
	if workflow.Supports(p.op, lineage.Full) {
		for _, s := range []lineage.Strategy{
			lineage.StratFullOne, lineage.StratFullMany,
			lineage.StratFullOneFwd, lineage.StratFullManyFwd,
		} {
			cands = append(cands, o.estimate(p, s, wl))
		}
	}
	if workflow.Supports(p.op, lineage.Pay) {
		cands = append(cands, o.estimate(p, lineage.StratPayOne, wl), o.estimate(p, lineage.StratPayMany, wl))
	}
	if workflow.Supports(p.op, lineage.Comp) {
		cands = append(cands, o.estimate(p, lineage.StratCompOne, wl), o.estimate(p, lineage.StratCompMany, wl))
	}
	return cands
}

// estimate computes the cost-model row for one (operator, strategy) pair.
func (o *Optimizer) estimate(p *nodeProfile, s lineage.Strategy, wl *workloadInfo) Choice {
	c := Choice{Strategy: s}
	c.DiskBytes, c.Runtime = o.overheads(p, s)
	c.QBackward = o.queryCost(p, s, wl, query.Backward)
	c.QForward = o.queryCost(p, s, wl, query.Forward)
	return c
}

// overheads estimates a strategy's storage and runtime overhead, using the
// profiling run's exact measurements when that strategy was profiled and
// the analytic model otherwise. The analytic model assumes the v3
// container codec — the default for every store this optimizer would
// cause to be created — so cell volume is costed at EstBytesPerCellV3
// and the per-pair write at EstWritePerPairV3.
func (o *Optimizer) overheads(p *nodeProfile, s lineage.Strategy) (int64, time.Duration) {
	if m, ok := p.measured[s]; ok {
		return m.bytes, m.writeTime
	}
	var bytes float64
	var treeInserts float64
	switch {
	case s.Mode == lineage.Blackbox || s.Mode == lineage.Map:
		return 0, 0
	case s.Mode == lineage.Full && s.Enc == lineage.One && s.Orient == lineage.BackwardOpt:
		bytes = p.pairs*lineage.EstRecordOverhead +
			lineage.EstBytesPerCellV3*(p.outCells+p.inCells) +
			p.outCells*lineage.EstCellEntryBytes
	case s.Mode == lineage.Full && s.Enc == lineage.One && s.Orient == lineage.ForwardOpt:
		bytes = p.pairs*lineage.EstRecordOverhead +
			lineage.EstBytesPerCellV3*(p.outCells+p.inCells) +
			p.inCells*lineage.EstCellEntryBytes
	case s.Mode == lineage.Full && s.Enc == lineage.Many && s.Orient == lineage.BackwardOpt:
		bytes = p.pairs*(lineage.EstRecordOverhead+lineage.EstTreeEntryBytes) +
			lineage.EstBytesPerCellV3*(p.outCells+p.inCells)
		treeInserts = p.pairs
	case s.Mode == lineage.Full && s.Enc == lineage.Many && s.Orient == lineage.ForwardOpt:
		nIn := float64(p.op.NumInputs())
		bytes = p.pairs*(lineage.EstRecordOverhead+nIn*lineage.EstTreeEntryBytes) +
			lineage.EstBytesPerCellV3*(p.outCells+p.inCells)
		treeInserts = p.pairs * nIn
	case s.Enc == lineage.One: // PayOne / CompOne
		perPair := p.payBytes / p.payPairs
		bytes = p.payOutCells * (lineage.EstCellEntryBytes + perPair)
	default: // PayMany / CompMany
		bytes = p.payPairs*(lineage.EstRecordOverhead+lineage.EstTreeEntryBytes) +
			lineage.EstBytesPerCellV3*p.payOutCells + p.payBytes
		treeInserts = p.payPairs
	}
	pairs := p.pairs
	if s.Mode == lineage.Pay || s.Mode == lineage.Comp {
		pairs = p.payPairs
	}
	rt := time.Duration(bytes)*lineage.EstWritePerByte +
		time.Duration(pairs)*lineage.EstWritePerPairV3 +
		time.Duration(treeInserts)*lineage.EstTreeInsert
	return int64(bytes), rt
}

// queryCost estimates the cost of one query step of the given direction at
// this operator under strategy s, for an average-size query.
func (o *Optimizer) queryCost(p *nodeProfile, s lineage.Strategy, wl *workloadInfo, d query.Direction) time.Duration {
	n := time.Duration(wl.avgCells)
	perPairB := time.Duration(p.inCells / p.pairs)
	perPairF := time.Duration(p.outCells / p.pairs)
	if perPairB == 0 {
		perPairB = 1
	}
	if perPairF == 0 {
		perPairF = 1
	}
	switch s.Mode {
	case lineage.Blackbox:
		return p.exec + time.Duration(p.pairs)*lineage.CostScanPair
	case lineage.Map:
		return n * lineage.CostMapCall
	}
	pairs := time.Duration(p.pairs)
	if s.Mode == lineage.Pay || s.Mode == lineage.Comp {
		pairs = time.Duration(p.payPairs)
	}
	matched := (d == query.Backward && s.Orient == lineage.BackwardOpt) ||
		(d == query.Forward && s.Orient == lineage.ForwardOpt && s.Mode == lineage.Full)
	if !matched {
		// Scan every pair, probing in situ on the v3 containers; payload
		// modes additionally evaluate map_p per stored output cell.
		cost := pairs * lineage.CostScanPairV3
		if s.Mode == lineage.Pay || s.Mode == lineage.Comp {
			outsPerPair := time.Duration(p.payOutCells / p.payPairs)
			if outsPerPair == 0 {
				outsPerPair = 1
			}
			cost += pairs * outsPerPair * lineage.CostMapPCall
		}
		return cost
	}
	lookup := lineage.CostLookupOne
	if s.Enc == lineage.Many {
		lookup = lineage.CostLookupMany
	}
	per := perPairB
	if d == query.Forward {
		per = perPairF
	}
	cost := n*lookup + n*per*lineage.CostCellSet
	if s.Mode == lineage.Pay || s.Mode == lineage.Comp {
		cost += n * lineage.CostMapPCall
	}
	return cost
}

// pruneCandidates applies the paper's heuristic pruning: drop strategies
// that alone exceed the constraints, and pair-storing strategies that are
// not properly indexed for any query in the workload. Forced strategies
// are always kept; Blackbox and Map are never pruned.
func pruneCandidates(cands []Choice, wl *workloadInfo, forced []lineage.Strategy, cons Constraints) []Choice {
	isForced := func(s lineage.Strategy) bool {
		for _, f := range forced {
			if f == s {
				return true
			}
		}
		return false
	}
	out := cands[:0]
	for _, c := range cands {
		s := c.Strategy
		switch {
		case isForced(s) || !s.StoresPairs():
			out = append(out, c)
			continue
		case cons.MaxDiskBytes > 0 && c.DiskBytes > cons.MaxDiskBytes:
			continue
		case cons.MaxRuntime > 0 && c.Runtime > cons.MaxRuntime:
			continue
		}
		matchedSomething :=
			(wl.hasBwd && s.Orient == lineage.BackwardOpt) ||
				(wl.hasFwd && s.Orient == lineage.ForwardOpt)
		if !matchedSomething {
			continue
		}
		out = append(out, c)
	}
	return out
}
