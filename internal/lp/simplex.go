package lp

import (
	"fmt"
	"math"
)

// simplex solves: minimize c·x subject to cons, x ≥ 0, using the two-phase
// primal simplex method on a dense tableau with Bland's anti-cycling rule.
func simplex(numVars int, c []float64, cons []Constraint) (Solution, error) {
	m := len(cons)
	// Column layout: [0,numVars) structural, then one slack/surplus per
	// inequality, then one artificial per GE/EQ (and per LE with negative
	// RHS after normalization).
	nSlack := 0
	for _, con := range cons {
		if con.Sense != EQ {
			nSlack++
		}
	}
	// Build rows with RHS normalized to be non-negative.
	type row struct {
		coeffs []float64
		sense  Sense
		rhs    float64
	}
	rows := make([]row, m)
	for i, con := range cons {
		r := row{coeffs: make([]float64, numVars), sense: con.Sense, rhs: con.RHS}
		copy(r.coeffs, con.Coeffs)
		if r.rhs < 0 {
			for j := range r.coeffs {
				r.coeffs[j] = -r.coeffs[j]
			}
			r.rhs = -r.rhs
			switch r.sense {
			case LE:
				r.sense = GE
			case GE:
				r.sense = LE
			}
		}
		rows[i] = r
	}
	// Count artificials: GE and EQ rows need one.
	nArt := 0
	for _, r := range rows {
		if r.sense != LE {
			nArt++
		}
	}
	total := numVars + nSlack + nArt
	a := make([][]float64, m)
	basis := make([]int, m)
	slackCol := numVars
	artCol := numVars + nSlack
	artStart := artCol
	for i, r := range rows {
		a[i] = make([]float64, total+1)
		copy(a[i], r.coeffs)
		a[i][total] = r.rhs
		switch r.sense {
		case LE:
			a[i][slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			a[i][slackCol] = -1
			slackCol++
			a[i][artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			a[i][artCol] = 1
			basis[i] = artCol
			artCol++
		}
	}

	t := &tableau{a: a, basis: basis, nCols: total}

	if nArt > 0 {
		// Phase 1: minimize sum of artificials.
		phase1 := make([]float64, total)
		for j := artStart; j < artStart+nArt; j++ {
			phase1[j] = 1
		}
		val, status, err := t.optimize(phase1)
		if err != nil {
			return Solution{}, err
		}
		if status == Unbounded {
			return Solution{}, fmt.Errorf("lp: phase-1 unbounded (internal error)")
		}
		if val > 1e-6 {
			return Solution{Status: Infeasible}, nil
		}
		// Drive any lingering zero-level artificials out of the basis.
		for i := range t.basis {
			if t.basis[i] < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: harmless, artificial stays at zero.
				continue
			}
		}
		// Forbid artificials from re-entering by zeroing their columns.
		for i := range t.a {
			for j := artStart; j < artStart+nArt; j++ {
				t.a[i][j] = 0
			}
		}
	}

	// Phase 2: minimize the real objective.
	phase2 := make([]float64, total)
	copy(phase2, c)
	val, status, err := t.optimize(phase2)
	if err != nil {
		return Solution{}, err
	}
	if status == Unbounded {
		return Solution{Status: Unbounded}, nil
	}
	x := make([]float64, numVars)
	for i, bv := range t.basis {
		if bv < numVars {
			x[bv] = t.a[i][t.nCols]
		}
	}
	// Clamp tiny negatives from floating-point noise.
	for j := range x {
		if x[j] < 0 && x[j] > -1e-9 {
			x[j] = 0
		}
	}
	return Solution{Status: Optimal, X: x, Objective: val}, nil
}

type tableau struct {
	a     [][]float64 // m x (nCols+1); last column is RHS
	basis []int
	nCols int
}

// optimize runs primal simplex iterations for the cost vector c, returning
// the optimal objective value. Entering variables are chosen by Bland's
// rule (smallest eligible index), which guarantees termination.
func (t *tableau) optimize(c []float64) (float64, Status, error) {
	m := len(t.a)
	// Reduced-cost row: z[j] = c[j] - Σ_i c[basis[i]]·a[i][j].
	z := make([]float64, t.nCols+1)
	copy(z, c)
	for i := 0; i < m; i++ {
		cb := c[t.basis[i]]
		if cb == 0 {
			continue
		}
		for j := 0; j <= t.nCols; j++ {
			z[j] -= cb * t.a[i][j]
		}
	}
	for iter := 0; iter < maxIters; iter++ {
		// Bland: first column with negative reduced cost.
		enter := -1
		for j := 0; j < t.nCols; j++ {
			if z[j] < -eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return -z[t.nCols], Optimal, nil
		}
		// Ratio test; Bland tie-break on smallest basis variable.
		leave, best := -1, math.Inf(1)
		for i := 0; i < m; i++ {
			if t.a[i][enter] > eps {
				ratio := t.a[i][t.nCols] / t.a[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
					leave, best = i, ratio
				}
			}
		}
		if leave == -1 {
			return 0, Unbounded, nil
		}
		t.pivot(leave, enter)
		// Update reduced-cost row.
		factor := z[enter]
		if factor != 0 {
			for j := 0; j <= t.nCols; j++ {
				z[j] -= factor * t.a[leave][j]
			}
			z[enter] = 0
		}
	}
	return 0, Optimal, fmt.Errorf("lp: simplex exceeded %d iterations", maxIters)
}

// pivot makes column j basic in row i.
func (t *tableau) pivot(i, j int) {
	p := t.a[i][j]
	for col := 0; col <= t.nCols; col++ {
		t.a[i][col] /= p
	}
	t.a[i][j] = 1 // exact
	for r := range t.a {
		if r == i {
			continue
		}
		f := t.a[r][j]
		if f == 0 {
			continue
		}
		for col := 0; col <= t.nCols; col++ {
			t.a[r][col] -= f * t.a[i][col]
		}
		t.a[r][j] = 0 // exact
	}
	t.basis[i] = j
}
