package lp

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-5 }

func TestValidate(t *testing.T) {
	bad := []Problem{
		{NumVars: 0},
		{NumVars: 2, Objective: []float64{1}},
		{NumVars: 2, Objective: []float64{1, 2}, Binary: []bool{true}},
		{NumVars: 1, Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1, 2}}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d validated", i)
		}
	}
}

// Classic textbook LP:
//
//	max 3x + 5y  s.t. x<=4, 2y<=12, 3x+2y<=18  -> optimum 36 at (2,6).
func TestSimplexTextbook(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-3, -5}, // maximize -> minimize negation
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Sense: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Sense: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Sense: LE, RHS: 18},
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almostEq(sol.Objective, -36) {
		t.Fatalf("got %v obj=%f, want optimal -36", sol.Status, sol.Objective)
	}
	if !almostEq(sol.X[0], 2) || !almostEq(sol.X[1], 6) {
		t.Fatalf("x=%v, want (2,6)", sol.X)
	}
}

func TestSimplexGEAndEQ(t *testing.T) {
	// min x+y s.t. x+y>=2, x-y=0  -> (1,1) obj 2.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: GE, RHS: 2},
			{Coeffs: []float64{1, -1}, Sense: EQ, RHS: 0},
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almostEq(sol.Objective, 2) || !almostEq(sol.X[0], 1) {
		t.Fatalf("sol=%+v", sol)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3).
	p := &Problem{
		NumVars:     1,
		Objective:   []float64{1},
		Constraints: []Constraint{{Coeffs: []float64{-1}, Sense: LE, RHS: -3}},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almostEq(sol.X[0], 3) {
		t.Fatalf("sol=%+v", sol)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Sense: GE, RHS: 5},
			{Coeffs: []float64{1}, Sense: LE, RHS: 2},
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status=%v, want infeasible", sol.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	// min -x with only x >= 0: unbounded below.
	p := &Problem{NumVars: 1, Objective: []float64{-1}}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status=%v, want unbounded", sol.Status)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Degenerate vertex: redundant constraints meeting at the optimum.
	p := &Problem{
		NumVars:   2,
		Objective: []float64{-1, -1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Sense: LE, RHS: 1},
			{Coeffs: []float64{0, 1}, Sense: LE, RHS: 1},
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 2},
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 2}, // duplicate
		},
	}
	sol, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almostEq(sol.Objective, -2) {
		t.Fatalf("sol=%+v", sol)
	}
}

func TestILPKnapsack(t *testing.T) {
	// max 10a+13b+7c s.t. 3a+4b+2c <= 6, binaries.
	// Best: a+c (17)? a+b=23 weight 7 no; b+c=20 weight 6 yes -> 20.
	p := &Problem{
		NumVars:     3,
		Objective:   []float64{-10, -13, -7},
		Constraints: []Constraint{{Coeffs: []float64{3, 4, 2}, Sense: LE, RHS: 6}},
		Binary:      []bool{true, true, true},
	}
	sol, err := SolveILP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !almostEq(sol.Objective, -20) {
		t.Fatalf("sol=%+v, want -20", sol)
	}
	if !almostEq(sol.X[0], 0) || !almostEq(sol.X[1], 1) || !almostEq(sol.X[2], 1) {
		t.Fatalf("x=%v, want (0,1,1)", sol.X)
	}
}

func TestILPForcedAssignment(t *testing.T) {
	// Covering with equality: exactly one of each group.
	p := &Problem{
		NumVars:   4,
		Objective: []float64{5, 1, 1, 5},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 0, 0}, Sense: EQ, RHS: 1},
			{Coeffs: []float64{0, 0, 1, 1}, Sense: EQ, RHS: 1},
		},
		Binary: []bool{true, true, true, true},
	}
	sol, err := SolveILP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sol.Objective, 2) {
		t.Fatalf("obj=%f, want 2", sol.Objective)
	}
}

func TestILPInfeasible(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: GE, RHS: 3}, // binaries can sum to at most 2
		},
		Binary: []bool{true, true},
	}
	sol, err := SolveILP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status=%v, want infeasible", sol.Status)
	}
}

func TestILPIntegralityGap(t *testing.T) {
	// LP relaxation picks x=0.5s; ILP must find the worse-but-integral
	// optimum. min -(x+y) s.t. 2x+2y <= 3 -> LP obj -1.5, ILP obj -1.
	p := &Problem{
		NumVars:     2,
		Objective:   []float64{-1, -1},
		Constraints: []Constraint{{Coeffs: []float64{2, 2}, Sense: LE, RHS: 3}},
		Binary:      []bool{true, true},
	}
	rel, err := SolveLP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rel.Objective, -1.5) {
		t.Fatalf("relaxation obj=%f, want -1.5", rel.Objective)
	}
	sol, err := SolveILP(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(sol.Objective, -1) {
		t.Fatalf("ILP obj=%f, want -1", sol.Objective)
	}
}

func TestBruteRequiresBinary(t *testing.T) {
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	if _, err := SolveBrute(p); err == nil {
		t.Fatal("continuous problem accepted by brute solver")
	}
}

// Property: on random small binary problems, B&B matches exhaustive search
// (both status and objective value).
func TestILPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(7) // 2..8 variables
		p := &Problem{
			NumVars:   n,
			Objective: make([]float64, n),
			Binary:    make([]bool, n),
		}
		for j := 0; j < n; j++ {
			p.Objective[j] = float64(rng.Intn(41) - 20)
			p.Binary[j] = true
		}
		nCons := 1 + rng.Intn(4)
		for c := 0; c < nCons; c++ {
			co := make([]float64, n)
			for j := range co {
				co[j] = float64(rng.Intn(11) - 5)
			}
			p.Constraints = append(p.Constraints, Constraint{
				Coeffs: co,
				Sense:  Sense(rng.Intn(3)),
				RHS:    float64(rng.Intn(21) - 10),
			})
		}
		want, err := SolveBrute(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveILP(p)
		if err != nil {
			t.Fatalf("trial %d: %v (problem %+v)", trial, err, p)
		}
		if want.Status != got.Status {
			t.Fatalf("trial %d: status %v, brute %v (problem %+v)", trial, got.Status, want.Status, p)
		}
		if want.Status == Optimal && !almostEq(want.Objective, got.Objective) {
			t.Fatalf("trial %d: obj %f, brute %f (problem %+v)", trial, got.Objective, want.Objective, p)
		}
		// The B&B solution itself must be feasible and integral.
		if got.Status == Optimal {
			if !feasible(p, got.X) {
				t.Fatalf("trial %d: B&B returned infeasible point %v", trial, got.X)
			}
			for j, v := range got.X {
				if math.Abs(v-math.Round(v)) > 1e-6 {
					t.Fatalf("trial %d: fractional binary x[%d]=%f", trial, j, v)
				}
			}
		}
	}
}

// The shape of the real SubZero optimizer problem: per-operator strategy
// selection with assignment variables and a disk budget (see internal/opt).
func TestILPStrategySelectionShape(t *testing.T) {
	// 2 operators x 3 strategies. x[i*3+j]=choice, y in second block.
	// Query costs q, disk costs d.
	q := [][]float64{{10, 2, 1}, {8, 3, 0.5}}
	d := [][]float64{{0, 5, 20}, {0, 4, 30}}
	budget := 10.0
	nx := 6
	p := &Problem{
		NumVars:   12, // x then y
		Objective: make([]float64, 12),
		Binary:    make([]bool, 12),
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			p.Objective[nx+i*3+j] = q[i][j] // query cost via y
			p.Objective[i*3+j] = 1e-4 * d[i][j]
			p.Binary[i*3+j] = true
			p.Binary[nx+i*3+j] = true
		}
	}
	// Σ_j y_ij = 1 per operator; y_ij <= x_ij; disk budget on x.
	for i := 0; i < 2; i++ {
		co := make([]float64, 12)
		for j := 0; j < 3; j++ {
			co[nx+i*3+j] = 1
		}
		p.Constraints = append(p.Constraints, Constraint{Coeffs: co, Sense: EQ, RHS: 1})
		for j := 0; j < 3; j++ {
			co2 := make([]float64, 12)
			co2[nx+i*3+j] = 1
			co2[i*3+j] = -1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: co2, Sense: LE, RHS: 0})
		}
	}
	diskCo := make([]float64, 12)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			diskCo[i*3+j] = d[i][j]
		}
	}
	p.Constraints = append(p.Constraints, Constraint{Coeffs: diskCo, Sense: LE, RHS: budget})

	sol, err := SolveILP(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status=%v", sol.Status)
	}
	// Budget 10 allows one mid-tier strategy each (5+4=9): query cost 2+3.
	if !almostEq(sol.Objective, 5+1e-4*9) {
		t.Fatalf("obj=%f, want %f", sol.Objective, 5+1e-4*9)
	}
}

func BenchmarkILPOptimizerSized(b *testing.B) {
	// Typical SubZero instance: 26 operators x 4 strategies would exceed
	// brute force but is easy for B&B; use 8x3 with a budget.
	rng := rand.New(rand.NewSource(5))
	nOps, nStrat := 8, 3
	n := nOps * nStrat * 2
	p := &Problem{NumVars: n, Objective: make([]float64, n), Binary: make([]bool, n)}
	xv := func(i, j int) int { return i*nStrat + j }
	yv := func(i, j int) int { return nOps*nStrat + i*nStrat + j }
	diskCo := make([]float64, n)
	for i := 0; i < nOps; i++ {
		co := make([]float64, n)
		for j := 0; j < nStrat; j++ {
			p.Binary[xv(i, j)] = true
			p.Binary[yv(i, j)] = true
			p.Objective[yv(i, j)] = rng.Float64() * 10
			diskCo[xv(i, j)] = rng.Float64() * 8
			co[yv(i, j)] = 1
			co2 := make([]float64, n)
			co2[yv(i, j)] = 1
			co2[xv(i, j)] = -1
			p.Constraints = append(p.Constraints, Constraint{Coeffs: co2, Sense: LE, RHS: 0})
		}
		p.Constraints = append(p.Constraints, Constraint{Coeffs: co, Sense: EQ, RHS: 1})
	}
	p.Constraints = append(p.Constraints, Constraint{Coeffs: diskCo, Sense: LE, RHS: 20})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveILP(p); err != nil {
			b.Fatal(err)
		}
	}
}
