// Package lp implements a small linear-programming and 0/1
// integer-programming solver.
//
// SubZero's lineage-strategy optimizer (paper §VII) formulates storage
// strategy selection as an integer program and solves it "using the simplex
// method in GNU Linear Programming Kit"; the instances are tiny (operators ×
// strategies binaries) and solve in about a millisecond. This package is
// the stdlib-only substitute: a dense two-phase primal simplex with Bland's
// rule, plus depth-first branch-and-bound for binary variables, and an
// exhaustive reference solver used to validate both in tests.
package lp

import (
	"fmt"
	"math"
)

// Sense is the relational operator of a constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // Σ coeffs·x ≤ RHS
	GE              // Σ coeffs·x ≥ RHS
	EQ              // Σ coeffs·x = RHS
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Constraint is a single linear constraint over the problem's variables.
// Coeffs may be shorter than NumVars; missing entries are zero.
type Constraint struct {
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a minimization over non-negative variables:
//
//	minimize  Objective · x
//	subject to Constraints, 0 ≤ x,  x_j ≤ 1 and integral for Binary[j].
//
// Binary variables additionally get an implicit x ≤ 1 bound.
type Problem struct {
	NumVars     int
	Objective   []float64
	Constraints []Constraint
	Binary      []bool // len NumVars; true marks a 0/1 variable
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Solution holds variable values and the objective at the optimum.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const (
	eps      = 1e-7
	maxIters = 100000
)

// Validate checks structural consistency of a problem.
func (p *Problem) Validate() error {
	if p.NumVars <= 0 {
		return fmt.Errorf("lp: problem has no variables")
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.Objective), p.NumVars)
	}
	if p.Binary != nil && len(p.Binary) != p.NumVars {
		return fmt.Errorf("lp: binary flags have %d entries, want %d", len(p.Binary), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) > p.NumVars {
			return fmt.Errorf("lp: constraint %d has %d coefficients, want <= %d", i, len(c.Coeffs), p.NumVars)
		}
	}
	return nil
}

// SolveLP solves the LP relaxation (binary flags become 0 ≤ x ≤ 1 bounds).
func SolveLP(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	cons := p.Constraints
	for j, isBin := range p.Binary {
		if isBin {
			co := make([]float64, j+1)
			co[j] = 1
			cons = append(cons, Constraint{Coeffs: co, Sense: LE, RHS: 1})
		}
	}
	return simplex(p.NumVars, p.Objective, cons)
}

// SolveILP solves the problem with the binary variables constrained to
// {0,1} using branch-and-bound over LP relaxations.
func SolveILP(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	hasBinary := false
	for _, b := range p.Binary {
		if b {
			hasBinary = true
			break
		}
	}
	if !hasBinary {
		return SolveLP(p)
	}
	bb := &bnb{prob: p, best: Solution{Status: Infeasible, Objective: math.Inf(1)}}
	if err := bb.branch(nil); err != nil {
		return Solution{}, err
	}
	if bb.best.Status != Optimal {
		// Distinguish infeasible from unbounded: if the root relaxation
		// was unbounded, report that.
		root, err := SolveLP(p)
		if err == nil && root.Status == Unbounded {
			return root, nil
		}
		return Solution{Status: Infeasible}, nil
	}
	return bb.best, nil
}

type fixing struct {
	v     int
	value float64
}

type bnb struct {
	prob  *Problem
	best  Solution
	nodes int
}

const maxNodes = 1 << 20

func (b *bnb) branch(fixed []fixing) error {
	b.nodes++
	if b.nodes > maxNodes {
		return fmt.Errorf("lp: branch-and-bound exceeded %d nodes", maxNodes)
	}
	sub := *b.prob
	sub.Constraints = append(append([]Constraint{}, b.prob.Constraints...), fixingConstraints(fixed)...)
	rel, err := SolveLP(&sub)
	if err != nil {
		return err
	}
	switch rel.Status {
	case Infeasible:
		return nil
	case Unbounded:
		// With all binaries bounded this means the continuous part is
		// unbounded; integrality will not fix it.
		return nil
	}
	if rel.Objective >= b.best.Objective-eps {
		return nil // pruned by incumbent
	}
	// Find the most fractional binary variable.
	frac, fracVar := -1.0, -1
	for j := 0; j < b.prob.NumVars; j++ {
		if !b.prob.Binary[j] {
			continue
		}
		f := math.Abs(rel.X[j] - math.Round(rel.X[j]))
		if f > eps && f > frac {
			frac, fracVar = f, j
		}
	}
	if fracVar == -1 {
		// Integral: round binaries exactly and accept as incumbent.
		for j := range rel.X {
			if b.prob.Binary != nil && b.prob.Binary[j] {
				rel.X[j] = math.Round(rel.X[j])
			}
		}
		b.best = rel
		return nil
	}
	// Branch: try the rounded-toward value first for better incumbents.
	first, second := 1.0, 0.0
	if rel.X[fracVar] < 0.5 {
		first, second = 0.0, 1.0
	}
	if err := b.branch(append(fixed, fixing{fracVar, first})); err != nil {
		return err
	}
	return b.branch(append(fixed[:len(fixed):len(fixed)], fixing{fracVar, second}))
}

func fixingConstraints(fixed []fixing) []Constraint {
	out := make([]Constraint, len(fixed))
	for i, f := range fixed {
		co := make([]float64, f.v+1)
		co[f.v] = 1
		out[i] = Constraint{Coeffs: co, Sense: EQ, RHS: f.value}
	}
	return out
}

// SolveBrute exhaustively enumerates all assignments of the binary
// variables (continuous variables are not supported) and returns the best
// feasible one. It exists to validate the simplex/B&B solvers in tests and
// is exponential: callers must keep the variable count small.
func SolveBrute(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	for j := 0; j < p.NumVars; j++ {
		if p.Binary == nil || !p.Binary[j] {
			return Solution{}, fmt.Errorf("lp: SolveBrute requires all variables binary")
		}
	}
	if p.NumVars > 24 {
		return Solution{}, fmt.Errorf("lp: SolveBrute limited to 24 variables, got %d", p.NumVars)
	}
	best := Solution{Status: Infeasible, Objective: math.Inf(1)}
	x := make([]float64, p.NumVars)
	for mask := 0; mask < 1<<p.NumVars; mask++ {
		for j := range x {
			x[j] = float64((mask >> j) & 1)
		}
		if !feasible(p, x) {
			continue
		}
		obj := 0.0
		for j := range x {
			obj += p.Objective[j] * x[j]
		}
		if obj < best.Objective {
			xc := make([]float64, len(x))
			copy(xc, x)
			best = Solution{Status: Optimal, X: xc, Objective: obj}
		}
	}
	return best, nil
}

func feasible(p *Problem, x []float64) bool {
	for _, c := range p.Constraints {
		lhs := 0.0
		for j, co := range c.Coeffs {
			lhs += co * x[j]
		}
		switch c.Sense {
		case LE:
			if lhs > c.RHS+eps {
				return false
			}
		case GE:
			if lhs < c.RHS-eps {
				return false
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > eps {
				return false
			}
		}
	}
	return true
}
