package kvstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestPutBatchBasics(t *testing.T) {
	for name, s := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			kvs := make([]KV, 100)
			for i := range kvs {
				kvs[i] = KV{
					Key: []byte(fmt.Sprintf("k%03d", i)),
					Val: []byte(fmt.Sprintf("v%03d-%s", i, string(make([]byte, i%7)))),
				}
			}
			// Pre-existing key gets overwritten by the batch.
			if err := s.Put([]byte("k000"), []byte("stale")); err != nil {
				t.Fatal(err)
			}
			if err := PutBatch(s, kvs); err != nil {
				t.Fatal(err)
			}
			if s.Len() != 100 {
				t.Fatalf("Len = %d, want 100", s.Len())
			}
			for _, kv := range kvs {
				v, ok, err := s.Get(kv.Key)
				if err != nil || !ok || !bytes.Equal(v, kv.Val) {
					t.Fatalf("Get(%q) = %q ok=%v err=%v", kv.Key, v, ok, err)
				}
			}
		})
	}
}

// PutBatch through the helper must behave identically for stores with and
// without the native BatchWriter fast path.
type plainStore struct{ Store }

func TestPutBatchFallback(t *testing.T) {
	s := plainStore{NewMem()}
	if _, ok := any(s).(BatchWriter); ok {
		t.Fatal("wrapper unexpectedly implements BatchWriter")
	}
	kvs := []KV{{Key: []byte("a"), Val: []byte("1")}, {Key: []byte("b"), Val: []byte("2")}}
	if err := PutBatch(s, kvs); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s.Get([]byte("b")); !ok || !bytes.Equal(v, []byte("2")) {
		t.Fatalf("fallback batch lost key: %q ok=%v", v, ok)
	}
}

// A batch written by FileStore.PutBatch must survive reopen, and the batch
// must equal the bytes N individual Puts would have produced (so recovery
// and size accounting are identical either way).
func TestFileStorePutBatchMatchesPuts(t *testing.T) {
	dir := t.TempDir()
	kvs := make([]KV, 50)
	for i := range kvs {
		kvs[i] = KV{Key: []byte(fmt.Sprintf("key-%d", i)), Val: bytes.Repeat([]byte{byte(i)}, i)}
	}

	batched, err := OpenFile(filepath.Join(dir, "batched.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := batched.PutBatch(kvs); err != nil {
		t.Fatal(err)
	}
	if err := batched.Sync(); err != nil {
		t.Fatal(err)
	}
	serial, err := OpenFile(filepath.Join(dir, "serial.log"))
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range kvs {
		if err := serial.Put(kv.Key, kv.Val); err != nil {
			t.Fatal(err)
		}
	}
	if err := serial.Sync(); err != nil {
		t.Fatal(err)
	}
	if batched.SizeBytes() != serial.SizeBytes() {
		t.Fatalf("batched log size %d != serial %d", batched.SizeBytes(), serial.SizeBytes())
	}
	batched.Close()
	serial.Close()

	a, _ := os.ReadFile(filepath.Join(dir, "batched.log"))
	b, _ := os.ReadFile(filepath.Join(dir, "serial.log"))
	if !bytes.Equal(a, b) {
		t.Fatal("batched log bytes differ from serial puts")
	}

	re, err := OpenFile(filepath.Join(dir, "batched.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, kv := range kvs {
		v, ok, err := re.Get(kv.Key)
		if err != nil || !ok || !bytes.Equal(v, kv.Val) {
			t.Fatalf("reopened Get(%q) = %q ok=%v err=%v", kv.Key, v, ok, err)
		}
	}
}

func TestMetaCommitRoundTrip(t *testing.T) {
	for name, s := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			mc, ok := s.(MetaCommitter)
			if !ok {
				t.Fatalf("%T does not implement MetaCommitter", s)
			}
			if _, ok, err := mc.LoadMeta(); err != nil || ok {
				t.Fatalf("fresh store reports meta ok=%v err=%v", ok, err)
			}
			if err := mc.CommitMeta([]byte("generation-1")); err != nil {
				t.Fatal(err)
			}
			if err := mc.CommitMeta([]byte("generation-2")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := mc.LoadMeta()
			if err != nil || !ok || !bytes.Equal(v, []byte("generation-2")) {
				t.Fatalf("LoadMeta = %q ok=%v err=%v", v, ok, err)
			}
		})
	}
}

// FileStore meta survives reopen and a corrupted sidecar — truncated,
// bit-flipped, or a stray temp file from a crashed commit — reads as
// absent rather than half-loading.
func TestFileStoreMetaCorruptionRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.log")

	open := func() *FileStore {
		t.Helper()
		fs, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}

	fs := open()
	if err := fs.Put([]byte("data"), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := fs.CommitMeta([]byte("good-meta")); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	// Clean reopen: meta present.
	fs = open()
	if v, ok, err := fs.LoadMeta(); err != nil || !ok || !bytes.Equal(v, []byte("good-meta")) {
		t.Fatalf("reopen LoadMeta = %q ok=%v err=%v", v, ok, err)
	}
	fs.Close()

	corruptions := map[string]func(t *testing.T){
		"bit-flip": func(t *testing.T) {
			buf, err := os.ReadFile(path + ".meta")
			if err != nil {
				t.Fatal(err)
			}
			buf[len(buf)-1] ^= 0xFF
			if err := os.WriteFile(path+".meta", buf, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"truncate": func(t *testing.T) {
			if err := os.Truncate(path+".meta", 3); err != nil {
				t.Fatal(err)
			}
		},
		"garbage": func(t *testing.T) {
			if err := os.WriteFile(path+".meta", []byte("not a meta file"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			corrupt(t)
			fs := open()
			defer fs.Close()
			if _, ok, err := fs.LoadMeta(); err != nil || ok {
				t.Fatalf("corrupt meta should read as absent, got ok=%v err=%v", ok, err)
			}
			// Data log is unaffected, and a fresh commit heals the sidecar.
			if v, ok, _ := fs.Get([]byte("data")); !ok || !bytes.Equal(v, []byte("payload")) {
				t.Fatal("data log damaged by meta corruption handling")
			}
			if err := fs.CommitMeta([]byte("healed")); err != nil {
				t.Fatal(err)
			}
			if v, ok, err := fs.LoadMeta(); err != nil || !ok || !bytes.Equal(v, []byte("healed")) {
				t.Fatalf("healed LoadMeta = %q ok=%v err=%v", v, ok, err)
			}
		})
	}

	// A crash between temp write and rename leaves only the temp file;
	// the committed blob must still be the previous generation.
	t.Run("stray-temp", func(t *testing.T) {
		fs := open()
		if err := fs.CommitMeta([]byte("committed")); err != nil {
			t.Fatal(err)
		}
		fs.Close()
		if err := os.WriteFile(path+".meta.tmp", []byte("torn write"), 0o644); err != nil {
			t.Fatal(err)
		}
		fs = open()
		defer fs.Close()
		if v, ok, err := fs.LoadMeta(); err != nil || !ok || !bytes.Equal(v, []byte("committed")) {
			t.Fatalf("stray temp disturbed committed meta: %q ok=%v err=%v", v, ok, err)
		}
	})
}

// Dropping a namespace removes the meta sidecar along with the log.
func TestManagerDropRemovesMetaSidecar(t *testing.T) {
	root := t.TempDir()
	m, err := NewManager(root)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s, err := m.Open("ns")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.(*FileStore).CommitMeta([]byte("m")); err != nil {
		t.Fatal(err)
	}
	if err := m.Drop("ns"); err != nil {
		t.Fatal(err)
	}
	left, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("drop left files behind: %v", left)
	}
}
