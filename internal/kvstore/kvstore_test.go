package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// storesUnderTest builds one of each Store implementation for a subtest.
func storesUnderTest(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := OpenFile(filepath.Join(t.TempDir(), "s.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	ms := NewMem()
	t.Cleanup(func() { ms.Close() })
	return map[string]Store{"file": fs, "mem": ms}
}

func TestPutGetOverwrite(t *testing.T) {
	for name, s := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			if _, ok, err := s.Get([]byte("missing")); err != nil || ok {
				t.Fatal("missing key reported present")
			}
			if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
				t.Fatal(err)
			}
			v, ok, err := s.Get([]byte("k1"))
			if err != nil || !ok || !bytes.Equal(v, []byte("v1")) {
				t.Fatalf("Get=%q ok=%v err=%v", v, ok, err)
			}
			if err := s.Put([]byte("k1"), []byte("v2-longer")); err != nil {
				t.Fatal(err)
			}
			v, ok, _ = s.Get([]byte("k1"))
			if !ok || !bytes.Equal(v, []byte("v2-longer")) {
				t.Fatalf("overwrite Get=%q", v)
			}
			if s.Len() != 1 {
				t.Fatalf("Len=%d, want 1", s.Len())
			}
		})
	}
}

func TestEmptyKeyAndValue(t *testing.T) {
	for name, s := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put([]byte{}, []byte{}); err != nil {
				t.Fatal(err)
			}
			v, ok, err := s.Get([]byte{})
			if err != nil || !ok || len(v) != 0 {
				t.Fatalf("empty round trip: %q %v %v", v, ok, err)
			}
		})
	}
}

func TestScanVisitsAllLiveRecords(t *testing.T) {
	for name, s := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			want := map[string]string{}
			for i := 0; i < 100; i++ {
				k, v := fmt.Sprintf("key-%03d", i), fmt.Sprintf("val-%d", i*i)
				want[k] = v
				if err := s.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
			}
			// Overwrite some: scan must see only latest values.
			for i := 0; i < 10; i++ {
				k := fmt.Sprintf("key-%03d", i)
				want[k] = "new"
				if err := s.Put([]byte(k), []byte("new")); err != nil {
					t.Fatal(err)
				}
			}
			got := map[string]string{}
			if err := s.Scan(func(k, v []byte) bool {
				got[string(k)] = string(v)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("scan saw %d records, want %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("scan %s=%q, want %q", k, got[k], v)
				}
			}
		})
	}
}

func TestScanEarlyStop(t *testing.T) {
	for name, s := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 20; i++ {
				_ = s.Put([]byte{byte(i)}, []byte{byte(i)})
			}
			n := 0
			_ = s.Scan(func(k, v []byte) bool { n++; return n < 5 })
			if n != 5 {
				t.Fatalf("early stop visited %d", n)
			}
		})
	}
}

func TestSizeBytesGrows(t *testing.T) {
	for name, s := range storesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			before := s.SizeBytes()
			_ = s.Put([]byte("key"), bytes.Repeat([]byte{1}, 1000))
			if s.SizeBytes() < before+1000 {
				t.Fatalf("SizeBytes=%d did not grow by payload", s.SizeBytes())
			}
		})
	}
}

func TestFileStorePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 500 {
		t.Fatalf("reopened Len=%d", re.Len())
	}
	v, ok, err := re.Get([]byte("k123"))
	if err != nil || !ok || string(v) != "v123" {
		t.Fatalf("reopened Get=%q ok=%v err=%v", v, ok, err)
	}
	// Store must remain appendable after reopen.
	if err := re.Put([]byte("new"), []byte("rec")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ = re.Get([]byte("new"))
	if !ok || string(v) != "rec" {
		t.Fatal("append after reopen failed")
	}
}

func TestFileStoreTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_ = s.Put([]byte(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte{byte(i)}, 50))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half.
	info, _ := os.Stat(path)
	if err := os.Truncate(path, info.Size()-20); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 99 {
		t.Fatalf("after torn tail Len=%d, want 99", re.Len())
	}
	if _, ok, _ := re.Get([]byte("k98")); !ok {
		t.Fatal("intact record lost")
	}
	if _, ok, _ := re.Get([]byte("k99")); ok {
		t.Fatal("torn record resurrected")
	}
	// New writes land after the truncated tail and survive a reopen.
	if err := re.Put([]byte("k99"), []byte("again")); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if v, ok, _ := re2.Get([]byte("k99")); !ok || string(v) != "again" {
		t.Fatal("rewrite after torn-tail recovery lost")
	}
}

func TestFileStoreCorruptMiddleStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_ = s.Put([]byte{byte(i)}, bytes.Repeat([]byte{0x55}, 40))
	}
	_ = s.Close()
	// Flip a byte in the middle of the file: recovery keeps the prefix.
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() >= 10 || re.Len() == 0 {
		t.Fatalf("corrupt-middle Len=%d, want a proper non-empty prefix", re.Len())
	}
}

func TestClosedStoreErrors(t *testing.T) {
	fs, err := OpenFile(filepath.Join(t.TempDir(), "c.log"))
	if err != nil {
		t.Fatal(err)
	}
	_ = fs.Close()
	if err := fs.Put([]byte("k"), []byte("v")); err == nil {
		t.Fatal("Put on closed store succeeded")
	}
	if _, _, err := fs.Get([]byte("k")); err == nil {
		t.Fatal("Get on closed store succeeded")
	}
	if err := fs.Close(); err != nil {
		t.Fatal("double Close should be a no-op")
	}
}

func TestManagerFileAndMemory(t *testing.T) {
	for _, root := range []string{"", t.TempDir()} {
		name := "mem"
		if root != "" {
			name = "file"
		}
		t.Run(name, func(t *testing.T) {
			m, err := NewManager(root)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			a, err := m.Open("op-1/full:backward")
			if err != nil {
				t.Fatal(err)
			}
			b, err := m.Open("op-2")
			if err != nil {
				t.Fatal(err)
			}
			again, _ := m.Open("op-1/full:backward")
			if again != a {
				t.Fatal("Open not idempotent")
			}
			_ = a.Put([]byte("x"), []byte("1"))
			_ = b.Put([]byte("y"), bytes.Repeat([]byte{2}, 100))
			if got := m.Namespaces(); len(got) != 2 {
				t.Fatalf("Namespaces=%v", got)
			}
			if m.TotalBytes() <= 0 {
				t.Fatal("TotalBytes not accounted")
			}
			if err := m.SyncAll(); err != nil {
				t.Fatal(err)
			}
			if err := m.Drop("op-2"); err != nil {
				t.Fatal(err)
			}
			if got := m.Namespaces(); len(got) != 1 {
				t.Fatalf("after Drop Namespaces=%v", got)
			}
		})
	}
}

func TestManagerPersistenceAcrossReopen(t *testing.T) {
	root := t.TempDir()
	m, err := NewManager(root)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := m.Open("astro/crd")
	_ = s.Put([]byte("pair-1"), []byte("lineage"))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := NewManager(root)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	s2, _ := m2.Open("astro/crd")
	v, ok, err := s2.Get([]byte("pair-1"))
	if err != nil || !ok || string(v) != "lineage" {
		t.Fatalf("persisted value lost: %q %v %v", v, ok, err)
	}
}

// Property: a randomized batch of Put operations leaves both
// implementations exactly matching a map reference.
func TestQuickStoreVsReference(t *testing.T) {
	dir := t.TempDir()
	trial := 0
	f := func(ops []struct {
		K uint8
		V []byte
	}) bool {
		trial++
		fs, err := OpenFile(filepath.Join(dir, fmt.Sprintf("q%d.log", trial)))
		if err != nil {
			return false
		}
		defer fs.Close()
		ms := NewMem()
		ref := map[string][]byte{}
		for _, op := range ops {
			k := []byte{op.K % 32}
			if fs.Put(k, op.V) != nil || ms.Put(k, op.V) != nil {
				return false
			}
			ref[string(k)] = op.V
		}
		for k, want := range ref {
			for _, s := range []Store{fs, ms} {
				got, ok, err := s.Get([]byte(k))
				if err != nil || !ok || !bytes.Equal(got, want) {
					return false
				}
			}
		}
		return fs.Len() == len(ref) && ms.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFileStorePut(b *testing.B) {
	s, err := OpenFile(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte{0xAA}, 64)
	var key [8]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0], key[1], key[2], key[3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		if err := s.Put(key[:], val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileStoreGet(b *testing.B) {
	s, err := OpenFile(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := bytes.Repeat([]byte{0xAA}, 64)
	rng := rand.New(rand.NewSource(1))
	keys := make([][]byte, 10000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%d", i))
		_ = s.Put(keys[i], val)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.Get(keys[rng.Intn(len(keys))]); err != nil || !ok {
			b.Fatal("get failed")
		}
	}
}
