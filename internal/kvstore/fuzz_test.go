package kvstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// flushedLog builds a real FileStore log (flushed, no meta sidecar
// dependence) and returns its raw bytes — the honest seed corpus for the
// recovery fuzzer.
func flushedLog(t interface{ Fatal(...any) }, n int) []byte {
	dir, err := os.MkdirTemp("", "subzero-fuzz-seed")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "seed.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%04d", i)
		val := fmt.Sprintf("val-%04d-%s", i, "payload")
		if err := s.Put([]byte(key), []byte(val)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// FuzzRecoverLog feeds arbitrary (torn, bit-flipped, adversarial) log
// bytes to FileStore.recover via OpenFile. Recovery must never panic,
// must never error on readable media, and must leave a log whose every
// indexed record is readable — the consistent prefix the failure model
// promises. Reopening the recovered log must be a fixed point: the same
// records, no further truncation surprises.
func FuzzRecoverLog(f *testing.F) {
	whole := flushedLog(f, 16)
	f.Add(whole)                                      // intact log
	f.Add(whole[:len(whole)-3])                       // torn mid-record
	f.Add(whole[:len(whole)/2+1])                     // torn mid-log
	f.Add([]byte{})                                   // empty file
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x80, 0x80}) // garbage header
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)/3] ^= 0x40 // bit flip in an early record
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenFile(path)
		if err != nil {
			t.Fatalf("OpenFile on fuzzed log errored: %v", err)
		}
		first := make(map[string]string)
		if err := s.Scan(func(key, val []byte) bool {
			first[string(key)] = string(val)
			return true
		}); err != nil {
			t.Fatalf("scan of recovered log errored: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close recovered log: %v", err)
		}

		// Reopen: recovery of a recovered log must be a fixed point.
		s2, err := OpenFile(path)
		if err != nil {
			t.Fatalf("reopen recovered log: %v", err)
		}
		defer s2.Close()
		second := make(map[string]string)
		if err := s2.Scan(func(key, val []byte) bool {
			second[string(key)] = string(val)
			return true
		}); err != nil {
			t.Fatalf("second scan errored: %v", err)
		}
		if len(first) != len(second) {
			t.Fatalf("recovery not a fixed point: %d records, then %d", len(first), len(second))
		}
		for k, v := range first {
			if second[k] != v {
				t.Fatalf("record %q changed across reopen: %q -> %q", k, v, second[k])
			}
		}
	})
}
