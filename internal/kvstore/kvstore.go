// Package kvstore provides the embedded key-value storage layer underneath
// SubZero's lineage stores.
//
// The paper's prototype keeps region lineage "in a collection of BerkeleyDB
// hashtable instances ... with fsync, logging and concurrency control
// turned off", because lineage is a cache that can always be recomputed by
// re-running operators (§VI-A). This package is the stdlib-only substitute:
//
//   - Store is a minimal hashtable interface (put/get/scan) with explicit
//     size accounting so benchmarks can charge disk overhead.
//   - FileStore is a log-structured, CRC-framed, buffered append file with
//     an in-memory index — durable enough to survive a clean process exit,
//     and like the paper's configuration it deliberately trades crash
//     safety for speed: a torn tail is detected and discarded on open.
//   - MemStore is a map-backed implementation used by tests and by
//     benchmarks that isolate CPU cost from I/O.
//   - Manager allocates one Store per operator instance ("operator
//     specific datastores" in Figure 3).
package kvstore

import (
	"fmt"
	"sort"
	"sync"
)

// Store is a single hashtable namespace holding lineage for one operator
// instance and strategy.
type Store interface {
	// Put inserts or overwrites a key.
	Put(key, val []byte) error
	// Get returns the value for a key, with ok=false if absent. The
	// returned slice must not be modified and is only valid until the
	// next store operation.
	Get(key []byte) (val []byte, ok bool, err error)
	// Scan calls fn for every record until fn returns false. Iteration
	// order is unspecified. The slices passed to fn must not be retained.
	Scan(fn func(key, val []byte) bool) error
	// Len returns the number of live keys.
	Len() int
	// SizeBytes returns the storage footprint charged to this store
	// (file size for FileStore, estimated heap bytes for MemStore).
	SizeBytes() int64
	// Sync flushes buffered writes to the backing medium.
	Sync() error
	// Close releases resources; the store must not be used afterwards.
	Close() error
}

// GetBatcher is an optional Store extension: resolve several point
// lookups under a single lock acquisition and I/O pass. fn is called once
// per key in order; the val slice follows the same aliasing rules as
// Get's and is only valid for the duration of the call. Returning false
// stops the batch early.
type GetBatcher interface {
	GetBatch(keys [][]byte, fn func(i int, val []byte, ok bool) bool) error
}

// GetBatch resolves keys against s, using the store's native batch path
// when it implements GetBatcher and falling back to per-key Gets. The
// lineage lookup hot path probes hashtables through this.
func GetBatch(s Store, keys [][]byte, fn func(i int, val []byte, ok bool) bool) error {
	if gb, ok := s.(GetBatcher); ok {
		return gb.GetBatch(keys, fn)
	}
	for i, k := range keys {
		v, ok, err := s.Get(k)
		if err != nil {
			return err
		}
		if !fn(i, v, ok) {
			return nil
		}
	}
	return nil
}

// KV is one record of a write batch.
type KV struct {
	Key, Val []byte
}

// BatchWriter is an optional Store extension: apply several puts as one
// group commit — a single lock acquisition and a single pass through the
// backing medium's write path. The ingest shard workers commit encoded
// lineage through this, so N buffered records cost one lock/IO round
// instead of N.
//
// Against concurrent readers the batch is atomic: no Get/Scan observes a
// prefix of it, because the whole batch applies under the store's lock.
// Crash atomicity follows the log's usual stance — a torn batch is
// detected by the CRC framing on reopen and the tail is discarded.
type BatchWriter interface {
	PutBatch(kvs []KV) error
}

// PutBatch applies a write batch to s, using the store's native group
// commit when it implements BatchWriter and falling back to per-key Puts.
func PutBatch(s Store, kvs []KV) error {
	if bw, ok := s.(BatchWriter); ok {
		return bw.PutBatch(kvs)
	}
	for _, kv := range kvs {
		if err := s.Put(kv.Key, kv.Val); err != nil {
			return err
		}
	}
	return nil
}

// MetaCommitter is an optional Store extension holding one metadata blob
// beside the record data, committed atomically: a reader either sees the
// previous blob or the new one, never a torn mix — even across a crash
// mid-commit (FileStore writes a temp file and renames it into place).
// Lineage stores commit their pair counter, statistics, and serialized
// spatial indexes as a single blob through this, so a crash mid-flush
// cannot leave a store that half-loads.
type MetaCommitter interface {
	// CommitMeta atomically replaces the store's metadata blob.
	CommitMeta(val []byte) error
	// LoadMeta returns the last committed blob, with ok=false when no
	// valid blob exists (never committed, or corrupt on disk — corruption
	// is treated as absence because lineage is a recoverable cache).
	LoadMeta() (val []byte, ok bool, err error)
}

// MemStore is an in-memory Store backed by a map.
type MemStore struct {
	mu    sync.RWMutex
	data  map[string][]byte
	meta  []byte
	bytes int64
}

// NewMem creates an empty in-memory store.
func NewMem() *MemStore {
	return &MemStore{data: make(map[string][]byte)}
}

// recordOverhead approximates per-record bookkeeping cost so MemStore size
// accounting is comparable with FileStore's on-disk framing.
const recordOverhead = 12

// Put implements Store.
func (m *MemStore) Put(key, val []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.data == nil {
		return ErrClosed
	}
	k := string(key)
	if old, ok := m.data[k]; ok {
		m.bytes -= int64(len(k) + len(old) + recordOverhead)
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	m.data[k] = cp
	m.bytes += int64(len(k) + len(val) + recordOverhead)
	return nil
}

// Get implements Store.
func (m *MemStore) Get(key []byte) ([]byte, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.data == nil {
		return nil, false, ErrClosed
	}
	v, ok := m.data[string(key)]
	return v, ok, nil
}

// PutBatch implements BatchWriter: the whole batch applies under one
// write lock, so no concurrent reader observes a partial batch.
func (m *MemStore) PutBatch(kvs []KV) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.data == nil {
		return ErrClosed
	}
	for _, kv := range kvs {
		k := string(kv.Key)
		if old, ok := m.data[k]; ok {
			m.bytes -= int64(len(k) + len(old) + recordOverhead)
		}
		cp := make([]byte, len(kv.Val))
		copy(cp, kv.Val)
		m.data[k] = cp
		m.bytes += int64(len(k) + len(kv.Val) + recordOverhead)
	}
	return nil
}

// CommitMeta implements MetaCommitter.
func (m *MemStore) CommitMeta(val []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.data == nil {
		return ErrClosed
	}
	m.bytes += int64(len(val)) - int64(len(m.meta))
	m.meta = append(m.meta[:0], val...)
	return nil
}

// LoadMeta implements MetaCommitter.
func (m *MemStore) LoadMeta() ([]byte, bool, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.data == nil {
		return nil, false, ErrClosed
	}
	if m.meta == nil {
		return nil, false, nil
	}
	cp := make([]byte, len(m.meta))
	copy(cp, m.meta)
	return cp, true, nil
}

// GetBatch implements GetBatcher: all keys are resolved under one read
// lock.
func (m *MemStore) GetBatch(keys [][]byte, fn func(i int, val []byte, ok bool) bool) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.data == nil {
		return ErrClosed
	}
	for i, k := range keys {
		v, ok := m.data[string(k)]
		if !fn(i, v, ok) {
			return nil
		}
	}
	return nil
}

// Scan implements Store. Keys are visited in sorted order for determinism.
func (m *MemStore) Scan(fn func(key, val []byte) bool) error {
	m.mu.RLock()
	if m.data == nil {
		m.mu.RUnlock()
		return ErrClosed
	}
	keys := make([]string, 0, len(m.data))
	for k := range m.data {
		keys = append(keys, k)
	}
	m.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		m.mu.RLock()
		v, ok := m.data[k]
		m.mu.RUnlock()
		if !ok {
			continue
		}
		if !fn([]byte(k), v) {
			return nil
		}
	}
	return nil
}

// Len implements Store.
func (m *MemStore) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data)
}

// SizeBytes implements Store.
func (m *MemStore) SizeBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}

// Sync implements Store (a no-op for memory).
func (m *MemStore) Sync() error { return nil }

// Close implements Store.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data = nil
	return nil
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = fmt.Errorf("kvstore: store is closed")
