package kvstore

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"subzero/internal/fault"
)

// TestTornWriteRecovery injects a torn write below the bufio buffer —
// the exact artifact a mid-append crash leaves — and asserts reopen
// recovers the pre-fault prefix and truncates the partial frame.
func TestTornWriteRecovery(t *testing.T) {
	defer fault.Reset()
	path := filepath.Join(t.TempDir(), "torn.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	// Arm a torn write: the next buffer flush writes 10 bytes of the
	// pending frames, then fails — a partial record at the tail.
	if err := fault.Arm("kvstore/file/write", fault.Action{Kind: fault.KindTorn, Bytes: 10, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k-crash"), []byte("v-crash")); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("sync over torn write = %v, want injected error", err)
	}
	fault.Reset()
	// Abandon s without Close: the "kill" loses whatever bufio held.

	re, err := OpenFile(path)
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer re.Close()
	if got := re.Len(); got != 8 {
		t.Fatalf("recovered %d records, want the 8-record prefix", got)
	}
	for i := 0; i < 8; i++ {
		val, ok, err := re.Get([]byte(fmt.Sprintf("k%03d", i)))
		if err != nil || !ok {
			t.Fatalf("record k%03d: ok=%v err=%v", i, ok, err)
		}
		if string(val) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("record k%03d = %q", i, val)
		}
	}
	if _, ok, _ := re.Get([]byte("k-crash")); ok {
		t.Fatal("torn record survived recovery")
	}
}

// TestMetaCommitFaults walks the meta commit path's failpoints: each
// injected failure must leave the previous committed blob loadable.
func TestMetaCommitFaults(t *testing.T) {
	defer fault.Reset()
	path := filepath.Join(t.TempDir(), "meta.log")
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.CommitMeta([]byte("generation-1")); err != nil {
		t.Fatal(err)
	}
	for _, point := range []string{"kvstore/meta/write", "kvstore/meta/sync", "kvstore/meta/rename"} {
		if err := fault.Arm(point, fault.Action{Kind: fault.KindError, Msg: "EIO"}); err != nil {
			t.Fatal(err)
		}
		if err := s.CommitMeta([]byte("generation-2")); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("%s: commit err = %v, want injected", point, err)
		}
		fault.Disarm(point)
		blob, ok, err := s.LoadMeta()
		if err != nil || !ok {
			t.Fatalf("%s: LoadMeta ok=%v err=%v", point, ok, err)
		}
		if string(blob) != "generation-1" {
			t.Fatalf("%s: blob = %q, want previous generation intact", point, blob)
		}
	}
	if err := s.CommitMeta([]byte("generation-2")); err != nil {
		t.Fatalf("clean commit after faults: %v", err)
	}
	blob, ok, err := s.LoadMeta()
	if err != nil || !ok || string(blob) != "generation-2" {
		t.Fatalf("final LoadMeta = %q ok=%v err=%v", blob, ok, err)
	}
}
