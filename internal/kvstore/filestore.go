package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"subzero/internal/fault"
)

// Failpoints covering the append/flush path of the log and the commit
// path of the meta sidecar. The crash-point matrix test iterates every
// "kvstore/"-prefixed registered point; a new fsync or commit site MUST
// register one (see CONTRIBUTING). The wrapped file layer adds
// kvstore/file/write (torn-write capable) and kvstore/file/sync.
var (
	fpPut        = fault.Register("kvstore/put")
	fpPutBatch   = fault.Register("kvstore/putbatch")
	fpFlush      = fault.Register("kvstore/flush")
	fpMetaWrite  = fault.Register("kvstore/meta/write")
	fpMetaSync   = fault.Register("kvstore/meta/sync")
	fpMetaRename = fault.Register("kvstore/meta/rename")
	// Registered here as well as by WrapFile (registration is
	// idempotent) so Registered() inventories the file-layer points
	// before the first store opens — the crash matrix enumerates them
	// at test start.
	_ = fault.Register("kvstore/file/write")
	_ = fault.Register("kvstore/file/sync")
)

// FileStore is a log-structured Store: records are appended to a single
// file through a write buffer, and an in-memory index maps each key to the
// offset of its latest record. Overwritten values leave garbage in the log;
// lineage workloads write each key once (or merge a handful of times), so
// compaction is unnecessary and is deliberately omitted.
//
// Record layout (all integers little-endian / uvarint):
//
//	crc32(4) | klen uvarint | vlen uvarint | key | val
//
// The CRC covers the varint lengths, key, and value. On open the file is
// scanned to rebuild the index; the first torn or corrupt record ends the
// scan and the tail is truncated, matching the paper's "lineage is a
// recoverable cache" stance.
type FileStore struct {
	mu      sync.Mutex
	f       fault.File
	w       *bufio.Writer
	index   map[string]recordRef
	offset  int64 // next append position
	dirty   bool
	closed  bool
	path    string
	metaLen int64 // size of the committed meta sidecar, for accounting
}

type recordRef struct {
	off  int64
	klen int
	vlen int
}

const (
	crcSize       = 4
	maxKeyLen     = 1 << 20
	maxValLen     = 1 << 28
	writeBufBytes = 1 << 18
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// OpenFile opens (or creates) a FileStore at path, rebuilding the key
// index from the log and truncating any torn tail.
func OpenFile(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open %s: %w", path, err)
	}
	s := &FileStore{
		// The fault wrapper sits below the bufio buffer, so an injected
		// torn write leaves exactly what a crashed process would: a
		// partial frame at the file tail.
		f:     fault.WrapFile("kvstore/file", f),
		index: make(map[string]recordRef),
		path:  path,
	}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := s.f.Seek(s.offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: seek %s: %w", path, err)
	}
	s.w = bufio.NewWriterSize(s.f, writeBufBytes)
	if info, err := os.Stat(s.metaPath()); err == nil {
		s.metaLen = info.Size()
	}
	return s, nil
}

// recover scans the log, rebuilding the index. It stops at the first
// invalid record and truncates the file there.
func (s *FileStore) recover() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("kvstore: stat: %w", err)
	}
	size := info.Size()
	r := bufio.NewReaderSize(io.NewSectionReader(s.f, 0, size), writeBufBytes)
	var off int64
	hdr := make([]byte, crcSize)
	var body []byte
	for off < size {
		if _, err := io.ReadFull(r, hdr); err != nil {
			break // torn tail
		}
		wantCRC := binary.LittleEndian.Uint32(hdr)
		klen, err1 := binary.ReadUvarint(r)
		if err1 != nil || klen > maxKeyLen {
			break
		}
		vlen, err2 := binary.ReadUvarint(r)
		if err2 != nil || vlen > maxValLen {
			break
		}
		framing := uvarintLen(klen) + uvarintLen(vlen)
		need := framing + int(klen) + int(vlen)
		if cap(body) < need {
			body = make([]byte, need)
		}
		body = body[:need]
		n := binary.PutUvarint(body, klen)
		n += binary.PutUvarint(body[n:], vlen)
		if _, err := io.ReadFull(r, body[n:]); err != nil {
			break
		}
		if crc32.Checksum(body, crcTable) != wantCRC {
			break
		}
		key := string(body[framing : framing+int(klen)])
		s.index[key] = recordRef{off: off, klen: int(klen), vlen: int(vlen)}
		off += int64(crcSize + need)
	}
	s.offset = off
	if off < size {
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("kvstore: truncate torn tail: %w", err)
		}
	}
	return nil
}

// Put implements Store.
func (s *FileStore) Put(key, val []byte) error {
	if len(key) > maxKeyLen || len(val) > maxValLen {
		return fmt.Errorf("kvstore: record too large (key %d, val %d)", len(key), len(val))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := fault.Inject(fpPut); err != nil {
		return err
	}
	framing := uvarintLen(uint64(len(key))) + uvarintLen(uint64(len(val)))
	body := make([]byte, framing+len(key)+len(val))
	n := binary.PutUvarint(body, uint64(len(key)))
	n += binary.PutUvarint(body[n:], uint64(len(val)))
	copy(body[n:], key)
	copy(body[n+len(key):], val)
	var hdr [crcSize]byte
	binary.LittleEndian.PutUint32(hdr[:], crc32.Checksum(body, crcTable))
	if _, err := s.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("kvstore: append: %w", err)
	}
	if _, err := s.w.Write(body); err != nil {
		return fmt.Errorf("kvstore: append: %w", err)
	}
	s.index[string(key)] = recordRef{off: s.offset, klen: len(key), vlen: len(val)}
	s.offset += int64(crcSize + len(body))
	s.dirty = true
	return nil
}

// PutBatch implements BatchWriter: the whole batch is framed and appended
// under one lock acquisition and one pass through the write buffer — the
// group commit the ingest shard workers rely on. A crash mid-batch tears
// the log inside the batch; recovery truncates at the first bad record,
// exactly as for individual Puts.
func (s *FileStore) PutBatch(kvs []KV) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := fault.Inject(fpPutBatch); err != nil {
		return err
	}
	// Validate the whole batch before writing any of it, so an oversized
	// record cannot leave a durably applied prefix behind an error.
	for _, kv := range kvs {
		if len(kv.Key) > maxKeyLen || len(kv.Val) > maxValLen {
			return fmt.Errorf("kvstore: record too large (key %d, val %d)", len(kv.Key), len(kv.Val))
		}
	}
	var body []byte
	for _, kv := range kvs {
		framing := uvarintLen(uint64(len(kv.Key))) + uvarintLen(uint64(len(kv.Val)))
		need := framing + len(kv.Key) + len(kv.Val)
		if cap(body) < need {
			body = make([]byte, need)
		}
		body = body[:need]
		n := binary.PutUvarint(body, uint64(len(kv.Key)))
		n += binary.PutUvarint(body[n:], uint64(len(kv.Val)))
		copy(body[n:], kv.Key)
		copy(body[n+len(kv.Key):], kv.Val)
		var hdr [crcSize]byte
		binary.LittleEndian.PutUint32(hdr[:], crc32.Checksum(body, crcTable))
		if _, err := s.w.Write(hdr[:]); err != nil {
			return fmt.Errorf("kvstore: append: %w", err)
		}
		if _, err := s.w.Write(body); err != nil {
			return fmt.Errorf("kvstore: append: %w", err)
		}
		s.index[string(kv.Key)] = recordRef{off: s.offset, klen: len(kv.Key), vlen: len(kv.Val)}
		s.offset += int64(crcSize + need)
	}
	s.dirty = true
	return nil
}

// metaMagic frames the meta sidecar: magic, CRC32 of the payload, payload.
var metaMagic = []byte("szm1")

// metaPath returns the sidecar file holding the atomically committed
// metadata blob.
func (s *FileStore) metaPath() string { return s.path + ".meta" }

// CommitMeta implements MetaCommitter: the blob is written to a temp file
// and renamed over the sidecar, so a crash at any point leaves either the
// previous blob or the new one — never a torn mix. A torn temp file is
// ignored on load.
func (s *FileStore) CommitMeta(val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	buf := make([]byte, 0, len(metaMagic)+crcSize+len(val))
	buf = append(buf, metaMagic...)
	var crc [crcSize]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(val, crcTable))
	buf = append(buf, crc[:]...)
	buf = append(buf, val...)
	if err := fault.Inject(fpMetaWrite); err != nil {
		return fmt.Errorf("kvstore: write meta temp: %w", err)
	}
	tmp := s.metaPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: write meta temp: %w", err)
	}
	_, werr := f.Write(buf)
	// Unlike the data log, the meta temp file IS fsynced before the
	// rename: without it the rename can reach disk ahead of the temp
	// file's contents, destroying the previous blob and leaving a torn
	// new one — exactly the half-load this API exists to prevent. (The
	// directory entry itself is not fsynced; losing the rename leaves
	// the previous valid blob, which is fine.)
	serr := fault.Inject(fpMetaSync)
	if serr == nil {
		serr = f.Sync()
	}
	cerr := f.Close()
	for _, err := range []error{werr, serr, cerr} {
		if err != nil {
			return fmt.Errorf("kvstore: write meta temp: %w", err)
		}
	}
	if err := fault.Inject(fpMetaRename); err != nil {
		return fmt.Errorf("kvstore: commit meta: %w", err)
	}
	if err := os.Rename(tmp, s.metaPath()); err != nil {
		return fmt.Errorf("kvstore: commit meta: %w", err)
	}
	s.metaLen = int64(len(buf))
	return nil
}

// LoadMeta implements MetaCommitter. A missing, truncated, or
// corrupt sidecar reads as absent: lineage is a recoverable cache, so the
// caller rebuilds what the blob described instead of half-loading it.
func (s *FileStore) LoadMeta() ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	buf, err := os.ReadFile(s.metaPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("kvstore: read meta: %w", err)
	}
	hdr := len(metaMagic) + crcSize
	if len(buf) < hdr || string(buf[:len(metaMagic)]) != string(metaMagic) {
		return nil, false, nil // corrupt: treat as absent
	}
	want := binary.LittleEndian.Uint32(buf[len(metaMagic):hdr])
	val := buf[hdr:]
	if crc32.Checksum(val, crcTable) != want {
		return nil, false, nil // corrupt: treat as absent
	}
	s.metaLen = int64(len(buf))
	return val, true, nil
}

// Get implements Store. It flushes pending writes first so index offsets
// are always readable.
func (s *FileStore) Get(key []byte) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	ref, ok := s.index[string(key)]
	if !ok {
		return nil, false, nil
	}
	if err := s.flushLocked(); err != nil {
		return nil, false, err
	}
	val, err := s.readValue(ref)
	if err != nil {
		return nil, false, err
	}
	return val, true, nil
}

// GetBatch implements GetBatcher: one lock acquisition and one write-
// buffer flush serve the whole batch, and value buffers are reused
// between keys (the val passed to fn is only valid during the call).
func (s *FileStore) GetBatch(keys [][]byte, fn func(i int, val []byte, ok bool) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	var buf []byte
	for i, k := range keys {
		ref, ok := s.index[string(k)]
		if !ok {
			if !fn(i, nil, false) {
				return nil
			}
			continue
		}
		var err error
		if buf, err = s.readValueInto(ref, buf); err != nil {
			return err
		}
		if !fn(i, buf, true) {
			return nil
		}
	}
	return nil
}

func (s *FileStore) readValue(ref recordRef) ([]byte, error) {
	return s.readValueInto(ref, nil)
}

// readValueInto reads a record's value, reusing buf's storage when it is
// large enough. It owns the record framing arithmetic for all read paths.
func (s *FileStore) readValueInto(ref recordRef, buf []byte) ([]byte, error) {
	framing := uvarintLen(uint64(ref.klen)) + uvarintLen(uint64(ref.vlen))
	skip := int64(crcSize + framing + ref.klen)
	if cap(buf) < ref.vlen {
		buf = make([]byte, ref.vlen)
	}
	buf = buf[:ref.vlen]
	if _, err := s.f.ReadAt(buf, ref.off+skip); err != nil {
		return nil, fmt.Errorf("kvstore: read record at %d: %w", ref.off, err)
	}
	return buf, nil
}

// Scan implements Store. Records are visited in log order (oldest live
// version of each key at its final offset).
func (s *FileStore) Scan(fn func(key, val []byte) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	// Sort refs by offset for sequential I/O.
	type kv struct {
		key string
		ref recordRef
	}
	refs := make([]kv, 0, len(s.index))
	for k, ref := range s.index {
		refs = append(refs, kv{k, ref})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].ref.off < refs[j].ref.off })
	for _, e := range refs {
		val, err := s.readValue(e.ref)
		if err != nil {
			return err
		}
		if !fn([]byte(e.key), val) {
			return nil
		}
	}
	return nil
}

// Len implements Store.
func (s *FileStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// SizeBytes implements Store: the log file size including garbage plus
// the meta sidecar, which is what a real deployment pays for.
func (s *FileStore) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.offset + s.metaLen
}

// Sync implements Store: it drains the write buffer. Like the paper's
// BerkeleyDB configuration it does NOT fsync — lineage is a recoverable
// cache and crash durability is explicitly out of scope.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked()
}

func (s *FileStore) flushLocked() error {
	if !s.dirty {
		return nil
	}
	if err := fault.Inject(fpFlush); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("kvstore: flush: %w", err)
	}
	s.dirty = false
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	flushErr := s.flushLocked()
	closeErr := s.f.Close()
	s.closed = true
	s.index = nil
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Path returns the backing file path.
func (s *FileStore) Path() string { return s.path }

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
