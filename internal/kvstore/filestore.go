package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

// FileStore is a log-structured Store: records are appended to a single
// file through a write buffer, and an in-memory index maps each key to the
// offset of its latest record. Overwritten values leave garbage in the log;
// lineage workloads write each key once (or merge a handful of times), so
// compaction is unnecessary and is deliberately omitted.
//
// Record layout (all integers little-endian / uvarint):
//
//	crc32(4) | klen uvarint | vlen uvarint | key | val
//
// The CRC covers the varint lengths, key, and value. On open the file is
// scanned to rebuild the index; the first torn or corrupt record ends the
// scan and the tail is truncated, matching the paper's "lineage is a
// recoverable cache" stance.
type FileStore struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	index  map[string]recordRef
	offset int64 // next append position
	dirty  bool
	closed bool
	path   string
}

type recordRef struct {
	off  int64
	klen int
	vlen int
}

const (
	crcSize       = 4
	maxKeyLen     = 1 << 20
	maxValLen     = 1 << 28
	writeBufBytes = 1 << 18
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// OpenFile opens (or creates) a FileStore at path, rebuilding the key
// index from the log and truncating any torn tail.
func OpenFile(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open %s: %w", path, err)
	}
	s := &FileStore{
		f:     f,
		index: make(map[string]recordRef),
		path:  path,
	}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(s.offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("kvstore: seek %s: %w", path, err)
	}
	s.w = bufio.NewWriterSize(f, writeBufBytes)
	return s, nil
}

// recover scans the log, rebuilding the index. It stops at the first
// invalid record and truncates the file there.
func (s *FileStore) recover() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("kvstore: stat: %w", err)
	}
	size := info.Size()
	r := bufio.NewReaderSize(io.NewSectionReader(s.f, 0, size), writeBufBytes)
	var off int64
	hdr := make([]byte, crcSize)
	var body []byte
	for off < size {
		if _, err := io.ReadFull(r, hdr); err != nil {
			break // torn tail
		}
		wantCRC := binary.LittleEndian.Uint32(hdr)
		klen, err1 := binary.ReadUvarint(r)
		if err1 != nil || klen > maxKeyLen {
			break
		}
		vlen, err2 := binary.ReadUvarint(r)
		if err2 != nil || vlen > maxValLen {
			break
		}
		framing := uvarintLen(klen) + uvarintLen(vlen)
		need := framing + int(klen) + int(vlen)
		if cap(body) < need {
			body = make([]byte, need)
		}
		body = body[:need]
		n := binary.PutUvarint(body, klen)
		n += binary.PutUvarint(body[n:], vlen)
		if _, err := io.ReadFull(r, body[n:]); err != nil {
			break
		}
		if crc32.Checksum(body, crcTable) != wantCRC {
			break
		}
		key := string(body[framing : framing+int(klen)])
		s.index[key] = recordRef{off: off, klen: int(klen), vlen: int(vlen)}
		off += int64(crcSize + need)
	}
	s.offset = off
	if off < size {
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("kvstore: truncate torn tail: %w", err)
		}
	}
	return nil
}

// Put implements Store.
func (s *FileStore) Put(key, val []byte) error {
	if len(key) > maxKeyLen || len(val) > maxValLen {
		return fmt.Errorf("kvstore: record too large (key %d, val %d)", len(key), len(val))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	framing := uvarintLen(uint64(len(key))) + uvarintLen(uint64(len(val)))
	body := make([]byte, framing+len(key)+len(val))
	n := binary.PutUvarint(body, uint64(len(key)))
	n += binary.PutUvarint(body[n:], uint64(len(val)))
	copy(body[n:], key)
	copy(body[n+len(key):], val)
	var hdr [crcSize]byte
	binary.LittleEndian.PutUint32(hdr[:], crc32.Checksum(body, crcTable))
	if _, err := s.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("kvstore: append: %w", err)
	}
	if _, err := s.w.Write(body); err != nil {
		return fmt.Errorf("kvstore: append: %w", err)
	}
	s.index[string(key)] = recordRef{off: s.offset, klen: len(key), vlen: len(val)}
	s.offset += int64(crcSize + len(body))
	s.dirty = true
	return nil
}

// Get implements Store. It flushes pending writes first so index offsets
// are always readable.
func (s *FileStore) Get(key []byte) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	ref, ok := s.index[string(key)]
	if !ok {
		return nil, false, nil
	}
	if err := s.flushLocked(); err != nil {
		return nil, false, err
	}
	val, err := s.readValue(ref)
	if err != nil {
		return nil, false, err
	}
	return val, true, nil
}

// GetBatch implements GetBatcher: one lock acquisition and one write-
// buffer flush serve the whole batch, and value buffers are reused
// between keys (the val passed to fn is only valid during the call).
func (s *FileStore) GetBatch(keys [][]byte, fn func(i int, val []byte, ok bool) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	var buf []byte
	for i, k := range keys {
		ref, ok := s.index[string(k)]
		if !ok {
			if !fn(i, nil, false) {
				return nil
			}
			continue
		}
		var err error
		if buf, err = s.readValueInto(ref, buf); err != nil {
			return err
		}
		if !fn(i, buf, true) {
			return nil
		}
	}
	return nil
}

func (s *FileStore) readValue(ref recordRef) ([]byte, error) {
	return s.readValueInto(ref, nil)
}

// readValueInto reads a record's value, reusing buf's storage when it is
// large enough. It owns the record framing arithmetic for all read paths.
func (s *FileStore) readValueInto(ref recordRef, buf []byte) ([]byte, error) {
	framing := uvarintLen(uint64(ref.klen)) + uvarintLen(uint64(ref.vlen))
	skip := int64(crcSize + framing + ref.klen)
	if cap(buf) < ref.vlen {
		buf = make([]byte, ref.vlen)
	}
	buf = buf[:ref.vlen]
	if _, err := s.f.ReadAt(buf, ref.off+skip); err != nil {
		return nil, fmt.Errorf("kvstore: read record at %d: %w", ref.off, err)
	}
	return buf, nil
}

// Scan implements Store. Records are visited in log order (oldest live
// version of each key at its final offset).
func (s *FileStore) Scan(fn func(key, val []byte) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	// Sort refs by offset for sequential I/O.
	type kv struct {
		key string
		ref recordRef
	}
	refs := make([]kv, 0, len(s.index))
	for k, ref := range s.index {
		refs = append(refs, kv{k, ref})
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].ref.off < refs[j].ref.off })
	for _, e := range refs {
		val, err := s.readValue(e.ref)
		if err != nil {
			return err
		}
		if !fn([]byte(e.key), val) {
			return nil
		}
	}
	return nil
}

// Len implements Store.
func (s *FileStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// SizeBytes implements Store: the log file size including garbage, which
// is what a real deployment pays for.
func (s *FileStore) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.offset
}

// Sync implements Store: it drains the write buffer. Like the paper's
// BerkeleyDB configuration it does NOT fsync — lineage is a recoverable
// cache and crash durability is explicitly out of scope.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked()
}

func (s *FileStore) flushLocked() error {
	if !s.dirty {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("kvstore: flush: %w", err)
	}
	s.dirty = false
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	flushErr := s.flushLocked()
	closeErr := s.f.Close()
	s.closed = true
	s.index = nil
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// Path returns the backing file path.
func (s *FileStore) Path() string { return s.path }

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
