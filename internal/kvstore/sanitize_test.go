package kvstore

import (
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

// TestSanitizeInjective is the collision regression: before the escape
// encoding, sanitize("a/b") and sanitize("a_b") both produced "a_b",
// silently merging two operators' lineage stores in one log file.
func TestSanitizeInjective(t *testing.T) {
	pairs := [][2]string{
		{"a/b", "a_b"},
		{"a/b", "a b"},
		{"a b", "a_b"},
		{"run/node/strat", "run_node_strat"},
		{"x__y", "x_/y"}, // literal double underscore vs escaped slash's neighbor
		{"", "store"},    // empty namespace must not collide with a real one
		{"_", "__"},
		{"Node", "node"}, // distinct even after case folding
		{"UB", "_ub"},
	}
	for _, p := range pairs {
		a, b := sanitize(p[0]), sanitize(p[1])
		if a == b {
			t.Errorf("sanitize(%q) == sanitize(%q) == %q", p[0], p[1], a)
		}
	}
	// Properties over random string pairs: injectivity, and — because the
	// output alphabet is case-folded — injectivity even under the case
	// collapsing of macOS/Windows filesystems.
	if err := quick.Check(func(a, b string) bool {
		return a == b || !strings.EqualFold(sanitize(a), sanitize(b))
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(a string) bool {
		out := sanitize(a)
		return out == strings.ToLower(out)
	}, nil); err != nil {
		t.Error(err)
	}
	// Output must stay a safe single path element.
	for _, ns := range []string{"a/b", "../../etc/passwd", "c:\\x", "α/β", "run001/node/strat"} {
		out := sanitize(ns)
		if strings.ContainsAny(out, "/\\") || out == "." || out == ".." {
			t.Errorf("sanitize(%q) = %q is not a safe file name", ns, out)
		}
	}
}

// TestManagerNoNamespaceCollisionOnDisk pins the end-to-end symptom: two
// namespaces that used to collide must get distinct backing files and
// fully isolated contents, including across a reopen.
func TestManagerNoNamespaceCollisionOnDisk(t *testing.T) {
	root := t.TempDir()
	mgr, err := NewManager(root)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := mgr.Open("a/b")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := mgr.Open("a_b")
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.Put([]byte("k"), []byte("slash")); err != nil {
		t.Fatal(err)
	}
	if err := sb.Put([]byte("k"), []byte("underscore")); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	files, err := filepath.Glob(filepath.Join(root, "*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("expected 2 backing files, got %v", files)
	}

	// Reopen: each namespace must see only its own record.
	mgr2, err := NewManager(root)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	for ns, want := range map[string]string{"a/b": "slash", "a_b": "underscore"} {
		s, err := mgr2.Open(ns)
		if err != nil {
			t.Fatal(err)
		}
		v, ok, err := s.Get([]byte("k"))
		if err != nil || !ok {
			t.Fatalf("%s: get after reopen: ok=%v err=%v", ns, ok, err)
		}
		if string(v) != want {
			t.Fatalf("%s holds %q, want %q — namespaces merged", ns, v, want)
		}
		if s.Len() != 1 {
			t.Fatalf("%s holds %d records, want 1", ns, s.Len())
		}
	}

	// Drop must remove only its own namespace's file.
	if err := mgr2.Drop("a/b"); err != nil {
		t.Fatal(err)
	}
	files, err = filepath.Glob(filepath.Join(root, "*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("after drop expected 1 backing file, got %v", files)
	}
}
