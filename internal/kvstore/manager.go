package kvstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Manager allocates one Store per namespace — the "operator specific
// datastores" of the paper's architecture (Figure 3). A Manager rooted at a
// directory creates FileStores under it; a Manager with an empty root hands
// out MemStores, which tests and CPU-bound benchmarks use.
type Manager struct {
	mu     sync.Mutex
	root   string
	stores map[string]Store
}

// NewManager creates a manager. If root is non-empty the directory is
// created and stores persist there as one log file per namespace;
// otherwise stores are in-memory.
func NewManager(root string) (*Manager, error) {
	if root != "" {
		if err := os.MkdirAll(root, 0o755); err != nil {
			return nil, fmt.Errorf("kvstore: create root %s: %w", root, err)
		}
	}
	return &Manager{root: root, stores: make(map[string]Store)}, nil
}

// InMemory reports whether the manager hands out memory-backed stores.
func (m *Manager) InMemory() bool { return m.root == "" }

// Open returns the store for a namespace, creating it on first use.
// Namespaces are arbitrary strings; they are sanitized into file names.
func (m *Manager) Open(namespace string) (Store, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.stores[namespace]; ok {
		return s, nil
	}
	var s Store
	if m.root == "" {
		s = NewMem()
	} else {
		fs, err := OpenFile(filepath.Join(m.root, sanitize(namespace)+".log"))
		if err != nil {
			return nil, err
		}
		s = fs
	}
	m.stores[namespace] = s
	return s, nil
}

// dropLocked closes and removes one namespace's store and backing file.
// Callers hold m.mu.
func (m *Manager) dropLocked(namespace string) error {
	s, ok := m.stores[namespace]
	if !ok {
		return nil
	}
	delete(m.stores, namespace)
	closeErr := s.Close()
	if m.root != "" {
		if err := os.Remove(filepath.Join(m.root, sanitize(namespace)+".log")); err != nil && !os.IsNotExist(err) && closeErr == nil {
			closeErr = err
		}
	}
	return closeErr
}

// Drop closes and deletes a namespace's store and backing file.
func (m *Manager) Drop(namespace string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropLocked(namespace)
}

// DropPrefix closes and deletes every namespace whose name starts with
// prefix, returning how many stores were released. The run registry uses
// it to free all lineage stores of a dropped run in one call.
func (m *Manager) DropPrefix(prefix string) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var dropped int
	var firstErr error
	for ns := range m.stores {
		if !strings.HasPrefix(ns, prefix) {
			continue
		}
		dropped++
		if err := m.dropLocked(ns); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return dropped, firstErr
}

// Namespaces returns the open namespaces in sorted order.
func (m *Manager) Namespaces() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.stores))
	for ns := range m.stores {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}

// TotalBytes sums the size of every open store — the disk-overhead number
// reported by the benchmark figures.
func (m *Manager) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, s := range m.stores {
		total += s.SizeBytes()
	}
	return total
}

// SyncAll flushes every open store.
func (m *Manager) SyncAll() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for ns, s := range m.stores {
		if err := s.Sync(); err != nil {
			return fmt.Errorf("kvstore: sync %s: %w", ns, err)
		}
	}
	return nil
}

// Close closes every open store.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var firstErr error
	for ns, s := range m.stores {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("kvstore: close %s: %w", ns, err)
		}
	}
	m.stores = make(map[string]Store)
	return firstErr
}

// sanitize maps a namespace to a safe file-name fragment.
func sanitize(ns string) string {
	var b strings.Builder
	for _, r := range ns {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "store"
	}
	return b.String()
}
